// Benchmarks regenerating the paper's evaluation (§6), one per table and
// figure, in reduced "quick" form so `go test -bench=.` completes in
// minutes. Run cmd/roulette-bench for the full sweeps; EXPERIMENTS.md
// records paper-vs-measured results per figure.
package roulette

import (
	"io"
	"testing"

	"github.com/roulette-db/roulette/internal/bench"
)

// benchCfg is a small configuration that keeps each iteration fast while
// still exercising the full experiment path.
func benchCfg() bench.Config {
	return bench.Config{Scale: 0.05, Seed: 1, Quick: true, Out: io.Discard}
}

// BenchmarkFig11a — throughput vs batch size (Fig. 11a).
func BenchmarkFig11a(b *testing.B) {
	c := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig11a(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11b — throughput vs selectivity (Fig. 11b).
func BenchmarkFig11b(b *testing.B) {
	c := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig11b(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11c — throughput vs joins per query (Fig. 11c).
func BenchmarkFig11c(b *testing.B) {
	c := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig11c(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11d — throughput vs schema type (Fig. 11d).
func BenchmarkFig11d(b *testing.B) {
	c := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig11d(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12 — JOB batch throughput (Fig. 12).
func BenchmarkFig12(b *testing.B) {
	c := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig12(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13 — plan quality by policy (Fig. 13).
func BenchmarkFig13(b *testing.B) {
	c := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig13(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14 — dynamic admission overlap (Fig. 14).
func BenchmarkFig14(b *testing.B) {
	c := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig14(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16 — learning convergence on chain schemas (Figs. 16a–i).
func BenchmarkFig16(b *testing.B) {
	c := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig16(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig17 — JOB batch pruning ablation (Fig. 17).
func BenchmarkFig17(b *testing.B) {
	c := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig17(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig18 — router and grouped-filter ablation (Fig. 18).
func BenchmarkFig18(b *testing.B) {
	c := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig18(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig19 — multi-worker scale-up (Fig. 19).
func BenchmarkFig19(b *testing.B) {
	c := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig19(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig20 — client interference (Fig. 20).
func BenchmarkFig20(b *testing.B) {
	c := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig20(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSWO — the §6.1 offline-sharing scalability anecdote.
func BenchmarkSWO(b *testing.B) {
	c := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := c.SWO(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorrStress — learned-vs-greedy correlation stress (§4.2 distilled).
func BenchmarkCorrStress(b *testing.B) {
	c := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := c.CorrStress(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteBatch measures the public API end to end on a small
// embedded workload.
func BenchmarkExecuteBatch(b *testing.B) {
	e := NewEngine()
	n := 50_000
	fk := make([]int64, n)
	v := make([]int64, n)
	for i := range fk {
		fk[i] = int64(i % 500)
		v[i] = int64(i % 100)
	}
	k := make([]int64, 500)
	for i := range k {
		k[i] = int64(i)
	}
	e.MustCreateTable("fact", ColSlice("fk", fk), ColSlice("v", v))
	e.MustCreateTable("dim", ColSlice("k", k))
	qs := []*Query{
		NewQuery("a").From("fact").From("dim").Join("fact", "fk", "dim", "k").Between("fact", "v", 0, 49),
		NewQuery("b").From("fact").From("dim").Join("fact", "fk", "dim", "k").Between("fact", "v", 25, 74),
		NewQuery("c").From("fact").From("dim").Join("fact", "fk", "dim", "k").Between("fact", "v", 50, 99),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExecuteBatch(qs, &Options{DiscardRows: true}); err != nil {
			b.Fatal(err)
		}
	}
}
