// Command bench-compare checks a fresh roulette-bench JSON report against a
// committed baseline (BENCH_stream.json, BENCH_scaling.json, or a combined
// BENCH.json) within a multiplicative tolerance. It is the CI tripwire that
// makes kernel regressions fail loudly: absolute numbers vary wildly across
// runner hardware, so the tolerance is generous by default and the check
// only catches order-of-magnitude cliffs.
//
// Usage:
//
//	bench-compare -baseline BENCH_scaling.json -current /tmp/out.json -tolerance 10
//
// Every headline metric present in BOTH files is compared; metrics missing
// from either side are skipped (so a stream baseline can be checked against
// a stream-only run). Exit status 1 means at least one metric regressed
// beyond tolerance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"

	"github.com/roulette-db/roulette/internal/bench"
)

// report mirrors the roulette-bench JSON schema (only the compared parts).
type report struct {
	Perf      *bench.PerfReport      `json:"perf"`
	Stream    *bench.StreamReport    `json:"stream"`
	Scaling   *bench.ScalingReport   `json:"scaling"`
	Stress    *bench.StressReport    `json:"stress"`
	Strings   *bench.StringsReport   `json:"strings"`
	Warmstart *bench.WarmstartReport `json:"warmstart"`

	// BENCH_stream.json, BENCH_scaling.json, BENCH_stress.json and
	// BENCH_strings.json are bare reports, not full BENCH.json files;
	// detect that by their own headline fields. A bare stress report also
	// has "qps", so the tenant table is checked first.
	QPS     float64                 `json:"qps"`
	Rows    []bench.ScalingRow      `json:"rows"`
	Tenants []bench.TenantStressRow `json:"tenants"`
	Systems []bench.StringsRow      `json:"systems"`

	// NumCPU is present in combined BENCH.json headers and in bare scaling
	// reports; it gates the speedup tripwire (a <4-CPU host cannot measure
	// speedup@4workers).
	NumCPU int `json:"num_cpu"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	// Normalize bare section files into the combined shape.
	if r.Stress == nil && len(r.Tenants) > 0 {
		var s bench.StressReport
		if json.Unmarshal(data, &s) == nil {
			r.Stress = &s
		}
	}
	if r.Stream == nil && r.Stress == nil && r.QPS > 0 {
		var s bench.StreamReport
		if json.Unmarshal(data, &s) == nil {
			r.Stream = &s
		}
	}
	if r.Scaling == nil && len(r.Rows) > 0 {
		var s bench.ScalingReport
		if json.Unmarshal(data, &s) == nil {
			r.Scaling = &s
		}
	}
	if r.Strings == nil && len(r.Systems) > 0 {
		var s bench.StringsReport
		if json.Unmarshal(data, &s) == nil {
			r.Strings = &s
		}
	}
	return &r, nil
}

type checker struct {
	tol    float64
	failed bool
}

// higher checks a bigger-is-better metric: current must stay within
// baseline/tol.
func (c *checker) higher(name string, baseline, current float64) {
	if baseline <= 0 {
		return
	}
	ok := current >= baseline/c.tol
	c.report(name, baseline, current, ok)
}

// lower checks a smaller-is-better metric: current must stay within
// baseline*tol.
func (c *checker) lower(name string, baseline, current float64) {
	if baseline <= 0 {
		return
	}
	ok := current <= baseline*c.tol
	c.report(name, baseline, current, ok)
}

// speedup checks the headline scaling metric against a fixed 10% floor,
// independent of -tolerance: speedup is a ratio of same-host runs, so it is
// far more stable than absolute throughput and deserves a tight tripwire.
func (c *checker) speedup(name string, baseline, current float64) {
	if baseline <= 0 {
		return
	}
	c.report(name, baseline, current, current >= baseline*0.9)
}

func (c *checker) report(name string, baseline, current float64, ok bool) {
	status := "ok"
	if !ok {
		status = "REGRESSED"
		c.failed = true
	}
	fmt.Printf("%-40s baseline %12.2f  current %12.2f  [%s]\n", name, baseline, current, status)
}

// scalingRow finds the sample for a worker count, or nil.
func scalingRow(rep *bench.ScalingReport, workers int) *bench.ScalingRow {
	for i := range rep.Rows {
		if rep.Rows[i].Workers == workers {
			return &rep.Rows[i]
		}
	}
	return nil
}

// checkSpeedup is the speedup@4workers tripwire: the repo's scalability
// claim is CI-tracked as the wall-clock speedup of 4 workers over 1, and a
// drop of 10% or more against the committed baseline fails the build. The
// check auto-skips when either side cannot measure it honestly: a host with
// fewer than 4 CPUs, or a baseline row recorded oversubscribed.
func checkSpeedup(c *checker, base, cur *report) {
	b4, g4 := scalingRow(base.Scaling, 4), scalingRow(cur.Scaling, 4)
	if b4 == nil || g4 == nil {
		return
	}
	curCPU := cur.NumCPU
	if curCPU == 0 {
		curCPU = cur.Scaling.NumCPU
	}
	switch {
	case curCPU > 0 && curCPU < 4:
		fmt.Printf("%-40s skipped (current host has %d CPUs; speedup@4workers needs >= 4)\n",
			"scaling.workers4.speedup", curCPU)
	case g4.Oversubscribed:
		fmt.Printf("%-40s skipped (current row ran oversubscribed: %d workers on %d CPUs)\n",
			"scaling.workers4.speedup", g4.Workers, g4.NumCPU)
	case b4.Oversubscribed:
		fmt.Printf("%-40s skipped (baseline row was recorded oversubscribed; regenerate BENCH_scaling.json on a >=4-CPU host)\n",
			"scaling.workers4.speedup")
	default:
		c.speedup("scaling.workers4.speedup", b4.Speedup, g4.Speedup)
	}
}

// checkWarmstart is the policy-persistence tripwire. The headline metric —
// how many fewer tuples the warm arm routes in steady state — is a ratio of
// two same-host, same-seed runs, so like speedup it gets a fixed floor
// instead of the generous -tolerance: the current reduction must stay above
// half the committed baseline's. Cache hits go through the generic check so
// a warm arm that silently stops hitting the cache also fails.
func checkWarmstart(c *checker, base, cur *bench.WarmstartReport) {
	if base.JoinTupleReduction > 0 {
		c.report("warmstart.join_tuple_reduction", base.JoinTupleReduction,
			cur.JoinTupleReduction, cur.JoinTupleReduction >= base.JoinTupleReduction*0.5)
	}
	c.higher("warmstart.qps_ratio", base.QPSRatio, cur.QPSRatio)
	c.higher("warmstart.cache_hits", float64(base.CacheHits), float64(cur.CacheHits))
}

func main() {
	basePath := flag.String("baseline", "", "committed baseline JSON (required)")
	curPath := flag.String("current", "", "freshly generated JSON (required)")
	tol := flag.Float64("tolerance", 10, "allowed multiplicative slack in either direction")
	flag.Parse()
	if *basePath == "" || *curPath == "" || *tol < 1 {
		flag.Usage()
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	base, err := load(*basePath)
	if err != nil {
		logger.Error("loading baseline failed", "err", err)
		os.Exit(1)
	}
	cur, err := load(*curPath)
	if err != nil {
		logger.Error("loading current results failed", "err", err)
		os.Exit(1)
	}

	c := &checker{tol: *tol}
	if base.Perf != nil && cur.Perf != nil {
		for _, e := range base.Perf.EpisodeStep {
			for _, g := range cur.Perf.EpisodeStep {
				if g.Name == e.Name {
					c.lower("perf."+e.Name+".ns_per_op", e.NsPerOp, g.NsPerOp)
				}
			}
		}
		if base.Perf.EpisodeStepZeroAlloc && !cur.Perf.EpisodeStepZeroAlloc {
			c.report("perf.episode_step_zero_alloc", 1, 0, false)
		}
		c.higher("perf.stem_insert_vec_speedup", base.Perf.StemInsertSpeedup, cur.Perf.StemInsertSpeedup)
		c.higher("perf.stem_probe_vec_speedup", base.Perf.StemProbeSpeedup, cur.Perf.StemProbeSpeedup)
		c.higher("perf.qtable_speedup", base.Perf.QTableSpeedup, cur.Perf.QTableSpeedup)
		c.lower("perf.stem_insert_vec.ns_per_op", base.Perf.StemInsertVec.NsPerOp, cur.Perf.StemInsertVec.NsPerOp)
		c.lower("perf.stem_probe_vec.ns_per_op", base.Perf.StemProbeVec.NsPerOp, cur.Perf.StemProbeVec.NsPerOp)
	}
	if base.Stream != nil && cur.Stream != nil {
		c.higher("stream.qps", base.Stream.QPS, cur.Stream.QPS)
		c.lower("stream.submit_p95_micros", base.Stream.SubmitP95Micros, cur.Stream.SubmitP95Micros)
		c.lower("stream.retire_p95_millis", base.Stream.RetireP95Millis, cur.Stream.RetireP95Millis)
	}
	if base.Scaling != nil && cur.Scaling != nil {
		for _, b := range base.Scaling.Rows {
			for _, g := range cur.Scaling.Rows {
				if g.Workers == b.Workers {
					c.higher(fmt.Sprintf("scaling.workers%d.episodes_per_sec", b.Workers),
						b.EpisodesPerSec, g.EpisodesPerSec)
				}
			}
		}
		checkSpeedup(c, base, cur)
	}
	if base.Stress != nil && cur.Stress != nil {
		c.higher("stress.qps", base.Stress.QPS, cur.Stress.QPS)
		for _, b := range base.Stress.Tenants {
			for _, g := range cur.Stress.Tenants {
				if g.Tenant != b.Tenant {
					continue
				}
				// Every tenant class — the rate-limited one included — must
				// keep retiring queries with a bounded latency tail.
				c.higher("stress."+b.Tenant+".retired", float64(b.Retired), float64(g.Retired))
				c.lower("stress."+b.Tenant+".retire_p95_millis", b.RetireP95Millis, g.RetireP95Millis)
			}
		}
	}

	if base.Strings != nil && cur.Strings != nil {
		for _, b := range base.Strings.Systems {
			for _, g := range cur.Strings.Systems {
				if g.System == b.System {
					c.higher("strings."+b.System+".qps", b.QPS, g.QPS)
				}
			}
		}
		// Typed-path correctness is pass/fail, not a throughput band: a
		// current run whose string-workload counts diverge from the
		// tuple-at-a-time baseline fails regardless of tolerance.
		if base.Strings.MatchesBaseline {
			cur1 := 0.0
			if cur.Strings.MatchesBaseline {
				cur1 = 1
			}
			c.report("strings.matches_baseline", 1, cur1, cur.Strings.MatchesBaseline)
		}
	}

	if base.Warmstart != nil && cur.Warmstart != nil {
		checkWarmstart(c, base.Warmstart, cur.Warmstart)
	}

	if c.failed {
		fmt.Println("bench-compare: FAIL (at least one metric regressed beyond tolerance)")
		os.Exit(1)
	}
	fmt.Println("bench-compare: all compared metrics within tolerance")
}
