// Command roulette-bench regenerates the tables and figures of the paper's
// evaluation (§6). Each -fig value maps to one experiment; see DESIGN.md's
// per-experiment index and EXPERIMENTS.md for paper-vs-measured notes.
//
// Usage:
//
//	roulette-bench -fig 11a            # throughput vs batch size
//	roulette-bench -fig all -quick     # every figure, reduced sweeps
//	roulette-bench -fig 13 -scale 0.5  # policy quality at a larger scale
//	roulette-bench -fig perf           # hot-path microbenchmarks
//	roulette-bench -fig all -json BENCH.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	roulette "github.com/roulette-db/roulette"
	"github.com/roulette-db/roulette/internal/bench"
)

// figTiming is one figure's wall-clock entry in BENCH.json.
type figTiming struct {
	Fig     string  `json:"fig"`
	Seconds float64 `json:"seconds"`
}

// benchFile is the BENCH.json schema (documented in EXPERIMENTS.md).
type benchFile struct {
	Timestamp string                 `json:"timestamp"`
	GoVersion string                 `json:"go_version"`
	GOOS      string                 `json:"goos"`
	GOARCH    string                 `json:"goarch"`
	NumCPU    int                    `json:"num_cpu"`
	Scale     float64                `json:"scale"`
	Seed      int64                  `json:"seed"`
	Quick     bool                   `json:"quick"`
	Figures   []figTiming            `json:"figures"`
	Perf      *bench.PerfReport      `json:"perf,omitempty"`
	Stream    *bench.StreamReport    `json:"stream,omitempty"`
	Scaling   *bench.ScalingReport   `json:"scaling,omitempty"`
	Stress    *bench.StressReport    `json:"stress,omitempty"`
	Strings   *bench.StringsReport   `json:"strings,omitempty"`
	Warmstart *bench.WarmstartReport `json:"warmstart,omitempty"`
}

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 11a 11b 11c 11d 12 13 14 16 17 18 19 20 swo corrstress batching perf stream scaling stress strings warmstart all")
	scale := flag.Float64("scale", 0.25, "TPC-DS scale factor (facts scale linearly)")
	seed := flag.Int64("seed", 1, "workload and data seed")
	quick := flag.Bool("quick", false, "reduced sweeps for a fast pass")
	jsonOut := flag.String("json", "", "write machine-readable results (timings + perf) to this file")
	stats := flag.Bool("stats", false, "collect execution stats for RouLette-family runs (skews timings; not for EXPERIMENTS.md numbers)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text + JSON) on this address while the sweep runs")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at sweep end to this file")
	blockProfile := flag.String("blockprofile", "", "write a goroutine blocking profile at sweep end to this file (enables block profiling for the whole run)")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex contention profile at sweep end to this file (enables mutex profiling for the whole run)")
	tracePath := flag.String("trace", "", "write the streaming benchmark's flight-recorder timeline to this file as Chrome trace_event JSON (fig stream; load in Perfetto)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	cfg := bench.Config{Scale: *scale, Seed: *seed, Quick: *quick, Out: os.Stdout,
		CollectStats: *stats, TracePath: *tracePath, Logger: logger}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			logger.Error("create cpu profile", "path", *cpuProfile, "err", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			logger.Error("start cpu profile", "err", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("wrote %s\n", *cpuProfile)
		}()
	}
	// Contention profiles answer the scaling question directly: where do
	// workers wait? Rates are set before any session runs so the whole
	// sweep is covered; both profiles are written at sweep end.
	writeLookup := func(profile, path string) {
		f, err := os.Create(path)
		if err != nil {
			logger.Error("create profile", "path", path, "err", err)
			return
		}
		defer f.Close()
		if err := pprof.Lookup(profile).WriteTo(f, 0); err != nil {
			logger.Error("write profile", "profile", profile, "err", err)
			return
		}
		fmt.Printf("wrote %s\n", path)
	}
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(1)
		defer writeLookup("block", *blockProfile)
	}
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeLookup("mutex", *mutexProfile)
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			logger.Error("create heap profile", "path", *memProfile, "err", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			logger.Error("write heap profile", "err", err)
			return
		}
		fmt.Printf("wrote %s\n", *memProfile)
	}()

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", roulette.MetricsHandler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				logger.Error("metrics server", "err", err)
			}
		}()
		fmt.Printf("serving metrics on http://%s/metrics\n", *metricsAddr)
	}

	out := benchFile{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Scale:     *scale,
		Seed:      *seed,
		Quick:     *quick,
	}

	figures := map[string]func() error{
		"11a":        func() error { _, err := cfg.Fig11a(); return err },
		"11b":        func() error { _, err := cfg.Fig11b(); return err },
		"11c":        func() error { _, err := cfg.Fig11c(); return err },
		"11d":        func() error { _, err := cfg.Fig11d(); return err },
		"12":         func() error { _, err := cfg.Fig12(); return err },
		"13":         func() error { _, err := cfg.Fig13(); return err },
		"14":         func() error { _, err := cfg.Fig14(); return err },
		"16":         func() error { _, err := cfg.Fig16(); return err },
		"17":         func() error { _, err := cfg.Fig17(); return err },
		"18":         func() error { _, err := cfg.Fig18(); return err },
		"19":         func() error { _, err := cfg.Fig19(); return err },
		"20":         func() error { _, err := cfg.Fig20(); return err },
		"swo":        func() error { _, err := cfg.SWO(); return err },
		"corrstress": func() error { _, err := cfg.CorrStress(); return err },
		"batching":   func() error { _, err := cfg.Batching(); return err },
		"perf": func() error {
			rep, err := cfg.Perf()
			out.Perf = rep
			return err
		},
		"stream": func() error {
			rep, err := cfg.Stream()
			out.Stream = rep
			return err
		},
		"scaling": func() error {
			rep, err := cfg.Scaling()
			out.Scaling = rep
			return err
		},
		"stress": func() error {
			rep, err := cfg.Stress()
			out.Stress = rep
			return err
		},
		"strings": func() error {
			rep, err := cfg.Strings()
			out.Strings = rep
			if err == nil && !rep.MatchesBaseline {
				return fmt.Errorf("string workload results diverge from the baseline engine")
			}
			return err
		},
		"warmstart": func() error {
			rep, err := cfg.Warmstart()
			out.Warmstart = rep
			return err
		},
	}
	order := []string{"11a", "11b", "11c", "11d", "12", "13", "14", "16", "17", "18", "19", "20", "swo", "corrstress", "batching", "perf", "stream", "scaling", "stress", "strings", "warmstart"}

	run := func(name string) {
		f, ok := figures[name]
		if !ok {
			logger.Error("unknown figure", "fig", name, "valid", fmt.Sprint(order, " all"))
			os.Exit(2)
		}
		start := time.Now()
		if err := f(); err != nil {
			logger.Error("figure failed", "fig", name, "err", err)
			os.Exit(1)
		}
		secs := time.Since(start).Seconds()
		out.Figures = append(out.Figures, figTiming{Fig: name, Seconds: secs})
		fmt.Printf("(fig %s done in %.1fs)\n\n", name, secs)
	}

	writeJSON := func() {
		if *jsonOut == "" {
			return
		}
		data, err := json.MarshalIndent(&out, "", "  ")
		if err != nil {
			logger.Error("marshal results", "path", *jsonOut, "err", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			logger.Error("write results", "path", *jsonOut, "err", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}

	// Ctrl-C stops the sweep at the next figure boundary (individual figures
	// run to completion so partial tables are never printed).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *fig == "all" {
		for _, name := range order {
			if ctx.Err() != nil {
				logger.Warn("interrupted; remaining figures skipped")
				os.Exit(1)
			}
			run(name)
		}
		writeJSON()
		return
	}
	run(*fig)
	writeJSON()
}
