// Command roulette-demo executes a generated TPC-DS multi-query workload on
// RouLette and the query-at-a-time baseline side by side, printing per-query
// results and the sharing statistics that explain the speedup.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"github.com/roulette-db/roulette/internal/engine"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/qat"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/tpcds"
	"github.com/roulette-db/roulette/internal/workload"
)

func main() {
	nQueries := flag.Int("n", 64, "queries in the batch")
	scale := flag.Float64("scale", 0.25, "TPC-DS scale factor")
	joins := flag.Int("joins", 4, "joins per query")
	sel := flag.Float64("selectivity", 0.10, "query selectivity")
	seed := flag.Int64("seed", 1, "seed")
	workers := flag.Int("workers", 1, "RouLette workers")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	fmt.Printf("generating TPC-DS substrate (scale %.2f)...\n", *scale)
	db := tpcds.Generate(*scale, *seed)

	p := workload.Params{Joins: *joins, Selectivity: *sel, Kind: tpcds.SnowflakeStore, Seed: *seed}
	qs := workload.NewGenerator(p).Generate(*nQueries)
	fmt.Printf("generated %d queries (%d joins, %.2g%% selectivity)\n\n", len(qs), *joins, *sel*100)

	// Query-at-a-time baseline.
	counts, qatTime, err := qat.New(db).RunSerial(qs)
	if err != nil {
		logger.Error("query-at-a-time baseline failed", "err", err)
		os.Exit(1)
	}
	fmt.Printf("DBMS-V (query-at-a-time): %8.3fs  (%.2f q/s)\n", qatTime.Seconds(), float64(len(qs))/qatTime.Seconds())

	// RouLette shared execution.
	b, err := query.Compile(qs)
	if err != nil {
		logger.Error("compile failed", "err", err)
		os.Exit(1)
	}
	opt := exec.DefaultOptions()
	opt.CollectRows = false
	s, err := engine.NewSession(b, db, engine.Config{Exec: opt, Workers: *workers})
	if err != nil {
		logger.Error("session failed", "err", err)
		os.Exit(1)
	}
	// Ctrl-C stops the shared run gracefully: in-flight episodes finish and
	// the results below are reported as partial.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := s.RunContext(ctx)
	if err != nil {
		logger.Error("run failed", "err", err)
		os.Exit(1)
	}
	fmt.Printf("RouLette (shared batch):  %8.3fs  (%.2f q/s)  speedup %.2fx\n\n",
		res.Elapsed.Seconds(), res.Throughput(), qatTime.Seconds()/res.Elapsed.Seconds())

	st := &s.Context().Stats
	f, bd, pr, rt := st.Breakdown()
	fmt.Printf("episodes: %d   intermediate join tuples: %d\n", res.Episodes, res.JoinTuples)
	fmt.Printf("time breakdown: filter %.0f%%  build %.0f%%  probe %.0f%%  route %.0f%%\n\n",
		f*100, bd*100, pr*100, rt*100)

	mismatch, aborted := 0, 0
	for qid := range qs {
		if res.Partial && !res.Status[qid].Completed {
			aborted++
			continue // partial counts are lower bounds, not comparable
		}
		if res.Counts[qid] != counts[qid] {
			mismatch++
			fmt.Printf("MISMATCH %s: roulette=%d qat=%d\n", qs[qid].Tag, res.Counts[qid], counts[qid])
		}
	}
	if aborted > 0 {
		fmt.Printf("interrupted: %d/%d queries aborted before completing\n", aborted, len(qs))
	}
	if mismatch == 0 {
		fmt.Printf("all %d completed query results verified against the query-at-a-time engine\n", len(qs)-aborted)
	} else {
		os.Exit(1)
	}
}
