// Command roulette-sql is a small SQL shell over the RouLette engine: it
// loads CSV files as tables (dictionary-encoding non-integer columns) and
// executes semicolon-separated SQL statements as shared batches.
//
// Usage:
//
//	roulette-sql -t orders=orders.csv -t customers=customers.csv [query.sql]
//
// With a file argument the statements are read from it; otherwise the shell
// reads statements from stdin (terminate each batch with a line containing
// only "go", or EOF). All statements of a batch execute together, sharing
// scans, filters and joins.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	roulette "github.com/roulette-db/roulette"
	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/storage"
)

// tableFlags collects repeated -t name=path flags.
type tableFlags []string

func (t *tableFlags) String() string { return strings.Join(*t, ",") }
func (t *tableFlags) Set(s string) error {
	*t = append(*t, s)
	return nil
}

func main() {
	var tables tableFlags
	flag.Var(&tables, "t", "table to load: name=file.csv (repeatable; first row is the header)")
	workers := flag.Int("workers", 1, "RouLette workers")
	stats := flag.Bool("stats", false, "collect execution stats and print a summary after each batch")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text + JSON) on this address, e.g. :9090")
	flag.Parse()

	if len(tables) == 0 {
		fmt.Fprintln(os.Stderr, "roulette-sql: at least one -t name=file.csv is required")
		os.Exit(2)
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", roulette.MetricsHandler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "roulette-sql: metrics server:", err)
			}
		}()
		fmt.Printf("serving metrics on http://%s/metrics\n", *metricsAddr)
	}

	schema := catalog.NewSchema()
	db := storage.NewDatabase(schema)
	dicts := map[string]*storage.Dict{}
	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "roulette-sql: bad -t %q (want name=file.csv)\n", spec)
			os.Exit(2)
		}
		if err := loadTable(schema, db, dicts, name, path); err != nil {
			fmt.Fprintln(os.Stderr, "roulette-sql:", err)
			os.Exit(1)
		}
		fmt.Printf("loaded %s (%d rows)\n", name, db.MustTable(name).NumRows())
	}
	e := roulette.NewEngineOn(db)

	runBatch := func(src string) {
		src = strings.TrimSpace(src)
		if src == "" {
			return
		}
		// Ctrl-C during the batch cancels it gracefully (partial results
		// are printed as lower bounds). The context is scoped to one batch
		// so an interrupted batch does not poison the next one; at the
		// prompt Ctrl-C keeps its default behaviour and kills the shell.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		res, err := e.ExecuteSQLContext(ctx, src, &roulette.Options{
			Workers:      *workers,
			CollectStats: *stats,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		for _, q := range res.Queries {
			note := ""
			if q.Aborted {
				note = fmt.Sprintf("\t-- aborted (%v), count is a lower bound", q.Err)
			}
			if len(q.Groups) <= 1 {
				fmt.Printf("%s: %d%s\n", q.Tag, q.Value(), note)
				continue
			}
			fmt.Printf("%s:%s\n", q.Tag, note)
			for _, g := range q.Groups {
				fmt.Printf("  %d\t%d\n", g.Key, g.Value)
			}
		}
		if res.Partial {
			fmt.Printf("(batch interrupted: partial results for %d queries in %v, %d episodes)\n",
				len(res.Queries), res.Elapsed, res.Episodes)
		} else {
			fmt.Printf("(%d queries in %v, %d episodes)\n", len(res.Queries), res.Elapsed, res.Episodes)
		}
		if res.Stats != nil {
			fmt.Print(res.Stats.Summary())
		}
	}

	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "roulette-sql:", err)
			os.Exit(1)
		}
		runBatch(string(data))
		return
	}

	fmt.Println(`enter SQL statements; run the batch with a line containing only "go"`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "go" {
			runBatch(buf.String())
			buf.Reset()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
	}
	runBatch(buf.String())
}

// loadTable reads a CSV with a header row; columns whose first data value
// does not parse as an integer are dictionary-encoded.
func loadTable(schema *catalog.Schema, db *storage.Database, dicts map[string]*storage.Dict, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	// Read the header to build the relation, then reload with LoadCSV.
	br := bufio.NewReader(f)
	header, err := br.ReadString('\n')
	if err != nil {
		return fmt.Errorf("reading header of %s: %w", path, err)
	}
	cols := strings.Split(strings.TrimSpace(header), ",")
	for i := range cols {
		cols[i] = strings.TrimSpace(cols[i])
	}
	rel := catalog.NewRelation(name, cols...)
	if err := schema.AddRelation(rel); err != nil {
		return err
	}

	// Give every column a dictionary; integer values bypass it via a probe
	// pass — simplest robust behaviour: try integer first, fall back to the
	// dictionary per column by sniffing the first record.
	if _, err := f.Seek(0, 0); err != nil {
		return err
	}
	sniff := bufio.NewScanner(f)
	sniff.Scan() // header
	colDicts := map[string]*storage.Dict{}
	if sniff.Scan() {
		fields := strings.Split(sniff.Text(), ",")
		for i, v := range fields {
			if i >= len(cols) {
				break
			}
			v = strings.TrimSpace(v)
			if !looksInteger(v) {
				d := storage.NewDict()
				colDicts[cols[i]] = d
				dicts[name+"."+cols[i]] = d
			}
		}
	}
	if _, err := f.Seek(0, 0); err != nil {
		return err
	}
	t, err := storage.LoadCSV(rel, f, storage.CSVOptions{Header: true, Dicts: colDicts})
	if err != nil {
		return fmt.Errorf("loading %s: %w", path, err)
	}
	db.Put(t)
	return nil
}

func looksInteger(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if r == '-' && i == 0 && len(s) > 1 {
			continue
		}
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}
