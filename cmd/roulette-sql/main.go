// Command roulette-sql is a small SQL shell over the RouLette engine: it
// loads CSV files as tables (dictionary-encoding non-integer columns) and
// executes semicolon-separated SQL statements as shared batches.
//
// Usage:
//
//	roulette-sql -t orders=orders.csv -t customers=customers.csv [query.sql]
//
// With a file argument the statements are read from it; otherwise the shell
// reads statements from stdin (terminate each batch with a line containing
// only "go", or EOF). All statements of a batch execute together, sharing
// scans, filters and joins.
//
// With -serve the shell keeps one long-lived streaming session open
// instead: every ';'-terminated statement is submitted the moment it is
// read (from stdin, or from a client connected to -listen), starts
// executing immediately against the state built by earlier queries, and
// reports its result with per-query latency as soon as it retires.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	roulette "github.com/roulette-db/roulette"
	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/storage"
	"github.com/roulette-db/roulette/internal/value"
)

// tableFlags collects repeated -t name=path flags.
type tableFlags []string

func (t *tableFlags) String() string { return strings.Join(*t, ",") }
func (t *tableFlags) Set(s string) error {
	*t = append(*t, s)
	return nil
}

func main() {
	var tables tableFlags
	flag.Var(&tables, "t", "table to load: name=file.csv (repeatable; first row is the header)")
	workers := flag.Int("workers", 1, "RouLette workers")
	stats := flag.Bool("stats", false, "collect execution stats and print a summary after each batch")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text + JSON) on this address, e.g. :9090")
	serve := flag.Bool("serve", false, "streaming mode: keep one live session open; each ';'-terminated statement executes on arrival and reports its own latency")
	listen := flag.String("listen", "", "with -serve: also accept statements from TCP clients on this address, e.g. :5433")
	debugAddr := flag.String("debug-addr", "", "with -serve: serve the live introspection surface (/debug/roulette/snapshot, /debug/roulette/trace, /debug/pprof) on this address, e.g. :6060")
	stallWatch := flag.Duration("stall-watchdog", 2*time.Second, "with -serve: period of the engine's stall self-diagnosis (stuck fences, epoch lag, starved tenants); 0 disables")
	policyPath := flag.String("policy", "", "policy store file: learned Q-table snapshots load from it at startup and save back on clean shutdown, so recurring workloads warm-start across invocations")
	logLevel := flag.String("log-level", "warn", "minimum level of engine diagnostics on stderr: debug, info, warn, error")
	flag.Parse()

	logger := newLogger(*logLevel)

	if len(tables) == 0 {
		logger.Error("at least one -t name=file.csv is required")
		os.Exit(2)
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", roulette.MetricsHandler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				logger.Error("metrics server", "err", err)
			}
		}()
		fmt.Printf("serving metrics on http://%s/metrics\n", *metricsAddr)
	}

	schema := catalog.NewSchema()
	db := storage.NewDatabase(schema)
	var order []string
	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			logger.Error("bad -t flag (want name=file.csv)", "flag", spec)
			os.Exit(2)
		}
		if err := loadTable(schema, db, name, path); err != nil {
			logger.Error("loading table failed", "err", err)
			os.Exit(1)
		}
		order = append(order, name)
		fmt.Printf("loaded %s (%d rows)\n", name, db.MustTable(name).NumRows())
	}
	e := roulette.NewEngineOn(db)
	unifyDictionaries(e, schema, order)

	// The policy store is always present in serve mode so \policy save/load
	// work without the flag; batch mode only carries one when asked. An
	// empty store is free: a cold lookup leaves runs bit-for-bit unchanged.
	store, err := roulette.NewPolicyStore(roulette.PolicyStoreOptions{Path: *policyPath})
	if err != nil {
		logger.Warn("policy store unusable, starting cold", "path", *policyPath, "err", err)
	}
	if *policyPath != "" && store.Len() > 0 {
		fmt.Printf("policy store: warm-starting from %s (%d cached templates)\n", *policyPath, store.Len())
	}

	if *serve {
		if err := runServe(e, serveConfig{
			workers: *workers, stats: *stats, listen: *listen,
			debugAddr: *debugAddr, stallWatch: *stallWatch, logger: logger,
			store: store,
		}); err != nil {
			logger.Error("serve failed", "err", err)
			os.Exit(1)
		}
		return
	}

	runBatch := func(src string) {
		src = strings.TrimSpace(src)
		if src == "" {
			return
		}
		// Ctrl-C during the batch cancels it gracefully (partial results
		// are printed as lower bounds). The context is scoped to one batch
		// so an interrupted batch does not poison the next one; at the
		// prompt Ctrl-C keeps its default behaviour and kills the shell.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		opts := &roulette.Options{
			Workers:      *workers,
			CollectStats: *stats,
		}
		if *policyPath != "" {
			opts.PolicyStore = store
		}
		res, err := e.ExecuteSQLContext(ctx, src, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		for _, q := range res.Queries {
			note := ""
			if q.Aborted {
				note = fmt.Sprintf("\t-- aborted (%v), count is a lower bound", q.Err)
			}
			if len(q.Groups) <= 1 {
				fmt.Printf("%s: %d%s\n", q.Tag, q.Value(), note)
				continue
			}
			fmt.Printf("%s:%s\n", q.Tag, note)
			for _, g := range q.Groups {
				fmt.Printf("  %s\t%d\n", groupKey(g), g.Value)
			}
		}
		if res.Partial {
			fmt.Printf("(batch interrupted: partial results for %d queries in %v, %d episodes)\n",
				len(res.Queries), res.Elapsed, res.Episodes)
		} else {
			fmt.Printf("(%d queries in %v, %d episodes)\n", len(res.Queries), res.Elapsed, res.Episodes)
		}
		if res.Stats != nil {
			fmt.Print(res.Stats.Summary())
		}
	}

	saveStore := func() {
		if *policyPath == "" {
			return
		}
		if err := store.Save(); err != nil {
			logger.Warn("policy store save failed", "path", *policyPath, "err", err)
			return
		}
		fmt.Printf("policy store saved to %s (%d cached templates)\n", *policyPath, store.Len())
	}

	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "roulette-sql:", err)
			os.Exit(1)
		}
		runBatch(string(data))
		saveStore()
		return
	}

	fmt.Println(`enter SQL statements; run the batch with a line containing only "go"`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "go" {
			runBatch(buf.String())
			buf.Reset()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
	}
	runBatch(buf.String())
	saveStore()
}

// newLogger builds the stderr diagnostics logger for the given level name.
func newLogger(level string) *slog.Logger {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		lv = slog.LevelWarn
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
}

// serveConfig carries runServe's knobs.
type serveConfig struct {
	workers    int
	stats      bool
	listen     string
	debugAddr  string
	stallWatch time.Duration
	logger     *slog.Logger
	store      *roulette.PolicyStore
}

// runServe keeps one streaming session open and feeds it statements from
// stdin (and, with -listen, from TCP clients) as they arrive. Each query
// shares scans, STeMs and learned planning state with whatever else is in
// flight and reports its own latency the moment it retires.
func runServe(e *roulette.Engine, sc serveConfig) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	workers, stats, listen := sc.workers, sc.stats, sc.listen
	st, err := e.OpenStream(ctx, &roulette.StreamOptions{
		Options: roulette.Options{Workers: workers, CollectStats: stats, Logger: sc.logger,
			PolicyStore: sc.store},
		StallWatchdog: sc.stallWatch,
	})
	if err != nil {
		return err
	}

	if sc.debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(sc.debugAddr, st.DebugHandler()); err != nil {
				sc.logger.Error("debug server", "err", err)
			}
		}()
		fmt.Printf("serving introspection on http://%s/debug/roulette/snapshot\n", sc.debugAddr)
	}

	var out sync.Mutex // serializes result lines across retirement goroutines
	var wg sync.WaitGroup
	var seq int64
	submit := func(w io.Writer, stmt string) {
		stmt = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(stmt), ";"))
		if stmt == "" {
			return
		}
		q, err := roulette.ParseSQL(stmt)
		if err != nil {
			out.Lock()
			fmt.Fprintln(w, "error:", err)
			out.Unlock()
			return
		}
		q.WithTag(fmt.Sprintf("q%d", atomic.AddInt64(&seq, 1)))
		start := time.Now()
		tk, err := st.Submit(q)
		if err != nil {
			out.Lock()
			fmt.Fprintln(w, "error:", err)
			out.Unlock()
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			qr, _ := tk.Wait(context.Background())
			out.Lock()
			defer out.Unlock()
			note := ""
			if qr.Aborted {
				note = fmt.Sprintf("\t-- aborted (%v), count is a lower bound", qr.Err)
			}
			if len(qr.Groups) <= 1 {
				fmt.Fprintf(w, "%s: %d\t(%v)%s\n", qr.Tag, qr.Value(), time.Since(start).Round(time.Microsecond), note)
				return
			}
			fmt.Fprintf(w, "%s:\t(%v)%s\n", qr.Tag, time.Since(start).Round(time.Microsecond), note)
			for _, g := range qr.Groups {
				fmt.Fprintf(w, "  %s\t%d\n", groupKey(g), g.Value)
			}
		}()
	}

	// meta handles newline-terminated backslash commands.
	meta := func(w io.Writer, line string) {
		f := strings.Fields(line)
		out.Lock()
		defer out.Unlock()
		if f[0] != `\policy` {
			fmt.Fprintf(w, "error: unknown command %s (try \\policy)\n", f[0])
			return
		}
		switch {
		case len(f) == 1:
			s := sc.store.Stats()
			fmt.Fprintf(w, "policy store: %d templates cached, %d hits, %d misses, %d stores\n",
				s.Entries, s.Hits, s.Misses, s.Stores)
		case f[1] == "save" && len(f) == 3:
			// Snapshot the live session's learned state first so the file
			// reflects everything learned up to this moment, not just what
			// retirement sweeps have exported so far.
			st.SnapshotPolicy()
			if err := sc.store.SaveTo(f[2]); err != nil {
				fmt.Fprintln(w, "error:", err)
				return
			}
			fmt.Fprintf(w, "policy saved to %s (%d templates)\n", f[2], sc.store.Len())
		case f[1] == "load" && len(f) == 3:
			if err := sc.store.LoadFrom(f[2]); err != nil {
				fmt.Fprintln(w, "error:", err)
				return
			}
			fmt.Fprintf(w, "policy loaded from %s (%d templates; applies to statements submitted from now on)\n",
				f[2], sc.store.Len())
		default:
			fmt.Fprintln(w, `usage: \policy [save <file> | load <file>]`)
		}
	}

	// feed splits a reader into ';'-terminated statements, submitting each
	// as soon as its terminator arrives. Lines whose first character is a
	// backslash are meta-commands: they terminate at the newline and only
	// apply between statements (never mid-statement).
	feed := func(w io.Writer, r io.Reader) {
		var buf strings.Builder
		br := bufio.NewReader(r)
		for {
			line, err := br.ReadString('\n')
			if t := strings.TrimSpace(line); strings.HasPrefix(t, `\`) &&
				strings.TrimSpace(buf.String()) == "" {
				meta(w, t)
				line = ""
			}
			buf.WriteString(line)
			for {
				src := buf.String()
				i := strings.IndexByte(src, ';')
				if i < 0 {
					break
				}
				buf.Reset()
				buf.WriteString(src[i+1:])
				submit(w, src[:i])
			}
			if err != nil {
				submit(w, buf.String())
				return
			}
		}
	}

	if listen != "" {
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			return err
		}
		defer ln.Close()
		go func() {
			<-ctx.Done()
			ln.Close()
		}()
		fmt.Printf("accepting statements on %s\n", listen)
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go func() {
					defer conn.Close()
					feed(conn, conn)
				}()
			}
		}()
	}

	fmt.Println(`streaming session open; statements execute the moment their ';' arrives`)
	feed(os.Stdout, os.Stdin)
	wg.Wait()
	if err := st.Close(); err != nil {
		return err
	}
	if stats {
		fmt.Println("final STeM state:")
		for _, s := range st.StemStats() {
			fmt.Printf("  %-16s entries=%-8d probes=%-10d matches=%-10d est_bytes=%d\n",
				s.Table, s.Entries, s.Probes, s.Matches, s.EstBytes)
		}
	}
	return nil
}

// loadTable reads a CSV with a header row into a typed relation: columns
// whose first data value does not look like an integer become
// dictionary-encoded string columns, and every column is nullable (empty
// fields and \N load as SQL NULL).
func loadTable(schema *catalog.Schema, db *storage.Database, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	// Read the header and sniff the first data record to type the columns,
	// then reload with LoadCSV.
	sniff := bufio.NewScanner(f)
	if !sniff.Scan() {
		return fmt.Errorf("reading header of %s: empty file", path)
	}
	cols := strings.Split(strings.TrimSpace(sniff.Text()), ",")
	for i := range cols {
		cols[i] = strings.TrimSpace(cols[i])
	}
	var fields []string
	if sniff.Scan() {
		fields = strings.Split(sniff.Text(), ",")
	}
	schemaCols := make([]catalog.Column, len(cols))
	for i, c := range cols {
		schemaCols[i] = catalog.Column{Name: c, Nullable: true}
		if i < len(fields) && !looksInteger(strings.TrimSpace(fields[i])) {
			schemaCols[i].Type = value.String
		}
	}
	rel := catalog.NewTypedRelation(name, schemaCols...)
	if err := schema.AddRelation(rel); err != nil {
		return err
	}

	if _, err := f.Seek(0, 0); err != nil {
		return err
	}
	t, err := storage.LoadCSV(rel, f, storage.CSVOptions{Header: true})
	if err != nil {
		return fmt.Errorf("loading %s: %w", path, err)
	}
	db.Put(t)
	return nil
}

// unifyDictionaries merges every string column's dictionary into one shared
// dictionary, so any SQL join between string columns compares codes
// directly (the engine requires joined string columns to share one
// dictionary, and sharing it globally is always semantics-preserving:
// equal codes iff equal strings).
func unifyDictionaries(e *roulette.Engine, schema *catalog.Schema, tables []string) {
	var refs []string
	for _, tn := range tables {
		rel := schema.Relation(tn)
		for _, c := range rel.Columns {
			if c.Type == value.String {
				refs = append(refs, tn+"."+c.Name)
			}
		}
	}
	if len(refs) < 2 {
		return
	}
	if err := e.ShareDictionary(refs...); err != nil {
		fmt.Fprintln(os.Stderr, "warning: dictionary unification:", err)
		return
	}
	fmt.Printf("unified string dictionary across %s\n", strings.Join(refs, ", "))
}

// groupKey renders a group key for output: decoded string labels for
// dictionary-encoded GROUP BY columns, NULL for the NULL group, and the raw
// integer otherwise.
func groupKey(g roulette.Group) string {
	if g.Key == roulette.NullValue {
		return "NULL"
	}
	if g.Label != "" {
		return g.Label
	}
	return fmt.Sprintf("%d", g.Key)
}

func looksInteger(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if r == '-' && i == 0 && len(s) > 1 {
			continue
		}
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}
