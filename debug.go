package roulette

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/roulette-db/roulette/internal/engine"
	"github.com/roulette-db/roulette/internal/obs"
)

// EngineSnapshot is a point-in-time view of a stream's engine internals:
// per-instance fences and queued structural ops, in-flight episodes per
// worker, per-tenant scheduler state, epoch-reclamation lag and GC cursors,
// and STeM occupancy. See Stream.DebugSnapshot.
type EngineSnapshot = engine.DebugSnapshot

// DebugFinding is one stall diagnosis produced by Stream.Diagnose or the
// stall watchdog: a stuck fence, a long-running episode, epoch-reclamation
// lag, watermark lag, or a starved tenant, with the blocking instance,
// worker and queries named.
type DebugFinding = engine.Finding

// DebugSnapshot captures the stream's live engine state without stopping
// it: the snapshot is taken under the scheduler mutex between episodes, so
// it is consistent but costs no more than a submission.
func (s *Stream) DebugSnapshot() EngineSnapshot {
	return s.sess.DebugSnapshot()
}

// Diagnose runs the stall heuristics over the current engine state and
// returns any findings, most severe first. It is the on-demand form of the
// StallWatchdog background check, with default thresholds.
func (s *Stream) Diagnose() []DebugFinding {
	return s.sess.Diagnose(engine.DefaultDiagnoseConfig())
}

// WriteTrace writes the flight recorder's current contents — the most
// recent engine events across every worker and the control plane, merged
// into one causal timeline — as Chrome trace_event JSON. Load the output
// in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (s *Stream) WriteTrace(w io.Writer) error {
	rec := s.sess.Recorder()
	if rec == nil {
		return fmt.Errorf("roulette: stream has no flight recorder")
	}
	return obs.WriteTrace(w, rec.Snapshot(), rec.Rings())
}

// CaptureTrace records engine activity for the given duration (cut short
// if the stream's run context ends) and writes the captured window as
// Chrome trace_event JSON.
func (s *Stream) CaptureTrace(dur time.Duration, w io.Writer) error {
	rec := s.sess.Recorder()
	if rec == nil {
		return fmt.Errorf("roulette: stream has no flight recorder")
	}
	start := time.Now().UnixNano()
	select {
	case <-time.After(dur):
	case <-s.runDone:
	}
	return obs.WriteTrace(w, rec.Since(start), rec.Rings())
}

// AdmissionDebug is the admission-control section of the debug snapshot.
type AdmissionDebug struct {
	InFlightCost float64            `json:"in_flight_cost"`
	DrainRate    float64            `json:"drain_rate"` // cost units/sec, EWMA
	Admitted     int64              `json:"admitted"`
	Rejected     int64              `json:"rejected"`
	Tenants      []StreamTenantStat `json:"tenants,omitempty"`
}

// PolicyDebug is the policy-persistence section of the debug snapshot:
// whether the stream's learned policy has been warm-started (and its
// effective exploration rate), plus the attached store's cache counters.
type PolicyDebug struct {
	Warm    bool             `json:"warm"`
	Epsilon float64          `json:"epsilon"`
	Store   PolicyStoreStats `json:"store"`
}

// streamDebug is the JSON document served by /debug/roulette/snapshot.
type streamDebug struct {
	Engine    EngineSnapshot  `json:"engine"`
	Admission *AdmissionDebug `json:"admission,omitempty"`
	Policy    *PolicyDebug    `json:"policy,omitempty"`
	Findings  []DebugFinding  `json:"findings"`
}

// DebugHandler returns an http.Handler exposing the stream's live
// introspection surface:
//
//	/debug/roulette/snapshot   engine + admission state and current stall
//	                           findings, as JSON
//	/debug/roulette/trace      flight-recorder timeline as Chrome
//	                           trace_event JSON; ?dur=500ms captures a
//	                           fresh window instead of dumping the rings
//	/debug/pprof/...           the standard runtime profiles
//
// Mount it on an operator-only listener; the endpoints expose query tags
// and tenant names.
func (s *Stream) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/roulette/snapshot", func(w http.ResponseWriter, r *http.Request) {
		doc := streamDebug{Engine: s.DebugSnapshot(), Findings: s.Diagnose()}
		if doc.Findings == nil {
			doc.Findings = []DebugFinding{}
		}
		if s.adm != nil {
			inUse, adm, rej, tenants := s.AdmissionStats()
			doc.Admission = &AdmissionDebug{
				InFlightCost: inUse,
				DrainRate:    s.adm.DrainRate(),
				Admitted:     adm,
				Rejected:     rej,
				Tenants:      tenants,
			}
		}
		if s.store != nil {
			doc.Policy = &PolicyDebug{
				Warm:    s.learned.Warm(),
				Epsilon: s.learned.Epsilon(),
				Store:   s.store.Stats(),
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
	mux.HandleFunc("/debug/roulette/trace", func(w http.ResponseWriter, r *http.Request) {
		var err error
		w.Header().Set("Content-Type", "application/json")
		if d := r.URL.Query().Get("dur"); d != "" {
			dur, perr := time.ParseDuration(d)
			if perr != nil || dur < 0 || dur > time.Minute {
				http.Error(w, "dur must be a duration between 0 and 1m", http.StatusBadRequest)
				return
			}
			err = s.CaptureTrace(dur, w)
		} else {
			err = s.WriteTrace(w)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// recordSubmitEvent stamps an admission-layer rejection or shed onto the
// flight recorder's control ring and, when episode tracing is on, into the
// episode trace ring. The query never received an engine id, hence qid -1.
func (s *Stream) recordSubmitEvent(k obs.Kind, tenant string) {
	if rec := s.sess.Recorder(); rec.Enabled() {
		rec.Record(rec.Rings()-1, k, -1, 0, tenantHash(tenant), 0)
	}
	if s.trace != nil {
		name := "reject"
		if k == obs.KShed {
			name = "shed"
		}
		s.trace.AddEvent(name, tenant, -1)
	}
}

// tenantHash is FNV-1a of the tenant name, matching the engine's event
// stamping (tenant names must stay out of the fixed-width event rings).
func tenantHash(name string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return int64(h)
}
