package roulette

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"testing"
	"time"
)

// TestStreamDebugSurface drives the live introspection endpoints over a
// real stream: the snapshot must reflect submitted work and admission
// state, the trace endpoint must return valid Chrome trace_event JSON,
// and pprof must be mounted.
func TestStreamDebugSurface(t *testing.T) {
	e := streamFixture(t, 4000)
	qs := streamWorkload()

	// Size the budget off the real estimate so exactly one query fits.
	probe, err := e.OpenStream(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	est := probe.estimateCost(&qs[0].q)
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := e.OpenStream(context.Background(), &StreamOptions{
		Options:   Options{Seed: 5, TraceEpisodes: 128},
		Admission: &AdmissionOptions{MaxInFlightCost: 1.5 * est},
	})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := st.Submit(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	// The budget is absurdly small, so a second submission must reject —
	// and the rejection must land in both the recorder and the trace ring.
	if _, err := st.Submit(qs[1]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second submit: err = %v, want ErrOverloaded", err)
	}

	srv := httptest.NewServer(st.DebugHandler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/debug/roulette/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("snapshot: HTTP %d: %s", res.StatusCode, body)
	}
	var snap struct {
		Engine    EngineSnapshot  `json:"engine"`
		Admission *AdmissionDebug `json:"admission"`
		Findings  []DebugFinding  `json:"findings"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, body)
	}
	if !snap.Engine.Streaming || len(snap.Engine.Insts) == 0 {
		t.Errorf("snapshot engine section: %+v", snap.Engine)
	}
	if snap.Admission == nil || snap.Admission.Rejected == 0 {
		t.Errorf("snapshot admission section missing the rejection: %+v", snap.Admission)
	}
	if snap.Findings == nil {
		t.Error("snapshot findings section absent (want at least [])")
	}

	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	res, err = srv.Client().Get(srv.URL + "/debug/roulette/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("trace: HTTP %d", res.StatusCode)
	}
	var tf struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if n, ok := ev["name"].(string); ok {
			names[n] = true
		}
	}
	for _, want := range []string{"episode", "submit", "reject"} {
		if !names[want] {
			t.Errorf("trace has no %q events; saw %v", want, names)
		}
	}

	// A bounded capture window also works and is valid JSON.
	res, err = srv.Client().Get(srv.URL + "/debug/roulette/trace?dur=10ms")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(res.Body)
	res.Body.Close()
	if err := json.Unmarshal(body, &tf); err != nil {
		t.Fatalf("captured trace is not valid JSON: %v", err)
	}

	res, err = srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Errorf("pprof: HTTP %d", res.StatusCode)
	}

	// The rejection is also a typed record in the episode trace ring.
	found := false
	for _, rec := range st.trace.Events() {
		if rec.Event == "reject" && rec.Qid == -1 {
			found = true
		}
	}
	if !found {
		t.Error("no reject event in the episode trace ring")
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamDiagnoseQuiet asserts a healthy idle stream produces no
// critical findings and that the stall watchdog can be enabled through the
// public options without disturbing results.
func TestStreamDiagnoseQuiet(t *testing.T) {
	e := streamFixture(t, 2000)
	st, err := e.OpenStream(context.Background(), &StreamOptions{
		Options:       Options{Seed: 6},
		StallWatchdog: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := st.Submit(streamWorkload()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(15 * time.Millisecond) // let the watchdog tick while idle
	for _, f := range st.Diagnose() {
		if f.Severity == "critical" {
			t.Errorf("healthy stream diagnosed critical: %+v", f)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
