package roulette_test

import (
	"fmt"

	roulette "github.com/roulette-db/roulette"
)

// Example demonstrates the minimal embedded flow: create tables, build a
// batch of overlapping queries, execute them together.
func Example() {
	e := roulette.NewEngine()
	e.MustCreateTable("orders",
		roulette.Col("customer_id", 0, 1, 0, 2, 1, 0),
		roulette.Col("amount", 10, 20, 30, 40, 50, 60),
	)
	e.MustCreateTable("customers",
		roulette.Col("id", 0, 1, 2),
		roulette.Col("region", 7, 8, 7),
	)

	batch := []*roulette.Query{
		roulette.NewQuery("big-orders").
			From("orders").From("customers").
			Join("orders", "customer_id", "customers", "id").
			Ge("orders", "amount", 30).
			CountStar(),
		roulette.NewQuery("revenue-by-region").
			From("orders").From("customers").
			Join("orders", "customer_id", "customers", "id").
			Sum("orders", "amount").GroupBy("customers", "region").OrderByKey(),
	}
	res, err := e.ExecuteBatch(batch, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("big orders:", res.Queries[0].Value())
	for _, g := range res.Queries[1].Groups {
		fmt.Printf("region %d: %d\n", g.Key, g.Value)
	}
	// Output:
	// big orders: 4
	// region 7: 140
	// region 8: 70
}

// ExampleEngine_ExecuteSQL runs the same workload through the SQL front end.
func ExampleEngine_ExecuteSQL() {
	e := roulette.NewEngine()
	e.MustCreateTable("t", roulette.Col("x", 1, 2, 3, 4, 5))

	res, err := e.ExecuteSQL(`
		SELECT COUNT(*) FROM t WHERE x BETWEEN 2 AND 4;
		SELECT SUM(x) FROM t WHERE x > 1;
	`, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Queries[0].Value(), res.Queries[1].Value())
	// Output: 3 14
}

// ExampleQuery_Avg shows the aggregate builders.
func ExampleQuery_Avg() {
	e := roulette.NewEngine()
	e.MustCreateTable("m", roulette.Col("v", 2, 4, 6, 8))
	res, err := e.ExecuteBatch([]*roulette.Query{
		roulette.NewQuery("avg").From("m").Avg("m", "v"),
		roulette.NewQuery("minmax").From("m").Max("m", "v"),
	}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Queries[0].Value(), res.Queries[1].Value())
	// Output: 5 8
}
