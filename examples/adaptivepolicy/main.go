// Adaptive policy: watch Q-learning converge. The example runs a chain-
// schema workload (the paper's Fig. 15/16 setting) with convergence
// tracking: the measured episode cost falls while the policy's estimate of
// the minimum achievable cost rises until the two meet — the policy has
// learned the plan space. It also reports the learned/greedy intermediate-
// tuple ratio; on correlation-free chains greedy is near-optimal (the
// paper's Fig. 16i), whereas on correlated data (JOB, Fig. 13) the learned
// policy produces several times fewer tuples.
package main

import (
	"fmt"
	"log"

	roulette "github.com/roulette-db/roulette"
	"github.com/roulette-db/roulette/internal/chains"
)

func main() {
	// Chain schema (Fig. 15): store_sales with 4 chains of depth 2 — half
	// contracting (selective), half expanding joins.
	w, err := chains.Build(4, 9, 500, 40000, 7)
	if err != nil {
		log.Fatal(err)
	}
	inner := w.Queries(32, 8)

	e := roulette.NewEngineOn(w.DB)
	queries := make([]*roulette.Query, len(inner))
	for i, q := range inner {
		pub := roulette.NewQuery(q.Tag)
		for _, r := range q.Rels {
			pub.From(r.Table)
		}
		for _, j := range q.Joins {
			pub.Join(j.LeftAlias, j.LeftCol, j.RightAlias, j.RightCol)
		}
		for _, f := range q.Filters {
			pub.Between(f.Alias, f.Col, f.Lo, f.Hi)
		}
		queries[i] = pub.CountStar()
	}

	run := func(pol roulette.PolicyKind, track bool) *roulette.BatchResult {
		res, err := e.ExecuteBatch(queries, &roulette.Options{
			Policy: pol, DiscardRows: true, TrackConvergence: track, VectorSize: 64, Seed: 9,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	learned := run(roulette.PolicyLearned, true)
	greedy := run(roulette.PolicyGreedy, false)

	fmt.Println("episode-cost trace (bucketed): measured falls, estimate rises, they meet at convergence")
	n := len(learned.Convergence)
	bucket := n / 12
	if bucket < 1 {
		bucket = 1
	}
	for i := 0; i < n; i += bucket {
		end := i + bucket
		if end > n {
			end = n
		}
		var m, est float64
		for _, p := range learned.Convergence[i:end] {
			m += p.Measured
			est += p.Estimated
		}
		k := float64(end - i)
		fmt.Printf("  episodes %5d..%-5d  measured %12.0f   estimated-min %12.0f\n", i, end-1, m/k, est/k)
	}

	fmt.Printf("\nintermediate join tuples: learned %d vs greedy %d (ratio %.2f;\n",
		learned.JoinTuples, greedy.JoinTuples, float64(learned.JoinTuples)/float64(greedy.JoinTuples))
	fmt.Println("greedy is near-optimal on correlation-free chains — Fig. 16i; the learned")
	fmt.Println("policy wins decisively on correlated workloads — Fig. 13 / JOB)")
}
