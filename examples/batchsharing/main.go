// Batch sharing: the paper's headline scenario. A 256-query TPC-DS-style
// dashboard workload is executed (a) one query at a time and (b) as one
// RouLette batch, demonstrating how shared scans, grouped filters and
// shared symmetric joins turn higher query load into higher throughput.
package main

import (
	"fmt"
	"log"
	"time"

	roulette "github.com/roulette-db/roulette"
	"github.com/roulette-db/roulette/internal/qat"
	"github.com/roulette-db/roulette/internal/tpcds"
	"github.com/roulette-db/roulette/internal/workload"
)

func main() {
	fmt.Println("generating TPC-DS substrate...")
	db := tpcds.Generate(0.25, 1)
	e := roulette.NewEngineOn(db)

	p := workload.DefaultParams() // 4 joins, 10% selectivity, store snowflake
	inner := workload.NewGenerator(p).Generate(256)

	// The same workload through the public builder API.
	queries := make([]*roulette.Query, len(inner))
	for i, q := range inner {
		pub := roulette.NewQuery(q.Tag)
		for _, r := range q.Rels {
			pub.From(r.Table)
		}
		for _, j := range q.Joins {
			pub.Join(j.LeftAlias, j.LeftCol, j.RightAlias, j.RightCol)
		}
		for _, f := range q.Filters {
			pub.Between(f.Alias, f.Col, f.Lo, f.Hi)
		}
		queries[i] = pub.CountStar()
	}

	// (a) Query-at-a-time.
	start := time.Now()
	qatCounts, qatTime, err := qat.New(db).RunSerial(inner)
	if err != nil {
		log.Fatal(err)
	}
	_ = start
	fmt.Printf("query-at-a-time: %7.2fs  (%6.2f q/s)\n", qatTime.Seconds(), float64(len(inner))/qatTime.Seconds())

	// (b) One shared RouLette batch.
	res, err := e.ExecuteBatch(queries, &roulette.Options{DiscardRows: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared batch:    %7.2fs  (%6.2f q/s)  -> %.1fx throughput\n",
		res.Elapsed.Seconds(), res.Throughput(), qatTime.Seconds()/res.Elapsed.Seconds())

	for i := range qatCounts {
		if res.Queries[i].Count != qatCounts[i] {
			log.Fatalf("result mismatch on %s: %d vs %d", inner[i].Tag, res.Queries[i].Count, qatCounts[i])
		}
	}
	fmt.Printf("all %d results verified against the query-at-a-time engine\n", len(inner))
}
