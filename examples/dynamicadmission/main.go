// Dynamic admission: RouLette processes queries "across and beyond the
// lifetime of queries" — new queries can join an ongoing execution and
// share the remainder of the circular scans. The example staggers four
// waves of queries over one batch run and compares the shared cost against
// admitting everything up front and against full query-at-a-time isolation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	roulette "github.com/roulette-db/roulette"
)

func main() {
	rng := rand.New(rand.NewSource(3))

	// events(user_id, kind, ts) ⋈ users(id, cohort)
	const nEvents, nUsers = 200_000, 10_000
	userID := make([]int64, nEvents)
	kind := make([]int64, nEvents)
	ts := make([]int64, nEvents)
	for i := range userID {
		userID[i] = int64(rng.Intn(nUsers))
		kind[i] = int64(rng.Intn(16))
		ts[i] = int64(rng.Intn(86_400))
	}
	uid := make([]int64, nUsers)
	cohort := make([]int64, nUsers)
	for i := range uid {
		uid[i] = int64(i)
		cohort[i] = int64(rng.Intn(12))
	}

	e := roulette.NewEngine()
	e.MustCreateTable("events",
		roulette.ColSlice("user_id", userID),
		roulette.ColSlice("kind", kind),
		roulette.ColSlice("ts", ts),
	)
	e.MustCreateTable("users",
		roulette.ColSlice("id", uid),
		roulette.ColSlice("cohort", cohort),
	)

	mk := func(i int) *roulette.Query {
		k := int64(i % 4) // kinds repeat across waves: late waves redo shared work
		return roulette.NewQuery(fmt.Sprintf("monitor-%d", i)).
			From("events").From("users").
			Join("events", "user_id", "users", "id").
			Eq("events", "kind", k).
			Between("events", "ts", int64(i*1000), int64(i*1000+40_000)).
			CountStar()
	}
	queries := make([]*roulette.Query, 16)
	for i := range queries {
		queries[i] = mk(i)
	}

	run := func(label string, opts *roulette.Options) *roulette.BatchResult {
		res, err := e.ExecuteBatch(queries, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %8.3fs   intermediate join tuples %d\n", label, res.Elapsed.Seconds(), res.JoinTuples)
		return res
	}

	// Everything admitted at the start: maximum sharing.
	batch := run("single batch (100% overlap)", &roulette.Options{DiscardRows: true})

	// Four waves of four queries, each admitted after another 25% of the
	// events scan: late queries share the remaining scans and wrap around.
	waves := run("4 waves @ 25% apart", &roulette.Options{
		DiscardRows: true,
		Admissions: []roulette.Admission{
			{AfterFraction: 0.25, Queries: []int{4, 5, 6, 7}},
			{AfterFraction: 0.50, Queries: []int{8, 9, 10, 11}},
			{AfterFraction: 0.75, Queries: []int{12, 13, 14, 15}},
		},
	})

	for i := range queries {
		if batch.Queries[i].Count != waves.Queries[i].Count {
			log.Fatalf("query %d: %d (batch) != %d (waves)", i, batch.Queries[i].Count, waves.Queries[i].Count)
		}
	}
	fmt.Printf("\nresults identical under both admission schedules; ")
	fmt.Printf("staggering admissions cost %.2fx the tuples of one batch\n",
		float64(waves.JoinTuples)/float64(batch.JoinTuples))
}
