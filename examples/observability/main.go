// Observability: execution stats, episode tracing and metrics export. The
// example runs a TPC-DS-style dashboard batch with Options.CollectStats and
// Options.TraceEpisodes set, prints the per-batch breakdown (operator
// classes, STeM state, policy behaviour, sharing factor), dumps the traced
// episodes as JSON Lines, and scrapes the process-wide /metrics endpoint
// once in both exposition formats.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"strings"

	roulette "github.com/roulette-db/roulette"
	"github.com/roulette-db/roulette/internal/tpcds"
	"github.com/roulette-db/roulette/internal/workload"
)

func main() {
	fmt.Println("generating TPC-DS substrate...")
	db := tpcds.Generate(0.1, 1)
	e := roulette.NewEngineOn(db)

	p := workload.DefaultParams()
	inner := workload.NewGenerator(p).Generate(32)
	queries := make([]*roulette.Query, len(inner))
	for i, q := range inner {
		pub := roulette.NewQuery(q.Tag)
		for _, r := range q.Rels {
			pub.From(r.Table)
		}
		for _, j := range q.Joins {
			pub.Join(j.LeftAlias, j.LeftCol, j.RightAlias, j.RightCol)
		}
		for _, f := range q.Filters {
			pub.Between(f.Alias, f.Col, f.Lo, f.Hi)
		}
		queries[i] = pub.CountStar()
	}

	// Stats and tracing are opt-in: CollectStats attaches a Stats breakdown
	// to the result, TraceEpisodes keeps the last N episode records.
	res, err := e.ExecuteBatch(queries, &roulette.Options{
		DiscardRows:   true,
		CollectStats:  true,
		TraceEpisodes: 64,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d queries in %v\n\n", len(res.Queries), res.Elapsed)
	fmt.Println("--- batch stats ---")
	fmt.Print(res.Stats.Summary())

	// Per-operator-class and per-STeM detail beyond the summary line.
	st := res.Stats
	fmt.Printf("\nprobe ops: %d invocations, %d join tuples\n",
		st.Probes.Invocations, st.Probes.Tuples)
	for _, ss := range st.Stems {
		fmt.Printf("stem %-16s %8d entries  %9d probes  hit-rate %.2f\n",
			ss.Table, ss.Entries, ss.Probes, ss.HitRate())
	}

	// The trace ring holds the most recent episodes; WriteTraceJSONL emits
	// them one JSON object per line for offline analysis.
	fmt.Printf("\n--- last %d episodes (first 3 shown) ---\n", len(res.Trace()))
	for i, tr := range res.Trace() {
		if i == 3 {
			break
		}
		fmt.Printf("ep %4d  table=%-14s active=%2d  in=%4d join-in=%4d  joins=%v\n",
			tr.Episode, tr.Table, tr.ActiveQueries, tr.Input, tr.JoinInput, tr.JoinActions)
	}
	f, err := os.CreateTemp("", "roulette-trace-*.jsonl")
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteTraceJSONL(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("full trace written to %s\n", f.Name())

	// MetricsHandler serves process-wide counters accumulated across every
	// batch; in a real service mount it on your HTTP server:
	//
	//	http.Handle("/metrics", roulette.MetricsHandler())
	//
	// Here we scrape it in-process instead of binding a port.
	h := roulette.MetricsHandler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	fmt.Println("\n--- /metrics (Prometheus text, roulette_* families) ---")
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, "roulette_batches_total") ||
			strings.HasPrefix(line, "roulette_episodes_total") ||
			strings.HasPrefix(line, "roulette_shared_op") ||
			strings.HasPrefix(line, "roulette_phase_seconds_total") {
			fmt.Println(line)
		}
	}
}
