// Quickstart: embed RouLette, create two tables, and run a three-query
// batch that shares the fact-dimension join across all three queries.
package main

import (
	"fmt"
	"log"
	"math/rand"

	roulette "github.com/roulette-db/roulette"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// orders(customer_id, amount, status) — 100k rows.
	const nOrders, nCustomers = 100_000, 5_000
	custID := make([]int64, nOrders)
	amount := make([]int64, nOrders)
	status := make([]int64, nOrders)
	for i := range custID {
		custID[i] = int64(rng.Intn(nCustomers))
		amount[i] = int64(rng.Intn(500))
		status[i] = int64(rng.Intn(4)) // 0=new 1=paid 2=shipped 3=returned
	}

	// customers(id, region) — 5k rows.
	id := make([]int64, nCustomers)
	region := make([]int64, nCustomers)
	for i := range id {
		id[i] = int64(i)
		region[i] = int64(rng.Intn(8))
	}

	e := roulette.NewEngine()
	e.MustCreateTable("orders",
		roulette.ColSlice("customer_id", custID),
		roulette.ColSlice("amount", amount),
		roulette.ColSlice("status", status),
	)
	e.MustCreateTable("customers",
		roulette.ColSlice("id", id),
		roulette.ColSlice("region", region),
	)

	// Three analysts ask overlapping questions at once. RouLette executes
	// them as one batch: the orders ⋈ customers join is probed once per
	// tuple for all three queries together.
	queries := []*roulette.Query{
		roulette.NewQuery("paid-orders").
			From("orders").From("customers").
			Join("orders", "customer_id", "customers", "id").
			Eq("orders", "status", 1).
			CountStar(),
		roulette.NewQuery("revenue-by-region").
			From("orders").From("customers").
			Join("orders", "customer_id", "customers", "id").
			Between("orders", "status", 1, 2).
			Sum("orders", "amount").GroupBy("customers", "region").OrderByKey(),
		roulette.NewQuery("big-returns").
			From("orders").From("customers").
			Join("orders", "customer_id", "customers", "id").
			Eq("orders", "status", 3).
			Ge("orders", "amount", 400).
			CountStar(),
	}

	res, err := e.ExecuteBatch(queries, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("executed %d queries in %v (%d episodes, %.0f q/s)\n\n",
		len(res.Queries), res.Elapsed, res.Episodes, res.Throughput())
	fmt.Printf("paid orders:         %d\n", res.Queries[0].Value())
	fmt.Println("revenue by region:")
	for _, g := range res.Queries[1].Groups {
		fmt.Printf("  region %d: %d\n", g.Key, g.Value)
	}
	fmt.Printf("big returned orders: %d\n", res.Queries[2].Value())
}
