// Streaming: the engine as a long-lived service. A stream is opened once;
// queries are submitted whenever they arrive, start executing immediately
// against the scans, STeMs and learned policy built by earlier queries,
// and each retires with its own result the moment its work drains. The
// example submits three waves, watches per-query latency and the STeM
// footprint, and shows the garbage collector reclaiming retired queries'
// state between waves.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	roulette "github.com/roulette-db/roulette"
)

func main() {
	rng := rand.New(rand.NewSource(5))

	// events(user_id, kind, ts) ⋈ users(id, cohort)
	const nEvents, nUsers = 200_000, 10_000
	userID := make([]int64, nEvents)
	kind := make([]int64, nEvents)
	ts := make([]int64, nEvents)
	for i := range userID {
		userID[i] = int64(rng.Intn(nUsers))
		kind[i] = int64(rng.Intn(16))
		ts[i] = int64(rng.Intn(86_400))
	}
	uid := make([]int64, nUsers)
	cohort := make([]int64, nUsers)
	for i := range uid {
		uid[i] = int64(i)
		cohort[i] = int64(rng.Intn(12))
	}

	e := roulette.NewEngine()
	e.MustCreateTable("events",
		roulette.ColSlice("user_id", userID),
		roulette.ColSlice("kind", kind),
		roulette.ColSlice("ts", ts),
	)
	e.MustCreateTable("users",
		roulette.ColSlice("id", uid),
		roulette.ColSlice("cohort", cohort),
	)

	ctx := context.Background()
	st, err := e.OpenStream(ctx, &roulette.StreamOptions{
		Options:    roulette.Options{Workers: 2, CollectStats: true},
		MaxQueries: 16,
	})
	if err != nil {
		log.Fatal(err)
	}

	mk := func(wave, i int) *roulette.Query {
		return roulette.NewQuery(fmt.Sprintf("w%d-q%d", wave, i)).
			From("events").From("users").
			Join("events", "user_id", "users", "id").
			Eq("events", "kind", int64(i%4)).
			Between("events", "ts", int64(i*4000), int64(i*4000+50_000)).
			CountStar()
	}

	stemBytes := func() (sum int64) {
		for _, s := range st.StemStats() {
			sum += s.EstBytes
		}
		return sum
	}

	for wave := 0; wave < 3; wave++ {
		fmt.Printf("--- wave %d (stem footprint at start: %d KiB) ---\n", wave, stemBytes()>>10)
		type inflight struct {
			tk    *roulette.Ticket
			start time.Time
		}
		var batch []inflight
		for i := 0; i < 6; i++ {
			q := mk(wave, wave*6+i)
			start := time.Now()
			tk, err := st.Submit(q)
			if errors.Is(err, roulette.ErrStreamFull) {
				// Capacity frees as the collector sweeps retired queries.
				time.Sleep(time.Millisecond)
				tk, err = st.Submit(q)
			}
			if err != nil {
				log.Fatal(err)
			}
			batch = append(batch, inflight{tk, start})
		}
		fmt.Printf("(in flight: stem footprint %d KiB)\n", stemBytes()>>10)
		for _, f := range batch {
			qr, err := f.tk.Wait(ctx)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s count=%-7d latency=%v\n",
				qr.Tag, qr.Value(), time.Since(f.start).Round(time.Microsecond))
		}
		// Idle between waves: the GC sweeps the retired queries' STeM
		// entries, grouped-filter predicates and Q-table states.
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Printf("--- after retirement (stem footprint: %d KiB) ---\n", stemBytes()>>10)
	for _, s := range st.StemStats() {
		fmt.Printf("%-8s entries=%-7d inserts=%-8d probes=%-8d est=%d KiB\n",
			s.Table, s.Entries, s.Inserts, s.Probes, s.EstBytes>>10)
	}
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
}
