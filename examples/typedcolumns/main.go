// Typed columns walkthrough: dictionary-encoded strings, nullable
// attributes, string predicates, a cross-relation STRING join via a shared
// dictionary, and decoded group-by labels — in both the builder and SQL
// front ends.
//
// Strings never reach the engine's hot path: they are interned into
// per-column dictionaries at load time and flow through filters, STeMs and
// joins as dense int64 codes. NULL is an in-band sentinel no predicate or
// join key ever matches (SQL semantics).
package main

import (
	"fmt"
	"log"
	"math/rand"

	roulette "github.com/roulette-db/roulette"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	nations := []string{"FRANCE", "GERMANY", "JAPAN", "BRAZIL", "CANADA"}
	segments := []string{"AUTOMOBILE", "BUILDING", "MACHINERY"}

	// customers(id, segment, nation) — nation is nullable: some customers
	// never filled in their address.
	const nCust = 2000
	custID := make([]int64, nCust)
	segment := make([]string, nCust)
	nation := make([]string, nCust)
	nationKnown := make([]bool, nCust)
	for i := range custID {
		custID[i] = int64(i)
		segment[i] = segments[rng.Intn(len(segments))]
		nation[i] = nations[rng.Intn(len(nations))]
		nationKnown[i] = rng.Intn(10) > 0 // ~10% NULL
	}

	// suppliers(id, nation) — joins to customers ON NATION, a string join.
	const nSupp = 50
	suppID := make([]int64, nSupp)
	suppNation := make([]string, nSupp)
	for i := range suppID {
		suppID[i] = int64(i)
		suppNation[i] = nations[rng.Intn(len(nations))]
	}

	// orders(customer_id, supplier_id, amount).
	const nOrders = 50_000
	ordCust := make([]int64, nOrders)
	ordSupp := make([]int64, nOrders)
	amount := make([]int64, nOrders)
	for i := range ordCust {
		ordCust[i] = int64(rng.Intn(nCust))
		ordSupp[i] = int64(rng.Intn(nSupp))
		amount[i] = int64(rng.Intn(500))
	}

	e := roulette.NewEngine()
	e.MustCreateTable("customers",
		roulette.ColSlice("id", custID),
		roulette.StrColSlice("segment", segment),
		roulette.NullableStrCol("nation", nation, nationKnown),
	)
	e.MustCreateTable("suppliers",
		roulette.ColSlice("id", suppID),
		roulette.StrColSlice("nation", suppNation),
	)
	e.MustCreateTable("orders",
		roulette.ColSlice("customer_id", ordCust),
		roulette.ColSlice("supplier_id", ordSupp),
		roulette.ColSlice("amount", amount),
	)

	// Each table's string columns got their own dictionary at load time.
	// A string JOIN compares dictionary codes, so both nation columns must
	// agree on what each code means: merge their dictionaries (remapping
	// the affected columns in place) before querying across them.
	if err := e.ShareDictionary("customers.nation", "suppliers.nation"); err != nil {
		log.Fatal(err)
	}

	queries := []*roulette.Query{
		// String equality + IN-list predicates.
		roulette.NewQuery("building-volume").
			From("orders").From("customers").
			Join("orders", "customer_id", "customers", "id").
			EqString("customers", "segment", "BUILDING").
			CountStar(),
		// NULL semantics: customers whose nation is unknown. NULL join
		// keys never match, so this query joins on the int key instead.
		roulette.NewQuery("unknown-nation").
			From("orders").From("customers").
			Join("orders", "customer_id", "customers", "id").
			IsNull("customers", "nation").
			CountStar(),
		// The cross-relation STRING join: orders whose supplier sits in
		// the customer's own nation, for two segments.
		roulette.NewQuery("local-supply").
			From("orders").From("customers").From("suppliers").
			Join("orders", "customer_id", "customers", "id").
			Join("orders", "supplier_id", "suppliers", "id").
			Join("customers", "nation", "suppliers", "nation").
			InStrings("customers", "segment", "AUTOMOBILE", "MACHINERY").
			CountStar(),
		// GROUP BY a string column: results come back decoded, ordered by
		// label, with the NULL group (empty label) first.
		roulette.NewQuery("revenue-by-nation").
			From("orders").From("customers").
			Join("orders", "customer_id", "customers", "id").
			Sum("orders", "amount").GroupBy("customers", "nation").OrderByKey(),
	}

	res, err := e.ExecuteBatch(queries, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d queries in %v\n\n", len(res.Queries), res.Elapsed)
	fmt.Printf("BUILDING orders:          %d\n", res.Queries[0].Value())
	fmt.Printf("orders w/ unknown nation: %d\n", res.Queries[1].Value())
	fmt.Printf("locally supplied orders:  %d\n", res.Queries[2].Value())
	fmt.Println("revenue by nation:")
	for _, g := range res.Queries[3].Groups {
		label := g.Label
		if g.Key == roulette.NullValue {
			label = "(unknown)"
		}
		fmt.Printf("  %-10s %d\n", label, g.Value)
	}

	// The same through SQL: quoted strings ('' escapes a quote), IN lists,
	// IS [NOT] NULL.
	sqlRes, err := e.ExecuteSQL(`
	    SELECT COUNT(*) FROM orders o, customers c
	    WHERE o.customer_id = c.id
	      AND c.segment IN ('BUILDING', 'MACHINERY')
	      AND c.nation IS NOT NULL;
	`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSQL: known-nation BUILDING/MACHINERY orders: %d\n",
		sqlRes.Queries[0].Value())
}
