module github.com/roulette-db/roulette

go 1.22
