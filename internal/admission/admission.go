// Package admission implements the streaming engine's overload protection:
// a bounded in-flight cost budget, per-tenant token-bucket rate limits, and
// the typed errors the public API surfaces when work is rejected or shed.
//
// The controller sits in front of the engine's quiesce gate: Submit asks it
// for admission *before* pausing the worker pool, so a saturated stream
// rejects cheaply (one mutex, no barrier) instead of collapsing every
// worker onto the gate for a query that cannot run anyway. Costs are the
// engine's estimated execution nanoseconds (cost.Model over the query's
// relation cardinalities); releases happen at retirement, so the budget
// bounds estimated in-flight work, not just query count.
package admission

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOverloaded is the sentinel every budget or rate rejection matches via
// errors.Is. The concrete error is an *OverloadError carrying the reason
// and a retry-after hint.
var ErrOverloaded = errors.New("roulette: stream overloaded")

// ErrDeadlineShed is the sentinel matched by queries shed for an unmeetable
// deadline — rejected at submission (estimated cost exceeds the remaining
// budget) or dropped mid-flight when the deadline expires before the
// query's scans drain. The concrete error is a *ShedError.
var ErrDeadlineShed = errors.New("roulette: query shed (deadline unmeetable)")

// RejectReason classifies an admission rejection.
type RejectReason int

// Rejection classes.
const (
	// ReasonBudget: the stream's in-flight cost budget is exhausted.
	ReasonBudget RejectReason = iota
	// ReasonRate: the tenant's token bucket is empty.
	ReasonRate
	// ReasonInjected: a fault-injection hook forced the rejection.
	ReasonInjected
)

// String names the reason.
func (r RejectReason) String() string {
	switch r {
	case ReasonBudget:
		return "budget"
	case ReasonRate:
		return "rate"
	case ReasonInjected:
		return "injected"
	}
	return "unknown"
}

// OverloadError is the typed rejection returned by Controller.Admit. It
// matches ErrOverloaded under errors.Is.
type OverloadError struct {
	Tenant string
	Reason RejectReason
	// RetryAfter estimates when retrying is worthwhile: the token-refill
	// time for rate rejections, the expected budget-drain time for budget
	// rejections. It is a hint, not a reservation.
	RetryAfter time.Duration
}

// Error renders the rejection.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("roulette: stream overloaded (tenant %q, %s limit, retry after %v)",
		e.Tenant, e.Reason, e.RetryAfter)
}

// Is matches the ErrOverloaded sentinel.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// ShedError is the typed error of a deadline-shed query. It matches
// ErrDeadlineShed under errors.Is.
type ShedError struct {
	Tenant string
	// AtSubmit is true when the query was rejected before admission
	// (estimated cost already exceeded the deadline); false when it was
	// shed mid-flight by the expiry watchdog.
	AtSubmit bool
	// Deadline is the query's absolute deadline; Estimate the estimated
	// execution time that made it hopeless (submit-time sheds only).
	Deadline time.Time
	Estimate time.Duration
}

// Error renders the shed.
func (e *ShedError) Error() string {
	if e.AtSubmit {
		return fmt.Sprintf("roulette: query shed at submit (tenant %q: estimated cost %v exceeds deadline)",
			e.Tenant, e.Estimate)
	}
	return fmt.Sprintf("roulette: query shed mid-flight (tenant %q: deadline expired)", e.Tenant)
}

// Is matches the ErrDeadlineShed sentinel.
func (e *ShedError) Is(target error) bool { return target == ErrDeadlineShed }

// TenantOf derives a tenant key from a query tag: the prefix before the
// first '/', or the whole tag when there is none. Tags like "gold/q17" let
// one tenant submit many distinctly tagged queries.
func TenantOf(tag string) string {
	for i := 0; i < len(tag); i++ {
		if tag[i] == '/' {
			return tag[:i]
		}
	}
	return tag
}

// TenantLimit overrides one tenant's rate limit and fairness weight.
type TenantLimit struct {
	// Rate is the sustained admission rate in cost units per second
	// (0 inherits the default; negative disables rate limiting for the
	// tenant).
	Rate float64
	// Burst is the bucket capacity in cost units (0 inherits).
	Burst float64
	// Weight is the tenant's weighted-fair scheduling share (0 inherits;
	// the scheduler serves tenants proportionally to weight).
	Weight float64
}

// Hooks are the fault-injection points the chaos harness uses. All fields
// are optional.
type Hooks struct {
	// ForceReject, when non-nil, is consulted on every Admit with the
	// submission sequence number; returning true rejects the submission
	// with ReasonInjected regardless of budget and rate state.
	ForceReject func(tenant string, seq uint64) bool
	// RetireDelay, when non-nil, runs before a retirement is released back
	// to the controller (delayed-retirement injection; it may sleep).
	RetireDelay func(tenant string, seq uint64)
}

// Config parameterizes a Controller.
type Config struct {
	// MaxInFlightCost bounds the summed estimated cost (nanoseconds) of
	// admitted, not-yet-retired queries; 0 means no budget.
	MaxInFlightCost float64
	// DefaultRate / DefaultBurst apply to tenants without an explicit
	// TenantLimit. Zero rate means no rate limiting by default.
	DefaultRate  float64
	DefaultBurst float64
	// Tenants overrides limits per tenant key.
	Tenants map[string]TenantLimit
	// Now is the clock (nil = time.Now; injectable for tests).
	Now func() time.Time
	// Hooks are the chaos-injection points.
	Hooks Hooks
}

// bucket is one tenant's token bucket, refilled lazily on access.
type bucket struct {
	rate   float64 // cost units per second; <= 0 disables
	burst  float64
	tokens float64
	last   time.Time
}

// refill advances the bucket to now.
func (b *bucket) refill(now time.Time) {
	if b.rate <= 0 {
		return
	}
	dt := now.Sub(b.last).Seconds()
	if dt <= 0 {
		return
	}
	b.tokens += dt * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// tenantStats are one tenant's admission counters.
type tenantStats struct {
	Admitted   int64
	Rejected   int64 // budget + rate + injected
	Shed       int64 // deadline sheds recorded via RecordShed
	InFlight   int64 // admitted, not yet released
	CostInUse  float64
	bucketOnce bool
	bucket     bucket
	weight     float64
}

// Controller tracks the stream's in-flight cost and per-tenant buckets.
// Safe for concurrent use; all methods are short critical sections.
type Controller struct {
	cfg Config

	mu        sync.Mutex
	inUse     float64 // summed estimated cost of admitted, unreleased queries
	inFlightN int64   // admitted, unreleased query count
	seq       uint64  // submission sequence (fault-injection key)
	tenants   map[string]*tenantStats

	// drainEWMA tracks the rate at which cost is released (cost units per
	// second), feeding budget-rejection retry-after hints.
	drainEWMA  float64
	lastDrain  time.Time
	totalAdmit int64
	totalRej   int64
}

// NewController creates a controller.
func NewController(cfg Config) *Controller {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Controller{cfg: cfg, tenants: make(map[string]*tenantStats)}
}

// tenant returns (creating) the tenant's state.
func (c *Controller) tenant(name string) *tenantStats {
	ts := c.tenants[name]
	if ts == nil {
		ts = &tenantStats{weight: 1}
		lim := c.cfg.Tenants[name]
		if lim.Weight > 0 {
			ts.weight = lim.Weight
		}
		ts.bucket = bucket{rate: c.cfg.DefaultRate, burst: c.cfg.DefaultBurst}
		if lim.Rate != 0 {
			ts.bucket.rate = lim.Rate
		}
		if lim.Burst != 0 {
			ts.bucket.burst = lim.Burst
		}
		if ts.bucket.rate > 0 && ts.bucket.burst <= 0 {
			// A rate with no burst would reject everything; default to one
			// second of rate.
			ts.bucket.burst = ts.bucket.rate
		}
		c.tenants[name] = ts
	}
	return ts
}

// Weight returns the tenant's fairness weight (>= 1 tenant created).
func (c *Controller) Weight(name string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tenant(name).weight
}

// Admit charges cost against the budget and the tenant's bucket. On
// success the cost stays charged until Release. On rejection it returns an
// *OverloadError and nothing is charged.
func (c *Controller) Admit(tenant string, cost float64) error {
	if cost < 0 {
		cost = 0
	}
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	seq := c.seq
	c.seq++
	ts := c.tenant(tenant)

	if f := c.cfg.Hooks.ForceReject; f != nil && f(tenant, seq) {
		ts.Rejected++
		c.totalRej++
		return &OverloadError{Tenant: tenant, Reason: ReasonInjected, RetryAfter: time.Millisecond}
	}
	if max := c.cfg.MaxInFlightCost; max > 0 && c.inUse+cost > max {
		ts.Rejected++
		c.totalRej++
		return &OverloadError{Tenant: tenant, Reason: ReasonBudget,
			RetryAfter: c.budgetRetryLocked(c.inUse + cost - max)}
	}
	b := &ts.bucket
	if b.rate > 0 {
		if !ts.bucketOnce {
			// First touch: a fresh bucket starts full.
			b.tokens, b.last = b.burst, now
			ts.bucketOnce = true
		}
		b.refill(now)
		if b.tokens < cost {
			ts.Rejected++
			c.totalRej++
			wait := time.Duration((cost - b.tokens) / b.rate * float64(time.Second))
			return &OverloadError{Tenant: tenant, Reason: ReasonRate,
				RetryAfter: clampRetry(wait)}
		}
		b.tokens -= cost
	}
	c.inUse += cost
	c.inFlightN++
	ts.CostInUse += cost
	ts.InFlight++
	ts.Admitted++
	c.totalAdmit++
	return nil
}

// Release returns an admitted query's cost to the budget (at retirement).
func (c *Controller) Release(tenant string, cost float64) {
	if cost < 0 {
		cost = 0
	}
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.tenant(tenant)
	c.inUse -= cost
	if c.inFlightN > 0 {
		c.inFlightN--
	}
	if c.inUse < 0 || c.inFlightN == 0 {
		// Snap float summation residue to zero once nothing is in flight,
		// so an idle budget is exactly full again.
		c.inUse = 0
	}
	ts.CostInUse -= cost
	if ts.InFlight > 0 {
		ts.InFlight--
	}
	if ts.CostInUse < 0 || ts.InFlight == 0 {
		ts.CostInUse = 0
	}
	// Fold the release into the drain-rate estimate (EWMA over release
	// inter-arrival cost/seconds).
	if !c.lastDrain.IsZero() {
		if dt := now.Sub(c.lastDrain).Seconds(); dt > 0 && cost > 0 {
			const alpha = 0.3
			rate := cost / dt
			if c.drainEWMA == 0 {
				c.drainEWMA = rate
			} else {
				c.drainEWMA = alpha*rate + (1-alpha)*c.drainEWMA
			}
		}
	}
	c.lastDrain = now
}

// RetireDelayHook runs the delayed-retirement injection hook, if any. It
// must be called outside the controller mutex (the hook may sleep).
func (c *Controller) RetireDelayHook(tenant string) {
	if f := c.cfg.Hooks.RetireDelay; f != nil {
		c.mu.Lock()
		seq := c.seq
		c.mu.Unlock()
		f(tenant, seq)
	}
}

// RecordShed counts one deadline shed against the tenant.
func (c *Controller) RecordShed(tenant string) {
	c.mu.Lock()
	c.tenant(tenant).Shed++
	c.mu.Unlock()
}

// budgetRetryLocked estimates how long until `needed` cost units drain.
func (c *Controller) budgetRetryLocked(needed float64) time.Duration {
	if c.drainEWMA > 0 {
		return clampRetry(time.Duration(needed / c.drainEWMA * float64(time.Second)))
	}
	return 10 * time.Millisecond
}

// clampRetry bounds a retry hint to a sane window.
func clampRetry(d time.Duration) time.Duration {
	const lo, hi = time.Millisecond, 5 * time.Second
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// TenantSnapshot is one tenant's counters at a point in time.
type TenantSnapshot struct {
	Tenant    string
	Admitted  int64
	Rejected  int64
	Shed      int64
	InFlight  int64
	CostInUse float64
	Weight    float64
}

// Snapshot copies the controller's aggregate and per-tenant counters.
func (c *Controller) Snapshot() (inUse float64, admitted, rejected int64, tenants []TenantSnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tenants = make([]TenantSnapshot, 0, len(c.tenants))
	for name, ts := range c.tenants {
		tenants = append(tenants, TenantSnapshot{
			Tenant: name, Admitted: ts.Admitted, Rejected: ts.Rejected,
			Shed: ts.Shed, InFlight: ts.InFlight, CostInUse: ts.CostInUse,
			Weight: ts.weight,
		})
	}
	return c.inUse, c.totalAdmit, c.totalRej, tenants
}

// InFlightCost returns the summed estimated cost currently admitted.
func (c *Controller) InFlightCost() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inUse
}

// DrainRate returns the EWMA of cost units released per second — the rate
// the controller uses to compute RetryAfter hints. 0 until the first
// release. Exposed on the live debug snapshot so an operator can judge
// how fast the in-flight budget is turning over.
func (c *Controller) DrainRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drainEWMA
}
