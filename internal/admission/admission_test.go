package admission

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBudgetRejectsAndReleases(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{MaxInFlightCost: 100, Now: clk.Now})
	if err := c.Admit("a", 60); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if err := c.Admit("a", 30); err != nil {
		t.Fatalf("second admit: %v", err)
	}
	err := c.Admit("b", 20)
	if err == nil {
		t.Fatal("expected budget rejection")
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("rejection must match ErrOverloaded, got %v", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ReasonBudget {
		t.Fatalf("want *OverloadError{ReasonBudget}, got %#v", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("retry-after hint must be positive, got %v", oe.RetryAfter)
	}
	c.Release("a", 60)
	if err := c.Admit("b", 20); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	if got := c.InFlightCost(); got != 50 {
		t.Fatalf("in-flight cost = %v, want 50", got)
	}
}

func TestTokenBucketRateLimit(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{
		Tenants: map[string]TenantLimit{"slow": {Rate: 100, Burst: 100}},
		Now:     clk.Now,
	})
	// The bucket starts full: 100 units available.
	if err := c.Admit("slow", 80); err != nil {
		t.Fatalf("burst admit: %v", err)
	}
	err := c.Admit("slow", 80)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ReasonRate {
		t.Fatalf("want rate rejection, got %v", err)
	}
	// 80-20=60 units short at 100/s: retry hint ~600ms.
	if oe.RetryAfter < 500*time.Millisecond || oe.RetryAfter > 700*time.Millisecond {
		t.Fatalf("retry-after = %v, want ~600ms", oe.RetryAfter)
	}
	clk.Advance(time.Second) // refill to burst cap
	if err := c.Admit("slow", 80); err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
	// An unlimited tenant is never rate-rejected.
	for i := 0; i < 100; i++ {
		if err := c.Admit("fast", 1000); err != nil {
			t.Fatalf("unlimited tenant rejected: %v", err)
		}
	}
}

func TestNegativeRateDisablesLimit(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{
		DefaultRate: 1, DefaultBurst: 1,
		Tenants: map[string]TenantLimit{"vip": {Rate: -1}},
		Now:     clk.Now,
	})
	for i := 0; i < 10; i++ {
		if err := c.Admit("vip", 100); err != nil {
			t.Fatalf("vip admit %d: %v", i, err)
		}
	}
	if err := c.Admit("other", 100); err == nil {
		t.Fatal("default-rate tenant should be rejected")
	}
}

func TestForceRejectHook(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{
		Now: clk.Now,
		Hooks: Hooks{ForceReject: func(tenant string, seq uint64) bool {
			return seq%2 == 0
		}},
	})
	var rejected int
	for i := 0; i < 10; i++ {
		if err := c.Admit("t", 1); err != nil {
			var oe *OverloadError
			if !errors.As(err, &oe) || oe.Reason != ReasonInjected {
				t.Fatalf("want injected rejection, got %v", err)
			}
			rejected++
		}
	}
	if rejected != 5 {
		t.Fatalf("rejected %d of 10, want 5", rejected)
	}
}

func TestWeights(t *testing.T) {
	c := NewController(Config{
		Tenants: map[string]TenantLimit{"gold": {Weight: 4}},
	})
	if w := c.Weight("gold"); w != 4 {
		t.Fatalf("gold weight = %v, want 4", w)
	}
	if w := c.Weight("anon"); w != 1 {
		t.Fatalf("default weight = %v, want 1", w)
	}
}

func TestShedErrorMatchesSentinel(t *testing.T) {
	err := error(&ShedError{Tenant: "t", AtSubmit: true, Estimate: time.Second})
	if !errors.Is(err, ErrDeadlineShed) {
		t.Fatal("ShedError must match ErrDeadlineShed")
	}
	if errors.Is(err, ErrOverloaded) {
		t.Fatal("ShedError must not match ErrOverloaded")
	}
	var se *ShedError
	if !errors.As(err, &se) || !se.AtSubmit {
		t.Fatalf("errors.As round-trip failed: %#v", err)
	}
}

func TestTenantOf(t *testing.T) {
	cases := map[string]string{
		"gold/q17": "gold",
		"gold":     "gold",
		"a/b/c":    "a",
		"":         "",
		"/x":       "",
	}
	for tag, want := range cases {
		if got := TenantOf(tag); got != want {
			t.Errorf("TenantOf(%q) = %q, want %q", tag, got, want)
		}
	}
}

func TestSnapshotCounters(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{MaxInFlightCost: 10, Now: clk.Now})
	_ = c.Admit("a", 8)
	_ = c.Admit("a", 8) // rejected
	c.RecordShed("a")
	inUse, admitted, rejected, tenants := c.Snapshot()
	if inUse != 8 || admitted != 1 || rejected != 1 {
		t.Fatalf("snapshot = (%v, %d, %d), want (8, 1, 1)", inUse, admitted, rejected)
	}
	if len(tenants) != 1 || tenants[0].Shed != 1 || tenants[0].InFlight != 1 {
		t.Fatalf("tenant snapshot wrong: %+v", tenants)
	}
}

// TestConcurrentAdmitRelease exercises the controller under -race: the
// budget invariant (inUse never exceeds max, never goes negative) must hold
// across concurrent admits and releases.
func TestConcurrentAdmitRelease(t *testing.T) {
	c := NewController(Config{MaxInFlightCost: 1000})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := string(rune('a' + g%4))
			for i := 0; i < 500; i++ {
				if err := c.Admit(tenant, 10); err == nil {
					c.Release(tenant, 10)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.InFlightCost(); got != 0 {
		t.Fatalf("in-flight cost after drain = %v, want 0", got)
	}
}
