package bench

import (
	"time"

	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/tpcds"
	"github.com/roulette-db/roulette/internal/workload"
)

// BatchingResult compares workload-agnostic FIFO batching against
// workload-aware clustering (§6.1's suggested future optimization).
type BatchingResult struct {
	FIFOSimilarity      float64
	ClusteredSimilarity float64
	FIFOElapsed         time.Duration
	ClusteredElapsed    time.Duration
	Queries             int
	Speedup             float64
}

// Batching runs a diverse (snowstorm-all) query stream through RouLette
// twice: once in FIFO batches and once in similarity-clustered batches of
// the same size. Clustering raises intra-batch homogeneity, which the
// Fig. 11d sensitivity analysis showed is what sharing thrives on.
func (c *Config) Batching() (*BatchingResult, error) {
	db := tpcds.Generate(c.Scale, c.Seed)
	p := workload.DefaultParams()
	p.Kind = tpcds.SnowstormAll
	p.Joins = 4
	p.Seed = c.Seed
	n, batch := 512, 64
	if c.Quick {
		n, batch = 96, 24
	}
	qs := workload.NewGenerator(p).Generate(n)

	run := func(batches [][]*query.Query) (time.Duration, error) {
		var total time.Duration
		for _, b := range batches {
			// Copy queries: compilation assigns batch-local IDs.
			cp := make([]*query.Query, len(b))
			for i, q := range b {
				c := *q
				cp[i] = &c
			}
			r, err := c.runSystem(SysRouLette, db, cp, 0)
			if err != nil {
				return 0, err
			}
			total += r.Elapsed
		}
		return total, nil
	}

	fifo := workload.FIFOBatches(qs, batch)
	clustered := workload.ClusterBatches(qs, batch)

	res := &BatchingResult{
		Queries:             n,
		FIFOSimilarity:      workload.MeanPairwiseSimilarity(fifo),
		ClusteredSimilarity: workload.MeanPairwiseSimilarity(clustered),
	}
	var err error
	if res.FIFOElapsed, err = run(fifo); err != nil {
		return nil, err
	}
	if res.ClusteredElapsed, err = run(clustered); err != nil {
		return nil, err
	}
	if res.ClusteredElapsed > 0 {
		res.Speedup = res.FIFOElapsed.Seconds() / res.ClusteredElapsed.Seconds()
	}
	c.printf("=== Workload-aware batching (snowstorm-all, %d queries, batches of %d) ===\n", n, batch)
	c.printf("FIFO:      similarity %.3f  %8.3fs\n", res.FIFOSimilarity, res.FIFOElapsed.Seconds())
	c.printf("Clustered: similarity %.3f  %8.3fs  speedup %.2fx\n",
		res.ClusteredSimilarity, res.ClusteredElapsed.Seconds(), res.Speedup)
	return res, nil
}
