// Package bench regenerates every table and figure of the paper's
// evaluation (§6). Each FigNN function runs the corresponding experiment
// and prints the same rows/series the paper reports; cmd/roulette-bench and
// the repository's testing.B benchmarks are thin wrappers around them.
//
// Absolute numbers differ from the paper (Go engine on synthetic laptop-
// scale substrates vs a C++ prototype on SF10/IMDB); the reproduction
// target is the shape: who wins, by roughly what factor, and where the
// crossovers fall. EXPERIMENTS.md records paper-vs-measured per figure.
package bench

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"time"

	"github.com/roulette-db/roulette/internal/engine"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/monet"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/qat"
	"github.com/roulette-db/roulette/internal/qlearn"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/sharing"
	"github.com/roulette-db/roulette/internal/storage"
)

// Config parameterizes the harness.
type Config struct {
	Scale float64 // TPC-DS scale factor (facts scale linearly)
	Seed  int64
	Quick bool // reduced sweeps (CI / testing.B)
	Out   io.Writer

	// CollectStats turns on the engine's execution-stats collection for the
	// RouLette-family runs and prints a compact per-run breakdown. It adds
	// bookkeeping to every episode, so leave it off when timing figures for
	// EXPERIMENTS.md.
	CollectStats bool

	// TracePath, when non-empty, attaches the flight recorder to the
	// streaming benchmark and writes its merged timeline there as Chrome
	// trace_event JSON (load in Perfetto or chrome://tracing). Recording is
	// lock-free and allocation-free, so timings stay representative.
	TracePath string

	// Logger receives benchmark diagnostics (skipped figures, degraded
	// sweeps). Nil discards them.
	Logger *slog.Logger
}

// logger returns the configured diagnostics logger, never nil.
func (c *Config) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return slog.New(discardHandler{})
}

// discardHandler drops every record (slog.DiscardHandler needs go 1.24).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig(out io.Writer) Config {
	if out == nil {
		out = io.Discard
	}
	return Config{Scale: 0.25, Seed: 1, Quick: false, Out: out}
}

func (c *Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// System identifies one compared engine/strategy.
type System int

// The compared systems of §6.1.
const (
	SysMonet System = iota
	SysDBMSV
	SysRouLette
	SysStitchShare
	SysMatchShare
	SysRouLetteGreedy
)

// String names the system as in the paper's legends.
func (s System) String() string {
	switch s {
	case SysMonet:
		return "MonetDB"
	case SysDBMSV:
		return "DBMS-V"
	case SysRouLette:
		return "RouLette"
	case SysStitchShare:
		return "Stitch&Share"
	case SysMatchShare:
		return "Match&Share"
	case SysRouLetteGreedy:
		return "RouLette-Greedy"
	}
	return "?"
}

// RunResult is one system's outcome on one batch.
type RunResult struct {
	System     System
	Queries    int
	Elapsed    time.Duration
	JoinTuples int64
}

// Throughput returns queries/second.
func (r RunResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Queries) / r.Elapsed.Seconds()
}

// runSystem executes the batch on the given system. Shared-work systems run
// the whole batch at once; query-at-a-time systems run queries serially.
func (c *Config) runSystem(sys System, db *storage.Database, qs []*query.Query, workers int) (RunResult, error) {
	res := RunResult{System: sys, Queries: len(qs)}
	switch sys {
	case SysMonet:
		_, el, err := monet.New(db).RunSerial(qs)
		if err != nil {
			return res, err
		}
		res.Elapsed = el
	case SysDBMSV:
		_, el, err := qat.New(db).RunSerial(qs)
		if err != nil {
			return res, err
		}
		res.Elapsed = el
	default:
		b, err := query.Compile(qs)
		if err != nil {
			return res, err
		}
		opt := exec.DefaultOptions()
		opt.CollectRows = false
		opt.CollectStats = c.CollectStats
		ctx, err := exec.NewContext(b, db, opt, nil)
		if err != nil {
			return res, err
		}
		var pol policy.Policy
		switch sys {
		case SysRouLette:
			cfg := qlearn.DefaultConfig()
			cfg.Seed = c.Seed
			pol = qlearn.New(cfg)
		case SysRouLetteGreedy:
			pol = policy.NewGreedy(b, ctx.NumSelOps())
		case SysStitchShare:
			orders, err := sharing.StitchShareOrders(b, db)
			if err != nil {
				return res, err
			}
			pol = policy.NewStatic(orders, ctx.NumSelOps())
		case SysMatchShare:
			pol = policy.NewStatic(sharing.MatchShareOrders(b, db, nil), ctx.NumSelOps())
		}
		s, err := engine.NewSession(b, db, engine.Config{Exec: opt, Workers: workers, Policy: pol})
		if err != nil {
			return res, err
		}
		r, err := s.Run()
		if err != nil {
			return res, err
		}
		res.Elapsed = r.Elapsed
		res.JoinTuples = r.JoinTuples
		if c.CollectStats && r.Stats != nil {
			c.printStats(sys, r.Stats)
		}
	}
	return res, nil
}

// printStats emits one compact line per stats-collecting run.
func (c *Config) printStats(sys System, bs *engine.BatchStats) {
	var stemBytes int64
	for _, st := range bs.Stems {
		stemBytes += st.EstBytes
	}
	var factor float64
	if bs.Sharing.TotalOps > 0 {
		factor = float64(bs.Sharing.SharedOps) / float64(bs.Sharing.TotalOps)
	}
	c.printf("    [stats %s] ops=%d sharing=%.2f qstates=%d switches=%d stems~%.1fMiB\n",
		sys, bs.Sharing.TotalOps, factor, bs.Policy.QStates,
		bs.Policy.PlanSwitches, float64(stemBytes)/(1<<20))
}

// sampleWithoutReplacement copies k queries from the pool.
func sampleWithoutReplacement(rng *rand.Rand, pool []*query.Query, k int) []*query.Query {
	if k > len(pool) {
		k = len(pool)
	}
	perm := rng.Perm(len(pool))[:k]
	out := make([]*query.Query, k)
	for i, p := range perm {
		cp := *pool[p]
		out[i] = &cp
	}
	return out
}

// itoa formats an int without strconv noise at call sites.
func itoa(n int) string { return fmt.Sprintf("%d", n) }

// ftoa formats a float compactly.
func ftoa(f float64) string { return fmt.Sprintf("%g", f) }
