package bench

import (
	"io"
	"strings"
	"testing"
)

// quickCfg returns a tiny configuration so every figure finishes fast.
func quickCfg() Config {
	return Config{Scale: 0.02, Seed: 1, Quick: true, Out: io.Discard}
}

func TestFig11aQuick(t *testing.T) {
	c := quickCfg()
	pts, err := c.Fig11a()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5*5 { // 5 batch sizes × 5 systems
		t.Errorf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.QPS <= 0 {
			t.Errorf("%v %v: zero throughput", p.X, p.System)
		}
	}
}

func TestFig11bQuick(t *testing.T) {
	c := quickCfg()
	pts, err := c.Fig11b()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5*5 {
		t.Errorf("points = %d", len(pts))
	}
}

func TestFig11cQuick(t *testing.T) {
	c := quickCfg()
	pts, err := c.Fig11c()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6*5 {
		t.Errorf("points = %d", len(pts))
	}
}

func TestFig11dQuick(t *testing.T) {
	c := quickCfg()
	pts, err := c.Fig11d()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5*5 {
		t.Errorf("points = %d", len(pts))
	}
}

func TestFig12Quick(t *testing.T) {
	c := quickCfg()
	pts, err := c.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*4 {
		t.Errorf("points = %d", len(pts))
	}
}

func TestFig13Quick(t *testing.T) {
	var sb strings.Builder
	c := quickCfg()
	c.Out = &sb
	rows, err := c.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*2*4 { // 3 sizes × 2 reps × 4 policies
		t.Errorf("rows = %d", len(rows))
	}
	if !strings.Contains(sb.String(), "summary:") {
		t.Error("missing summary line")
	}
}

func TestFig14Quick(t *testing.T) {
	c := quickCfg()
	rows, err := c.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*3 {
		t.Errorf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.JoinTuples <= 0 {
			t.Errorf("overlap %d group %d: zero tuples", r.OverlapPct, r.GroupSize)
		}
	}
}

func TestFig16Quick(t *testing.T) {
	c := quickCfg()
	series, err := c.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Measured) == 0 || len(s.Measured) != len(s.Estimated) {
			t.Errorf("C=%d R=%d: malformed series", s.Chains, s.Relations)
		}
		if s.GreedyRatio <= 0 {
			t.Errorf("C=%d R=%d: missing greedy ratio", s.Chains, s.Relations)
		}
		s.PrintSeries(func(string, ...any) {})
	}
}

func TestFig17Quick(t *testing.T) {
	c := quickCfg()
	rows, err := c.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Elapsed <= 0 {
			t.Errorf("%s: zero elapsed", r.Name)
		}
	}
}

func TestFig18Quick(t *testing.T) {
	c := quickCfg()
	rows, err := c.Fig18()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFig19Quick(t *testing.T) {
	c := quickCfg()
	rows, err := c.Fig19()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Speedup != 1 {
		t.Errorf("baseline speedup = %v", rows[0].Speedup)
	}
}

func TestFig20Quick(t *testing.T) {
	c := quickCfg()
	rows, err := c.Fig20()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*2 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestSWOQuick(t *testing.T) {
	c := quickCfg()
	rows, err := c.SWO()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestCorrStress(t *testing.T) {
	c := quickCfg()
	res, err := c.CorrStress()
	if err != nil {
		t.Fatal(err)
	}
	if res.Learned <= 0 || res.Greedy <= 0 {
		t.Fatal("zero tuple counts")
	}
	// The learned policy must beat the selectivity-global policy on the
	// correlation trap it was designed to expose.
	if res.Ratio < 1.05 {
		t.Errorf("greedy/learned = %.2f, expected a clear learned win", res.Ratio)
	}
}

func TestBatching(t *testing.T) {
	c := quickCfg()
	res, err := c.Batching()
	if err != nil {
		t.Fatal(err)
	}
	if res.ClusteredSimilarity <= res.FIFOSimilarity {
		t.Errorf("clustering did not raise similarity: %.3f vs %.3f",
			res.ClusteredSimilarity, res.FIFOSimilarity)
	}
	if res.FIFOElapsed <= 0 || res.ClusteredElapsed <= 0 {
		t.Error("zero elapsed")
	}
}
