package bench

import (
	"fmt"
	"math/rand"

	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
)

// CorrStressResult compares policies on the correlation-stress workload.
type CorrStressResult struct {
	Learned     int64
	Greedy      int64
	StitchSim   int64
	Ratio       float64 // greedy / learned
	RatioStitch float64
}

// buildStressDB constructs the §4.2 motivating scenario as a concrete
// workload: two query groups whose shared join edges have opposite
// conditional selectivities.
//
//	fact(g, fk_a, fk_b, fk_c, fk_d)  ⋈ A(k) ⋈ B(k) ⋈ C(k)|D(k)
//
// Group-A queries filter g < 500; their fact tuples reference the hot key
// range of dimension A (fan-out ~16) and the cold range of B (fan-out ~0.2).
// Group-B queries are the mirror image. A selectivity-global policy sees
// per-edge averages near 8 for both A and B and cannot order them
// correctly for either group; RouLette's learned policy conditions on the
// (lineage, query-set) state and learns each group's contracting-first
// order after the C/D divergence.
func buildStressDB(seed int64) (*storage.Database, []*query.Query) {
	return buildStressData(seed), stressQueries(nil)
}

// buildStressData constructs the correlation-stress substrate alone.
func buildStressData(seed int64) *storage.Database {
	rng := rand.New(rand.NewSource(seed))
	const (
		factRows = 32000
		hotKeys  = 100
		domain   = 2000
		hotDup   = 16
		coldDup  = 1 // cold keys present once per 5 keys (fan-out 0.2)
	)

	fact := catalog.NewRelation("fact", "g", "fk_a", "fk_b", "fk_c", "fk_d")
	dimA := catalog.NewRelation("dim_a", "k", "u")
	dimB := catalog.NewRelation("dim_b", "k", "u")
	dimC := catalog.NewRelation("dim_c", "k", "u")
	dimD := catalog.NewRelation("dim_d", "k", "u")
	sch := catalog.NewSchema(fact, dimA, dimB, dimC, dimD)
	db := storage.NewDatabase(sch)

	// Dimensions A and B: hot keys duplicated hotDup times, one cold key
	// in five present once.
	mkSkewDim := func(rel *catalog.Relation) {
		var keys []int64
		for k := 0; k < hotKeys; k++ {
			for d := 0; d < hotDup; d++ {
				keys = append(keys, int64(k))
			}
		}
		for k := hotKeys; k < domain; k += 5 {
			for d := 0; d < coldDup; d++ {
				keys = append(keys, int64(k))
			}
		}
		t := storage.NewTable(rel, len(keys))
		copy(t.Col("k"), keys)
		u := t.Col("u")
		for i := range u {
			u[i] = int64(rng.Intn(1000))
		}
		db.Put(t)
	}
	mkSkewDim(dimA)
	mkSkewDim(dimB)

	// C and D: selective PK-like dimensions covering 30% of their domain.
	mkSelDim := func(rel *catalog.Relation) {
		n := 600
		t := storage.NewTable(rel, n)
		k := t.Col("k")
		for i := range k {
			k[i] = int64(i) // fact references [0,2000): ~30% match
		}
		u := t.Col("u")
		for i := range u {
			u[i] = int64(rng.Intn(1000))
		}
		db.Put(t)
	}
	mkSelDim(dimC)
	mkSelDim(dimD)

	ft := storage.NewTable(fact, factRows)
	g := ft.Col("g")
	fa := ft.Col("fk_a")
	fb := ft.Col("fk_b")
	fc := ft.Col("fk_c")
	fd := ft.Col("fk_d")
	for i := 0; i < factRows; i++ {
		g[i] = int64(rng.Intn(1000))
		if g[i] < 500 {
			// Group A: A explodes, B contracts.
			fa[i] = int64(rng.Intn(hotKeys))
			fb[i] = int64(hotKeys + rng.Intn(domain-hotKeys))
		} else {
			fa[i] = int64(hotKeys + rng.Intn(domain-hotKeys))
			fb[i] = int64(rng.Intn(hotKeys))
		}
		fc[i] = int64(rng.Intn(domain))
		fd[i] = int64(rng.Intn(domain))
	}
	db.Put(ft)
	return db
}

// stressQueries builds the 16-query correlation-stress workload: two
// recurring templates (group A joins dim_c, group B dim_d) whose filter
// constants slide along the g ranges of their groups. With a nil rng the
// offsets are the fixed grid CorrStress reports on; with an rng they are
// drawn uniformly inside each group's band — same templates, fresh
// constants, the recurring-workload model of the warm-start figure.
func stressQueries(rng *rand.Rand) []*query.Query {
	var qs []*query.Query
	for i := 0; i < 16; i++ {
		groupA := i%2 == 0
		q := &query.Query{Tag: fmt.Sprintf("stress-%d", i)}
		q.Rels = []query.RelRef{{Table: "fact"}, {Table: "dim_a"}, {Table: "dim_b"}}
		q.Joins = []query.Join{
			{LeftAlias: "fact", LeftCol: "fk_a", RightAlias: "dim_a", RightCol: "k"},
			{LeftAlias: "fact", LeftCol: "fk_b", RightAlias: "dim_b", RightCol: "k"},
		}
		off := int64(30 * (i / 2))
		if rng != nil {
			off = int64(rng.Intn(220)) // stay inside the group's 500-wide band
		}
		if groupA {
			q.Rels = append(q.Rels, query.RelRef{Table: "dim_c"})
			q.Joins = append(q.Joins, query.Join{LeftAlias: "fact", LeftCol: "fk_c", RightAlias: "dim_c", RightCol: "k"})
			q.Filters = append(q.Filters, query.Filter{Alias: "fact", Col: "g", Lo: off, Hi: off + 280})
		} else {
			q.Rels = append(q.Rels, query.RelRef{Table: "dim_d"})
			q.Joins = append(q.Joins, query.Join{LeftAlias: "fact", LeftCol: "fk_d", RightAlias: "dim_d", RightCol: "k"})
			q.Filters = append(q.Filters, query.Filter{Alias: "fact", Col: "g", Lo: 500 + off, Hi: 500 + off + 280})
		}
		qs = append(qs, q)
	}
	return qs
}

// CorrStress runs the correlation-stress comparison (the paper's §4.2
// requirements — long-term effects and correlation awareness — distilled
// into a workload small enough for the policy to converge at laptop scale).
func (c *Config) CorrStress() (*CorrStressResult, error) {
	db, qs := buildStressDB(c.Seed)

	c.printf("=== Correlation stress: learned vs selectivity-greedy ===\n")
	learned, err := joinTuplesVec(db, qs, nil, 0, c.Seed, 32)
	if err != nil {
		return nil, err
	}
	greedy, err := joinTuplesVec(db, qs, mkGreedy, 0, c.Seed, 32)
	if err != nil {
		return nil, err
	}
	_, solo, err := runQaaTAndExtractOrders(db, qs, c.Seed)
	if err != nil {
		return nil, err
	}
	stitch, err := joinTuplesVec(db, qs, stitchSimFactory(solo), 0, c.Seed, 32)
	if err != nil {
		return nil, err
	}

	res := &CorrStressResult{Learned: learned, Greedy: greedy, StitchSim: stitch}
	if learned > 0 {
		res.Ratio = float64(greedy) / float64(learned)
		res.RatioStitch = float64(stitch) / float64(learned)
	}
	c.printf("learned=%d greedy=%d stitchSim=%d | greedy/learned=%.2fx stitchSim/learned=%.2fx\n",
		learned, greedy, stitch, res.Ratio, res.RatioStitch)
	return res, nil
}
