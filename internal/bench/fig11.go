package bench

import (
	"math/rand"

	"github.com/roulette-db/roulette/internal/storage"

	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/tpcds"
	"github.com/roulette-db/roulette/internal/workload"
)

// Point is one (x, system, throughput) sample of a sensitivity sweep.
type Point struct {
	X      string
	System System
	QPS    float64
}

// fig11Systems are the five systems of the Fig. 11 sweeps.
var fig11Systems = []System{SysMonet, SysDBMSV, SysRouLette, SysStitchShare, SysMatchShare}

// fig11Sweep runs one sensitivity configuration across all systems.
func (c *Config) fig11Sweep(label string, db *storage.Database, qs []*query.Query, out *[]Point) error {
	for _, sys := range fig11Systems {
		r, err := c.runSystem(sys, db, qs, 0)
		if err != nil {
			return err
		}
		*out = append(*out, Point{X: label, System: sys, QPS: r.Throughput()})
		c.printf("%-18s %-14s %8.2f q/s\n", label, sys, r.Throughput())
	}
	return nil
}

// Fig11a: throughput vs batch size (Fig. 11a): batches of 1..max queries
// sampled from a pool, default parameters otherwise (10% selectivity, 4
// joins, snowflake-store).
func (c *Config) Fig11a() ([]Point, error) {
	db := tpcds.Generate(c.Scale, c.Seed)
	p := workload.DefaultParams()
	p.Seed = c.Seed
	poolSize := 4096
	sizes := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	if c.Quick {
		poolSize = 256
		sizes = []int{1, 4, 16, 64, 256}
	}
	pool := workload.NewGenerator(p).Generate(poolSize)
	rng := rand.New(rand.NewSource(c.Seed))

	c.printf("=== Fig 11a: throughput vs batch size ===\n")
	var out []Point
	for _, n := range sizes {
		qs := sampleWithoutReplacement(rng, pool, n)
		if err := c.fig11Sweep(itoa(n), db, qs, &out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Fig11b: throughput vs query selectivity (Fig. 11b) at 512 queries.
func (c *Config) Fig11b() ([]Point, error) {
	db := tpcds.Generate(c.Scale, c.Seed)
	sels := []float64{0.0001, 0.001, 0.01, 0.1, 1.0}
	batch := 512
	if c.Quick {
		batch = 64
	}
	rng := rand.New(rand.NewSource(c.Seed))

	c.printf("=== Fig 11b: throughput vs selectivity ===\n")
	var out []Point
	for _, s := range sels {
		p := workload.DefaultParams()
		p.Selectivity = s
		p.Seed = c.Seed + int64(s*1e6)
		pool := workload.NewGenerator(p).Generate(batch * 2)
		qs := sampleWithoutReplacement(rng, pool, batch)
		if err := c.fig11Sweep(ftoa(s*100)+"%", db, qs, &out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Fig11c: throughput vs joins per query (Fig. 11c) at 512 queries.
func (c *Config) Fig11c() ([]Point, error) {
	db := tpcds.Generate(c.Scale, c.Seed)
	batch := 512
	if c.Quick {
		batch = 64
	}
	rng := rand.New(rand.NewSource(c.Seed))

	c.printf("=== Fig 11c: throughput vs joins per query ===\n")
	var out []Point
	for _, j := range []int{1, 2, 3, 4, 5, 6} {
		p := workload.DefaultParams()
		p.Joins = j
		p.Seed = c.Seed + int64(j)
		pool := workload.NewGenerator(p).Generate(batch * 2)
		qs := sampleWithoutReplacement(rng, pool, batch)
		if err := c.fig11Sweep(itoa(j)+" joins", db, qs, &out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Fig11d: throughput vs schema type (Fig. 11d) at 512 queries.
func (c *Config) Fig11d() ([]Point, error) {
	db := tpcds.Generate(c.Scale, c.Seed)
	batch := 512
	if c.Quick {
		batch = 64
	}
	rng := rand.New(rand.NewSource(c.Seed))

	c.printf("=== Fig 11d: throughput vs schema type ===\n")
	var out []Point
	for _, k := range []tpcds.SchemaKind{
		tpcds.Template, tpcds.SnowflakeStore, tpcds.SnowflakeAll,
		tpcds.SnowstormStore, tpcds.SnowstormAll,
	} {
		p := workload.DefaultParams()
		p.Kind = k
		p.Seed = c.Seed + int64(k)
		pool := workload.NewGenerator(p).Generate(batch * 2)
		qs := sampleWithoutReplacement(rng, pool, batch)
		if err := c.fig11Sweep(k.String(), db, qs, &out); err != nil {
			return nil, err
		}
	}
	return out, nil
}
