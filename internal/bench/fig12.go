package bench

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/engine"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/job"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/qlearn"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
)

// Fig12 runs five 64-query JOB batches across RouLette, Stitch&Share,
// DBMS-V and MonetDB (Fig. 12). Match&Share is excluded, as in the paper
// (its optimizer assumes uniform data).
func (c *Config) Fig12() ([]Point, error) {
	db := job.Generate(c.Seed)
	pool := job.Queries(job.NumQueries, c.Seed)
	rng := rand.New(rand.NewSource(c.Seed))
	batches := 5
	size := 64
	if c.Quick {
		batches, size = 2, 16
	}

	c.printf("=== Fig 12: JOB 64-query batches ===\n")
	var out []Point
	for bi := 1; bi <= batches; bi++ {
		qs := sampleWithoutReplacement(rng, pool, size)
		for _, sys := range []System{SysRouLette, SysStitchShare, SysDBMSV, SysMonet} {
			r, err := c.runSystem(sys, db, qs, 0)
			if err != nil {
				return nil, err
			}
			out = append(out, Point{X: fmt.Sprintf("batch-%d", bi), System: sys, QPS: r.Throughput()})
			c.printf("batch %d  %-14s %8.2f q/s\n", bi, sys, r.Throughput())
		}
	}
	return out, nil
}

// Fig13Row is one (batch, policy) cost sample: intermediate join tuples,
// the implementation-independent plan-quality metric of §6.2.
type Fig13Row struct {
	BatchID    int
	BatchSize  int
	Policy     string
	JoinTuples int64
}

// Fig13 compares planning policies on JOB batches of growing size:
// RouLette's learned policy, the greedy selectivity policy (CACQ/CJOIN),
// Stitch&Share-Sim (plans chosen per query by a solo-learned policy, then
// prefix-shared), and RouLette QaaT (queries executed one at a time).
func (c *Config) Fig13() ([]Fig13Row, error) {
	db := job.Generate(c.Seed)
	pool := job.Queries(job.NumQueries, c.Seed)
	rng := rand.New(rand.NewSource(c.Seed))

	sizes := []int{1, 2, 4, 8, 16, 32, 64, 113}
	perSize := 5
	if c.Quick {
		sizes = []int{1, 4, 16}
		perSize = 2
	}

	c.printf("=== Fig 13: intermediate join tuples by policy ===\n")
	var rows []Fig13Row
	batchID := 0
	sums := map[string]int64{}
	for _, size := range sizes {
		for rep := 0; rep < perSize; rep++ {
			batchID++
			qs := sampleWithoutReplacement(rng, pool, size)

			learned, err := joinTuplesVec(db, qs, nil, 0, c.Seed, fig13Vec)
			if err != nil {
				return nil, err
			}
			greedy, err := joinTuplesVec(db, qs, mkGreedy, 0, c.Seed, fig13Vec)
			if err != nil {
				return nil, err
			}
			qaat, soloLearned, err := runQaaTAndExtractOrders(db, qs, c.Seed)
			if err != nil {
				return nil, err
			}
			stitchSim, err := joinTuplesVec(db, qs, stitchSimFactory(soloLearned), 0, c.Seed, fig13Vec)
			if err != nil {
				return nil, err
			}

			for _, r := range []Fig13Row{
				{batchID, size, "RouLette", learned},
				{batchID, size, "Greedy", greedy},
				{batchID, size, "Stitch&Share-Sim", stitchSim},
				{batchID, size, "RouLette-QaaT", qaat},
			} {
				rows = append(rows, r)
				sums[r.Policy] += r.JoinTuples
			}
			c.printf("batch %2d (n=%3d)  learned=%-10d greedy=%-10d stitchSim=%-10d qaat=%d\n",
				batchID, size, learned, greedy, stitchSim, qaat)
		}
	}
	if sums["RouLette"] > 0 {
		c.printf("summary: greedy/learned = %.2fx, stitchSim/learned = %.2fx, qaat/learned = %.2fx\n",
			float64(sums["Greedy"])/float64(sums["RouLette"]),
			float64(sums["Stitch&Share-Sim"])/float64(sums["RouLette"]),
			float64(sums["RouLette-QaaT"])/float64(sums["RouLette"]))
	}
	return rows, nil
}

// fig13Vec is the episode vector size of the policy-quality experiments.
const fig13Vec = 128

// stitchSimFactory adapts solo-learned order extraction into a policy
// factory for the shared executor.
func stitchSimFactory(soloLearned func(*query.Batch) map[policy.OrderKey][]int) func(*query.Batch, *exec.Context) policy.Policy {
	return func(b *query.Batch, ctx *exec.Context) policy.Policy {
		return policy.NewStatic(soloLearned(b), ctx.NumSelOps())
	}
}

// mkGreedy builds the greedy policy for a compiled batch.
func mkGreedy(b *query.Batch, ctx *exec.Context) policy.Policy {
	return policy.NewGreedy(b, ctx.NumSelOps())
}

// joinTuples runs the batch under a policy factory (nil = learned) and
// returns intermediate join tuples.
func joinTuples(db *storage.Database, qs []*query.Query, mk func(*query.Batch, *exec.Context) policy.Policy, workers int, seed int64) (int64, error) {
	return joinTuplesVec(db, qs, mk, workers, seed, 0)
}

// joinTuplesVec is joinTuples with an explicit episode vector size; the
// policy-quality experiments use small vectors so the miniature substrates
// still yield enough episodes for Q-learning to converge (the paper's
// full-size tables give thousands of episodes per circular-scan pass).
func joinTuplesVec(db *storage.Database, qs []*query.Query, mk func(*query.Batch, *exec.Context) policy.Policy, workers int, seed int64, vecSize int) (int64, error) {
	b, err := query.Compile(qs)
	if err != nil {
		return 0, err
	}
	opt := exec.DefaultOptions()
	opt.CollectRows = false
	if vecSize > 0 {
		opt.VectorSize = vecSize
	}
	cfg := engine.Config{Exec: opt, Workers: workers}
	if mk != nil {
		ctx, err := exec.NewContext(b, db, opt, nil)
		if err != nil {
			return 0, err
		}
		cfg.Policy = mk(b, ctx)
	} else {
		qc := qlearn.DefaultConfig()
		qc.Seed = seed
		cfg.Policy = qlearn.New(qc)
	}
	s, err := engine.NewSession(b, db, cfg)
	if err != nil {
		return 0, err
	}
	r, err := s.Run()
	if err != nil {
		return 0, err
	}
	return r.JoinTuples, nil
}

// runQaaTAndExtractOrders executes each query alone under the learned
// policy (RouLette QaaT), returning the summed join tuples and a factory
// that maps the solo-learned plans onto a later batch's edge IDs
// (Stitch&Share-Sim).
func runQaaTAndExtractOrders(db *storage.Database, qs []*query.Query, seed int64) (int64, func(*query.Batch) map[policy.OrderKey][]int, error) {
	var total int64
	type soloPlan struct {
		orders map[string][]string // sourceKey -> edge signatures in order
	}
	plans := make([]soloPlan, len(qs))

	for i, q := range qs {
		cp := *q
		sb, err := query.Compile([]*query.Query{&cp})
		if err != nil {
			return 0, nil, err
		}
		opt := exec.DefaultOptions()
		opt.CollectRows = false
		opt.VectorSize = fig13Vec
		qc := qlearn.DefaultConfig()
		qc.Seed = seed + int64(i)
		pol := qlearn.New(qc)
		s, err := engine.NewSession(sb, db, engine.Config{Exec: opt, Policy: pol})
		if err != nil {
			return 0, nil, err
		}
		r, err := s.Run()
		if err != nil {
			return 0, nil, err
		}
		total += r.JoinTuples

		// Extract the converged plan per source instance.
		plans[i].orders = make(map[string][]string)
		q01 := bitset.NewFull(1)
		for _, src := range sb.QueryInsts(0) {
			lineage := uint64(1) << src
			var sigs []string
			for {
				cands := sb.Candidates(nil, lineage, q01)
				if len(cands) == 0 {
					break
				}
				pick := cands[pol.BestJoin(lineage, q01, cands)]
				e := &sb.Edges[pick]
				sigs = append(sigs, edgeSignature(sb, e))
				target := e.A
				if lineage&(1<<e.A) != 0 {
					target = e.B
				}
				lineage |= 1 << target
			}
			plans[i].orders[instKeyOf(sb, src)] = sigs
		}
	}

	factory := func(b *query.Batch) map[policy.OrderKey][]int {
		// Map edge signatures to the big batch's edge IDs.
		sigToEdge := make(map[string]int, len(b.Edges))
		for i := range b.Edges {
			sigToEdge[edgeSignature(b, &b.Edges[i])] = i
		}
		orders := make(map[policy.OrderKey][]int)
		for qid := range b.Queries {
			for _, src := range b.QueryInsts(qid) {
				sigs := plans[qid].orders[instKeyOf(b, src)]
				var order []int
				for _, sig := range sigs {
					if ei, ok := sigToEdge[sig]; ok {
						order = append(order, ei)
					}
				}
				orders[policy.OrderKey{QID: qid, Source: src}] = order
			}
		}
		return orders
	}
	return total, factory, nil
}

// edgeSignature identifies an edge independently of batch numbering.
func edgeSignature(b *query.Batch, e *query.Edge) string {
	a := fmt.Sprintf("%s#%d.%s", b.Insts[e.A].Table, b.Insts[e.A].Occ, e.ACol)
	bb := fmt.Sprintf("%s#%d.%s", b.Insts[e.B].Table, b.Insts[e.B].Occ, e.BCol)
	if a > bb {
		a, bb = bb, a
	}
	return a + "=" + bb
}

// instKeyOf identifies an instance independently of batch numbering.
func instKeyOf(b *query.Batch, inst query.InstID) string {
	in := b.Insts[inst]
	return fmt.Sprintf("%s#%d", in.Table, in.Occ)
}

// Fig14Row is one dynamic-admission sample.
type Fig14Row struct {
	OverlapPct int
	GroupSize  int
	JoinTuples int64
}

// Fig14 measures the interplay between sharing and learning under runtime
// admission (Fig. 14): instances of a fixed JOB-style template admitted
// one/two/four at a time with varying input overlap between back-to-back
// admissions (0% = query-at-a-time, 100% = one batch).
func (c *Config) Fig14() ([]Fig14Row, error) {
	db := job.Generate(c.Seed)
	nInstances := 16
	overlaps := []int{0, 20, 40, 60, 80, 100}
	groups := []int{1, 2, 4}
	if c.Quick {
		nInstances = 8
		overlaps = []int{0, 50, 100}
		groups = []int{1, 4}
	}

	// Query-17a-like template: title ⋈ movie_companies ⋈ company_name
	// ⋈ movie_keyword ⋈ keyword, with per-instance predicate variations.
	rng := rand.New(rand.NewSource(c.Seed))
	mkInstance := func(i int) *query.Query {
		yLo := int64(1970 + rng.Intn(30))
		return &query.Query{
			Tag: fmt.Sprintf("17a-%d", i),
			Rels: []query.RelRef{
				{Table: "title", Alias: "t"},
				{Table: "movie_companies", Alias: "mc"},
				{Table: "company_name", Alias: "cn"},
				{Table: "movie_keyword", Alias: "mk"},
				{Table: "keyword", Alias: "k"},
			},
			Joins: []query.Join{
				{LeftAlias: "mc", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"},
				{LeftAlias: "mc", LeftCol: "company_id", RightAlias: "cn", RightCol: "id"},
				{LeftAlias: "mk", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"},
				{LeftAlias: "mk", LeftCol: "keyword_id", RightAlias: "k", RightCol: "id"},
			},
			Filters: []query.Filter{
				{Alias: "t", Col: "production_year", Lo: yLo, Hi: yLo + 20},
				{Alias: "cn", Col: "country_code", Lo: 0, Hi: 0},
				{Alias: "k", Col: "id", Lo: 0, Hi: int64(300 + rng.Intn(700))},
			},
		}
	}
	var qs []*query.Query
	for i := 0; i < nInstances; i++ {
		qs = append(qs, mkInstance(i))
	}

	c.printf("=== Fig 14: dynamic admission (input overlap vs cost) ===\n")
	var rows []Fig14Row
	for _, g := range groups {
		for _, ov := range overlaps {
			tuples, err := c.runWithAdmissions(db, qs, g, ov)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig14Row{OverlapPct: ov, GroupSize: g, JoinTuples: tuples})
			c.printf("RouLette-%d overlap=%3d%%  join tuples = %d\n", g, ov, tuples)
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].GroupSize < rows[j].GroupSize })
	return rows, nil
}

// runWithAdmissions admits qs in groups of g; consecutive admissions overlap
// by ov percent of the largest link relation's scan.
func (c *Config) runWithAdmissions(db *storage.Database, qs []*query.Query, g, ov int) (int64, error) {
	b, err := query.Compile(qs)
	if err != nil {
		return 0, err
	}
	opt := exec.DefaultOptions()
	opt.CollectRows = false

	// Trigger instance: the largest relation in the batch.
	trigger, rows := query.InstID(0), -1
	for i, in := range b.Insts {
		n := db.MustTable(in.Table).NumRows()
		if n > rows {
			trigger, rows = query.InstID(i), n
		}
	}
	vectorsPerPass := (rows + opt.VectorSize - 1) / opt.VectorSize
	gap := int64(float64(vectorsPerPass) * (1 - float64(ov)/100))

	cfg := engine.Config{Exec: opt}
	qc := qlearn.DefaultConfig()
	qc.Seed = c.Seed
	cfg.Policy = qlearn.New(qc)
	for i := g; i < len(qs); i += g {
		var ids []int
		for j := i; j < i+g && j < len(qs); j++ {
			ids = append(ids, j)
		}
		cfg.AdmitAt = append(cfg.AdmitAt, engine.AdmitEvent{
			AfterVectors: int64(i/g) * gap,
			Inst:         trigger,
			QIDs:         ids,
		})
	}
	s, err := engine.NewSession(b, db, cfg)
	if err != nil {
		return 0, err
	}
	r, err := s.Run()
	if err != nil {
		return 0, err
	}
	return r.JoinTuples, nil
}
