package bench

import (
	"fmt"

	"github.com/roulette-db/roulette/internal/chains"
	"github.com/roulette-db/roulette/internal/engine"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/qlearn"
	"github.com/roulette-db/roulette/internal/query"
)

// Fig16Series is the convergence trace of one chain workload: bucketed
// averages of measured episode cost and the policy's estimated minimum.
type Fig16Series struct {
	Chains    int
	Relations int
	Episodes  []int64
	Measured  []float64
	Estimated []float64
	// GreedyRatio is Fig. 16i's learned/greedy intermediate-tuple ratio.
	GreedyRatio float64
}

// fig16Configs are the (C, R) panels of Figs. 16a–16h.
var fig16Configs = [][2]int{
	{4, 9}, {4, 17}, {4, 33}, {8, 9}, {8, 17}, {8, 33}, {16, 17}, {16, 33},
}

// Fig16 runs the learning-rate experiment: for each chain-schema workload a
// 64-query batch is processed with convergence tracking; the measured
// episode cost falls and the policy's estimated minimum rises until they
// meet (Figs. 16a–16h), and the learned/greedy intermediate-tuple ratio is
// reported per workload (Fig. 16i).
func (c *Config) Fig16() ([]Fig16Series, error) {
	configs := fig16Configs
	baseRows, factRows, batch := 600, 40000, 64
	if c.Quick {
		configs = [][2]int{{4, 9}, {8, 17}}
		baseRows, factRows, batch = 200, 6000, 16
	}

	c.printf("=== Fig 16: policy convergence on chain schemas ===\n")
	var out []Fig16Series
	for _, cfg := range configs {
		w, err := chains.Build(cfg[0], cfg[1], baseRows, factRows, c.Seed)
		if err != nil {
			return nil, err
		}
		qs := w.Queries(batch, c.Seed+1)

		series, err := c.fig16One(w, qs, cfg[0], cfg[1])
		if err != nil {
			return nil, err
		}
		out = append(out, *series)
	}
	return out, nil
}

func (c *Config) fig16One(w *chains.Workload, qs []*query.Query, cc, rr int) (*Fig16Series, error) {
	b, err := query.Compile(qs)
	if err != nil {
		return nil, err
	}
	opt := exec.DefaultOptions()
	opt.CollectRows = false
	opt.VectorSize = 64
	qc := qlearn.DefaultConfig()
	qc.Seed = c.Seed
	s, err := engine.NewSession(b, w.DB, engine.Config{
		Exec: opt, Policy: qlearn.New(qc), TrackConvergence: true,
	})
	if err != nil {
		return nil, err
	}
	r, err := s.Run()
	if err != nil {
		return nil, err
	}

	series := &Fig16Series{Chains: cc, Relations: rr}
	// Bucket episodes into ~30 points.
	n := len(r.Convergence)
	bucket := n / 30
	if bucket < 1 {
		bucket = 1
	}
	for i := 0; i < n; i += bucket {
		end := i + bucket
		if end > n {
			end = n
		}
		var m, e float64
		for _, p := range r.Convergence[i:end] {
			m += p.Measured
			e += p.Estimated
		}
		k := float64(end - i)
		series.Episodes = append(series.Episodes, int64(i))
		series.Measured = append(series.Measured, m/k)
		series.Estimated = append(series.Estimated, e/k)
	}

	// Fig. 16i: learned vs greedy intermediate tuples on the same workload.
	greedy, err := joinTuples(w.DB, qs, mkGreedy, 0, c.Seed)
	if err != nil {
		return nil, err
	}
	if greedy > 0 {
		series.GreedyRatio = float64(r.JoinTuples) / float64(greedy)
	}

	c.printf("C=%d,R=%d: episodes=%d learned-tuples=%d ratio-vs-greedy=%.2f\n",
		cc, rr, r.Episodes, r.JoinTuples, series.GreedyRatio)
	last := len(series.Measured) - 1
	if last >= 0 {
		c.printf("  first bucket: measured=%.3g estimated=%.3g | last bucket: measured=%.3g estimated=%.3g\n",
			series.Measured[0], series.Estimated[0], series.Measured[last], series.Estimated[last])
	}
	return series, nil
}

// PrintSeries renders one convergence trace as an ASCII table.
func (s *Fig16Series) PrintSeries(printf func(string, ...any)) {
	printf("C=%d, R=%d\n", s.Chains, s.Relations)
	printf("%10s %14s %14s\n", "episode", "measured", "estimated")
	for i := range s.Episodes {
		printf("%10d %14.3f %14.3f\n", s.Episodes[i], s.Measured[i], s.Estimated[i])
	}
}

var _ = fmt.Sprintf
