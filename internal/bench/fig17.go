package bench

import (
	"math/rand"
	"time"

	"github.com/roulette-db/roulette/internal/engine"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/job"
	"github.com/roulette-db/roulette/internal/qlearn"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
	"github.com/roulette-db/roulette/internal/tpcds"
	"github.com/roulette-db/roulette/internal/workload"
)

// AblationRow is one incremental-optimization measurement plus the §6.3
// time breakdown of that configuration.
type AblationRow struct {
	Name    string
	Elapsed time.Duration
	Filter  float64
	Build   float64
	Probe   float64
	Route   float64
}

// runAblation executes the batch with the given executor options and
// returns the timing row.
func runAblation(name string, db *storage.Database, qs []*query.Query, opt exec.Options, seed int64) (AblationRow, error) {
	b, err := query.Compile(qs)
	if err != nil {
		return AblationRow{}, err
	}
	opt.CollectRows = false
	qc := qlearn.DefaultConfig()
	qc.Seed = seed
	s, err := engine.NewSession(b, db, engine.Config{Exec: opt, Policy: qlearn.New(qc)})
	if err != nil {
		return AblationRow{}, err
	}
	r, err := s.Run()
	if err != nil {
		return AblationRow{}, err
	}
	f, bd, p, rt := s.Context().Stats.Breakdown()
	return AblationRow{Name: name, Elapsed: r.Elapsed, Filter: f, Build: bd, Probe: p, Route: rt}, nil
}

// Fig17 profiles a 64-query JOB batch with and without symmetric join
// pruning (Fig. 17: "Plain SHJ" vs "Pruned SHJ") and reports the time
// breakdown.
func (c *Config) Fig17() ([]AblationRow, error) {
	db := job.Generate(c.Seed)
	pool := job.Queries(job.NumQueries, c.Seed)
	rng := rand.New(rand.NewSource(c.Seed))
	size := 64
	if c.Quick {
		size = 16
	}
	qs := sampleWithoutReplacement(rng, pool, size)

	c.printf("=== Fig 17: JOB batch profile (pruning) ===\n")
	var rows []AblationRow
	plain := exec.DefaultOptions()
	plain.Pruning = false
	for _, cfg := range []struct {
		name string
		opt  exec.Options
	}{
		{"Plain-SHJ", plain},
		{"Pruned-SHJ", exec.DefaultOptions()},
	} {
		row, err := runAblation(cfg.name, db, qs, cfg.opt, c.Seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		c.printf("%-12s %10.3fs  filter=%4.1f%% build=%4.1f%% probe=%4.1f%% route=%4.1f%%\n",
			row.Name, row.Elapsed.Seconds(), row.Filter*100, row.Build*100, row.Probe*100, row.Route*100)
	}
	if len(rows) == 2 && rows[1].Elapsed > 0 {
		c.printf("pruning speedup: %.2fx\n", rows[0].Elapsed.Seconds()/rows[1].Elapsed.Seconds())
	}
	return rows, nil
}

// Fig18 profiles a 512-query generated batch with the router and grouped-
// filter optimizations applied incrementally (Fig. 18: Plain → Output
// routing → Grouped filter).
func (c *Config) Fig18() ([]AblationRow, error) {
	db := tpcds.Generate(c.Scale, c.Seed)
	size := 512
	if c.Quick {
		size = 96
	}
	p := workload.DefaultParams()
	p.Seed = c.Seed
	pool := workload.NewGenerator(p).Generate(size * 2)
	rng := rand.New(rand.NewSource(c.Seed))
	qs := sampleWithoutReplacement(rng, pool, size)

	plain := exec.DefaultOptions()
	plain.LocalityRouter = false
	plain.GroupedFilters = false
	withRouter := plain
	withRouter.LocalityRouter = true
	full := withRouter
	full.GroupedFilters = true

	c.printf("=== Fig 18: large batch profile (router, grouped filter) ===\n")
	var rows []AblationRow
	for _, cfg := range []struct {
		name string
		opt  exec.Options
	}{
		{"Plain", plain},
		{"Output-routing", withRouter},
		{"Grouped-filter", full},
	} {
		row, err := runAblation(cfg.name, db, qs, cfg.opt, c.Seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		c.printf("%-16s %10.3fs  filter=%4.1f%% build=%4.1f%% probe=%4.1f%% route=%4.1f%%\n",
			row.Name, row.Elapsed.Seconds(), row.Filter*100, row.Build*100, row.Probe*100, row.Route*100)
	}
	if len(rows) == 3 && rows[2].Elapsed > 0 {
		c.printf("router+grouped-filter speedup: %.2fx\n", rows[0].Elapsed.Seconds()/rows[2].Elapsed.Seconds())
	}
	return rows, nil
}
