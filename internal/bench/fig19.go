package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"github.com/roulette-db/roulette/internal/job"
	"github.com/roulette-db/roulette/internal/qat"
	"github.com/roulette-db/roulette/internal/tpcds"
	"github.com/roulette-db/roulette/internal/workload"
)

// Fig19Row is one (batch, workers) speedup sample.
type Fig19Row struct {
	Batch   int
	Workers int
	Elapsed time.Duration
	Speedup float64
}

// Fig19 scales RouLette's worker pool from 1 to 12 on JOB batches
// (Fig. 19). Note: wall-clock speedup saturates at the host's core count
// (see DESIGN.md's substitution notes — the paper's machine has 12 cores
// per NUMA node); the harness prints GOMAXPROCS alongside.
func (c *Config) Fig19() ([]Fig19Row, error) {
	db := job.Generate(c.Seed)
	pool := job.Queries(job.NumQueries, c.Seed)
	rng := rand.New(rand.NewSource(c.Seed))
	batches := 5
	size := 64
	workerCounts := []int{1, 2, 4, 8, 12}
	if c.Quick {
		batches, size = 1, 16
		workerCounts = []int{1, 2, 4}
	}

	c.printf("=== Fig 19: worker scale-up (GOMAXPROCS=%d) ===\n", runtime.GOMAXPROCS(0))
	var rows []Fig19Row
	for bi := 1; bi <= batches; bi++ {
		qs := sampleWithoutReplacement(rng, pool, size)
		var base time.Duration
		for _, wk := range workerCounts {
			r, err := c.runSystem(SysRouLette, db, qs, wk)
			if err != nil {
				return nil, err
			}
			if wk == 1 {
				base = r.Elapsed
			}
			sp := 0.0
			if r.Elapsed > 0 {
				sp = base.Seconds() / r.Elapsed.Seconds()
			}
			rows = append(rows, Fig19Row{Batch: bi, Workers: wk, Elapsed: r.Elapsed, Speedup: sp})
			c.printf("batch %d  workers=%2d  %8.3fs  speedup %.2fx\n", bi, wk, r.Elapsed.Seconds(), sp)
		}
	}
	return rows, nil
}

// Fig20Row is one interference sample.
type Fig20Row struct {
	System  string
	Clients int
	QPS     float64
}

// Fig20 contrasts DBMS-V under growing client concurrency (inter-query
// interference) with RouLette processing the same queries as shared batches
// using all workers (Fig. 20).
func (c *Config) Fig20() ([]Fig20Row, error) {
	db := tpcds.Generate(c.Scale, c.Seed)
	p := workload.DefaultParams()
	p.Seed = c.Seed
	clientCounts := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	if c.Quick {
		clientCounts = []int{1, 4, 16, 64}
	}
	pool := workload.NewGenerator(p).Generate(clientCounts[len(clientCounts)-1] * 2)
	rng := rand.New(rand.NewSource(c.Seed))

	c.printf("=== Fig 20: interference (DBMS-V clients vs RouLette batches) ===\n")
	var rows []Fig20Row
	e := qat.New(db)
	for _, n := range clientCounts {
		// One query per client.
		qs := sampleWithoutReplacement(rng, pool, n)
		_, el, err := e.RunConcurrent(qs, n)
		if err != nil {
			return nil, err
		}
		qps := float64(n) / el.Seconds()
		rows = append(rows, Fig20Row{System: "DBMS-V", Clients: n, QPS: qps})
		c.printf("DBMS-V   clients=%4d  %8.2f q/s\n", n, qps)

		r, err := c.runSystem(SysRouLette, db, qs, runtime.GOMAXPROCS(0))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig20Row{System: "RouLette", Clients: n, QPS: r.Throughput()})
		c.printf("RouLette clients=%4d  %8.2f q/s\n", n, r.Throughput())
	}
	return rows, nil
}

var _ = fmt.Sprintf
