package bench

import (
	"testing"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/qlearn"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/stem"
)

// BenchResult is one microbenchmark measurement, JSON-shaped for BENCH.json.
type BenchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func toResult(name string, r testing.BenchmarkResult) BenchResult {
	return BenchResult{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// PerfReport is the perf section of BENCH.json: the steady-state episode
// step, STeM primitives (scalar vs vector kernels), and the Q-table against
// its retained string-keyed map baseline. Acceptance bars: QTableSpeedup,
// StemInsertSpeedup and StemProbeSpeedup all >= 2.
type PerfReport struct {
	EpisodeStep          []BenchResult `json:"episode_step"`
	EpisodeStepZeroAlloc bool          `json:"episode_step_zero_alloc"`
	StemInsert           BenchResult   `json:"stem_insert"`
	StemInsertVec        BenchResult   `json:"stem_insert_vec"`
	StemInsertSpeedup    float64       `json:"stem_insert_vec_speedup"`
	StemProbe            BenchResult   `json:"stem_probe"`
	StemProbeVec         BenchResult   `json:"stem_probe_vec"`
	StemProbeSpeedup     float64       `json:"stem_probe_vec_speedup"`
	StemSemiJoin         BenchResult   `json:"stem_semijoin"`
	StemSemiJoinVec      BenchResult   `json:"stem_semijoin_vec"`
	StemSemiJoinSpeedup  float64       `json:"stem_semijoin_vec_speedup"`
	QTable               BenchResult   `json:"qtable_open_addressing"`
	QTableRef            BenchResult   `json:"qtable_map_reference"`
	QTableSpeedup        float64       `json:"qtable_speedup"`
}

// qtableState is one recurring Q-table state for the table microbenchmarks.
type qtableState struct {
	phase   policy.Phase
	inst    query.InstID
	lineage uint64
	q       bitset.Set
	op      int
}

func qtableWorkload() []qtableState {
	pool := []bitset.Set{
		bitset.NewFull(16),
		bitset.NewFull(64),
		bitset.FromIDs(64, 2, 17, 63),
		bitset.NewFull(128),
		bitset.NewFull(200), // overflows the inline key words
		bitset.FromIDs(200, 5, 199),
	}
	states := make([]qtableState, 0, 4096)
	for i := 0; len(states) < cap(states); i++ {
		states = append(states, qtableState{
			phase:   policy.Phase(i % 2),
			inst:    query.InstID(i % 4),
			lineage: uint64(i % 61),
			q:       pool[i%len(pool)],
			op:      i % 7,
		})
	}
	return states
}

// Perf runs the allocation/throughput microbenchmarks and returns the
// machine-readable report. It is the "-fig perf" target of roulette-bench
// and the source of BENCH.json's perf section.
func (c *Config) Perf() (*PerfReport, error) {
	rep := &PerfReport{}

	for _, tc := range []struct {
		name string
		cfg  exec.StepBenchConfig
	}{
		{"episode_step/16q-1word", exec.StepBenchConfig{NQueries: 16}},
		{"episode_step/80q-2words", exec.StepBenchConfig{NQueries: 80}},
	} {
		tc.cfg.Policy = qlearn.New(qlearn.DefaultConfig())
		sb, err := exec.NewStepBench(tc.cfg)
		if err != nil {
			return nil, err
		}
		for i := 0; i < 16; i++ {
			sb.Step()
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sb.Step()
			}
		})
		rep.EpisodeStep = append(rep.EpisodeStep, toResult(tc.name, r))
	}
	rep.EpisodeStepZeroAlloc = true
	for _, r := range rep.EpisodeStep {
		if r.AllocsPerOp != 0 {
			rep.EpisodeStepZeroAlloc = false
		}
	}

	// STeM build path, scalar vs vector: one op inserts a 256-tuple batch
	// over 32 distinct keys (fact-table FK shape, where batch chain
	// pre-linking collapses the most bucket CASes). The STeM is replaced
	// every few thousand batches — inside the timer, both modes alike — to
	// bound memory and keep chain lengths comparable.
	const (
		insBatch      = 256
		insDomain     = 32
		insResetEvery = 4096
	)
	insVids := make([]int32, insBatch)
	insKeys := make([]int64, insBatch)
	insQsets := make([]uint64, insBatch)
	for i := range insVids {
		insVids[i] = int32(i)
		insKeys[i] = int64(i % insDomain)
		insQsets[i] = ^uint64(0)
	}
	freshInsertStem := func() *stem.STeM {
		return stem.New(stem.NewVersions(), []string{"k"}, 64, insResetEvery*insBatch)
	}
	rep.StemInsert = toResult("stem_insert/scalar-batch256", testing.Benchmark(func(b *testing.B) {
		s := freshInsertStem()
		keyBuf := make([]int64, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%insResetEvery == insResetEvery-1 {
				s = freshInsertStem()
			}
			slot := stem.Slot(i & 1023)
			for j := range insVids {
				keyBuf[0] = insKeys[j]
				s.Insert(insVids[j], keyBuf, bitset.Set(insQsets[j:j+1]), slot)
			}
		}
	}))
	rep.StemInsertVec = toResult("stem_insert/vec-batch256", testing.Benchmark(func(b *testing.B) {
		s := freshInsertStem()
		var sc stem.InsertScratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%insResetEvery == insResetEvery-1 {
				s = freshInsertStem()
			}
			s.InsertVec(insVids, [][]int64{insKeys}, insQsets, 1, stem.Slot(i&1023), &sc)
		}
	}))
	if rep.StemInsertVec.NsPerOp > 0 {
		rep.StemInsertSpeedup = rep.StemInsert.NsPerOp / rep.StemInsertVec.NsPerOp
	}

	// STeM probe path, scalar vs vector: one op probes a 1024-key batch
	// against a unique-key (dimension-table) STeM whose entries span one
	// version slot per 64-tuple episode — the steady state of a long-lived
	// streaming session, where the scalar path resolves a slot per entry
	// and the vector path rides the publication watermark.
	const probeEntries = 1 << 16
	pv := stem.NewVersions()
	ps := stem.New(pv, []string{"k"}, 64, probeEntries)
	{
		q := bitset.NewFull(64)
		key := make([]int64, 1)
		for i := 0; i < probeEntries; i++ {
			key[0] = int64(i)
			ps.Insert(int32(i), key, q, stem.Slot(i>>6))
		}
		for sl := stem.Slot(0); sl < probeEntries>>6; sl++ {
			pv.Publish(sl)
		}
	}
	probeWM := pv.Watermark()
	probeTS := pv.Now()
	probeKeys := make([]int64, 1024)
	for i := range probeKeys {
		probeKeys[i] = int64((i * 40503) & (probeEntries - 1)) // Fibonacci stride: spread over the domain
	}
	rep.StemProbe = toResult("stem_probe/scalar-batch1024", testing.Benchmark(func(b *testing.B) {
		var dst []stem.Match
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, k := range probeKeys {
				dst = ps.Probe(dst[:0], "k", k, probeTS)
			}
		}
	}))
	rep.StemProbeVec = toResult("stem_probe/vec-batch1024", testing.Benchmark(func(b *testing.B) {
		var dst []stem.VecMatch
		var qbuf []uint64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst, qbuf = ps.ProbeVec(dst[:0], qbuf[:0], "k", probeKeys, probeTS, probeWM)
		}
	}))
	if rep.StemProbeVec.NsPerOp > 0 {
		rep.StemProbeSpeedup = rep.StemProbe.NsPerOp / rep.StemProbeVec.NsPerOp
	}

	// Symmetric-join pruning, scalar vs vector, on the same fixture.
	rep.StemSemiJoin = toResult("stem_semijoin/scalar-batch1024", testing.Benchmark(func(b *testing.B) {
		out := bitset.New(64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, k := range probeKeys {
				for w := range out {
					out[w] = 0
				}
				ps.SemiJoinQueries(out, "k", k)
			}
		}
	}))
	rep.StemSemiJoinVec = toResult("stem_semijoin/vec-batch1024", testing.Benchmark(func(b *testing.B) {
		outs := make([]uint64, len(probeKeys))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for w := range outs {
				outs[w] = 0
			}
			ps.SemiJoinVec(outs, 1, "k", probeKeys)
		}
	}))
	if rep.StemSemiJoinVec.NsPerOp > 0 {
		rep.StemSemiJoinSpeedup = rep.StemSemiJoin.NsPerOp / rep.StemSemiJoinVec.NsPerOp
	}

	states := qtableWorkload()
	rep.QTable = toResult("qtable_open_addressing", testing.Benchmark(func(b *testing.B) {
		tbl := qlearn.NewTable()
		for i := range states {
			s := &states[i]
			tbl.Slot(s.phase, s.inst, s.lineage, s.q, s.op).SetValue(float64(i))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := &states[i%len(states)]
			v := tbl.Get(s.phase, s.inst, s.lineage, s.q, s.op)
			tbl.Slot(s.phase, s.inst, s.lineage, s.q, s.op).SetValue(v + 1)
		}
	}))

	rep.QTableRef = toResult("qtable_map_reference", testing.Benchmark(func(b *testing.B) {
		ref := qlearn.NewRefTable()
		for i := range states {
			s := &states[i]
			ref.Set(s.phase, s.inst, s.lineage, s.q, s.op, float64(i))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := &states[i%len(states)]
			v := ref.Get(s.phase, s.inst, s.lineage, s.q, s.op)
			ref.Set(s.phase, s.inst, s.lineage, s.q, s.op, v+1)
		}
	}))
	if rep.QTable.NsPerOp > 0 {
		rep.QTableSpeedup = rep.QTableRef.NsPerOp / rep.QTable.NsPerOp
	}

	c.printf("perf: steady-state hot-path microbenchmarks\n")
	c.printf("%-32s %12s %10s %10s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	all := append(append([]BenchResult{}, rep.EpisodeStep...),
		rep.StemInsert, rep.StemInsertVec, rep.StemProbe, rep.StemProbeVec,
		rep.StemSemiJoin, rep.StemSemiJoinVec, rep.QTable, rep.QTableRef)
	for _, r := range all {
		c.printf("%-32s %12.1f %10d %10d\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	c.printf("stem insert vector speedup:  %.2fx (acceptance: >= 2x)\n", rep.StemInsertSpeedup)
	c.printf("stem probe vector speedup:   %.2fx (acceptance: >= 2x)\n", rep.StemProbeSpeedup)
	c.printf("stem semijoin vector speedup: %.2fx\n", rep.StemSemiJoinSpeedup)
	c.printf("qtable speedup over map reference: %.2fx (acceptance: >= 2x)\n", rep.QTableSpeedup)
	if !rep.EpisodeStepZeroAlloc {
		c.printf("WARNING: episode step is no longer allocation-free\n")
	}
	return rep, nil
}
