package bench

import (
	"testing"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/qlearn"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/stem"
)

// BenchResult is one microbenchmark measurement, JSON-shaped for BENCH.json.
type BenchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func toResult(name string, r testing.BenchmarkResult) BenchResult {
	return BenchResult{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// PerfReport is the perf section of BENCH.json: the steady-state episode
// step, STeM primitives, and the Q-table against its retained string-keyed
// map baseline (the acceptance bar is QTableSpeedup >= 2).
type PerfReport struct {
	EpisodeStep          []BenchResult `json:"episode_step"`
	EpisodeStepZeroAlloc bool          `json:"episode_step_zero_alloc"`
	StemInsert           BenchResult   `json:"stem_insert"`
	StemProbe            BenchResult   `json:"stem_probe"`
	QTable               BenchResult   `json:"qtable_open_addressing"`
	QTableRef            BenchResult   `json:"qtable_map_reference"`
	QTableSpeedup        float64       `json:"qtable_speedup"`
}

// qtableState is one recurring Q-table state for the table microbenchmarks.
type qtableState struct {
	phase   policy.Phase
	inst    query.InstID
	lineage uint64
	q       bitset.Set
	op      int
}

func qtableWorkload() []qtableState {
	pool := []bitset.Set{
		bitset.NewFull(16),
		bitset.NewFull(64),
		bitset.FromIDs(64, 2, 17, 63),
		bitset.NewFull(128),
		bitset.NewFull(200), // overflows the inline key words
		bitset.FromIDs(200, 5, 199),
	}
	states := make([]qtableState, 0, 4096)
	for i := 0; len(states) < cap(states); i++ {
		states = append(states, qtableState{
			phase:   policy.Phase(i % 2),
			inst:    query.InstID(i % 4),
			lineage: uint64(i % 61),
			q:       pool[i%len(pool)],
			op:      i % 7,
		})
	}
	return states
}

// Perf runs the allocation/throughput microbenchmarks and returns the
// machine-readable report. It is the "-fig perf" target of roulette-bench
// and the source of BENCH.json's perf section.
func (c *Config) Perf() (*PerfReport, error) {
	rep := &PerfReport{}

	for _, tc := range []struct {
		name string
		cfg  exec.StepBenchConfig
	}{
		{"episode_step/16q-1word", exec.StepBenchConfig{NQueries: 16}},
		{"episode_step/80q-2words", exec.StepBenchConfig{NQueries: 80}},
	} {
		tc.cfg.Policy = qlearn.New(qlearn.DefaultConfig())
		sb, err := exec.NewStepBench(tc.cfg)
		if err != nil {
			return nil, err
		}
		for i := 0; i < 16; i++ {
			sb.Step()
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sb.Step()
			}
		})
		rep.EpisodeStep = append(rep.EpisodeStep, toResult(tc.name, r))
	}
	rep.EpisodeStepZeroAlloc = true
	for _, r := range rep.EpisodeStep {
		if r.AllocsPerOp != 0 {
			rep.EpisodeStepZeroAlloc = false
		}
	}

	rep.StemInsert = toResult("stem_insert", testing.Benchmark(func(b *testing.B) {
		v := stem.NewVersions()
		s := stem.New(v, []string{"k"}, 64, b.N+1)
		q := bitset.NewFull(64)
		key := make([]int64, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key[0] = int64(i & 1023)
			s.Insert(int32(i), key, q, stem.Slot(i>>10))
		}
	}))

	rep.StemProbe = toResult("stem_probe", testing.Benchmark(func(b *testing.B) {
		v := stem.NewVersions()
		s := stem.New(v, []string{"k"}, 64, 1<<16)
		q := bitset.NewFull(64)
		key := make([]int64, 1)
		for i := 0; i < 1<<16; i++ {
			key[0] = int64(i & 4095)
			s.Insert(int32(i), key, q, 0)
		}
		v.Publish(0)
		ts := v.Now()
		var dst []stem.Match
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = s.Probe(dst[:0], "k", int64(i&4095), ts)
		}
	}))

	states := qtableWorkload()
	rep.QTable = toResult("qtable_open_addressing", testing.Benchmark(func(b *testing.B) {
		tbl := qlearn.NewTable()
		for i := range states {
			s := &states[i]
			*tbl.Slot(s.phase, s.inst, s.lineage, s.q, s.op) = float64(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := &states[i%len(states)]
			v := tbl.Get(s.phase, s.inst, s.lineage, s.q, s.op)
			*tbl.Slot(s.phase, s.inst, s.lineage, s.q, s.op) = v + 1
		}
	}))

	rep.QTableRef = toResult("qtable_map_reference", testing.Benchmark(func(b *testing.B) {
		ref := qlearn.NewRefTable()
		for i := range states {
			s := &states[i]
			ref.Set(s.phase, s.inst, s.lineage, s.q, s.op, float64(i))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := &states[i%len(states)]
			v := ref.Get(s.phase, s.inst, s.lineage, s.q, s.op)
			ref.Set(s.phase, s.inst, s.lineage, s.q, s.op, v+1)
		}
	}))
	if rep.QTable.NsPerOp > 0 {
		rep.QTableSpeedup = rep.QTableRef.NsPerOp / rep.QTable.NsPerOp
	}

	c.printf("perf: steady-state hot-path microbenchmarks\n")
	c.printf("%-28s %12s %10s %10s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	all := append(append([]BenchResult{}, rep.EpisodeStep...),
		rep.StemInsert, rep.StemProbe, rep.QTable, rep.QTableRef)
	for _, r := range all {
		c.printf("%-28s %12.1f %10d %10d\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	c.printf("qtable speedup over map reference: %.2fx (acceptance: >= 2x)\n", rep.QTableSpeedup)
	if !rep.EpisodeStepZeroAlloc {
		c.printf("WARNING: episode step is no longer allocation-free\n")
	}
	return rep, nil
}
