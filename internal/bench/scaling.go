package bench

import (
	"math/rand"
	"runtime"

	"github.com/roulette-db/roulette/internal/engine"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/job"
	"github.com/roulette-db/roulette/internal/qlearn"
	"github.com/roulette-db/roulette/internal/query"
)

// ScalingRow is one worker count's sample in the worker-scaling figure.
// Each row records the host parallelism it ran under, so a consumer of the
// baseline can tell a genuine scaling measurement from an oversubscribed
// one without cross-referencing the report header.
type ScalingRow struct {
	Workers        int     `json:"workers"`
	Seconds        float64 `json:"seconds"`
	Episodes       int64   `json:"episodes"`
	EpisodesPerSec float64 `json:"episodes_per_sec"`
	QPS            float64 `json:"qps"`
	Speedup        float64 `json:"speedup"` // wall-clock vs workers=1
	GoMaxProcs     int     `json:"gomaxprocs"`
	NumCPU         int     `json:"num_cpu"`
	// Oversubscribed marks rows whose worker count exceeds the host's
	// CPUs: their speedup measures scheduling overhead, not scaling, and
	// regression tripwires must not compare against them.
	Oversubscribed bool `json:"oversubscribed"`
}

// ScalingReport is the BENCH_scaling.json baseline: episode throughput of
// the vectorized engine as the worker pool grows. Unlike Fig19 (which prints
// per-batch wall-clock speedups), this figure is recorded machine-readably
// so CI can compare kernels against the committed baseline.
type ScalingReport struct {
	Queries    int          `json:"queries"`
	Batches    int          `json:"batches"`
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Rows       []ScalingRow `json:"rows"`
}

// Scaling runs identical JOB batches at 1/2/4/8 workers and records episode
// throughput per worker count. Wall-clock speedup saturates at GOMAXPROCS
// (recorded in the report); on a single-core host the figure instead tracks
// serial kernel efficiency and the overhead of extra workers.
func (c *Config) Scaling() (*ScalingReport, error) {
	db := job.Generate(c.Seed)
	pool := job.Queries(job.NumQueries, c.Seed)
	rng := rand.New(rand.NewSource(c.Seed))
	size, batches := 48, 3
	if c.Quick {
		size, batches = 16, 1
	}
	qsBatches := make([][]*query.Query, batches)
	for i := range qsBatches {
		qsBatches[i] = sampleWithoutReplacement(rng, pool, size)
	}

	rep := &ScalingReport{
		Queries: size, Batches: batches,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
	}
	c.printf("=== scaling: episode throughput vs workers (GOMAXPROCS=%d, NumCPU=%d) ===\n",
		rep.GoMaxProcs, rep.NumCPU)
	var base float64
	for _, wk := range []int{1, 2, 4, 8} {
		row := ScalingRow{
			Workers: wk, GoMaxProcs: rep.GoMaxProcs, NumCPU: rep.NumCPU,
			Oversubscribed: wk > rep.GoMaxProcs || wk > rep.NumCPU,
		}
		if row.Oversubscribed {
			c.logger().Warn("workers oversubscribe the host; speedup measures scheduling overhead, not scaling",
				"workers", wk, "gomaxprocs", rep.GoMaxProcs, "numcpu", rep.NumCPU)
		}
		for _, qs := range qsBatches {
			b, err := query.Compile(qs)
			if err != nil {
				return nil, err
			}
			opt := exec.DefaultOptions()
			opt.CollectRows = false
			qcfg := qlearn.DefaultConfig()
			qcfg.Seed = c.Seed
			s, err := engine.NewSession(b, db, engine.Config{
				Exec: opt, Workers: wk, Policy: qlearn.New(qcfg),
			})
			if err != nil {
				return nil, err
			}
			r, err := s.Run()
			if err != nil {
				return nil, err
			}
			row.Seconds += r.Elapsed.Seconds()
			row.Episodes += r.Episodes
		}
		if row.Seconds > 0 {
			row.EpisodesPerSec = float64(row.Episodes) / row.Seconds
			row.QPS = float64(size*batches) / row.Seconds
		}
		if wk == 1 {
			base = row.Seconds
		}
		if row.Seconds > 0 {
			row.Speedup = base / row.Seconds
		}
		rep.Rows = append(rep.Rows, row)
		c.printf("workers=%d  %8.3fs  %9.0f episodes/s  %7.2f q/s  speedup %.2fx\n",
			wk, row.Seconds, row.EpisodesPerSec, row.QPS, row.Speedup)
	}
	return rep, nil
}
