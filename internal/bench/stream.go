package bench

import (
	"context"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/roulette-db/roulette/internal/engine"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/obs"
	"github.com/roulette-db/roulette/internal/qlearn"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/tpcds"
	"github.com/roulette-db/roulette/internal/workload"
)

// StreamReport is the machine-readable result of the streaming benchmark:
// how fast queries enter a live session (submit latency is the quiesce-gate
// pause every admission costs), how fast they leave it (end-to-end
// submit-to-retire latency and steady-state throughput), and how much STeM
// memory the garbage collector hands back once they are gone. It is the
// BENCH_stream.json baseline tracked in EXPERIMENTS.md.
type StreamReport struct {
	Queries         int     `json:"queries"`
	MaxLive         int     `json:"max_live"`
	Workers         int     `json:"workers"`
	Seconds         float64 `json:"seconds"`
	QPS             float64 `json:"qps"`
	SubmitP50Micros float64 `json:"submit_p50_micros"`
	SubmitP95Micros float64 `json:"submit_p95_micros"`
	SubmitMaxMicros float64 `json:"submit_max_micros"`
	RetireP50Millis float64 `json:"retire_p50_millis"`
	RetireP95Millis float64 `json:"retire_p95_millis"`
	StemPeakBytes   int64   `json:"stem_peak_bytes"`
	StemFinalBytes  int64   `json:"stem_final_bytes"`
}

// percentile reads the p-th percentile (0..100) from a sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p / 100 * float64(len(sorted)-1))
	return sorted[i]
}

// Stream runs the streaming-lifecycle benchmark: one long-lived session,
// queries submitted one at a time with MaxLive in-flight, each retiring
// individually and being garbage-collected while later queries run. The
// batched figures measure shared execution of a fixed set; this one
// measures the machinery around it — admission cost, retirement latency
// and STeM reclamation under churn.
func (c *Config) Stream() (*StreamReport, error) {
	db := tpcds.Generate(c.Scale, c.Seed)
	p := workload.DefaultParams()
	p.Seed = c.Seed
	n, maxLive := 200, 32
	if c.Quick {
		n, maxLive = 50, 16
	}
	pool := workload.NewGenerator(p).Generate(n)

	qcfg := qlearn.DefaultConfig()
	qcfg.Seed = c.Seed
	opt := exec.DefaultOptions()
	opt.CollectRows = false

	var (
		mu      sync.Mutex
		started = map[int]time.Time{} // qid -> submit time
		retire  []float64             // millis, appended on retirement
		retired = make(chan struct{}, n)
	)
	var rec *obs.Recorder
	if c.TracePath != "" {
		rec = obs.NewRecorder(4+1, 1<<15) // workers + control ring, deep enough for the whole run
	}
	cfg := engine.Config{
		Exec:      opt,
		Workers:   4,
		Policy:    qlearn.New(qcfg),
		Streaming: true,
		Recorder:  rec,
		OnRetire: func(qid int, st engine.QueryStatus) {
			mu.Lock()
			if t0, ok := started[qid]; ok {
				retire = append(retire, float64(time.Since(t0).Microseconds())/1e3)
				delete(started, qid)
			}
			mu.Unlock()
			retired <- struct{}{}
		},
	}
	b := query.NewStreamBatch(maxLive)
	s, err := engine.NewSession(b, db, cfg)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() {
		_, err := s.RunContext(ctx)
		runErr <- err
	}()

	rep := &StreamReport{Queries: n, MaxLive: maxLive, Workers: cfg.Workers}
	var submit []float64 // micros
	stemBytes := func() int64 {
		var sum int64
		for _, st := range s.StemSnapshot() {
			sum += st.EstBytes
		}
		return sum
	}

	start := time.Now()
	for _, q := range pool {
		// Backpressure: a slot frees only after its query is swept, so the
		// submit loop measures the whole admit-retire-reclaim cycle.
		for s.FreeQuerySlots() == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		t0 := time.Now()
		qid, err := s.SubmitLive(q)
		if err != nil {
			cancel()
			<-runErr
			return nil, err
		}
		submit = append(submit, float64(time.Since(t0).Microseconds()))
		mu.Lock()
		started[qid] = t0
		mu.Unlock()
		if bytes := stemBytes(); bytes > rep.StemPeakBytes {
			rep.StemPeakBytes = bytes
		}
	}
	for i := 0; i < n; i++ {
		<-retired
	}
	rep.Seconds = time.Since(start).Seconds()
	s.CloseSubmit()
	if err := <-runErr; err != nil {
		return nil, err
	}
	rep.StemFinalBytes = stemBytes()

	sort.Float64s(submit)
	sort.Float64s(retire)
	rep.QPS = float64(n) / rep.Seconds
	rep.SubmitP50Micros = percentile(submit, 50)
	rep.SubmitP95Micros = percentile(submit, 95)
	rep.SubmitMaxMicros = submit[len(submit)-1]
	rep.RetireP50Millis = percentile(retire, 50)
	rep.RetireP95Millis = percentile(retire, 95)

	c.printf("=== stream: live admission / retirement / GC under churn ===\n")
	c.printf("%d queries, %d live slots: %.1f q/s over %.2fs\n", n, maxLive, rep.QPS, rep.Seconds)
	c.printf("submit latency  p50=%.0fµs p95=%.0fµs max=%.0fµs\n",
		rep.SubmitP50Micros, rep.SubmitP95Micros, rep.SubmitMaxMicros)
	c.printf("retire latency  p50=%.1fms p95=%.1fms\n", rep.RetireP50Millis, rep.RetireP95Millis)
	c.printf("stem bytes      peak=%d final=%d (reclaimed %.0f%%)\n",
		rep.StemPeakBytes, rep.StemFinalBytes,
		100*(1-float64(rep.StemFinalBytes)/float64(max64(rep.StemPeakBytes, 1))))
	if rec != nil {
		if err := writeTraceFile(c.TracePath, rec); err != nil {
			return nil, err
		}
		c.printf("wrote flight-recorder trace to %s (load in Perfetto or chrome://tracing)\n", c.TracePath)
	}
	return rep, nil
}

// writeTraceFile dumps the recorder's merged timeline as Chrome
// trace_event JSON.
func writeTraceFile(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteTrace(f, rec.Snapshot(), rec.Rings()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
