package bench

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"github.com/roulette-db/roulette/internal/admission"
	"github.com/roulette-db/roulette/internal/cost"
	"github.com/roulette-db/roulette/internal/engine"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/qlearn"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
	"github.com/roulette-db/roulette/internal/tpcds"
	"github.com/roulette-db/roulette/internal/workload"
)

// TenantStressRow is one tenant class's share of the saturation figure.
type TenantStressRow struct {
	Tenant          string  `json:"tenant"`
	Weight          float64 `json:"weight"`
	RateLimited     bool    `json:"rate_limited"`
	Submitted       int64   `json:"submitted"`
	Retired         int64   `json:"retired"`
	Rejections      int64   `json:"rejections"` // admission rejections (each retried)
	Dropped         int64   `json:"dropped"`    // gave up after max retries
	RetireP50Millis float64 `json:"retire_p50_millis"`
	RetireP95Millis float64 `json:"retire_p95_millis"`
}

// StressReport is the machine-readable result of the overload/saturation
// benchmark (BENCH_stress.json): three tenant classes push a live session
// past its in-flight cost budget, and the figure records how the admission
// controller and the weighted-fair scheduler degrade — rejections instead
// of queueing collapse, bounded per-tenant retirement latency, and no
// starvation of the rate-limited class.
type StressReport struct {
	Queries          int               `json:"queries"`
	MaxLive          int               `json:"max_live"`
	Workers          int               `json:"workers"`
	BudgetCost       float64           `json:"budget_cost"`
	Seconds          float64           `json:"seconds"`
	QPS              float64           `json:"qps"`
	Rejections       int64             `json:"rejections"`
	PeakInFlightCost float64           `json:"peak_in_flight_cost"`
	Tenants          []TenantStressRow `json:"tenants"`
}

// estimateQueryCost mirrors the public Stream's submit-time estimator: one
// selection pass per relation plus a join pass per edge sized by its larger
// side, in model nanoseconds.
func estimateQueryCost(m *cost.Model, db *storage.Database, q *query.Query) float64 {
	alias := func(r query.RelRef) string {
		if r.Alias != "" {
			return r.Alias
		}
		return r.Table
	}
	rows := make(map[string]float64, len(q.Rels))
	total := 0.0
	for _, r := range q.Rels {
		t := db.Table(r.Table)
		if t == nil {
			continue
		}
		n := float64(t.NumRows())
		rows[alias(r)] = n
		total += m.Cost(cost.Selection, n, n)
	}
	for _, j := range q.Joins {
		n := rows[j.LeftAlias]
		if rn := rows[j.RightAlias]; rn > n {
			n = rn
		}
		total += m.Cost(cost.Join, n, n)
	}
	return total
}

// Stress runs the saturation benchmark: three tenant classes (gold weight 8,
// silver weight 2, bronze weight 1 and rate-limited) submit concurrently
// against an in-flight cost budget sized well below what the query slots
// alone would admit. Overload surfaces as typed rejections with retry-after
// hints — the submitters honour them — and the report records per-tenant
// admission and retirement tails.
func (c *Config) Stress() (*StressReport, error) {
	db := tpcds.Generate(c.Scale, c.Seed)
	p := workload.DefaultParams()
	p.Seed = c.Seed
	n, maxLive := 240, 24
	if c.Quick {
		n, maxLive = 60, 12
	}
	n -= n % 3 // equal share per class
	pool := workload.NewGenerator(p).Generate(n)

	model := cost.Default()
	ests := make([]float64, n)
	for i, q := range pool {
		ests[i] = estimateQueryCost(model, db, q)
	}
	sorted := append([]float64(nil), ests...)
	sort.Float64s(sorted)
	medEst := sorted[len(sorted)/2]

	// The budget admits ~6 median queries — far below the maxLive slots, so
	// the cost budget (not slot exhaustion) is what pushes back. Bronze is
	// additionally rate-limited to ~30 median admissions per second.
	budget := 6 * medEst
	classes := []struct {
		name    string
		weight  float64
		limited bool
	}{
		{"gold", 8, false},
		{"silver", 2, false},
		{"bronze", 1, true},
	}
	ctrl := admission.NewController(admission.Config{
		MaxInFlightCost: budget,
		Tenants: map[string]admission.TenantLimit{
			"bronze": {Rate: 30 * medEst, Burst: 5 * medEst, Weight: 1},
			"gold":   {Weight: 8},
			"silver": {Weight: 2},
		},
	})

	type inflight struct {
		class int
		cost  float64
		t0    time.Time
	}
	var (
		mu      sync.Mutex
		started = map[int]inflight{}
		early   = map[int]bool{}                  // retired before the submitter registered
		retire  = make([][]float64, len(classes)) // millis per class
		retired = make(chan struct{}, n)
	)
	qcfg := qlearn.DefaultConfig()
	qcfg.Seed = c.Seed
	opt := exec.DefaultOptions()
	opt.CollectRows = false
	cfg := engine.Config{
		Exec:      opt,
		Workers:   4,
		Policy:    qlearn.New(qcfg),
		Streaming: true,
		OnRetire: func(qid int, st engine.QueryStatus) {
			mu.Lock()
			f, ok := started[qid]
			if ok {
				retire[f.class] = append(retire[f.class],
					float64(time.Since(f.t0).Microseconds())/1e3)
				delete(started, qid)
			} else {
				early[qid] = true // submitter settles accounting
			}
			mu.Unlock()
			if ok {
				ctrl.Release(classes[f.class].name, f.cost)
				retired <- struct{}{}
			}
		},
	}
	b := query.NewStreamBatch(maxLive)
	s, err := engine.NewSession(b, db, cfg)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() {
		_, err := s.RunContext(ctx)
		runErr <- err
	}()

	rep := &StressReport{Queries: n, MaxLive: maxLive, Workers: cfg.Workers, BudgetCost: budget}
	rows := make([]TenantStressRow, len(classes))
	var peakMu sync.Mutex
	var wg sync.WaitGroup
	var submitErr error
	var errOnce sync.Once

	start := time.Now()
	for ci := range classes {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cls := classes[ci]
			row := &rows[ci]
			for i := ci; i < n; i += len(classes) {
				q, est := pool[i], ests[i]
				admitted := false
				for attempt := 0; attempt < 1000; attempt++ {
					if err := ctrl.Admit(cls.name, est); err == nil {
						admitted = true
						break
					} else {
						row.Rejections++
						var oe *admission.OverloadError
						wait := time.Millisecond
						if errors.As(err, &oe) && oe.RetryAfter > 0 {
							wait = oe.RetryAfter
						}
						if wait > 50*time.Millisecond {
							wait = 50 * time.Millisecond
						}
						time.Sleep(wait)
					}
				}
				if !admitted {
					row.Dropped++
					continue
				}
				for s.FreeQuerySlots() == 0 {
					time.Sleep(100 * time.Microsecond)
				}
				t0 := time.Now()
				qid, err := s.SubmitLiveMeta(q, engine.SubmitMeta{
					Tenant: cls.name, Weight: cls.weight, Cost: est,
				})
				if err != nil {
					ctrl.Release(cls.name, est)
					errOnce.Do(func() { submitErr = err })
					return
				}
				mu.Lock()
				if early[qid] {
					// Retired before registration: settle here.
					delete(early, qid)
					retire[ci] = append(retire[ci],
						float64(time.Since(t0).Microseconds())/1e3)
					mu.Unlock()
					ctrl.Release(cls.name, est)
					retired <- struct{}{}
				} else {
					started[qid] = inflight{class: ci, cost: est, t0: t0}
					mu.Unlock()
				}
				row.Submitted++
				peakMu.Lock()
				if f := ctrl.InFlightCost(); f > rep.PeakInFlightCost {
					rep.PeakInFlightCost = f
				}
				peakMu.Unlock()
			}
		}(ci)
	}
	wg.Wait()
	if submitErr != nil {
		cancel()
		<-runErr
		return nil, submitErr
	}
	var submitted int64
	for i := range rows {
		submitted += rows[i].Submitted
	}
	for i := int64(0); i < submitted; i++ {
		<-retired
	}
	rep.Seconds = time.Since(start).Seconds()
	s.CloseSubmit()
	if err := <-runErr; err != nil {
		return nil, err
	}

	for ci := range classes {
		lat := retire[ci]
		sort.Float64s(lat)
		rows[ci].Tenant = classes[ci].name
		rows[ci].Weight = classes[ci].weight
		rows[ci].RateLimited = classes[ci].limited
		rows[ci].Retired = int64(len(lat))
		rows[ci].RetireP50Millis = percentile(lat, 50)
		rows[ci].RetireP95Millis = percentile(lat, 95)
		rep.Rejections += rows[ci].Rejections
	}
	rep.Tenants = rows
	rep.QPS = float64(submitted) / rep.Seconds

	c.printf("=== stress: admission under saturation (budget %.0f cost units) ===\n", budget)
	c.printf("%d queries, %d live slots: %.1f q/s over %.2fs, peak in-flight cost %.0f\n",
		n, maxLive, rep.QPS, rep.Seconds, rep.PeakInFlightCost)
	for _, r := range rep.Tenants {
		lim := ""
		if r.RateLimited {
			lim = " (rate-limited)"
		}
		c.printf("%-7s w=%.0f%s  submitted=%d retired=%d rejections=%d dropped=%d  retire p50=%.1fms p95=%.1fms\n",
			r.Tenant, r.Weight, lim, r.Submitted, r.Retired, r.Rejections, r.Dropped,
			r.RetireP50Millis, r.RetireP95Millis)
	}
	return rep, nil
}
