package bench

import (
	"github.com/roulette-db/roulette/internal/engine"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/monet"
	"github.com/roulette-db/roulette/internal/qlearn"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/value"
	"github.com/roulette-db/roulette/internal/workload"
)

// StringsRow is one system's sample in the string-workload figure.
type StringsRow struct {
	System  string  `json:"system"`
	Queries int     `json:"queries"`
	Seconds float64 `json:"seconds"`
	QPS     float64 `json:"qps"`
}

// StringsReport is the BENCH_strings.json baseline: batch throughput over
// the TPC-H-shaped string workload — dictionary-encoded skewed predicates,
// a cross-relation string join, and nullable attributes — recorded
// machine-readably so CI can trip on typed-path regressions. The field
// holding the per-system rows is named "systems" (not "rows") so
// bench-compare can tell a bare strings report from a bare scaling one.
type StringsReport struct {
	Queries     int     `json:"queries"`
	Batches     int     `json:"batches"`
	Scale       float64 `json:"scale"`
	DictEntries int     `json:"dict_entries"`
	// MatchesBaseline is the in-run correctness tripwire: the shared
	// engine's per-query counts on the first batch equal the tuple-at-a-
	// time baseline's. A throughput number over wrong answers is noise.
	MatchesBaseline bool         `json:"matches_baseline"`
	Systems         []StringsRow `json:"systems"`
}

// Strings runs the string-heavy workload batches on the shared engine and
// the MonetDB-style baseline, checking result equality before timing.
func (c *Config) Strings() (*StringsReport, error) {
	db := workload.StringsDB(c.Scale, c.Seed)
	pool := workload.NewStringsGen(c.Seed).Generate(256)
	size, batches := 24, 3
	if c.Quick {
		size, batches = 12, 1
	}
	// Contiguous pool slices keep every generated shape in each batch.
	qsBatches := make([][]*query.Query, batches)
	for i := range qsBatches {
		batch := make([]*query.Query, size)
		for j := range batch {
			cp := *pool[(i*size+j)%len(pool)]
			batch[j] = &cp
		}
		qsBatches[i] = batch
	}

	rep := &StringsReport{Queries: size, Batches: batches, Scale: c.Scale}
	seen := map[*value.Dict]bool{}
	for _, name := range db.TableNames() {
		rel := db.MustTable(name).Rel
		for i := range rel.Columns {
			if d := rel.Columns[i].Dict; d != nil && !seen[d] {
				seen[d] = true
				rep.DictEntries += d.Len()
			}
		}
	}
	c.printf("=== strings: TPC-H-shaped string workload (scale %.2f, %d dictionary entries) ===\n",
		c.Scale, rep.DictEntries)

	// Correctness gate: shared execution must agree with the baseline on
	// every query of the first batch before any throughput is recorded.
	{
		qs := qsBatches[0]
		want, _, err := monet.New(db).RunSerial(qs)
		if err != nil {
			return nil, err
		}
		b, err := query.Compile(qs)
		if err != nil {
			return nil, err
		}
		opt := exec.DefaultOptions()
		opt.CollectRows = false
		qcfg := qlearn.DefaultConfig()
		qcfg.Seed = c.Seed
		s, err := engine.NewSession(b, db, engine.Config{Exec: opt, Policy: qlearn.New(qcfg)})
		if err != nil {
			return nil, err
		}
		r, err := s.Run()
		if err != nil {
			return nil, err
		}
		rep.MatchesBaseline = len(r.Counts) == len(want)
		for qid := range want {
			if r.Counts[qid] != want[qid] {
				rep.MatchesBaseline = false
				c.logger().Error("string workload count mismatch",
					"qid", qid, "tag", qs[qid].Tag, "engine", r.Counts[qid], "baseline", want[qid])
			}
		}
		c.printf("correctness vs baseline: %d queries, match=%v\n", len(qs), rep.MatchesBaseline)
	}

	for _, sys := range []System{SysMonet, SysRouLette} {
		row := StringsRow{System: sys.String(), Queries: size * batches}
		for _, qs := range qsBatches {
			r, err := c.runSystem(sys, db, qs, 0)
			if err != nil {
				return nil, err
			}
			row.Seconds += r.Elapsed.Seconds()
		}
		if row.Seconds > 0 {
			row.QPS = float64(row.Queries) / row.Seconds
		}
		rep.Systems = append(rep.Systems, row)
		c.printf("%-12s %8.3fs  %7.2f q/s\n", row.System, row.Seconds, row.QPS)
	}
	return rep, nil
}
