package bench

import (
	"math/rand"
	"time"

	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/sharing"
	"github.com/roulette-db/roulette/internal/tpcds"
	"github.com/roulette-db/roulette/internal/workload"
)

// SWORow is one exhaustive-MQO attempt.
type SWORow struct {
	Batch    int
	Elapsed  time.Duration
	TimedOut bool
	Plans    int64
}

// SWO demonstrates why the paper omits offline sharing from its plots
// (§6.1: the state-of-the-art shared-workload optimizer needs 137 s for an
// 11-query batch of 4-join queries): the exhaustive shared-plan search
// space is the product of the per-query order counts. Batch sizes grow
// until the optimizer hits the timeout, while RouLette's adaptive planning
// handles the same batches in milliseconds of decision time.
func (c *Config) SWO() ([]SWORow, error) {
	db := tpcds.Generate(c.Scale, c.Seed)
	p := workload.DefaultParams()
	p.Joins = 4
	p.Seed = c.Seed
	pool := workload.NewGenerator(p).Generate(64)
	rng := rand.New(rand.NewSource(c.Seed))

	timeout := 30 * time.Second
	sizes := []int{2, 4, 6, 8, 11, 14}
	if c.Quick {
		timeout = 2 * time.Second
		sizes = []int{2, 4, 8, 11}
	}

	c.printf("=== SWO anecdote: exhaustive shared-workload optimization ===\n")
	var rows []SWORow
	for _, n := range sizes {
		qs := sampleWithoutReplacement(rng, pool, n)
		b, err := query.Compile(qs)
		if err != nil {
			return nil, err
		}
		fact, _ := b.FindInstance("store_sales", 0)
		res := sharing.ExhaustiveMQO(b, db, fact, timeout)
		rows = append(rows, SWORow{Batch: n, Elapsed: res.Elapsed, TimedOut: res.TimedOut, Plans: res.PlansTried})
		status := "ok"
		if res.TimedOut {
			status = "TIMEOUT"
		}
		c.printf("batch=%2d  %10.3fs  plans-tried=%-12d %s\n", n, res.Elapsed.Seconds(), res.PlansTried, status)
		if res.TimedOut {
			break
		}
	}
	return rows, nil
}
