package bench

import (
	"fmt"
	"math/rand"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/engine"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/policystore"
	"github.com/roulette-db/roulette/internal/qlearn"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
)

// WarmstartRound is one batch execution inside a warm-start sweep.
type WarmstartRound struct {
	Episodes   int64   `json:"episodes"`
	JoinTuples int64   `json:"join_tuples"`
	Seconds    float64 `json:"seconds"`
	QPS        float64 `json:"qps"`
}

// WarmstartMode aggregates one arm (cold or warm) of the sweep.
type WarmstartMode struct {
	Rounds []WarmstartRound `json:"rounds"`
	// Steady-state totals: rounds 2..R, i.e. everything after the first.
	// Round 1 is identical by construction (the warm arm's store is still
	// empty), so including it would only dilute the comparison.
	SteadyEpisodes   int64   `json:"steady_episodes"`
	SteadyJoinTuples int64   `json:"steady_join_tuples"`
	SteadySeconds    float64 `json:"steady_seconds"`
	SteadyQPS        float64 `json:"steady_qps"`
}

// WarmstartReport is the cold-vs-warm recurring-workload comparison: the
// same sequence of correlation-stress batches — fixed templates, fresh
// filter constants and submission order each round — executed with a
// fresh policy per round (cold) versus a fresh policy per round
// warm-started from a shared PolicyStore (warm). The learned state
// travels only through the template-keyed snapshot cache, so the warm
// arm's reductions measure exactly what cross-batch persistence buys:
// the routed tuples the cold learner burns re-discovering each group's
// contracting-first join order every round.
type WarmstartReport struct {
	Rounds          int `json:"rounds"`
	QueriesPerRound int `json:"queries_per_round"`

	Cold WarmstartMode `json:"cold"`
	Warm WarmstartMode `json:"warm"`

	// Steady-state reductions, 0..1 (e.g. 0.4 = warm needed 40% fewer).
	JoinTupleReduction float64 `json:"join_tuple_reduction"`
	EpisodeReduction   float64 `json:"episode_reduction"`
	// QPSRatio is warm steady-state throughput over cold (>1 = faster).
	QPSRatio float64 `json:"qps_ratio"`

	CacheHits   uint64 `json:"cache_hits"`
	CacheStores uint64 `json:"cache_stores"`
}

// stressRound draws one recurring instance of the stress workload: the
// same two templates, fresh constants, shuffled submission order (so warm
// hits cannot come from positional accidents), round-stamped tags.
func stressRound(rng *rand.Rand, round int) []*query.Query {
	qs := stressQueries(rng)
	for _, q := range qs {
		q.Tag = fmt.Sprintf("%s-r%d", q.Tag, round)
	}
	rng.Shuffle(len(qs), func(i, j int) { qs[i], qs[j] = qs[j], qs[i] })
	return qs
}

// warmstartRound executes one batch with a fresh learned policy. With a
// store attached the policy is warm-started before the run and exported
// after it — the exact wiring Options.PolicyStore uses. The large vector
// size keeps rounds short (~70 episodes), so a cold learner spends a big
// share of each round still exploring — the regime where recurring
// workloads actually hurt and persistence pays.
func (c *Config) warmstartRound(db *storage.Database, qs []*query.Query, store *policystore.Cache) (WarmstartRound, []int64, error) {
	var out WarmstartRound
	b, err := query.Compile(qs)
	if err != nil {
		return out, nil, err
	}
	opt := exec.DefaultOptions()
	opt.CollectRows = false
	opt.VectorSize = 512
	cfg := qlearn.DefaultConfig()
	cfg.Seed = c.Seed
	pol := qlearn.New(cfg)
	s, err := engine.NewSession(b, db, engine.Config{Exec: opt, Policy: pol})
	if err != nil {
		return out, nil, err
	}
	all := bitset.NewFull(b.N)
	if store != nil {
		store.Import(pol, b, s.Context(), all)
	}
	r, err := s.Run()
	if err != nil {
		return out, nil, err
	}
	if store != nil {
		store.Export(pol, b, s.Context(), all)
	}
	out = WarmstartRound{
		Episodes:   r.Episodes,
		JoinTuples: r.JoinTuples,
		Seconds:    r.Elapsed.Seconds(),
		QPS:        r.Throughput(),
	}
	return out, r.Counts, nil
}

// Warmstart runs the recurring-workload warm-start experiment.
func (c *Config) Warmstart() (*WarmstartReport, error) {
	rounds := 5
	if c.Quick {
		rounds = 3
	}
	db := buildStressData(c.Seed)

	// Materialize every round's batch up front so both arms execute the
	// byte-identical query sequence.
	rng := rand.New(rand.NewSource(c.Seed + 7177))
	batches := make([][]*query.Query, rounds)
	for r := range batches {
		batches[r] = stressRound(rng, r)
	}
	nQ := len(batches[0])

	rep := &WarmstartReport{Rounds: rounds, QueriesPerRound: nQ}
	store, err := policystore.Open(policystore.Options{})
	if err != nil {
		return nil, err
	}
	c.printf("Warm start: %d rounds x %d recurring-template stress queries (seed %d)\n",
		rounds, nQ, c.Seed)
	c.printf("  %-6s %14s %14s %10s   %14s %14s %10s\n",
		"round", "cold episodes", "cold tuples", "cold q/s", "warm episodes", "warm tuples", "warm q/s")
	for r := 0; r < rounds; r++ {
		cold, coldCounts, err := c.warmstartRound(db, batches[r], nil)
		if err != nil {
			return nil, fmt.Errorf("cold round %d: %w", r+1, err)
		}
		warm, warmCounts, err := c.warmstartRound(db, batches[r], store)
		if err != nil {
			return nil, fmt.Errorf("warm round %d: %w", r+1, err)
		}
		for i := range coldCounts {
			if coldCounts[i] != warmCounts[i] {
				return nil, fmt.Errorf("round %d query %d: warm count %d != cold count %d",
					r+1, i, warmCounts[i], coldCounts[i])
			}
		}
		rep.Cold.Rounds = append(rep.Cold.Rounds, cold)
		rep.Warm.Rounds = append(rep.Warm.Rounds, warm)
		c.printf("  %-6d %14d %14d %10.1f   %14d %14d %10.1f\n",
			r+1, cold.Episodes, cold.JoinTuples, cold.QPS,
			warm.Episodes, warm.JoinTuples, warm.QPS)
	}
	for _, m := range []*WarmstartMode{&rep.Cold, &rep.Warm} {
		for _, rd := range m.Rounds[1:] {
			m.SteadyEpisodes += rd.Episodes
			m.SteadyJoinTuples += rd.JoinTuples
			m.SteadySeconds += rd.Seconds
		}
		if m.SteadySeconds > 0 {
			m.SteadyQPS = float64(nQ*(rounds-1)) / m.SteadySeconds
		}
	}
	if rep.Cold.SteadyJoinTuples > 0 {
		rep.JoinTupleReduction = 1 - float64(rep.Warm.SteadyJoinTuples)/float64(rep.Cold.SteadyJoinTuples)
	}
	if rep.Cold.SteadyEpisodes > 0 {
		rep.EpisodeReduction = 1 - float64(rep.Warm.SteadyEpisodes)/float64(rep.Cold.SteadyEpisodes)
	}
	if rep.Cold.SteadyQPS > 0 {
		rep.QPSRatio = rep.Warm.SteadyQPS / rep.Cold.SteadyQPS
	}
	st := store.Stats()
	rep.CacheHits, rep.CacheStores = st.Hits, st.Stores
	c.printf("  steady state (rounds 2..%d): tuples -%.1f%%, episodes -%.1f%%, q/s x%.2f (cache: %d hits, %d stores)\n",
		rounds, 100*rep.JoinTupleReduction, 100*rep.EpisodeReduction, rep.QPSRatio,
		rep.CacheHits, rep.CacheStores)
	return rep, nil
}
