package bench

import "testing"

// TestWarmstartQuick smoke-runs the warm-start figure at CI scale and
// checks its two core claims: round 1 is identical across arms (an empty
// store must not perturb the run), and the warm arm's steady-state rounds
// hit the cache and route no more tuples than the cold arm's.
func TestWarmstartQuick(t *testing.T) {
	c := DefaultConfig(nil)
	c.Quick = true
	rep, err := c.Warmstart()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cold.Rounds[0].JoinTuples != rep.Warm.Rounds[0].JoinTuples {
		t.Fatalf("round 1 diverged with an empty store: cold %d vs warm %d",
			rep.Cold.Rounds[0].JoinTuples, rep.Warm.Rounds[0].JoinTuples)
	}
	if rep.CacheHits == 0 {
		t.Fatalf("warm arm never hit the policy cache: %+v", rep)
	}
	if rep.JoinTupleReduction <= 0 {
		t.Fatalf("warm start did not reduce routed tuples: reduction=%.3f", rep.JoinTupleReduction)
	}
}
