// Package bitset implements the query-set bitsets of the Data-Query model.
//
// RouLette annotates every tuple with the set of queries it belongs to
// (Sioulas & Ailamaki, SIGMOD 2021, §2.1). Query sets are dense bitsets over
// small integer query IDs assigned per scheduled batch. All shared operators
// (grouped filters, STeM probes, routing selections, routers) manipulate
// tuples' query sets with the algebra below.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bitset over query IDs 0..n-1. The zero value is an empty set of
// capacity 0; use New for a set with room for n queries. A Set value is a
// slice header, so assignment aliases; use Clone for an independent copy.
type Set []uint64

// WordsFor returns the number of 64-bit words needed for n bits.
func WordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// New returns an empty Set with capacity for n query IDs.
func New(n int) Set { return make(Set, WordsFor(n)) }

// NewFull returns a Set with bits 0..n-1 all set.
func NewFull(n int) Set {
	s := New(n)
	for i := range s {
		s[i] = ^uint64(0)
	}
	if rem := n % wordBits; rem != 0 && len(s) > 0 {
		s[len(s)-1] = (uint64(1) << rem) - 1
	}
	return s
}

// FromIDs returns a Set of capacity n containing exactly the given IDs.
func FromIDs(n int, ids ...int) Set {
	s := New(n)
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Add sets bit id. It panics if id is outside the set's capacity.
func (s Set) Add(id int) { s[id/wordBits] |= uint64(1) << (id % wordBits) }

// Remove clears bit id if present.
func (s Set) Remove(id int) {
	w := id / wordBits
	if w < len(s) {
		s[w] &^= uint64(1) << (id % wordBits)
	}
}

// Contains reports whether bit id is set.
func (s Set) Contains(id int) bool {
	w := id / wordBits
	return w < len(s) && s[w]&(uint64(1)<<(id%wordBits)) != 0
}

// Empty reports whether no bit is set.
func (s Set) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// CopyInto copies s into dst, growing dst if needed, and returns dst.
func (s Set) CopyInto(dst Set) Set {
	if cap(dst) < len(s) {
		dst = make(Set, len(s))
	}
	dst = dst[:len(s)]
	copy(dst, s)
	return dst
}

// AndWith intersects s with o in place. o may be shorter than s; missing
// words are treated as zero.
func (s Set) AndWith(o Set) {
	for i := range s {
		if i < len(o) {
			s[i] &= o[i]
		} else {
			s[i] = 0
		}
	}
}

// OrWith unions o into s in place. o must not be longer than s.
func (s Set) OrWith(o Set) {
	for i := range o {
		s[i] |= o[i]
	}
}

// AndNotWith removes o's bits from s in place.
func (s Set) AndNotWith(o Set) {
	for i := range o {
		if i < len(s) {
			s[i] &^= o[i]
		}
	}
}

// And returns the intersection of a and b as a new Set sized like a.
func And(a, b Set) Set {
	r := a.Clone()
	r.AndWith(b)
	return r
}

// AndNot returns a − b as a new Set.
func AndNot(a, b Set) Set {
	r := a.Clone()
	r.AndNotWith(b)
	return r
}

// Intersects reports whether a and b share at least one bit.
func Intersects(a, b Set) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}

// IsSubset reports whether every bit of s is also set in o.
func (s Set) IsSubset(o Set) bool {
	for i, w := range s {
		var ow uint64
		if i < len(o) {
			ow = o[i]
		}
		if w&^ow != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain exactly the same bits.
func (s Set) Equal(o Set) bool {
	n := len(s)
	if len(o) > n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s) {
			a = s[i]
		}
		if i < len(o) {
			b = o[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in ascending order.
func (s Set) ForEach(fn func(id int)) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// IDs returns the set bits in ascending order.
func (s Set) IDs() []int {
	return s.AppendIDs(make([]int, 0, s.Count()))
}

// AppendIDs appends the set bits in ascending order to dst and returns the
// extended slice. It is the allocation-free variant of IDs for callers that
// reuse a buffer across calls.
func (s Set) AppendIDs(dst []int) []int {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, wi*wordBits+b)
			w &= w - 1
		}
	}
	return dst
}

// trimmed returns the number of words up to the last non-zero one, so sets
// differing only in trailing-zero-word padding canonicalize identically.
func (s Set) trimmed() int {
	n := len(s)
	for n > 0 && s[n-1] == 0 {
		n--
	}
	return n
}

// Hash returns a 64-bit hash of the set's contents. Two sets with the same
// bits (regardless of trailing-zero-word padding) hash identically. It never
// allocates.
func (s Set) Hash() uint64 {
	n := s.trimmed()
	h := uint64(0x9E3779B97F4A7C15) ^ uint64(n)
	for i := 0; i < n; i++ {
		h ^= s[i]
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 29
	}
	h *= 0x94D049BB133111EB
	h ^= h >> 32
	return h
}

// AppendKey appends s's canonical key bytes — the little-endian words up to
// the last non-zero one — to dst and returns the extended slice. It is the
// allocation-free variant of Key for callers that reuse a buffer.
func (s Set) AppendKey(dst []byte) []byte {
	n := s.trimmed()
	for i := 0; i < n; i++ {
		w := s[i]
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// Key returns a compact string usable as a map key. Two sets with the same
// bits (regardless of trailing-zero-word padding) produce the same key.
func (s Set) Key() string {
	return string(s.AppendKey(make([]byte, 0, len(s)*8)))
}

// String renders the set as {id, id, ...} for debugging.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(id int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", id)
	})
	b.WriteByte('}')
	return b.String()
}
