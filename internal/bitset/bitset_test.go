package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAdd(t *testing.T) {
	s := New(130)
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	for _, id := range []int{0, 1, 63, 64, 65, 127, 129} {
		s.Add(id)
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false after Add", id)
		}
	}
	if s.Count() != 7 {
		t.Errorf("Count = %d, want 7", s.Count())
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) after Remove")
	}
	if s.Count() != 6 {
		t.Errorf("Count after Remove = %d, want 6", s.Count())
	}
}

func TestNewFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 1000} {
		s := NewFull(n)
		if s.Count() != n {
			t.Errorf("NewFull(%d).Count() = %d", n, s.Count())
		}
		if n > 0 && !s.Contains(n-1) {
			t.Errorf("NewFull(%d) missing last bit", n)
		}
		if s.Contains(n) {
			t.Errorf("NewFull(%d) contains bit %d", n, n)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromIDs(200, 1, 5, 100, 150)
	b := FromIDs(200, 5, 100, 199)

	and := And(a, b)
	if got := and.IDs(); len(got) != 2 || got[0] != 5 || got[1] != 100 {
		t.Errorf("And = %v, want [5 100]", got)
	}
	diff := AndNot(a, b)
	if got := diff.IDs(); len(got) != 2 || got[0] != 1 || got[1] != 150 {
		t.Errorf("AndNot = %v, want [1 150]", got)
	}
	if !Intersects(a, b) {
		t.Error("Intersects(a,b) = false")
	}
	if Intersects(a, FromIDs(200, 2, 3)) {
		t.Error("Intersects with disjoint = true")
	}

	u := a.Clone()
	u.OrWith(b)
	if u.Count() != 5 {
		t.Errorf("union count = %d, want 5", u.Count())
	}
	if !and.IsSubset(a) || !and.IsSubset(b) {
		t.Error("intersection not subset of operands")
	}
	if a.IsSubset(b) {
		t.Error("a.IsSubset(b) should be false")
	}
}

func TestEqualPaddingInsensitive(t *testing.T) {
	a := FromIDs(64, 3)
	b := FromIDs(256, 3)
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("Equal should ignore trailing zero words")
	}
	if a.Key() != b.Key() {
		t.Error("Key should ignore trailing zero words")
	}
	b.Add(200)
	if a.Equal(b) {
		t.Error("Equal after diverging")
	}
	if a.Key() == b.Key() {
		t.Error("Key collision for different sets")
	}
}

func TestForEachOrder(t *testing.T) {
	ids := []int{0, 7, 63, 64, 128, 500}
	s := FromIDs(512, ids...)
	var got []int
	s.ForEach(func(id int) { got = append(got, id) })
	if len(got) != len(ids) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(ids))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Errorf("ForEach[%d] = %d, want %d", i, got[i], ids[i])
		}
	}
}

func TestCopyInto(t *testing.T) {
	src := FromIDs(128, 1, 70)
	dst := Set(nil)
	dst = src.CopyInto(dst)
	if !dst.Equal(src) {
		t.Error("CopyInto lost bits")
	}
	dst.Add(2)
	if src.Contains(2) {
		t.Error("CopyInto aliases source")
	}
	// Reuse path: shrink and refill.
	small := FromIDs(64, 9)
	dst = small.CopyInto(dst)
	if !dst.Equal(small) {
		t.Errorf("CopyInto reuse: got %v, want %v", dst, small)
	}
}

// randomSet draws a set of capacity n with each bit set with probability p.
func randomSet(r *rand.Rand, n int, p float64) Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			s.Add(i)
		}
	}
	return s
}

func TestQuickDeMorgan(t *testing.T) {
	// (a − b) ∪ (a ∩ b) == a, and the two parts are disjoint.
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(300)
		a := randomSet(r, n, 0.4)
		b := randomSet(r, n, 0.4)
		diff := AndNot(a, b)
		inter := And(a, b)
		if Intersects(diff, inter) {
			return false
		}
		u := diff.Clone()
		u.OrWith(inter)
		return u.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCountConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(300)
		a := randomSet(rr, n, 0.3)
		b := randomSet(rr, n, 0.3)
		// |a| = |a−b| + |a∩b|
		return a.Count() == AndNot(a, b).Count()+And(a, b).Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyInjective(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(300)
		a := randomSet(rr, n, 0.3)
		b := randomSet(rr, n, 0.3)
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAndWith(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	a := randomSet(r, 1024, 0.5)
	c := randomSet(r, 1024, 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.AndWith(c)
	}
}

// TestQuickHashAndAppendKey checks the no-alloc key/hash variants against
// set equality: equal sets (padding-insensitively) agree on Hash and
// AppendKey, AppendKey matches Key, and neither allocates on reuse.
func TestQuickHashAndAppendKey(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(300)
		a := randomSet(rr, n, 0.3)
		b := randomSet(rr, n, 0.3)
		aPad := append(a.Clone(), 0, 0)
		if a.Hash() != aPad.Hash() || a.Key() != aPad.Key() {
			return false
		}
		if string(a.AppendKey(nil)) != a.Key() {
			return false
		}
		if a.Equal(b) != (a.Hash() == b.Hash() && a.Key() == b.Key()) {
			// Hash collisions between unequal sets are possible in theory;
			// with these mixers and 300-bit random sets they would indicate
			// a broken trim/canonicalization, so treat them as failure.
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAppendKeyDoesNotAllocateOnReuse(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	s := randomSet(r, 300, 0.4)
	buf := make([]byte, 0, 64*8)
	var ids []int
	allocs := testing.AllocsPerRun(100, func() {
		buf = s.AppendKey(buf[:0])
		ids = s.AppendIDs(ids[:0])
		_ = s.Hash()
	})
	if allocs != 0 {
		t.Errorf("AppendKey/AppendIDs/Hash allocate %.1f allocs/op on reuse, want 0", allocs)
	}
}
