// Package catalog describes schemas: relations, their columns, and the
// foreign-key topology that workload generators use to draw join subgraphs.
package catalog

import "fmt"

// Column is a named attribute of a relation. All attributes are 64-bit
// integers; string-typed source data is dictionary-encoded by generators
// before it reaches storage (late materialization keeps the engine integer-
// only, as in the paper's columnar prototype).
type Column struct {
	Name string
}

// Relation is a named table schema.
type Relation struct {
	Name    string
	Columns []Column

	colIdx map[string]int
}

// NewRelation builds a Relation from column names.
func NewRelation(name string, cols ...string) *Relation {
	r := &Relation{Name: name, colIdx: make(map[string]int, len(cols))}
	for i, c := range cols {
		r.Columns = append(r.Columns, Column{Name: c})
		r.colIdx[c] = i
	}
	return r
}

// ColIndex returns the position of column name, or -1 if absent.
func (r *Relation) ColIndex(name string) int {
	if i, ok := r.colIdx[name]; ok {
		return i
	}
	return -1
}

// HasColumn reports whether the relation has the named column.
func (r *Relation) HasColumn(name string) bool { return r.ColIndex(name) >= 0 }

// FKEdge declares that child.childCol references parent.parentCol. Workload
// generators walk these edges to form join subgraphs (snowflake chains etc.).
type FKEdge struct {
	Child     string
	ChildCol  string
	Parent    string
	ParentCol string
}

// Schema is a set of relations plus their foreign-key topology.
type Schema struct {
	Relations []*Relation
	Edges     []FKEdge

	relIdx map[string]int
}

// NewSchema builds a schema over the given relations.
func NewSchema(rels ...*Relation) *Schema {
	s := &Schema{relIdx: make(map[string]int, len(rels))}
	for _, r := range rels {
		s.AddRelation(r)
	}
	return s
}

// AddRelation registers r; it panics on duplicate names.
func (s *Schema) AddRelation(r *Relation) {
	if _, dup := s.relIdx[r.Name]; dup {
		panic(fmt.Sprintf("catalog: duplicate relation %q", r.Name))
	}
	s.relIdx[r.Name] = len(s.Relations)
	s.Relations = append(s.Relations, r)
}

// AddFK registers a foreign-key edge; it panics if a referenced relation or
// column does not exist.
func (s *Schema) AddFK(child, childCol, parent, parentCol string) {
	c := s.Relation(child)
	p := s.Relation(parent)
	if c == nil || p == nil {
		panic(fmt.Sprintf("catalog: FK %s.%s -> %s.%s references unknown relation", child, childCol, parent, parentCol))
	}
	if !c.HasColumn(childCol) || !p.HasColumn(parentCol) {
		panic(fmt.Sprintf("catalog: FK %s.%s -> %s.%s references unknown column", child, childCol, parent, parentCol))
	}
	s.Edges = append(s.Edges, FKEdge{Child: child, ChildCol: childCol, Parent: parent, ParentCol: parentCol})
}

// Relation returns the named relation, or nil.
func (s *Schema) Relation(name string) *Relation {
	if i, ok := s.relIdx[name]; ok {
		return s.Relations[i]
	}
	return nil
}

// EdgesOf returns every FK edge that touches relation name.
func (s *Schema) EdgesOf(name string) []FKEdge {
	var out []FKEdge
	for _, e := range s.Edges {
		if e.Child == name || e.Parent == name {
			out = append(out, e)
		}
	}
	return out
}
