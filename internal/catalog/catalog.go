// Package catalog describes schemas: relations, their columns (with logical
// types, nullability, and per-column string dictionaries), and the
// foreign-key topology that workload generators use to draw join subgraphs.
package catalog

import (
	"fmt"

	"github.com/roulette-db/roulette/internal/value"
)

// Column is a named attribute of a relation. Physically every attribute is
// a 64-bit integer (late materialization keeps the engine integer-only, as
// in the paper's columnar prototype); the logical type here says how to
// interpret those integers. String columns hold dense codes into Dict, and
// nullable columns use value.NullCode as the in-band NULL sentinel.
type Column struct {
	Name     string
	Type     value.ColType // Int64 (zero value) or String
	Nullable bool
	// Dict is the column's dictionary; non-nil exactly when Type is String.
	// Cross-relation string joins require both columns to share the SAME
	// *Dict (after a loader-time unification pass), so codes compare
	// directly inside the STeM kernels.
	Dict *value.Dict
}

// Relation is a named table schema.
type Relation struct {
	Name    string
	Columns []Column

	colIdx map[string]int
}

// NewRelation builds a Relation from column names; every column is a plain
// non-nullable int64 attribute. Use NewTypedRelation for string or nullable
// columns.
func NewRelation(name string, cols ...string) *Relation {
	r := &Relation{Name: name, colIdx: make(map[string]int, len(cols))}
	for i, c := range cols {
		r.Columns = append(r.Columns, Column{Name: c})
		r.colIdx[c] = i
	}
	return r
}

// NewTypedRelation builds a Relation from full column descriptors. String
// columns without a dictionary get a fresh one, so the zero-value Column
// descriptor {Name, Type: value.String} is valid; pass an existing Dict to
// share it across relations (required for cross-relation string joins).
func NewTypedRelation(name string, cols ...Column) *Relation {
	r := &Relation{Name: name, colIdx: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Type == value.String && c.Dict == nil {
			c.Dict = value.NewDict()
		}
		r.Columns = append(r.Columns, c)
		r.colIdx[c.Name] = i
	}
	return r
}

// Column returns a pointer to the named column's descriptor, or nil if the
// relation has no such column. The pointer aliases the relation's schema, so
// loaders can install or swap dictionaries in place.
func (r *Relation) Column(name string) *Column {
	i := r.ColIndex(name)
	if i < 0 {
		return nil
	}
	return &r.Columns[i]
}

// ColIndex returns the position of column name, or -1 if absent.
func (r *Relation) ColIndex(name string) int {
	if i, ok := r.colIdx[name]; ok {
		return i
	}
	return -1
}

// HasColumn reports whether the relation has the named column.
func (r *Relation) HasColumn(name string) bool { return r.ColIndex(name) >= 0 }

// FKEdge declares that child.childCol references parent.parentCol. Workload
// generators walk these edges to form join subgraphs (snowflake chains etc.).
type FKEdge struct {
	Child     string
	ChildCol  string
	Parent    string
	ParentCol string
}

// Schema is a set of relations plus their foreign-key topology.
type Schema struct {
	Relations []*Relation
	Edges     []FKEdge

	relIdx map[string]int
}

// NewSchema builds a schema over the given relations. The variadic list is
// static setup code, so duplicates are a programmer-error invariant and
// still panic; use AddRelation directly to handle duplicates gracefully.
func NewSchema(rels ...*Relation) *Schema {
	s := &Schema{relIdx: make(map[string]int, len(rels))}
	for _, r := range rels {
		s.MustAddRelation(r)
	}
	return s
}

// AddRelation registers r; duplicate names are reported, not panicked
// (schemas are built from external inputs, e.g. CSV headers).
func (s *Schema) AddRelation(r *Relation) error {
	if _, dup := s.relIdx[r.Name]; dup {
		return fmt.Errorf("catalog: duplicate relation %q", r.Name)
	}
	s.relIdx[r.Name] = len(s.Relations)
	s.Relations = append(s.Relations, r)
	return nil
}

// MustAddRelation is AddRelation, panicking on error (static schemas).
func (s *Schema) MustAddRelation(r *Relation) {
	if err := s.AddRelation(r); err != nil {
		panic(err)
	}
}

// AddFK registers a foreign-key edge; it reports an error if a referenced
// relation or column does not exist.
func (s *Schema) AddFK(child, childCol, parent, parentCol string) error {
	c := s.Relation(child)
	p := s.Relation(parent)
	if c == nil || p == nil {
		return fmt.Errorf("catalog: FK %s.%s -> %s.%s references unknown relation", child, childCol, parent, parentCol)
	}
	if !c.HasColumn(childCol) || !p.HasColumn(parentCol) {
		return fmt.Errorf("catalog: FK %s.%s -> %s.%s references unknown column", child, childCol, parent, parentCol)
	}
	s.Edges = append(s.Edges, FKEdge{Child: child, ChildCol: childCol, Parent: parent, ParentCol: parentCol})
	return nil
}

// MustAddFK is AddFK, panicking on error (static generator schemas).
func (s *Schema) MustAddFK(child, childCol, parent, parentCol string) {
	if err := s.AddFK(child, childCol, parent, parentCol); err != nil {
		panic(err)
	}
}

// Relation returns the named relation, or nil.
func (s *Schema) Relation(name string) *Relation {
	if i, ok := s.relIdx[name]; ok {
		return s.Relations[i]
	}
	return nil
}

// EdgesOf returns every FK edge that touches relation name.
func (s *Schema) EdgesOf(name string) []FKEdge {
	var out []FKEdge
	for _, e := range s.Edges {
		if e.Child == name || e.Parent == name {
			out = append(out, e)
		}
	}
	return out
}
