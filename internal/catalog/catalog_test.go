package catalog

import "testing"

func TestRelationColumns(t *testing.T) {
	r := NewRelation("t", "a", "b", "c")
	if r.ColIndex("b") != 1 {
		t.Errorf("ColIndex(b) = %d", r.ColIndex("b"))
	}
	if r.ColIndex("z") != -1 {
		t.Errorf("ColIndex(z) = %d", r.ColIndex("z"))
	}
	if !r.HasColumn("c") || r.HasColumn("z") {
		t.Error("HasColumn wrong")
	}
	if len(r.Columns) != 3 || r.Columns[2].Name != "c" {
		t.Errorf("Columns = %+v", r.Columns)
	}
}

func TestSchemaRelations(t *testing.T) {
	a := NewRelation("a", "k")
	b := NewRelation("b", "k", "fk")
	s := NewSchema(a, b)
	if s.Relation("a") != a || s.Relation("b") != b {
		t.Error("Relation lookup broken")
	}
	if s.Relation("c") != nil {
		t.Error("phantom relation")
	}
	c := NewRelation("c", "x")
	if err := s.AddRelation(c); err != nil {
		t.Fatal(err)
	}
	if s.Relation("c") != c {
		t.Error("AddRelation lookup broken")
	}
	if err := s.AddRelation(NewRelation("a", "k")); err == nil {
		t.Error("duplicate relation should be an error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustAddRelation on a duplicate should panic")
			}
		}()
		s.MustAddRelation(NewRelation("a", "k"))
	}()
}

func TestSchemaFKs(t *testing.T) {
	a := NewRelation("a", "k")
	b := NewRelation("b", "k", "fk")
	s := NewSchema(a, b)
	if err := s.AddFK("b", "fk", "a", "k"); err != nil {
		t.Fatal(err)
	}
	if len(s.Edges) != 1 {
		t.Fatalf("edges = %d", len(s.Edges))
	}
	if got := s.EdgesOf("a"); len(got) != 1 || got[0].Child != "b" {
		t.Errorf("EdgesOf(a) = %+v", got)
	}
	if got := s.EdgesOf("zzz"); len(got) != 0 {
		t.Errorf("EdgesOf(zzz) = %+v", got)
	}

	for _, bad := range []func() error{
		func() error { return s.AddFK("zzz", "fk", "a", "k") },
		func() error { return s.AddFK("b", "nope", "a", "k") },
		func() error { return s.AddFK("b", "fk", "a", "nope") },
	} {
		if bad() == nil {
			t.Error("bad FK should be an error")
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustAddFK on a bad edge should panic")
			}
		}()
		s.MustAddFK("zzz", "fk", "a", "k")
	}()
}
