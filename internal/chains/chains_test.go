package chains

import (
	"testing"

	"github.com/roulette-db/roulette/internal/query"
)

func TestBuildShapes(t *testing.T) {
	w, err := Build(4, 9, 500, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Depth != 2 {
		t.Fatalf("depth = %d, want 2", w.Depth)
	}
	// Low-rate chains smaller than base; high-rate larger.
	for c := 0; c < 4; c++ {
		n := w.DB.MustTable(chainRel(c, 1)).NumRows()
		if w.LowRate[c] && n >= 500 {
			t.Errorf("chain %d low-rate size %d >= base", c, n)
		}
		if !w.LowRate[c] && n <= 500 {
			t.Errorf("chain %d high-rate size %d <= base", c, n)
		}
	}
	if w.DB.MustTable("store_sales").NumRows() != 2000 {
		t.Error("fact size wrong")
	}
}

func TestBuildRejectsBadShape(t *testing.T) {
	if _, err := Build(4, 10, 100, 100, 1); err == nil {
		t.Error("R-1 not divisible by C accepted")
	}
}

func TestQueriesSpanHalfTheGraph(t *testing.T) {
	w, err := Build(8, 17, 300, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	qs := w.Queries(64, 3)
	if _, err := query.Compile(qs); err != nil {
		t.Fatalf("chain batch does not compile: %v", err)
	}
	for _, q := range qs {
		// Half the chains at depth 2 plus fact: 4*2+1 = 9 relations.
		if len(q.Rels) != 9 {
			t.Fatalf("%s: %d relations, want 9", q.Tag, len(q.Rels))
		}
		nLow, nHigh := 0, 0
		seen := map[string]bool{}
		for _, r := range q.Rels[1:] {
			seen[r.Table] = true
		}
		for c := 0; c < w.Chains; c++ {
			if seen[chainRel(c, 1)] {
				if w.LowRate[c] {
					nLow++
				} else {
					nHigh++
				}
				// Full depth required.
				if !seen[chainRel(c, 2)] {
					t.Fatalf("%s: chain %d not at full depth", q.Tag, c)
				}
			}
		}
		if nLow != 2 || nHigh != 2 {
			t.Errorf("%s: low/high chains = %d/%d, want 2/2", q.Tag, nLow, nHigh)
		}
	}
}

func TestFigure15Shapes(t *testing.T) {
	// All (C, R) pairs of Fig. 16 must build.
	for _, cfg := range [][2]int{{4, 9}, {4, 17}, {4, 33}, {8, 9}, {8, 17}, {8, 33}, {16, 17}, {16, 33}} {
		if _, err := Build(cfg[0], cfg[1], 100, 200, 1); err != nil {
			t.Errorf("Build(%d,%d): %v", cfg[0], cfg[1], err)
		}
	}
}
