// Package cost implements RouLette's linear operator cost model
// c(n_in, n_out) = κ·n_in + λ·n_out (§4.3 "Proportionality") and the
// regression-based tuner used to fit κ and λ to measured operator times.
package cost

// Class identifies an operator class with its own (κ, λ) pair.
type Class int

// Operator classes tuned in the paper.
const (
	Selection Class = iota // grouped filters and semi-join prune filters
	RoutingSelection
	Join // STeM probes
	numClasses
)

// Model holds per-class κ/λ constants. The zero value is unusable; use
// Default or Tune.
type Model struct {
	Kappa  [numClasses]float64
	Lambda [numClasses]float64
}

// Default returns the paper's tuned constants (§4.3): selections 9.32/4.62,
// routing selections 3.60/0.92, joins 38.57/43.29 (nanoseconds per tuple).
func Default() *Model {
	m := &Model{}
	m.Kappa[Selection], m.Lambda[Selection] = 9.32, 4.62
	m.Kappa[RoutingSelection], m.Lambda[RoutingSelection] = 3.60, 0.92
	m.Kappa[Join], m.Lambda[Join] = 38.57, 43.29
	return m
}

// Cost estimates the time of one operator invocation from its input and
// output cardinalities.
func (m *Model) Cost(c Class, nIn, nOut float64) float64 {
	return m.Kappa[c]*nIn + m.Lambda[c]*nOut
}

// Sample is one measured operator execution used for tuning.
type Sample struct {
	NIn, NOut float64
	Nanos     float64
}

// Tune fits κ and λ for one class with ordinary least squares over the
// two-variable linear model nanos ≈ κ·n_in + λ·n_out (no intercept, as in
// the paper). It is a no-op when the samples are degenerate (singular
// normal matrix).
func (m *Model) Tune(c Class, samples []Sample) {
	// Normal equations for y = κ·a + λ·b:
	//   [Σaa Σab][κ]   [Σay]
	//   [Σab Σbb][λ] = [Σby]
	var saa, sab, sbb, say, sby float64
	for _, s := range samples {
		saa += s.NIn * s.NIn
		sab += s.NIn * s.NOut
		sbb += s.NOut * s.NOut
		say += s.NIn * s.Nanos
		sby += s.NOut * s.Nanos
	}
	det := saa*sbb - sab*sab
	if det == 0 {
		return
	}
	m.Kappa[c] = (say*sbb - sby*sab) / det
	m.Lambda[c] = (sby*saa - say*sab) / det
}
