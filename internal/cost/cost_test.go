package cost

import (
	"math"
	"math/rand"
	"testing"
)

func TestDefaultMatchesPaper(t *testing.T) {
	m := Default()
	cases := []struct {
		c      Class
		ka, la float64
	}{
		{Selection, 9.32, 4.62},
		{RoutingSelection, 3.60, 0.92},
		{Join, 38.57, 43.29},
	}
	for _, c := range cases {
		if m.Kappa[c.c] != c.ka || m.Lambda[c.c] != c.la {
			t.Errorf("class %d: got %v/%v, want %v/%v", c.c, m.Kappa[c.c], m.Lambda[c.c], c.ka, c.la)
		}
	}
	if got := m.Cost(Join, 10, 5); math.Abs(got-(38.57*10+43.29*5)) > 1e-9 {
		t.Errorf("Cost = %v", got)
	}
}

func TestCostLinearInInput(t *testing.T) {
	m := Default()
	// Proportionality (§4.3): doubling both sizes doubles the cost.
	c1 := m.Cost(Selection, 100, 40)
	c2 := m.Cost(Selection, 200, 80)
	if math.Abs(c2-2*c1) > 1e-9 {
		t.Errorf("cost not proportional: %v vs %v", c1, c2)
	}
}

func TestTuneRecoversKnownModel(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	trueK, trueL := 17.5, 3.25
	var samples []Sample
	for i := 0; i < 200; i++ {
		in := float64(1 + r.Intn(2000))
		out := in * r.Float64()
		noise := r.NormFloat64() * 2
		samples = append(samples, Sample{NIn: in, NOut: out, Nanos: trueK*in + trueL*out + noise})
	}
	m := Default()
	m.Tune(Join, samples)
	if math.Abs(m.Kappa[Join]-trueK) > 0.1 || math.Abs(m.Lambda[Join]-trueL) > 0.1 {
		t.Errorf("Tune got κ=%v λ=%v, want %v/%v", m.Kappa[Join], m.Lambda[Join], trueK, trueL)
	}
}

func TestTuneDegenerateIsNoop(t *testing.T) {
	m := Default()
	k, l := m.Kappa[Selection], m.Lambda[Selection]
	m.Tune(Selection, nil)
	if m.Kappa[Selection] != k || m.Lambda[Selection] != l {
		t.Error("Tune with no samples changed the model")
	}
	// All-identical samples are singular too (a and b proportional).
	m.Tune(Selection, []Sample{{10, 10, 5}, {20, 20, 10}})
	if m.Kappa[Selection] != k || m.Lambda[Selection] != l {
		t.Error("Tune with collinear samples changed the model")
	}
}
