package engine

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/faults"
	"github.com/roulette-db/roulette/internal/metrics"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/stem"
	"github.com/roulette-db/roulette/internal/storage"
)

// checkSurvivors asserts the chaos invariant: every query the session
// reports as completed matches the oracle exactly, and every uncompleted
// query carries an explanation.
func checkSurvivors(t *testing.T, res *Results, db *storage.Database, qs []*query.Query) (completed int) {
	t.Helper()
	if len(res.Status) != len(qs) {
		t.Fatalf("status entries = %d, want %d", len(res.Status), len(qs))
	}
	for qid, st := range res.Status {
		if st.Completed {
			completed++
			if want := oracleCount(db, qs[qid]); res.Counts[qid] != want {
				t.Errorf("completed query %d: count = %d, oracle = %d", qid, res.Counts[qid], want)
			}
			if st.Err != nil {
				t.Errorf("completed query %d carries error %v", qid, st.Err)
			}
		} else if st.Err == nil {
			t.Errorf("aborted query %d has no error", qid)
		}
	}
	return completed
}

func TestChaosInjectedPanicsIsolateToEpisodes(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	db := starDB(rng, 500, 40)
	qs := starQueries(rng, 12)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		inj := faults.New(faults.Config{Seed: 7, PanicEvery: 6})
		opt := exec.DefaultOptions()
		opt.VectorSize = 32
		opt.Hooks = inj.Hooks()
		s, err := NewSession(b, db, Config{Exec: opt, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		ring := metrics.NewRing(1 << 12)
		s.cfg.Trace = ring
		res, err := s.Run()
		if err != nil {
			t.Fatalf("workers=%d: a faulted session must not error: %v", workers, err)
		}
		if inj.Panics() == 0 {
			t.Fatalf("workers=%d: no panics injected (rate too low for workload?)", workers)
		}
		if int64(len(res.Faults)) < inj.Panics() {
			t.Errorf("workers=%d: %d faults recorded, %d panics injected", workers, len(res.Faults), inj.Panics())
		}
		if !res.Partial {
			t.Errorf("workers=%d: faulted session should report partial results", workers)
		}
		for _, f := range res.Faults {
			if f.Kind != FaultPanic {
				t.Errorf("workers=%d: fault kind = %v, want panic", workers, f.Kind)
			}
			if _, ok := f.Panic.(faults.InjectedPanic); !ok {
				t.Errorf("workers=%d: recovered value %v (%T), want InjectedPanic", workers, f.Panic, f.Panic)
			}
			if len(f.Queries) == 0 {
				t.Errorf("workers=%d: fault with no affected queries", workers)
			}
			if f.NumVIDs == 0 {
				t.Errorf("workers=%d: fault quarantined an empty vector", workers)
			}
		}
		completed := checkSurvivors(t, res, db, qs)
		if completed == len(qs) {
			t.Errorf("workers=%d: every query completed despite %d panics", workers, inj.Panics())
		}
		if ring.Faults() != int64(len(res.Faults)) {
			t.Errorf("workers=%d: trace ring counted %d faults, session %d", workers, ring.Faults(), len(res.Faults))
		}
		t.Logf("workers=%d: %d/%d queries survived %d injected panics", workers, completed, len(qs), inj.Panics())
	}
}

func TestChaosInsertFailuresIsolateToEpisodes(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	db := starDB(rng, 400, 30)
	qs := starQueries(rng, 10)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(faults.Config{Seed: 9, InsertFailEvery: 7})
	opt := exec.DefaultOptions()
	opt.VectorSize = 32
	opt.Hooks = inj.Hooks()
	s, err := NewSession(b, db, Config{Exec: opt, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if inj.InsertFails() == 0 {
		t.Fatal("no insertion failures injected")
	}
	for _, f := range res.Faults {
		if f.Kind != FaultInsert {
			t.Errorf("fault kind = %v, want insert", f.Kind)
		}
		if f.Err == nil {
			t.Error("insert fault without underlying error")
		}
	}
	completed := checkSurvivors(t, res, db, qs)
	t.Logf("%d/%d queries survived %d injected insertion failures", completed, len(qs), inj.InsertFails())
}

func TestChaosMixedFaultsUnderRace(t *testing.T) {
	// The -race CI run drives this with 4 workers, panics and insertion
	// failures at once: surviving queries must still match the oracle.
	rng := rand.New(rand.NewSource(71))
	db := starDB(rng, 600, 40)
	qs := starQueries(rng, 16)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(faults.Config{Seed: 13, PanicEvery: 9, InsertFailEvery: 11})
	opt := exec.DefaultOptions()
	opt.VectorSize = 48
	opt.Hooks = inj.Hooks()
	s, err := NewSession(b, db, Config{Exec: opt, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if inj.Panics()+inj.InsertFails() == 0 {
		t.Fatal("no faults injected")
	}
	completed := checkSurvivors(t, res, db, qs)
	t.Logf("%d/%d queries survived %d panics + %d insert failures",
		completed, len(qs), inj.Panics(), inj.InsertFails())
}

// islandsDB builds two disjoint join islands — factA⋈dimA and factB⋈dimB —
// so a fault on one island's episodes cannot touch the other's queries.
func islandsDB(rng *rand.Rand, factRows, dimRows int) *storage.Database {
	sch := catalog.NewSchema()
	db := storage.NewDatabase(sch)
	for _, island := range []string{"a", "b"} {
		fact := catalog.NewRelation("fact_"+island, "fk", "v")
		dim := catalog.NewRelation("dim_"+island, "k")
		sch.MustAddRelation(fact)
		sch.MustAddRelation(dim)
		sch.MustAddFK("fact_"+island, "fk", "dim_"+island, "k")
		ft := storage.NewTable(fact, factRows)
		for i := 0; i < factRows; i++ {
			ft.Col("fk")[i] = int64(rng.Intn(dimRows))
			ft.Col("v")[i] = int64(rng.Intn(100))
		}
		db.Put(ft)
		dt := storage.NewTable(dim, dimRows)
		for i := 0; i < dimRows; i++ {
			dt.Col("k")[i] = int64(i)
		}
		db.Put(dt)
	}
	return db
}

func islandQueries(rng *rand.Rand, perIsland int) []*query.Query {
	var qs []*query.Query
	for _, island := range []string{"a", "b"} {
		for i := 0; i < perIsland; i++ {
			lo := int64(rng.Intn(60))
			qs = append(qs, &query.Query{
				Rels:    []query.RelRef{{Table: "fact_" + island}, {Table: "dim_" + island}},
				Joins:   []query.Join{{LeftAlias: "fact_" + island, LeftCol: "fk", RightAlias: "dim_" + island, RightCol: "k"}},
				Filters: []query.Filter{{Alias: "fact_" + island, Col: "v", Lo: lo, Hi: lo + 30}},
			})
		}
	}
	return qs
}

func TestChaosFaultBlastRadiusIsolation(t *testing.T) {
	// Panics on one island's episodes must fail only that island's queries:
	// every fault's affected set stays within the faulted instance's users,
	// and whenever the faults all land on one island, the other island
	// completes exactly.
	rng := rand.New(rand.NewSource(101))
	db := islandsDB(rng, 800, 40)
	qs := islandQueries(rng, 4)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := faults.Config{Seed: 99, PanicEvery: 30}
	inj := faults.New(cfg)
	opt := exec.DefaultOptions()
	opt.VectorSize = 32
	opt.Hooks = inj.Hooks()
	s, err := NewSession(b, db, Config{Exec: opt}) // 1 worker: deterministic
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if inj.Panics() == 0 {
		t.Fatal("no panics injected")
	}
	usesTable := func(qid int, table string) bool {
		for _, r := range qs[qid].Rels {
			if r.Table == table {
				return true
			}
		}
		return false
	}
	for _, f := range res.Faults {
		table := b.Insts[f.Inst].Table
		for _, qid := range f.Queries {
			if !usesTable(qid, table) {
				t.Errorf("fault on %s affected query %d, which never touches that table", table, qid)
			}
		}
	}
	completed := checkSurvivors(t, res, db, qs)
	if completed == 0 {
		t.Errorf("no queries survived %d panics across two disjoint islands", inj.Panics())
	}
	t.Logf("%d/%d queries survived %d injected panics (%d faults recorded)",
		completed, len(qs), inj.Panics(), len(res.Faults))
}

func TestRunContextCancelReturnsPartialResults(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	db := starDB(rng, 4000, 50)
	qs := starQueries(rng, 8)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var episodes atomic.Int64
	opt := exec.DefaultOptions()
	opt.VectorSize = 16
	opt.CollectRows = false
	opt.Hooks.EpisodeStart = func(query.InstID, stem.Slot) {
		if episodes.Add(1) == 5 {
			cancel()
		}
	}
	s, err := NewSession(b, db, Config{Exec: opt, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	res, err := s.RunContext(ctx)
	if err != nil {
		t.Fatalf("cancellation must not be an error: %v", err)
	}
	if !res.Partial {
		t.Error("cancelled mid-run: results should be partial")
	}
	if res.Episodes >= int64(4000/16) {
		t.Errorf("ran %d episodes after cancelling at 5 (fact alone has %d vectors)", res.Episodes, 4000/16)
	}
	aborted := 0
	for qid, st := range res.Status {
		if st.Completed {
			continue
		}
		aborted++
		if !errors.Is(st.Err, context.Canceled) {
			t.Errorf("query %d: err = %v, want context.Canceled", qid, st.Err)
		}
	}
	if aborted == 0 {
		t.Error("no queries aborted by cancellation")
	}
	// Workers must have exited; allow the runtime a moment to reap them.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutines after run = %d, before = %d (leak?)", g, before)
	}
}

func TestSessionDeadlineCancelsRun(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	db := starDB(rng, 2000, 40)
	qs := starQueries(rng, 6)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(faults.Config{Seed: 3, SlowEvery: 1, SlowDelay: 2 * time.Millisecond})
	opt := exec.DefaultOptions()
	opt.VectorSize = 16
	opt.CollectRows = false
	opt.Hooks = inj.Hooks()
	s, err := NewSession(b, db, Config{Exec: opt, SessionDeadline: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("deadline run should be partial (every episode sleeps 2ms, >125 episodes pending)")
	}
	for qid, st := range res.Status {
		if !st.Completed && !errors.Is(st.Err, context.DeadlineExceeded) {
			t.Errorf("query %d: err = %v, want context.DeadlineExceeded", qid, st.Err)
		}
	}
}

func TestEpisodeWatchdogRecordsStall(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	db := starDB(rng, 1000, 30)
	qs := starQueries(rng, 6)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	// Every 8th episode sleeps far past the watchdog.
	inj := faults.New(faults.Config{Seed: 11, SlowEvery: 8, SlowDelay: 100 * time.Millisecond})
	opt := exec.DefaultOptions()
	opt.VectorSize = 16
	opt.CollectRows = false
	opt.Hooks = inj.Hooks()
	s, err := NewSession(b, db, Config{Exec: opt, EpisodeWatchdog: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if inj.Slows() == 0 {
		t.Fatal("no slow episodes injected")
	}
	stalls := 0
	for _, f := range res.Faults {
		if f.Kind == FaultStall {
			stalls++
		}
	}
	if stalls == 0 {
		t.Fatal("watchdog recorded no stall despite 100ms episodes under a 10ms bound")
	}
	if !res.Partial {
		t.Error("a stalled session should report partial results")
	}
}

func TestRunTwiceReturnsError(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	db := starDB(rng, 100, 10)
	qs := starQueries(rng, 3)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(b, db, Config{Exec: exec.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("second Run must fail instead of returning bogus zero results")
	}
}

func TestForcedAdmissionFiresWhenTriggerIdle(t *testing.T) {
	// Satellite: a pending AdmitEvent whose trigger instance goes idle
	// (AfterVectors beyond what the scan will ever deliver for the
	// initially admitted queries) must still force-fire, and the late
	// queries must run to completion with exact results.
	rng := rand.New(rand.NewSource(97))
	db := starDB(rng, 300, 30)
	qs := starQueries(rng, 6)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	factInst, _ := b.InstOfAlias(0, "fact")
	opt := exec.DefaultOptions()
	opt.VectorSize = 32
	s, err := NewSession(b, db, Config{Exec: opt, AdmitAt: []AdmitEvent{
		{AfterVectors: 1 << 40, Inst: factInst, QIDs: []int{4, 5}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatal("forced admission should complete every query")
	}
	for qid, q := range qs {
		if !res.Status[qid].Completed {
			t.Errorf("query %d not completed", qid)
		}
		if want := oracleCount(db, q); res.Counts[qid] != want {
			t.Errorf("query %d: count = %d, oracle = %d", qid, res.Counts[qid], want)
		}
	}
}
