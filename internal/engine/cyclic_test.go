package engine

import (
	"math/rand"
	"testing"

	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/qat"
	"github.com/roulette-db/roulette/internal/qlearn"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
)

// triangleDB: fact joins d1 and d2, and d1 joins d2 directly (so queries
// can close the triangle). d1/d2 carry a "link" column over the same small
// domain.
func triangleDB(rng *rand.Rand) *storage.Database {
	db := starDB(rng, 250, 25)
	// Reuse the star schema; d1.a and d2.a act as the cycle columns (domain
	// 0..99 with overlap).
	return db
}

// cyclicQueries close the fact-d1-d2 triangle with d1.a = d2.a.
func cyclicQueries(rng *rand.Rand, n int) []*query.Query {
	var qs []*query.Query
	for i := 0; i < n; i++ {
		q := &query.Query{
			Rels: []query.RelRef{{Table: "fact"}, {Table: "d1"}, {Table: "d2"}},
			Joins: []query.Join{
				{LeftAlias: "fact", LeftCol: "fk1", RightAlias: "d1", RightCol: "k"},
				{LeftAlias: "fact", LeftCol: "fk2", RightAlias: "d2", RightCol: "k"},
				{LeftAlias: "d1", LeftCol: "a", RightAlias: "d2", RightCol: "a"},
			},
		}
		if rng.Intn(2) == 0 {
			lo := int64(rng.Intn(60))
			q.Filters = append(q.Filters, query.Filter{Alias: "fact", Col: "v", Lo: lo, Hi: lo + 30})
		}
		qs = append(qs, q)
	}
	return qs
}

func TestCyclicQueriesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	db := triangleDB(rng)
	qs := cyclicQueries(rng, 8)

	for name, mk := range map[string]func(*query.Batch, *exec.Context) policy.Policy{
		"learned": func(*query.Batch, *exec.Context) policy.Policy { return qlearn.New(qlearn.DefaultConfig()) },
		"greedy": func(b *query.Batch, ctx *exec.Context) policy.Policy {
			return policy.NewGreedy(b, ctx.NumSelOps())
		},
		"random": func(*query.Batch, *exec.Context) policy.Policy { return policy.NewRandom(5) },
	} {
		t.Run(name, func(t *testing.T) {
			b, err := query.Compile(qs)
			if err != nil {
				t.Fatal(err)
			}
			if len(b.Residuals) == 0 {
				t.Fatal("no residuals compiled")
			}
			opt := exec.DefaultOptions()
			opt.VectorSize = 64
			opt.CollectRows = false
			ctx, err := exec.NewContext(b, db, opt, nil)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewSession(b, db, Config{Exec: opt, Policy: mk(b, ctx)})
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			for qid, q := range qs {
				if want := oracleCount(db, q); res.Counts[qid] != want {
					t.Errorf("query %d: count %d, oracle %d", qid, res.Counts[qid], want)
				}
			}
		})
	}
}

func TestCyclicProjectionToggles(t *testing.T) {
	// The residual's early endpoint must survive adaptive projections.
	rng := rand.New(rand.NewSource(67))
	db := triangleDB(rng)
	qs := cyclicQueries(rng, 4)
	for _, adaptive := range []bool{true, false} {
		opt := exec.DefaultOptions()
		opt.VectorSize = 32
		opt.AdaptiveProjections = adaptive
		runAndCheck(t, db, qs, Config{Exec: opt})
	}
}

func TestCyclicQatAndMonetAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	db := triangleDB(rng)
	qs := cyclicQueries(rng, 6)
	e := qat.New(db)
	for i, q := range qs {
		got, err := e.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if want := oracleCount(db, q); got != want {
			t.Errorf("qat query %d: %d, oracle %d", i, got, want)
		}
	}
}

func TestCyclicMixedWithTreeQueries(t *testing.T) {
	// Batches mixing cyclic and tree queries share edges; residuals apply
	// only to their owners.
	rng := rand.New(rand.NewSource(73))
	db := triangleDB(rng)
	qs := append(cyclicQueries(rng, 3), starQueries(rng, 5)...)
	opt := exec.DefaultOptions()
	opt.VectorSize = 64
	runAndCheck(t, db, qs, Config{Exec: opt})
}
