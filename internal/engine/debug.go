package engine

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"github.com/roulette-db/roulette/internal/obs"
)

// This file is the session's live introspection surface: the flight-
// recorder plumbing shared by engine.go/stream.go/sched.go, a consistent
// point-in-time DebugSnapshot of the concurrent control plane (scans,
// fences, epochs, GC, tenants, workers), and the stall self-diagnosis
// heuristics behind the watchdog goroutine.

// discardHandler is a no-op slog handler (the stdlib gained
// slog.DiscardHandler after this module's language version).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// DiscardLogger returns a logger that drops everything.
func DiscardLogger() *slog.Logger { return slog.New(discardHandler{}) }

// Recorder exposes the session's flight recorder (nil when the session
// was built without one).
func (s *Session) Recorder() *obs.Recorder { return s.rec }

// recCtl records one control-plane event into the recorder's control
// ring. Nil-safe and allocation-free; call sites pay one branch when no
// recorder is attached.
func (s *Session) recCtl(k obs.Kind, a, b, c, d int64) {
	if s.rec != nil {
		s.rec.Record(s.ctlRing, k, a, b, c, d)
	}
}

// tenantHash is a stable FNV-1a hash of a tenant name, used to tag
// recorder events with a tenant identity without allocating.
func tenantHash(name string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return int64(h)
}

// InstDebug is one instance's control-plane state in a DebugSnapshot.
type InstDebug struct {
	Inst          int     `json:"inst"`
	Table         string  `json:"table"`
	Rank          int     `json:"rank"`
	ActiveQueries []int   `json:"active_queries,omitempty"`
	Delivered     int64   `json:"delivered"`
	Inserted      int64   `json:"inserted"`
	InFlight      int32   `json:"in_flight"`
	Fenced        bool    `json:"fenced"`
	FenceAgeMs    float64 `json:"fence_age_ms,omitempty"`
	QueuedOps     int     `json:"queued_ops,omitempty"`
	StemEntries   int     `json:"stem_entries"`
	StemBytes     int64   `json:"stem_bytes"`
	CompactGen    uint64  `json:"compact_gen"`
}

// WorkerDebug is one worker's open episode in a DebugSnapshot.
type WorkerDebug struct {
	Worker        int     `json:"worker"`
	Inst          int32   `json:"inst"`
	Slot          int64   `json:"slot"`
	AgeMs         float64 `json:"age_ms"`
	ActiveQueries []int   `json:"active_queries,omitempty"`
}

// TenantDebug is one tenant's scheduler state in a DebugSnapshot.
type TenantDebug struct {
	Tenant           string  `json:"tenant"`
	Weight           float64 `json:"weight"`
	VirtualTime      float64 `json:"virtual_time"`
	Live             int     `json:"live"`
	Starved          bool    `json:"starved"`
	EpisodesUnserved int64   `json:"episodes_unserved"`
}

// EpochDebug is the epoch domain's state in a DebugSnapshot.
type EpochDebug struct {
	Current      uint64 `json:"current"`
	Lag          int64  `json:"lag"`
	Pending      int    `json:"pending"`
	OldestWorker int    `json:"oldest_worker"`
	OldestGen    uint64 `json:"oldest_gen"`
	AnyPinned    bool   `json:"any_pinned"`
}

// GCDebug is the concurrent garbage collector's cursor in a DebugSnapshot.
type GCDebug struct {
	Running        bool  `json:"running"`
	Inst           int   `json:"inst"`
	Chunk          int   `json:"chunk"`
	RetiredPending int   `json:"retired_pending"`
	Sheds          int64 `json:"sheds"`
	StarveBoosts   int64 `json:"starve_boosts"`
}

// DebugSnapshot is a consistent point-in-time view of the streaming
// control plane, taken under the session mutex. It is the payload of the
// /debug/roulette/snapshot endpoint.
type DebugSnapshot struct {
	Streaming      bool  `json:"streaming"`
	Closed         bool  `json:"closed"`
	Episodes       int64 `json:"episodes"`
	InFlight       int   `json:"in_flight"`
	LiveQueries    int   `json:"live_queries"`
	FreeQuerySlots int   `json:"free_query_slots"`

	// SlotsAllocated vs Watermark is the publication frontier: allocated
	// minus watermark minus in-flight episodes ≈ 0 in a healthy session.
	SlotsAllocated int64 `json:"slots_allocated"`
	Watermark      int64 `json:"watermark"`

	Epoch   EpochDebug    `json:"epoch"`
	GC      GCDebug       `json:"gc"`
	Insts   []InstDebug   `json:"instances"`
	Workers []WorkerDebug `json:"workers"`
	Tenants []TenantDebug `json:"tenants,omitempty"`
}

// queriesOfWord decodes a bitset word into query IDs offset..offset+63.
func queriesOfWord(w uint64, offset int) []int {
	var out []int
	for b := 0; w != 0; b++ {
		if w&1 != 0 {
			out = append(out, offset+b)
		}
		w >>= 1
	}
	return out
}

// DebugSnapshot captures the session's control-plane state.
func (s *Session) DebugSnapshot() DebugSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now().UnixNano()
	snap := DebugSnapshot{
		Streaming:      s.cfg.Streaming,
		Closed:         s.closed,
		Episodes:       s.episode,
		InFlight:       s.inFlight,
		LiveQueries:    s.admitted.Count(),
		FreeQuerySlots: s.b.Free(),
		SlotsAllocated: s.episode,
		Watermark:      int64(s.ctx.Versions.Watermark()),
		GC: GCDebug{
			Running: s.gc.running, Inst: s.gc.inst, Chunk: s.gc.chunk,
			RetiredPending: s.retired.Count(),
			Sheds:          s.shedCount, StarveBoosts: s.starveBoosts,
		},
	}
	if s.dom != nil {
		w, g, ok := s.dom.OldestPinned()
		snap.Epoch = EpochDebug{
			Current: s.dom.Current(), Lag: s.dom.Lag(),
			Pending: s.dom.Pending(), OldestWorker: w, OldestGen: g, AnyPinned: ok,
		}
	}
	snap.Insts = make([]InstDebug, len(s.scans))
	for i, st := range s.scans {
		d := InstDebug{
			Inst: i, Table: s.b.Insts[i].Table, Rank: st.rank,
			ActiveQueries: st.active.IDs(),
			Delivered:     st.delivered, Inserted: st.inserted,
			InFlight: s.instFlight[i], Fenced: s.instFence[i],
			QueuedOps:   len(s.instOps[i]),
			StemEntries: s.ctx.Stems[i].Len(),
			StemBytes:   s.ctx.Stems[i].EstBytes(),
			CompactGen:  s.ctx.Stems[i].CompactGen(),
		}
		if since := s.instFenceSince[i]; since != 0 {
			d.FenceAgeMs = float64(now-since) / 1e6
		}
		snap.Insts[i] = d
	}
	for id := range s.workerEp {
		we := &s.workerEp[id]
		if !we.open {
			continue
		}
		snap.Workers = append(snap.Workers, WorkerDebug{
			Worker: id, Inst: we.inst, Slot: we.slot,
			AgeMs:         float64(now-we.startNs) / 1e6,
			ActiveQueries: queriesOfWord(we.activeW0, 0),
		})
	}
	for i := range s.tenants {
		ts := &s.tenants[i]
		snap.Tenants = append(snap.Tenants, TenantDebug{
			Tenant: ts.name, Weight: ts.weight, VirtualTime: ts.vtime,
			Live: ts.live, Starved: ts.starved,
			EpisodesUnserved: s.episode - ts.lastService,
		})
	}
	return snap
}

// DiagnoseConfig holds the stall-detection thresholds.
type DiagnoseConfig struct {
	// StuckFence flags an instance whose fence has been up longer than
	// this (fences normally drain within one episode).
	StuckFence time.Duration
	// EpisodeStall flags a worker whose open episode is older than this.
	EpisodeStall time.Duration
	// EpochLagGens flags the epoch domain when deferred reclamations are
	// queued and the oldest pinned worker trails by at least this many
	// generations.
	EpochLagGens int64
	// WatermarkLagSlots flags a publication leak: allocated slots minus
	// the watermark exceeding in-flight episodes by more than this.
	WatermarkLagSlots int64
	// StarveEpisodes flags a tenant with live queries unserved for at
	// least this many episodes.
	StarveEpisodes int64
}

// DefaultDiagnoseConfig returns the watchdog's default thresholds.
func DefaultDiagnoseConfig() DiagnoseConfig {
	return DiagnoseConfig{
		StuckFence:        250 * time.Millisecond,
		EpisodeStall:      time.Second,
		EpochLagGens:      1024,
		WatermarkLagSlots: 4096,
		StarveEpisodes:    4096,
	}
}

// Finding is one stall diagnosis: what is stuck, for how long, and which
// query/instance/worker is responsible. Inst, Worker and Slot are -1 when
// not applicable.
type Finding struct {
	Kind     string  `json:"kind"`
	Severity string  `json:"severity"`
	Inst     int     `json:"inst"`
	Table    string  `json:"table,omitempty"`
	Worker   int     `json:"worker"`
	Slot     int64   `json:"slot"`
	Queries  []int   `json:"queries,omitempty"`
	Tenant   string  `json:"tenant,omitempty"`
	AgeMs    float64 `json:"age_ms,omitempty"`
	Detail   string  `json:"detail"`
}

// Diagnose runs the stall heuristics against the session's current state
// and returns one finding per detected condition. It is cheap (array
// scans under the mutex) and safe to call at any time; the watchdog calls
// it periodically, and tests call it directly with tight thresholds.
func (s *Session) Diagnose(cfg DiagnoseConfig) []Finding {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now().UnixNano()
	var out []Finding

	// Stuck fences: a fence drains when its instance's in-flight count
	// hits zero, so a long-lived fence means some episode on that
	// instance never finished. Name the workers (and their queries) whose
	// open episodes run on the fenced instance — they are the blockers.
	for i := range s.scans {
		if !s.instFence[i] || s.instFenceSince[i] == 0 {
			continue
		}
		age := now - s.instFenceSince[i]
		if age < int64(cfg.StuckFence) {
			continue
		}
		f := Finding{
			Kind: "stuck_fence", Severity: "critical",
			Inst: i, Table: s.b.Insts[i].Table, Worker: -1, Slot: -1,
			AgeMs: float64(age) / 1e6,
		}
		for id := range s.workerEp {
			we := &s.workerEp[id]
			if !we.open || int(we.inst) != i {
				continue
			}
			if f.Worker == -1 {
				f.Worker, f.Slot = id, we.slot
			}
			f.Queries = append(f.Queries, queriesOfWord(we.activeW0, 0)...)
		}
		f.Detail = fmt.Sprintf(
			"fence on instance %d (%s) up %.1fms with %d queued op(s); blocked by worker %d episode slot %d running queries %v",
			i, f.Table, f.AgeMs, len(s.instOps[i]), f.Worker, f.Slot, f.Queries)
		out = append(out, f)
	}

	// Stalled episodes: a worker's open episode outliving the threshold.
	for id := range s.workerEp {
		we := &s.workerEp[id]
		if !we.open {
			continue
		}
		age := now - we.startNs
		if age < int64(cfg.EpisodeStall) {
			continue
		}
		qs := queriesOfWord(we.activeW0, 0)
		out = append(out, Finding{
			Kind: "stalled_episode", Severity: "critical",
			Inst: int(we.inst), Table: s.b.Insts[we.inst].Table,
			Worker: id, Slot: we.slot, Queries: qs,
			AgeMs: float64(age) / 1e6,
			Detail: fmt.Sprintf(
				"worker %d episode slot %d on instance %d (%s) running %.1fms over queries %v",
				id, we.slot, we.inst, s.b.Insts[we.inst].Table, float64(age)/1e6, qs),
		})
	}

	// Epoch lag: deferred reclamations cannot release while the oldest
	// pinned worker trails far behind the current generation.
	if s.dom != nil && s.dom.Pending() > 0 {
		if lag := s.dom.Lag(); lag >= cfg.EpochLagGens && cfg.EpochLagGens > 0 {
			w, g, _ := s.dom.OldestPinned()
			f := Finding{
				Kind: "epoch_lag", Severity: "warning",
				Inst: -1, Worker: w, Slot: -1,
				Detail: fmt.Sprintf(
					"%d deferred reclamation(s) held back: worker %d pinned at generation %d, %d generations behind",
					s.dom.Pending(), w, g, lag),
			}
			if w >= 0 && w < len(s.workerEp) && s.workerEp[w].open {
				we := &s.workerEp[w]
				f.Inst, f.Slot = int(we.inst), we.slot
				f.Queries = queriesOfWord(we.activeW0, 0)
			}
			out = append(out, f)
		}
	}

	// Watermark lag: allocated version slots that are neither published
	// nor accounted to an in-flight episode indicate a leaked slot, which
	// disables the probe kernels' watermark fast path.
	if cfg.WatermarkLagSlots > 0 {
		gap := s.episode - int64(s.ctx.Versions.Watermark()) - int64(s.inFlight)
		if gap > cfg.WatermarkLagSlots {
			out = append(out, Finding{
				Kind: "watermark_lag", Severity: "warning",
				Inst: -1, Worker: -1, Slot: -1,
				Detail: fmt.Sprintf(
					"%d allocated slots unpublished beyond the %d in flight (watermark %d of %d); a slot may have leaked",
					gap, s.inFlight, s.ctx.Versions.Watermark(), s.episode),
			})
		}
	}

	// Starved tenants: live queries but no service for a long time.
	if cfg.StarveEpisodes > 0 {
		for i := range s.tenants {
			ts := &s.tenants[i]
			if ts.live == 0 {
				continue
			}
			if un := s.episode - ts.lastService; un >= cfg.StarveEpisodes {
				out = append(out, Finding{
					Kind: "starved_tenant", Severity: "warning",
					Inst: -1, Worker: -1, Slot: -1, Tenant: ts.name,
					Detail: fmt.Sprintf(
						"tenant %q has %d live quer(ies) unserved for %d episodes",
						ts.name, ts.live, un),
				})
			}
		}
	}
	return out
}

// watchdog periodically self-diagnoses the streaming session and logs one
// structured report per finding. Thresholds under one period are raised
// to it so a slow tick cannot flag healthy state.
func (s *Session) watchdog(ctx context.Context, period time.Duration) {
	cfg := DefaultDiagnoseConfig()
	if cfg.StuckFence < period {
		cfg.StuckFence = period
	}
	if cfg.EpisodeStall < period {
		cfg.EpisodeStall = period
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, f := range s.Diagnose(cfg) {
			s.logger.LogAttrs(ctx, slog.LevelWarn, "roulette stall diagnosis",
				slog.String("kind", f.Kind),
				slog.String("severity", f.Severity),
				slog.Int("inst", f.Inst),
				slog.String("table", f.Table),
				slog.Int("worker", f.Worker),
				slog.Int64("slot", f.Slot),
				slog.Any("queries", f.Queries),
				slog.String("tenant", f.Tenant),
				slog.Float64("age_ms", f.AgeMs),
				slog.String("detail", f.Detail),
			)
		}
	}
}
