package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/metrics"
	"github.com/roulette-db/roulette/internal/obs"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/stem"
)

// capHandler is a slog handler collecting the "kind" attr of every record.
type capHandler struct {
	mu    sync.Mutex
	kinds []string
}

func (h *capHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *capHandler) Handle(_ context.Context, r slog.Record) error {
	var kind string
	r.Attrs(func(a slog.Attr) bool {
		if a.Key == "kind" {
			kind = a.Value.String()
		}
		return true
	})
	h.mu.Lock()
	h.kinds = append(h.kinds, kind)
	h.mu.Unlock()
	return nil
}
func (h *capHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *capHandler) WithGroup(string) slog.Handler      { return h }

func (h *capHandler) has(kind string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, k := range h.kinds {
		if k == kind {
			return true
		}
	}
	return false
}

// TestStuckFenceDiagnosisAndTrace is the PR's acceptance scenario: a fence
// held up by a deliberately parked episode must be named — instance, table,
// blocking worker and its queries — by Diagnose and by the watchdog's
// logged report, and the flight-recorder capture of the whole incident
// must render as valid Chrome trace_event JSON.
func TestStuckFenceDiagnosisAndTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	db := starDB(rng, 2048, 64)
	blocked := make(chan struct{})
	release := make(chan struct{})
	var hooked atomic.Bool
	opt := exec.DefaultOptions()
	opt.VectorSize = 32
	// Fault injection: park the first episode on instance 0 (fact) so its
	// in-flight count stays pinned at 1.
	opt.Hooks = exec.Hooks{EpisodeStart: func(inst query.InstID, _ stem.Slot) {
		if inst == 0 && hooked.CompareAndSwap(false, true) {
			close(blocked)
			<-release
		}
	}}
	q1 := &query.Query{
		Rels:  []query.RelRef{{Table: "fact"}, {Table: "d1"}},
		Joins: []query.Join{{LeftAlias: "fact", LeftCol: "fk1", RightAlias: "d1", RightCol: "k"}},
	}
	// q2 joins fact on a column q1 never used, so its admission must queue
	// an AddIndex op behind instance 0's fence while q1's episode is parked.
	q2 := &query.Query{
		Rels:  []query.RelRef{{Table: "fact"}, {Table: "d2"}},
		Joins: []query.Join{{LeftAlias: "fact", LeftCol: "fk2", RightAlias: "d2", RightCol: "k"}},
	}
	logs := &capHandler{}
	rec := obs.NewRecorder(2, 4096) // 1 worker + control ring
	var rr *retireRecorder
	b := query.NewStreamBatch(8)
	s, err := NewSession(b, db, Config{
		Exec: opt, Workers: 1, Streaming: true,
		Recorder:      rec,
		Logger:        slog.New(logs),
		StallWatchdog: 5 * time.Millisecond,
		OnRetire:      func(qid int, st QueryStatus) { rr.onRetire(qid, st) },
	})
	if err != nil {
		t.Fatal(err)
	}
	rr = newRetireRecorder(s)
	join := streamRun(t, s)

	id1, err := s.SubmitLiveMeta(q1, SubmitMeta{})
	if err != nil {
		t.Fatal(err)
	}
	rr.track(id1)
	<-blocked // q1's fact episode is parked; instFlight[0] == 1

	id2, err := s.SubmitLiveMeta(q2, SubmitMeta{})
	if err != nil {
		t.Fatal(err)
	}
	rr.track(id2)

	snap := s.DebugSnapshot()
	if !snap.Insts[0].Fenced || snap.Insts[0].QueuedOps == 0 {
		t.Fatalf("instance 0 not fenced with queued ops: %+v", snap.Insts[0])
	}
	if snap.InFlight != 1 {
		t.Errorf("in-flight = %d, want 1 (the parked episode)", snap.InFlight)
	}

	time.Sleep(20 * time.Millisecond) // age the fence past the thresholds
	findings := s.Diagnose(DiagnoseConfig{
		StuckFence:   time.Millisecond,
		EpisodeStall: time.Millisecond,
	})
	var fence *Finding
	for i := range findings {
		if findings[i].Kind == "stuck_fence" {
			fence = &findings[i]
		}
	}
	if fence == nil {
		t.Fatalf("no stuck_fence finding in %+v", findings)
	}
	if fence.Inst != 0 || fence.Table != "fact" {
		t.Errorf("finding names inst %d (%s), want 0 (fact)", fence.Inst, fence.Table)
	}
	if fence.Worker != 0 {
		t.Errorf("finding names worker %d, want 0", fence.Worker)
	}
	named := false
	for _, q := range fence.Queries {
		if q == id1 {
			named = true
		}
	}
	if !named {
		t.Errorf("finding queries %v do not name the blocking query %d", fence.Queries, id1)
	}

	// The watchdog goroutine must log the same diagnosis.
	deadline := time.Now().Add(5 * time.Second)
	for !logs.has("stuck_fence") {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never logged the stuck_fence diagnosis")
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(release)
	s.CloseSubmit()
	join()
	if completed := rr.check(t, db, []*query.Query{q1, q2}); completed != 2 {
		t.Errorf("completed = %d, want 2", completed)
	}

	// The recorder must hold the incident's causal record...
	evs := rec.Snapshot()
	seen := map[obs.Kind]bool{}
	for _, e := range evs {
		seen[e.Kind] = true
		if e.Kind == obs.KFenceQueue && e.A != 0 {
			t.Errorf("fence_queue on instance %d, want 0", e.A)
		}
	}
	for _, k := range []obs.Kind{
		obs.KSubmit, obs.KAdmit, obs.KFenceQueue, obs.KFenceDrain,
		obs.KEpochAdvance, obs.KEpisodeStart, obs.KEpisodeEnd, obs.KRetire,
	} {
		if !seen[k] {
			t.Errorf("timeline missing %v event", k)
		}
	}
	// ...and the capture must render as valid trace_event JSON.
	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, evs, rec.Rings()); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace capture is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) < len(evs) {
		t.Fatalf("trace has %d events, want >= %d", len(tf.TraceEvents), len(evs))
	}
	for i, te := range tf.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := te[key]; !ok {
				t.Fatalf("trace event %d missing %q", i, key)
			}
		}
		if te["ph"] == "X" {
			if d, ok := te["dur"].(float64); !ok || d < 0 {
				t.Fatalf("complete event %d has bad dur %v", i, te["dur"])
			}
		}
	}
}

// TestTimelineInvariants checks the merged-timeline contract over a real
// streaming run: globally ordered by wall time, per-ring sequence numbers
// strictly increasing, per-ring version-clock stamps non-decreasing, and
// every worker ring an alternation of episode start/end pairs over the
// same (instance, slot) with end at or after start.
func TestTimelineInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	db := starDB(rng, 1024, 64)
	opt := exec.DefaultOptions()
	opt.VectorSize = 64
	rec := obs.NewRecorder(3, 1<<14) // big enough that nothing is evicted
	var rr *retireRecorder
	b := query.NewStreamBatch(16)
	s, err := NewSession(b, db, Config{
		Exec: opt, Workers: 2, Streaming: true, Recorder: rec,
		OnRetire: func(qid int, st QueryStatus) { rr.onRetire(qid, st) },
	})
	if err != nil {
		t.Fatal(err)
	}
	rr = newRetireRecorder(s)
	join := streamRun(t, s)
	qs := starQueries(rng, 8)
	for _, q := range qs {
		qid, err := s.SubmitLiveMeta(q, SubmitMeta{})
		if err != nil {
			t.Fatal(err)
		}
		rr.track(qid)
	}
	s.CloseSubmit()
	join()
	rr.check(t, db, qs)

	evs := rec.Snapshot()
	if len(evs) == 0 {
		t.Fatal("empty timeline")
	}
	lastSeq := map[int32]uint64{}
	lastVC := map[int32]int64{}
	type open struct {
		inst, slot int64
		ts         int64
		live       bool
	}
	openEp := map[int32]*open{}
	episodes := 0
	for i, e := range evs {
		if i > 0 && e.TS < evs[i-1].TS {
			t.Fatalf("event %d: global TS order violated", i)
		}
		if e.Seq <= lastSeq[e.Ring] {
			t.Fatalf("event %d: ring %d seq not monotonic", i, e.Ring)
		}
		lastSeq[e.Ring] = e.Seq
		if e.VC < lastVC[e.Ring] {
			t.Fatalf("event %d: ring %d version clock went backwards (%d < %d)",
				i, e.Ring, e.VC, lastVC[e.Ring])
		}
		lastVC[e.Ring] = e.VC
		switch e.Kind {
		case obs.KEpisodeStart:
			if o := openEp[e.Ring]; o != nil && o.live {
				t.Fatalf("event %d: ring %d started an episode inside an open one", i, e.Ring)
			}
			openEp[e.Ring] = &open{inst: e.A, slot: e.B, ts: e.TS, live: true}
		case obs.KEpisodeEnd:
			o := openEp[e.Ring]
			if o == nil || !o.live {
				t.Fatalf("event %d: ring %d episode end without start", i, e.Ring)
			}
			if o.inst != e.A || o.slot != e.B {
				t.Fatalf("event %d: episode end (inst %d, slot %d) does not match start (inst %d, slot %d)",
					i, e.A, e.B, o.inst, o.slot)
			}
			if e.TS < o.ts {
				t.Fatalf("event %d: episode end before start", i)
			}
			o.live = false
			episodes++
		}
	}
	for ring, o := range openEp {
		if o.live {
			t.Errorf("ring %d finished the run with an open episode", ring)
		}
	}
	if episodes == 0 {
		t.Fatal("no complete episodes in the timeline")
	}
}

// TestRingEventsOnShedAndPromotion asserts the metrics.Ring episode trace
// interleaves control-plane events: a deadline-urgency lane promotion and
// a mid-flight shed each add a typed record naming tenant and query.
func TestRingEventsOnShedAndPromotion(t *testing.T) {
	ring := metrics.NewRing(64)
	// A wide urgency window keeps the promotion deterministic: the deadline
	// is comfortably in the future (no shed race) yet inside the window.
	s, _ := schedSession(t, 8, Config{Trace: ring, DeadlineUrgency: time.Minute})

	urgent, err := s.SubmitLiveMeta(singleRel("d1"), SubmitMeta{
		Tenant: "fast", Deadline: time.Now().Add(30 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	drive(s, 64) // selection inside the urgency window records the promotion
	s.mu.Unlock()

	dead, err := s.SubmitLiveMeta(singleRel("d2"), SubmitMeta{
		Tenant: "late", Deadline: time.Now().Add(-time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.pickScanLocked() // expired deadline: shed
	s.mu.Unlock()

	events := ring.Events()
	var promote, shed *metrics.EpisodeRecord
	for i := range events {
		switch events[i].Event {
		case "lane_promote":
			promote = &events[i]
		case "shed":
			shed = &events[i]
		}
	}
	if promote == nil {
		t.Fatal("no lane_promote record in the episode trace")
	}
	if promote.Qid != urgent || promote.Tenant != "fast" {
		t.Errorf("lane_promote = qid %d tenant %q, want qid %d tenant fast",
			promote.Qid, promote.Tenant, urgent)
	}
	if shed == nil {
		t.Fatal("no shed record in the episode trace")
	}
	if shed.Qid != dead || shed.Tenant != "late" {
		t.Errorf("shed = qid %d tenant %q, want qid %d tenant late",
			shed.Qid, shed.Tenant, dead)
	}
}

// TestDebugSnapshotBatchSession ensures the snapshot is safe on a batch
// (non-streaming) session that has not run yet.
func TestDebugSnapshotBatchSession(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	db := starDB(rng, 256, 64)
	b, err := query.Compile(starQueries(rng, 4))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(b, db, Config{Exec: exec.DefaultOptions(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.DebugSnapshot()
	if snap.Streaming || len(snap.Insts) == 0 {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}
	for _, inst := range snap.Insts {
		if inst.Table == "" {
			t.Errorf("instance %d missing table name", inst.Inst)
		}
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
}
