// Package engine is RouLette's driver: it schedules compiled batches,
// ingests vectors through circular scans in a pruning-aware order, maps
// episodes onto a worker pool sharing STeMs, supports runtime query
// admission, and reports per-query results and execution statistics (§3).
package engine

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/cost"
	"github.com/roulette-db/roulette/internal/epoch"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/metrics"
	"github.com/roulette-db/roulette/internal/obs"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/qlearn"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/stem"
	"github.com/roulette-db/roulette/internal/storage"
)

// AdmitEvent schedules runtime query admission: the listed queries are
// admitted once Inst has delivered AfterVectors vectors (dynamic workloads,
// §6.2 "Dynamic Opportunities").
type AdmitEvent struct {
	AfterVectors int64
	Inst         query.InstID
	QIDs         []int
}

// Config parameterizes a session.
type Config struct {
	Exec    exec.Options
	Workers int

	// Policy drives planning; nil selects the learned policy with the
	// paper's hyper-parameters.
	Policy policy.Policy

	Model *cost.Model

	// AdmitAt staggers admission; when empty, every query is admitted at
	// session start (batch mode).
	AdmitAt []AdmitEvent

	// TrackConvergence records per-episode measured and estimated costs
	// (the Fig. 16 learning curves). Costly on large runs.
	TrackConvergence bool

	// Trace, when non-nil, receives one record per episode (observability;
	// see internal/metrics). Public callers reach it through
	// roulette.Options.TraceEpisodes.
	Trace *metrics.Ring

	// SessionDeadline bounds the whole run; 0 means no deadline. A run
	// exceeding it is cancelled cooperatively and returns partial results.
	SessionDeadline time.Duration

	// EpisodeWatchdog bounds a single episode; 0 disables the watchdog.
	// Episodes are not preemptible, so an episode exceeding the bound keeps
	// running to its end, but it is recorded as a stall fault, its queries
	// are marked failed, and the rest of the session is cancelled.
	EpisodeWatchdog time.Duration

	// Streaming switches the session from run-to-completion to a long-lived
	// lifecycle: workers block for new work instead of exiting when every
	// admitted query drains, queries arrive at any time via SubmitLive, each
	// query retires individually (OnRetire) the moment it completes, and a
	// between-episodes garbage collector reclaims retired queries' STeM
	// entries, policy state and query IDs. RunContext then returns only
	// after CloseSubmit (or context cancellation).
	Streaming bool

	// OnRetire, in streaming mode, delivers each query's terminal status.
	// It is called outside the session mutex, exactly once per admitted
	// query, as soon as the query's episodes drain — not at session end.
	// The query's source still holds its routed rows at that point.
	OnRetire func(qid int, st QueryStatus)

	// OnReclaim, in streaming mode, reports query IDs whose state has been
	// fully garbage-collected and returned to the free pool (capacity for
	// new SubmitLive calls). Called outside the session mutex.
	OnReclaim func(qids []int)

	// DeadlineUrgency, in streaming mode, is how far ahead of a query's
	// deadline the scheduler starts boosting its episodes into the urgent
	// lane; 0 means 1ms.
	DeadlineUrgency time.Duration

	// StarveEpisodes, in streaming mode, is how many episodes a tenant with
	// live queries may go unserved before the starvation watchdog boosts it
	// above every priority lane; 0 means 512.
	StarveEpisodes int

	// Recorder, when non-nil, is the session's flight recorder: workers
	// record episode start/end events into their own ring (index = worker
	// id) and the control plane (submission, fences, epochs, GC,
	// retirement) records into the recorder's last ring. Size it with
	// Workers+1 rings. Recording is lock- and allocation-free; a nil
	// recorder costs one branch per event site.
	Recorder *obs.Recorder

	// Logger receives structured diagnostics (stall watchdog reports,
	// degraded-mode warnings). Nil discards.
	Logger *slog.Logger

	// StallWatchdog, in streaming mode, is the period of the self-diagnosis
	// watchdog: every period it snapshots the session, runs the stall
	// heuristics (stuck fences, long-running episodes, unbounded epoch lag,
	// watermark lag, starved tenants) and logs one structured report per
	// finding through Logger. 0 disables the watchdog.
	StallWatchdog time.Duration

	// PolicySweep, in streaming mode, runs at the start of a GC finish
	// pass, before retired queries are unwired from the batch and pruned
	// from the policy — the last moment the learned state about the swept
	// queries is still addressable by live positional IDs. The policy-
	// persistence layer snapshots the Q-table here. Called under the
	// session mutex (between episodes, never on the hot path): keep it
	// proportional to the policy's table size and do not call back into
	// the session.
	PolicySweep func(b *query.Batch, ctx *exec.Context, live bitset.Set)
}

// ConvergencePoint is one episode's measured cost and the policy's estimate
// of the minimum achievable cost at the episode's start state.
type ConvergencePoint struct {
	Episode   int64
	Measured  float64
	Estimated float64
}

// FaultKind classifies an episode fault.
type FaultKind int

// Episode fault classes.
const (
	// FaultPanic is a panic recovered inside an episode (including hook-
	// injected crashes).
	FaultPanic FaultKind = iota
	// FaultInsert is a STeM insertion failure reported by the executor.
	FaultInsert
	// FaultStall is an episode that exceeded Config.EpisodeWatchdog.
	FaultStall
)

// String names the fault class.
func (k FaultKind) String() string {
	switch k {
	case FaultPanic:
		return "panic"
	case FaultInsert:
		return "insert"
	case FaultStall:
		return "stall"
	}
	return "unknown"
}

// EpisodeError records one failed episode. The episode's vector (FirstVID,
// NumVIDs on Inst) is quarantined — it is never retried — and every query
// that was executing the episode (Queries) is marked failed; queries not in
// the episode's active set are unaffected and drain normally.
type EpisodeError struct {
	Kind    FaultKind
	Inst    query.InstID
	Slot    stem.Slot
	Queries []int // query IDs active in the episode

	// FirstVID/NumVIDs identify the quarantined input vector.
	FirstVID int32
	NumVIDs  int

	// Panic and Stack hold the recovered value and goroutine stack for
	// FaultPanic; Err holds the executor error for FaultInsert.
	Panic any
	Stack string
	Err   error
}

// Error renders the fault.
func (e *EpisodeError) Error() string {
	switch e.Kind {
	case FaultPanic:
		return fmt.Sprintf("engine: episode panic on instance %d (slot %d, queries %v): %v", e.Inst, e.Slot, e.Queries, e.Panic)
	case FaultInsert:
		return fmt.Sprintf("engine: episode insert fault on instance %d (slot %d, queries %v): %v", e.Inst, e.Slot, e.Queries, e.Err)
	case FaultStall:
		return fmt.Sprintf("engine: episode stall on instance %d (slot %d, queries %v): exceeded watchdog", e.Inst, e.Slot, e.Queries)
	}
	return "engine: unknown episode fault"
}

// Unwrap exposes the underlying executor error, if any.
func (e *EpisodeError) Unwrap() error { return e.Err }

// QueryStatus reports one query's outcome in a finished (possibly cancelled
// or faulted) session.
type QueryStatus struct {
	// Completed means the query's scans all drained and its count in
	// Results.Counts is exact.
	Completed bool
	// Err explains why an uncompleted query did not finish: an
	// *EpisodeError for queries caught in a faulted episode, or the
	// context error for queries cut short by cancellation.
	Err error
}

// Results summarizes a finished session run.
type Results struct {
	Counts      []int64 // per-query SPJ output tuples
	Elapsed     time.Duration
	Episodes    int64
	JoinTuples  int64 // intermediate join tuples (the Fig. 13 metric)
	Convergence []ConvergencePoint

	// Partial is set when at least one query did not complete (the session
	// was cancelled, timed out, or lost episodes to faults). Counts of
	// uncompleted queries are lower bounds, not exact results.
	Partial bool
	// Status has one entry per query.
	Status []QueryStatus
	// Faults lists the quarantined episodes, in recording order.
	Faults []EpisodeError

	// Stats is the execution breakdown, non-nil only under
	// Config.Exec.CollectStats.
	Stats *BatchStats
}

// Throughput returns completed queries per second.
func (r *Results) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(len(r.Counts)) / r.Elapsed.Seconds()
}

// scanState tracks one instance's circular scan and the queries using it.
type scanState struct {
	scan      *storage.CircularScan
	rank      int
	active    bitset.Set // queries currently scanning
	remaining []int      // per query: tuples still to deliver (admitted only)
	doneQ     bitset.Set // queries that completed this scan
	delivered int64      // vectors delivered
	inserted  int64      // episodes that completed STeM insertion
}

func (s *scanState) done() bool { return s.active.Empty() }

// newScanState builds an empty scan-state sized to the query-ID capacity.
func newScanState(scan *storage.CircularScan, qcap int) *scanState {
	return &scanState{
		scan:      scan,
		active:    bitset.New(qcap),
		remaining: make([]int, qcap),
		doneQ:     bitset.New(qcap),
	}
}

// Session executes one compiled batch. Sessions are single-use: Run (or
// RunContext) may be called at most once.
type Session struct {
	b   *query.Batch
	cfg Config
	ctx *exec.Context
	pol policy.Policy

	started atomic.Bool
	cancel  context.CancelFunc // cancels the active run

	mu       sync.Mutex
	runCtx   context.Context
	scans    []*scanState
	admitted bitset.Set
	failed   bitset.Set // queries caught in a faulted episode
	failErr  []error    // per query: first fault that failed it
	faults   []EpisodeError
	pending  []AdmitEvent
	rrCursor int
	episode  int64
	conv     []ConvergencePoint

	// Streaming lifecycle (cfg.Streaming). cond (on mu) wakes idle workers
	// on submission, episode completion, close and cancellation.
	cond        *sync.Cond
	closed      bool       // CloseSubmit called
	inFlight    int        // episodes handed out, not yet finished
	outstanding []int32    // per query: in-flight episodes carrying its bit
	retired     bitset.Set // retired queries awaiting a GC pass
	gc          gcState
	gcLastEp    int64      // episode count at the last busy-path GC quantum
	cbsQueued   []func()   // retirement/reclaim callbacks awaiting execution
	cbsActive   int        // callbacks taken but not finished executing
	cbPending   bitset.Set // queries whose OnRetire callback has not finished

	// Epoch-based coordination (replaces the stop-the-world quiesce gate):
	// dom tracks which batch generation each worker's in-flight episode
	// pinned, so retired-state frees wait out a grace period instead of a
	// barrier. instFence/instFlight/instOps serialize the few structural
	// STeM mutations (AddIndex, EnsureBuckets growth, compaction) against
	// in-flight inserts on one instance only: a fenced instance stops
	// receiving new episodes, queued ops run when its last in-flight episode
	// completes, and every other instance keeps executing throughout.
	dom        *epoch.Domain
	instFence  []bool      // per instance: no new episodes until queued ops run
	instFlight []int32     // per instance: in-flight episodes inserting into it
	instOps    [][]fenceOp // per instance: ops waiting for the fence

	// Admission-latency accounting (streaming): submit time per query and
	// the set still awaiting their first scheduled episode.
	qSubmitNs  []int64
	qFirstWait bitset.Set

	// Tenant-aware streaming scheduler (cfg.Streaming only; see sched.go).
	tenantIDs    map[string]int
	tenants      []tenantState
	qTenant      []int32 // per query: tenant slot
	qPriority    []int32 // per query: scheduling lane
	qDeadline    []int64 // per query: absolute deadline (unixnano; 0 = none)
	deadlineLive int     // live queries carrying a deadline
	nextDeadline int64   // earliest live deadline (unixnano; 0 = none)
	shedCount    int64   // queries shed mid-flight by deadline expiry
	starveBoosts int64   // starvation-watchdog activations

	// Stats accounting (Config.Exec.CollectStats only), under mu.
	startAt      time.Time
	qEpisodes    []int64         // per query: episodes whose active set included it
	qElapsed     []time.Duration // per query: start → last vector scheduled
	lastSig      []uint64        // per instance: previous episode's plan signature
	planSwitches int64

	// Flight recorder & introspection (see debug.go). rec is nil-safe;
	// ctlRing is the control-plane ring index (rec's last ring). workerEp
	// tracks each worker's currently open episode and instFenceSince when
	// each instance's fence was raised — both feed DebugSnapshot and the
	// stall watchdog. qUrgent marks queries already promoted into the
	// urgency lane so the promotion is recorded once.
	rec            *obs.Recorder
	ctlRing        int
	logger         *slog.Logger
	workerEp       []workerEpisode
	instFenceSince []int64
	qUrgent        bitset.Set
}

// workerEpisode is one worker's in-flight episode, stamped under the
// session mutex when the vector is handed out and cleared when the episode
// completes. activeW0 is the first word of the active query set — enough
// to name the blocking queries for the default query-ID capacity (64).
type workerEpisode struct {
	inst     int32
	slot     int64
	startNs  int64
	activeW0 uint64
	nactive  int32
	open     bool
}

// gcState is the streaming garbage collector's cursor. GC runs in budgeted
// quanta between episodes, concurrently with in-flight episodes (sweeps
// are CAS-based; see gcQuantumLocked): each quantum sweeps a few STeM
// chunks, clearing the retired snapshot's bits and compacting STeMs that
// became mostly dead; the final quantum retires the queries from the
// batch's shared operators, prunes the policy, and recycles the query IDs.
type gcState struct {
	running  bool
	active   bitset.Set // snapshot of retired queries this pass is clearing
	inst     int        // next instance to sweep
	chunk    int        // next chunk within inst
	stemDead int        // empty-qset entries seen in the current instance
	stemGen  uint64     // inst's CompactGen when its sweep began; positions are valid only within it
}

// gcChunkBudget bounds the STeM chunks swept per GC quantum, keeping each
// quantum short relative to an episode.
const gcChunkBudget = 8

// gcEvery paces concurrent GC on the busy path: a worker that finds both a
// runnable scan and pending GC work runs one GC quantum every gcEvery
// episodes before taking its vector, so reclamation progresses while the
// pool stays saturated instead of waiting for an idle moment.
const gcEvery = 4

// fenceOp is one structural STeM mutation queued behind an instance fence,
// plus the admission it belongs to (nil for GC compactions).
type fenceOp struct {
	run func()
	act *pendingActivation
}

// pendingActivation defers a submitted query's activation until every
// structural op its admission queued has run. remaining counts queued ops;
// the op that drops it to zero activates the query.
type pendingActivation struct {
	qid       int
	meta      SubmitMeta
	submitNs  int64
	remaining int
}

// NewSession compiles the execution context and scan plan for batch b.
func NewSession(b *query.Batch, db *storage.Database, cfg Config) (*Session, error) {
	ctx, err := exec.NewContext(b, db, cfg.Exec, cfg.Model)
	if err != nil {
		return nil, err
	}
	pol := cfg.Policy
	if pol == nil {
		pol = qlearn.New(qlearn.DefaultConfig())
	}
	// Per-query state is sized to the batch's query-ID capacity (== b.N for
	// one-shot batches) so streaming admissions never resize anything.
	qcap := b.QCap()
	s := &Session{
		b: b, cfg: cfg, ctx: ctx, pol: pol,
		admitted:    bitset.New(qcap),
		failed:      bitset.New(qcap),
		failErr:     make([]error, qcap),
		outstanding: make([]int32, qcap),
		retired:     bitset.New(qcap),
		pending:     append([]AdmitEvent(nil), cfg.AdmitAt...),
	}
	s.cond = sync.NewCond(&s.mu)
	s.gc.active = bitset.New(qcap)
	s.cbPending = bitset.New(qcap)
	s.instFence = make([]bool, query.MaxInstances)
	s.instFlight = make([]int32, query.MaxInstances)
	s.instOps = make([][]fenceOp, query.MaxInstances)
	s.instFenceSince = make([]int64, query.MaxInstances)
	s.rec = cfg.Recorder
	if s.rec != nil {
		s.ctlRing = s.rec.Rings() - 1
		s.rec.SetVClock(ctx.Versions.Frontier)
	}
	s.logger = cfg.Logger
	if s.logger == nil {
		s.logger = slog.New(discardHandler{})
	}
	if cfg.Streaming {
		s.initSchedLocked(qcap)
		s.qSubmitNs = make([]int64, qcap)
		s.qFirstWait = bitset.New(qcap)
	}
	if cfg.Exec.CollectStats {
		s.qEpisodes = make([]int64, qcap)
		s.qElapsed = make([]time.Duration, qcap)
		s.lastSig = make([]uint64, query.MaxInstances)
	}

	ranks := RankScans(b, ctx)
	s.scans = make([]*scanState, len(b.Insts))
	for i := range b.Insts {
		scan, err := storage.NewCircularScan(ctx.Tables[i].NumRows(), ctx.Opt.VectorSize)
		if err != nil {
			return nil, err
		}
		s.scans[i] = newScanState(scan, qcap)
		s.scans[i].rank = ranks[i]
	}

	// Batch mode: admit everything not covered by an AdmitEvent now.
	deferred := bitset.New(b.N)
	for _, ev := range s.pending {
		for _, qid := range ev.QIDs {
			deferred.Add(qid)
		}
	}
	for qid := 0; qid < b.N; qid++ {
		if !deferred.Contains(qid) {
			s.admitLocked(qid)
		}
	}
	return s, nil
}

// Context exposes the session's execution context (sources, stats).
func (s *Session) Context() *exec.Context { return s.ctx }

// Policy returns the planning policy in use.
func (s *Session) Policy() policy.Policy { return s.pol }

// WithCompiled runs fn under the session mutex with the compiled batch,
// the execution context, and the currently admitted query set. It is the
// streaming-safe way to inspect (or warm-start) the policy against the
// live positional ID spaces: between episodes the batch and context are
// stable, and fn observes them without racing admissions or GC. fn must
// not block or call back into the session.
func (s *Session) WithCompiled(fn func(b *query.Batch, ctx *exec.Context, admitted bitset.Set)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.b, s.ctx, s.admitted)
}

// admitLocked activates query qid on all its instances' scans.
func (s *Session) admitLocked(qid int) {
	if s.admitted.Contains(qid) {
		return
	}
	s.admitted.Add(qid)
	for _, inst := range s.b.QueryInsts(qid) {
		st := s.scans[inst]
		st.active.Add(qid)
		st.remaining[qid] = st.scan.Rows()
		if st.scan.Rows() == 0 {
			st.active.Remove(qid)
			st.doneQ.Add(qid)
		}
	}
}

// Admit activates queries at runtime (online scheduling).
func (s *Session) Admit(qids ...int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, qid := range qids {
		s.admitLocked(qid)
	}
}

// nextEpisode picks the next vector to process: among incomplete scans of
// the lowest rank, round-robin. It returns ok=false when every admitted
// query's scans are complete and no admissions are pending, or when the
// run's context has been cancelled (cooperative cancellation point).
// id is the calling worker, so the handed-out episode can be stamped as
// the worker's open episode for introspection.
func (s *Session) nextEpisode(id int) (exec.EpisodeInput, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()

	if s.runCtx != nil && s.runCtx.Err() != nil {
		return exec.EpisodeInput{}, false
	}

	s.fireAdmissionsLocked()

	best := s.bestScanLocked()
	if best == -1 {
		if len(s.pending) > 0 {
			// Admissions outstanding but their trigger instance is idle:
			// fire them unconditionally to avoid deadlock.
			for _, ev := range s.pending {
				for _, qid := range ev.QIDs {
					s.admitLocked(qid)
				}
			}
			s.pending = nil
			in, ok := s.nextEpisodeLockedRetry()
			if ok {
				s.noteEpisodeLocked(id, in)
			}
			return in, ok
		}
		return exec.EpisodeInput{}, false
	}
	in := s.takeRoundRobinLocked(best)
	s.noteEpisodeLocked(id, in)
	return in, true
}

// noteEpisodeLocked stamps worker id's open episode for the debug
// snapshot and stall diagnosis. Array writes only; no allocation.
func (s *Session) noteEpisodeLocked(id int, in exec.EpisodeInput) {
	if s.workerEp == nil || id >= len(s.workerEp) {
		return
	}
	var w0 uint64
	if len(in.Active) > 0 {
		w0 = in.Active[0]
	}
	s.workerEp[id] = workerEpisode{
		inst:     int32(in.Inst),
		slot:     int64(in.Slot),
		startNs:  time.Now().UnixNano(),
		activeW0: w0,
		nactive:  int32(in.Active.Count()),
		open:     true,
	}
}

// bestScanLocked returns the lowest-rank instance with an incomplete scan,
// or -1 when every scan is drained.
func (s *Session) bestScanLocked() int {
	best := -1
	for i, st := range s.scans {
		if st.done() || s.instFence[i] {
			continue
		}
		if best == -1 || st.rank < s.scans[best].rank {
			best = i
		}
	}
	return best
}

// takeRoundRobinLocked pulls a vector round-robin among the incomplete
// scans sharing best's rank.
func (s *Session) takeRoundRobinLocked(best int) exec.EpisodeInput {
	rank := s.scans[best].rank
	n := len(s.scans)
	for off := 0; off < n; off++ {
		i := (s.rrCursor + off) % n
		st := s.scans[i]
		if !st.done() && !s.instFence[i] && st.rank == rank {
			s.rrCursor = i + 1
			return s.takeVectorLocked(query.InstID(i))
		}
	}
	return s.takeVectorLocked(query.InstID(best))
}

// nextEpisodeLockedRetry re-runs the selection after forced admissions.
func (s *Session) nextEpisodeLockedRetry() (exec.EpisodeInput, bool) {
	best := -1
	for i, st := range s.scans {
		if st.done() {
			continue
		}
		if best == -1 || st.rank < s.scans[best].rank {
			best = i
		}
	}
	if best == -1 {
		return exec.EpisodeInput{}, false
	}
	return s.takeVectorLocked(query.InstID(best)), true
}

func (s *Session) fireAdmissionsLocked() {
	kept := s.pending[:0]
	for _, ev := range s.pending {
		if s.scans[ev.Inst].delivered >= ev.AfterVectors {
			for _, qid := range ev.QIDs {
				s.admitLocked(qid)
			}
		} else {
			kept = append(kept, ev)
		}
	}
	s.pending = kept
}

// takeVectorLocked pulls one vector from inst's circular scan, annotates it
// with the active query set, and updates completion accounting.
func (s *Session) takeVectorLocked(inst query.InstID) exec.EpisodeInput {
	st := s.scans[inst]
	start, n := st.scan.Next()
	vids := make([]int32, n)
	for i := range vids {
		vids[i] = int32(start + i)
	}
	active := st.active.Clone()
	st.delivered++
	s.inFlight++
	s.instFlight[inst]++

	// Completion: every active query sees each vector exactly once per
	// revolution (admission is vector-aligned).
	var finished []int
	st.active.ForEach(func(qid int) {
		s.outstanding[qid]++
		s.chargeServiceLocked(qid, n)
		if s.qFirstWait != nil && s.qFirstWait.Contains(qid) {
			// First episode carrying a live-admitted query's bit: record the
			// submit-to-first-episode latency (admission responsiveness).
			s.qFirstWait.Remove(qid)
			metrics.Default().AdmitLatency.Add((time.Now().UnixNano() - s.qSubmitNs[qid]) / 1e3)
		}
		if s.qEpisodes != nil {
			s.qEpisodes[qid]++
		}
		st.remaining[qid] -= n
		if st.remaining[qid] <= 0 {
			finished = append(finished, qid)
		}
	})
	for _, qid := range finished {
		st.active.Remove(qid)
		st.doneQ.Add(qid)
		// Per-query elapsed: stamped when the query's last vector is handed
		// out (the in-flight episode's tail is not included; observability
		// precision, not an exactness contract).
		if s.qElapsed != nil && s.queryDrainedLocked(qid) {
			s.qElapsed[qid] = time.Since(s.startAt)
		}
	}

	slot := stem.Slot(s.episode)
	s.episode++
	return exec.EpisodeInput{
		Inst:   inst,
		VIDs:   vids,
		Active: active,
		Slot:   slot,
		SelOps: s.ctx.SelOpsFor(inst, s.prunableLocked),
	}
}

// prunableLocked returns the queries eligible for pruning over edgeID
// against other's STeM: queries containing the edge whose scan of other is
// complete, provided every delivered vector of other has been inserted.
func (s *Session) prunableLocked(edgeID int, other query.InstID) bitset.Set {
	st := s.scans[other]
	if !st.done() || st.inserted < st.delivered {
		return nil
	}
	return bitset.And(st.doneQ, s.b.Edges[edgeID].Queries)
}

// costEstimator is the optional interface learned policies expose for the
// convergence experiment.
type costEstimator interface {
	EstimatedBestCost(phase policy.Phase, inst query.InstID, lineage uint64, q bitset.Set, cands []int) float64
}

// Run executes the session to completion and returns per-query results.
func (s *Session) Run() (*Results, error) { return s.RunContext(context.Background()) }

// RunContext executes the session under ctx. Cancellation is cooperative:
// workers stop picking up new episodes once ctx is done, in-flight episodes
// finish, and the session returns partial results (Results.Partial with
// per-query status) rather than an error. Episodes are the fault boundary:
// a panicking episode is recovered, recorded in Results.Faults, and fails
// only the queries it was executing; the rest of the batch drains normally.
func (s *Session) RunContext(ctx context.Context) (*Results, error) {
	if !s.started.CompareAndSwap(false, true) {
		return nil, errors.New("engine: session already run (sessions are single-use)")
	}
	if s.cfg.SessionDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.SessionDeadline)
		defer cancel()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.mu.Lock()
	s.runCtx, s.cancel = ctx, cancel
	s.mu.Unlock()
	if s.cfg.Streaming {
		// Streaming workers block on the condvar when idle; wake them when
		// the run's context is cancelled so they observe it and exit.
		go func() {
			<-ctx.Done()
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		}()
	}

	workers := s.cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	start := time.Now()
	s.mu.Lock()
	s.startAt = start
	s.dom = epoch.NewDomain(workers)
	s.workerEp = make([]workerEpisode, workers)
	s.mu.Unlock()
	if s.cfg.Streaming && s.cfg.StallWatchdog > 0 {
		go s.watchdog(ctx, s.cfg.StallWatchdog)
	}

	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s.runWorker(id)
		}(wk)
	}
	wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Streaming {
		// Per-query outcomes were already published through OnRetire as each
		// query retired; the session-level result carries only aggregates.
		res := &Results{
			Elapsed:    time.Since(start),
			Episodes:   s.ctx.Stats.Episodes.Load(),
			JoinTuples: s.ctx.Stats.JoinOut.Load(),
			Faults:     s.faults,
			Partial:    ctx.Err() != nil,
		}
		s.foldRegistryLocked(res, nil)
		return res, nil
	}
	res := &Results{
		Counts:      make([]int64, s.b.N),
		Elapsed:     time.Since(start),
		Episodes:    s.ctx.Stats.Episodes.Load(),
		JoinTuples:  s.ctx.Stats.JoinOut.Load(),
		Convergence: s.conv,
		Status:      make([]QueryStatus, s.b.N),
		Faults:      s.faults,
	}
	cancelErr := ctx.Err()
	for qid := range res.Counts {
		res.Counts[qid] = s.ctx.Sources[qid].Count()
		switch {
		case s.failed.Contains(qid):
			res.Status[qid] = QueryStatus{Err: s.failErr[qid]}
		case s.admitted.Contains(qid) && s.queryDrainedLocked(qid):
			res.Status[qid] = QueryStatus{Completed: true}
		default:
			err := cancelErr
			if err == nil {
				err = errors.New("engine: query did not complete")
			}
			res.Status[qid] = QueryStatus{Err: err}
		}
		if !res.Status[qid].Completed {
			res.Partial = true
		}
	}
	if s.cfg.Exec.CollectStats {
		res.Stats = s.buildStatsLocked(res)
	}
	s.foldRegistryLocked(res, res.Stats)
	if cancelErr == nil && !s.admitted.Equal(bitset.NewFull(s.b.N)) {
		return res, fmt.Errorf("engine: run finished with unadmitted queries")
	}
	return res, nil
}

// queryDrainedLocked reports whether every scan of qid's instances has
// delivered all of the query's vectors. Workers only exit after finishing
// their in-flight episode, so once the pool has drained this implies the
// query's result is complete.
func (s *Session) queryDrainedLocked(qid int) bool {
	for _, inst := range s.b.QueryInsts(qid) {
		if !s.scans[inst].doneQ.Contains(qid) {
			return false
		}
	}
	return true
}

// runWorker is one worker's episode loop. id is the worker's slot in the
// session's epoch domain: each episode pins the current generation while it
// runs, which is what defers retired-state reclamation past episodes that
// could still observe it.
func (s *Session) runWorker(id int) {
	// Worker construction reads batch shape (query capacity, instance
	// count); in streaming mode a SubmitLive may be extending the batch
	// concurrently with pool startup, so size the worker under the mutex.
	s.mu.Lock()
	w := exec.NewWorker(s.ctx, s.pol)
	s.mu.Unlock()
	for {
		var in exec.EpisodeInput
		var ok bool
		if s.cfg.Streaming {
			in, ok = s.nextEpisodeStreaming(id)
		} else {
			in, ok = s.nextEpisode(id)
		}
		if !ok {
			return
		}
		s.dom.Pin(id)
		// The estimate is read before the episode runs (the policy's
		// current belief about the best join-phase plan, per input
		// tuple) and scaled afterwards by the actual join input size,
		// so the two Fig. 16 series are directly comparable.
		var estPerTuple float64
		if s.cfg.TrackConvergence {
			if ce, ok := s.pol.(costEstimator); ok {
				g := s.ctx.Graph() // published snapshot; no batch lock needed
				cands := g.Candidates(nil, 1<<in.Inst, in.Active)
				estPerTuple = ce.EstimatedBestCost(policy.JoinPhase, 0, 1<<in.Inst, in.Active, cands)
			}
		}
		if s.rec.Enabled() {
			var w0 uint64
			if len(in.Active) > 0 {
				w0 = in.Active[0]
			}
			s.rec.Record(id, obs.KEpisodeStart,
				int64(in.Inst), int64(in.Slot), int64(w0), int64(in.Active.Count()))
		}
		epStart := time.Now()
		rep, err := s.runEpisode(w, in)
		s.rec.Record(id, obs.KEpisodeEnd,
			int64(in.Inst), int64(in.Slot), time.Since(epStart).Nanoseconds(), int64(rep.PlanSig))
		if s.cfg.Trace != nil {
			rec := metrics.EpisodeRecord{
				Episode:       int64(in.Slot),
				Inst:          int(in.Inst),
				Input:         len(in.VIDs),
				JoinInput:     rep.JoinInput,
				Cost:          rep.MeasuredCost,
				Duration:      time.Since(epStart),
				ActiveQueries: in.Active.Count(),
			}
			// The report's action slices alias worker buffers; the record
			// owns its copies.
			if len(rep.SelActions) > 0 {
				rec.SelActions = append([]int32(nil), rep.SelActions...)
			}
			if len(rep.JoinActions) > 0 {
				rec.JoinActions = append([]int32(nil), rep.JoinActions...)
			}
			if err != nil {
				var ee *EpisodeError
				if errors.As(err, &ee) {
					rec.Fault = ee.Kind.String()
				} else {
					rec.Fault = "error"
				}
			}
			s.cfg.Trace.Add(rec)
		}
		s.mu.Lock()
		if s.lastSig != nil && rep.PlanSig != 0 {
			if prev := s.lastSig[in.Inst]; prev != 0 && prev != rep.PlanSig {
				s.planSwitches++
			}
			s.lastSig[in.Inst] = rep.PlanSig
		}
		if err != nil {
			s.recordFaultLocked(in, err)
		} else {
			s.scans[in.Inst].inserted++
			if s.cfg.TrackConvergence {
				s.conv = append(s.conv, ConvergencePoint{
					Episode:   int64(in.Slot),
					Measured:  rep.MeasuredJoinCost,
					Estimated: estPerTuple * float64(rep.JoinInput),
				})
			}
		}
		s.inFlight--
		s.instFlight[in.Inst]--
		if s.workerEp != nil && id < len(s.workerEp) {
			s.workerEp[id].open = false
		}
		if s.instFlight[in.Inst] == 0 && s.instFence[in.Inst] {
			s.runFenceOpsLocked(int(in.Inst))
		}
		var cbs []func()
		in.Active.ForEach(func(qid int) {
			s.outstanding[qid]--
			s.maybeRetireLocked(qid)
		})
		if s.cfg.Streaming {
			cbs = s.takeCallbacksLocked()
			s.cond.Broadcast()
		}
		s.mu.Unlock()
		ready := s.dom.Unpin(id)
		s.runCallbacks(cbs)
		for _, f := range ready {
			f()
		}
	}
}

// runFenceOpsLocked drains an instance's queued structural ops once its
// last in-flight episode completes, lifts the fence, and fires any
// admission whose final op just ran.
func (s *Session) runFenceOpsLocked(inst int) {
	ops := s.instOps[inst]
	s.instOps[inst] = nil
	s.instFence[inst] = false
	if s.rec.Enabled() {
		var age int64
		if since := s.instFenceSince[inst]; since != 0 {
			age = time.Now().UnixNano() - since
		}
		s.recCtl(obs.KFenceDrain, int64(inst), int64(len(ops)), age, 0)
	}
	s.instFenceSince[inst] = 0
	for _, op := range ops {
		op.run()
		if op.act != nil {
			op.act.remaining--
			if op.act.remaining == 0 {
				s.activateLocked(op.act)
			}
		}
	}
	s.cond.Broadcast()
}

// activateLocked makes a submitted query schedulable: scheduler metadata,
// scan admission, admission-latency arming, and the born-drained check.
// The context view including the query was published before any episode
// can carry its bit (publish-then-advance).
func (s *Session) activateLocked(act *pendingActivation) {
	s.recCtl(obs.KAdmit, int64(act.qid), 0, 0, 0)
	s.registerMetaLocked(act.qid, act.meta)
	s.admitLocked(act.qid)
	if s.qFirstWait != nil {
		s.qSubmitNs[act.qid] = act.submitNs
		s.qFirstWait.Add(act.qid)
	}
	s.maybeRetireLocked(act.qid) // zero-row relations: the query is born drained
	s.cond.Broadcast()
}

// runEpisode executes one episode behind a panic barrier and the optional
// watchdog timer. Every exit path — normal, insert fault, panic — publishes
// the episode's version slot: entries the episode managed to insert were
// stamped with it and must eventually become visible, and the publication
// watermark only advances past published slots, so one abandoned slot would
// disable the probe kernels' watermark fast path for the rest of the
// session. A recovered panic is returned as an *EpisodeError.
func (s *Session) runEpisode(w *exec.Worker, in exec.EpisodeInput) (rep exec.EpisodeReport, err error) {
	if d := s.cfg.EpisodeWatchdog; d > 0 {
		timer := time.AfterFunc(d, func() {
			s.mu.Lock()
			s.recordFaultLocked(in, s.newEpisodeError(in, FaultStall))
			s.mu.Unlock()
			s.cancel()
		})
		defer timer.Stop()
	}
	defer func() {
		// Publish unconditionally: idempotent on the paths that already
		// published (normal return, hook faults), and the safety net for
		// panics and any future early exit between slot allocation and
		// execution.
		s.ctx.Versions.Publish(in.Slot)
		if r := recover(); r != nil {
			ee := s.newEpisodeError(in, FaultPanic)
			ee.Panic, ee.Stack = r, string(debug.Stack())
			err = ee
		}
	}()
	rep, execErr := w.RunEpisode(in)
	if execErr != nil {
		ee := s.newEpisodeError(in, FaultInsert)
		ee.Err = execErr
		err = ee
	}
	return rep, err
}

// newEpisodeError captures the episode's identity and quarantined vector.
func (s *Session) newEpisodeError(in exec.EpisodeInput, kind FaultKind) *EpisodeError {
	ee := &EpisodeError{
		Kind:    kind,
		Inst:    in.Inst,
		Slot:    in.Slot,
		Queries: in.Active.IDs(),
		NumVIDs: len(in.VIDs),
	}
	if len(in.VIDs) > 0 {
		ee.FirstVID = in.VIDs[0]
	}
	return ee
}

// recordFaultLocked quarantines a faulted episode: it is appended to the
// fault log and every query in its active set is marked failed and dropped
// from all scans, so the surviving queries drain without wasted work.
func (s *Session) recordFaultLocked(in exec.EpisodeInput, err error) {
	var ee *EpisodeError
	if !errors.As(err, &ee) {
		ee = s.newEpisodeError(in, FaultInsert)
		ee.Err = err
	}
	s.faults = append(s.faults, *ee)
	in.Active.ForEach(func(qid int) {
		if !s.failed.Contains(qid) {
			s.failed.Add(qid)
			s.failErr[qid] = ee
		}
		for _, inst := range s.b.QueryInsts(qid) {
			s.scans[inst].active.Remove(qid)
		}
	})
}

// RankScans orders circular-scan initiation for pruning (§5.2): relations
// smaller than all their joinable unranked neighbors rank first (dimension
// tables of star/snowflake schemas), postponing large pruning-target
// relations. Ties break by size so progress is guaranteed.
func RankScans(b *query.Batch, ctx *exec.Context) []int {
	n := len(b.Insts)
	ranks := make([]int, n)
	ranked := make([]bool, n)
	rows := make([]int, n)
	for i := range rows {
		rows[i] = ctx.Tables[i].NumRows()
	}
	neighbors := make([][]query.InstID, n)
	for _, e := range b.Edges {
		neighbors[e.A] = append(neighbors[e.A], e.B)
		neighbors[e.B] = append(neighbors[e.B], e.A)
	}
	for rank, left := 1, n; left > 0; rank++ {
		var marked []int
		for i := 0; i < n; i++ {
			if ranked[i] {
				continue
			}
			smaller := true
			for _, nb := range neighbors[i] {
				if !ranked[nb] && rows[nb] <= rows[i] && int(nb) != i {
					if rows[nb] < rows[i] || int(nb) < i {
						smaller = false
						break
					}
				}
			}
			if smaller {
				marked = append(marked, i)
			}
		}
		if len(marked) == 0 {
			// Fallback: mark the globally smallest unranked instance.
			best := -1
			for i := 0; i < n; i++ {
				if !ranked[i] && (best == -1 || rows[i] < rows[best]) {
					best = i
				}
			}
			marked = []int{best}
		}
		for _, i := range marked {
			ranks[i] = rank
			ranked[i] = true
			left--
		}
	}
	return ranks
}

// NewPlanOnlySession is a convenience for experiments that measure plan
// quality (intermediate tuples) rather than wall-clock throughput: rows are
// not collected and convergence is not tracked.
func NewPlanOnlySession(b *query.Batch, db *storage.Database, pol policy.Policy, workers int) (*Session, error) {
	opt := exec.DefaultOptions()
	opt.CollectRows = false
	return NewSession(b, db, Config{Exec: opt, Workers: workers, Policy: pol})
}
