package engine

import (
	"math/rand"
	"testing"

	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/metrics"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/qlearn"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
)

// starDB builds a small star schema: fact(fk1, fk2, v) with dims d1(k, a),
// d2(k, a). Keys are drawn so joins have controlled fan-out.
func starDB(rng *rand.Rand, factRows, dimRows int) *storage.Database {
	fact := catalog.NewRelation("fact", "fk1", "fk2", "v")
	d1 := catalog.NewRelation("d1", "k", "a")
	d2 := catalog.NewRelation("d2", "k", "a")
	sch := catalog.NewSchema(fact, d1, d2)
	sch.AddFK("fact", "fk1", "d1", "k")
	sch.AddFK("fact", "fk2", "d2", "k")
	db := storage.NewDatabase(sch)

	ft := storage.NewTable(fact, factRows)
	for i := 0; i < factRows; i++ {
		ft.Col("fk1")[i] = int64(rng.Intn(dimRows))
		ft.Col("fk2")[i] = int64(rng.Intn(dimRows))
		ft.Col("v")[i] = int64(rng.Intn(100))
	}
	db.Put(ft)
	for _, name := range []string{"d1", "d2"} {
		dt := storage.NewTable(sch.Relation(name), dimRows)
		for i := 0; i < dimRows; i++ {
			dt.Col("k")[i] = int64(i)
			dt.Col("a")[i] = int64(rng.Intn(100))
		}
		db.Put(dt)
	}
	return db
}

func starQueries(rng *rand.Rand, n int) []*query.Query {
	var qs []*query.Query
	for i := 0; i < n; i++ {
		q := &query.Query{
			Rels: []query.RelRef{{Table: "fact"}, {Table: "d1"}},
			Joins: []query.Join{
				{LeftAlias: "fact", LeftCol: "fk1", RightAlias: "d1", RightCol: "k"},
			},
		}
		if rng.Intn(2) == 0 {
			q.Rels = append(q.Rels, query.RelRef{Table: "d2"})
			q.Joins = append(q.Joins, query.Join{LeftAlias: "fact", LeftCol: "fk2", RightAlias: "d2", RightCol: "k"})
		}
		// Random filters.
		if rng.Intn(2) == 0 {
			lo := int64(rng.Intn(80))
			q.Filters = append(q.Filters, query.Filter{Alias: "fact", Col: "v", Lo: lo, Hi: lo + int64(rng.Intn(40))})
		}
		if rng.Intn(2) == 0 {
			lo := int64(rng.Intn(80))
			q.Filters = append(q.Filters, query.Filter{Alias: "d1", Col: "a", Lo: lo, Hi: lo + int64(rng.Intn(60))})
		}
		qs = append(qs, q)
	}
	return qs
}

func runAndCheck(t *testing.T, db *storage.Database, qs []*query.Query, cfg Config) *Results {
	t.Helper()
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(b, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for qid, q := range qs {
		want := oracleCount(db, q)
		if res.Counts[qid] != want {
			t.Errorf("query %d: count = %d, oracle = %d", qid, res.Counts[qid], want)
		}
	}
	return res
}

func TestEngineMatchesOracleLearnedPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := starDB(rng, 300, 40)
	qs := starQueries(rng, 12)
	opt := exec.DefaultOptions()
	opt.VectorSize = 64
	runAndCheck(t, db, qs, Config{Exec: opt})
}

func TestEngineMatchesOracleAllPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := starDB(rng, 200, 30)
	qs := starQueries(rng, 8)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	pols := map[string]func() policy.Policy{
		"learned": func() policy.Policy { return qlearn.New(qlearn.DefaultConfig()) },
		"greedy":  func() policy.Policy { return policy.NewGreedy(b, 64) },
		"random":  func() policy.Policy { return policy.NewRandom(3) },
	}
	for name, mk := range pols {
		t.Run(name, func(t *testing.T) {
			opt := exec.DefaultOptions()
			opt.VectorSize = 53 // odd size exercises partial vectors
			runAndCheck(t, db, qs, Config{Exec: opt, Policy: mk()})
		})
	}
}

func TestEngineOptimizationTogglesPreserveResults(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	db := starDB(rng, 150, 25)
	qs := starQueries(rng, 6)
	base := exec.DefaultOptions()
	base.VectorSize = 32
	variants := map[string]func(*exec.Options){
		"noPruning":        func(o *exec.Options) { o.Pruning = false },
		"naiveFilters":     func(o *exec.Options) { o.GroupedFilters = false },
		"naiveRouter":      func(o *exec.Options) { o.LocalityRouter = false },
		"noProjections":    func(o *exec.Options) { o.AdaptiveProjections = false },
		"allOptimizations": func(o *exec.Options) {},
		"allOff": func(o *exec.Options) {
			o.Pruning, o.GroupedFilters, o.LocalityRouter, o.AdaptiveProjections = false, false, false, false
		},
	}
	for name, mod := range variants {
		t.Run(name, func(t *testing.T) {
			opt := base
			mod(&opt)
			runAndCheck(t, db, qs, Config{Exec: opt})
		})
	}
}

func TestEngineMultiWorkerMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	db := starDB(rng, 400, 40)
	qs := starQueries(rng, 10)
	for _, workers := range []int{2, 4} {
		opt := exec.DefaultOptions()
		opt.VectorSize = 64
		runAndCheck(t, db, qs, Config{Exec: opt, Workers: workers})
	}
}

func TestEngineDynamicAdmission(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	db := starDB(rng, 300, 30)
	qs := starQueries(rng, 6)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	// Find the fact instance to trigger admissions on.
	factInst, _ := b.InstOfAlias(0, "fact")
	opt := exec.DefaultOptions()
	opt.VectorSize = 32
	cfg := Config{
		Exec: opt,
		AdmitAt: []AdmitEvent{
			{AfterVectors: 3, Inst: factInst, QIDs: []int{3}},
			{AfterVectors: 6, Inst: factInst, QIDs: []int{4, 5}},
		},
	}
	s, err := NewSession(b, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for qid, q := range qs {
		want := oracleCount(db, q)
		if res.Counts[qid] != want {
			t.Errorf("query %d (admitted late): count = %d, oracle = %d", qid, res.Counts[qid], want)
		}
	}
}

func TestRankScansPutsDimensionsFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db := starDB(rng, 500, 20)
	qs := starQueries(rng, 4)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := exec.NewContext(b, db, exec.DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ranks := RankScans(b, ctx)
	factInst, _ := b.InstOfAlias(0, "fact")
	d1Inst, _ := b.InstOfAlias(0, "d1")
	if ranks[d1Inst] >= ranks[factInst] {
		t.Errorf("dimension rank %d should precede fact rank %d", ranks[d1Inst], ranks[factInst])
	}
}

func TestConvergenceTracking(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	db := starDB(rng, 200, 20)
	qs := starQueries(rng, 4)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	opt := exec.DefaultOptions()
	opt.VectorSize = 32
	opt.CollectRows = false
	s, err := NewSession(b, db, Config{Exec: opt, TrackConvergence: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Convergence) == 0 {
		t.Fatal("no convergence points recorded")
	}
	if int64(len(res.Convergence)) != res.Episodes {
		t.Errorf("convergence points = %d, episodes = %d", len(res.Convergence), res.Episodes)
	}
}

func TestThroughputNonZero(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db := starDB(rng, 100, 10)
	qs := starQueries(rng, 3)
	res := runAndCheck(t, db, qs, Config{Exec: exec.DefaultOptions()})
	if res.Throughput() <= 0 {
		t.Error("throughput should be positive")
	}
	if res.Episodes == 0 {
		t.Error("no episodes ran")
	}
}

// TestLargeBatchOver512Queries exercises multi-word query sets beyond the
// executor's stack-array fast path (regression: qw > 8 panicked in probe).
func TestLargeBatchOver512Queries(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	db := starDB(rng, 600, 40)
	qs := starQueries(rng, 600)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	opt := exec.DefaultOptions()
	opt.CollectRows = false
	s, err := NewSession(b, db, Config{Exec: opt})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check a sample against the oracle (full check would be slow).
	for qid := 0; qid < len(qs); qid += 97 {
		if want := oracleCount(db, qs[qid]); res.Counts[qid] != want {
			t.Errorf("query %d: %d, oracle %d", qid, res.Counts[qid], want)
		}
	}
}

func TestEpisodeTracing(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	db := starDB(rng, 200, 20)
	qs := starQueries(rng, 4)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	opt := exec.DefaultOptions()
	opt.VectorSize = 32
	opt.CollectRows = false
	ring := metrics.NewRing(64)
	s, err := NewSession(b, db, Config{Exec: opt, Trace: ring})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ring.Len() == 0 {
		t.Fatal("no episodes traced")
	}
	want := int(res.Episodes)
	if want > 64 {
		want = 64
	}
	if ring.Len() != want {
		t.Errorf("traced %d, want %d", ring.Len(), want)
	}
	for _, rec := range ring.Snapshot() {
		if rec.Input <= 0 || rec.Duration <= 0 {
			t.Errorf("malformed record %+v", rec)
		}
	}
}

// TestBatchStatsCollection runs a batch with CollectStats + TraceActions on
// and checks every stats family comes back populated and consistent.
func TestBatchStatsCollection(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	db := starDB(rng, 300, 30)
	qs := starQueries(rng, 8)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	opt := exec.DefaultOptions()
	opt.VectorSize = 64
	opt.CollectStats = true
	opt.TraceActions = true
	ring := metrics.NewRing(128)
	s, err := NewSession(b, db, Config{Exec: opt, Trace: ring, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	bs := res.Stats
	if bs == nil {
		t.Fatal("CollectStats run returned nil Stats")
	}

	if len(bs.Queries) != b.N {
		t.Fatalf("per-query stats: %d entries, want %d", len(bs.Queries), b.N)
	}
	for qid, q := range bs.Queries {
		if q.Episodes == 0 {
			t.Errorf("query %d: no episodes counted", qid)
		}
		if q.Elapsed <= 0 {
			t.Errorf("query %d: elapsed = %v", qid, q.Elapsed)
		}
		if !q.Completed {
			t.Errorf("query %d: not completed in a clean run", qid)
		}
		if q.Tuples != res.Counts[qid] {
			t.Errorf("query %d: tuples %d != count %d", qid, q.Tuples, res.Counts[qid])
		}
	}

	if bs.Probes.Invocations == 0 || bs.Probes.Tuples != res.JoinTuples {
		t.Errorf("probe class: %+v (join tuples %d)", bs.Probes, res.JoinTuples)
	}
	if bs.Builds.Tuples == 0 || bs.Routers.Tuples == 0 {
		t.Errorf("builds %+v / routers %+v recorded no tuples", bs.Builds, bs.Routers)
	}

	if len(bs.Stems) != len(b.Insts) {
		t.Fatalf("stem stats: %d entries, want %d", len(bs.Stems), len(b.Insts))
	}
	var inserts, probes, estBytes int64
	for _, ss := range bs.Stems {
		if ss.Table == "" {
			t.Error("stem stats entry without table name")
		}
		if ss.Entries == 0 {
			t.Errorf("stem %s: no entries after full ingestion", ss.Table)
		}
		inserts += ss.Inserts
		probes += ss.Probes
		estBytes += ss.EstBytes
	}
	if inserts == 0 || probes == 0 || estBytes == 0 {
		t.Errorf("stem traffic: inserts=%d probes=%d bytes=%d", inserts, probes, estBytes)
	}
	if inserts != bs.Builds.Tuples {
		t.Errorf("stem inserts %d != build tuples %d", inserts, bs.Builds.Tuples)
	}

	if bs.Policy.QStates == 0 {
		t.Error("learned policy reported no Q-table states")
	}
	if bs.Policy.Exploits == 0 {
		t.Error("no greedy decisions counted")
	}

	sh := bs.Sharing
	if sh.TotalOps == 0 || sh.SharedOps == 0 || sh.QueriesServed < sh.TotalOps {
		t.Errorf("sharing stats: %+v", sh)
	}
	if f := sh.Factor(); f <= 0 || f > 1 {
		t.Errorf("sharing factor = %v", f)
	}

	// Trace records carry the active query count and action sequences.
	var traced bool
	for _, rec := range ring.Snapshot() {
		if rec.ActiveQueries <= 0 {
			t.Errorf("record %d: ActiveQueries = %d", rec.Episode, rec.ActiveQueries)
		}
		if rec.JoinInput > 0 && len(rec.JoinActions) > 0 {
			traced = true
		}
	}
	if !traced {
		t.Error("no trace record carried join actions")
	}
}

// TestStatsOffLeavesResultsBare pins the opt-in contract: without
// CollectStats, Results.Stats is nil.
func TestStatsOffLeavesResultsBare(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	db := starDB(rng, 150, 20)
	qs := starQueries(rng, 4)
	res := runAndCheck(t, db, qs, Config{Exec: exec.DefaultOptions()})
	if res.Stats != nil {
		t.Error("stats-off run returned non-nil Stats")
	}
}

func TestDirectAdmitAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	db := starDB(rng, 200, 20)
	qs := starQueries(rng, 4)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	opt := exec.DefaultOptions()
	opt.VectorSize = 32
	factInst, _ := b.InstOfAlias(0, "fact")
	// Defer queries 2 and 3 behind an admission event that never fires on
	// its own; admit them through the public API before running.
	s, err := NewSession(b, db, Config{Exec: opt, AdmitAt: []AdmitEvent{
		{AfterVectors: 1 << 40, Inst: factInst, QIDs: []int{2, 3}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	s.Admit(2, 3)
	s.Admit(2) // idempotent
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for qid, q := range qs {
		if want := oracleCount(db, q); res.Counts[qid] != want {
			t.Errorf("query %d: %d, oracle %d", qid, res.Counts[qid], want)
		}
	}
}

func TestRankScansEqualSizesProgress(t *testing.T) {
	// All relations equal-sized: the heuristic's tie-breaks must still
	// produce a total ranking (no infinite loop, every rank assigned).
	rng := rand.New(rand.NewSource(53))
	db := starDB(rng, 30, 30) // fact and dims all ~30 rows
	qs := starQueries(rng, 3)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := exec.NewContext(b, db, exec.DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ranks := RankScans(b, ctx)
	for i, r := range ranks {
		if r < 1 {
			t.Errorf("instance %d unranked", i)
		}
	}
	runAndCheck(t, db, qs, Config{Exec: exec.DefaultOptions()})
}
