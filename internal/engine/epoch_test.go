package engine

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/faults"
	"github.com/roulette-db/roulette/internal/metrics"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/stem"
	"github.com/roulette-db/roulette/internal/storage"
)

// outcome is one submission's terminal status and final count, captured
// inside OnRetire while the query's source is still guaranteed alive.
type outcome struct {
	st  QueryStatus
	cnt int64
}

// retireRecorder captures each submission's outcome through OnRetire,
// keyed by submission order: query IDs are recycled after GC, so a qid
// alone is not a stable identity across a churning stream. It assumes a
// single submitting goroutine (which every test here has). The qid-reuse
// gate makes the bookkeeping sound: a qid cannot be reassigned until its
// previous holder's OnRetire callback has completed (cbPending), so at
// the moment onRetire fires the qid maps to at most one untracked
// submission — the one the single submitter just made.
type retireRecorder struct {
	mu     sync.Mutex
	s      *Session
	bySlot map[int]int       // qid -> submission slot awaiting retirement
	early  map[int][]outcome // retirements that beat the submitter's track()
	status []QueryStatus     // per-slot terminal status
	counts []int64           // per-slot final count
	done   []bool            // per-slot: OnRetire observed
}

func newRetireRecorder(s *Session) *retireRecorder {
	return &retireRecorder{s: s, bySlot: map[int]int{}, early: map[int][]outcome{}}
}

func (r *retireRecorder) onRetire(qid int, st QueryStatus) {
	cnt := r.s.Context().Sources[qid].Count()
	r.mu.Lock()
	defer r.mu.Unlock()
	if slot, ok := r.bySlot[qid]; ok {
		r.recordLocked(slot, outcome{st, cnt})
		delete(r.bySlot, qid)
		return
	}
	r.early[qid] = append(r.early[qid], outcome{st, cnt})
}

// track registers a fresh submission and returns its slot. Must be called
// by the submitting goroutine right after SubmitLiveMeta returns.
func (r *retireRecorder) track(qid int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	slot := len(r.status)
	r.status = append(r.status, QueryStatus{})
	r.counts = append(r.counts, -1)
	r.done = append(r.done, false)
	if p := r.early[qid]; len(p) > 0 {
		r.recordLocked(slot, p[0])
		r.early[qid] = p[1:]
	} else {
		r.bySlot[qid] = slot
	}
	return slot
}

func (r *retireRecorder) recordLocked(slot int, o outcome) {
	if r.done[slot] {
		panic("retireRecorder: slot retired twice")
	}
	r.done[slot], r.status[slot], r.counts[slot] = true, o.st, o.cnt
}

// check asserts every tracked submission retired exactly once, completed
// ones match the oracle, and aborted ones carry an explanation.
func (r *retireRecorder) check(t *testing.T, db *storage.Database, qs []*query.Query) (completed int) {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.status) != len(qs) {
		t.Fatalf("tracked %d submissions, want %d", len(r.status), len(qs))
	}
	for slot := range r.status {
		if !r.done[slot] {
			t.Errorf("submission %d never retired", slot)
			continue
		}
		st := r.status[slot]
		if st.Completed {
			completed++
			if want := oracleCount(db, qs[slot]); r.counts[slot] != want {
				t.Errorf("completed submission %d: count = %d, oracle = %d", slot, r.counts[slot], want)
			}
			if st.Err != nil {
				t.Errorf("completed submission %d carries error %v", slot, st.Err)
			}
		} else if st.Err == nil {
			t.Errorf("aborted submission %d has no error", slot)
		}
	}
	return completed
}

// streamRun starts the session's run loop and returns a join function.
func streamRun(t *testing.T, s *Session) func() *Results {
	t.Helper()
	type runOut struct {
		res *Results
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := s.Run()
		done <- runOut{res, err}
	}()
	return func() *Results {
		t.Helper()
		select {
		case out := <-done:
			if out.err != nil {
				t.Fatalf("streaming run failed: %v", out.err)
			}
			return out.res
		case <-time.After(120 * time.Second):
			t.Fatalf("streaming run did not terminate")
			return nil
		}
	}
}

// TestSubmitLiveNonBlockingDuringEpisode is the tentpole acceptance test:
// admission must not wait on a global worker barrier. A hook parks the
// first episode mid-flight; under the old quiesce gate SubmitLive would
// block until every in-flight episode finished (i.e. forever here, since
// the episode is released only after the submission returns), so the test
// is a deadlock detector for any reintroduced stop-the-world admission.
func TestSubmitLiveNonBlockingDuringEpisode(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	db := starDB(rng, 2048, 64)
	blocked := make(chan struct{})
	release := make(chan struct{})
	var hooked atomic.Bool
	opt := exec.DefaultOptions()
	opt.VectorSize = 32
	opt.Hooks = exec.Hooks{EpisodeStart: func(query.InstID, stem.Slot) {
		if hooked.CompareAndSwap(false, true) {
			close(blocked)
			<-release
		}
	}}
	qJoin := &query.Query{
		Rels:  []query.RelRef{{Table: "fact"}, {Table: "d1"}},
		Joins: []query.Join{{LeftAlias: "fact", LeftCol: "fk1", RightAlias: "d1", RightCol: "k"}},
	}
	qLive := singleRel("d2")
	var rec *retireRecorder
	b := query.NewStreamBatch(8)
	s, err := NewSession(b, db, Config{
		Exec: opt, Workers: 2, Streaming: true,
		OnRetire: func(qid int, st QueryStatus) { rec.onRetire(qid, st) },
	})
	if err != nil {
		t.Fatal(err)
	}
	rec = newRetireRecorder(s)
	join := streamRun(t, s)

	qa, err := s.SubmitLiveMeta(qJoin, SubmitMeta{})
	if err != nil {
		t.Fatal(err)
	}
	rec.track(qa)
	<-blocked // an episode of qa is now parked mid-flight

	sub := make(chan error, 1)
	var qb int
	go func() {
		var e error
		qb, e = s.SubmitLiveMeta(qLive, SubmitMeta{})
		sub <- e
	}()
	select {
	case e := <-sub:
		if e != nil {
			t.Fatalf("live submit failed: %v", e)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SubmitLive blocked behind an in-flight episode (stop-the-world admission regressed)")
	}
	rec.track(qb)

	close(release)
	s.CloseSubmit()
	join()
	if completed := rec.check(t, db, []*query.Query{qJoin, qLive}); completed != 2 {
		t.Errorf("completed = %d, want 2", completed)
	}
}

// TestGCReclaimsWhileWorkersBusy asserts retired-state reclamation makes
// progress while an episode is in flight. A hook parks the first episode
// on instance 0 (query qa), pinning its epoch; qb then drains and retires
// on instance 1, and the test requires qb's STeM entries to be swept and
// compacted away — and a concurrent GC quantum to be counted — while the
// instance-0 episode is still parked (workers never all idle).
func TestGCReclaimsWhileWorkersBusy(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	db := starDB(rng, 256, 64)
	blocked := make(chan struct{})
	release := make(chan struct{})
	var hooked atomic.Bool
	opt := exec.DefaultOptions()
	opt.VectorSize = 16
	opt.Hooks = exec.Hooks{EpisodeStart: func(inst query.InstID, _ stem.Slot) {
		if inst == 0 && hooked.CompareAndSwap(false, true) {
			close(blocked)
			<-release
		}
	}}
	qa, qb := singleRel("d2"), singleRel("d1") // instances 0 and 1, in submit order
	var rec *retireRecorder
	b := query.NewStreamBatch(8)
	s, err := NewSession(b, db, Config{
		Exec: opt, Workers: 2, Streaming: true,
		OnRetire: func(qid int, st QueryStatus) { rec.onRetire(qid, st) },
	})
	if err != nil {
		t.Fatal(err)
	}
	rec = newRetireRecorder(s)
	join := streamRun(t, s)

	ida, err := s.SubmitLiveMeta(qa, SubmitMeta{})
	if err != nil {
		t.Fatal(err)
	}
	rec.track(ida)
	<-blocked // qa's first episode parked; its epoch stays pinned
	quantaBefore := metrics.Default().GCConcurrentQuanta.Load()

	idb, err := s.SubmitLiveMeta(qb, SubmitMeta{})
	if err != nil {
		t.Fatal(err)
	}
	rec.track(idb)

	// qb drains on instance 1, retires, and must be garbage-collected by
	// the free worker while the instance-0 episode is still in flight.
	deadline := time.Now().Add(60 * time.Second)
	for {
		swept := s.Context().Stems[1].Len() == 0
		quanta := metrics.Default().GCConcurrentQuanta.Load()
		if swept && quanta > quantaBefore {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("GC made no progress while an episode was in flight: inst1 len = %d, concurrent quanta %d -> %d",
				s.Context().Stems[1].Len(), quantaBefore, quanta)
		}
		time.Sleep(time.Millisecond)
	}

	close(release)
	s.CloseSubmit()
	join()
	if completed := rec.check(t, db, []*query.Query{qa, qb}); completed != 2 {
		t.Errorf("completed = %d, want 2", completed)
	}
}

// TestStreamChurnRandomizedInterleavings is the -race property test:
// randomized submit/cancel jitter over a small query-ID pool forces
// admissions, retirements, GC passes, epoch-deferred reclamation and qid
// reuse to interleave with live episodes. No episode may dereference a
// reclaimed source or swept STeM state: under -race any such access
// trips the detector, and the oracle check catches silent corruption.
func TestStreamChurnRandomizedInterleavings(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	db := starDB(rng, 1500, 48)
	qs := starQueries(rng, 36)
	errCancel := errors.New("injected cancel")
	opt := exec.DefaultOptions()
	opt.VectorSize = 48
	var rec *retireRecorder
	b := query.NewStreamBatch(6) // small pool: qid reuse requires full GC churn
	s, err := NewSession(b, db, Config{
		Exec: opt, Workers: 4, Streaming: true,
		OnRetire: func(qid int, st QueryStatus) { rec.onRetire(qid, st) },
	})
	if err != nil {
		t.Fatal(err)
	}
	rec = newRetireRecorder(s)
	admitBefore := metrics.Default().AdmitLatency.Count()
	join := streamRun(t, s)

	tenants := []string{"", "a", "b"}
	for i, q := range qs {
		var qid int
		deadline := time.Now().Add(60 * time.Second)
		for {
			qid, err = s.SubmitLiveMeta(q, SubmitMeta{Tenant: tenants[i%len(tenants)], Weight: float64(1 + i%2)})
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("submission %d never admitted: %v", i, err)
			}
			time.Sleep(200 * time.Microsecond)
		}
		rec.track(qid)
		if rng.Intn(6) == 0 {
			s.CancelQuery(qid, errCancel) // races with completion; both outcomes legal
		}
		if rng.Intn(3) == 0 {
			time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
		}
	}
	s.CloseSubmit()
	join()

	completed := rec.check(t, db, qs)
	if completed == 0 {
		t.Error("no submission completed")
	}
	if got := metrics.Default().AdmitLatency.Count(); got <= admitBefore {
		t.Errorf("admission latency histogram recorded no samples (%d -> %d)", admitBefore, got)
	}
	t.Logf("churn: %d/%d completed", completed, len(qs))
}

// TestChaosAdmissionMidEpisodeWithFaults drives live admission through a
// fault storm: injected episode panics and STeM insertion failures land
// while queries are being submitted into the running pool. Quarantine
// must stay per-episode — surviving queries' counts remain exact — and
// every submission must still retire exactly once so the stream drains.
func TestChaosAdmissionMidEpisodeWithFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	db := starDB(rng, 800, 40)
	qs := starQueries(rng, 24)
	inj := faults.New(faults.Config{Seed: 11, PanicEvery: 31, InsertFailEvery: 41})
	opt := exec.DefaultOptions()
	opt.VectorSize = 32
	opt.Hooks = inj.Hooks()
	var rec *retireRecorder
	b := query.NewStreamBatch(8)
	s, err := NewSession(b, db, Config{
		Exec: opt, Workers: 3, Streaming: true,
		OnRetire: func(qid int, st QueryStatus) { rec.onRetire(qid, st) },
	})
	if err != nil {
		t.Fatal(err)
	}
	rec = newRetireRecorder(s)
	join := streamRun(t, s)

	for i, q := range qs {
		var qid int
		deadline := time.Now().Add(60 * time.Second)
		for {
			qid, err = s.SubmitLiveMeta(q, SubmitMeta{})
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("submission %d never admitted: %v", i, err)
			}
			time.Sleep(200 * time.Microsecond)
		}
		rec.track(qid)
		if rng.Intn(2) == 0 {
			time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
		}
	}
	s.CloseSubmit()
	res := join()

	if inj.Panics()+inj.InsertFails() == 0 {
		t.Fatal("no faults injected (rates too low for workload?)")
	}
	if len(res.Faults) == 0 {
		t.Error("session recorded no faults despite injection")
	}
	for _, f := range res.Faults {
		if len(f.Queries) == 0 {
			t.Error("fault with no affected queries")
		}
	}
	completed := rec.check(t, db, qs)
	t.Logf("chaos: %d/%d completed through %d panics, %d insert faults",
		completed, len(qs), inj.Panics(), inj.InsertFails())
}

// TestGCSweepRestartsAfterMidPassCompaction is the regression test for a
// wrong-results bug: a CompactLive queued behind an instance fence by one
// GC pass can fire (at fence drain, between quanta) while a LATER pass is
// mid-sweep of the same instance. The sweep cursor addresses entries by
// position and compaction repacks live entries to new positions, so
// entries that move below the cursor would keep the pass's retired bits
// forever — and once the query ID is recycled, those stale bits
// misattribute matches to the new query. The sweep must detect the repack
// (via the STeM's compact generation) and restart the instance.
//
// The test drives the GC cursor directly on an idle session: it populates
// an instance with more chunks than one quantum's budget, retires one of
// two queries, runs a single quantum (leaving the cursor mid-instance),
// fires CompactLive exactly as a draining fence would, then finishes the
// pass and asserts no entry still carries the retired query's bit.
func TestGCSweepRestartsAfterMidPassCompaction(t *testing.T) {
	s, _ := schedSession(t, 8, Config{})
	qa, err := s.SubmitLiveMeta(singleRel("d1"), SubmitMeta{})
	if err != nil {
		t.Fatal(err)
	}
	qb, err := s.SubmitLiveMeta(singleRel("d1"), SubmitMeta{})
	if err != nil {
		t.Fatal(err)
	}
	if scanOf(s, qa) != scanOf(s, qb) {
		t.Fatal("expected both queries to intern the same instance")
	}
	st := s.Context().Stems[scanOf(s, qa)]

	// Fill more chunks than gcChunkBudget so the first quantum stops
	// mid-instance. Entries alternate between the retiring query (qa) and
	// the surviving one (qb), so every chunk holds sweepable bits and the
	// first quantum's sweep makes the instance half dead — the shape that
	// queues the fenced compaction in production.
	setA, setB := bitset.New(8), bitset.New(8)
	setA.Add(qa)
	setB.Add(qb)
	countA, countB := 0, 0
	for i := 0; st.NumChunks() < gcChunkBudget+2; i++ {
		if i%2 == 0 {
			st.Insert(int32(i), nil, setA, 0)
			countA++
		} else {
			st.Insert(int32(i), nil, setB, 0)
			countB++
		}
	}

	s.CancelQuery(qa, errors.New("retire qa")) // outstanding == 0: retires immediately

	s.mu.Lock()
	s.gcQuantumLocked() // starts the pass and sweeps the first budget's worth of chunks
	if !s.gc.running || s.gc.inst != 0 || s.gc.chunk == 0 || s.gc.chunk >= st.NumChunks() {
		s.mu.Unlock()
		t.Fatalf("premise broken: pass not parked mid-instance (running=%v inst=%d chunk=%d/%d)",
			s.gc.running, s.gc.inst, s.gc.chunk, st.NumChunks())
	}
	// The fenced compaction fires between quanta, under the session mutex —
	// exactly how runFenceOpsLocked runs it when the instance's last
	// in-flight insert drains.
	st.CompactLive()
	for s.gc.running {
		s.gcQuantumLocked()
	}
	cbs := s.takeCallbacksLocked()
	s.mu.Unlock()
	s.runCallbacks(cbs)

	gotB := 0
	for idx := 0; idx < st.Len(); idx++ {
		_, qs := st.Entry(idx)
		if qs.Contains(qa) {
			t.Fatalf("entry %d still carries retired query %d's bit after the pass (sweep cursor skipped repacked entries)", idx, qa)
		}
		if qs.Contains(qb) {
			gotB++
		}
	}
	if gotB != countB {
		t.Errorf("live query lost entries across the mid-pass compaction: %d, want %d", gotB, countB)
	}
}
