package engine

import (
	"math/rand"
	"testing"

	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/job"
	"github.com/roulette-db/roulette/internal/monet"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/qat"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/sharing"
	"github.com/roulette-db/roulette/internal/storage"
	"github.com/roulette-db/roulette/internal/tpcds"
	"github.com/roulette-db/roulette/internal/workload"
)

// runRouLette executes qs on db under the given policy factory, returning
// per-query counts.
func runRouLette(t *testing.T, db *storage.Database, qs []*query.Query, mkPolicy func(*query.Batch, *exec.Context) policy.Policy) []int64 {
	t.Helper()
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	opt := exec.DefaultOptions()
	opt.CollectRows = false
	cfg := Config{Exec: opt}
	if mkPolicy != nil {
		ctx, err := exec.NewContext(b, db, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Policy = mkPolicy(b, ctx)
	}
	s, err := NewSession(b, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Counts
}

// TestAllEnginesAgreeOnTPCDS is the repository's central cross-engine
// equivalence check: RouLette under four policies, DBMS-V, and the
// MonetDB-style engine must produce identical SPJ counts for a generated
// TPC-DS workload.
func TestAllEnginesAgreeOnTPCDS(t *testing.T) {
	db := tpcds.Generate(0.05, 1)
	p := workload.DefaultParams()
	p.Seed = 7
	qs := workload.NewGenerator(p).Generate(12)

	qatCounts, _, err := qat.New(db).RunSerial(qs)
	if err != nil {
		t.Fatal(err)
	}
	monetCounts, _, err := monet.New(db).RunSerial(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qatCounts {
		if qatCounts[i] != monetCounts[i] {
			t.Fatalf("query %d: qat %d != monet %d", i, qatCounts[i], monetCounts[i])
		}
	}

	check := func(name string, got []int64) {
		for i := range got {
			if got[i] != qatCounts[i] {
				t.Errorf("%s: query %d count %d, qat %d", name, i, got[i], qatCounts[i])
			}
		}
	}

	check("learned", runRouLette(t, db, qs, nil))
	check("greedy", runRouLette(t, db, qs, func(b *query.Batch, ctx *exec.Context) policy.Policy {
		return policy.NewGreedy(b, ctx.NumSelOps())
	}))
	check("stitch&share", runRouLette(t, db, qs, func(b *query.Batch, ctx *exec.Context) policy.Policy {
		orders, err := sharing.StitchShareOrders(b, db)
		if err != nil {
			t.Fatal(err)
		}
		return policy.NewStatic(orders, ctx.NumSelOps())
	}))
	check("match&share", runRouLette(t, db, qs, func(b *query.Batch, ctx *exec.Context) policy.Policy {
		return policy.NewStatic(sharing.MatchShareOrders(b, db, nil), ctx.NumSelOps())
	}))
}

// TestEnginesAgreeOnJOB repeats the equivalence check on the skewed,
// correlated JOB substrate with deep aliased queries.
func TestEnginesAgreeOnJOB(t *testing.T) {
	if testing.Short() {
		t.Skip("JOB equivalence is slow")
	}
	db := job.Generate(1)
	all := job.Queries(job.NumQueries, 2)
	rng := rand.New(rand.NewSource(3))
	qs := workload.SampleBatch(rng, all, 8)

	qatCounts, _, err := qat.New(db).RunSerial(qs)
	if err != nil {
		t.Fatal(err)
	}
	got := runRouLette(t, db, qs, nil)
	for i := range got {
		if got[i] != qatCounts[i] {
			t.Errorf("JOB query %s: roulette %d, qat %d", qs[i].Tag, got[i], qatCounts[i])
		}
	}
}

// TestSharedBeatsQaaTOnJoinTuples sanity-checks the headline effect: for a
// batch of overlapping queries, executing them together produces fewer
// intermediate join tuples than the sum of solo executions.
func TestSharedBeatsQaaTOnJoinTuples(t *testing.T) {
	db := tpcds.Generate(0.05, 2)
	p := workload.DefaultParams()
	p.Seed = 11
	qs := workload.NewGenerator(p).Generate(16)

	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	opt := exec.DefaultOptions()
	opt.CollectRows = false
	s, err := NewSession(b, db, Config{Exec: opt})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	var solo int64
	for _, q := range qs {
		sb, err := query.Compile([]*query.Query{{
			Tag: q.Tag, Rels: q.Rels, Joins: q.Joins, Filters: q.Filters, Agg: q.Agg,
		}})
		if err != nil {
			t.Fatal(err)
		}
		ss, err := NewSession(sb, db, Config{Exec: opt})
		if err != nil {
			t.Fatal(err)
		}
		sr, err := ss.Run()
		if err != nil {
			t.Fatal(err)
		}
		solo += sr.JoinTuples
	}
	if res.JoinTuples >= solo {
		t.Errorf("shared join tuples %d not below query-at-a-time total %d", res.JoinTuples, solo)
	}
	t.Logf("shared=%d solo=%d ratio=%.2fx", res.JoinTuples, solo, float64(solo)/float64(res.JoinTuples))
}
