package engine

import (
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
	"github.com/roulette-db/roulette/internal/value"
)

// oracleCount evaluates one SPJ query by brute force: enumerate the cross
// product of its relations restricted by filters and join predicates. Used
// as ground truth in correctness tests; exponential, so only for tiny data.
func oracleCount(db *storage.Database, q *query.Query) int64 {
	tables := make([]*storage.Table, len(q.Rels))
	alias := make(map[string]int, len(q.Rels))
	for i, r := range q.Rels {
		tables[i] = db.MustTable(r.Table)
		a := r.Alias
		if a == "" {
			a = r.Table
		}
		alias[a] = i
	}

	// Pre-filter each relation's row set. All of a query's filters combine
	// by conjunction; Filter.Match is the reference typed semantics (NULL
	// never passes a range or string predicate).
	rows := make([][]int, len(q.Rels))
	for i, t := range tables {
		for r := 0; r < t.NumRows(); r++ {
			ok := true
			for _, f := range q.Filters {
				a := f.Alias
				if alias[a] != i {
					continue
				}
				var dict *value.Dict
				if c := t.Rel.Column(f.Col); c != nil {
					dict = c.Dict
				}
				if !f.Match(t.Col(f.Col)[r], dict) {
					ok = false
					break
				}
			}
			if ok {
				rows[i] = append(rows[i], r)
			}
		}
	}

	var count int64
	pick := make([]int, len(q.Rels))
	var rec func(depth int)
	rec = func(depth int) {
		if depth == len(q.Rels) {
			for _, j := range q.Joins {
				li, ri := alias[j.LeftAlias], alias[j.RightAlias]
				lv := tables[li].Col(j.LeftCol)[pick[li]]
				rv := tables[ri].Col(j.RightCol)[pick[ri]]
				if lv != rv || lv == value.NullCode {
					return // NULL join keys never match, not even each other
				}
			}
			count++
			return
		}
		for _, r := range rows[depth] {
			pick[depth] = r
			rec(depth + 1)
		}
	}
	rec(0)
	return count
}
