package engine

import (
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
)

// oracleCount evaluates one SPJ query by brute force: enumerate the cross
// product of its relations restricted by filters and join predicates. Used
// as ground truth in correctness tests; exponential, so only for tiny data.
func oracleCount(db *storage.Database, q *query.Query) int64 {
	tables := make([]*storage.Table, len(q.Rels))
	alias := make(map[string]int, len(q.Rels))
	for i, r := range q.Rels {
		tables[i] = db.MustTable(r.Table)
		a := r.Alias
		if a == "" {
			a = r.Table
		}
		alias[a] = i
	}

	// Pre-filter each relation's row set.
	rows := make([][]int, len(q.Rels))
	for i, t := range tables {
		for r := 0; r < t.NumRows(); r++ {
			ok := true
			for _, f := range q.Filters {
				a := f.Alias
				if alias[a] != i {
					continue
				}
				v := t.Col(f.Col)[r]
				if v < f.Lo || v > f.Hi {
					ok = false
					break
				}
			}
			if ok {
				rows[i] = append(rows[i], r)
			}
		}
	}

	var count int64
	pick := make([]int, len(q.Rels))
	var rec func(depth int)
	rec = func(depth int) {
		if depth == len(q.Rels) {
			for _, j := range q.Joins {
				li, ri := alias[j.LeftAlias], alias[j.RightAlias]
				lv := tables[li].Col(j.LeftCol)[pick[li]]
				rv := tables[ri].Col(j.RightCol)[pick[ri]]
				if lv != rv {
					return
				}
			}
			count++
			return
		}
		for _, r := range rows[depth] {
			pick[depth] = r
			rec(depth + 1)
		}
	}
	rec(0)
	return count
}
