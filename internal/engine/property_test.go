package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/qat"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
)

// randomSchemaDB builds a random star/snowflake database: one fact with
// 2-4 dimension FKs, each dimension optionally with a sub-dimension, random
// sizes and value columns.
func randomSchemaDB(rng *rand.Rand) (*storage.Database, []string, map[string]string) {
	nDims := 2 + rng.Intn(3)
	factCols := []string{"v"}
	dims := make([]string, nDims)
	subOf := map[string]string{} // dim -> sub-dimension name (if any)
	for d := 0; d < nDims; d++ {
		dims[d] = "d" + string(rune('a'+d))
		factCols = append(factCols, "fk_"+dims[d])
	}
	rels := []*catalog.Relation{catalog.NewRelation("fact", factCols...)}
	for _, d := range dims {
		cols := []string{"k", "v"}
		if rng.Intn(2) == 0 {
			sub := d + "_sub"
			subOf[d] = sub
			cols = append(cols, "fk_sub")
			rels = append(rels, catalog.NewRelation(sub, "k", "v"))
		}
		rels = append(rels, catalog.NewRelation(d, cols...))
	}
	sch := catalog.NewSchema(rels...)
	db := storage.NewDatabase(sch)

	dimRows := 10 + rng.Intn(30)
	subRows := 5 + rng.Intn(15)
	factRows := 100 + rng.Intn(200)

	for _, d := range dims {
		t := storage.NewTable(sch.Relation(d), dimRows)
		for i := 0; i < dimRows; i++ {
			t.Col("k")[i] = int64(i)
			t.Col("v")[i] = int64(rng.Intn(50))
		}
		if sub, ok := subOf[d]; ok {
			st := storage.NewTable(sch.Relation(sub), subRows)
			for i := 0; i < subRows; i++ {
				st.Col("k")[i] = int64(i)
				st.Col("v")[i] = int64(rng.Intn(50))
			}
			db.Put(st)
			fk := t.Col("fk_sub")
			for i := range fk {
				fk[i] = int64(rng.Intn(subRows))
			}
		}
		db.Put(t)
	}
	ft := storage.NewTable(sch.Relation("fact"), factRows)
	ft.Col("v")
	for i := 0; i < factRows; i++ {
		ft.Col("v")[i] = int64(rng.Intn(50))
		for _, d := range dims {
			ft.Col("fk_" + d)[i] = int64(rng.Intn(dimRows))
		}
	}
	db.Put(ft)
	return db, dims, subOf
}

// randomQueryOn draws a random query over the schema: a subset of
// dimensions (optionally their sub-dimensions) and random filters.
func randomQueryOn(rng *rand.Rand, dims []string, subOf map[string]string) *query.Query {
	q := &query.Query{Rels: []query.RelRef{{Table: "fact"}}}
	perm := rng.Perm(len(dims))
	n := 1 + rng.Intn(len(dims))
	for _, di := range perm[:n] {
		d := dims[di]
		q.Rels = append(q.Rels, query.RelRef{Table: d})
		q.Joins = append(q.Joins, query.Join{LeftAlias: "fact", LeftCol: "fk_" + d, RightAlias: d, RightCol: "k"})
		if sub, ok := subOf[d]; ok && rng.Intn(2) == 0 {
			q.Rels = append(q.Rels, query.RelRef{Table: sub})
			q.Joins = append(q.Joins, query.Join{LeftAlias: d, LeftCol: "fk_sub", RightAlias: sub, RightCol: "k"})
		}
	}
	// Random filters on any present relation's v column.
	for _, r := range q.Rels {
		if rng.Intn(3) != 0 {
			continue
		}
		alias := r.Alias
		if alias == "" {
			alias = r.Table
		}
		lo := int64(rng.Intn(40))
		q.Filters = append(q.Filters, query.Filter{Alias: alias, Col: "v", Lo: lo, Hi: lo + int64(rng.Intn(20))})
	}
	// Occasionally close a cycle between two dimensions through their v
	// columns (exercises residual predicates).
	if n >= 2 && rng.Intn(3) == 0 {
		a, b := dims[perm[0]], dims[perm[1]]
		q.Joins = append(q.Joins, query.Join{LeftAlias: a, LeftCol: "v", RightAlias: b, RightCol: "v"})
	}
	return q
}

// TestPropertyEngineMatchesBaselines is the repository's randomized
// correctness property: on random schemas, data, and query batches —
// including self-closing cycles, sub-dimensions and random filters —
// RouLette's shared adaptive execution produces exactly the per-query
// counts of the query-at-a-time engine.
func TestPropertyEngineMatchesBaselines(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db, dims, subOf := randomSchemaDB(rng)
		nQ := 1 + rng.Intn(10)
		qs := make([]*query.Query, nQ)
		for i := range qs {
			qs[i] = randomQueryOn(rng, dims, subOf)
		}
		b, err := query.Compile(qs)
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		opt := exec.DefaultOptions()
		opt.VectorSize = 32 + rng.Intn(100)
		opt.CollectRows = false
		opt.Pruning = rng.Intn(2) == 0
		opt.AdaptiveProjections = rng.Intn(2) == 0
		s, err := NewSession(b, db, Config{Exec: opt, Workers: 1 + rng.Intn(3)})
		if err != nil {
			t.Logf("seed %d: session: %v", seed, err)
			return false
		}
		res, err := s.Run()
		if err != nil {
			t.Logf("seed %d: run: %v", seed, err)
			return false
		}
		want, _, err := qat.New(db).RunSerial(qs)
		if err != nil {
			t.Logf("seed %d: qat: %v", seed, err)
			return false
		}
		for i := range want {
			if res.Counts[i] != want[i] {
				t.Logf("seed %d: query %d: roulette %d, qat %d", seed, i, res.Counts[i], want[i])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
