package engine

import (
	"time"

	"github.com/roulette-db/roulette/internal/admission"
	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/metrics"
	"github.com/roulette-db/roulette/internal/obs"
	"github.com/roulette-db/roulette/internal/query"
)

// This file is the tenant-aware half of the streaming scheduler: weighted-
// fair episode selection across tenants, priority lanes with deadline
// urgency, mid-flight shedding of queries whose deadline expired, and the
// per-tenant starvation watchdog. Everything here runs under the session
// mutex in the gaps between episodes — the episode hot path is untouched
// and the accounting is array reads/writes with no allocation.
//
// Scheduling model: each query carries a tenant slot, a priority lane and
// an optional absolute deadline (SubmitMeta). Episodes charge every active
// query's tenant cost/weight virtual time; scan selection picks, among
// incomplete scans, the one with the best (lane desc, rank asc, tenant
// virtual time asc) key. With a single tenant and no priorities every key
// ties and the scheduler degenerates to the original rank + round-robin
// order, so batch-identical behaviour is preserved for the common case.

// SubmitMeta carries the admission metadata of one live submission.
// The zero value is a default-tenant, no-deadline, priority-0 submission.
type SubmitMeta struct {
	// Tenant keys weighted-fair scheduling and the starvation watchdog.
	// Empty is the default tenant.
	Tenant string
	// Weight is the tenant's fair-share weight; <= 0 means 1. The weight
	// of a tenant is set by its first live submission and stable after.
	Weight float64
	// Priority is the query's scheduling lane; higher lanes are always
	// served before lower ones. 0 is the default lane.
	Priority int
	// Deadline, when non-zero, is the query's absolute deadline: episodes
	// near it get an urgency boost, and once it passes the query is shed
	// with an admission.ShedError instead of consuming more work.
	Deadline time.Time
	// Cost is the query's estimated execution cost (informational; budget
	// accounting lives in the admission controller, outside the engine).
	Cost float64
}

// tenantState is one tenant's scheduler accounting.
type tenantState struct {
	name        string
	weight      float64
	vtime       float64 // weighted service received (cost units / weight)
	lastService int64   // episode counter value at last service
	live        int     // admitted, not yet retired queries
	starved     bool    // watchdog-boosted until next service
}

// Scheduling boosts, in lane units. Priorities are user lanes; urgency
// outranks any user lane; a starvation boost outranks urgency so a starved
// tenant is always served next.
const (
	laneUrgent  = 1 << 16
	laneStarved = 1 << 20
)

// Scheduler defaults.
const (
	defaultDeadlineUrgency = time.Millisecond
	defaultStarveEpisodes  = 512
)

// initSchedLocked sizes the tenant scheduler for a streaming session.
func (s *Session) initSchedLocked(qcap int) {
	s.tenantIDs = map[string]int{"": 0}
	s.tenants = []tenantState{{name: "", weight: 1}}
	s.qTenant = make([]int32, qcap)
	s.qPriority = make([]int32, qcap)
	s.qDeadline = make([]int64, qcap)
	s.qUrgent = bitset.New(qcap)
	if s.cfg.DeadlineUrgency <= 0 {
		s.cfg.DeadlineUrgency = defaultDeadlineUrgency
	}
	if s.cfg.StarveEpisodes <= 0 {
		s.cfg.StarveEpisodes = defaultStarveEpisodes
	}
}

// SubmitLive merges one query into the running session with default
// admission metadata. See SubmitLiveMeta.
func (s *Session) SubmitLive(q *query.Query) (int, error) {
	return s.SubmitLiveMeta(q, SubmitMeta{})
}

// registerMetaLocked records a live submission's scheduling metadata.
func (s *Session) registerMetaLocked(qid int, m SubmitMeta) {
	tid, ok := s.tenantIDs[m.Tenant]
	if !ok {
		tid = len(s.tenants)
		w := m.Weight
		if w <= 0 {
			w = 1
		}
		s.tenants = append(s.tenants, tenantState{name: m.Tenant, weight: w})
		s.tenantIDs[m.Tenant] = tid
	}
	ts := &s.tenants[tid]
	if ts.live == 0 {
		// A tenant (re)joining service starts at the current virtual time
		// floor: it competes fairly from now on instead of cashing in the
		// service it never requested while idle.
		if floor := s.minActiveVtimeLocked(); ts.vtime < floor {
			ts.vtime = floor
		}
		ts.lastService = s.episode
		ts.starved = false
	}
	ts.live++
	s.qTenant[qid] = int32(tid)
	s.qPriority[qid] = int32(m.Priority)
	if !m.Deadline.IsZero() {
		ns := m.Deadline.UnixNano()
		s.qDeadline[qid] = ns
		s.deadlineLive++
		if s.nextDeadline == 0 || ns < s.nextDeadline {
			s.nextDeadline = ns
		}
	} else {
		s.qDeadline[qid] = 0
	}
}

// minActiveVtimeLocked returns the smallest virtual time among tenants with
// live queries (0 when none).
func (s *Session) minActiveVtimeLocked() float64 {
	min, found := 0.0, false
	for i := range s.tenants {
		ts := &s.tenants[i]
		if ts.live == 0 {
			continue
		}
		if !found || ts.vtime < min {
			min, found = ts.vtime, true
		}
	}
	return min
}

// chargeServiceLocked charges one episode's service to a query's tenant
// (called from takeVectorLocked for every active query; n is the vector
// size). Array indexing only — no allocation, no map access.
func (s *Session) chargeServiceLocked(qid, n int) {
	if s.qTenant == nil {
		return
	}
	ts := &s.tenants[s.qTenant[qid]]
	ts.vtime += float64(n) / ts.weight
	ts.lastService = s.episode
	ts.starved = false
}

// releaseMetaLocked drops a query's scheduling metadata at retirement.
func (s *Session) releaseMetaLocked(qid int) {
	if s.qTenant == nil {
		return
	}
	ts := &s.tenants[s.qTenant[qid]]
	if ts.live > 0 {
		ts.live--
	}
	if s.qDeadline[qid] != 0 {
		s.qDeadline[qid] = 0
		if s.deadlineLive > 0 {
			s.deadlineLive--
		}
	}
	s.qPriority[qid] = 0
	s.qUrgent.Remove(qid)
}

// pickScanLocked is the streaming scan selector: it sheds expired-deadline
// queries, runs the starvation watchdog, and returns the incomplete scan
// with the best (lane desc, rank asc, tenant vtime asc) key, breaking ties
// round-robin. Returns -1 when every scan is drained.
func (s *Session) pickScanLocked() int {
	var nowNs int64
	if s.deadlineLive > 0 {
		nowNs = time.Now().UnixNano()
		if s.nextDeadline != 0 && nowNs >= s.nextDeadline {
			s.shedExpiredLocked(nowNs)
		}
	}
	if s.episode&63 == 0 {
		s.starvationSweepLocked()
	}

	best, n := -1, len(s.scans)
	var bestLane int64
	var bestV float64
	var bestRank int
	urgentBefore := int64(0)
	if nowNs != 0 {
		urgentBefore = nowNs + int64(s.cfg.DeadlineUrgency)
	}
	for off := 0; off < n; off++ {
		// Starting at the round-robin cursor makes "all keys equal" (single
		// tenant, no lanes) degenerate to the original rotation.
		i := (s.rrCursor + off) % n
		st := s.scans[i]
		if st.done() || s.instFence[i] {
			// Fenced instances have structural STeM ops queued behind their
			// in-flight episodes; starting another would extend the fence.
			continue
		}
		lane, minV := s.scanKeyLocked(st, urgentBefore)
		// Key order: lane (priority + boosts), tenant virtual time, scan
		// rank. With one tenant every vtime ties, so rank (dimension tables
		// first, pruning order §5.2) decides exactly as in batch mode; with
		// several, fair-share dominates rank so a tenant cannot be crowded
		// out by the shape of another tenant's join graphs.
		if best == -1 || lane > bestLane ||
			(lane == bestLane && (minV < bestV ||
				(minV == bestV && st.rank < bestRank))) {
			best, bestLane, bestV, bestRank = i, lane, minV, st.rank
		}
	}
	if best >= 0 {
		s.rrCursor = best + 1
	}
	return best
}

// scanKeyLocked computes one scan's scheduling key over its active queries:
// the maximum boosted lane and the minimum tenant virtual time.
func (s *Session) scanKeyLocked(st *scanState, urgentBefore int64) (lane int64, minV float64) {
	lane, minV = 0, -1
	first := true
	st.active.ForEach(func(qid int) {
		ts := &s.tenants[s.qTenant[qid]]
		l := int64(s.qPriority[qid])
		if ts.starved {
			l += laneStarved
		}
		if d := s.qDeadline[qid]; d != 0 && urgentBefore != 0 && d <= urgentBefore {
			l += laneUrgent
			if !s.qUrgent.Contains(qid) {
				// First time this query crosses into the urgency window:
				// record the promotion once (the lane boost itself recurs
				// every selection until the query drains or is shed).
				s.qUrgent.Add(qid)
				s.recCtl(obs.KLanePromote, int64(qid), d, 0, 0)
				if s.cfg.Trace != nil {
					s.cfg.Trace.AddEvent("lane_promote", ts.name, qid)
				}
			}
		}
		if first || l > lane {
			lane = l
		}
		if first || ts.vtime < minV {
			minV = ts.vtime
		}
		first = false
	})
	return lane, minV
}

// shedExpiredLocked fails every live query whose deadline has passed with a
// typed ShedError: its bits leave the scan active sets immediately, it
// retires as soon as its in-flight episodes drain, and its partial count
// stays available. The next-deadline cursor is recomputed over survivors.
func (s *Session) shedExpiredLocked(nowNs int64) {
	next := int64(0)
	for qid := 0; qid < s.b.QCap(); qid++ {
		d := s.qDeadline[qid]
		if d == 0 {
			continue
		}
		if d > nowNs {
			if next == 0 || d < next {
				next = d
			}
			continue
		}
		if !s.admitted.Contains(qid) || s.failed.Contains(qid) || s.retired.Contains(qid) ||
			(s.gc.running && s.gc.active.Contains(qid)) {
			continue
		}
		ts := &s.tenants[s.qTenant[qid]]
		s.failed.Add(qid)
		s.failErr[qid] = &admission.ShedError{
			Tenant:   ts.name,
			Deadline: time.Unix(0, d),
		}
		for _, inst := range s.b.QueryInsts(qid) {
			s.scans[inst].active.Remove(qid)
		}
		s.shedCount++
		metrics.Default().DeadlineSheds.Add(1)
		s.recCtl(obs.KShed, int64(qid), 1, 0, 0)
		if s.cfg.Trace != nil {
			s.cfg.Trace.AddEvent("shed", ts.name, qid)
		}
		s.maybeRetireLocked(qid)
	}
	s.nextDeadline = next
}

// starvationSweepLocked boosts tenants that hold live queries but have not
// been scheduled for cfg.StarveEpisodes episodes. A starved tenant's scans
// jump every lane until the tenant is next served (priority inversion
// guard: sustained high-priority load cannot freeze a low-priority tenant
// out forever).
func (s *Session) starvationSweepLocked() {
	if s.tenants == nil {
		return
	}
	thresh := int64(s.cfg.StarveEpisodes)
	for i := range s.tenants {
		ts := &s.tenants[i]
		if ts.live > 0 && !ts.starved && s.episode-ts.lastService > thresh {
			ts.starved = true
			s.starveBoosts++
			metrics.Default().StarvationBoosts.Add(1)
		}
	}
}

// TenantSched is one tenant's scheduler snapshot (observability).
type TenantSched struct {
	Tenant      string
	Weight      float64
	VirtualTime float64
	Live        int
	Starved     bool
}

// SchedSnapshot returns the per-tenant scheduler state of a streaming
// session (nil for batch sessions).
func (s *Session) SchedSnapshot() []TenantSched {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tenants == nil {
		return nil
	}
	out := make([]TenantSched, len(s.tenants))
	for i := range s.tenants {
		ts := &s.tenants[i]
		out[i] = TenantSched{
			Tenant: ts.name, Weight: ts.weight, VirtualTime: ts.vtime,
			Live: ts.live, Starved: ts.starved,
		}
	}
	return out
}
