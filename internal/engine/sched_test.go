package engine

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/roulette-db/roulette/internal/admission"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
)

// schedSession builds an idle streaming session (no worker pool) over the
// star schema, for driving the scheduler's locked entry points directly.
func schedSession(t *testing.T, qcap int, cfg Config) (*Session, *storage.Database) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	db := starDB(rng, 4096, 64)
	cfg.Streaming = true
	if cfg.Policy == nil {
		cfg.Policy = policy.NewRandom(1)
	}
	b := query.NewStreamBatch(qcap)
	s, err := NewSession(b, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, db
}

// singleRel returns a one-relation count(*) query over the given table.
func singleRel(table string) *query.Query {
	return &query.Query{Rels: []query.RelRef{{Table: table}}}
}

// scanOf returns the scan index of qid's only instance.
func scanOf(s *Session, qid int) int {
	insts := s.b.QueryInsts(qid)
	if len(insts) != 1 {
		panic("singleRel expected")
	}
	return int(insts[0])
}

// drive picks a scan and charges one vector of service to every query
// active on it, mimicking takeVectorLocked's accounting without executing.
func drive(s *Session, n int) int {
	best := s.pickScanLocked()
	if best < 0 {
		return best
	}
	s.scans[best].active.ForEach(func(qid int) { s.chargeServiceLocked(qid, n) })
	s.episode++
	return best
}

func TestSchedWeightedFairShare(t *testing.T) {
	s, _ := schedSession(t, 8, Config{})
	qa, err := s.SubmitLiveMeta(singleRel("d1"), SubmitMeta{Tenant: "a", Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	qb, err := s.SubmitLiveMeta(singleRel("d2"), SubmitMeta{Tenant: "b", Weight: 3})
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := scanOf(s, qa), scanOf(s, qb)

	s.mu.Lock()
	served := map[int]int{}
	for i := 0; i < 400; i++ {
		best := drive(s, 64)
		if best != sa && best != sb {
			t.Fatalf("picked unexpected scan %d", best)
		}
		served[best]++
	}
	s.mu.Unlock()
	// Weight 3 vs 1: tenant b should get ~3x the service of tenant a.
	ratio := float64(served[sb]) / float64(served[sa])
	if ratio < 2.0 || ratio > 4.5 {
		t.Errorf("service ratio = %.2f (a=%d, b=%d), want ~3", ratio, served[sa], served[sb])
	}
}

func TestSchedPriorityLane(t *testing.T) {
	s, _ := schedSession(t, 8, Config{})
	lo, err := s.SubmitLiveMeta(singleRel("d1"), SubmitMeta{Tenant: "lo"})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := s.SubmitLiveMeta(singleRel("d2"), SubmitMeta{Tenant: "hi", Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	sHi := scanOf(s, hi)
	_ = lo

	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < 20; i++ {
		if best := drive(s, 64); best != sHi {
			t.Fatalf("pick %d chose scan %d, want high-priority scan %d", i, best, sHi)
		}
	}
}

func TestSchedDeadlineUrgencyBoost(t *testing.T) {
	s, _ := schedSession(t, 8, Config{})
	if _, err := s.SubmitLiveMeta(singleRel("d1"), SubmitMeta{Tenant: "hi", Priority: 9}); err != nil {
		t.Fatal(err)
	}
	// Low priority, but its deadline is inside the urgency window: the
	// urgent-lane boost must outrank any user priority.
	urgent, err := s.SubmitLiveMeta(singleRel("d2"), SubmitMeta{
		Tenant: "urgent", Deadline: time.Now().Add(500 * time.Microsecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	sUrgent := scanOf(s, urgent)

	s.mu.Lock()
	defer s.mu.Unlock()
	if best := drive(s, 64); best != sUrgent {
		t.Fatalf("picked scan %d, want deadline-urgent scan %d", best, sUrgent)
	}
}

func TestSchedExpiredDeadlineShed(t *testing.T) {
	var retiredQ []int
	var retiredErr []error
	s, _ := schedSession(t, 8, Config{
		OnRetire: func(qid int, st QueryStatus) {
			retiredQ = append(retiredQ, qid)
			retiredErr = append(retiredErr, st.Err)
		},
	})
	keep, err := s.SubmitLiveMeta(singleRel("d1"), SubmitMeta{Tenant: "keep"})
	if err != nil {
		t.Fatal(err)
	}
	dead, err := s.SubmitLiveMeta(singleRel("d2"), SubmitMeta{
		Tenant: "late", Deadline: time.Now().Add(-time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}

	s.mu.Lock()
	best := s.pickScanLocked()
	if best != scanOf(s, keep) {
		t.Errorf("picked scan %d, want surviving query's scan %d", best, scanOf(s, keep))
	}
	if !s.failed.Contains(dead) {
		t.Error("expired query not marked failed")
	}
	if s.shedCount != 1 {
		t.Errorf("shedCount = %d, want 1", s.shedCount)
	}
	if s.deadlineLive != 0 || s.nextDeadline != 0 {
		t.Errorf("deadline cursor not cleared: live=%d next=%d", s.deadlineLive, s.nextDeadline)
	}
	cbs := s.takeCallbacksLocked()
	s.mu.Unlock()
	s.runCallbacks(cbs)

	if len(retiredQ) != 1 || retiredQ[0] != dead {
		t.Fatalf("retired queries = %v, want [%d]", retiredQ, dead)
	}
	var se *admission.ShedError
	if !errors.As(retiredErr[0], &se) || se.AtSubmit {
		t.Fatalf("shed error = %v, want mid-flight *ShedError", retiredErr[0])
	}
	if !errors.Is(retiredErr[0], admission.ErrDeadlineShed) {
		t.Error("shed error does not match ErrDeadlineShed")
	}
}

func TestSchedStarvationWatchdog(t *testing.T) {
	s, _ := schedSession(t, 8, Config{StarveEpisodes: 16})
	if _, err := s.SubmitLiveMeta(singleRel("d1"), SubmitMeta{Tenant: "hog", Priority: 7}); err != nil {
		t.Fatal(err)
	}
	starvedQ, err := s.SubmitLiveMeta(singleRel("d2"), SubmitMeta{Tenant: "meek"})
	if err != nil {
		t.Fatal(err)
	}
	sMeek := scanOf(s, starvedQ)

	s.mu.Lock()
	defer s.mu.Unlock()
	// The hog's priority lane wins every pick until the watchdog fires.
	for i := 0; i < 100; i++ {
		if best := drive(s, 64); best == sMeek {
			if s.starveBoosts == 0 {
				t.Fatalf("meek tenant served at pick %d without a starvation boost", i)
			}
			if i < 16 {
				t.Fatalf("watchdog fired after only %d episodes (threshold 16)", i)
			}
			// Service clears the boost; the hog resumes until the next sweep.
			tid := s.tenantIDs["meek"]
			if s.tenants[tid].starved {
				t.Error("starved flag not cleared by service")
			}
			return
		}
	}
	t.Fatal("meek tenant never served: starvation watchdog did not fire")
}

// TestSchedStepNoAlloc guards the acceptance criterion that admission
// accounting adds no allocation to the steady-state episode step: scan
// selection (including the deadline check path) and service charging are
// array reads/writes only.
func TestSchedStepNoAlloc(t *testing.T) {
	s, _ := schedSession(t, 8, Config{})
	qa, err := s.SubmitLiveMeta(singleRel("d1"), SubmitMeta{Tenant: "a", Weight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitLiveMeta(singleRel("d2"), SubmitMeta{
		Tenant: "b", Deadline: time.Now().Add(time.Hour),
	}); err != nil {
		t.Fatal(err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	allocs := testing.AllocsPerRun(200, func() {
		if s.pickScanLocked() < 0 {
			t.Fatal("no scan to pick")
		}
		s.chargeServiceLocked(qa, 1024)
		s.episode++
	})
	if allocs != 0 {
		t.Errorf("scheduler step allocates %.1f objects/op, want 0", allocs)
	}
}

func TestSchedVtimeFloorOnRejoin(t *testing.T) {
	s, _ := schedSession(t, 8, Config{})
	qa, err := s.SubmitLiveMeta(singleRel("d1"), SubmitMeta{Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}

	s.mu.Lock()
	// Tenant a accumulates service, then drains.
	s.chargeServiceLocked(qa, 1<<20)
	va := s.tenants[s.tenantIDs["a"]].vtime
	s.releaseMetaLocked(qa)
	s.mu.Unlock()

	// A late joiner must start at the floor (a's vtime, the only tenant),
	// not at 0 — otherwise it would cash in service it never requested.
	qb, err := s.SubmitLiveMeta(singleRel("d2"), SubmitMeta{Tenant: "b"})
	if err != nil {
		t.Fatal(err)
	}
	_ = qb
	s.mu.Lock()
	defer s.mu.Unlock()
	vb := s.tenants[s.tenantIDs["b"]].vtime
	if vb != 0 {
		t.Errorf("sole-active joiner vtime = %v, want 0 (no active tenants)", vb)
	}
	// And when a rejoins while b is active, a is floored to b's vtime.
	s.chargeServiceLocked(qb, 4096)
	qa2, err2 := s.b.Extend(singleRel("d1"))
	_ = qa2
	if err2 != nil {
		t.Fatal(err2)
	}
	s.b.TakeDelta()
	s.registerMetaLocked(qa2, SubmitMeta{Tenant: "a"})
	floored := s.tenants[s.tenantIDs["a"]].vtime
	want := s.tenants[s.tenantIDs["b"]].vtime
	if floored < want || floored < va {
		t.Errorf("rejoining tenant vtime = %v, want >= max(floor %v)", floored, want)
	}
}
