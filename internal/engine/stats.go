package engine

import (
	"time"

	"github.com/roulette-db/roulette/internal/metrics"
)

// OpClassStats describes one operator class's aggregate work. Tuples is the
// class's natural output unit: survivors for filters, entries for builds,
// join outputs for probes, and routed rows for routers.
type OpClassStats struct {
	Invocations int64 // operator applications (one operator × one vector)
	Tuples      int64
	Nanos       int64 // cumulative wall time attributed to the class
}

// QueryStats describes one query's share of the batch.
type QueryStats struct {
	Episodes  int64 // episodes whose active set included the query
	Tuples    int64 // SPJ result tuples routed to the query's source
	Elapsed   time.Duration
	Completed bool
}

// StemStats describes one instance's STeM traffic.
type StemStats struct {
	Table    string
	Entries  int64 // entries resident at the end of the run
	Inserts  int64
	Probes   int64 // hash-lookup probe calls against this STeM
	Matches  int64 // match tuples emitted by those probes
	EstBytes int64
}

// PolicyStats describes the learned policy's behaviour over the run.
// Explores/Exploits are zero for policies without decision counters.
type PolicyStats struct {
	QStates      int   // explored (state, action) entries
	Explores     int64 // ε-random decisions
	Exploits     int64 // greedy decisions
	PlanSwitches int64 // per-instance episode plan-signature changes
}

// SharingStats quantifies multi-query work sharing: Factor() is the share
// of operator invocations that served more than one query.
type SharingStats struct {
	SharedOps     int64
	TotalOps      int64
	QueriesServed int64 // sum of queries served across invocations
}

// Factor returns SharedOps/TotalOps (0 with no invocations).
func (s SharingStats) Factor() float64 {
	if s.TotalOps == 0 {
		return 0
	}
	return float64(s.SharedOps) / float64(s.TotalOps)
}

// BatchStats is the engine-level execution breakdown for one finished run,
// collected only under Config.Exec.CollectStats.
type BatchStats struct {
	Queries []QueryStats

	Filters   OpClassStats // grouped filters + prune filters (selection phase)
	Builds    OpClassStats // STeM inserts
	Probes    OpClassStats // STeM probe nodes
	RouteSels OpClassStats // routing selections (time counted under Probes.Nanos)
	Routers   OpClassStats

	Stems   []StemStats
	Policy  PolicyStats
	Sharing SharingStats
}

// tableSizer and actionCounter are the optional interfaces learned policies
// expose for observability (qlearn.Learned implements both).
type tableSizer interface{ TableSize() int }
type actionCounter interface {
	ActionCounts() (explores, exploits int64)
}

// buildStatsLocked assembles BatchStats from the executor counters and the
// session's per-query accounting. Caller holds s.mu after the worker pool
// has drained.
func (s *Session) buildStatsLocked(res *Results) *BatchStats {
	st := &s.ctx.Stats
	bs := &BatchStats{
		Filters: OpClassStats{
			Invocations: st.FilterOps.Load(),
			Tuples:      st.SelOut.Load(),
			Nanos:       st.FilterNs.Load(),
		},
		Builds: OpClassStats{
			Invocations: st.Episodes.Load(), // one insert pass per episode
			Tuples:      st.Inserted.Load(),
			Nanos:       st.BuildNs.Load(),
		},
		Probes: OpClassStats{
			Invocations: st.ProbeOps.Load(),
			Tuples:      st.JoinOut.Load(),
			Nanos:       st.ProbeNs.Load(),
		},
		RouteSels: OpClassStats{
			Invocations: st.RouteSelOps.Load(),
		},
		Routers: OpClassStats{
			Invocations: st.RouterOps.Load(),
			Tuples:      st.Routed.Load(),
			Nanos:       st.RouteNs.Load(),
		},
		Sharing: SharingStats{
			SharedOps:     st.SharedOps.Load(),
			TotalOps:      st.TotalOps(),
			QueriesServed: st.OpQueries.Load(),
		},
		Policy: PolicyStats{PlanSwitches: s.planSwitches},
	}

	bs.Queries = make([]QueryStats, s.b.N)
	for qid := range bs.Queries {
		bs.Queries[qid] = QueryStats{
			Episodes:  s.qEpisodes[qid],
			Tuples:    res.Counts[qid],
			Elapsed:   s.qElapsed[qid],
			Completed: res.Status[qid].Completed,
		}
	}

	bs.Stems = make([]StemStats, len(s.b.Insts))
	for i := range bs.Stems {
		is := &s.ctx.InstStats[i]
		bs.Stems[i] = StemStats{
			Table:    s.b.Insts[i].Table,
			Entries:  int64(s.ctx.Stems[i].Len()),
			Inserts:  is.Inserts.Load(),
			Probes:   is.Probes.Load(),
			Matches:  is.Matches.Load(),
			EstBytes: s.ctx.Stems[i].EstBytes(),
		}
	}

	if ts, ok := s.pol.(tableSizer); ok {
		bs.Policy.QStates = ts.TableSize()
	}
	if ac, ok := s.pol.(actionCounter); ok {
		bs.Policy.Explores, bs.Policy.Exploits = ac.ActionCounts()
	}
	return bs
}

// foldRegistryLocked folds the finished run into the process-wide metrics
// registry (one fold per batch — never on an episode path). Basic executor
// counters fold unconditionally; stats-derived families only when they were
// collected.
func (s *Session) foldRegistryLocked(res *Results, bs *BatchStats) {
	reg := metrics.Default()
	st := &s.ctx.Stats

	reg.Batches.Add(1)
	reg.Episodes.Add(res.Episodes)
	reg.SelIn.Add(st.SelIn.Load())
	reg.SelOut.Add(st.SelOut.Load())
	reg.StemInserts.Add(st.Inserted.Load())
	reg.JoinTuples.Add(res.JoinTuples)
	reg.Routed.Add(st.Routed.Load())
	reg.FilterNs.Add(st.FilterNs.Load())
	reg.BuildNs.Add(st.BuildNs.Load())
	reg.ProbeNs.Add(st.ProbeNs.Load())
	reg.RouteNs.Add(st.RouteNs.Load())

	for _, qs := range res.Status {
		if qs.Completed {
			reg.QueriesComplete.Add(1)
		} else {
			reg.QueriesAborted.Add(1)
		}
	}
	reg.EpisodeFaults.Add(int64(len(res.Faults)))
	for i := range res.Faults {
		reg.AddFault(res.Faults[i].Kind.String(), 1)
	}
	// Watermark liveness check: every allocated slot must have been
	// published by the time the pool drains (runEpisode guarantees it on
	// all its exit paths). A non-zero lag means a slot leaked, which
	// silently disables the probe kernels' watermark fast path.
	reg.WatermarkLag.Store(int64(s.episode) - int64(s.ctx.Versions.Watermark()))
	if s.dom != nil {
		reg.EpochLag.Store(s.dom.Lag())
	}

	if bs == nil {
		return
	}
	var probes int64
	for i := range bs.Stems {
		probes += bs.Stems[i].Probes
	}
	reg.StemProbes.Add(probes)
	reg.SharedOps.Add(bs.Sharing.SharedOps)
	reg.TotalOps.Add(bs.Sharing.TotalOps)
	reg.PlanSwitches.Add(bs.Policy.PlanSwitches)
	reg.ExploreActions.Add(bs.Policy.Explores)
	reg.ExploitActions.Add(bs.Policy.Exploits)
	reg.QStates.Store(int64(bs.Policy.QStates))
}
