package engine

import (
	"time"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/metrics"
	"github.com/roulette-db/roulette/internal/obs"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
)

// This file is the streaming half of the session lifecycle (Config.
// Streaming): live admission of queries into a running worker pool,
// per-query retirement the moment a query's episodes drain, and the
// concurrent garbage collector that sweeps retired queries out of STeM
// entries, grouped filters, the Q-table and the query-ID space.
//
// Synchronization model (epoch-based; DESIGN.md §12): there is no
// stop-the-world gate. Mutations happen under the session mutex and become
// visible to episodes through a published context view (exec.PublishView,
// one atomic pointer store); episodes load the view once at their start,
// so they always run against an immutable snapshot. The few structural
// STeM mutations that cannot overlap in-flight INSERTS on the same
// instance (AddIndex, bucket growth, compaction) queue behind a per-
// instance fence and run when that instance's in-flight count hits zero —
// every other instance keeps executing. Frees of retired per-query state
// (sources, query-ID slots) are deferred through the session's epoch
// domain: they run only after every worker has passed the retiring
// generation, so no episode can dereference reclaimed state. STeM entry
// sweeping needs none of this — it is CAS-based and runs concurrently
// with inserts and probes.

// retirePruner is the optional policy interface for reclaiming learned
// state of retired queries (qlearn.Learned implements it).
type retirePruner interface{ PruneRetired(retired bitset.Set) int }

// SubmitLiveMeta merges one query into the running session without
// blocking on a worker barrier: the batch and execution context are
// extended under the session mutex alone, the extended view is published
// (one atomic store) and the epoch domain advanced, and the query is
// admitted on its instances' scans (rescanning each relation from the
// current circular-scan position, so it reuses every STeM entry built so
// far and re-ingests only what it has not seen). Structural STeM ops the
// admission needs (indexing a new key column on an existing STeM, regrowing
// compacted buckets) run inline when their instance has no episode in
// flight, and otherwise queue behind that instance's fence; activation then
// waits for the last such op, never for unrelated instances or episodes.
// The meta carries the query's tenant, fairness weight, priority lane and
// deadline for the tenant-aware scheduler (see sched.go). It returns the
// assigned query ID.
//
// Admission control (budget, rate limits) still belongs in front of this
// call: admission does O(batch) setup work under the mutex, so overload
// rejections should stay cheaper than it.
func (s *Session) SubmitLiveMeta(q *query.Query, m SubmitMeta) (int, error) {
	s.mu.Lock()
	qid, err := s.b.Extend(q)
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	d := s.b.TakeDelta()
	ops, err := s.ctx.ApplyExtend(d)
	if err != nil {
		// The context is untouched (ApplyExtend validates before mutating);
		// take the query's additions back out of the batch so instance and
		// operator IDs stay aligned with the executor's arrays.
		s.b.RollbackExtend(d)
		s.mu.Unlock()
		return 0, err
	}
	for _, ii := range d.NewInsts {
		// VectorSize was validated when the session's options were built, so
		// scan construction cannot fail here.
		scan, err := storage.NewCircularScan(s.ctx.Tables[ii].NumRows(), s.ctx.Opt.VectorSize)
		if err != nil {
			panic(err)
		}
		s.scans = append(s.scans, newScanState(scan, s.b.QCap()))
	}
	// Ranks depend on the join graph; recompute for all scans (new edges can
	// change existing instances' pruning order).
	ranks := RankScans(s.b, s.ctx)
	for i, st := range s.scans {
		st.rank = ranks[i]
	}
	// The rescan re-ingests relations whose STeMs may have been compacted
	// to a fraction of the relation size; regrow their buckets up front so
	// insert chains stay short. Growth swaps the STeM's copy-on-write state,
	// so it fences like AddIndex.
	for _, inst := range s.b.QueryInsts(qid) {
		if s.ctx.Stems[inst].NeedsGrow(s.ctx.Tables[inst].NumRows()) {
			inst := inst
			ops = append(ops, exec.StemOp{Inst: inst, Apply: func() {
				s.ctx.Stems[inst].EnsureBuckets(s.ctx.Tables[inst].NumRows())
			}})
		}
	}
	// Publish-then-advance: ApplyExtend published the extended view; advance
	// the epoch so workers pinning from here on are known to see it.
	if s.dom != nil {
		s.recCtl(obs.KEpochAdvance, int64(s.dom.Advance()), 0, 0, 0)
	}
	act := &pendingActivation{qid: qid, meta: m, submitNs: time.Now().UnixNano()}
	for _, op := range ops {
		inst := int(op.Inst)
		if s.instFlight[inst] == 0 {
			// No in-flight insert on this instance; the scheduler cannot
			// start one while we hold the mutex, so run the op inline.
			op.Apply()
			continue
		}
		act.remaining++
		if !s.instFence[inst] {
			s.instFenceSince[inst] = act.submitNs
		}
		s.instFence[inst] = true
		s.instOps[inst] = append(s.instOps[inst], fenceOp{run: op.Apply, act: act})
		s.recCtl(obs.KFenceQueue, int64(inst), int64(qid), 0, 0)
	}
	s.recCtl(obs.KSubmit, int64(qid), int64(act.remaining), tenantHash(m.Tenant), 0)
	if act.remaining == 0 {
		s.activateLocked(act)
	}
	cbs := s.takeCallbacksLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.runCallbacks(cbs)
	return qid, nil
}

// CancelQuery marks one in-flight query failed with the given cause. Only
// that query is affected: its bits leave the scan active sets, it retires
// as soon as its in-flight episodes drain, and its count so far remains
// available as a partial result. The rest of the stream is untouched.
func (s *Session) CancelQuery(qid int, cause error) {
	s.mu.Lock()
	if qid < 0 || qid >= s.b.QCap() ||
		!s.admitted.Contains(qid) || s.failed.Contains(qid) ||
		s.retired.Contains(qid) || (s.gc.running && s.gc.active.Contains(qid)) {
		s.mu.Unlock()
		return
	}
	s.failed.Add(qid)
	s.failErr[qid] = cause
	for _, inst := range s.b.QueryInsts(qid) {
		s.scans[inst].active.Remove(qid)
	}
	s.maybeRetireLocked(qid)
	cbs := s.takeCallbacksLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.runCallbacks(cbs)
}

// CloseSubmit declares the stream input finished: once every admitted
// query retires and GC drains, the worker pool exits and RunContext
// returns. Further SubmitLive calls still work until the pool exits; the
// caller decides when to stop submitting.
func (s *Session) CloseSubmit() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// FreeQuerySlots reports how many query IDs are available for SubmitLive
// (capacity minus live and not-yet-reclaimed queries).
func (s *Session) FreeQuerySlots() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Free()
}

// maybeRetireLocked retires qid if it is terminal: admitted, every episode
// carrying its bit finished, and either drained (exact result) or failed
// (partial result). Retirement publishes the query's status via OnRetire
// — immediately, not at session end — and queues the query for GC.
func (s *Session) maybeRetireLocked(qid int) {
	if !s.cfg.Streaming {
		return
	}
	if !s.admitted.Contains(qid) || s.retired.Contains(qid) ||
		(s.gc.running && s.gc.active.Contains(qid)) {
		return
	}
	if s.outstanding[qid] != 0 {
		return
	}
	failed := s.failed.Contains(qid)
	if !failed && !s.queryDrainedLocked(qid) {
		return
	}
	s.retired.Add(qid)
	s.releaseMetaLocked(qid)
	completed := int64(1)
	if failed {
		completed = 0
	}
	s.recCtl(obs.KRetire, int64(qid), completed, 0, 0)
	st := QueryStatus{Completed: !failed, Err: s.failErr[qid]}
	if cb := s.cfg.OnRetire; cb != nil {
		// The callback reads the query's source (routed rows); GC must not
		// reclaim the query until it finishes, so mark it callback-pending.
		// gcQuantumLocked leaves pending queries out of its snapshot and
		// picks them up on a later pass.
		q := qid
		s.cbPending.Add(q)
		s.cbsQueued = append(s.cbsQueued, func() {
			cb(q, st)
			s.mu.Lock()
			s.cbPending.Remove(q)
			s.cond.Broadcast()
			s.mu.Unlock()
		})
	}
}

// takeCallbacksLocked hands the queued callbacks to the caller for
// execution outside the mutex, tracking them so GC cannot release a
// query's source while its retirement callback still reads it.
func (s *Session) takeCallbacksLocked() []func() {
	cbs := s.cbsQueued
	s.cbsQueued = nil
	s.cbsActive += len(cbs)
	if len(cbs) > 0 {
		s.recCtl(obs.KCallback, int64(len(cbs)), 0, 0, 0)
	}
	return cbs
}

// runCallbacks executes callbacks taken by takeCallbacksLocked and marks
// them done. Must be called without the session mutex.
func (s *Session) runCallbacks(cbs []func()) {
	if len(cbs) == 0 {
		return
	}
	for _, f := range cbs {
		f()
	}
	s.mu.Lock()
	s.cbsActive -= len(cbs)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// gcPendingLocked reports whether the garbage collector has work: a pass
// in progress or retired queries awaiting one.
func (s *Session) gcPendingLocked() bool {
	// Queries whose retirement callback is still pending are not yet
	// eligible (the callback reads their source); they stay in retired
	// until the callback completes and broadcasts.
	return s.gc.running || !s.retired.IsSubset(s.cbPending)
}

// nextEpisodeStreaming is the scheduling loop of a streaming worker: run
// pending retirement callbacks and grace-period-expired reclamation, hand
// out a vector when a scan has work (running a paced GC quantum first when
// reclamation is pending — GC is concurrent, not stop-the-world), make GC
// progress ungated when idle, and block waiting for submissions otherwise.
// Returns ok=false when the run is cancelled or the stream is closed and
// fully drained.
func (s *Session) nextEpisodeStreaming(id int) (exec.EpisodeInput, bool) {
	s.mu.Lock()
	for {
		if len(s.cbsQueued) > 0 {
			cbs := s.takeCallbacksLocked()
			s.mu.Unlock()
			s.runCallbacks(cbs)
			s.mu.Lock()
			continue
		}
		if ready := s.dom.Ready(); len(ready) > 0 {
			// Deferred frees whose grace period elapsed (every worker passed
			// the retiring generation); they take s.mu themselves.
			s.mu.Unlock()
			for _, f := range ready {
				f()
			}
			s.mu.Lock()
			continue
		}
		if s.runCtx != nil && s.runCtx.Err() != nil {
			s.mu.Unlock()
			return exec.EpisodeInput{}, false
		}
		s.fireAdmissionsLocked()
		if best := s.pickScanLocked(); best >= 0 {
			if s.gcPendingLocked() && s.episode-s.gcLastEp >= gcEvery {
				// Busy path: interleave one budgeted GC quantum every
				// gcEvery episodes so reclamation keeps pace with execution
				// while other workers' episodes stay in flight.
				s.gcLastEp = s.episode
				if s.inFlight > 0 {
					metrics.Default().GCConcurrentQuanta.Add(1)
				}
				metrics.Default().EpochLag.Store(s.dom.Lag())
				s.gcQuantumLocked()
				if s.instFence[best] || s.scans[best].done() {
					continue // the quantum fenced or drained our pick
				}
			}
			in := s.takeVectorLocked(query.InstID(best))
			s.noteEpisodeLocked(id, in)
			s.mu.Unlock()
			return in, true
		}
		if len(s.cbsQueued) > 0 {
			// pickScanLocked may have shed expired-deadline queries and
			// queued their retirement callbacks; run them before blocking.
			continue
		}
		if s.gcPendingLocked() {
			if s.inFlight > 0 {
				metrics.Default().GCConcurrentQuanta.Add(1)
			}
			s.gcQuantumLocked()
			continue
		}
		if s.closed && s.inFlight == 0 && s.cbsActive == 0 &&
			!s.gc.running && s.retired.Empty() && !s.dom.HasDeferred() {
			s.cond.Broadcast() // wake peers so they observe the exit state
			s.mu.Unlock()
			return exec.EpisodeInput{}, false
		}
		s.cond.Wait()
	}
}

// gcQuantumLocked makes one budgeted unit of GC progress, concurrently
// with in-flight episodes: SweepChunk clears retired bits with CAS loops
// that tolerate racing inserts and probes (a retired query's bit can never
// reappear — retirement requires zero outstanding episodes, so no insert
// still carries it). Each quantum sweeps up to gcChunkBudget STeM chunks;
// finishing an instance whose entries became at least half dead compacts
// it — inline when the instance has no in-flight inserts, else queued
// behind its fence (compaction swaps the copy-on-write state, so it must
// not race an insert on the same instance). A queued compaction can fire
// at fence drain while a later pass is mid-sweep of the same instance;
// the cursor detects that through the STeM's compact generation and
// restarts the instance's sweep, because compaction repositions entries.
// Finishing the last instance runs the terminal reclamation step.
func (s *Session) gcQuantumLocked() {
	g := &s.gc
	if !g.running {
		g.active = s.retired.CopyInto(g.active)
		g.active.AndNotWith(s.cbPending) // callback-pending: not yet eligible
		if g.active.Empty() {
			return
		}
		s.retired.AndNotWith(g.active)
		g.running, g.inst, g.chunk, g.stemDead = true, 0, 0, 0
	}
	startInst, swept := g.inst, 0
	defer func() {
		s.recCtl(obs.KGCQuantum, int64(startInst), int64(swept), 0, 0)
	}()
	budget := gcChunkBudget
	for budget > 0 {
		if g.inst >= len(s.ctx.Stems) {
			s.gcFinishLocked()
			return
		}
		st := s.ctx.Stems[g.inst]
		if gen := st.CompactGen(); g.chunk == 0 {
			g.stemGen = gen
		} else if gen != g.stemGen {
			// A fenced CompactLive (queued by an earlier pass, run at fence
			// drain between quanta) repacked this instance mid-sweep. The
			// sweep cursor addresses entries by position, and compaction
			// moves live entries to new positions — some now below the
			// cursor, where this pass would never revisit their retired
			// bits, leaving stale bits to misattribute matches once the qid
			// is recycled. Positions are only meaningful within one compact
			// generation: restart the instance's sweep against the new
			// layout.
			g.chunk, g.stemDead, g.stemGen = 0, 0, gen
			s.recCtl(obs.KGCSweepRestart, int64(g.inst), int64(gen), 0, 0)
		}
		if g.chunk >= st.NumChunks() {
			if g.stemDead > 0 && 2*g.stemDead >= st.Len() {
				if inst := g.inst; s.instFlight[inst] > 0 {
					if !s.instFence[inst] {
						s.instFenceSince[inst] = time.Now().UnixNano()
					}
					s.instFence[inst] = true
					s.instOps[inst] = append(s.instOps[inst], fenceOp{run: func() {
						s.ctx.Stems[inst].CompactLive()
					}})
					s.recCtl(obs.KGCCompact, int64(inst), 1, 0, 0)
				} else {
					st.CompactLive()
					s.recCtl(obs.KGCCompact, int64(g.inst), 0, 0, 0)
				}
				budget = 0 // a compaction consumes the quantum
			}
			g.inst++
			g.chunk, g.stemDead = 0, 0
			continue
		}
		g.stemDead += st.SweepChunk(g.chunk, g.active)
		g.chunk++
		swept++
		budget--
	}
}

// gcFinishLocked completes a GC pass in two stages. Stage one, under the
// session mutex, unpublishes the swept queries: they leave the batch's
// shared operator sets (grouped-filter predicates dropped, affected
// filters rebuilt, the shrunk view republished), the policy prunes
// Q-states referencing them, and the session's per-query bookkeeping is
// cleared. Stage two — releasing the sources and returning the query IDs
// to the free pool for reuse — is deferred through the epoch domain until
// every worker has passed the retiring generation, so no in-flight episode
// can dereference a reclaimed source or meet a recycled query ID.
func (s *Session) gcFinishLocked() {
	g := &s.gc
	if cb := s.cfg.PolicySweep; cb != nil {
		// Last moment the learned state about the swept queries is still
		// addressable: the batch is intact and s.admitted still carries the
		// retiring IDs, so the callback can export policy priors before
		// RetireQueries/PruneRetired erase them.
		cb(s.b, s.ctx, s.admitted)
	}
	changed := s.b.RetireQueries(g.active)
	s.ctx.RebuildFilters(changed) // republishes the view
	if pr, ok := s.pol.(retirePruner); ok {
		pr.PruneRetired(g.active)
	}
	freed := g.active.IDs()
	for _, qid := range freed {
		s.admitted.Remove(qid)
		s.failed.Remove(qid)
		s.failErr[qid] = nil
		s.outstanding[qid] = 0
		for _, sc := range s.scans {
			sc.doneQ.Remove(qid)
			sc.active.Remove(qid)
		}
		if s.qEpisodes != nil {
			s.qEpisodes[qid], s.qElapsed[qid] = 0, 0
		}
		s.qTenant[qid] = 0
	}
	for i := range g.active {
		g.active[i] = 0
	}
	g.running = false
	if len(freed) > 0 {
		reclaim := func() {
			s.mu.Lock()
			for _, qid := range freed {
				s.ctx.Sources[qid] = nil
				s.b.ReleaseQID(qid)
			}
			s.recCtl(obs.KEpochRelease, int64(len(freed)), 0, 0, 0)
			if cb := s.cfg.OnReclaim; cb != nil {
				s.cbsQueued = append(s.cbsQueued, func() { cb(freed) })
			}
			s.cond.Broadcast()
			s.mu.Unlock()
		}
		if s.dom != nil {
			s.recCtl(obs.KEpochDefer, int64(s.dom.Current()), int64(len(freed)), 0, 0)
			// Defer records the current generation and advances the domain
			// itself: the free releases once every worker pinned before this
			// point — the set that could still hold the pre-retirement view —
			// has drained, even under a saturated pool that is never fully
			// unpinned. (RebuildFilters republished the shrunk view above, so
			// the publish-before-defer contract holds.)
			s.dom.Defer(reclaim)
		} else {
			// Pre-run GC (no worker pool yet): free immediately, but the
			// deferred closure takes s.mu, so run it after we release it.
			s.cbsQueued = append(s.cbsQueued, reclaim)
		}
	}
	s.cond.Broadcast()
}

// StemSnapshot returns the current per-instance STeM statistics (entries,
// traffic counters, estimated resident bytes). Streaming observability:
// unlike BatchStats it can be read while the session runs.
func (s *Session) StemSnapshot() []StemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StemStats, len(s.b.Insts))
	for i := range out {
		is := &s.ctx.InstStats[i]
		out[i] = StemStats{
			Table:    s.b.Insts[i].Table,
			Entries:  int64(s.ctx.Stems[i].Len()),
			Inserts:  is.Inserts.Load(),
			Probes:   is.Probes.Load(),
			Matches:  is.Matches.Load(),
			EstBytes: s.ctx.Stems[i].EstBytes(),
		}
	}
	return out
}
