package engine

import (
	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
)

// This file is the streaming half of the session lifecycle (Config.
// Streaming): live admission of queries into a running worker pool,
// per-query retirement the moment a query's episodes drain, and the
// between-episodes garbage collector that sweeps retired queries out of
// STeM entries, grouped filters, the Q-table and the query-ID space.
//
// Synchronization model: everything here runs under the session mutex in
// the gaps between episodes. The quiesce gate (pause/resume) additionally
// waits until no episode is in flight, which is what makes it safe to
// mutate structures the episode hot path reads lock-free (batch operator
// sets, grouped filters, STeM indexes and chunks). The hot path itself
// takes no new locks and sees no new atomics.

// retirePruner is the optional policy interface for reclaiming learned
// state of retired queries (qlearn.Learned implements it).
type retirePruner interface{ PruneRetired(retired bitset.Set) int }

// pause acquires the quiesce gate: it returns with the session mutex held,
// no episode in flight and no retirement callback mid-execution (callbacks
// read the batch without the mutex; the gate is what lets SubmitLive
// mutate it), and workers do not start new episodes until resume. Callers
// must pair it with resume.
func (s *Session) pause() {
	s.mu.Lock()
	s.pauseReq++
	for s.inFlight > 0 || s.cbsActive > 0 {
		s.cond.Wait()
	}
}

// resume releases the quiesce gate taken by pause.
func (s *Session) resume() {
	s.pauseReq--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// SubmitLiveMeta merges one query into the running session: the batch and
// the execution context are extended under the quiesce gate, the query is
// admitted on its instances' scans (rescanning each relation from the
// current circular-scan position, so it reuses every STeM entry built so
// far and re-ingests only what it has not seen), and workers are woken.
// The meta carries the query's tenant, fairness weight, priority lane and
// deadline for the tenant-aware scheduler (see sched.go). It returns the
// assigned query ID.
//
// Admission control (budget, rate limits) belongs in front of this call:
// SubmitLiveMeta pays the quiesce-gate barrier, so overload rejections must
// happen before it to keep rejection cheap under saturation.
func (s *Session) SubmitLiveMeta(q *query.Query, m SubmitMeta) (int, error) {
	s.pause()
	qid, err := s.b.Extend(q)
	if err != nil {
		s.resume()
		return 0, err
	}
	d := s.b.TakeDelta()
	if err := s.ctx.ApplyExtend(d); err != nil {
		// The context is untouched (ApplyExtend validates before mutating);
		// take the query's additions back out of the batch so instance and
		// operator IDs stay aligned with the executor's arrays.
		s.b.RollbackExtend(d)
		s.resume()
		return 0, err
	}
	for _, ii := range d.NewInsts {
		// VectorSize was validated when the session's options were built, so
		// scan construction cannot fail here.
		scan, err := storage.NewCircularScan(s.ctx.Tables[ii].NumRows(), s.ctx.Opt.VectorSize)
		if err != nil {
			panic(err)
		}
		qcap := s.b.QCap()
		s.scans = append(s.scans, &scanState{
			scan:      scan,
			active:    bitset.New(qcap),
			remaining: make([]int, qcap),
			doneQ:     bitset.New(qcap),
		})
	}
	// Ranks depend on the join graph; recompute for all scans (new edges can
	// change existing instances' pruning order).
	ranks := RankScans(s.b, s.ctx)
	for i, st := range s.scans {
		st.rank = ranks[i]
	}
	// The rescan re-ingests relations whose STeMs may have been compacted
	// to a fraction of the relation size; regrow their buckets up front so
	// insert chains stay short.
	for _, inst := range s.b.QueryInsts(qid) {
		s.ctx.Stems[inst].EnsureBuckets(s.ctx.Tables[inst].NumRows())
	}
	s.registerMetaLocked(qid, m)
	s.admitLocked(qid)
	s.maybeRetireLocked(qid) // zero-row relations: the query is born drained
	cbs := s.takeCallbacksLocked()
	s.cond.Broadcast()
	s.resume()
	s.runCallbacks(cbs)
	return qid, nil
}

// CancelQuery marks one in-flight query failed with the given cause. Only
// that query is affected: its bits leave the scan active sets, it retires
// as soon as its in-flight episodes drain, and its count so far remains
// available as a partial result. The rest of the stream is untouched.
func (s *Session) CancelQuery(qid int, cause error) {
	s.mu.Lock()
	if qid < 0 || qid >= s.b.QCap() ||
		!s.admitted.Contains(qid) || s.failed.Contains(qid) ||
		s.retired.Contains(qid) || (s.gc.running && s.gc.active.Contains(qid)) {
		s.mu.Unlock()
		return
	}
	s.failed.Add(qid)
	s.failErr[qid] = cause
	for _, inst := range s.b.QueryInsts(qid) {
		s.scans[inst].active.Remove(qid)
	}
	s.maybeRetireLocked(qid)
	cbs := s.takeCallbacksLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.runCallbacks(cbs)
}

// CloseSubmit declares the stream input finished: once every admitted
// query retires and GC drains, the worker pool exits and RunContext
// returns. Further SubmitLive calls still work until the pool exits; the
// caller decides when to stop submitting.
func (s *Session) CloseSubmit() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// FreeQuerySlots reports how many query IDs are available for SubmitLive
// (capacity minus live and not-yet-reclaimed queries).
func (s *Session) FreeQuerySlots() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Free()
}

// maybeRetireLocked retires qid if it is terminal: admitted, every episode
// carrying its bit finished, and either drained (exact result) or failed
// (partial result). Retirement publishes the query's status via OnRetire
// — immediately, not at session end — and queues the query for GC.
func (s *Session) maybeRetireLocked(qid int) {
	if !s.cfg.Streaming {
		return
	}
	if !s.admitted.Contains(qid) || s.retired.Contains(qid) ||
		(s.gc.running && s.gc.active.Contains(qid)) {
		return
	}
	if s.outstanding[qid] != 0 {
		return
	}
	failed := s.failed.Contains(qid)
	if !failed && !s.queryDrainedLocked(qid) {
		return
	}
	s.retired.Add(qid)
	s.releaseMetaLocked(qid)
	st := QueryStatus{Completed: !failed, Err: s.failErr[qid]}
	if cb := s.cfg.OnRetire; cb != nil {
		q := qid
		s.cbsQueued = append(s.cbsQueued, func() { cb(q, st) })
	}
}

// takeCallbacksLocked hands the queued callbacks to the caller for
// execution outside the mutex, tracking them so GC cannot release a
// query's source while its retirement callback still reads it.
func (s *Session) takeCallbacksLocked() []func() {
	cbs := s.cbsQueued
	s.cbsQueued = nil
	s.cbsActive += len(cbs)
	return cbs
}

// runCallbacks executes callbacks taken by takeCallbacksLocked and marks
// them done. Must be called without the session mutex.
func (s *Session) runCallbacks(cbs []func()) {
	if len(cbs) == 0 {
		return
	}
	for _, f := range cbs {
		f()
	}
	s.mu.Lock()
	s.cbsActive -= len(cbs)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// nextEpisodeStreaming is the scheduling loop of a streaming worker: run
// pending retirement callbacks, hand out a vector when a scan has work,
// otherwise make GC progress (only with zero episodes in flight), and
// block waiting for submissions when idle. Returns ok=false when the run
// is cancelled or the stream is closed and fully drained.
func (s *Session) nextEpisodeStreaming() (exec.EpisodeInput, bool) {
	s.mu.Lock()
	for {
		if len(s.cbsQueued) > 0 {
			cbs := s.takeCallbacksLocked()
			s.mu.Unlock()
			s.runCallbacks(cbs)
			s.mu.Lock()
			continue
		}
		if s.runCtx != nil && s.runCtx.Err() != nil {
			s.mu.Unlock()
			return exec.EpisodeInput{}, false
		}
		if s.pauseReq > 0 {
			s.cond.Wait()
			continue
		}
		s.fireAdmissionsLocked()
		if best := s.pickScanLocked(); best >= 0 {
			in := s.takeVectorLocked(query.InstID(best))
			s.mu.Unlock()
			return in, true
		}
		if len(s.cbsQueued) > 0 {
			// pickScanLocked may have shed expired-deadline queries and
			// queued their retirement callbacks; run them before blocking.
			continue
		}
		if s.inFlight == 0 && s.cbsActive == 0 && (s.gc.running || !s.retired.Empty()) {
			s.gcQuantumLocked()
			continue
		}
		if s.closed && s.inFlight == 0 && s.cbsActive == 0 &&
			!s.gc.running && s.retired.Empty() {
			s.cond.Broadcast() // wake peers so they observe the exit state
			s.mu.Unlock()
			return exec.EpisodeInput{}, false
		}
		s.cond.Wait()
	}
}

// gcQuantumLocked makes one budgeted unit of GC progress. It only runs
// with no episode in flight (caller-checked), so sweeping and compacting
// the structures probes read lock-free is safe. Each quantum sweeps up to
// gcChunkBudget STeM chunks; finishing an instance whose entries became
// at least half dead compacts it (also one quantum); finishing the last
// instance runs the terminal reclamation step.
func (s *Session) gcQuantumLocked() {
	g := &s.gc
	if !g.running {
		g.active = s.retired.CopyInto(g.active)
		for i := range s.retired {
			s.retired[i] = 0
		}
		g.running, g.inst, g.chunk, g.stemDead = true, 0, 0, 0
	}
	budget := gcChunkBudget
	for budget > 0 {
		if g.inst >= len(s.ctx.Stems) {
			s.gcFinishLocked()
			return
		}
		st := s.ctx.Stems[g.inst]
		if g.chunk >= st.NumChunks() {
			if g.stemDead > 0 && 2*g.stemDead >= st.Len() {
				st.CompactLive()
				budget = 0 // a compaction consumes the quantum
			}
			g.inst++
			g.chunk, g.stemDead = 0, 0
			continue
		}
		g.stemDead += st.SweepChunk(g.chunk, g.active)
		g.chunk++
		budget--
	}
}

// gcFinishLocked completes a GC pass: the swept queries leave the batch's
// shared operator sets (their grouped-filter predicates are dropped and
// the affected filters rebuilt), the policy prunes Q-states referencing
// them, their sources are released, and their query IDs return to the
// free pool for reuse by later SubmitLive calls.
func (s *Session) gcFinishLocked() {
	g := &s.gc
	changed := s.b.RetireQueries(g.active)
	s.ctx.RebuildFilters(changed)
	if pr, ok := s.pol.(retirePruner); ok {
		pr.PruneRetired(g.active)
	}
	freed := g.active.IDs()
	for _, qid := range freed {
		s.admitted.Remove(qid)
		s.failed.Remove(qid)
		s.failErr[qid] = nil
		s.outstanding[qid] = 0
		for _, sc := range s.scans {
			sc.doneQ.Remove(qid)
			sc.active.Remove(qid)
		}
		if s.qEpisodes != nil {
			s.qEpisodes[qid], s.qElapsed[qid] = 0, 0
		}
		s.qTenant[qid] = 0
		s.ctx.Sources[qid] = nil
		s.b.ReleaseQID(qid)
	}
	for i := range g.active {
		g.active[i] = 0
	}
	g.running = false
	if cb := s.cfg.OnReclaim; cb != nil && len(freed) > 0 {
		s.cbsQueued = append(s.cbsQueued, func() { cb(freed) })
	}
	s.cond.Broadcast()
}

// StemSnapshot returns the current per-instance STeM statistics (entries,
// traffic counters, estimated resident bytes). Streaming observability:
// unlike BatchStats it can be read while the session runs.
func (s *Session) StemSnapshot() []StemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StemStats, len(s.b.Insts))
	for i := range out {
		is := &s.ctx.InstStats[i]
		out[i] = StemStats{
			Table:    s.b.Insts[i].Table,
			Entries:  int64(s.ctx.Stems[i].Len()),
			Inserts:  is.Inserts.Load(),
			Probes:   is.Probes.Load(),
			Matches:  is.Matches.Load(),
			EstBytes: s.ctx.Stems[i].EstBytes(),
		}
	}
	return out
}
