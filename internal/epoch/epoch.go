// Package epoch implements a small epoch-based reclamation domain for the
// streaming engine: a monotonically advancing generation counter, one
// padded per-worker guard, and a queue of deferred functions that run only
// once every worker pinned at or before the deferring generation has
// unpinned. It is the grace-period mechanism that lets the engine free
// retired per-query state (source buffers, query-ID slots) without a
// stop-the-world barrier: a worker pins the current generation for the
// duration of one episode, so "every guard has passed generation G" proves
// no episode that could observe pre-G state is still running.
package epoch

import (
	"sync"
	"sync/atomic"
)

// guard is one worker's pinned generation, padded to its own cache line so
// per-episode pin/unpin stores by different workers do not false-share.
// 0 means unpinned; otherwise the pinned generation + 1.
type guard struct {
	e atomic.Uint64
	_ [56]byte
}

type deferred struct {
	gen uint64
	fn  func()
}

// Domain is an epoch domain for a fixed set of workers.
type Domain struct {
	current atomic.Uint64
	guards  []guard

	// pending mirrors len(deferred) (updated under mu, read lock-free) so
	// the per-episode Unpin/Ready fast path skips the mutex entirely when
	// nothing is queued.
	pending atomic.Int64

	mu       sync.Mutex
	deferred []deferred
}

// NewDomain creates a domain for workers guards, all unpinned, at
// generation 0.
func NewDomain(workers int) *Domain {
	return &Domain{guards: make([]guard, workers)}
}

// Advance moves the domain to the next generation and returns it. Callers
// advance after publishing a state change; any worker that pins afterwards
// observes the new generation.
func (d *Domain) Advance() uint64 { return d.current.Add(1) }

// Current returns the current generation.
func (d *Domain) Current() uint64 { return d.current.Load() }

// Pin marks worker w as running inside the current generation. One atomic
// store; called at the start of every episode.
func (d *Domain) Pin(w int) {
	d.guards[w].e.Store(d.current.Load() + 1)
}

// Unpin clears worker w's guard and returns any deferred functions whose
// grace period has now elapsed. The caller must run them outside its own
// locks (they may take engine locks themselves). One atomic store plus an
// atomic load; the mutex is taken only when work is actually queued.
func (d *Domain) Unpin(w int) []func() {
	d.guards[w].e.Store(0)
	return d.Ready()
}

// Defer queues fn to run once every worker pinned at a generation at or
// before the current one has unpinned, then advances the domain. The
// internal advance is what makes the grace period expire under sustained
// load: workers re-pinning afterwards land on a later generation, so as
// soon as the pre-advance pinners drain, minPinned exceeds fn's
// generation and Ready releases it — bounded by the longest in-flight
// episode, with no external Advance (new submission, next GC pass)
// required. fn is returned by a later Ready or Unpin call; it never runs
// inside Defer.
//
// Callers must publish the successor state (view pointer swap) before
// calling Defer, so any worker that could still observe the state fn
// frees is pinned at or before fn's recorded generation.
func (d *Domain) Defer(fn func()) {
	d.mu.Lock()
	gen := d.current.Load()
	d.deferred = append(d.deferred, deferred{gen: gen, fn: fn})
	d.pending.Store(int64(len(d.deferred)))
	d.mu.Unlock()
	d.current.Add(1)
}

// minPinned returns the smallest pinned generation and whether any worker
// is pinned.
func (d *Domain) minPinned() (uint64, bool) {
	min, any := uint64(0), false
	for i := range d.guards {
		e := d.guards[i].e.Load()
		if e == 0 {
			continue
		}
		if g := e - 1; !any || g < min {
			min, any = g, true
		}
	}
	return min, any
}

// Ready removes and returns every deferred function whose grace period has
// elapsed: its deferring generation is below the oldest pinned generation
// (or no worker is pinned at all). Callers run the returned functions
// outside their own locks. Lock-free when the queue is empty.
func (d *Domain) Ready() []func() {
	if d.pending.Load() == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.deferred) == 0 {
		return nil
	}
	min, any := d.minPinned()
	var out []func()
	kept := d.deferred[:0]
	for _, df := range d.deferred {
		if !any || df.gen < min {
			out = append(out, df.fn)
		} else {
			kept = append(kept, df)
		}
	}
	d.deferred = kept
	d.pending.Store(int64(len(kept)))
	return out
}

// HasDeferred reports whether any deferred function is still queued.
func (d *Domain) HasDeferred() bool {
	return d.pending.Load() != 0
}

// Lag returns how many generations the oldest pinned worker is behind the
// current generation (0 when nothing is pinned or everyone is current).
// This is the engine's roulette_epoch_lag gauge.
func (d *Domain) Lag() int64 {
	min, any := d.minPinned()
	if !any {
		return 0
	}
	return int64(d.current.Load() - min)
}

// OldestPinned returns the worker holding the oldest pinned generation and
// that generation. ok is false when no worker is pinned. Used by the stall
// watchdog to name the worker blocking epoch reclamation.
func (d *Domain) OldestPinned() (worker int, gen uint64, ok bool) {
	for i := range d.guards {
		e := d.guards[i].e.Load()
		if e == 0 {
			continue
		}
		if g := e - 1; !ok || g < gen {
			worker, gen, ok = i, g, true
		}
	}
	return
}

// Pending returns the number of deferred reclamations still waiting for
// their grace period. Lock-free.
func (d *Domain) Pending() int { return int(d.pending.Load()) }
