package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

func ran(fns []func()) int {
	for _, f := range fns {
		f()
	}
	return len(fns)
}

func TestDeferWaitsForPinnedWorker(t *testing.T) {
	d := NewDomain(2)
	d.Pin(0) // worker 0 enters an episode at generation 0

	var freed atomic.Bool
	d.Advance() // publish a change; worker 0 predates it
	d.Defer(func() { freed.Store(true) })

	if fns := d.Ready(); len(fns) != 0 {
		t.Fatalf("free released while a pre-advance worker is pinned (%d ready)", len(fns))
	}
	if !d.HasDeferred() {
		t.Fatal("deferred queue lost the pending free")
	}

	// Defer advanced the domain, so a worker pinning now lands on a later
	// generation: it provably observed the successor state (published
	// before Defer) and must not hold the free.
	d.Pin(1)
	if fns := d.Unpin(0); ran(fns) != 1 {
		t.Fatal("free held by a worker that pinned after the deferring advance")
	}
	if !freed.Load() {
		t.Fatal("deferred fn did not run")
	}
	if d.HasDeferred() {
		t.Fatal("deferred queue still non-empty after release")
	}
	d.Unpin(1)
}

// TestDeferReleasesUnderSustainedPinning is the liveness regression: with a
// saturated pool whose episodes overlap (no instant where every worker is
// unpinned) and no external Advance calls at all, a deferred free must
// still release within about one episode round — Defer's internal advance
// moves re-pinning workers past the deferring generation.
func TestDeferReleasesUnderSustainedPinning(t *testing.T) {
	d := NewDomain(2)
	d.Pin(0)
	d.Pin(1)
	var freed atomic.Bool
	d.Defer(func() { freed.Store(true) })

	released := 0
	for i := 0; i < 4 && released == 0; i++ {
		// Finish one worker's episode and immediately start its next, so
		// the other worker keeps the pool pinned throughout.
		w := i % 2
		released += ran(d.Unpin(w))
		d.Pin(w)
	}
	if released != 1 || !freed.Load() {
		t.Fatal("deferred free starved under sustained pinning (no fully-unpinned instant, no external Advance)")
	}
	if d.HasDeferred() {
		t.Fatal("deferred queue still non-empty after release")
	}
}

func TestDeferReleasesImmediatelyWhenUnpinned(t *testing.T) {
	d := NewDomain(4)
	d.Advance()
	d.Defer(func() {})
	if fns := d.Ready(); len(fns) != 1 {
		t.Fatalf("ready = %d fns with no worker pinned, want 1", len(fns))
	}
}

func TestDeferNeverRunsInline(t *testing.T) {
	d := NewDomain(1)
	called := false
	d.Defer(func() { called = true })
	if called {
		t.Fatal("Defer ran the function inline")
	}
}

func TestLag(t *testing.T) {
	d := NewDomain(2)
	if d.Lag() != 0 {
		t.Fatalf("idle lag = %d, want 0", d.Lag())
	}
	d.Pin(0)
	d.Advance()
	d.Advance()
	if d.Lag() != 2 {
		t.Fatalf("lag = %d, want 2", d.Lag())
	}
	d.Pin(1) // current-generation pin must not raise the lag
	if d.Lag() != 2 {
		t.Fatalf("lag with current pin = %d, want 2", d.Lag())
	}
	d.Unpin(0)
	if d.Lag() != 0 {
		t.Fatalf("lag after old worker left = %d, want 0", d.Lag())
	}
}

// TestConcurrentPinUnpinDefer hammers the domain from multiple goroutines
// under -race and asserts the grace-period invariant directly: a reader
// that loaded the shared resource while pinned must never observe it freed
// before it unpins. This is the exact shape the engine relies on (episodes
// load the published view / a query source; reclamation swaps the pointer,
// advances, and defers the free).
func TestConcurrentPinUnpinDefer(t *testing.T) {
	type resource struct{ freed atomic.Bool }
	const workers, rounds = 4, 2000
	d := NewDomain(workers)
	var cur atomic.Pointer[resource]
	cur.Store(&resource{})
	var violations atomic.Int64
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				d.Pin(w)
				r := cur.Load()
				if w == 0 && i%8 == 0 {
					// Reclaimer turn: retire the resource this worker (and
					// any concurrent reader) may be holding.
					old := cur.Swap(&resource{})
					d.Advance()
					d.Defer(func() { old.freed.Store(true) })
				}
				// Still pinned: the grace period must be holding our free.
				if r.freed.Load() {
					violations.Add(1)
				}
				for _, f := range d.Unpin(w) {
					f()
				}
			}
		}(w)
	}
	wg.Wait()
	// Drain the tail: nothing is pinned, so everything queued must release.
	for _, f := range d.Ready() {
		f()
	}
	if d.HasDeferred() {
		t.Fatal("deferred functions stranded after all workers unpinned")
	}
	if violations.Load() != 0 {
		t.Fatalf("%d grace-period violations (resource freed under a pinned reader)", violations.Load())
	}
}
