package exec

import (
	"math/rand"
	"time"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/cost"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/stem"
)

// CalibrateModel fits the cost model's κ/λ constants to this machine by
// micro-benchmarking the three operator classes on synthetic data and
// applying least squares, exactly as §4.3 tunes the paper's constants
// ("we measure execution time in nanoseconds for various input and output
// sizes and apply linear regression"). The returned model replaces the
// paper's Xeon-tuned defaults when plugged into engine.Config.Model.
func CalibrateModel(seed int64) *cost.Model {
	rng := rand.New(rand.NewSource(seed))
	m := cost.Default()

	m.Tune(cost.Selection, calibrateSelection(rng))
	m.Tune(cost.Join, calibrateJoin(rng))
	m.Tune(cost.RoutingSelection, calibrateRouting(rng))
	return m
}

// sizes spans two orders of magnitude of vector sizes.
var calibrationSizes = []int{256, 512, 1024, 2048, 4096}

// calibrateSelection times grouped-filter application at varying
// selectivities.
func calibrateSelection(rng *rand.Rand) []cost.Sample {
	const nQueries = 16
	col := make([]int64, 8192)
	for i := range col {
		col[i] = int64(rng.Intn(1000))
	}
	var samples []cost.Sample
	for _, sel := range []int64{100, 400, 800} {
		sc := &query.SelCol{Inst: 0, Col: "c", Queries: bitset.NewFull(nQueries)}
		for qid := 0; qid < nQueries; qid++ {
			sc.Preds = append(sc.Preds, query.Pred{QID: qid, Lo: 0, Hi: sel})
		}
		f := NewGroupedFilter(nQueries, sc, col, nil)
		for _, n := range calibrationSizes {
			vids := make([]int32, n)
			for i := range vids {
				vids[i] = int32(rng.Intn(len(col)))
			}
			qsets := make([]uint64, n)
			reps := 32768 / n
			start := time.Now()
			for r := 0; r < reps; r++ {
				for i := range qsets {
					qsets[i] = (1 << nQueries) - 1
				}
				f.Apply(true, vids, qsets, 1)
			}
			elapsed := float64(time.Since(start).Nanoseconds()) / float64(reps)
			out := 0
			for _, w := range qsets {
				if w != 0 {
					out++
				}
			}
			samples = append(samples, cost.Sample{NIn: float64(n), NOut: float64(out), Nanos: elapsed})
		}
	}
	return samples
}

// calibrateJoin times STeM probes with varying match fan-outs.
func calibrateJoin(rng *rand.Rand) []cost.Sample {
	versions := stem.NewVersions()
	var samples []cost.Sample
	for _, fanout := range []int{1, 2, 4} {
		const keys = 1024
		s := stem.New(versions, []string{"k"}, 16, keys*fanout)
		qs := bitset.NewFull(16)
		for k := 0; k < keys; k++ {
			for d := 0; d < fanout; d++ {
				s.Insert(int32(k*fanout+d), []int64{int64(k)}, qs, 0)
			}
		}
		versions.Publish(0)
		ts := versions.Now()

		for _, n := range calibrationSizes {
			probeKeys := make([]int64, n)
			for i := range probeKeys {
				probeKeys[i] = int64(rng.Intn(keys))
			}
			var dst []stem.Match
			reps := 16384 / n
			if reps == 0 {
				reps = 1
			}
			out := 0
			start := time.Now()
			for r := 0; r < reps; r++ {
				out = 0
				for _, k := range probeKeys {
					dst = s.Probe(dst[:0], "k", k, ts)
					out += len(dst)
				}
			}
			elapsed := float64(time.Since(start).Nanoseconds()) / float64(reps)
			samples = append(samples, cost.Sample{NIn: float64(n), NOut: float64(out), Nanos: elapsed})
		}
	}
	return samples
}

// calibrateRouting times routing selections (mask and compact).
func calibrateRouting(rng *rand.Rand) []cost.Sample {
	var samples []cost.Sample
	for _, keepPct := range []int{25, 50, 90} {
		for _, n := range calibrationSizes {
			baseVids := make([]int32, n)
			baseQ := make([]uint64, n)
			for i := range baseVids {
				baseVids[i] = int32(i)
				if rng.Intn(100) < keepPct {
					baseQ[i] = 3
				}
			}
			vids := make([]int32, n)
			qsets := make([]uint64, n)
			reps := 32768 / n
			out := 0
			start := time.Now()
			for r := 0; r < reps; r++ {
				copy(vids, baseVids)
				copy(qsets, baseQ)
				v, _ := compact(vids, qsets, 1)
				out = len(v)
			}
			elapsed := float64(time.Since(start).Nanoseconds()) / float64(reps)
			samples = append(samples, cost.Sample{NIn: float64(n), NOut: float64(out), Nanos: elapsed})
		}
	}
	return samples
}
