// Package exec implements RouLette's adaptive multi-query executor (§5):
// vectorized episode execution over shared operators — range-based grouped
// filters, symmetric-join prune filters, STeM probes, routing selections
// and locality-conscious routers — plus the execution log that feeds the
// learned policy.
package exec

import (
	"fmt"
	"sync/atomic"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/cost"
	"github.com/roulette-db/roulette/internal/plan"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/stem"
	"github.com/roulette-db/roulette/internal/storage"
	"github.com/roulette-db/roulette/internal/value"
)

// Options toggles the executor's §5.2 optimizations; the ablation
// experiments (Figs. 17–18) flip them individually.
type Options struct {
	VectorSize          int  // tuples per episode vector (paper: 1024)
	GroupedFilters      bool // range-table predicate evaluation vs naive per-predicate loops
	LocalityRouter      bool // two-pass batched multicast vs per-tuple appends
	Pruning             bool // symmetric join pruning via semi-join filters
	AdaptiveProjections bool // shed vID columns not needed downstream
	CollectRows         bool // retain routed tuples in sources (off = count only)

	// CollectStats enables the per-operator-class and sharing counters.
	// Workers accumulate them in plain arena fields and fold into the shared
	// atomics once per episode, so the stats-off hot path is untouched and
	// the stats-on path stays allocation-free.
	CollectStats bool

	// TraceActions records each episode's chosen action sequence (selection
	// ops, probed edges) in the EpisodeReport, for episode tracing.
	TraceActions bool

	// Hooks observes or perturbs episode execution (fault injection,
	// chaos tests). The zero value is a no-op. Deliberately NOT reachable
	// from the public roulette.Options — it exists for the engine's own
	// chaos tests, and every other Options/Config field maps to a public
	// knob (see DESIGN.md "Observability").
	Hooks Hooks
}

// DefaultOptions enables every optimization with the paper's vector size.
func DefaultOptions() Options {
	return Options{
		VectorSize:          1024,
		GroupedFilters:      true,
		LocalityRouter:      true,
		Pruning:             true,
		AdaptiveProjections: true,
		CollectRows:         true,
	}
}

// selOpRef resolves a stable selection-op ID to its implementation.
type selOpRef struct {
	prune bool
	idx   int32 // SelCol ID (grouped filter) or PruneOps index
}

// PruneOp is a symmetric-join prune filter: tuples of Inst keep a query's
// bit only if they have a join partner in Other's (fully ingested) STeM
// over EdgeID (§5.2, Fig. 10).
type PruneOp struct {
	ID       int // stable selection-op ID
	Bit      int // stable bit within Inst's selection-op list
	Inst     query.InstID
	EdgeID   int
	Other    query.InstID
	LocalCol string // join column on Inst
	OtherCol string // indexed join column on Other
}

// Context is the session-level execution state shared by all workers: the
// compiled batch, per-instance tables and STeMs, grouped filters, prune
// operators, per-query sources, and counters.
type Context struct {
	B     *query.Batch
	DB    *storage.Database
	Model *cost.Model
	Opt   Options

	Versions *stem.Versions
	Stems    []*stem.STeM     // per instance
	Tables   []*storage.Table // per instance

	Filters  []*GroupedFilter // per SelCol ID
	PruneOps []PruneOp        // prune filters, any order

	// selOps is the stable selection-operator ID space: op ID i refers to
	// either a grouped filter or a prune op. IDs are append-only, so they
	// stay stable while a streaming batch grows (a later-created grouped
	// filter must not collide with an existing prune op's ID).
	selOps []selOpRef

	// selBits[inst] maps every potential selection op on inst to its stable
	// bit; filterBit/pruneBit give per-op positions.
	filterBits []int // per SelCol ID
	filterOpID []int // per SelCol ID: its stable selection-op ID
	pruneBits  []int // per prune index

	// bitsUsed[inst] counts assigned per-instance selection-op bits (each
	// instance's applied-operator mask is one 64-bit word); keySeen[inst]
	// dedupes STeM key columns. Persisted so ApplyExtend can continue the
	// assignment where NewContext left off.
	bitsUsed []int
	keySeen  []map[string]bool

	// edge column slices, resolved once.
	edgeACol [][]int64
	edgeBCol [][]int64

	// residual column slices, parallel to B.Residuals.
	resACol [][]int64
	resBCol [][]int64

	// stemKeyCols[inst] lists the join columns indexed by inst's STeM, and
	// stemKeySlices the corresponding column data.
	stemKeyCols   [][]string
	stemKeySlices [][][]int64

	Sources []*Source // per query

	ReqInsts plan.RequiredInsts

	// view is the published episode-hot-path snapshot of everything above.
	// Workers load it once per episode (one atomic pointer load) and never
	// touch the mutable master fields; the engine republishes after every
	// admission or retirement under its session mutex (publish-then-advance:
	// the view is stored before the change becomes schedulable, so any
	// episode carrying a new query's bit runs against a view that includes
	// it). gen counts publishes — it is the batch generation workers observe
	// at episode boundaries.
	view atomic.Pointer[view]
	gen  uint64

	Stats Stats

	// InstStats holds per-instance STeM traffic counters, folded at episode
	// boundaries when Options.CollectStats is on.
	InstStats []InstStat
}

// InstStat counts one instance's STeM traffic: entries inserted, probe
// lookups against it, and match tuples it emitted.
type InstStat struct {
	Inserts atomic.Int64
	Probes  atomic.Int64
	Matches atomic.Int64
}

// view is one immutable snapshot of the context's episode-hot-path state.
// Every slice is a fresh header copy of the master field at publish time;
// the engine's copy-on-write contract (query sets replaced, filters
// replaced, never mutated in place) keeps the reachable data frozen.
type view struct {
	g query.Graph

	stems    []*stem.STeM
	tables   []*storage.Table
	filters  []*GroupedFilter
	pruneOps []PruneOp
	selOps   []selOpRef

	edgeACol [][]int64
	edgeBCol [][]int64
	resACol  [][]int64
	resBCol  [][]int64

	stemKeyCols   [][]string
	stemKeySlices [][][]int64

	gen uint64
}

// PublishView snapshots the context's hot-path state into a fresh view and
// publishes it with one atomic store. Callers hold whatever lock serializes
// context mutation (the engine's session mutex). NewContext, ApplyExtend
// and RebuildFilters publish automatically; the engine republishes
// explicitly after batch-level changes that bypass those (none today).
func (c *Context) PublishView() {
	c.gen++
	v := &view{
		g:             c.B.Snapshot(),
		stems:         append([]*stem.STeM(nil), c.Stems...),
		tables:        append([]*storage.Table(nil), c.Tables...),
		filters:       append([]*GroupedFilter(nil), c.Filters...),
		pruneOps:      append([]PruneOp(nil), c.PruneOps...),
		selOps:        append([]selOpRef(nil), c.selOps...),
		edgeACol:      append([][]int64(nil), c.edgeACol...),
		edgeBCol:      append([][]int64(nil), c.edgeBCol...),
		resACol:       append([][]int64(nil), c.resACol...),
		resBCol:       append([][]int64(nil), c.resBCol...),
		stemKeyCols:   append([][]string(nil), c.stemKeyCols...),
		stemKeySlices: append([][][]int64(nil), c.stemKeySlices...),
		gen:           c.gen,
	}
	c.view.Store(v)
}

// loadView returns the current published view (never nil after NewContext).
func (c *Context) loadView() *view { return c.view.Load() }

// Graph returns the current view's immutable join-graph snapshot, safe to
// read lock-free.
func (c *Context) Graph() *query.Graph { return &c.view.Load().g }

// ViewGen returns the current view's generation number (the batch
// generation workers observe at episode boundaries).
func (c *Context) ViewGen() uint64 { return c.view.Load().gen }

// StemOp is a deferred STeM structural operation returned by ApplyExtend:
// it must run only while no episode is inserting into Inst (the engine's
// per-instance insert fence), because it swaps the STeM's copy-on-write
// state. Probes need no fence.
type StemOp struct {
	Inst  query.InstID
	Apply func()
}

// NewContext compiles the execution context for a batch over db.
func NewContext(b *query.Batch, db *storage.Database, opt Options, model *cost.Model) (*Context, error) {
	if model == nil {
		model = cost.Default()
	}
	if opt.VectorSize <= 0 {
		opt.VectorSize = 1024
	}
	c := &Context{B: b, DB: db, Model: model, Opt: opt, Versions: stem.NewVersions()}

	c.Tables = make([]*storage.Table, len(b.Insts))
	for i, in := range b.Insts {
		t := db.Table(in.Table)
		if t == nil {
			return nil, fmt.Errorf("exec: no table %q", in.Table)
		}
		c.Tables[i] = t
	}

	// Resolve edge key columns and per-instance STeM key columns.
	c.edgeACol = make([][]int64, len(b.Edges))
	c.edgeBCol = make([][]int64, len(b.Edges))
	c.stemKeyCols = make([][]string, len(b.Insts))
	c.keySeen = make([]map[string]bool, len(b.Insts))
	for i := range c.keySeen {
		c.keySeen[i] = make(map[string]bool)
	}
	addKey := func(inst query.InstID, col string) {
		if !c.keySeen[inst][col] {
			c.keySeen[inst][col] = true
			c.stemKeyCols[inst] = append(c.stemKeyCols[inst], col)
		}
	}
	for i := range b.Edges {
		e := &b.Edges[i]
		ta, tb := c.Tables[e.A], c.Tables[e.B]
		if !ta.Rel.HasColumn(e.ACol) || !tb.Rel.HasColumn(e.BCol) {
			return nil, fmt.Errorf("exec: join column missing on edge %d (%s.%s = %s.%s)",
				e.ID, b.Insts[e.A].Table, e.ACol, b.Insts[e.B].Table, e.BCol)
		}
		if err := checkJoinTypes(ta, e.ACol, tb, e.BCol); err != nil {
			return nil, err
		}
		c.edgeACol[i] = ta.Col(e.ACol)
		c.edgeBCol[i] = tb.Col(e.BCol)
		addKey(e.A, e.ACol)
		addKey(e.B, e.BCol)
	}

	for _, r := range b.Residuals {
		ta, tb := c.Tables[r.A], c.Tables[r.B]
		if !ta.Rel.HasColumn(r.ACol) || !tb.Rel.HasColumn(r.BCol) {
			return nil, fmt.Errorf("exec: residual join column missing (%s.%s = %s.%s)",
				b.Insts[r.A].Table, r.ACol, b.Insts[r.B].Table, r.BCol)
		}
		if err := checkJoinTypes(ta, r.ACol, tb, r.BCol); err != nil {
			return nil, err
		}
		c.resACol = append(c.resACol, ta.Col(r.ACol))
		c.resBCol = append(c.resBCol, tb.Col(r.BCol))
	}

	c.Stems = make([]*stem.STeM, len(b.Insts))
	c.stemKeySlices = make([][][]int64, len(b.Insts))
	for i := range b.Insts {
		c.Stems[i] = stem.New(c.Versions, c.stemKeyCols[i], b.QCap(), c.Tables[i].NumRows())
		for _, col := range c.stemKeyCols[i] {
			c.stemKeySlices[i] = append(c.stemKeySlices[i], c.Tables[i].Col(col))
		}
	}

	// Grouped filters, one per SelCol, plus per-instance bit assignment.
	c.bitsUsed = make([]int, len(b.Insts))
	c.Filters = make([]*GroupedFilter, len(b.SelCols))
	c.filterBits = make([]int, len(b.SelCols))
	c.filterOpID = make([]int, len(b.SelCols))
	for i := range b.SelCols {
		sc := &b.SelCols[i]
		if !c.Tables[sc.Inst].Rel.HasColumn(sc.Col) {
			return nil, fmt.Errorf("exec: filter column %s missing on %s", sc.Col, b.Insts[sc.Inst].Table)
		}
		if err := checkSelColTypes(c.Tables[sc.Inst], sc); err != nil {
			return nil, err
		}
		c.Filters[i] = NewGroupedFilter(b.QCap(), sc, c.Tables[sc.Inst].Col(sc.Col), colDict(c.Tables[sc.Inst], sc.Col))
		c.filterBits[i] = c.bitsUsed[sc.Inst]
		c.bitsUsed[sc.Inst]++
		c.filterOpID[i] = len(c.selOps)
		c.selOps = append(c.selOps, selOpRef{prune: false, idx: int32(i)})
	}

	// Prune operators: one per (instance, incident edge), targeting the
	// opposite endpoint's STeM.
	if opt.Pruning {
		for i := range b.Edges {
			c.addPruneOps(&b.Edges[i])
		}
	}
	for inst, n := range c.bitsUsed {
		if n > 64 {
			return nil, fmt.Errorf("exec: instance %s has %d selection ops (max 64)", b.Insts[inst].Table, n)
		}
	}

	// Per-query sources with their required vID columns. The slice spans the
	// full query-ID capacity so its header never changes while a streaming
	// batch admits queries (slots past b.N stay nil until Extend fills them).
	c.Sources = make([]*Source, b.QCap())
	for qid := 0; qid < b.N; qid++ {
		insts, err := requiredInsts(b, qid)
		if err != nil {
			return nil, err
		}
		c.Sources[qid] = NewSource(insts, opt.CollectRows)
	}
	c.ReqInsts = func(qid int) uint64 {
		var m uint64
		for _, in := range c.Sources[qid].Insts {
			m |= 1 << in
		}
		return m
	}
	// Capacity MaxInstances so streaming extensions append in place (the
	// entries hold atomics; a reallocation would copy them).
	c.InstStats = make([]InstStat, len(b.Insts), query.MaxInstances)
	c.PublishView()
	return c, nil
}

// addPruneOps registers the two symmetric prune filters of one edge,
// assigning stable op IDs and per-instance bits.
func (c *Context) addPruneOps(e *query.Edge) {
	for _, side := range [2]struct {
		inst, other        query.InstID
		localCol, otherCol string
	}{
		{e.A, e.B, e.ACol, e.BCol},
		{e.B, e.A, e.BCol, e.ACol},
	} {
		id := len(c.selOps)
		c.selOps = append(c.selOps, selOpRef{prune: true, idx: int32(len(c.PruneOps))})
		c.PruneOps = append(c.PruneOps, PruneOp{
			ID: id, Bit: c.bitsUsed[side.inst], Inst: side.inst, EdgeID: e.ID,
			Other: side.other, LocalCol: side.localCol, OtherCol: side.otherCol,
		})
		c.pruneBits = append(c.pruneBits, c.bitsUsed[side.inst])
		c.bitsUsed[side.inst]++
	}
}

// ApplyExtend grows the execution context to cover a batch extension
// (query.Batch.Extend already applied to c.B): new instances get tables and
// STeMs, new edges resolve their columns and may add STeM indexes to
// already-built STeMs, new grouped filters and prune ops receive stable op
// IDs past the existing ID space, predicate changes rebuild the affected
// grouped filters, and the new query gets its source.
//
// Callers hold the engine's session mutex; running episodes are NOT paused.
// The hot path reads only the published view, which ApplyExtend republishes
// after mutating the master fields, so in-flight episodes keep their old
// view and later episodes see the extension. STeM index additions on
// already-built STeMs are not applied inline: they are returned as deferred
// StemOps the engine runs once the instance's in-flight inserts drain (the
// per-instance insert fence) — AddIndex backfills every entry present when
// it runs, so entries inserted between this call and the op are covered.
// Validation failures (missing table/column, per-instance selection-op
// budget) are returned before any mutation, leaving the context consistent
// — the caller then retires the query's ID from the batch.
func (c *Context) ApplyExtend(d query.ExtendDelta) ([]StemOp, error) {
	b := c.B

	// ---- Validate everything first, mutating nothing. --------------------
	for _, ii := range d.NewInsts {
		if c.DB.Table(b.Insts[ii].Table) == nil {
			return nil, fmt.Errorf("exec: no table %q", b.Insts[ii].Table)
		}
	}
	tableOf := func(inst query.InstID) *storage.Table {
		if int(inst) < len(c.Tables) {
			return c.Tables[inst]
		}
		return c.DB.Table(b.Insts[inst].Table)
	}
	for _, ei := range d.NewEdges {
		e := &b.Edges[ei]
		if !tableOf(e.A).Rel.HasColumn(e.ACol) || !tableOf(e.B).Rel.HasColumn(e.BCol) {
			return nil, fmt.Errorf("exec: join column missing on edge %d (%s.%s = %s.%s)",
				e.ID, b.Insts[e.A].Table, e.ACol, b.Insts[e.B].Table, e.BCol)
		}
		if err := checkJoinTypes(tableOf(e.A), e.ACol, tableOf(e.B), e.BCol); err != nil {
			return nil, err
		}
	}
	for ri := len(c.resACol); ri < len(b.Residuals); ri++ {
		r := &b.Residuals[ri]
		if !tableOf(r.A).Rel.HasColumn(r.ACol) || !tableOf(r.B).Rel.HasColumn(r.BCol) {
			return nil, fmt.Errorf("exec: residual join column missing (%s.%s = %s.%s)",
				b.Insts[r.A].Table, r.ACol, b.Insts[r.B].Table, r.BCol)
		}
		if err := checkJoinTypes(tableOf(r.A), r.ACol, tableOf(r.B), r.BCol); err != nil {
			return nil, err
		}
	}
	for _, si := range d.NewSelCols {
		sc := &b.SelCols[si]
		if !tableOf(sc.Inst).Rel.HasColumn(sc.Col) {
			return nil, fmt.Errorf("exec: filter column %s missing on %s", sc.Col, b.Insts[sc.Inst].Table)
		}
		if err := checkSelColTypes(tableOf(sc.Inst), sc); err != nil {
			return nil, err
		}
	}
	// A streamed-in query can add typed predicates to an existing grouped
	// filter; those land in TouchedSels, so their columns are re-validated.
	for _, si := range d.TouchedSels {
		sc := &b.SelCols[si]
		if err := checkSelColTypes(tableOf(sc.Inst), sc); err != nil {
			return nil, err
		}
	}
	// Per-instance selection-op budget: each new grouped filter takes one
	// bit on its instance, each new edge two prune bits (one per endpoint).
	added := map[query.InstID]int{}
	for _, si := range d.NewSelCols {
		added[b.SelCols[si].Inst]++
	}
	if c.Opt.Pruning {
		for _, ei := range d.NewEdges {
			added[b.Edges[ei].A]++
			added[b.Edges[ei].B]++
		}
	}
	for inst, n := range added {
		used := 0
		if int(inst) < len(c.bitsUsed) {
			used = c.bitsUsed[inst]
		}
		if used+n > 64 {
			return nil, fmt.Errorf("exec: instance %s has %d selection ops (max 64)", b.Insts[inst].Table, used+n)
		}
	}
	if _, err := requiredInsts(b, d.QID); err != nil {
		return nil, err
	}

	// ---- Apply. -----------------------------------------------------------
	for _, ii := range d.NewInsts {
		t := c.DB.Table(b.Insts[ii].Table)
		c.Tables = append(c.Tables, t)
		c.stemKeyCols = append(c.stemKeyCols, nil)
		c.stemKeySlices = append(c.stemKeySlices, nil)
		c.keySeen = append(c.keySeen, make(map[string]bool))
		c.bitsUsed = append(c.bitsUsed, 0)
		c.Stems = append(c.Stems, nil) // created below, once key columns are known
		c.InstStats = append(c.InstStats, InstStat{})
	}

	newInst := make(map[query.InstID]bool, len(d.NewInsts))
	for _, ii := range d.NewInsts {
		newInst[ii] = true
	}
	var ops []StemOp
	addKey := func(inst query.InstID, col string) {
		if c.keySeen[inst][col] {
			return
		}
		c.keySeen[inst][col] = true
		c.stemKeyCols[inst] = append(c.stemKeyCols[inst], col)
		c.stemKeySlices[inst] = append(c.stemKeySlices[inst], c.Tables[inst].Col(col))
		if !newInst[inst] {
			// Existing STeM learns a new key column: index its entries from
			// the base table (entries store vIDs, so the key is a lookup).
			// Deferred behind the instance's insert fence — AddIndex swaps
			// the STeM's copy-on-write state, and its backfill covers every
			// entry inserted before it runs.
			colData := c.Tables[inst].Col(col)
			st := c.Stems[inst]
			ops = append(ops, StemOp{Inst: inst, Apply: func() {
				st.AddIndex(col, func(vid int32) int64 { return colData[vid] })
			}})
		}
	}
	for _, ei := range d.NewEdges {
		e := &b.Edges[ei]
		c.edgeACol = append(c.edgeACol, c.Tables[e.A].Col(e.ACol))
		c.edgeBCol = append(c.edgeBCol, c.Tables[e.B].Col(e.BCol))
		addKey(e.A, e.ACol)
		addKey(e.B, e.BCol)
	}
	for ri := len(c.resACol); ri < len(b.Residuals); ri++ {
		r := &b.Residuals[ri]
		c.resACol = append(c.resACol, c.Tables[r.A].Col(r.ACol))
		c.resBCol = append(c.resBCol, c.Tables[r.B].Col(r.BCol))
	}
	for _, ii := range d.NewInsts {
		c.Stems[ii] = stem.New(c.Versions, c.stemKeyCols[ii], b.QCap(), c.Tables[ii].NumRows())
	}

	for _, si := range d.NewSelCols {
		sc := &b.SelCols[si]
		c.Filters = append(c.Filters, NewGroupedFilter(b.QCap(), sc, c.Tables[sc.Inst].Col(sc.Col), colDict(c.Tables[sc.Inst], sc.Col)))
		c.filterBits = append(c.filterBits, c.bitsUsed[sc.Inst])
		c.bitsUsed[sc.Inst]++
		c.filterOpID = append(c.filterOpID, len(c.selOps))
		c.selOps = append(c.selOps, selOpRef{prune: false, idx: int32(si)})
	}
	for _, si := range d.TouchedSels {
		sc := &b.SelCols[si]
		c.Filters[si] = NewGroupedFilter(b.QCap(), sc, c.Tables[sc.Inst].Col(sc.Col), colDict(c.Tables[sc.Inst], sc.Col))
	}
	if c.Opt.Pruning {
		for _, ei := range d.NewEdges {
			c.addPruneOps(&b.Edges[ei])
		}
	}

	insts, err := requiredInsts(b, d.QID)
	if err != nil {
		return nil, err
	}
	c.Sources[d.QID] = NewSource(insts, c.Opt.CollectRows)
	c.PublishView()
	return ops, nil
}

// RebuildFilters re-creates the grouped filters whose predicate lists
// changed (after RetireQueries dropped retired predicates) and republishes
// the view. Filters are replaced, never mutated, so episodes running on the
// old view keep consistent (stale but correct) filters. Caller holds the
// engine's session mutex.
func (c *Context) RebuildFilters(selIDs []int) {
	for _, si := range selIDs {
		sc := &c.B.SelCols[si]
		c.Filters[si] = NewGroupedFilter(c.B.QCap(), sc, c.Tables[sc.Inst].Col(sc.Col), colDict(c.Tables[sc.Inst], sc.Col))
	}
	c.PublishView()
}

// colDict returns the catalog dictionary backing a table column, nil for
// plain int64 columns.
func colDict(t *storage.Table, col string) *value.Dict {
	if cc := t.Rel.Column(col); cc != nil {
		return cc.Dict
	}
	return nil
}

// checkSelColTypes verifies every predicate of a grouped filter against the
// column's declared type: string predicates need a string column, integer
// ranges need an int64 column, IS [NOT] NULL works on either. Violations
// wrap value.ErrTypeMismatch.
func checkSelColTypes(t *storage.Table, sc *query.SelCol) error {
	cc := t.Rel.Column(sc.Col)
	if cc == nil {
		return nil // missing columns are reported by the caller's existence check
	}
	for _, p := range sc.Preds {
		switch p.Kind {
		case query.KindStrings:
			if cc.Type != value.String || cc.Dict == nil {
				return fmt.Errorf("exec: string predicate on %s column %s.%s: %w",
					cc.Type, t.Rel.Name, sc.Col, value.ErrTypeMismatch)
			}
		case query.KindRange:
			if cc.Type == value.String {
				return fmt.Errorf("exec: integer predicate on string column %s.%s: %w",
					t.Rel.Name, sc.Col, value.ErrTypeMismatch)
			}
		}
	}
	return nil
}

// checkJoinTypes verifies the endpoints of an equi-join agree on type, and
// that string joins share one dictionary object so code equality is string
// equality. Violations wrap value.ErrTypeMismatch.
func checkJoinTypes(ta *storage.Table, aCol string, tb *storage.Table, bCol string) error {
	ca, cb := ta.Rel.Column(aCol), tb.Rel.Column(bCol)
	if ca == nil || cb == nil {
		return nil
	}
	aStr, bStr := ca.Type == value.String, cb.Type == value.String
	if aStr != bStr {
		return fmt.Errorf("exec: join %s.%s = %s.%s mixes %s and %s columns: %w",
			ta.Rel.Name, aCol, tb.Rel.Name, bCol, ca.Type, cb.Type, value.ErrTypeMismatch)
	}
	if aStr && ca.Dict != cb.Dict {
		return fmt.Errorf("exec: string join %s.%s = %s.%s needs a shared dictionary (unify the columns' dictionaries at load time): %w",
			ta.Rel.Name, aCol, tb.Rel.Name, bCol, value.ErrTypeMismatch)
	}
	return nil
}

// requiredInsts derives which instances' vIDs a query's host consumer needs.
func requiredInsts(b *query.Batch, qid int) ([]query.InstID, error) {
	q := b.Queries[qid]
	need := map[query.InstID]bool{}
	add := func(alias string) error {
		if alias == "" {
			return nil
		}
		inst, ok := b.InstOfAlias(qid, alias)
		if !ok {
			return fmt.Errorf("exec: query %d aggregate references unknown alias %q", qid, alias)
		}
		need[inst] = true
		return nil
	}
	if q.Agg.Kind.NeedsColumn() {
		if err := add(q.Agg.Alias); err != nil {
			return nil, err
		}
	}
	if err := add(q.Agg.GroupByAlias); err != nil {
		return nil, err
	}
	var out []query.InstID
	for _, inst := range b.QueryInsts(qid) {
		if need[inst] {
			out = append(out, inst)
		}
	}
	return out, nil
}

// SelOpsFor assembles the currently available selection-phase operators on
// inst: every grouped filter, plus — when pruning is enabled — each prune
// op whose eligible query set (queries that have fully scanned the opposite
// relation) is non-empty. prunable(edgeID, other) returns that eligible set
// or nil.
func (c *Context) SelOpsFor(inst query.InstID, prunable func(edgeID int, other query.InstID) bitset.Set) []plan.SelOpInfo {
	var ops []plan.SelOpInfo
	for _, si := range c.B.SelColsOf(inst) {
		ops = append(ops, plan.SelOpInfo{ID: c.filterOpID[si], Bit: c.filterBits[si], Queries: c.B.SelCols[si].Queries})
	}
	if c.Opt.Pruning && prunable != nil {
		for i := range c.PruneOps {
			p := &c.PruneOps[i]
			if p.Inst != inst {
				continue
			}
			elig := prunable(p.EdgeID, p.Other)
			if elig == nil || elig.Empty() {
				continue
			}
			ops = append(ops, plan.SelOpInfo{ID: p.ID, Bit: p.Bit, Queries: elig})
		}
	}
	return ops
}

// NumSelOps returns the size of the selection-operator ID space (grouped
// filters plus prune ops), for policies that track per-op statistics.
func (c *Context) NumSelOps() int { return len(c.selOps) }

// SelOpDesc describes one stable selection-operator ID for callers that
// must canonicalize the ID space (the policy-persistence remap builder):
// which instance the op runs on, its stable bit within that instance's
// applied-operator mask, and its identity — a grouped filter's SelCol ID
// or a prune op's edge.
type SelOpDesc struct {
	ID     int
	Inst   query.InstID
	Bit    int
	Prune  bool
	SelCol int    // grouped-filter SelCol ID; -1 for prune ops
	EdgeID int    // prune op's edge; -1 for grouped filters
	Col    string // filter column, or the prune op's local join column
}

// SelOpDescs lists every selection operator in stable-ID order.
func (c *Context) SelOpDescs() []SelOpDesc {
	out := make([]SelOpDesc, len(c.selOps))
	for id, ref := range c.selOps {
		d := SelOpDesc{ID: id, Prune: ref.prune, SelCol: -1, EdgeID: -1}
		if ref.prune {
			p := &c.PruneOps[ref.idx]
			d.Inst, d.Bit, d.EdgeID, d.Col = p.Inst, p.Bit, p.EdgeID, p.LocalCol
		} else {
			sc := &c.B.SelCols[ref.idx]
			d.Inst, d.Bit, d.SelCol, d.Col = sc.Inst, c.filterBits[ref.idx], sc.ID, sc.Col
		}
		out[id] = d
	}
	return out
}
