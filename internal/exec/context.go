// Package exec implements RouLette's adaptive multi-query executor (§5):
// vectorized episode execution over shared operators — range-based grouped
// filters, symmetric-join prune filters, STeM probes, routing selections
// and locality-conscious routers — plus the execution log that feeds the
// learned policy.
package exec

import (
	"fmt"
	"sync/atomic"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/cost"
	"github.com/roulette-db/roulette/internal/plan"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/stem"
	"github.com/roulette-db/roulette/internal/storage"
)

// Options toggles the executor's §5.2 optimizations; the ablation
// experiments (Figs. 17–18) flip them individually.
type Options struct {
	VectorSize          int  // tuples per episode vector (paper: 1024)
	GroupedFilters      bool // range-table predicate evaluation vs naive per-predicate loops
	LocalityRouter      bool // two-pass batched multicast vs per-tuple appends
	Pruning             bool // symmetric join pruning via semi-join filters
	AdaptiveProjections bool // shed vID columns not needed downstream
	CollectRows         bool // retain routed tuples in sources (off = count only)

	// CollectStats enables the per-operator-class and sharing counters.
	// Workers accumulate them in plain arena fields and fold into the shared
	// atomics once per episode, so the stats-off hot path is untouched and
	// the stats-on path stays allocation-free.
	CollectStats bool

	// TraceActions records each episode's chosen action sequence (selection
	// ops, probed edges) in the EpisodeReport, for episode tracing.
	TraceActions bool

	// Hooks observes or perturbs episode execution (fault injection,
	// chaos tests). The zero value is a no-op. Deliberately NOT reachable
	// from the public roulette.Options — it exists for the engine's own
	// chaos tests, and every other Options/Config field maps to a public
	// knob (see DESIGN.md "Observability").
	Hooks Hooks
}

// DefaultOptions enables every optimization with the paper's vector size.
func DefaultOptions() Options {
	return Options{
		VectorSize:          1024,
		GroupedFilters:      true,
		LocalityRouter:      true,
		Pruning:             true,
		AdaptiveProjections: true,
		CollectRows:         true,
	}
}

// PruneOp is a symmetric-join prune filter: tuples of Inst keep a query's
// bit only if they have a join partner in Other's (fully ingested) STeM
// over EdgeID (§5.2, Fig. 10).
type PruneOp struct {
	ID       int // selection-op ID (offset past the grouped filters)
	Bit      int // stable bit within Inst's selection-op list
	Inst     query.InstID
	EdgeID   int
	Other    query.InstID
	LocalCol string // join column on Inst
	OtherCol string // indexed join column on Other
}

// Context is the session-level execution state shared by all workers: the
// compiled batch, per-instance tables and STeMs, grouped filters, prune
// operators, per-query sources, and counters.
type Context struct {
	B     *query.Batch
	DB    *storage.Database
	Model *cost.Model
	Opt   Options

	Versions *stem.Versions
	Stems    []*stem.STeM     // per instance
	Tables   []*storage.Table // per instance

	Filters  []*GroupedFilter // per SelCol ID
	PruneOps []PruneOp        // IDs are len(Filters)+i

	// selBits[inst] maps every potential selection op on inst to its stable
	// bit; filterBit/pruneBit give per-op positions.
	filterBits []int // per SelCol ID
	pruneBits  []int // per prune index

	// edge column slices, resolved once.
	edgeACol [][]int64
	edgeBCol [][]int64

	// residual column slices, parallel to B.Residuals.
	resACol [][]int64
	resBCol [][]int64

	// stemKeyCols[inst] lists the join columns indexed by inst's STeM, and
	// stemKeySlices the corresponding column data.
	stemKeyCols   [][]string
	stemKeySlices [][][]int64

	Sources []*Source // per query

	ReqInsts plan.RequiredInsts

	Stats Stats

	// InstStats holds per-instance STeM traffic counters, folded at episode
	// boundaries when Options.CollectStats is on.
	InstStats []InstStat
}

// InstStat counts one instance's STeM traffic: entries inserted, probe
// lookups against it, and match tuples it emitted.
type InstStat struct {
	Inserts atomic.Int64
	Probes  atomic.Int64
	Matches atomic.Int64
}

// NewContext compiles the execution context for a batch over db.
func NewContext(b *query.Batch, db *storage.Database, opt Options, model *cost.Model) (*Context, error) {
	if model == nil {
		model = cost.Default()
	}
	if opt.VectorSize <= 0 {
		opt.VectorSize = 1024
	}
	c := &Context{B: b, DB: db, Model: model, Opt: opt, Versions: stem.NewVersions()}

	c.Tables = make([]*storage.Table, len(b.Insts))
	for i, in := range b.Insts {
		t := db.Table(in.Table)
		if t == nil {
			return nil, fmt.Errorf("exec: no table %q", in.Table)
		}
		c.Tables[i] = t
	}

	// Resolve edge key columns and per-instance STeM key columns.
	c.edgeACol = make([][]int64, len(b.Edges))
	c.edgeBCol = make([][]int64, len(b.Edges))
	c.stemKeyCols = make([][]string, len(b.Insts))
	keySeen := make([]map[string]bool, len(b.Insts))
	for i := range keySeen {
		keySeen[i] = make(map[string]bool)
	}
	addKey := func(inst query.InstID, col string) {
		if !keySeen[inst][col] {
			keySeen[inst][col] = true
			c.stemKeyCols[inst] = append(c.stemKeyCols[inst], col)
		}
	}
	for i := range b.Edges {
		e := &b.Edges[i]
		ta, tb := c.Tables[e.A], c.Tables[e.B]
		if !ta.Rel.HasColumn(e.ACol) || !tb.Rel.HasColumn(e.BCol) {
			return nil, fmt.Errorf("exec: join column missing on edge %d (%s.%s = %s.%s)",
				e.ID, b.Insts[e.A].Table, e.ACol, b.Insts[e.B].Table, e.BCol)
		}
		c.edgeACol[i] = ta.Col(e.ACol)
		c.edgeBCol[i] = tb.Col(e.BCol)
		addKey(e.A, e.ACol)
		addKey(e.B, e.BCol)
	}

	for _, r := range b.Residuals {
		ta, tb := c.Tables[r.A], c.Tables[r.B]
		if !ta.Rel.HasColumn(r.ACol) || !tb.Rel.HasColumn(r.BCol) {
			return nil, fmt.Errorf("exec: residual join column missing (%s.%s = %s.%s)",
				b.Insts[r.A].Table, r.ACol, b.Insts[r.B].Table, r.BCol)
		}
		c.resACol = append(c.resACol, ta.Col(r.ACol))
		c.resBCol = append(c.resBCol, tb.Col(r.BCol))
	}

	c.Stems = make([]*stem.STeM, len(b.Insts))
	c.stemKeySlices = make([][][]int64, len(b.Insts))
	for i := range b.Insts {
		c.Stems[i] = stem.New(c.Versions, c.stemKeyCols[i], b.N, c.Tables[i].NumRows())
		for _, col := range c.stemKeyCols[i] {
			c.stemKeySlices[i] = append(c.stemKeySlices[i], c.Tables[i].Col(col))
		}
	}

	// Grouped filters, one per SelCol, plus per-instance bit assignment.
	bitsUsed := make([]int, len(b.Insts))
	c.Filters = make([]*GroupedFilter, len(b.SelCols))
	c.filterBits = make([]int, len(b.SelCols))
	for i := range b.SelCols {
		sc := &b.SelCols[i]
		if !c.Tables[sc.Inst].Rel.HasColumn(sc.Col) {
			return nil, fmt.Errorf("exec: filter column %s missing on %s", sc.Col, b.Insts[sc.Inst].Table)
		}
		c.Filters[i] = NewGroupedFilter(b.N, sc, c.Tables[sc.Inst].Col(sc.Col))
		c.filterBits[i] = bitsUsed[sc.Inst]
		bitsUsed[sc.Inst]++
	}

	// Prune operators: one per (instance, incident edge), targeting the
	// opposite endpoint's STeM.
	if opt.Pruning {
		for i := range b.Edges {
			e := &b.Edges[i]
			for _, side := range [2]struct {
				inst, other        query.InstID
				localCol, otherCol string
			}{
				{e.A, e.B, e.ACol, e.BCol},
				{e.B, e.A, e.BCol, e.ACol},
			} {
				id := len(b.SelCols) + len(c.PruneOps)
				c.PruneOps = append(c.PruneOps, PruneOp{
					ID: id, Bit: bitsUsed[side.inst], Inst: side.inst, EdgeID: e.ID,
					Other: side.other, LocalCol: side.localCol, OtherCol: side.otherCol,
				})
				c.pruneBits = append(c.pruneBits, bitsUsed[side.inst])
				bitsUsed[side.inst]++
			}
		}
	}
	for inst, n := range bitsUsed {
		if n > 64 {
			return nil, fmt.Errorf("exec: instance %s has %d selection ops (max 64)", b.Insts[inst].Table, n)
		}
	}

	// Per-query sources with their required vID columns.
	c.Sources = make([]*Source, b.N)
	for qid := range c.Sources {
		insts, err := requiredInsts(b, qid)
		if err != nil {
			return nil, err
		}
		c.Sources[qid] = NewSource(insts, opt.CollectRows)
	}
	c.ReqInsts = func(qid int) uint64 {
		var m uint64
		for _, in := range c.Sources[qid].Insts {
			m |= 1 << in
		}
		return m
	}
	c.InstStats = make([]InstStat, len(b.Insts))
	return c, nil
}

// requiredInsts derives which instances' vIDs a query's host consumer needs.
func requiredInsts(b *query.Batch, qid int) ([]query.InstID, error) {
	q := b.Queries[qid]
	need := map[query.InstID]bool{}
	add := func(alias string) error {
		if alias == "" {
			return nil
		}
		inst, ok := b.InstOfAlias(qid, alias)
		if !ok {
			return fmt.Errorf("exec: query %d aggregate references unknown alias %q", qid, alias)
		}
		need[inst] = true
		return nil
	}
	if q.Agg.Kind.NeedsColumn() {
		if err := add(q.Agg.Alias); err != nil {
			return nil, err
		}
	}
	if err := add(q.Agg.GroupByAlias); err != nil {
		return nil, err
	}
	var out []query.InstID
	for _, inst := range b.QueryInsts(qid) {
		if need[inst] {
			out = append(out, inst)
		}
	}
	return out, nil
}

// SelOpsFor assembles the currently available selection-phase operators on
// inst: every grouped filter, plus — when pruning is enabled — each prune
// op whose eligible query set (queries that have fully scanned the opposite
// relation) is non-empty. prunable(edgeID, other) returns that eligible set
// or nil.
func (c *Context) SelOpsFor(inst query.InstID, prunable func(edgeID int, other query.InstID) bitset.Set) []plan.SelOpInfo {
	var ops []plan.SelOpInfo
	for _, si := range c.B.SelColsOf(inst) {
		ops = append(ops, plan.SelOpInfo{ID: si, Bit: c.filterBits[si], Queries: c.B.SelCols[si].Queries})
	}
	if c.Opt.Pruning && prunable != nil {
		for i := range c.PruneOps {
			p := &c.PruneOps[i]
			if p.Inst != inst {
				continue
			}
			elig := prunable(p.EdgeID, p.Other)
			if elig == nil || elig.Empty() {
				continue
			}
			ops = append(ops, plan.SelOpInfo{ID: p.ID, Bit: p.Bit, Queries: elig})
		}
	}
	return ops
}

// NumSelOps returns the size of the selection-operator ID space (grouped
// filters plus prune ops), for policies that track per-op statistics.
func (c *Context) NumSelOps() int { return len(c.B.SelCols) + len(c.PruneOps) }
