package exec

import (
	"math/bits"
	"time"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/cost"
	"github.com/roulette-db/roulette/internal/plan"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/stem"
	"github.com/roulette-db/roulette/internal/value"
)

// EpisodeInput is the work item for one episode: one ingested vector, the
// query set actively scanning its relation, the version slot assigned to
// the episode, and the currently available selection operators.
type EpisodeInput struct {
	Inst   query.InstID
	VIDs   []int32
	Active bitset.Set
	Slot   stem.Slot
	SelOps []plan.SelOpInfo
}

// jvec is a join-phase intermediate vector in the Data-Query model: one vID
// column per present lineage instance plus a per-tuple query-set slab.
type jvec struct {
	insts []query.InstID
	vids  [][]int32
	qsets []uint64 // n × qw words
	n     int
}

func (v *jvec) instIdx(inst query.InstID) int {
	for i, in := range v.insts {
		if in == inst {
			return i
		}
	}
	return -1
}

// jvecPool recycles join-phase vectors and their vID columns within one
// worker. Vectors are acquired per probe/routing selection and released by
// execChildren once their sub-plan completes, so the live set is bounded by
// the plan depth; backing arrays keep their capacity across episodes, which
// makes the steady-state join phase allocation-free.
type jvecPool struct {
	free []*jvec
	cols [][]int32
}

func (p *jvecPool) get() *jvec {
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free = p.free[:n-1]
		return v
	}
	return &jvec{}
}

// col returns an empty vID column, reusing a released one when available.
func (p *jvecPool) col() []int32 {
	if n := len(p.cols); n > 0 {
		c := p.cols[n-1]
		p.cols = p.cols[:n-1]
		return c[:0]
	}
	return nil
}

// put returns v and its columns to the pool. The caller must be done with
// every slice view into v.
func (p *jvecPool) put(v *jvec) {
	for i := range v.vids {
		if v.vids[i] != nil {
			p.cols = append(p.cols, v.vids[i])
		}
		v.vids[i] = nil
	}
	v.insts = v.insts[:0]
	v.vids = v.vids[:0]
	v.qsets = v.qsets[:0]
	v.n = 0
	p.free = append(p.free, v)
}

// Worker executes episodes against a shared Context. Each worker owns its
// scratch buffers; workers synchronize only through STeMs, sources, the
// policy, and the stats counters.
type Worker struct {
	C   *Context
	Pol policy.Policy

	qw  int
	log []policy.LogEntry

	// Stats arena: every counter accumulates in these plain fields during an
	// episode and folds into the shared Context.Stats atomics exactly once,
	// at the episode boundary (foldStats). The hot loops therefore never
	// touch a shared cache line, with or without CollectStats.
	collect bool       // Context.Opt.CollectStats
	trace   bool       // Context.Opt.TraceActions
	ep      epCounters // folded and reset by foldStats
	planSig uint64     // FNV-style signature of the episode's chosen ops

	// Per-instance STeM traffic (collect only), parallel to C.InstStats.
	instIns, instProbes, instMatches []int64

	// Action-trace buffers (trace only), reused across episodes; an
	// EpisodeReport's action slices alias them until the next episode.
	selActs, joinActs []int32

	// Episode arena: worker-owned buffers reset (not reallocated) per
	// episode. Workers never share scratch, so reuse needs no new
	// synchronization; everything handed to shared structures (STeM
	// entries, source rows) is copied by the receiver before the arena is
	// reused. DESIGN.md "Performance" documents the ownership rules.
	selVids   []int32    // ingested vID buffer (selection phase input)
	selQsets  []uint64   // ingested query-set slab, n × qw words
	root      jvec       // join-phase root vector (wraps selVids/selQsets)
	pool      jvecPool   // intermediate join vectors
	tq        bitset.Set // probe: masked tuple query set
	zeroQ     []uint64   // qw zero words for extending qset slabs in place
	fullMask  bitset.Set // all-queries mask (template for notMask)
	notMask   bitset.Set // prune: bits outside the eligible set
	unionBuf  bitset.Set // route: union of present query bits
	qidBuf    []int      // route: decoded query IDs
	colIdx    []int      // route: source column positions
	flat      []int32    // route: per-query row batch
	copyIdx   []int      // probe/routeSel: input column positions to copy
	residuals []appliedResidual

	// Vector-kernel arena (see internal/stem/vec.go). probeKeys doubles as
	// the prune phase's key batch — the selection and join phases of one
	// episode never overlap on a worker, and probe() finishes with these
	// buffers before execChildren recurses into a child probe.
	insKeys    [][]int64          // STeM-insert key columns, built from vIDs
	insScratch stem.InsertScratch // InsertVec bucket pre-linking scratch
	probeKeys  []int64            // kernel input keys (probe + prune)
	probeIn    []int32            // kernel input position -> tuple index
	probeTqs   []uint64           // masked tuple query sets, stride qw
	vmatches   []stem.VecMatch    // ProbeVec output buffer
	matchQs    []uint64           // ProbeVec query-set slab (VecMatch.QSet views)
	pruneQs    []uint64           // SemiJoinVec output slab, stride qw

	// cv is the context view this episode runs against: loaded once per
	// episode (one atomic pointer load), so the hot loops below read an
	// immutable snapshot while the engine admits and retires queries
	// concurrently. clk is the worker's private publication-timestamp block
	// allocator (stem.Clock), eliminating the shared version-clock CAS from
	// the per-episode publish path.
	cv  *view
	clk stem.Clock
}

// NewWorker creates a worker bound to ctx using pol for planning. Buffers
// are sized to the batch's query-ID capacity, so they never resize while a
// streaming batch admits queries (qw == 1 for the default 64-query
// capacity, keeping the single-word fast paths).
func NewWorker(ctx *Context, pol policy.Policy) *Worker {
	qcap := ctx.B.QCap()
	qw := bitset.WordsFor(qcap)
	w := &Worker{
		C: ctx, Pol: pol, qw: qw,
		collect:  ctx.Opt.CollectStats,
		trace:    ctx.Opt.TraceActions,
		tq:       make(bitset.Set, qw),
		zeroQ:    make([]uint64, qw),
		fullMask: bitset.NewFull(qcap),
		notMask:  bitset.New(qcap),
		unionBuf: make(bitset.Set, qw),
	}
	if w.collect {
		w.instIns = make([]int64, len(ctx.B.Insts), query.MaxInstances)
		w.instProbes = make([]int64, len(ctx.B.Insts), query.MaxInstances)
		w.instMatches = make([]int64, len(ctx.B.Insts), query.MaxInstances)
	}
	return w
}

// epCounters is the per-worker stats arena: plain fields mirroring the
// Stats atomics, zeroed by each fold.
type epCounters struct {
	episodes, selIn, selOut, inserted, joinOut, routed int64
	filterNs, buildNs, probeNs, routeNs                int64
	filterOps, probeOps, routeSelOps, routerOps        int64
	sharedOps, opQueries                               int64
}

// foldStats folds the worker's arena counters into the shared atomics and
// resets the arena. Called exactly once per episode — deferred in
// RunEpisode so faulted (panicking) episodes still publish their partial
// counters, and explicitly at the end of StepBench.Step. It never
// allocates.
func (w *Worker) foldStats() {
	s, e := &w.C.Stats, &w.ep
	if e.episodes != 0 {
		s.Episodes.Add(e.episodes)
	}
	if e.selIn != 0 {
		s.SelIn.Add(e.selIn)
	}
	if e.selOut != 0 {
		s.SelOut.Add(e.selOut)
	}
	if e.inserted != 0 {
		s.Inserted.Add(e.inserted)
	}
	if e.joinOut != 0 {
		s.JoinOut.Add(e.joinOut)
	}
	if e.routed != 0 {
		s.Routed.Add(e.routed)
	}
	if e.filterNs != 0 {
		s.FilterNs.Add(e.filterNs)
	}
	if e.buildNs != 0 {
		s.BuildNs.Add(e.buildNs)
	}
	if e.probeNs != 0 {
		s.ProbeNs.Add(e.probeNs)
	}
	if e.routeNs != 0 {
		s.RouteNs.Add(e.routeNs)
	}
	if w.collect {
		if e.filterOps != 0 {
			s.FilterOps.Add(e.filterOps)
		}
		if e.probeOps != 0 {
			s.ProbeOps.Add(e.probeOps)
		}
		if e.routeSelOps != 0 {
			s.RouteSelOps.Add(e.routeSelOps)
		}
		if e.routerOps != 0 {
			s.RouterOps.Add(e.routerOps)
		}
		if e.sharedOps != 0 {
			s.SharedOps.Add(e.sharedOps)
		}
		if e.opQueries != 0 {
			s.OpQueries.Add(e.opQueries)
		}
		for i := range w.instIns {
			st := &w.C.InstStats[i]
			if w.instIns[i] != 0 {
				st.Inserts.Add(w.instIns[i])
				w.instIns[i] = 0
			}
			if w.instProbes[i] != 0 {
				st.Probes.Add(w.instProbes[i])
				w.instProbes[i] = 0
			}
			if w.instMatches[i] != 0 {
				st.Matches.Add(w.instMatches[i])
				w.instMatches[i] = 0
			}
		}
	}
	*e = epCounters{}
}

// foldSig folds one chosen operator into the episode's plan signature
// (FNV-1a-style over (lineage, phase, op)). Episodes that pick the same
// operator sequence over the same lineage states share a signature, so a
// signature change between consecutive episodes of an instance is a plan
// switch.
func (w *Worker) foldSig(phase uint64, op int, lineage uint64) {
	const prime = 0x100000001b3
	w.planSig = (w.planSig ^ lineage) * prime
	w.planSig = (w.planSig ^ (phase<<32 | uint64(op))) * prime
}

// EpisodeReport summarizes one episode for convergence tracking.
type EpisodeReport struct {
	// MeasuredCost is the episode's cost-model total over the execution log.
	MeasuredCost float64
	// MeasuredJoinCost restricts the total to the join phase — the series
	// the Fig. 16 learning curves plot against the policy's join-phase
	// estimate.
	MeasuredJoinCost float64
	// JoinInput is the number of tuples entering the join phase.
	JoinInput int

	// PlanSig identifies the episode's chosen operator sequence; see
	// Worker.foldSig. Always computed (two multiplies per operator) so the
	// flight recorder can stamp episode events with it even when stats
	// collection is off.
	PlanSig uint64
	// ViewGen is the generation of the immutable context view the episode
	// executed against — which batch extension the worker observed.
	ViewGen uint64
	// SelActions and JoinActions are the chosen selection-op IDs and probed
	// edge IDs in execution order (TraceActions only). They alias worker
	// buffers valid until the worker's next episode; consumers copy.
	SelActions  []int32
	JoinActions []int32
}

// ingestVector copies the episode's vIDs into the worker arena and stamps
// every tuple with the active query set.
func (w *Worker) ingestVector(in EpisodeInput) ([]int32, []uint64) {
	w.selVids = append(w.selVids[:0], in.VIDs...)
	need := len(in.VIDs) * w.qw
	if cap(w.selQsets) < need {
		w.selQsets = make([]uint64, need)
	}
	qsets := w.selQsets[:need]
	for i := range in.VIDs {
		base := i * w.qw
		for wd := 0; wd < w.qw; wd++ {
			var word uint64
			if wd < len(in.Active) {
				word = in.Active[wd]
			}
			qsets[base+wd] = word
		}
	}
	return w.selVids, qsets
}

// runSelSteps applies a planned selection-phase operator chain to the
// ingested vector, compacting after every step and logging each decision.
func (w *Worker) runSelSteps(in EpisodeInput, steps []plan.SelStep, vids []int32, qsets []uint64) ([]int32, []uint64) {
	c := w.C
	cv := w.cv
	for si := range steps {
		st := &steps[si]
		nIn := len(vids)
		if nIn == 0 {
			break
		}
		if ref := cv.selOps[st.Op.ID]; !ref.prune {
			cv.filters[ref.idx].Apply(c.Opt.GroupedFilters, vids, qsets, w.qw)
		} else {
			w.applyPrune(&cv.pruneOps[ref.idx], st.Op.Queries, vids, qsets)
		}
		vids, qsets = compact(vids, qsets, w.qw)
		w.foldSig(0, st.Op.ID, st.Applied)
		if w.collect {
			w.ep.filterOps++
			served := andCount(st.Op.Queries, in.Active)
			w.ep.opQueries += int64(served)
			if served > 1 {
				w.ep.sharedOps++
			}
		}
		if w.trace {
			w.selActs = append(w.selActs, int32(st.Op.ID))
		}
		w.log = append(w.log, policy.LogEntry{
			Phase: policy.SelPhase, Inst: in.Inst,
			Lineage: st.Applied, Q: in.Active, Op: st.Op.ID,
			NIn: nIn, NOut: len(vids), NDiv: -1,
			MainLineage: st.NextApplied, QMain: in.Active, MainCands: st.NextCands,
		})
	}
	return vids, qsets
}

// rootVec wraps the surviving selection-phase vector as the join-phase root
// without copying; it aliases the worker's ingest buffers.
func (w *Worker) rootVec(inst query.InstID, vids []int32, qsets []uint64, n int) *jvec {
	v := &w.root
	v.insts = append(v.insts[:0], inst)
	v.vids = append(v.vids[:0], vids)
	v.qsets = qsets
	v.n = n
	return v
}

// RunEpisode processes one episode: selection phase, STeM insert, join
// phase, routing, and the policy update from the episode's execution log.
// A non-nil error means the episode was aborted before completing its STeM
// insertion (injected or real insertion failure); the episode's version
// slot is published regardless so concurrent probes never spin on it.
func (w *Worker) RunEpisode(in EpisodeInput) (EpisodeReport, error) {
	c := w.C
	w.cv = c.loadView()
	if h := c.Opt.Hooks.EpisodeStart; h != nil {
		h(in.Inst, in.Slot)
	}
	w.log = w.log[:0]
	w.planSig = 0
	if w.collect && len(w.instIns) < len(w.cv.g.Insts) {
		// A live-admitted query added instances since this worker was built;
		// extend the per-instance arenas (capacity reserved at creation, so
		// steady state never reallocates).
		n := len(w.cv.g.Insts)
		w.instIns = w.instIns[:n]
		w.instProbes = w.instProbes[:n]
		w.instMatches = w.instMatches[:n]
	}
	if w.trace {
		w.selActs = w.selActs[:0]
		w.joinActs = w.joinActs[:0]
	}
	defer w.foldStats() // runs during panic unwind too: faulted episodes fold
	w.ep.episodes++

	// ---- Selection phase -------------------------------------------------
	t0 := time.Now()
	vids, qsets := w.ingestVector(in)
	w.ep.selIn += int64(len(vids))
	steps := plan.BuildSel(w.Pol, in.Inst, in.Active, in.SelOps)
	vids, qsets = w.runSelSteps(in, steps, vids, qsets)
	w.ep.filterNs += time.Since(t0).Nanoseconds()
	w.ep.selOut += int64(len(vids))

	// ---- STeM insert (make the join symmetric) ---------------------------
	if h := c.Opt.Hooks.StemInsert; h != nil {
		if err := h(in.Inst, in.Slot); err != nil {
			c.Versions.Publish(in.Slot)
			return EpisodeReport{}, err
		}
	}
	t0 = time.Now()
	nk := len(w.cv.stemKeyCols[in.Inst])
	for len(w.insKeys) < nk {
		w.insKeys = append(w.insKeys, nil)
	}
	ik := w.insKeys[:nk]
	for k, colData := range w.cv.stemKeySlices[in.Inst] {
		col := ik[k][:0]
		for _, vid := range vids {
			col = append(col, colData[vid])
		}
		ik[k] = col
	}
	w.cv.stems[in.Inst].InsertVec(vids, ik, qsets, w.qw, in.Slot, &w.insScratch)
	// PublishClocked reads the watermark before drawing the publish
	// timestamp from the worker's block clock: every slot under wm then has
	// a timestamp strictly older than ts, letting the probe kernels skip
	// per-entry version lookups (stem.ProbeVec).
	wm, ts := c.Versions.PublishClocked(in.Slot, &w.clk)
	w.ep.buildNs += time.Since(t0).Nanoseconds()
	w.ep.inserted += int64(len(vids))
	if w.collect {
		w.instIns[in.Inst] += int64(len(vids))
	}

	joinInput := len(vids)
	if joinInput > 0 {
		// ---- Join phase ---------------------------------------------------
		root := plan.BuildJoin(&w.cv.g, w.Pol, in.Inst, in.Active, c.ReqInsts)
		w.execChildren(root, w.rootVec(in.Inst, vids, qsets, joinInput), ts, wm)
	}

	rep := EpisodeReport{JoinInput: joinInput, PlanSig: w.planSig, ViewGen: w.cv.gen}
	rep.MeasuredCost, rep.MeasuredJoinCost = w.measuredCost()
	if w.trace {
		rep.SelActions, rep.JoinActions = w.selActs, w.joinActs
	}
	w.Pol.Observe(w.log)
	return rep, nil
}

// measuredCost totals the episode's log through the cost model: join-phase
// probes (plus routing selections on divergence) and selection operators.
// It returns the full total and the join-phase-only total.
func (w *Worker) measuredCost() (total, join float64) {
	m := w.C.Model
	for i := range w.log {
		e := &w.log[i]
		switch e.Phase {
		case policy.JoinPhase:
			c := m.Cost(cost.Join, float64(e.NIn), float64(e.NOut))
			if e.NDiv >= 0 {
				c += m.Cost(cost.RoutingSelection, float64(e.NIn), float64(e.NDiv))
			}
			total += c
			join += c
		case policy.SelPhase:
			total += m.Cost(cost.Selection, float64(e.NIn), float64(e.NOut))
		}
	}
	return total, join
}

// applyPrune intersects each tuple's query set with the union of matching
// query sets in the opposite STeM, restricted to the eligible queries
// (symmetric join pruning, §5.2). The whole vector goes through one
// SemiJoinVec kernel call: keys are gathered into the worker's key batch,
// matching query-set unions land in the pruneQs slab, and the mask is
// applied tuple by tuple afterwards.
func (w *Worker) applyPrune(p *PruneOp, elig bitset.Set, vids []int32, qsets []uint64) {
	other := w.cv.stems[p.Other]
	local := w.cv.tables[p.Inst].Col(p.LocalCol)
	w.notMask = w.fullMask.CopyInto(w.notMask)
	notMask := w.notMask
	notMask.AndNotWith(elig)

	n := len(vids)
	pk := w.probeKeys[:0]
	for _, vid := range vids {
		pk = append(pk, local[vid])
	}
	w.probeKeys = pk
	need := n * w.qw
	if cap(w.pruneQs) < need {
		w.pruneQs = make([]uint64, need)
	}
	outs := w.pruneQs[:need]
	for i := range outs {
		outs[i] = 0
	}
	other.SemiJoinVec(outs, w.qw, p.OtherCol, pk)
	for i := 0; i < n; i++ {
		base := i * w.qw
		for wd := 0; wd < w.qw; wd++ {
			m := outs[base+wd]
			if wd < len(notMask) {
				m |= notMask[wd]
			}
			qsets[base+wd] &= m
		}
	}
}

// andCount returns the popcount of a ∧ b without materializing it.
func andCount(a, b bitset.Set) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

// compact drops tuples with empty query sets, in place.
func compact(vids []int32, qsets []uint64, qw int) ([]int32, []uint64) {
	out := 0
	if qw == 1 {
		for i := range vids {
			if qsets[i] != 0 {
				vids[out] = vids[i]
				qsets[out] = qsets[i]
				out++
			}
		}
		return vids[:out], qsets[:out]
	}
	for i := range vids {
		base := i * qw
		empty := true
		for wd := 0; wd < qw; wd++ {
			if qsets[base+wd] != 0 {
				empty = false
				break
			}
		}
		if !empty {
			if out != i {
				vids[out] = vids[i]
				copy(qsets[out*qw:out*qw+qw], qsets[base:base+qw])
			}
			out++
		}
	}
	return vids[:out], qsets[:out*qw]
}

// execChildren runs node's children over its output vector v: probe
// sub-plans before divergence sub-plans, bounding pending vectors (§3).
// Intermediate vectors return to the worker pool as soon as their sub-plan
// completes.
func (w *Worker) execChildren(n *plan.Node, v *jvec, ts int64, wm stem.Slot) {
	for _, ch := range n.Children {
		switch ch.Kind {
		case plan.Router:
			w.route(ch, v)
		case plan.RouteSel:
			// Executed through the sibling probe's Div pointer.
		case plan.Probe:
			out, logIdx := w.probe(ch, v, ts, wm)
			w.execChildren(ch, out, ts, wm)
			w.pool.put(out)
			if ch.Div != nil {
				divOut := w.routeSel(ch.Div, v)
				w.log[logIdx].NDiv = divOut.n
				w.execChildren(ch.Div, divOut, ts, wm)
				w.pool.put(divOut)
			}
		}
	}
}

// appliedResidual is a cycle-closing residual predicate completed by the
// current probe: it clears its query's bit from output tuples whose
// endpoint values differ.
type appliedResidual struct {
	qid        int
	otherIdx   int
	otherData  []int64
	targetData []int64
}

// emitTuple appends tuple i's kept vID columns (plus, for probes, the
// matched vID) to out. Kept free of closure state so the probe and routing-
// selection hot loops stay allocation-free.
func emitTuple(out *jvec, copyIdx []int, v *jvec, i, targetPos int, vid int32) {
	for oi, vi := range copyIdx {
		out.vids[oi] = append(out.vids[oi], v.vids[vi][i])
	}
	if targetPos >= 0 {
		out.vids[targetPos] = append(out.vids[targetPos], vid)
	}
	out.n++
}

// probe executes one STeM probe node, producing the expanded vector and the
// index of its log entry (whose NDiv the caller may patch). The output
// vector comes from the worker pool; the caller releases it.
func (w *Worker) probe(nd *plan.Node, v *jvec, ts int64, wm stem.Slot) (*jvec, int) {
	c := w.C
	cv := w.cv
	t0 := time.Now()
	e := &cv.g.Edges[nd.EdgeID]
	var src query.InstID
	var srcData []int64
	var targetCol string
	if nd.Target == e.A {
		src, srcData, targetCol = e.B, cv.edgeBCol[e.ID], e.ACol
	} else {
		src, srcData, targetCol = e.A, cv.edgeACol[e.ID], e.BCol
	}
	srcIdx := v.instIdx(src)

	// Residual predicates completed by this probe: cycle-closing joins whose
	// second endpoint is the probed instance.
	residuals := w.residuals[:0]
	for ri := range cv.g.Residuals {
		r := &cv.g.Residuals[ri]
		var other query.InstID
		var otherData, targetData []int64
		switch {
		case r.A == nd.Target && nd.Lineage&(1<<r.B) != 0:
			other, otherData, targetData = r.B, cv.resBCol[ri], cv.resACol[ri]
		case r.B == nd.Target && nd.Lineage&(1<<r.A) != 0:
			other, otherData, targetData = r.A, cv.resACol[ri], cv.resBCol[ri]
		default:
			continue
		}
		if !nd.Q.Contains(r.QID) {
			continue
		}
		if oi := v.instIdx(other); oi >= 0 {
			residuals = append(residuals, appliedResidual{r.QID, oi, otherData, targetData})
		}
	}
	w.residuals = residuals

	// Output columns: what the children need (adaptive projections), or the
	// full lineage when the optimization is off.
	var outKeep uint64
	if c.Opt.AdaptiveProjections {
		for _, ch := range nd.Children {
			outKeep |= ch.Keep
		}
	} else {
		outKeep = nd.MainLineage
	}
	out := w.pool.get()
	copyIdx := w.copyIdx[:0]
	for i, inst := range v.insts {
		if outKeep&(1<<inst) != 0 {
			out.insts = append(out.insts, inst)
			out.vids = append(out.vids, w.pool.col())
			copyIdx = append(copyIdx, i)
		}
	}
	w.copyIdx = copyIdx
	targetPos := -1
	if outKeep&(1<<nd.Target) != 0 {
		targetPos = len(out.insts)
		out.insts = append(out.insts, nd.Target)
		out.vids = append(out.vids, w.pool.col())
	}

	// Gather phase: eligible tuples' join keys and masked query sets move
	// into the worker's kernel batch, then one ProbeVec call replaces the
	// per-tuple STeM probes (stem/vec.go). The merge loop reads matches in
	// input order, so output tuples append in the same order as before.
	qmask := nd.Q
	stemT := cv.stems[nd.Target]
	pk := w.probeKeys[:0]
	pin := w.probeIn[:0]
	srcVids := v.vids[srcIdx]
	if w.qw == 1 {
		// Fast path: batches of up to 64 queries use single-word query
		// sets; the generic word loops dominate the probe otherwise.
		var mask uint64
		if len(qmask) > 0 {
			mask = qmask[0]
		}
		ptq := w.probeTqs[:0]
		for i := 0; i < v.n; i++ {
			tqw := v.qsets[i] & mask
			if tqw == 0 {
				continue
			}
			pk = append(pk, srcData[srcVids[i]])
			pin = append(pin, int32(i))
			ptq = append(ptq, tqw)
		}
		w.probeKeys, w.probeIn, w.probeTqs = pk, pin, ptq
		w.vmatches, w.matchQs = stemT.ProbeVec(w.vmatches[:0], w.matchQs[:0], targetCol, pk, ts, wm)
		for mi := range w.vmatches {
			m := &w.vmatches[mi]
			j := int(m.In)
			i := int(pin[j])
			var mw uint64
			if len(m.QSet) > 0 {
				mw = m.QSet[0]
			}
			oqw := ptq[j] & mw
			if oqw == 0 {
				continue
			}
			for _, rr := range residuals {
				bit := uint64(1) << uint(rr.qid)
				if oqw&bit != 0 {
					// NULL endpoints (value.NullCode) never satisfy the
					// equality — the ov == NullCode check also rejects the
					// NULL = NULL case, which != alone would let through.
					ov := rr.otherData[v.vids[rr.otherIdx][i]]
					if ov != rr.targetData[m.VID] || ov == value.NullCode {
						oqw &^= bit
					}
				}
			}
			if oqw == 0 {
				continue
			}
			out.qsets = append(out.qsets, oqw)
			emitTuple(out, copyIdx, v, i, targetPos, m.VID)
		}
	} else {
		ptq := w.probeTqs[:0]
		for i := 0; i < v.n; i++ {
			base := i * w.qw
			empty := true
			tq := w.tq
			for wd := 0; wd < w.qw; wd++ {
				var m uint64
				if wd < len(qmask) {
					m = qmask[wd]
				}
				tq[wd] = v.qsets[base+wd] & m
				if tq[wd] != 0 {
					empty = false
				}
			}
			if empty {
				continue
			}
			pk = append(pk, srcData[srcVids[i]])
			pin = append(pin, int32(i))
			ptq = append(ptq, tq...)
		}
		w.probeKeys, w.probeIn, w.probeTqs = pk, pin, ptq
		w.vmatches, w.matchQs = stemT.ProbeVec(w.vmatches[:0], w.matchQs[:0], targetCol, pk, ts, wm)
		for mi := range w.vmatches {
			m := &w.vmatches[mi]
			j := int(m.In)
			i := int(pin[j])
			tq := ptq[j*w.qw : (j+1)*w.qw]
			// Build the output query set in place at the slab's tail;
			// roll back the extension if it comes out empty.
			out.qsets = append(out.qsets, w.zeroQ...)
			oq := out.qsets[len(out.qsets)-w.qw:]
			outEmpty := true
			for wd := 0; wd < w.qw; wd++ {
				var mw uint64
				if wd < len(m.QSet) {
					mw = m.QSet[wd]
				}
				oq[wd] = tq[wd] & mw
				if oq[wd] != 0 {
					outEmpty = false
				}
			}
			if !outEmpty && len(residuals) > 0 {
				for _, rr := range residuals {
					wd, bit := rr.qid/64, uint64(1)<<(rr.qid%64)
					if oq[wd]&bit != 0 {
						// NULL never satisfies the residual equality; the
						// ov == NullCode check rejects NULL = NULL too.
						ov := rr.otherData[v.vids[rr.otherIdx][i]]
						if ov != rr.targetData[m.VID] || ov == value.NullCode {
							oq[wd] &^= bit
						}
					}
				}
				outEmpty = true
				for wd := 0; wd < w.qw; wd++ {
					if oq[wd] != 0 {
						outEmpty = false
						break
					}
				}
			}
			if outEmpty {
				out.qsets = out.qsets[:len(out.qsets)-w.qw]
				continue
			}
			emitTuple(out, copyIdx, v, i, targetPos, m.VID)
		}
	}
	lookups := int64(len(pk)) // STeM probe keys; folded per instance when collecting
	w.ep.joinOut += int64(out.n)
	w.ep.probeNs += time.Since(t0).Nanoseconds()
	w.foldSig(1, nd.EdgeID, nd.Lineage)
	if w.collect {
		w.ep.probeOps++
		served := nd.Q.Count()
		w.ep.opQueries += int64(served)
		if served > 1 {
			w.ep.sharedOps++
		}
		w.instProbes[nd.Target] += lookups
		w.instMatches[nd.Target] += int64(out.n)
	}
	if w.trace {
		w.joinActs = append(w.joinActs, int32(nd.EdgeID))
	}

	var divQ bitset.Set
	if nd.Div != nil {
		divQ = nd.Div.Q
	}
	w.log = append(w.log, policy.LogEntry{
		Phase:   policy.JoinPhase,
		Lineage: nd.Lineage, Q: nd.StateQ, Op: nd.EdgeID,
		NIn: v.n, NOut: out.n, NDiv: -1,
		MainLineage: nd.MainLineage, QMain: nd.Q, MainCands: nd.MainCands,
		DivQ: divQ, DivCands: nd.DivCands,
	})
	return out, len(w.log) - 1
}

// routeSel executes a routing selection: tuples keep only nd.Q's bits and
// empty tuples are dropped; vID columns are projected to nd.Keep. The
// output vector comes from the worker pool; the caller releases it.
func (w *Worker) routeSel(nd *plan.Node, v *jvec) *jvec {
	t0 := time.Now()
	keep := nd.Keep
	if !w.C.Opt.AdaptiveProjections {
		keep = nd.Lineage
	}
	out := w.pool.get()
	copyIdx := w.copyIdx[:0]
	for i, inst := range v.insts {
		if keep&(1<<inst) != 0 {
			out.insts = append(out.insts, inst)
			out.vids = append(out.vids, w.pool.col())
			copyIdx = append(copyIdx, i)
		}
	}
	w.copyIdx = copyIdx
	qmask := nd.Q
	if w.qw == 1 {
		var mask uint64
		if len(qmask) > 0 {
			mask = qmask[0]
		}
		for i := 0; i < v.n; i++ {
			qw := v.qsets[i] & mask
			if qw == 0 {
				continue
			}
			out.qsets = append(out.qsets, qw)
			emitTuple(out, copyIdx, v, i, -1, 0)
		}
	} else {
		for i := 0; i < v.n; i++ {
			base := i * w.qw
			out.qsets = append(out.qsets, w.zeroQ...)
			q := out.qsets[len(out.qsets)-w.qw:]
			empty := true
			for wd := 0; wd < w.qw; wd++ {
				var m uint64
				if wd < len(qmask) {
					m = qmask[wd]
				}
				q[wd] = v.qsets[base+wd] & m
				if q[wd] != 0 {
					empty = false
				}
			}
			if empty {
				out.qsets = out.qsets[:len(out.qsets)-w.qw]
				continue
			}
			emitTuple(out, copyIdx, v, i, -1, 0)
		}
	}
	// Routing-selection time lands in the probe bucket, matching the cost
	// model (§6.3 charges routing selections to the join phase).
	w.ep.probeNs += time.Since(t0).Nanoseconds()
	if w.collect {
		w.ep.routeSelOps++
		served := nd.Q.Count()
		w.ep.opQueries += int64(served)
		if served > 1 {
			w.ep.sharedOps++
		}
	}
	return out
}

// route multicasts v's tuples to the RouLette sources of the queries in
// nd.Q. The locality-conscious router (§5.1) accumulates per-query rows in
// worker-local buffers and appends them in one batch per query; the naive
// router locks the source for every tuple.
func (w *Worker) route(nd *plan.Node, v *jvec) {
	c := w.C
	t0 := time.Now()
	// Union the present query bits into worker scratch (router fast path:
	// skip queries with no tuples at all), then decode nd.Q ∩ union.
	u := w.unionBuf
	for wd := range u {
		u[wd] = 0
	}
	for i := 0; i < v.n; i++ {
		base := i * w.qw
		for wd := 0; wd < w.qw; wd++ {
			u[wd] |= v.qsets[base+wd]
		}
	}
	u.AndWith(nd.Q)
	qids := u.AppendIDs(w.qidBuf[:0])
	w.qidBuf = qids
	if c.Opt.LocalityRouter {
		for _, qid := range qids {
			src := c.Sources[qid]
			flat := w.flat[:0]
			rows := 0
			colIdx := w.sourceCols(src, v)
			for i := 0; i < v.n; i++ {
				if !tupleHas(v, w.qw, i, qid) {
					continue
				}
				for _, ci := range colIdx {
					flat = append(flat, v.vids[ci][i])
				}
				rows++
			}
			w.flat = flat
			src.Append(flat, rows)
			w.ep.routed += int64(rows)
		}
	} else {
		for _, qid := range qids {
			src := c.Sources[qid]
			colIdx := w.sourceCols(src, v)
			for i := 0; i < v.n; i++ {
				if !tupleHas(v, w.qw, i, qid) {
					continue
				}
				row := w.flat[:0]
				for _, ci := range colIdx {
					row = append(row, v.vids[ci][i])
				}
				w.flat = row
				src.Append(row, 1)
				w.ep.routed++
			}
		}
	}
	w.ep.routeNs += time.Since(t0).Nanoseconds()
	// A vector with no tuples for nd.Q's queries routes nothing; don't count
	// a zero-query invocation (it would drag FanOut below 1).
	if w.collect && len(qids) > 0 {
		w.ep.routerOps++
		w.ep.opQueries += int64(len(qids))
		if len(qids) > 1 {
			w.ep.sharedOps++
		}
	}
}

// sourceCols maps a source's required instances to v's column indices,
// reusing the worker's index buffer.
func (w *Worker) sourceCols(src *Source, v *jvec) []int {
	idx := w.colIdx[:0]
	for _, inst := range src.Insts {
		idx = append(idx, v.instIdx(inst))
	}
	w.colIdx = idx
	return idx
}

// tupleHas reports whether tuple i's query set contains qid.
func tupleHas(v *jvec, qw, i, qid int) bool {
	wd := qid / 64
	if wd >= qw {
		return false
	}
	return v.qsets[i*qw+wd]&(1<<(qid%64)) != 0
}
