package exec

import (
	"testing"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/stem"
	"github.com/roulette-db/roulette/internal/storage"
)

// twoTableDB: r(k, v) and s(k, v) with deterministic contents.
//
//	r: k = i%4,  v = i        (12 rows)
//	s: k = i,    v = 10*i     (4 rows)
func twoTableDB() *storage.Database {
	r := catalog.NewRelation("r", "k", "v")
	sRel := catalog.NewRelation("s", "k", "v")
	sch := catalog.NewSchema(r, sRel)
	db := storage.NewDatabase(sch)
	rt := storage.NewTable(r, 12)
	for i := 0; i < 12; i++ {
		rt.Col("k")[i] = int64(i % 4)
		rt.Col("v")[i] = int64(i)
	}
	db.Put(rt)
	st := storage.NewTable(sRel, 4)
	for i := 0; i < 4; i++ {
		st.Col("k")[i] = int64(i)
		st.Col("v")[i] = int64(10 * i)
	}
	db.Put(st)
	return db
}

// joinBatch compiles n identical r⋈s count queries with per-query filters.
func joinBatch(t *testing.T, n int, withFilter bool) *query.Batch {
	t.Helper()
	qs := make([]*query.Query, n)
	for i := range qs {
		q := &query.Query{
			Rels:  []query.RelRef{{Table: "r"}, {Table: "s"}},
			Joins: []query.Join{{LeftAlias: "r", LeftCol: "k", RightAlias: "s", RightCol: "k"}},
		}
		if withFilter {
			q.Filters = []query.Filter{{Alias: "r", Col: "v", Lo: 0, Hi: int64(5 + i)}}
		}
		qs[i] = q
	}
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// ingest runs one episode per relation covering all rows.
func ingest(t *testing.T, ctx *Context, w *Worker, b *query.Batch) {
	t.Helper()
	active := bitset.NewFull(b.N)
	for inst := range b.Insts {
		rows := ctx.Tables[inst].NumRows()
		vids := make([]int32, rows)
		for i := range vids {
			vids[i] = int32(i)
		}
		w.RunEpisode(EpisodeInput{
			Inst:   query.InstID(inst),
			VIDs:   vids,
			Active: active,
			Slot:   stem.Slot(inst),
			SelOps: ctx.SelOpsFor(query.InstID(inst), nil),
		})
	}
}

func TestRunEpisodeEndToEnd(t *testing.T) {
	db := twoTableDB()
	for _, opts := range []struct {
		name string
		mod  func(*Options)
	}{
		{"defaults", func(*Options) {}},
		{"naiveRouter", func(o *Options) { o.LocalityRouter = false }},
		{"naiveFilters", func(o *Options) { o.GroupedFilters = false }},
		{"noProjection", func(o *Options) { o.AdaptiveProjections = false }},
	} {
		t.Run(opts.name, func(t *testing.T) {
			b := joinBatch(t, 2, true)
			o := DefaultOptions()
			o.CollectRows = false
			opts.mod(&o)
			ctx, err := NewContext(b, db, o, nil)
			if err != nil {
				t.Fatal(err)
			}
			w := NewWorker(ctx, policy.NewRandom(1))
			ingest(t, ctx, w, b)

			// Query 0 keeps r.v in [0,5] (6 rows), each joining one s row;
			// query 1 keeps [0,6] (7 rows).
			if got := ctx.Sources[0].Count(); got != 6 {
				t.Errorf("q0 count = %d, want 6", got)
			}
			if got := ctx.Sources[1].Count(); got != 7 {
				t.Errorf("q1 count = %d, want 7", got)
			}
			if ctx.Stats.Episodes.Load() != 2 {
				t.Errorf("episodes = %d", ctx.Stats.Episodes.Load())
			}
			if ctx.Stats.JoinOut.Load() == 0 {
				t.Error("no join tuples recorded")
			}
		})
	}
}

func TestRunEpisodeMultiWordQuerySets(t *testing.T) {
	// 70 queries forces two-word query sets (the generic slow path).
	db := twoTableDB()
	b := joinBatch(t, 70, false)
	o := DefaultOptions()
	o.CollectRows = false
	ctx, err := NewContext(b, db, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(ctx, policy.NewRandom(2))
	ingest(t, ctx, w, b)
	for qid := 0; qid < b.N; qid++ {
		if got := ctx.Sources[qid].Count(); got != 12 {
			t.Fatalf("query %d count = %d, want 12 (every r row joins once)", qid, got)
		}
	}
}

func TestEpisodeReportCosts(t *testing.T) {
	db := twoTableDB()
	b := joinBatch(t, 1, true)
	o := DefaultOptions()
	o.CollectRows = false
	ctx, err := NewContext(b, db, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(ctx, policy.NewRandom(3))
	active := bitset.NewFull(1)
	rep, err := w.RunEpisode(EpisodeInput{
		Inst: 0, VIDs: []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
		Active: active, Slot: 0, SelOps: ctx.SelOpsFor(0, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.JoinInput != 6 { // filter keeps v in [0,5]
		t.Errorf("JoinInput = %d, want 6", rep.JoinInput)
	}
	if rep.MeasuredCost <= 0 || rep.MeasuredJoinCost <= 0 {
		t.Errorf("costs = %v / %v", rep.MeasuredCost, rep.MeasuredJoinCost)
	}
	if rep.MeasuredJoinCost > rep.MeasuredCost {
		t.Error("join cost exceeds total")
	}
}

func TestPruneFilterDropsUnjoinable(t *testing.T) {
	// Ingest s first and mark it prunable; r rows with k=3 must be dropped
	// when s only contains keys 0..2.
	r := catalog.NewRelation("r", "k")
	sRel := catalog.NewRelation("s", "k")
	sch := catalog.NewSchema(r, sRel)
	db := storage.NewDatabase(sch)
	rt := storage.NewTable(r, 8)
	for i := 0; i < 8; i++ {
		rt.Col("k")[i] = int64(i % 4)
	}
	db.Put(rt)
	st := storage.NewTable(sRel, 3)
	for i := 0; i < 3; i++ {
		st.Col("k")[i] = int64(i)
	}
	db.Put(st)

	q := &query.Query{
		Rels:  []query.RelRef{{Table: "r"}, {Table: "s"}},
		Joins: []query.Join{{LeftAlias: "r", LeftCol: "k", RightAlias: "s", RightCol: "k"}},
	}
	b, err := query.Compile([]*query.Query{q})
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.CollectRows = false
	ctx, err := NewContext(b, db, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(ctx, policy.NewRandom(4))
	active := bitset.NewFull(1)

	sInst, _ := b.InstOfAlias(0, "s")
	rInst, _ := b.InstOfAlias(0, "r")
	w.RunEpisode(EpisodeInput{
		Inst: sInst, VIDs: []int32{0, 1, 2}, Active: active, Slot: 0,
		SelOps: ctx.SelOpsFor(sInst, nil),
	})
	// r's episode with s prunable: tuples with k=3 pruned before insert.
	elig := bitset.NewFull(1)
	rep, err := w.RunEpisode(EpisodeInput{
		Inst: rInst, VIDs: []int32{0, 1, 2, 3, 4, 5, 6, 7}, Active: active, Slot: 1,
		SelOps: ctx.SelOpsFor(rInst, func(int, query.InstID) bitset.Set { return elig }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.JoinInput != 6 { // 8 rows minus the two k=3 rows
		t.Errorf("pruned join input = %d, want 6", rep.JoinInput)
	}
	if got := ctx.Sources[0].Count(); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	if ctx.Stems[rInst].Len() != 6 {
		t.Errorf("STeM entries = %d, want 6 (pruning reduces materialization)", ctx.Stems[rInst].Len())
	}
}

func TestCollectedRowsCarryRequiredColumns(t *testing.T) {
	db := twoTableDB()
	q := &query.Query{
		Rels:  []query.RelRef{{Table: "r"}, {Table: "s"}},
		Joins: []query.Join{{LeftAlias: "r", LeftCol: "k", RightAlias: "s", RightCol: "k"}},
		Agg:   query.Agg{Kind: query.AggSum, Alias: "s", Col: "v"},
	}
	b, err := query.Compile([]*query.Query{q})
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	ctx, err := NewContext(b, db, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(ctx, policy.NewRandom(5))
	ingest(t, ctx, w, b)

	rows, width := ctx.Sources[0].Rows()
	if width != 1 {
		t.Fatalf("row width = %d, want 1 (only s's vID is required)", width)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	sv := db.MustTable("s").Col("v")
	var sum int64
	for _, vid := range rows {
		sum += sv[vid]
	}
	// Each s key appears 3 times in r: sum = 3*(0+10+20+30).
	if sum != 180 {
		t.Errorf("sum over routed rows = %d, want 180", sum)
	}
}
