package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/cost"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
)

// filterFixture builds a grouped filter over a column of values 0..999 with
// random per-query ranges.
func filterFixture(rng *rand.Rand, nQueries, nPreds int) (*query.SelCol, []int64) {
	col := make([]int64, 500)
	for i := range col {
		col[i] = int64(rng.Intn(1000))
	}
	sc := &query.SelCol{Inst: 0, Col: "c", Queries: bitset.New(nQueries)}
	for p := 0; p < nPreds; p++ {
		qid := rng.Intn(nQueries)
		lo := int64(rng.Intn(900))
		hi := lo + int64(rng.Intn(200))
		sc.Preds = append(sc.Preds, query.Pred{QID: qid, Lo: lo, Hi: hi})
		sc.Queries.Add(qid)
	}
	return sc, col
}

func TestGroupedFilterEquivalentToNaive(t *testing.T) {
	// Property: the range-table path and the per-predicate path compute the
	// same masks for every value (the grouped-filter optimization must be
	// semantics-preserving).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nQ := 1 + rng.Intn(100)
		sc, col := filterFixture(rng, nQ, 1+rng.Intn(20))
		gf := NewGroupedFilter(nQ, sc, col, nil)
		scratch := bitset.New(nQ)
		for _, v := range []int64{-5, 0, 1, 500, 999, 1100, col[0], col[10]} {
			a := gf.maskFor(v)
			b := gf.naiveMask(v, scratch)
			if !a.Equal(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGroupedFilterSemantics(t *testing.T) {
	// Three queries: q0 wants [10,20], q1 wants [15,30], q2 no predicate.
	sc := &query.SelCol{
		Inst: 0, Col: "c",
		Preds:   []query.Pred{{QID: 0, Lo: 10, Hi: 20}, {QID: 1, Lo: 15, Hi: 30}},
		Queries: bitset.FromIDs(3, 0, 1),
	}
	col := []int64{5, 12, 17, 25, 40}
	gf := NewGroupedFilter(3, sc, col, nil)

	cases := []struct {
		v    int64
		want []int
	}{
		{5, []int{2}},        // no predicate satisfied; q2 passes through
		{12, []int{0, 2}},    // only q0
		{17, []int{0, 1, 2}}, // both
		{25, []int{1, 2}},    // only q1
		{40, []int{2}},
	}
	for _, c := range cases {
		m := gf.maskFor(c.v)
		got := m.IDs()
		if len(got) != len(c.want) {
			t.Errorf("maskFor(%d) = %v, want %v", c.v, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("maskFor(%d) = %v, want %v", c.v, got, c.want)
			}
		}
	}
}

func TestGroupedFilterApplyCompact(t *testing.T) {
	sc := &query.SelCol{
		Inst: 0, Col: "c",
		Preds:   []query.Pred{{QID: 0, Lo: 0, Hi: 9}},
		Queries: bitset.FromIDs(1, 0),
	}
	col := []int64{5, 50, 7}
	gf := NewGroupedFilter(1, sc, col, nil)
	vids := []int32{0, 1, 2}
	qsets := []uint64{1, 1, 1}
	gf.Apply(true, vids, qsets, 1)
	vids, qsets = compact(vids, qsets, 1)
	if len(vids) != 2 || vids[0] != 0 || vids[1] != 2 {
		t.Errorf("surviving vids = %v, want [0 2]", vids)
	}
	if len(qsets) != 2 {
		t.Errorf("qsets len = %d", len(qsets))
	}
}

func TestCompactMultiWord(t *testing.T) {
	// 3 tuples over 2-word query sets; middle one empty.
	vids := []int32{10, 11, 12}
	qsets := []uint64{1, 0 /**/, 0, 0 /**/, 0, 1 << 5}
	vids, qsets = compact(vids, qsets, 2)
	if len(vids) != 2 || vids[0] != 10 || vids[1] != 12 {
		t.Fatalf("vids = %v", vids)
	}
	if qsets[0] != 1 || qsets[3] != 1<<5 {
		t.Fatalf("qsets = %v", qsets)
	}
}

func TestSourceCountOnly(t *testing.T) {
	s := NewSource(nil, true) // no required insts: count-only regardless
	s.Append(nil, 5)
	s.Append(nil, 3)
	if s.Count() != 8 {
		t.Errorf("count = %d", s.Count())
	}
	rows, w := s.Rows()
	if len(rows) != 0 || w != 0 {
		t.Errorf("count-only source stored rows")
	}
}

func TestSourceCollectRows(t *testing.T) {
	s := NewSource([]query.InstID{0, 2}, true)
	s.Append([]int32{1, 2, 3, 4}, 2)
	rows, w := s.Rows()
	if w != 2 || len(rows) != 4 || rows[2] != 3 {
		t.Errorf("rows = %v width %d", rows, w)
	}
	s.Reset()
	if s.Count() != 0 {
		t.Error("Reset did not clear count")
	}
}

func TestStatsBreakdown(t *testing.T) {
	var st Stats
	st.FilterNs.Store(10)
	st.BuildNs.Store(20)
	st.ProbeNs.Store(50)
	st.RouteNs.Store(20)
	f, b, p, r := st.Breakdown()
	if f != 0.1 || b != 0.2 || p != 0.5 || r != 0.2 {
		t.Errorf("breakdown = %v %v %v %v", f, b, p, r)
	}
	var empty Stats
	if f, _, _, _ := empty.Breakdown(); f != 0 {
		t.Error("empty breakdown should be zeros")
	}
}

func TestNewContextValidation(t *testing.T) {
	rel := catalog.NewRelation("r", "a")
	sch := catalog.NewSchema(rel)
	db := storage.NewDatabase(sch)
	db.Put(storage.NewTable(rel, 10))

	// Unknown table.
	q := &query.Query{Rels: []query.RelRef{{Table: "missing"}}}
	b, err := query.Compile([]*query.Query{q})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewContext(b, db, DefaultOptions(), nil); err == nil {
		t.Error("missing table accepted")
	}

	// Unknown join column.
	q2 := &query.Query{
		Rels:  []query.RelRef{{Table: "r", Alias: "x"}, {Table: "r", Alias: "y"}},
		Joins: []query.Join{{LeftAlias: "x", LeftCol: "nope", RightAlias: "y", RightCol: "a"}},
	}
	b2, err := query.Compile([]*query.Query{q2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewContext(b2, db, DefaultOptions(), nil); err == nil {
		t.Error("missing join column accepted")
	}

	// Unknown filter column.
	q3 := &query.Query{
		Rels:    []query.RelRef{{Table: "r"}},
		Filters: []query.Filter{{Alias: "r", Col: "nope", Lo: 0, Hi: 1}},
	}
	b3, err := query.Compile([]*query.Query{q3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewContext(b3, db, DefaultOptions(), nil); err == nil {
		t.Error("missing filter column accepted")
	}
}

func TestSelOpsForIncludesEligiblePruneOps(t *testing.T) {
	rel := catalog.NewRelation("r", "k")
	rel2 := catalog.NewRelation("s", "k")
	sch := catalog.NewSchema(rel, rel2)
	db := storage.NewDatabase(sch)
	db.Put(storage.NewTable(rel, 8))
	db.Put(storage.NewTable(rel2, 8))
	q := &query.Query{
		Rels:  []query.RelRef{{Table: "r"}, {Table: "s"}},
		Joins: []query.Join{{LeftAlias: "r", LeftCol: "k", RightAlias: "s", RightCol: "k"}},
	}
	b, err := query.Compile([]*query.Query{q})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(b, db, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rInst, _ := b.InstOfAlias(0, "r")

	// No prunable set: only grouped filters (none here).
	ops := ctx.SelOpsFor(rInst, func(int, query.InstID) bitset.Set { return nil })
	if len(ops) != 0 {
		t.Errorf("ops = %v, want none", ops)
	}
	// s fully scanned for the query: prune op appears.
	elig := bitset.FromIDs(1, 0)
	ops = ctx.SelOpsFor(rInst, func(e int, other query.InstID) bitset.Set { return elig })
	if len(ops) != 1 {
		t.Fatalf("ops = %v, want one prune op", ops)
	}
	if ops[0].ID < len(b.SelCols) {
		t.Error("prune op ID overlaps grouped filter space")
	}
}

func TestCalibrateModelProducesSaneConstants(t *testing.T) {
	m := CalibrateModel(1)
	for _, c := range []struct {
		class cost.Class
		name  string
	}{
		{cost.Selection, "selection"},
		{cost.Join, "join"},
		{cost.RoutingSelection, "routing"},
	} {
		k, l := m.Kappa[c.class], m.Lambda[c.class]
		// Costs must be positive per input tuple overall: a vector of n in
		// and n out must cost a positive number of nanoseconds.
		if k+l <= 0 {
			t.Errorf("%s: κ=%v λ=%v (non-positive per-tuple cost)", c.name, k, l)
		}
		if k > 10000 || l > 10000 {
			t.Errorf("%s: implausible constants κ=%v λ=%v", c.name, k, l)
		}
	}
	// Joins must be costlier per tuple than routing selections (the paper's
	// constants preserve this ordering; selection pushdown depends on it).
	if m.Kappa[cost.Join]+m.Lambda[cost.Join] <= m.Kappa[cost.RoutingSelection]+m.Lambda[cost.RoutingSelection] {
		t.Errorf("join per-tuple cost (%v/%v) not above routing (%v/%v)",
			m.Kappa[cost.Join], m.Lambda[cost.Join],
			m.Kappa[cost.RoutingSelection], m.Lambda[cost.RoutingSelection])
	}
}
