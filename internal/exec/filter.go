package exec

import (
	"sort"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/query"
)

// GroupedFilter is a shared selection operator evaluating every query's
// predicates on one (instance, column) at once (§5.1). The optimized path
// precomputes a range lookup table — one query-set mask per value segment —
// so evaluation is a binary search, logarithmic in the query count. Queries
// without a predicate on the column are unaffected: each stored mask
// already includes their bits.
type GroupedFilter struct {
	Inst query.InstID
	Col  string

	col []int64 // the column data

	// Range table: value v falls in segment i when bounds[i] <= v <
	// bounds[i+1]; the matching mask is masks[i]. Values outside every
	// bound take outMask (no predicate satisfied).
	bounds  []int64
	masks   []bitset.Set
	outMask bitset.Set

	// Naive path inputs.
	preds   []query.Pred
	queries bitset.Set
	n       int
}

// NewGroupedFilter precomputes the range table for one grouped filter.
// Predicate bounds are clamped to the column's observed value range so that
// open-ended comparisons (MinInt64/MaxInt64 bounds) cannot overflow the
// boundary arithmetic.
func NewGroupedFilter(nQueries int, sc *query.SelCol, col []int64) *GroupedFilter {
	f := &GroupedFilter{
		Inst: sc.Inst, Col: sc.Col, col: col,
		queries: sc.Queries, n: nQueries,
	}
	var colMin, colMax int64
	if len(col) > 0 {
		colMin, colMax = col[0], col[0]
		for _, v := range col {
			if v < colMin {
				colMin = v
			}
			if v > colMax {
				colMax = v
			}
		}
	}
	f.preds = make([]query.Pred, 0, len(sc.Preds))
	for _, p := range sc.Preds {
		if p.Lo < colMin {
			p.Lo = colMin
		}
		if p.Hi > colMax {
			p.Hi = colMax
		}
		// Predicates empty after clamping match no row; they contribute no
		// boundary and their query bit never appears in a mask.
		f.preds = append(f.preds, p)
	}

	// outMask: bits of queries with no predicate here stay set.
	f.outMask = bitset.NewFull(nQueries)
	f.outMask.AndNotWith(sc.Queries)

	// Boundary points: each predicate [lo, hi] contributes lo and hi+1.
	// Collected into a sorted, deduplicated slice (rather than a hash set)
	// so construction stays allocation-light and the table is immediately
	// in binary-search order.
	f.bounds = make([]int64, 0, 2*len(f.preds))
	for _, p := range f.preds {
		if p.Lo > p.Hi {
			continue
		}
		f.bounds = append(f.bounds, p.Lo, p.Hi+1)
	}
	sort.Slice(f.bounds, func(i, j int) bool { return f.bounds[i] < f.bounds[j] })
	uniq := f.bounds[:0]
	for i, v := range f.bounds {
		if i == 0 || v != f.bounds[i-1] {
			uniq = append(uniq, v)
		}
	}
	f.bounds = uniq

	if len(f.bounds) > 0 {
		f.masks = make([]bitset.Set, len(f.bounds)-1)
		for i := range f.masks {
			m := f.outMask.Clone()
			lo, hi := f.bounds[i], f.bounds[i+1]-1
			for _, p := range f.preds {
				if p.Lo <= lo && hi <= p.Hi {
					m.Add(p.QID)
				}
			}
			f.masks[i] = m
		}
	}
	return f
}

// maskFor returns the query-set mask for value v via the range table.
func (f *GroupedFilter) maskFor(v int64) bitset.Set {
	// Rightmost segment start <= v.
	i := sort.Search(len(f.bounds), func(i int) bool { return f.bounds[i] > v }) - 1
	if i < 0 || i >= len(f.masks) {
		return f.outMask
	}
	return f.masks[i]
}

// naiveMask computes the mask by scanning every predicate (the unoptimized
// baseline toggled off by Options.GroupedFilters; Fig. 18's ablation).
func (f *GroupedFilter) naiveMask(v int64, scratch bitset.Set) bitset.Set {
	scratch = f.outMask.CopyInto(scratch)
	for _, p := range f.preds {
		if p.Lo <= v && v <= p.Hi {
			scratch.Add(p.QID)
		}
	}
	return scratch
}

// Apply filters the query-set words of a tuple vector in place: for each
// tuple, its query set is intersected with the mask of its column value.
// qsets is the flat n×qw word slab; vids addresses the column. It returns
// the number of tuples left with a non-empty query set (tuples themselves
// are compacted by the caller).
func (f *GroupedFilter) Apply(grouped bool, vids []int32, qsets []uint64, qw int) {
	if grouped {
		if qw == 1 {
			// Fast path for single-word query sets.
			for i, vid := range vids {
				m := f.maskFor(f.col[vid])
				var mw uint64
				if len(m) > 0 {
					mw = m[0]
				}
				qsets[i] &= mw
			}
			return
		}
		for i, vid := range vids {
			m := f.maskFor(f.col[vid])
			base := i * qw
			for w := 0; w < qw; w++ {
				var mw uint64
				if w < len(m) {
					mw = m[w]
				}
				qsets[base+w] &= mw
			}
		}
		return
	}
	scratch := bitset.New(f.n)
	for i, vid := range vids {
		m := f.naiveMask(f.col[vid], scratch)
		scratch = m
		base := i * qw
		for w := 0; w < qw; w++ {
			var mw uint64
			if w < len(m) {
				mw = m[w]
			}
			qsets[base+w] &= mw
		}
	}
}
