package exec

import (
	"sort"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/value"
)

// GroupedFilter is a shared selection operator evaluating every query's
// predicates on one (instance, column) at once (§5.1). The optimized path
// precomputes a range lookup table — one query-set mask per value segment —
// so evaluation is a binary search, logarithmic in the query count. Queries
// without a predicate on the column are unaffected: each stored mask
// already includes their bits.
//
// Typed predicates are normalized at construction: string predicates
// resolve their literals to dictionary codes (each becoming a degenerate
// [c,c] range; literals absent from the dictionary match nothing), IS NOT
// NULL becomes the column's full observed value range, and IS NULL is
// tracked separately. NULL cells (value.NullCode) take the precomputed
// nullMask, so NULL never satisfies a range or string predicate. A query's
// several predicates on the same column combine by conjunction (matching
// SQL's WHERE semantics and the reference oracle); the ranges inside one
// predicate (an IN-list's literals) combine by union.
type GroupedFilter struct {
	Inst query.InstID
	Col  string

	col []int64 // the column data

	// Range table: value v falls in segment i when bounds[i] <= v <
	// bounds[i+1]; the matching mask is masks[i]. Values outside every
	// bound take outMask (no predicate satisfied); NullCode takes nullMask.
	bounds   []int64
	masks    []bitset.Set
	outMask  bitset.Set
	nullMask bitset.Set

	// Naive path inputs: per-query normalized predicate groups.
	groups  []predGroup
	queries bitset.Set
	n       int
}

// filterPred is one normalized predicate: either an IS NULL test or a union
// of inclusive code ranges. An empty range set matches nothing.
type filterPred struct {
	isNull bool
	ranges [][2]int64
}

// predGroup collects one query's predicates on the column; the query's bit
// survives a tuple only when every predicate matches (conjunction).
type predGroup struct {
	qid   int
	preds []filterPred
}

// matches evaluates the group against one cell value.
func (g *predGroup) matches(v int64) bool {
	for i := range g.preds {
		p := &g.preds[i]
		if v == value.NullCode {
			if !p.isNull {
				return false
			}
			continue
		}
		if p.isNull {
			return false
		}
		ok := false
		for _, r := range p.ranges {
			if r[0] <= v && v <= r[1] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// NewGroupedFilter precomputes the range table for one grouped filter.
// Predicate bounds are clamped to the column's observed non-NULL value
// range so that open-ended comparisons (MinInt64/MaxInt64 bounds) cannot
// overflow the boundary arithmetic. dict resolves string predicates and may
// be nil for plain int64 columns.
func NewGroupedFilter(nQueries int, sc *query.SelCol, col []int64, dict *value.Dict) *GroupedFilter {
	f := &GroupedFilter{
		Inst: sc.Inst, Col: sc.Col, col: col,
		queries: sc.Queries, n: nQueries,
	}
	// Observed range over non-NULL cells; an all-NULL (or empty) column
	// keeps the empty range [0,-1], which makes every range predicate empty.
	colMin, colMax := int64(0), int64(-1)
	seen := false
	for _, v := range col {
		if v == value.NullCode {
			continue
		}
		if !seen {
			colMin, colMax, seen = v, v, true
			continue
		}
		if v < colMin {
			colMin = v
		}
		if v > colMax {
			colMax = v
		}
	}

	// Normalize predicates into per-query groups of code-range unions.
	for _, p := range sc.Preds {
		fp := filterPred{}
		switch p.Kind {
		case query.KindIsNull:
			fp.isNull = true
		case query.KindIsNotNull:
			if seen {
				fp.ranges = [][2]int64{{colMin, colMax}}
			}
		case query.KindStrings:
			if dict != nil {
				for _, s := range p.Strs {
					if c, ok := dict.Lookup(s); ok {
						fp.ranges = append(fp.ranges, [2]int64{c, c})
					}
				}
			}
		default:
			lo, hi := p.Lo, p.Hi
			if lo < colMin {
				lo = colMin
			}
			if hi > colMax {
				hi = colMax
			}
			// Predicates empty after clamping match no row; they contribute
			// no boundary and force the query's bit out of every mask.
			if lo <= hi {
				fp.ranges = [][2]int64{{lo, hi}}
			}
		}
		gi := -1
		for i := range f.groups {
			if f.groups[i].qid == p.QID {
				gi = i
				break
			}
		}
		if gi < 0 {
			f.groups = append(f.groups, predGroup{qid: p.QID})
			gi = len(f.groups) - 1
		}
		f.groups[gi].preds = append(f.groups[gi].preds, fp)
	}

	// outMask: bits of queries with no predicate here stay set.
	f.outMask = bitset.NewFull(nQueries)
	f.outMask.AndNotWith(sc.Queries)

	// nullMask: what a NULL cell keeps. Only queries whose every predicate
	// here is IS NULL survive (plus the untouched outMask bits).
	f.nullMask = f.outMask.Clone()
	for i := range f.groups {
		g := &f.groups[i]
		if g.matches(value.NullCode) {
			f.nullMask.Add(g.qid)
		}
	}

	// Boundary points: each normalized range [lo, hi] contributes lo and
	// hi+1. Collected into a sorted, deduplicated slice (rather than a hash
	// set) so construction stays allocation-light and the table is
	// immediately in binary-search order.
	for i := range f.groups {
		for _, p := range f.groups[i].preds {
			for _, r := range p.ranges {
				f.bounds = append(f.bounds, r[0], r[1]+1)
			}
		}
	}
	sort.Slice(f.bounds, func(i, j int) bool { return f.bounds[i] < f.bounds[j] })
	uniq := f.bounds[:0]
	for i, v := range f.bounds {
		if i == 0 || v != f.bounds[i-1] {
			uniq = append(uniq, v)
		}
	}
	f.bounds = uniq

	if len(f.bounds) > 0 {
		f.masks = make([]bitset.Set, len(f.bounds)-1)
		for i := range f.masks {
			m := f.outMask.Clone()
			// Bounds include every range endpoint, so a segment is either
			// fully inside or fully outside each range: probing the segment
			// start stands for the whole segment.
			lo := f.bounds[i]
			for gi := range f.groups {
				g := &f.groups[gi]
				if g.matches(lo) {
					m.Add(g.qid)
				}
			}
			f.masks[i] = m
		}
	}
	return f
}

// maskFor returns the query-set mask for value v via the range table.
func (f *GroupedFilter) maskFor(v int64) bitset.Set {
	if v == value.NullCode {
		return f.nullMask
	}
	// Rightmost segment start <= v.
	i := sort.Search(len(f.bounds), func(i int) bool { return f.bounds[i] > v }) - 1
	if i < 0 || i >= len(f.masks) {
		return f.outMask
	}
	return f.masks[i]
}

// naiveMask computes the mask by scanning every predicate (the unoptimized
// baseline toggled off by Options.GroupedFilters; Fig. 18's ablation).
func (f *GroupedFilter) naiveMask(v int64, scratch bitset.Set) bitset.Set {
	scratch = f.outMask.CopyInto(scratch)
	for i := range f.groups {
		g := &f.groups[i]
		if g.matches(v) {
			scratch.Add(g.qid)
		}
	}
	return scratch
}

// Apply filters the query-set words of a tuple vector in place: for each
// tuple, its query set is intersected with the mask of its column value.
// qsets is the flat n×qw word slab; vids addresses the column. It returns
// the number of tuples left with a non-empty query set (tuples themselves
// are compacted by the caller).
func (f *GroupedFilter) Apply(grouped bool, vids []int32, qsets []uint64, qw int) {
	if grouped {
		if qw == 1 {
			// Fast path for single-word query sets.
			for i, vid := range vids {
				m := f.maskFor(f.col[vid])
				var mw uint64
				if len(m) > 0 {
					mw = m[0]
				}
				qsets[i] &= mw
			}
			return
		}
		for i, vid := range vids {
			m := f.maskFor(f.col[vid])
			base := i * qw
			for w := 0; w < qw; w++ {
				var mw uint64
				if w < len(m) {
					mw = m[w]
				}
				qsets[base+w] &= mw
			}
		}
		return
	}
	scratch := bitset.New(f.n)
	for i, vid := range vids {
		m := f.naiveMask(f.col[vid], scratch)
		scratch = m
		base := i * qw
		for w := 0; w < qw; w++ {
			var mw uint64
			if w < len(m) {
				mw = m[w]
			}
			qsets[base+w] &= mw
		}
	}
}
