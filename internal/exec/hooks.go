package exec

import (
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/stem"
)

// Hooks lets harnesses observe or perturb episode execution. All fields are
// optional; the zero value is a no-op. The engine treats a panic raised by
// a hook exactly like a panic in the episode body (the episode becomes a
// recorded fault and its queries are marked failed), so hooks are the
// injection points the fault-injection harness (internal/faults) uses.
type Hooks struct {
	// EpisodeStart runs at the very start of every episode, before any
	// tuple is touched. It may sleep (slow-episode injection) or panic
	// (crash injection).
	EpisodeStart func(inst query.InstID, slot stem.Slot)

	// StemInsert runs immediately before the episode's STeM insertion. A
	// non-nil error aborts the episode before any entry is inserted; the
	// engine records it as an insertion fault.
	StemInsert func(inst query.InstID, slot stem.Slot) error
}
