//go:build !race

package exec

// raceEnabled mirrors whether the race detector instruments this build.
// Race instrumentation changes escape analysis, so the strict allocs==0
// assertions are enforced only in uninstrumented builds; the asserted code
// still runs under -race for data-race coverage.
const raceEnabled = false
