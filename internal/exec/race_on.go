//go:build race

package exec

// raceEnabled mirrors whether the race detector instruments this build; see
// race_off.go.
const raceEnabled = true
