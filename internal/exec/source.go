package exec

import (
	"sync"
	"sync/atomic"

	"github.com/roulette-db/roulette/internal/query"
)

// Source is a RouLette source: the per-query buffer routers multicast SPJ
// result tuples into, from which host-side operators (aggregates, sorts,
// outer plans) consume (§3). Rows are projected to the instances the host
// consumer actually needs (adaptive projections make everything else
// unavailable by design).
type Source struct {
	// Insts lists the vID columns each routed row carries, in order.
	Insts []query.InstID

	collect bool
	count   atomic.Int64

	mu   sync.Mutex
	rows []int32 // flattened: len(Insts) vIDs per row
}

// NewSource creates a source expecting rows over the given instances.
// When collect is false the source only counts rows (COUNT(*) consumers
// and large throughput benchmarks).
func NewSource(insts []query.InstID, collect bool) *Source {
	return &Source{Insts: insts, collect: collect && len(insts) > 0}
}

// Append adds routed rows; flat must hold len(Insts) vIDs per row.
func (s *Source) Append(flat []int32, nRows int) {
	s.count.Add(int64(nRows))
	if !s.collect || nRows == 0 {
		return
	}
	s.mu.Lock()
	s.rows = append(s.rows, flat...)
	s.mu.Unlock()
}

// Count returns the number of routed result tuples.
func (s *Source) Count() int64 { return s.count.Load() }

// Rows returns the collected rows (flattened) and the row width. The slice
// aliases internal storage; callers must not mutate it.
func (s *Source) Rows() ([]int32, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows, len(s.Insts)
}

// Reset clears collected rows and the count (used when a session reuses
// sources across runs).
func (s *Source) Reset() {
	s.mu.Lock()
	s.rows = nil
	s.mu.Unlock()
	s.count.Store(0)
}

// Stats aggregates executor counters; all fields are atomically updated and
// safe to read while workers run. Times are cumulative nanoseconds per
// §6.3's breakdown categories. Workers accumulate every counter in plain
// per-worker arena fields and fold them in here once per episode (see
// Worker.foldStats), so the hot loops never touch shared cache lines.
type Stats struct {
	Episodes atomic.Int64

	SelIn  atomic.Int64 // tuples entering the selection phase
	SelOut atomic.Int64 // tuples surviving it (inserted into STeMs)

	Inserted atomic.Int64 // STeM entries inserted

	JoinOut atomic.Int64 // probe output tuples: the Fig. 13 cost metric

	Routed atomic.Int64 // tuples delivered to sources

	FilterNs atomic.Int64 // selection phase
	BuildNs  atomic.Int64 // STeM inserts
	ProbeNs  atomic.Int64 // join phase probes + routing selections
	RouteNs  atomic.Int64 // routers

	// Operator-invocation counters, collected only with
	// Options.CollectStats: one invocation is one operator applied to one
	// vector (a selection step, a probe node, a routing selection, or a
	// router). SharedOps counts invocations serving more than one query and
	// OpQueries sums the queries served, so SharedOps/TotalOps() is the
	// batch's sharing factor and OpQueries/TotalOps() its mean fan-out.
	FilterOps   atomic.Int64
	ProbeOps    atomic.Int64
	RouteSelOps atomic.Int64
	RouterOps   atomic.Int64
	SharedOps   atomic.Int64
	OpQueries   atomic.Int64
}

// TotalOps returns the total counted operator invocations.
func (s *Stats) TotalOps() int64 {
	return s.FilterOps.Load() + s.ProbeOps.Load() + s.RouteSelOps.Load() + s.RouterOps.Load()
}

// Breakdown returns the §6.3-style share of time per category.
func (s *Stats) Breakdown() (filter, build, probe, route float64) {
	f, b, p, r := float64(s.FilterNs.Load()), float64(s.BuildNs.Load()), float64(s.ProbeNs.Load()), float64(s.RouteNs.Load())
	tot := f + b + p + r
	if tot == 0 {
		return 0, 0, 0, 0
	}
	return f / tot, b / tot, p / tot, r / tot
}
