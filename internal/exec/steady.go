package exec

import (
	"fmt"
	"strconv"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/plan"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/stem"
	"github.com/roulette-db/roulette/internal/storage"
	"github.com/roulette-db/roulette/internal/value"
)

// StepBenchConfig sizes the steady-state episode-step harness.
type StepBenchConfig struct {
	NQueries   int           // queries in the batch (default 16)
	Rows       int           // fact-table rows (default 4096)
	VectorSize int           // tuples per episode vector (default 1024)
	Policy     policy.Policy // planning policy (default policy.NewRandom(1))

	// CollectStats enables the per-operator-class and sharing counters, to
	// verify the stats-on step stays allocation-free.
	CollectStats bool
	// TraceActions records chosen action sequences per step.
	TraceActions bool
}

// StepBench drives the steady-state episode step in isolation: a prebuilt
// star batch (fact ⋈ dim1, fact ⋈ dim2, per-query range filters on the
// fact table) with the dimension STeMs fully populated and published, so
// every Step replays the hot data path — ingest, grouped filters, compact,
// probes, routing selections, routers, cost measurement, policy update —
// without the cold-path work RunEpisode performs per episode (plan
// construction, STeM insertion, version publishing).
//
// That cold path is excluded deliberately: plan construction allocates the
// per-episode operator tree by design, and STeM insertion grows shared
// state. The zero-allocation contract (TestEpisodeStepZeroAlloc) covers
// exactly what Step runs; DESIGN.md "Performance" spells out the boundary.
type StepBench struct {
	Ctx *Context
	W   *Worker

	in       EpisodeInput
	selSteps []plan.SelStep
	joinRoot *plan.Node
	g        query.Graph // snapshot the prebuilt join plan was built over
}

// NewStepBench builds the harness fixture and warms nothing: callers run a
// few Steps to reach steady state before measuring.
func NewStepBench(cfg StepBenchConfig) (*StepBench, error) {
	if cfg.NQueries <= 0 {
		cfg.NQueries = 16
	}
	if cfg.Rows <= 0 {
		cfg.Rows = 4096
	}
	if cfg.VectorSize <= 0 {
		cfg.VectorSize = 1024
	}
	pol := cfg.Policy
	if pol == nil {
		pol = policy.NewRandom(1)
	}

	// Typed fixture: the fact ⋈ dim2 join is string-keyed (both columns
	// share one dictionary, as the executor requires), fact.b and fact.v
	// are nullable with in-band NULL sentinels, and half the queries carry
	// a string IN-list — so the steady-state step exercises the typed
	// grouped-filter and NULL-skipping probe paths, and the zero-allocation
	// contract covers them.
	dimRows := cfg.Rows / 4
	if dimRows < 4 {
		dimRows = 4
	}
	dict := value.NewDict()
	bcodes := make([]int64, dimRows)
	for i := range bcodes {
		bcodes[i] = dict.Code("k" + strconv.Itoa(i))
	}

	fact := catalog.NewTypedRelation("fact",
		catalog.Column{Name: "a"},
		catalog.Column{Name: "b", Type: value.String, Nullable: true, Dict: dict},
		catalog.Column{Name: "v", Nullable: true},
	)
	d1 := catalog.NewRelation("dim1", "a")
	d2 := catalog.NewTypedRelation("dim2",
		catalog.Column{Name: "b", Type: value.String, Dict: dict},
	)
	db := storage.NewDatabase(catalog.NewSchema(fact, d1, d2))

	fa := make([]int64, cfg.Rows)
	fb := make([]int64, cfg.Rows)
	fv := make([]int64, cfg.Rows)
	for i := 0; i < cfg.Rows; i++ {
		fa[i] = int64(i % dimRows)
		fb[i] = bcodes[(i*7)%dimRows]
		if i%32 == 7 {
			fb[i] = value.NullCode // NULL probe keys match nothing
		}
		fv[i] = int64(i % 100)
		if i%16 == 5 {
			fv[i] = value.NullCode
		}
	}
	ft, err := storage.FromColumns(fact, fa, fb, fv)
	if err != nil {
		return nil, err
	}
	db.Put(ft)
	t1 := storage.NewTable(d1, dimRows)
	for i := 0; i < dimRows; i++ {
		t1.Col("a")[i] = int64(i)
	}
	db.Put(t1)
	t2, err := storage.FromColumns(d2, bcodes)
	if err != nil {
		return nil, err
	}
	db.Put(t2)

	qs := make([]*query.Query, cfg.NQueries)
	for i := range qs {
		qs[i] = &query.Query{
			Rels: []query.RelRef{{Table: "fact"}, {Table: "dim1"}, {Table: "dim2"}},
			Joins: []query.Join{
				{LeftAlias: "fact", LeftCol: "a", RightAlias: "dim1", RightCol: "a"},
				{LeftAlias: "fact", LeftCol: "b", RightAlias: "dim2", RightCol: "b"},
			},
			Filters: []query.Filter{{Alias: "fact", Col: "v", Lo: 0, Hi: int64(50 + i%50)}},
		}
		if i%2 == 1 {
			strs := make([]string, 8)
			for k := range strs {
				strs[k] = "k" + strconv.Itoa((i*3+k)%dimRows)
			}
			qs[i].Filters = append(qs[i].Filters, query.Filter{
				Alias: "fact", Col: "b", Kind: query.KindStrings, Strs: strs,
			})
		}
	}
	b, err := query.Compile(qs)
	if err != nil {
		return nil, err
	}
	opt := DefaultOptions()
	opt.CollectRows = false // sources count rows; unbounded row buffers would dominate
	opt.VectorSize = cfg.VectorSize
	opt.CollectStats = cfg.CollectStats
	opt.TraceActions = cfg.TraceActions
	ctx, err := NewContext(b, db, opt, nil)
	if err != nil {
		return nil, err
	}
	w := NewWorker(ctx, pol)

	factInst, ok := b.InstOfAlias(0, "fact")
	if !ok {
		return nil, fmt.Errorf("exec: steady fixture lost its fact instance")
	}

	// Populate the probed side: every dimension row, stamped with the full
	// query set, under one published slot.
	active := bitset.NewFull(b.N)
	const seedSlot = stem.Slot(0)
	for inst := range b.Insts {
		if query.InstID(inst) == factInst {
			continue
		}
		keys := make([]int64, len(ctx.stemKeyCols[inst]))
		tbl := ctx.Tables[inst]
		for vid := 0; vid < tbl.NumRows(); vid++ {
			for k, col := range ctx.stemKeySlices[inst] {
				keys[k] = col[vid]
			}
			ctx.Stems[inst].Insert(int32(vid), keys, active, seedSlot)
		}
	}
	ctx.Versions.Publish(seedSlot)

	vids := make([]int32, cfg.VectorSize)
	for i := range vids {
		vids[i] = int32(i % cfg.Rows)
	}
	in := EpisodeInput{
		Inst:   factInst,
		VIDs:   vids,
		Active: active,
		SelOps: ctx.SelOpsFor(factInst, nil),
	}

	sb := &StepBench{Ctx: ctx, W: w, in: in, g: b.Snapshot()}
	sb.selSteps = plan.BuildSel(pol, factInst, active, in.SelOps)
	sb.joinRoot = plan.BuildJoin(&sb.g, pol, factInst, active, ctx.ReqInsts)
	return sb, nil
}

// Step runs one steady-state episode step over the prebuilt plan and
// returns the episode report. After a handful of warm-up calls it performs
// zero heap allocations.
func (s *StepBench) Step() EpisodeReport {
	w := s.W
	w.cv = w.C.loadView() // one atomic load, as in RunEpisode
	w.log = w.log[:0]
	w.planSig = 0
	if w.trace {
		w.selActs = w.selActs[:0]
		w.joinActs = w.joinActs[:0]
	}
	vids, qsets := w.ingestVector(s.in)
	vids, qsets = w.runSelSteps(s.in, s.selSteps, vids, qsets)
	joinInput := len(vids)
	if joinInput > 0 {
		// Watermark before timestamp, same ordering as RunEpisode: slots
		// under wm are guaranteed older than ts.
		wm := w.C.Versions.Watermark()
		ts := w.C.Versions.Now()
		w.execChildren(s.joinRoot, w.rootVec(s.in.Inst, vids, qsets, joinInput), ts, wm)
	}
	rep := EpisodeReport{JoinInput: joinInput, PlanSig: w.planSig}
	rep.MeasuredCost, rep.MeasuredJoinCost = w.measuredCost()
	if w.trace {
		rep.SelActions, rep.JoinActions = w.selActs, w.joinActs
	}
	w.Pol.Observe(w.log)
	w.foldStats()
	return rep
}
