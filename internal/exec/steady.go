package exec

import (
	"fmt"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/plan"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/stem"
	"github.com/roulette-db/roulette/internal/storage"
)

// StepBenchConfig sizes the steady-state episode-step harness.
type StepBenchConfig struct {
	NQueries   int           // queries in the batch (default 16)
	Rows       int           // fact-table rows (default 4096)
	VectorSize int           // tuples per episode vector (default 1024)
	Policy     policy.Policy // planning policy (default policy.NewRandom(1))

	// CollectStats enables the per-operator-class and sharing counters, to
	// verify the stats-on step stays allocation-free.
	CollectStats bool
	// TraceActions records chosen action sequences per step.
	TraceActions bool
}

// StepBench drives the steady-state episode step in isolation: a prebuilt
// star batch (fact ⋈ dim1, fact ⋈ dim2, per-query range filters on the
// fact table) with the dimension STeMs fully populated and published, so
// every Step replays the hot data path — ingest, grouped filters, compact,
// probes, routing selections, routers, cost measurement, policy update —
// without the cold-path work RunEpisode performs per episode (plan
// construction, STeM insertion, version publishing).
//
// That cold path is excluded deliberately: plan construction allocates the
// per-episode operator tree by design, and STeM insertion grows shared
// state. The zero-allocation contract (TestEpisodeStepZeroAlloc) covers
// exactly what Step runs; DESIGN.md "Performance" spells out the boundary.
type StepBench struct {
	Ctx *Context
	W   *Worker

	in       EpisodeInput
	selSteps []plan.SelStep
	joinRoot *plan.Node
	g        query.Graph // snapshot the prebuilt join plan was built over
}

// NewStepBench builds the harness fixture and warms nothing: callers run a
// few Steps to reach steady state before measuring.
func NewStepBench(cfg StepBenchConfig) (*StepBench, error) {
	if cfg.NQueries <= 0 {
		cfg.NQueries = 16
	}
	if cfg.Rows <= 0 {
		cfg.Rows = 4096
	}
	if cfg.VectorSize <= 0 {
		cfg.VectorSize = 1024
	}
	pol := cfg.Policy
	if pol == nil {
		pol = policy.NewRandom(1)
	}

	fact := catalog.NewRelation("fact", "a", "b", "v")
	d1 := catalog.NewRelation("dim1", "a")
	d2 := catalog.NewRelation("dim2", "b")
	db := storage.NewDatabase(catalog.NewSchema(fact, d1, d2))

	dimRows := cfg.Rows / 4
	if dimRows < 4 {
		dimRows = 4
	}
	ft := storage.NewTable(fact, cfg.Rows)
	for i := 0; i < cfg.Rows; i++ {
		ft.Col("a")[i] = int64(i % dimRows)
		ft.Col("b")[i] = int64((i * 7) % dimRows)
		ft.Col("v")[i] = int64(i % 100)
	}
	db.Put(ft)
	t1 := storage.NewTable(d1, dimRows)
	t2 := storage.NewTable(d2, dimRows)
	for i := 0; i < dimRows; i++ {
		t1.Col("a")[i] = int64(i)
		t2.Col("b")[i] = int64(i)
	}
	db.Put(t1)
	db.Put(t2)

	qs := make([]*query.Query, cfg.NQueries)
	for i := range qs {
		qs[i] = &query.Query{
			Rels: []query.RelRef{{Table: "fact"}, {Table: "dim1"}, {Table: "dim2"}},
			Joins: []query.Join{
				{LeftAlias: "fact", LeftCol: "a", RightAlias: "dim1", RightCol: "a"},
				{LeftAlias: "fact", LeftCol: "b", RightAlias: "dim2", RightCol: "b"},
			},
			Filters: []query.Filter{{Alias: "fact", Col: "v", Lo: 0, Hi: int64(50 + i%50)}},
		}
	}
	b, err := query.Compile(qs)
	if err != nil {
		return nil, err
	}
	opt := DefaultOptions()
	opt.CollectRows = false // sources count rows; unbounded row buffers would dominate
	opt.VectorSize = cfg.VectorSize
	opt.CollectStats = cfg.CollectStats
	opt.TraceActions = cfg.TraceActions
	ctx, err := NewContext(b, db, opt, nil)
	if err != nil {
		return nil, err
	}
	w := NewWorker(ctx, pol)

	factInst, ok := b.InstOfAlias(0, "fact")
	if !ok {
		return nil, fmt.Errorf("exec: steady fixture lost its fact instance")
	}

	// Populate the probed side: every dimension row, stamped with the full
	// query set, under one published slot.
	active := bitset.NewFull(b.N)
	const seedSlot = stem.Slot(0)
	for inst := range b.Insts {
		if query.InstID(inst) == factInst {
			continue
		}
		keys := make([]int64, len(ctx.stemKeyCols[inst]))
		tbl := ctx.Tables[inst]
		for vid := 0; vid < tbl.NumRows(); vid++ {
			for k, col := range ctx.stemKeySlices[inst] {
				keys[k] = col[vid]
			}
			ctx.Stems[inst].Insert(int32(vid), keys, active, seedSlot)
		}
	}
	ctx.Versions.Publish(seedSlot)

	vids := make([]int32, cfg.VectorSize)
	for i := range vids {
		vids[i] = int32(i % cfg.Rows)
	}
	in := EpisodeInput{
		Inst:   factInst,
		VIDs:   vids,
		Active: active,
		SelOps: ctx.SelOpsFor(factInst, nil),
	}

	sb := &StepBench{Ctx: ctx, W: w, in: in, g: b.Snapshot()}
	sb.selSteps = plan.BuildSel(pol, factInst, active, in.SelOps)
	sb.joinRoot = plan.BuildJoin(&sb.g, pol, factInst, active, ctx.ReqInsts)
	return sb, nil
}

// Step runs one steady-state episode step over the prebuilt plan and
// returns the episode report. After a handful of warm-up calls it performs
// zero heap allocations.
func (s *StepBench) Step() EpisodeReport {
	w := s.W
	w.cv = w.C.loadView() // one atomic load, as in RunEpisode
	w.log = w.log[:0]
	w.planSig = 0
	if w.trace {
		w.selActs = w.selActs[:0]
		w.joinActs = w.joinActs[:0]
	}
	vids, qsets := w.ingestVector(s.in)
	vids, qsets = w.runSelSteps(s.in, s.selSteps, vids, qsets)
	joinInput := len(vids)
	if joinInput > 0 {
		// Watermark before timestamp, same ordering as RunEpisode: slots
		// under wm are guaranteed older than ts.
		wm := w.C.Versions.Watermark()
		ts := w.C.Versions.Now()
		w.execChildren(s.joinRoot, w.rootVec(s.in.Inst, vids, qsets, joinInput), ts, wm)
	}
	rep := EpisodeReport{JoinInput: joinInput, PlanSig: w.planSig}
	rep.MeasuredCost, rep.MeasuredJoinCost = w.measuredCost()
	if w.trace {
		rep.SelActions, rep.JoinActions = w.selActs, w.joinActs
	}
	w.Pol.Observe(w.log)
	w.foldStats()
	return rep
}
