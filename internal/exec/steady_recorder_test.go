package exec

import (
	"testing"

	"github.com/roulette-db/roulette/internal/obs"
	"github.com/roulette-db/roulette/internal/qlearn"
)

// TestEpisodeStepRecorderZeroAlloc extends the zero-allocation contract to
// the flight recorder: an episode step bracketed by the start/end events a
// streaming worker records (exactly what engine.runWorker emits per
// episode) must still perform zero heap allocations. This is the PR's
// "always-on" claim — attaching the recorder cannot cost the hot path an
// allocation.
func TestEpisodeStepRecorderZeroAlloc(t *testing.T) {
	cfg := StepBenchConfig{NQueries: 16, Policy: qlearn.New(qlearn.DefaultConfig())}
	sb := stepBenchWarm(t, cfg)
	if rep := sb.Step(); rep.JoinInput == 0 {
		t.Fatal("fixture produces empty episodes; the assertion would be vacuous")
	}
	rec := obs.NewRecorder(2, 1024)
	var vc int64
	rec.SetVClock(func() int64 { vc++; return vc })
	allocs := testing.AllocsPerRun(50, func() {
		rec.Record(0, obs.KEpisodeStart, 0, 1, 0xffff, 16)
		rep := sb.Step()
		rec.Record(0, obs.KEpisodeEnd, 0, 1, int64(rep.JoinInput), int64(rep.PlanSig))
	})
	if raceEnabled {
		t.Skipf("race build: measured %.1f allocs/op, strict assertion skipped", allocs)
	}
	if allocs != 0 {
		t.Errorf("episode step with recorder allocates %.1f allocs/op, want 0", allocs)
	}
	if len(rec.Snapshot()) == 0 {
		t.Fatal("recorder captured nothing; the assertion would be vacuous")
	}
}
