package exec

import (
	"testing"

	"github.com/roulette-db/roulette/internal/qlearn"
)

// stepBenchWarm builds a StepBench and runs it to steady state: enough
// steps for every arena buffer, pool column, match buffer, and Q-table
// entry to reach its final capacity.
func stepBenchWarm(tb testing.TB, cfg StepBenchConfig) *StepBench {
	tb.Helper()
	sb, err := NewStepBench(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		sb.Step()
	}
	return sb
}

// TestEpisodeStepZeroAlloc enforces the PR's core contract: the
// steady-state episode step — ingest, grouped filters, compact, STeM
// probes, routing selections, routers, cost measurement, and the learned
// policy's Q-table update — performs zero heap allocations. The strict
// assertion is relaxed under -race (instrumentation changes escape
// analysis) but the loop still runs there for race coverage.
func TestEpisodeStepZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  StepBenchConfig
	}{
		{"16q-1word", StepBenchConfig{NQueries: 16}},
		{"80q-2words", StepBenchConfig{NQueries: 80}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.Policy = qlearn.New(qlearn.DefaultConfig())
			sb := stepBenchWarm(t, tc.cfg)
			if rep := sb.Step(); rep.JoinInput == 0 {
				t.Fatal("fixture produces empty episodes; the assertion would be vacuous")
			}
			allocs := testing.AllocsPerRun(50, func() { sb.Step() })
			if raceEnabled {
				t.Skipf("race build: measured %.1f allocs/op, strict assertion skipped", allocs)
			}
			if allocs != 0 {
				t.Errorf("steady-state episode step allocates %.1f allocs/op, want 0", allocs)
			}
		})
	}
}

// TestEpisodeStepStatsZeroAlloc extends the zero-allocation contract to the
// observability path: with CollectStats (and TraceActions) on, the episode
// step still accumulates every counter in the worker arena and folds into
// the shared atomics without allocating.
func TestEpisodeStepStatsZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  StepBenchConfig
	}{
		{"stats-16q", StepBenchConfig{NQueries: 16, CollectStats: true}},
		{"stats-trace-80q", StepBenchConfig{NQueries: 80, CollectStats: true, TraceActions: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.Policy = qlearn.New(qlearn.DefaultConfig())
			sb := stepBenchWarm(t, tc.cfg)
			if rep := sb.Step(); rep.JoinInput == 0 {
				t.Fatal("fixture produces empty episodes; the assertion would be vacuous")
			}
			allocs := testing.AllocsPerRun(50, func() { sb.Step() })

			// The counters must actually move while staying alloc-free.
			st := &sb.Ctx.Stats
			if st.TotalOps() == 0 || st.FilterOps.Load() == 0 || st.ProbeOps.Load() == 0 {
				t.Errorf("stats-on step collected no operator invocations: total=%d", st.TotalOps())
			}
			if st.SharedOps.Load() == 0 {
				t.Error("full-batch fixture should record shared invocations")
			}
			if sb.Ctx.InstStats[sb.in.Inst].Probes.Load() != 0 {
				t.Error("scan instance should not be probed in this fixture")
			}
			var probes int64
			for i := range sb.Ctx.InstStats {
				probes += sb.Ctx.InstStats[i].Probes.Load()
			}
			if probes == 0 {
				t.Error("no per-instance probe traffic recorded")
			}
			if tc.cfg.TraceActions {
				rep := sb.Step()
				if len(rep.JoinActions) == 0 {
					t.Error("trace-on step recorded no join actions")
				}
				if rep.PlanSig == 0 {
					t.Error("stats-on step reported no plan signature")
				}
			}

			if raceEnabled {
				t.Skipf("race build: measured %.1f allocs/op, strict assertion skipped", allocs)
			}
			if allocs != 0 {
				t.Errorf("stats-on episode step allocates %.1f allocs/op, want 0", allocs)
			}
		})
	}
}

// TestStepBenchMatchesRunEpisodeShape sanity-checks the harness against the
// production path: a full RunEpisode over the same fixture input routes
// tuples and reports a comparable join input.
func TestStepBenchMatchesRunEpisodeShape(t *testing.T) {
	sb, err := NewStepBench(StepBenchConfig{NQueries: 8, Rows: 512, VectorSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	rep := sb.Step()
	if rep.JoinInput == 0 {
		t.Fatal("step produced no join input")
	}
	if rep.MeasuredCost == 0 {
		t.Fatal("step measured no cost")
	}
	routedBefore := sb.Ctx.Stats.Routed.Load()
	if routedBefore == 0 {
		t.Fatal("step routed no tuples")
	}

	// The production episode path over the same input must also flow: it
	// additionally inserts into the fact STeM and publishes a fresh slot.
	in := sb.in
	in.Slot = 1
	rep2, err := sb.W.RunEpisode(in)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.JoinInput != rep.JoinInput {
		t.Fatalf("RunEpisode join input %d, Step join input %d", rep2.JoinInput, rep.JoinInput)
	}
	if sb.Ctx.Stems[sb.in.Inst].Len() == 0 {
		t.Fatal("RunEpisode did not insert into the fact STeM")
	}
}

// BenchmarkEpisodeStep measures the steady-state episode step; allocs/op
// must report 0 (the zero-alloc test enforces it).
func BenchmarkEpisodeStep(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  StepBenchConfig
	}{
		{"16q-1word", StepBenchConfig{NQueries: 16}},
		{"80q-2words", StepBenchConfig{NQueries: 80}},
		{"16q-stats", StepBenchConfig{NQueries: 16, CollectStats: true}},
		{"80q-stats", StepBenchConfig{NQueries: 80, CollectStats: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			tc.cfg.Policy = qlearn.New(qlearn.DefaultConfig())
			sb := stepBenchWarm(b, tc.cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sb.Step()
			}
		})
	}
}
