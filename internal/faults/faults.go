// Package faults provides deterministic, seed-driven fault injection for
// chaos-testing the engine's episode fault boundary: injected episode
// panics, slow episodes, and STeM insertion failures. Decisions are keyed
// off the episode's version slot (not call order), so a given (seed,
// workload) pair injects the same faults regardless of worker count or
// goroutine interleaving within a pass.
//
// Wire an injector into a run through exec.Options:
//
//	inj := faults.New(faults.Config{Seed: 1, PanicEvery: 16})
//	opt := exec.DefaultOptions()
//	opt.Hooks = inj.Hooks()
package faults

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/roulette-db/roulette/internal/admission"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/stem"
)

// Config selects which faults to inject and how often. Every "Every" field
// is a 1-in-N rate over episodes (0 disables that fault class); which
// episodes are hit is a deterministic function of Seed and the episode's
// slot number.
type Config struct {
	Seed int64

	// PanicEvery panics ~1-in-N episodes at episode start.
	PanicEvery int

	// SlowEvery sleeps SlowDelay at the start of ~1-in-N episodes
	// (watchdog and deadline testing).
	SlowEvery int
	SlowDelay time.Duration

	// InsertFailEvery fails ~1-in-N episodes' STeM insertion with an error.
	InsertFailEvery int

	// SubmitRejectEvery forces ~1-in-N stream submissions to be rejected by
	// the admission controller with ErrOverloaded (ReasonInjected), keyed by
	// submission sequence number.
	SubmitRejectEvery int

	// RetireDelayEvery sleeps RetireDelay before ~1-in-N retirements are
	// released back to the admission controller (delayed-retirement
	// injection; stresses budget accounting and retry-after estimation).
	RetireDelayEvery int
	RetireDelay      time.Duration
}

// InjectedPanic is the value injected crashes panic with, so chaos tests
// can tell injected faults from genuine bugs.
type InjectedPanic struct {
	Inst query.InstID
	Slot stem.Slot
}

// String renders the panic value.
func (p InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic (inst %d, slot %d)", p.Inst, p.Slot)
}

// Injector injects faults per its Config. Safe for concurrent use; the
// counters report how many faults actually fired.
type Injector struct {
	cfg                        Config
	panics, slows, insertFails atomic.Int64
	submitRejects, retireLags  atomic.Int64
}

// New creates an injector.
func New(cfg Config) *Injector { return &Injector{cfg: cfg} }

// mix is the splitmix64 finalizer: a cheap, well-distributed 64-bit mixer.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// hits reports whether the fault class salted with salt fires for slot.
func (in *Injector) hits(salt uint64, slot stem.Slot, every int) bool {
	if every <= 0 {
		return false
	}
	h := mix(uint64(in.cfg.Seed)*0x9E3779B97F4A7C15 + salt<<32 + uint64(slot))
	return h%uint64(every) == 0
}

// Hooks binds the injector to the executor's episode hooks.
func (in *Injector) Hooks() exec.Hooks {
	return exec.Hooks{
		EpisodeStart: func(inst query.InstID, slot stem.Slot) {
			if in.hits(1, slot, in.cfg.SlowEvery) {
				in.slows.Add(1)
				time.Sleep(in.cfg.SlowDelay)
			}
			if in.hits(2, slot, in.cfg.PanicEvery) {
				in.panics.Add(1)
				panic(InjectedPanic{Inst: inst, Slot: slot})
			}
		},
		StemInsert: func(inst query.InstID, slot stem.Slot) error {
			if in.hits(3, slot, in.cfg.InsertFailEvery) {
				in.insertFails.Add(1)
				return fmt.Errorf("faults: injected STeM insertion failure (inst %d, slot %d)", inst, slot)
			}
			return nil
		},
	}
}

// AdmissionHooks binds the injector to the admission controller's chaos
// points. Submit rejections are keyed by submission sequence number, so a
// given (seed, submission order) pair rejects the same submissions.
// Retirement delays are keyed by the controller's sequence counter at
// retire time, which depends on interleaving — delays are statistically
// 1-in-N but not replay-exact.
func (in *Injector) AdmissionHooks() admission.Hooks {
	return admission.Hooks{
		ForceReject: func(tenant string, seq uint64) bool {
			if in.hits(4, stem.Slot(seq), in.cfg.SubmitRejectEvery) {
				in.submitRejects.Add(1)
				return true
			}
			return false
		},
		RetireDelay: func(tenant string, seq uint64) {
			if in.hits(5, stem.Slot(seq), in.cfg.RetireDelayEvery) {
				in.retireLags.Add(1)
				time.Sleep(in.cfg.RetireDelay)
			}
		},
	}
}

// Panics returns the number of injected panics so far.
func (in *Injector) Panics() int64 { return in.panics.Load() }

// Slows returns the number of injected slow episodes so far.
func (in *Injector) Slows() int64 { return in.slows.Load() }

// InsertFails returns the number of injected insertion failures so far.
func (in *Injector) InsertFails() int64 { return in.insertFails.Load() }

// SubmitRejects returns the number of injected admission rejections so far.
func (in *Injector) SubmitRejects() int64 { return in.submitRejects.Load() }

// RetireDelays returns the number of injected retirement delays so far.
func (in *Injector) RetireDelays() int64 { return in.retireLags.Load() }
