package faults

import (
	"testing"
	"time"

	"github.com/roulette-db/roulette/internal/stem"
)

func TestHitsDeterministicAndRoughlyRated(t *testing.T) {
	in := New(Config{Seed: 42})
	const n = 10000
	const every = 8
	hits := 0
	for slot := 0; slot < n; slot++ {
		if in.hits(2, stem.Slot(slot), every) {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no hits over 10k slots")
	}
	// ~1-in-8 with slack for hash variance.
	if hits < n/every/2 || hits > n/every*2 {
		t.Errorf("hits = %d, want around %d", hits, n/every)
	}
	// Same seed, same decisions.
	in2 := New(Config{Seed: 42})
	for slot := 0; slot < n; slot++ {
		if in.hits(2, stem.Slot(slot), every) != in2.hits(2, stem.Slot(slot), every) {
			t.Fatalf("slot %d: decision not deterministic", slot)
		}
	}
}

func TestSaltsIndependent(t *testing.T) {
	in := New(Config{Seed: 7})
	same := 0
	const n = 4096
	for slot := 0; slot < n; slot++ {
		a := in.hits(1, stem.Slot(slot), 4)
		b := in.hits(2, stem.Slot(slot), 4)
		if a && b {
			same++
		}
	}
	// Fully correlated salts would give ~n/4 joint hits; independent ones
	// ~n/16. Guard against full correlation.
	if same > n/8 {
		t.Errorf("salts look correlated: %d joint hits over %d slots", same, n)
	}
}

func TestHooksFireAndCount(t *testing.T) {
	in := New(Config{Seed: 3, PanicEvery: 1, SlowEvery: 1, SlowDelay: time.Microsecond, InsertFailEvery: 1})
	h := in.Hooks()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("EpisodeStart with PanicEvery=1 should panic")
			}
			if _, ok := r.(InjectedPanic); !ok {
				t.Fatalf("panic value = %v (%T), want InjectedPanic", r, r)
			}
		}()
		h.EpisodeStart(0, 0)
	}()
	if err := h.StemInsert(0, 0); err == nil {
		t.Fatal("StemInsert with InsertFailEvery=1 should fail")
	}
	if in.Panics() != 1 || in.Slows() != 1 || in.InsertFails() != 1 {
		t.Errorf("counters = %d/%d/%d, want 1/1/1", in.Panics(), in.Slows(), in.InsertFails())
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := New(Config{Seed: 1})
	h := in.Hooks()
	for slot := 0; slot < 100; slot++ {
		h.EpisodeStart(0, stem.Slot(slot))
		if err := h.StemInsert(0, stem.Slot(slot)); err != nil {
			t.Fatal(err)
		}
	}
	if in.Panics()+in.Slows()+in.InsertFails() != 0 {
		t.Error("zero config must not inject")
	}
}
