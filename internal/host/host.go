// Package host implements the host-DBMS side of the architecture (§3):
// RouLette sources pipeline SPJ result tuples to consumer operators —
// aggregations, group-bys, and the sorts the host optimizer adds because
// RouLette does not preserve interesting orders.
package host

import (
	"fmt"
	"math"
	"sort"

	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
	"github.com/roulette-db/roulette/internal/value"
)

// Group is one aggregate output row.
type Group struct {
	Key   int64 // group key; 0 for the global group
	Value int64 // COUNT or SUM
}

// Result is a query's host-side output.
type Result struct {
	QID    int
	Groups []Group // one entry for ungrouped aggregates
}

// Consume drains a query's RouLette source through its host consumer:
// COUNT(*) or SUM(col), optionally grouped and sorted.
func Consume(db *storage.Database, b *query.Batch, qid int, src *exec.Source) (*Result, error) {
	q := b.Queries[qid]
	res := &Result{QID: qid}

	// Fast path: plain COUNT(*) needs no rows.
	if q.Agg.Kind == query.AggCount && q.Agg.GroupByAlias == "" {
		res.Groups = []Group{{Value: src.Count()}}
		return res, nil
	}

	rows, width := src.Rows()
	n := 0
	if width > 0 {
		n = len(rows) / width
	}

	colOf := func(alias, col string) ([]int64, int, error) {
		inst, ok := b.InstOfAlias(qid, alias)
		if !ok {
			return nil, 0, fmt.Errorf("host: query %d: unknown alias %q", qid, alias)
		}
		pos := -1
		for i, in := range src.Insts {
			if in == inst {
				pos = i
				break
			}
		}
		if pos < 0 {
			return nil, 0, fmt.Errorf("host: query %d: source does not carry alias %q (adaptive projection mismatch)", qid, alias)
		}
		t := db.MustTable(b.Insts[inst].Table)
		return t.Col(col), pos, nil
	}

	var aggCol []int64
	var aggPos int
	if q.Agg.Kind.NeedsColumn() {
		var err error
		aggCol, aggPos, err = colOf(q.Agg.Alias, q.Agg.Col)
		if err != nil {
			return nil, err
		}
	}
	var keyCol []int64
	var keyPos int
	grouped := q.Agg.GroupByAlias != ""
	if grouped {
		var err error
		keyCol, keyPos, err = colOf(q.Agg.GroupByAlias, q.Agg.GroupByCol)
		if err != nil {
			return nil, err
		}
	}

	if !grouped {
		// SQL semantics: value aggregates ignore NULL inputs (COUNT(*) still
		// counts the row — it takes the no-rows fast path above).
		st := newAggState(q.Agg.Kind)
		for r := 0; r < n; r++ {
			if v := aggCol[rows[r*width+aggPos]]; v != value.NullCode {
				st.add(v)
			}
		}
		res.Groups = []Group{{Value: st.value()}}
		return res, nil
	}

	// NULL group keys accumulate under one NullCode group, matching SQL
	// GROUP BY (all NULLs form a single group).
	acc := make(map[int64]*aggState)
	for r := 0; r < n; r++ {
		k := keyCol[rows[r*width+keyPos]]
		st := acc[k]
		if st == nil {
			st = newAggState(q.Agg.Kind)
			acc[k] = st
		}
		if q.Agg.Kind == query.AggCount {
			st.add(0)
		} else if v := aggCol[rows[r*width+aggPos]]; v != value.NullCode {
			st.add(v)
		}
	}
	res.Groups = make([]Group, 0, len(acc))
	for k, st := range acc {
		res.Groups = append(res.Groups, Group{Key: k, Value: st.value()})
	}
	if q.Agg.Sorted {
		sort.Slice(res.Groups, func(i, j int) bool { return res.Groups[i].Key < res.Groups[j].Key })
	}
	return res, nil
}

// aggState accumulates one group's aggregate.
type aggState struct {
	kind  query.AggKind
	sum   int64
	count int64
	min   int64
	max   int64
}

func newAggState(kind query.AggKind) *aggState {
	return &aggState{kind: kind, min: math.MaxInt64, max: math.MinInt64}
}

func (s *aggState) add(v int64) {
	s.count++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

func (s *aggState) value() int64 {
	switch s.kind {
	case query.AggCount:
		return s.count
	case query.AggSum:
		return s.sum
	case query.AggMin:
		if s.count == 0 {
			return 0
		}
		return s.min
	case query.AggMax:
		if s.count == 0 {
			return 0
		}
		return s.max
	case query.AggAvg:
		if s.count == 0 {
			return 0
		}
		return s.sum / s.count
	}
	return 0
}

// ConsumeAll drains every query's source.
func ConsumeAll(db *storage.Database, b *query.Batch, ctx *exec.Context) ([]*Result, error) {
	out := make([]*Result, b.N)
	for qid := 0; qid < b.N; qid++ {
		r, err := Consume(db, b, qid, ctx.Sources[qid])
		if err != nil {
			return nil, err
		}
		out[qid] = r
	}
	return out, nil
}
