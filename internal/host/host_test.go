package host

import (
	"math/rand"
	"testing"

	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/engine"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
)

// hostDB: fact(fk, m) joined to dim(k, g).
func hostDB(rng *rand.Rand) *storage.Database {
	fact := catalog.NewRelation("fact", "fk", "m")
	dim := catalog.NewRelation("dim", "k", "g")
	sch := catalog.NewSchema(fact, dim)
	db := storage.NewDatabase(sch)
	ft := storage.NewTable(fact, 100)
	for i := 0; i < 100; i++ {
		ft.Col("fk")[i] = int64(rng.Intn(10))
		ft.Col("m")[i] = int64(i)
	}
	db.Put(ft)
	dt := storage.NewTable(dim, 10)
	for i := 0; i < 10; i++ {
		dt.Col("k")[i] = int64(i)
		dt.Col("g")[i] = int64(i % 3)
	}
	db.Put(dt)
	return db
}

func runHost(t *testing.T, db *storage.Database, qs []*query.Query) ([]*Result, *query.Batch) {
	t.Helper()
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := engine.NewSession(b, db, engine.Config{Exec: exec.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := ConsumeAll(db, b, s.Context())
	if err != nil {
		t.Fatal(err)
	}
	return res, b
}

func TestCountStar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := hostDB(rng)
	q := &query.Query{
		Rels:  []query.RelRef{{Table: "fact"}, {Table: "dim"}},
		Joins: []query.Join{{LeftAlias: "fact", LeftCol: "fk", RightAlias: "dim", RightCol: "k"}},
	}
	res, _ := runHost(t, db, []*query.Query{q})
	if len(res[0].Groups) != 1 || res[0].Groups[0].Value != 100 {
		t.Errorf("COUNT(*) = %+v, want 100", res[0].Groups)
	}
}

func TestSum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := hostDB(rng)
	q := &query.Query{
		Rels:  []query.RelRef{{Table: "fact"}, {Table: "dim"}},
		Joins: []query.Join{{LeftAlias: "fact", LeftCol: "fk", RightAlias: "dim", RightCol: "k"}},
		Agg:   query.Agg{Kind: query.AggSum, Alias: "fact", Col: "m"},
	}
	res, _ := runHost(t, db, []*query.Query{q})
	// Every fact row joins exactly once; sum of m = 0+..+99 = 4950.
	if res[0].Groups[0].Value != 4950 {
		t.Errorf("SUM = %d, want 4950", res[0].Groups[0].Value)
	}
}

func TestGroupBySorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := hostDB(rng)
	q := &query.Query{
		Rels:  []query.RelRef{{Table: "fact"}, {Table: "dim"}},
		Joins: []query.Join{{LeftAlias: "fact", LeftCol: "fk", RightAlias: "dim", RightCol: "k"}},
		Agg: query.Agg{
			Kind: query.AggCount, GroupByAlias: "dim", GroupByCol: "g", Sorted: true,
		},
	}
	res, _ := runHost(t, db, []*query.Query{q})
	groups := res[0].Groups
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	var total int64
	for i, g := range groups {
		if g.Key != int64(i) {
			t.Errorf("group %d key = %d (unsorted?)", i, g.Key)
		}
		total += g.Value
	}
	if total != 100 {
		t.Errorf("group totals = %d, want 100", total)
	}
}

func TestGroupedSumMatchesManual(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := hostDB(rng)
	q := &query.Query{
		Rels:  []query.RelRef{{Table: "fact"}, {Table: "dim"}},
		Joins: []query.Join{{LeftAlias: "fact", LeftCol: "fk", RightAlias: "dim", RightCol: "k"}},
		Agg: query.Agg{
			Kind: query.AggSum, Alias: "fact", Col: "m",
			GroupByAlias: "dim", GroupByCol: "g", Sorted: true,
		},
	}
	res, _ := runHost(t, db, []*query.Query{q})

	// Manual computation.
	want := map[int64]int64{}
	fk := db.MustTable("fact").Col("fk")
	m := db.MustTable("fact").Col("m")
	g := db.MustTable("dim").Col("g")
	for i := range fk {
		want[g[fk[i]]] += m[i]
	}
	for _, grp := range res[0].Groups {
		if want[grp.Key] != grp.Value {
			t.Errorf("group %d: sum = %d, want %d", grp.Key, grp.Value, want[grp.Key])
		}
	}
}

func TestMinMaxAvg(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := hostDB(rng)
	mk := func(kind query.AggKind) *query.Query {
		return &query.Query{
			Rels:  []query.RelRef{{Table: "fact"}, {Table: "dim"}},
			Joins: []query.Join{{LeftAlias: "fact", LeftCol: "fk", RightAlias: "dim", RightCol: "k"}},
			Agg:   query.Agg{Kind: kind, Alias: "fact", Col: "m"},
		}
	}
	res, _ := runHost(t, db, []*query.Query{mk(query.AggMin), mk(query.AggMax), mk(query.AggAvg)})
	// fact.m = 0..99, all rows join exactly once.
	if got := res[0].Groups[0].Value; got != 0 {
		t.Errorf("MIN = %d, want 0", got)
	}
	if got := res[1].Groups[0].Value; got != 99 {
		t.Errorf("MAX = %d, want 99", got)
	}
	if got := res[2].Groups[0].Value; got != 49 { // 4950/100
		t.Errorf("AVG = %d, want 49", got)
	}
}

func TestGroupedMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := hostDB(rng)
	q := &query.Query{
		Rels:  []query.RelRef{{Table: "fact"}, {Table: "dim"}},
		Joins: []query.Join{{LeftAlias: "fact", LeftCol: "fk", RightAlias: "dim", RightCol: "k"}},
		Agg: query.Agg{
			Kind: query.AggMax, Alias: "fact", Col: "m",
			GroupByAlias: "dim", GroupByCol: "g", Sorted: true,
		},
	}
	res, _ := runHost(t, db, []*query.Query{q})
	// Manual per-group max.
	want := map[int64]int64{}
	fk := db.MustTable("fact").Col("fk")
	m := db.MustTable("fact").Col("m")
	g := db.MustTable("dim").Col("g")
	for i := range fk {
		if m[i] > want[g[fk[i]]] {
			want[g[fk[i]]] = m[i]
		}
	}
	for _, grp := range res[0].Groups {
		if want[grp.Key] != grp.Value {
			t.Errorf("group %d: max = %d, want %d", grp.Key, grp.Value, want[grp.Key])
		}
	}
}
