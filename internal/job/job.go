// Package job provides the Join Order Benchmark substrate of the
// evaluation (§6): an IMDB-shaped schema and a generator for 113 SPJ
// queries with 3–16 joins.
//
// Substitution note (see DESIGN.md): the paper loads the real IMDB dataset;
// its role is supplying data that "violates assumptions that oversimplify
// optimization" — skew and join-crossing correlations. This generator
// injects those violations synthetically: Zipf-skewed foreign keys into
// title, a skewed production_year distribution, and cross-relation
// correlations (recent movies draw cast members and companies from biased
// sub-domains), so selectivities cascade non-uniformly across joins exactly
// where learned policies beat greedy ones.
package job

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
)

// Table sizes (rows) at the package's fixed laptop scale, proportioned like
// IMDB (big link tables around a central title relation, small type dims).
var sizes = map[string]int{
	"title":           8000,
	"movie_companies": 10000,
	"cast_info":       16000,
	"movie_info":      12000,
	"movie_keyword":   10000,
	"movie_info_idx":  6000,
	"company_name":    2000,
	"keyword":         1500,
	"name":            8000,
	"kind_type":       7,
	"info_type":       113,
	"company_type":    4,
	"role_type":       12,
}

// scaledSizes returns per-table row counts at the given scale; tiny type
// dimensions stay fixed.
func scaledSizes(scale float64) map[string]int {
	if scale <= 0 {
		scale = 1
	}
	out := make(map[string]int, len(sizes))
	for t, n := range sizes {
		if n > 1000 {
			n = int(float64(n) * scale)
		}
		out[t] = n
	}
	return out
}

// linkTables may appear more than once in a query (JOB reaches 16 joins via
// aliases like mi1/mi2).
var linkTables = []string{"movie_companies", "cast_info", "movie_info", "movie_keyword", "movie_info_idx"}

// edge describes the FK graph.
type edge struct {
	child, childCol, parent, parentCol string
}

var edges = []edge{
	{"movie_companies", "movie_id", "title", "id"},
	{"cast_info", "movie_id", "title", "id"},
	{"movie_info", "movie_id", "title", "id"},
	{"movie_keyword", "movie_id", "title", "id"},
	{"movie_info_idx", "movie_id", "title", "id"},
	{"title", "kind_id", "kind_type", "id"},
	{"movie_companies", "company_id", "company_name", "id"},
	{"movie_companies", "company_type_id", "company_type", "id"},
	{"cast_info", "person_id", "name", "id"},
	{"cast_info", "role_id", "role_type", "id"},
	{"movie_info", "info_type_id", "info_type", "id"},
	{"movie_info_idx", "info_type_id", "info_type", "id"},
	{"movie_keyword", "keyword_id", "keyword", "id"},
}

// zipf draws a Zipf-skewed value in [0, n).
func zipfVal(z *rand.Zipf, n int) int64 {
	v := int64(z.Uint64())
	if v >= int64(n) {
		v = int64(n) - 1
	}
	return v
}

// Generate builds the synthetic IMDB-shaped database at scale 1.
func Generate(seed int64) *storage.Database { return GenerateScaled(1, seed) }

// GenerateScaled multiplies every table size by scale (≥ 1 recommended for
// policy-learning experiments: Q-learning needs episodes, and episodes per
// circular-scan pass are rows/vectorSize).
func GenerateScaled(scale float64, seed int64) *storage.Database {
	rng := rand.New(rand.NewSource(seed))
	sizes := scaledSizes(scale)

	rels := []*catalog.Relation{
		catalog.NewRelation("title", "id", "kind_id", "production_year", "u"),
		catalog.NewRelation("movie_companies", "movie_id", "company_id", "company_type_id", "u"),
		catalog.NewRelation("cast_info", "movie_id", "person_id", "role_id", "u"),
		catalog.NewRelation("movie_info", "movie_id", "info_type_id", "info_val", "u"),
		catalog.NewRelation("movie_keyword", "movie_id", "keyword_id", "u"),
		catalog.NewRelation("movie_info_idx", "movie_id", "info_type_id", "u"),
		catalog.NewRelation("company_name", "id", "country_code", "u"),
		catalog.NewRelation("keyword", "id", "u"),
		catalog.NewRelation("name", "id", "gender", "u"),
		catalog.NewRelation("kind_type", "id", "u"),
		catalog.NewRelation("info_type", "id", "u"),
		catalog.NewRelation("company_type", "id", "u"),
		catalog.NewRelation("role_type", "id", "u"),
	}
	sch := catalog.NewSchema(rels...)
	for _, e := range edges {
		sch.MustAddFK(e.child, e.childCol, e.parent, e.parentCol)
	}
	db := storage.NewDatabase(sch)

	// Base tables with dense IDs and uniform u.
	for _, r := range rels {
		t := storage.NewTable(r, sizes[r.Name])
		if r.HasColumn("id") {
			id := t.Col("id")
			for i := range id {
				id[i] = int64(i)
			}
		}
		u := t.Col("u")
		for i := range u {
			u[i] = int64(rng.Intn(1000))
		}
		db.Put(t)
	}

	nTitle := sizes["title"]
	hot := nTitle / 50
	title := db.MustTable("title")
	// production_year: skewed toward recent years, and — crucially — the
	// hot titles (the ones link tables concentrate on) are all recent.
	// This is the join-crossing correlation trap of real IMDB data: a
	// recent-year filter looks mildly selective on title, but the surviving
	// titles carry far more link rows than the global fan-out suggests, so
	// a policy ordering joins by marginal selectivity explodes exactly for
	// those queries (§2.1's "operator correlations").
	year := title.Col("production_year")
	for i := range year {
		switch {
		case i < hot:
			year[i] = int64(2005 + rng.Intn(15))
		case rng.Float64() < 0.6:
			year[i] = int64(1990 + rng.Intn(30))
		default:
			year[i] = int64(1900 + rng.Intn(90))
		}
	}
	kind := title.Col("kind_id")
	zKind := rand.NewZipf(rng, 1.3, 1, uint64(sizes["kind_type"]-1))
	for i := range kind {
		kind[i] = zipfVal(zKind, sizes["kind_type"])
	}

	// Link tables: movie_id skewed (popular movies dominate) via a bounded
	// hot-set mixture — 25% of references hit the 2% hot (recent) titles —
	// strong enough to mislead marginal-selectivity ordering while keeping
	// fan-outs bounded.
	fillMovieFK := func(tab *storage.Table) []int64 {
		col := tab.Col("movie_id")
		for i := range col {
			if rng.Float64() < 0.25 {
				col[i] = int64(rng.Intn(hot))
			} else {
				col[i] = int64(rng.Intn(nTitle))
			}
		}
		return col
	}

	mc := db.MustTable("movie_companies")
	mcMovie := fillMovieFK(mc)
	company := mc.Col("company_id")
	ctype := mc.Col("company_type_id")
	nCompany := sizes["company_name"]
	for i := range company {
		// Correlation: recent movies use the first half of the company
		// domain (e.g. modern production companies), old movies the rest.
		if year[mcMovie[i]] >= 1990 {
			company[i] = int64(rng.Intn(nCompany / 2))
		} else {
			company[i] = int64(nCompany/2 + rng.Intn(nCompany-nCompany/2))
		}
		ctype[i] = int64(rng.Intn(sizes["company_type"]))
	}

	ci := db.MustTable("cast_info")
	ciMovie := fillMovieFK(ci)
	person := ci.Col("person_id")
	role := ci.Col("role_id")
	nName := sizes["name"]
	zRole := rand.NewZipf(rng, 1.2, 1, uint64(sizes["role_type"]-1))
	for i := range person {
		if year[ciMovie[i]] >= 2000 {
			person[i] = int64(rng.Intn(nName / 3))
		} else {
			person[i] = int64(rng.Intn(nName))
		}
		role[i] = zipfVal(zRole, sizes["role_type"])
	}

	mi := db.MustTable("movie_info")
	miMovie := fillMovieFK(mi)
	it := mi.Col("info_type_id")
	iv := mi.Col("info_val")
	zInfo := rand.NewZipf(rng, 1.1, 2, uint64(sizes["info_type"]-1))
	for i := range it {
		it[i] = zipfVal(zInfo, sizes["info_type"])
		iv[i] = int64(rng.Intn(1000))
		// Attribute correlation: hot-title info rows cluster in the low
		// value range, so value filters that look selective globally pass
		// nearly all hot rows (another marginal-vs-conditional trap).
		if miMovie[i] < int64(hot) {
			iv[i] = iv[i] % 120
		} else if year[miMovie[i]] >= 1990 {
			iv[i] = iv[i] % 500
		}
	}

	mk := db.MustTable("movie_keyword")
	fillMovieFK(mk)
	kw := mk.Col("keyword_id")
	zKw := rand.NewZipf(rng, 1.15, 2, uint64(sizes["keyword"]-1))
	for i := range kw {
		kw[i] = zipfVal(zKw, sizes["keyword"])
	}

	mii := db.MustTable("movie_info_idx")
	fillMovieFK(mii)
	iit := mii.Col("info_type_id")
	for i := range iit {
		iit[i] = zipfVal(zInfo, sizes["info_type"])
	}

	cn := db.MustTable("company_name")
	cc := cn.Col("country_code")
	for i := range cc {
		// ~60% of companies share one country (heavy skew, as in IMDB).
		if rng.Float64() < 0.6 {
			cc[i] = 0
		} else {
			cc[i] = int64(1 + rng.Intn(120))
		}
	}

	nm := db.MustTable("name")
	g := nm.Col("gender")
	for i := range g {
		g[i] = int64(rng.Intn(3))
	}

	return db
}

// Queries generates the JOB-like workload: count queries with joins ranging
// 3..16, drawn as random connected subgraphs of the FK graph rooted at
// title, re-using link tables under fresh aliases to reach deep joins, with
// skew-sensitive predicates.
func Queries(count int, seed int64) []*query.Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*query.Query, count)
	for i := range out {
		// Join counts sweep 3..16, like JOB's families.
		nJoins := 3 + (i*14/count)%14
		out[i] = genQuery(rng, i, nJoins)
	}
	return out
}

// genQuery draws one query with exactly nJoins joins when the graph allows.
func genQuery(rng *rand.Rand, idx, nJoins int) *query.Query {
	q := &query.Query{Tag: fmt.Sprintf("job-%d", idx)}

	type relUse struct {
		table string
		alias string
	}
	uses := []relUse{{"title", "t"}}
	aliasOf := map[string]string{"title": "t"}
	occ := map[string]int{"title": 1}

	addRel := func(table string) string {
		n := occ[table]
		occ[table] = n + 1
		alias := shortAlias(table)
		if n > 0 {
			alias = fmt.Sprintf("%s%d", alias, n+1)
		}
		uses = append(uses, relUse{table, alias})
		aliasOf[table+"#last"] = alias
		return alias
	}

	// Expansion: candidate edges from present aliases. Link tables can be
	// added repeatedly (max 2 occurrences), and — as in real JOB — an edge
	// between two already-present relations occasionally closes a cycle
	// (compiled into a residual predicate).
	present := map[string]string{"title": "t"} // table -> one alias (the first)
	var joins []query.Join
	haveJoin := map[string]bool{}
	joinKey := func(a, ac, b, bc string) string {
		l, r := a+"."+ac, b+"."+bc
		if l > r {
			l, r = r, l
		}
		return l + "=" + r
	}
	for len(joins) < nJoins {
		type cand struct {
			childTable, childCol, parentTable, parentCol string
			childPresent                                 bool
			cycle                                        bool
		}
		var cands []cand
		for _, e := range edges {
			_, cIn := present[e.child]
			_, pIn := present[e.parent]
			switch {
			case cIn && !pIn:
				cands = append(cands, cand{e.child, e.childCol, e.parent, e.parentCol, true, false})
			case pIn && !cIn:
				cands = append(cands, cand{e.child, e.childCol, e.parent, e.parentCol, false, false})
			case pIn && cIn:
				if e.parent == "title" && occ[e.child] < 2 {
					// Re-add a link table under a fresh alias.
					cands = append(cands, cand{e.child, e.childCol, e.parent, e.parentCol, false, false})
				} else if e.parent != "title" && rng.Float64() < 0.1 &&
					!haveJoin[joinKey(present[e.child], e.childCol, present[e.parent], e.parentCol)] {
					cands = append(cands, cand{e.child, e.childCol, e.parent, e.parentCol, false, true})
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		c := cands[rng.Intn(len(cands))]
		switch {
		case c.cycle:
			joins = append(joins, query.Join{
				LeftAlias: present[c.childTable], LeftCol: c.childCol,
				RightAlias: present[c.parentTable], RightCol: c.parentCol,
			})
			haveJoin[joinKey(present[c.childTable], c.childCol, present[c.parentTable], c.parentCol)] = true
		case c.childPresent:
			// Attach a new parent dimension.
			pa := addRel(c.parentTable)
			present[c.parentTable] = pa
			joins = append(joins, query.Join{
				LeftAlias: present[c.childTable], LeftCol: c.childCol,
				RightAlias: pa, RightCol: c.parentCol,
			})
		default:
			// Attach a (possibly repeated) child link table.
			ca := addRel(c.childTable)
			if _, ok := present[c.childTable]; !ok {
				present[c.childTable] = ca
			}
			joins = append(joins, query.Join{
				LeftAlias: ca, LeftCol: c.childCol,
				RightAlias: present[c.parentTable], RightCol: c.parentCol,
			})
		}
	}

	for _, u := range uses {
		q.Rels = append(q.Rels, query.RelRef{Table: u.table, Alias: u.alias})
	}
	q.Joins = joins

	// Predicates: year range on title, plus selective predicates on a few
	// relations (skew makes true selectivities diverge from uniform
	// estimates).
	var yLo int64
	if rng.Float64() < 0.5 {
		yLo = int64(2000 + rng.Intn(15)) // recent window: hits the hot-title trap
	} else {
		yLo = int64(1900 + rng.Intn(100))
	}
	span := int64(5 + rng.Intn(40))
	q.Filters = append(q.Filters, query.Filter{Alias: "t", Col: "production_year", Lo: yLo, Hi: yLo + span})
	for _, u := range uses[1:] {
		// Link tables always get a predicate (deep unfiltered m:n joins
		// through title would explode, which real JOB queries also avoid);
		// dimension tables are filtered half the time.
		isLink := false
		for _, lt := range linkTables {
			if u.table == lt {
				isLink = true
				break
			}
		}
		if !isLink && rng.Float64() > 0.5 {
			continue
		}
		switch u.table {
		case "movie_info", "movie_info_idx":
			k := int64(rng.Intn(113))
			q.Filters = append(q.Filters, query.Filter{Alias: u.alias, Col: "info_type_id", Lo: k, Hi: k + int64(rng.Intn(8))})
		case "company_name":
			if rng.Float64() < 0.5 {
				q.Filters = append(q.Filters, query.Filter{Alias: u.alias, Col: "country_code", Lo: 0, Hi: 0})
			} else {
				q.Filters = append(q.Filters, query.Filter{Alias: u.alias, Col: "country_code", Lo: 1, Hi: 120})
			}
		case "keyword":
			k := int64(rng.Intn(sizes["keyword"]))
			q.Filters = append(q.Filters, query.Filter{Alias: u.alias, Col: "id", Lo: 0, Hi: k})
		case "name":
			q.Filters = append(q.Filters, query.Filter{Alias: u.alias, Col: "gender", Lo: int64(rng.Intn(3)), Hi: 2})
		default:
			lo := int64(rng.Intn(700))
			q.Filters = append(q.Filters, query.Filter{Alias: u.alias, Col: "u", Lo: lo, Hi: lo + 100 + int64(rng.Intn(200))})
		}
	}
	return q
}

// shortAlias gives JOB-style aliases (mc, ci, mi, mk, ...).
func shortAlias(table string) string {
	switch table {
	case "movie_companies":
		return "mc"
	case "cast_info":
		return "ci"
	case "movie_info":
		return "mi"
	case "movie_keyword":
		return "mk"
	case "movie_info_idx":
		return "mii"
	case "company_name":
		return "cn"
	case "company_type":
		return "ct"
	case "keyword":
		return "k"
	case "name":
		return "n"
	case "kind_type":
		return "kt"
	case "info_type":
		return "it"
	case "role_type":
		return "rt"
	}
	return table
}

// NumQueries is JOB's query count.
const NumQueries = 113

var _ = math.Abs // reserved for future statistics helpers
