package job

import (
	"testing"

	"github.com/roulette-db/roulette/internal/query"
)

func TestGenerateSchema(t *testing.T) {
	db := Generate(1)
	for name, n := range sizes {
		tab := db.Table(name)
		if tab == nil {
			t.Fatalf("missing table %s", name)
		}
		if tab.NumRows() != n {
			t.Errorf("%s rows = %d, want %d", name, tab.NumRows(), n)
		}
	}
	// FK domains.
	title := db.MustTable("title")
	for _, link := range linkTables {
		col := db.MustTable(link).Col("movie_id")
		for _, v := range col {
			if v < 0 || v >= int64(title.NumRows()) {
				t.Fatalf("%s.movie_id out of domain: %d", link, v)
			}
		}
	}
}

func TestSkewAndCorrelation(t *testing.T) {
	db := Generate(2)
	// Zipf skew: the most popular movie must appear far more often than the
	// uniform expectation in cast_info.
	ci := db.MustTable("cast_info").Col("movie_id")
	counts := map[int64]int{}
	for _, v := range ci {
		counts[v]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := len(ci) / sizes["title"]
	if max < uniform*10 {
		t.Errorf("movie_id skew too weak: max %d vs uniform %d", max, uniform)
	}

	// Join-crossing correlation: recent movies use only the low third of
	// the person domain.
	year := db.MustTable("title").Col("production_year")
	person := db.MustTable("cast_info").Col("person_id")
	movies := db.MustTable("cast_info").Col("movie_id")
	for i := range person {
		if year[movies[i]] >= 2000 && person[i] >= int64(sizes["name"]/3) {
			t.Fatalf("correlation violated: recent movie %d has person %d", movies[i], person[i])
		}
	}
}

func TestQueriesCompileAndSpanJoinRange(t *testing.T) {
	qs := Queries(NumQueries, 3)
	if len(qs) != 113 {
		t.Fatalf("got %d queries", len(qs))
	}
	if _, err := query.Compile(qs); err != nil {
		t.Fatalf("JOB batch does not compile: %v", err)
	}
	min, max := 99, 0
	for _, q := range qs {
		j := len(q.Joins)
		if j < min {
			min = j
		}
		if j > max {
			max = j
		}
		// Cycle-closing joins (residuals) don't add relations, so rels can
		// be at most joins+1 and no less than 3.
		if len(q.Rels) > j+1 || len(q.Rels) < 3 {
			t.Errorf("%s: %d rels for %d joins", q.Tag, len(q.Rels), j)
		}
		if len(q.Filters) == 0 {
			t.Errorf("%s: no filters", q.Tag)
		}
	}
	if min != 3 {
		t.Errorf("min joins = %d, want 3", min)
	}
	if max < 12 {
		t.Errorf("max joins = %d, want deep queries (>=12)", max)
	}
}

func TestQueriesUseAliasesForRepeatedLinkTables(t *testing.T) {
	qs := Queries(NumQueries, 5)
	found := false
	for _, q := range qs {
		seen := map[string]int{}
		for _, r := range q.Rels {
			seen[r.Table]++
		}
		for _, c := range seen {
			if c > 1 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no query repeats a link table; deep JOB queries need aliases")
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(9)
	b := Generate(9)
	ca := a.MustTable("movie_info").Col("info_val")
	cb := b.MustTable("movie_info").Col("info_val")
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatal("db generation not deterministic")
		}
	}
	q1 := Queries(20, 4)
	q2 := Queries(20, 4)
	for i := range q1 {
		if len(q1[i].Joins) != len(q2[i].Joins) || len(q1[i].Filters) != len(q2[i].Filters) {
			t.Fatal("query generation not deterministic")
		}
	}
}

func TestQueriesIncludeCycles(t *testing.T) {
	qs := Queries(NumQueries, 3)
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Residuals) == 0 {
		t.Error("no cyclic queries generated in 113 draws; real JOB contains cycles")
	}
}
