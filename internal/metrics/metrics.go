// Package metrics provides the lightweight observability primitives the
// engine and harness use: exponentially weighted moving averages, log-scale
// histograms for cardinalities and latencies, and a fixed-capacity episode
// trace ring for post-mortem inspection of adaptive behaviour.
package metrics

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"
	"time"
)

// EWMA is an exponentially weighted moving average. The zero value is
// unusable; use NewEWMA. Safe for concurrent use.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	v     float64
	n     int64
}

// NewEWMA creates an average with smoothing factor alpha in (0, 1]; higher
// alpha weighs recent samples more.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &EWMA{alpha: alpha}
}

// Add folds one sample in.
func (e *EWMA) Add(x float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		e.v = x
	} else {
		e.v = e.alpha*x + (1-e.alpha)*e.v
	}
	e.n++
}

// Value returns the current average and the sample count.
func (e *EWMA) Value() (float64, int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.v, e.n
}

// Histogram counts non-negative int64 samples in power-of-two buckets:
// bucket i holds values in [2^(i-1), 2^i), bucket 0 holds zero. Safe for
// concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets [65]int64
	count   int64
	sum     int64
	max     int64
}

// Add records one sample; negative samples count into bucket 0.
func (h *Histogram) Add(v int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i]++
	h.count++
	if v > 0 {
		h.sum += v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the sample mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (bucket resolution).
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return h.max
}

// String renders a compact ASCII bar chart of the non-empty buckets.
func (h *Histogram) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var b strings.Builder
	var maxC int64
	for _, c := range h.buckets {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = 1 << uint(i-1)
		}
		bar := int(40 * c / maxC)
		fmt.Fprintf(&b, "%12d+ %-40s %d\n", lo, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// EpisodeRecord is one traced episode.
type EpisodeRecord struct {
	Episode   int64
	Inst      int
	Input     int
	JoinInput int
	Cost      float64
	Duration  time.Duration

	// ActiveQueries is the number of queries in the episode's active set.
	ActiveQueries int
	// SelActions lists the chosen selection-operator IDs in application
	// order; JoinActions the probed edge IDs in execution order. Both are
	// recorded only when the executor runs with action tracing on, and the
	// record owns the slices (they never alias executor buffers).
	SelActions  []int32
	JoinActions []int32

	// Fault is empty for a completed episode, else the fault class that
	// aborted it ("panic", "insert", "stall").
	Fault string

	// Event is empty for an episode record; otherwise the record is a
	// control-plane event interleaved into the trace ("reject", "shed",
	// "lane_promote") with Tenant and Qid identifying the subject (Qid -1
	// when the query never received an id).
	Event  string
	Tenant string
	Qid    int
}

// Ring is a fixed-capacity trace of the most recent episodes. Safe for
// concurrent use. Besides the windowed trace it keeps lifetime abort/fault
// counters, which survive eviction.
type Ring struct {
	mu     sync.Mutex
	buf    []EpisodeRecord
	next   int
	full   bool
	faults map[string]int64
	nfault int64
}

// NewRing creates a ring holding the last n episodes.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 1024
	}
	return &Ring{buf: make([]EpisodeRecord, n)}
}

// Add appends one record, evicting the oldest when full.
func (r *Ring) Add(rec EpisodeRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rec.Fault != "" {
		if r.faults == nil {
			r.faults = make(map[string]int64)
		}
		r.faults[rec.Fault]++
		r.nfault++
	}
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
}

// AddEvent appends a control-plane event record (admission rejection,
// deadline shed, urgency-lane promotion) to the trace, interleaved with
// episode records in arrival order.
func (r *Ring) AddEvent(event, tenant string, qid int) {
	r.Add(EpisodeRecord{Event: event, Tenant: tenant, Qid: qid})
}

// Events returns the control-plane event records currently in the window,
// oldest-first.
func (r *Ring) Events() []EpisodeRecord {
	all := r.Snapshot()
	out := all[:0]
	for _, rec := range all {
		if rec.Event != "" {
			out = append(out, rec)
		}
	}
	return out
}

// Faults returns the lifetime count of aborted episodes recorded, across
// the whole trace (not just the current window).
func (r *Ring) Faults() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nfault
}

// FaultsByKind returns the lifetime per-class abort counters (a copy).
func (r *Ring) FaultsByKind() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.faults))
	for k, v := range r.faults {
		out[k] = v
	}
	return out
}

// Snapshot returns the traced episodes oldest-first.
func (r *Ring) Snapshot() []EpisodeRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]EpisodeRecord(nil), r.buf[:r.next]...)
	}
	out := make([]EpisodeRecord, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len returns the number of records currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}
