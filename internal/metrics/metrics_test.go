package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if v, n := e.Value(); v != 0 || n != 0 {
		t.Error("fresh EWMA not zero")
	}
	e.Add(10)
	if v, _ := e.Value(); v != 10 {
		t.Errorf("first sample = %v", v)
	}
	e.Add(20)
	if v, n := e.Value(); v != 15 || n != 2 {
		t.Errorf("after two samples: %v, %d", v, n)
	}
	// Bad alpha falls back to a sane default.
	if NewEWMA(-1) == nil {
		t.Error("nil EWMA")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 100, 1000} {
		h.Add(v)
	}
	if h.Count() != 7 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Mean() < 150 || h.Mean() > 170 {
		t.Errorf("mean = %v", h.Mean())
	}
	if q := h.Quantile(0.99); q < 1000 {
		t.Errorf("p99 = %d", q)
	}
	if q := h.Quantile(0); q > 0 {
		t.Errorf("p0 = %d", q)
	}
	if !strings.Contains(h.String(), "#") {
		t.Error("String should render bars")
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram stats")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Add(i)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	if r.Len() != 0 {
		t.Error("fresh ring not empty")
	}
	for i := int64(1); i <= 5; i++ {
		r.Add(EpisodeRecord{Episode: i, Duration: time.Duration(i)})
	}
	if r.Len() != 3 {
		t.Errorf("len = %d", r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Episode != 3 || snap[2].Episode != 5 {
		t.Errorf("snapshot = %+v", snap)
	}
	// Partial fill path.
	r2 := NewRing(10)
	r2.Add(EpisodeRecord{Episode: 42})
	if s := r2.Snapshot(); len(s) != 1 || s[0].Episode != 42 {
		t.Errorf("partial snapshot = %+v", s)
	}
	if NewRing(0).Len() != 0 {
		t.Error("zero-capacity ring should default")
	}
}

// TestHistogramQuantileEdges pins the bucket-resolution quantile contract
// at its boundaries.
func TestHistogramQuantileEdges(t *testing.T) {
	var empty Histogram
	if empty.Quantile(0) != 0 || empty.Quantile(1) != 0 {
		t.Error("empty histogram quantiles should be 0")
	}

	// Single bucket: every sample lands in [64, 128); all quantiles resolve
	// to that bucket's upper bound except q=1, which reports the exact max.
	var single Histogram
	for i := 0; i < 10; i++ {
		single.Add(100)
	}
	if q := single.Quantile(0); q != 127 {
		t.Errorf("single-bucket p0 = %d, want 127", q)
	}
	if q := single.Quantile(0.5); q != 127 {
		t.Errorf("single-bucket p50 = %d, want 127", q)
	}
	if q := single.Quantile(1); q != 100 {
		t.Errorf("single-bucket p100 = %d, want max 100", q)
	}

	// Zero-only samples live in bucket 0 and quantiles stay 0.
	var zeros Histogram
	zeros.Add(0)
	zeros.Add(-5)
	if zeros.Quantile(0) != 0 || zeros.Quantile(0.99) != 0 {
		t.Error("zero-bucket quantiles should be 0")
	}

	// q=1 always reports the exact maximum, across buckets.
	var h Histogram
	for _, v := range []int64{1, 2, 900} {
		h.Add(v)
	}
	if q := h.Quantile(1); q != 900 {
		t.Errorf("p100 = %d, want 900", q)
	}
}

// TestConcurrentPrimitives hammers every shared primitive from multiple
// goroutines; run under -race this is the package's data-race check.
func TestConcurrentPrimitives(t *testing.T) {
	var h Histogram
	e := NewEWMA(0.3)
	r := NewRing(64)
	var reg Registry

	const goroutines, iters = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h.Add(int64(i))
				_ = h.Quantile(0.5)
				_ = h.Mean()
				e.Add(float64(i))
				e.Value()
				rec := EpisodeRecord{Episode: int64(g*iters + i), Inst: g}
				if i%17 == 0 {
					rec.Fault = "panic"
				}
				r.Add(rec)
				r.Len()
				if i%50 == 0 {
					r.Snapshot()
					r.FaultsByKind()
				}
				reg.Episodes.Add(1)
				if i%100 == 0 {
					reg.AddFault("stall", 1)
					reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	if h.Count() != goroutines*iters {
		t.Errorf("histogram count = %d", h.Count())
	}
	if _, n := e.Value(); n != goroutines*iters {
		t.Errorf("ewma samples = %d", n)
	}
	if r.Len() != 64 {
		t.Errorf("ring len = %d", r.Len())
	}
	wantFaults := int64(goroutines * ((iters + 16) / 17))
	if got := r.Faults(); got != wantFaults {
		t.Errorf("ring faults = %d, want %d", got, wantFaults)
	}
	if got := reg.Episodes.Load(); got != goroutines*iters {
		t.Errorf("registry episodes = %d", got)
	}
}

func TestRingFaultCounters(t *testing.T) {
	r := NewRing(4)
	if r.Faults() != 0 {
		t.Error("fresh ring has faults")
	}
	r.Add(EpisodeRecord{Episode: 1})
	r.Add(EpisodeRecord{Episode: 2, Fault: "panic"})
	r.Add(EpisodeRecord{Episode: 3, Fault: "panic"})
	r.Add(EpisodeRecord{Episode: 4, Fault: "insert"})
	// Fault totals survive ring eviction: push the faulted records out.
	for i := int64(5); i <= 10; i++ {
		r.Add(EpisodeRecord{Episode: i})
	}
	if got := r.Faults(); got != 3 {
		t.Errorf("Faults() = %d, want 3", got)
	}
	by := r.FaultsByKind()
	if by["panic"] != 2 || by["insert"] != 1 {
		t.Errorf("FaultsByKind() = %v", by)
	}
	// The returned map is a copy.
	by["panic"] = 99
	if r.FaultsByKind()["panic"] != 2 {
		t.Error("FaultsByKind exposed internal map")
	}
}

func TestRingEventRecords(t *testing.T) {
	r := NewRing(8)
	r.Add(EpisodeRecord{Episode: 1})
	r.AddEvent("lane_promote", "fast", 3)
	r.Add(EpisodeRecord{Episode: 2})
	r.AddEvent("shed", "late", 5)
	r.AddEvent("reject", "bulk", -1)

	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("Events() returned %d records, want 3", len(evs))
	}
	want := []EpisodeRecord{
		{Event: "lane_promote", Tenant: "fast", Qid: 3},
		{Event: "shed", Tenant: "late", Qid: 5},
		{Event: "reject", Tenant: "bulk", Qid: -1},
	}
	for i, w := range want {
		if evs[i].Event != w.Event || evs[i].Tenant != w.Tenant || evs[i].Qid != w.Qid {
			t.Errorf("event %d = %+v, want %+v", i, evs[i], w)
		}
	}
	// Event records interleave with episodes in the shared window and are
	// evicted together with them.
	for i := int64(3); i <= 10; i++ {
		r.Add(EpisodeRecord{Episode: i})
	}
	if got := len(r.Events()); got != 0 {
		t.Errorf("after eviction Events() = %d records, want 0", got)
	}
	// Events never count as faults.
	if r.Faults() != 0 {
		t.Errorf("event records counted as faults: %d", r.Faults())
	}
}
