package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if v, n := e.Value(); v != 0 || n != 0 {
		t.Error("fresh EWMA not zero")
	}
	e.Add(10)
	if v, _ := e.Value(); v != 10 {
		t.Errorf("first sample = %v", v)
	}
	e.Add(20)
	if v, n := e.Value(); v != 15 || n != 2 {
		t.Errorf("after two samples: %v, %d", v, n)
	}
	// Bad alpha falls back to a sane default.
	if NewEWMA(-1) == nil {
		t.Error("nil EWMA")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 100, 1000} {
		h.Add(v)
	}
	if h.Count() != 7 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Mean() < 150 || h.Mean() > 170 {
		t.Errorf("mean = %v", h.Mean())
	}
	if q := h.Quantile(0.99); q < 1000 {
		t.Errorf("p99 = %d", q)
	}
	if q := h.Quantile(0); q > 0 {
		t.Errorf("p0 = %d", q)
	}
	if !strings.Contains(h.String(), "#") {
		t.Error("String should render bars")
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram stats")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Add(i)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	if r.Len() != 0 {
		t.Error("fresh ring not empty")
	}
	for i := int64(1); i <= 5; i++ {
		r.Add(EpisodeRecord{Episode: i, Duration: time.Duration(i)})
	}
	if r.Len() != 3 {
		t.Errorf("len = %d", r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Episode != 3 || snap[2].Episode != 5 {
		t.Errorf("snapshot = %+v", snap)
	}
	// Partial fill path.
	r2 := NewRing(10)
	r2.Add(EpisodeRecord{Episode: 42})
	if s := r2.Snapshot(); len(s) != 1 || s[0].Episode != 42 {
		t.Errorf("partial snapshot = %+v", s)
	}
	if NewRing(0).Len() != 0 {
		t.Error("zero-capacity ring should default")
	}
}

func TestRingFaultCounters(t *testing.T) {
	r := NewRing(4)
	if r.Faults() != 0 {
		t.Error("fresh ring has faults")
	}
	r.Add(EpisodeRecord{Episode: 1})
	r.Add(EpisodeRecord{Episode: 2, Fault: "panic"})
	r.Add(EpisodeRecord{Episode: 3, Fault: "panic"})
	r.Add(EpisodeRecord{Episode: 4, Fault: "insert"})
	// Fault totals survive ring eviction: push the faulted records out.
	for i := int64(5); i <= 10; i++ {
		r.Add(EpisodeRecord{Episode: i})
	}
	if got := r.Faults(); got != 3 {
		t.Errorf("Faults() = %d, want 3", got)
	}
	by := r.FaultsByKind()
	if by["panic"] != 2 || by["insert"] != 1 {
		t.Errorf("FaultsByKind() = %v", by)
	}
	// The returned map is a copy.
	by["panic"] = 99
	if r.FaultsByKind()["panic"] != 2 {
		t.Error("FaultsByKind exposed internal map")
	}
}
