package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Label is one Prometheus label pair.
type Label struct {
	Name  string
	Value string
}

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4). HELP and TYPE headers are emitted once per metric family,
// so labeled series of the same family can be written back to back. Write
// errors are sticky; check Err after the last metric.
type PromWriter struct {
	w    io.Writer
	err  error
	seen map[string]bool
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, seen: make(map[string]bool)}
}

// Counter writes one counter sample.
func (p *PromWriter) Counter(name, help string, value float64, labels ...Label) {
	p.sample("counter", name, help, value, labels)
}

// Gauge writes one gauge sample.
func (p *PromWriter) Gauge(name, help string, value float64, labels ...Label) {
	p.sample("gauge", name, help, value, labels)
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) sample(typ, name, help string, value float64, labels []Label) {
	if p.err != nil {
		return
	}
	if !p.seen[name] {
		p.seen[name] = true
		if _, err := fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ); err != nil {
			p.err = err
			return
		}
	}
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(value, 'g', -1, 64))
	b.WriteByte('\n')
	if _, err := io.WriteString(p.w, b.String()); err != nil {
		p.err = err
	}
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel additionally escapes double quotes.
func escapeLabel(s string) string {
	s = escapeHelp(s)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// sortedKeys returns m's keys in deterministic order (for stable exposition
// of map-backed families such as fault classes).
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
