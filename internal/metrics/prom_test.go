package metrics

import (
	"bufio"
	"strings"
	"testing"
)

// TestPromWriterGolden pins the exact exposition-format output: HELP/TYPE
// once per family, labels escaped, floats rendered compactly.
func TestPromWriterGolden(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("app_requests_total", "Requests served.", 42)
	p.Counter("app_errors_total", `Errors by "kind".`, 1.5, Label{"kind", `bad "input"`})
	p.Counter("app_errors_total", `Errors by "kind".`, 3, Label{"kind", "timeout"})
	p.Gauge("app_queue_depth", "Current queue depth.", 7)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}

	want := `# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total 42
# HELP app_errors_total Errors by "kind".
# TYPE app_errors_total counter
app_errors_total{kind="bad \"input\""} 1.5
app_errors_total{kind="timeout"} 3
# HELP app_queue_depth Current queue depth.
# TYPE app_queue_depth gauge
app_queue_depth 7
`
	if got := b.String(); got != want {
		t.Errorf("prom output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRegistryWriteProm checks the full registry exposition is well-formed:
// every non-comment line is `name[{labels}] value`, every family has HELP
// and TYPE headers, and folded counters surface.
func TestRegistryWriteProm(t *testing.T) {
	var r Registry
	r.Batches.Add(2)
	r.Episodes.Add(100)
	r.JoinTuples.Add(12345)
	r.AddFault("panic", 1)
	r.AddFault("stall", 3)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "roulette_batches_total 2\n") {
		t.Errorf("missing batches counter:\n%s", out)
	}
	if !strings.Contains(out, `roulette_episode_faults_by_kind_total{kind="panic"} 1`) ||
		!strings.Contains(out, `roulette_episode_faults_by_kind_total{kind="stall"} 3`) {
		t.Errorf("missing fault-class counters:\n%s", out)
	}
	if !strings.Contains(out, `roulette_phase_seconds_total{phase="probe"}`) {
		t.Errorf("missing phase breakdown:\n%s", out)
	}

	typed := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		name, _, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("sample line without value: %q", line)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if !typed[name] {
			t.Errorf("sample %q precedes its TYPE header", line)
		}
	}

	if r.Snapshot().Faults["stall"] != 3 {
		t.Error("snapshot lost fault classes")
	}
}
