package metrics

import (
	"io"
	"sync"
	"sync/atomic"
)

// Registry is a process-wide set of engine counters. Sessions fold their
// totals in once per batch (never on the episode hot path), so the registry
// is cheap enough to leave always on; fields that depend on opt-in stats
// collection (sharing, policy counters) simply stay zero when collection is
// disabled. The zero value is ready to use.
type Registry struct {
	Batches         atomic.Int64 // finished batch executions
	QueriesComplete atomic.Int64 // queries that drained to completion
	QueriesAborted  atomic.Int64 // queries cut by cancellation or faults
	Episodes        atomic.Int64
	EpisodeFaults   atomic.Int64

	SelIn       atomic.Int64 // tuples entering the selection phase
	SelOut      atomic.Int64 // tuples surviving it
	StemInserts atomic.Int64 // STeM entries inserted
	StemProbes  atomic.Int64 // STeM probe lookups
	JoinTuples  atomic.Int64 // intermediate join output tuples
	Routed      atomic.Int64 // tuples delivered to sources

	SharedOps atomic.Int64 // operator invocations serving >1 query
	TotalOps  atomic.Int64 // all counted operator invocations

	PlanSwitches   atomic.Int64
	ExploreActions atomic.Int64
	ExploitActions atomic.Int64
	QStates        atomic.Int64 // Q-table size of the most recent session (gauge)
	WatermarkLag   atomic.Int64 // slots allocated but unpublished at session end (gauge; non-zero = leak)

	FilterNs atomic.Int64
	BuildNs  atomic.Int64
	ProbeNs  atomic.Int64
	RouteNs  atomic.Int64

	mu     sync.Mutex
	faults map[string]int64 // per fault class
}

var defaultRegistry Registry

// Default returns the process-wide registry that sessions fold into.
func Default() *Registry { return &defaultRegistry }

// AddFault adds n aborted episodes of the given fault class.
func (r *Registry) AddFault(kind string, n int64) {
	if n == 0 {
		return
	}
	r.mu.Lock()
	if r.faults == nil {
		r.faults = make(map[string]int64)
	}
	r.faults[kind] += n
	r.mu.Unlock()
	r.EpisodeFaults.Add(n)
}

// faultsCopy snapshots the per-class fault counters.
func (r *Registry) faultsCopy() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.faults))
	for k, v := range r.faults {
		out[k] = v
	}
	return out
}

// RegistrySnapshot is a point-in-time copy of a Registry, JSON-shaped for
// the metrics endpoint.
type RegistrySnapshot struct {
	Batches         int64 `json:"batches"`
	QueriesComplete int64 `json:"queries_completed"`
	QueriesAborted  int64 `json:"queries_aborted"`
	Episodes        int64 `json:"episodes"`
	EpisodeFaults   int64 `json:"episode_faults"`

	SelIn       int64 `json:"sel_tuples_in"`
	SelOut      int64 `json:"sel_tuples_out"`
	StemInserts int64 `json:"stem_inserts"`
	StemProbes  int64 `json:"stem_probes"`
	JoinTuples  int64 `json:"join_tuples"`
	Routed      int64 `json:"routed_tuples"`

	SharedOps int64 `json:"shared_op_invocations"`
	TotalOps  int64 `json:"op_invocations"`

	PlanSwitches   int64 `json:"plan_switches"`
	ExploreActions int64 `json:"explore_actions"`
	ExploitActions int64 `json:"exploit_actions"`
	QStates        int64 `json:"qtable_states"`
	WatermarkLag   int64 `json:"watermark_lag"`

	FilterNs int64 `json:"filter_ns"`
	BuildNs  int64 `json:"build_ns"`
	ProbeNs  int64 `json:"probe_ns"`
	RouteNs  int64 `json:"route_ns"`

	Faults map[string]int64 `json:"episode_faults_by_kind,omitempty"`
}

// Snapshot copies the current counter values.
func (r *Registry) Snapshot() RegistrySnapshot {
	return RegistrySnapshot{
		Batches:         r.Batches.Load(),
		QueriesComplete: r.QueriesComplete.Load(),
		QueriesAborted:  r.QueriesAborted.Load(),
		Episodes:        r.Episodes.Load(),
		EpisodeFaults:   r.EpisodeFaults.Load(),
		SelIn:           r.SelIn.Load(),
		SelOut:          r.SelOut.Load(),
		StemInserts:     r.StemInserts.Load(),
		StemProbes:      r.StemProbes.Load(),
		JoinTuples:      r.JoinTuples.Load(),
		Routed:          r.Routed.Load(),
		SharedOps:       r.SharedOps.Load(),
		TotalOps:        r.TotalOps.Load(),
		PlanSwitches:    r.PlanSwitches.Load(),
		ExploreActions:  r.ExploreActions.Load(),
		ExploitActions:  r.ExploitActions.Load(),
		QStates:         r.QStates.Load(),
		WatermarkLag:    r.WatermarkLag.Load(),
		FilterNs:        r.FilterNs.Load(),
		BuildNs:         r.BuildNs.Load(),
		ProbeNs:         r.ProbeNs.Load(),
		RouteNs:         r.RouteNs.Load(),
		Faults:          r.faultsCopy(),
	}
}

// WriteProm renders the registry in the Prometheus text exposition format.
func (r *Registry) WriteProm(w io.Writer) error {
	s := r.Snapshot()
	p := NewPromWriter(w)
	p.Counter("roulette_batches_total", "Finished batch executions.", float64(s.Batches))
	p.Counter("roulette_queries_completed_total", "Queries that drained to completion.", float64(s.QueriesComplete))
	p.Counter("roulette_queries_aborted_total", "Queries cut by cancellation, deadlines, or faults.", float64(s.QueriesAborted))
	p.Counter("roulette_episodes_total", "Executed episodes.", float64(s.Episodes))
	p.Counter("roulette_episode_faults_total", "Episodes aborted by a fault.", float64(s.EpisodeFaults))
	faults := s.Faults
	for _, kind := range sortedKeys(faults) {
		p.Counter("roulette_episode_faults_by_kind_total", "Episodes aborted, by fault class.",
			float64(faults[kind]), Label{"kind", kind})
	}
	p.Counter("roulette_sel_tuples_in_total", "Tuples entering the selection phase.", float64(s.SelIn))
	p.Counter("roulette_sel_tuples_out_total", "Tuples surviving the selection phase.", float64(s.SelOut))
	p.Counter("roulette_stem_inserts_total", "STeM entries inserted.", float64(s.StemInserts))
	p.Counter("roulette_stem_probes_total", "STeM probe lookups.", float64(s.StemProbes))
	p.Counter("roulette_join_tuples_total", "Intermediate join output tuples.", float64(s.JoinTuples))
	p.Counter("roulette_routed_tuples_total", "Result tuples delivered to query sources.", float64(s.Routed))
	p.Counter("roulette_shared_op_invocations_total", "Operator invocations serving more than one query.", float64(s.SharedOps))
	p.Counter("roulette_op_invocations_total", "Counted operator invocations.", float64(s.TotalOps))
	p.Counter("roulette_plan_switches_total", "Episodes whose plan differed from the previous plan on the same relation.", float64(s.PlanSwitches))
	p.Counter("roulette_policy_explore_actions_total", "Policy decisions taken by epsilon-exploration.", float64(s.ExploreActions))
	p.Counter("roulette_policy_exploit_actions_total", "Policy decisions taken greedily from Q-values.", float64(s.ExploitActions))
	p.Gauge("roulette_qtable_states", "Q-table (state, action) entries of the most recent session.", float64(s.QStates))
	p.Gauge("roulette_watermark_lag", "Version slots allocated but never published by the most recent session (non-zero indicates a slot leak disabling the probe watermark fast path).", float64(s.WatermarkLag))
	p.Counter("roulette_phase_seconds_total", "Cumulative execution time per operator class.",
		float64(s.FilterNs)/1e9, Label{"phase", "filter"})
	p.Counter("roulette_phase_seconds_total", "Cumulative execution time per operator class.",
		float64(s.BuildNs)/1e9, Label{"phase", "build"})
	p.Counter("roulette_phase_seconds_total", "Cumulative execution time per operator class.",
		float64(s.ProbeNs)/1e9, Label{"phase", "probe"})
	p.Counter("roulette_phase_seconds_total", "Cumulative execution time per operator class.",
		float64(s.RouteNs)/1e9, Label{"phase", "route"})
	return p.Err()
}
