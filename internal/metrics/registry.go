package metrics

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a process-wide set of engine counters. Sessions fold their
// totals in once per batch (never on the episode hot path), so the registry
// is cheap enough to leave always on; fields that depend on opt-in stats
// collection (sharing, policy counters) simply stay zero when collection is
// disabled. The zero value is ready to use.
type Registry struct {
	Batches         atomic.Int64 // finished batch executions
	QueriesComplete atomic.Int64 // queries that drained to completion
	QueriesAborted  atomic.Int64 // queries cut by cancellation or faults
	Episodes        atomic.Int64
	EpisodeFaults   atomic.Int64

	SelIn       atomic.Int64 // tuples entering the selection phase
	SelOut      atomic.Int64 // tuples surviving it
	StemInserts atomic.Int64 // STeM entries inserted
	StemProbes  atomic.Int64 // STeM probe lookups
	JoinTuples  atomic.Int64 // intermediate join output tuples
	Routed      atomic.Int64 // tuples delivered to sources

	SharedOps atomic.Int64 // operator invocations serving >1 query
	TotalOps  atomic.Int64 // all counted operator invocations

	PlanSwitches   atomic.Int64
	ExploreActions atomic.Int64
	ExploitActions atomic.Int64
	QStates        atomic.Int64 // Q-table size of the most recent session (gauge)
	WatermarkLag   atomic.Int64 // slots allocated but unpublished at session end (gauge; non-zero = leak)

	// Admission / overload protection (streaming).
	SubmitAdmitted   atomic.Int64 // submissions admitted past the controller
	SubmitOverloads  atomic.Int64 // submissions rejected with ErrOverloaded
	DeadlineSheds    atomic.Int64 // queries shed for unmeetable deadlines (submit-time + mid-flight)
	StarvationBoosts atomic.Int64 // starvation-watchdog activations

	// Epoch-based concurrent admission & GC (streaming).
	GCConcurrentQuanta atomic.Int64 // GC quanta executed while episodes were in flight
	EpochLag           atomic.Int64 // generations the oldest pinned worker trails the domain (gauge)

	// Cross-batch policy persistence (template-keyed warm starts).
	PolicyCacheHits    atomic.Int64 // snapshot lookups that found a cached template
	PolicyCacheMisses  atomic.Int64 // snapshot lookups that came up cold
	PolicyCacheStores  atomic.Int64 // snapshots exported into the cache
	WarmStartedQueries atomic.Int64 // queries that began executing under an imported prior

	// AdmitLatency is the submit-to-first-episode latency distribution in
	// microseconds: the time from SubmitLive returning a query ID to the
	// first episode vector carrying the query's bit being handed to a
	// worker. With the stop-the-world gate gone this is the headline
	// admission-responsiveness number.
	AdmitLatency Histogram

	FilterNs atomic.Int64
	BuildNs  atomic.Int64
	ProbeNs  atomic.Int64
	RouteNs  atomic.Int64

	mu      sync.Mutex
	faults  map[string]int64          // per fault class
	tenants map[string]*TenantMetrics // per tenant, streaming SLO accounting
}

// TenantMetrics is one tenant's streaming SLO accounting: retire-latency
// distribution (submit to terminal ticket outcome) plus admission counters.
// Histograms are power-of-two-bucketed microseconds, so the exported
// quantiles are upper bounds at bucket resolution.
type TenantMetrics struct {
	Retire   Histogram // retire latency in microseconds
	Admitted atomic.Int64
	Rejected atomic.Int64 // ErrOverloaded rejections
	Shed     atomic.Int64 // ErrDeadlineShed (submit-time + mid-flight)
}

// Tenant returns (creating) the named tenant's metrics.
func (r *Registry) Tenant(name string) *TenantMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tenants == nil {
		r.tenants = make(map[string]*TenantMetrics)
	}
	tm := r.tenants[name]
	if tm == nil {
		tm = &TenantMetrics{}
		r.tenants[name] = tm
	}
	return tm
}

// ObserveRetire records one query's submit-to-retire latency for a tenant.
func (r *Registry) ObserveRetire(tenant string, micros int64) {
	r.Tenant(tenant).Retire.Add(micros)
}

// TenantSLO is one tenant's exported SLO snapshot.
type TenantSLO struct {
	Tenant        string  `json:"tenant"`
	Retired       int64   `json:"retired"`
	RetireP50Us   int64   `json:"retire_p50_micros"`
	RetireP95Us   int64   `json:"retire_p95_micros"`
	RetireMeanUs  float64 `json:"retire_mean_micros"`
	Admitted      int64   `json:"admitted"`
	OverloadRejcs int64   `json:"overload_rejected"`
	DeadlineSheds int64   `json:"deadline_shed"`
}

// tenantsCopy snapshots the per-tenant SLO metrics, sorted by tenant name.
func (r *Registry) tenantsCopy() []TenantSLO {
	r.mu.Lock()
	names := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		names = append(names, name)
	}
	tms := make([]*TenantMetrics, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		tms = append(tms, r.tenants[name])
	}
	r.mu.Unlock()

	out := make([]TenantSLO, len(names))
	for i, tm := range tms {
		out[i] = TenantSLO{
			Tenant:        names[i],
			Retired:       tm.Retire.Count(),
			RetireP50Us:   tm.Retire.Quantile(0.50),
			RetireP95Us:   tm.Retire.Quantile(0.95),
			RetireMeanUs:  tm.Retire.Mean(),
			Admitted:      tm.Admitted.Load(),
			OverloadRejcs: tm.Rejected.Load(),
			DeadlineSheds: tm.Shed.Load(),
		}
	}
	return out
}

var defaultRegistry Registry

// Default returns the process-wide registry that sessions fold into.
func Default() *Registry { return &defaultRegistry }

// AddFault adds n aborted episodes of the given fault class.
func (r *Registry) AddFault(kind string, n int64) {
	if n == 0 {
		return
	}
	r.mu.Lock()
	if r.faults == nil {
		r.faults = make(map[string]int64)
	}
	r.faults[kind] += n
	r.mu.Unlock()
	r.EpisodeFaults.Add(n)
}

// faultsCopy snapshots the per-class fault counters.
func (r *Registry) faultsCopy() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.faults))
	for k, v := range r.faults {
		out[k] = v
	}
	return out
}

// RegistrySnapshot is a point-in-time copy of a Registry, JSON-shaped for
// the metrics endpoint.
type RegistrySnapshot struct {
	Batches         int64 `json:"batches"`
	QueriesComplete int64 `json:"queries_completed"`
	QueriesAborted  int64 `json:"queries_aborted"`
	Episodes        int64 `json:"episodes"`
	EpisodeFaults   int64 `json:"episode_faults"`

	SelIn       int64 `json:"sel_tuples_in"`
	SelOut      int64 `json:"sel_tuples_out"`
	StemInserts int64 `json:"stem_inserts"`
	StemProbes  int64 `json:"stem_probes"`
	JoinTuples  int64 `json:"join_tuples"`
	Routed      int64 `json:"routed_tuples"`

	SharedOps int64 `json:"shared_op_invocations"`
	TotalOps  int64 `json:"op_invocations"`

	PlanSwitches   int64 `json:"plan_switches"`
	ExploreActions int64 `json:"explore_actions"`
	ExploitActions int64 `json:"exploit_actions"`
	QStates        int64 `json:"qtable_states"`
	WatermarkLag   int64 `json:"watermark_lag"`

	SubmitAdmitted   int64 `json:"submit_admitted"`
	SubmitOverloads  int64 `json:"submit_overload_rejected"`
	DeadlineSheds    int64 `json:"deadline_shed"`
	StarvationBoosts int64 `json:"starvation_boosts"`

	GCConcurrentQuanta int64   `json:"gc_concurrent_quanta"`
	EpochLag           int64   `json:"epoch_lag"`
	PolicyCacheHits    int64   `json:"policy_cache_hits"`
	PolicyCacheMisses  int64   `json:"policy_cache_misses"`
	PolicyCacheStores  int64   `json:"policy_cache_stores"`
	WarmStartedQueries int64   `json:"warm_started_queries"`
	AdmitObserved      int64   `json:"admit_observed"`
	AdmitP50Us         int64   `json:"admit_latency_p50_micros"`
	AdmitP95Us         int64   `json:"admit_latency_p95_micros"`
	AdmitMeanUs        float64 `json:"admit_latency_mean_micros"`

	FilterNs int64 `json:"filter_ns"`
	BuildNs  int64 `json:"build_ns"`
	ProbeNs  int64 `json:"probe_ns"`
	RouteNs  int64 `json:"route_ns"`

	Faults  map[string]int64 `json:"episode_faults_by_kind,omitempty"`
	Tenants []TenantSLO      `json:"tenants,omitempty"`
}

// Snapshot copies the current counter values.
func (r *Registry) Snapshot() RegistrySnapshot {
	return RegistrySnapshot{
		Batches:         r.Batches.Load(),
		QueriesComplete: r.QueriesComplete.Load(),
		QueriesAborted:  r.QueriesAborted.Load(),
		Episodes:        r.Episodes.Load(),
		EpisodeFaults:   r.EpisodeFaults.Load(),
		SelIn:           r.SelIn.Load(),
		SelOut:          r.SelOut.Load(),
		StemInserts:     r.StemInserts.Load(),
		StemProbes:      r.StemProbes.Load(),
		JoinTuples:      r.JoinTuples.Load(),
		Routed:          r.Routed.Load(),
		SharedOps:       r.SharedOps.Load(),
		TotalOps:        r.TotalOps.Load(),
		PlanSwitches:    r.PlanSwitches.Load(),
		ExploreActions:  r.ExploreActions.Load(),
		ExploitActions:  r.ExploitActions.Load(),
		QStates:         r.QStates.Load(),
		WatermarkLag:    r.WatermarkLag.Load(),

		SubmitAdmitted:   r.SubmitAdmitted.Load(),
		SubmitOverloads:  r.SubmitOverloads.Load(),
		DeadlineSheds:    r.DeadlineSheds.Load(),
		StarvationBoosts: r.StarvationBoosts.Load(),

		GCConcurrentQuanta: r.GCConcurrentQuanta.Load(),
		EpochLag:           r.EpochLag.Load(),
		PolicyCacheHits:    r.PolicyCacheHits.Load(),
		PolicyCacheMisses:  r.PolicyCacheMisses.Load(),
		PolicyCacheStores:  r.PolicyCacheStores.Load(),
		WarmStartedQueries: r.WarmStartedQueries.Load(),
		AdmitObserved:      r.AdmitLatency.Count(),
		AdmitP50Us:         r.AdmitLatency.Quantile(0.50),
		AdmitP95Us:         r.AdmitLatency.Quantile(0.95),
		AdmitMeanUs:        r.AdmitLatency.Mean(),

		FilterNs: r.FilterNs.Load(),
		BuildNs:  r.BuildNs.Load(),
		ProbeNs:  r.ProbeNs.Load(),
		RouteNs:  r.RouteNs.Load(),
		Faults:   r.faultsCopy(),
		Tenants:  r.tenantsCopy(),
	}
}

// WriteProm renders the registry in the Prometheus text exposition format.
func (r *Registry) WriteProm(w io.Writer) error {
	s := r.Snapshot()
	p := NewPromWriter(w)
	p.Counter("roulette_batches_total", "Finished batch executions.", float64(s.Batches))
	p.Counter("roulette_queries_completed_total", "Queries that drained to completion.", float64(s.QueriesComplete))
	p.Counter("roulette_queries_aborted_total", "Queries cut by cancellation, deadlines, or faults.", float64(s.QueriesAborted))
	p.Counter("roulette_episodes_total", "Executed episodes.", float64(s.Episodes))
	p.Counter("roulette_episode_faults_total", "Episodes aborted by a fault.", float64(s.EpisodeFaults))
	faults := s.Faults
	for _, kind := range sortedKeys(faults) {
		p.Counter("roulette_episode_faults_by_kind_total", "Episodes aborted, by fault class.",
			float64(faults[kind]), Label{"kind", kind})
	}
	p.Counter("roulette_sel_tuples_in_total", "Tuples entering the selection phase.", float64(s.SelIn))
	p.Counter("roulette_sel_tuples_out_total", "Tuples surviving the selection phase.", float64(s.SelOut))
	p.Counter("roulette_stem_inserts_total", "STeM entries inserted.", float64(s.StemInserts))
	p.Counter("roulette_stem_probes_total", "STeM probe lookups.", float64(s.StemProbes))
	p.Counter("roulette_join_tuples_total", "Intermediate join output tuples.", float64(s.JoinTuples))
	p.Counter("roulette_routed_tuples_total", "Result tuples delivered to query sources.", float64(s.Routed))
	p.Counter("roulette_shared_op_invocations_total", "Operator invocations serving more than one query.", float64(s.SharedOps))
	p.Counter("roulette_op_invocations_total", "Counted operator invocations.", float64(s.TotalOps))
	p.Counter("roulette_plan_switches_total", "Episodes whose plan differed from the previous plan on the same relation.", float64(s.PlanSwitches))
	p.Counter("roulette_policy_explore_actions_total", "Policy decisions taken by epsilon-exploration.", float64(s.ExploreActions))
	p.Counter("roulette_policy_exploit_actions_total", "Policy decisions taken greedily from Q-values.", float64(s.ExploitActions))
	p.Gauge("roulette_qtable_states", "Q-table (state, action) entries of the most recent session.", float64(s.QStates))
	p.Gauge("roulette_watermark_lag", "Version slots allocated but never published by the most recent session (non-zero indicates a slot leak disabling the probe watermark fast path).", float64(s.WatermarkLag))
	p.Counter("roulette_submit_admitted_total", "Stream submissions admitted past the admission controller.", float64(s.SubmitAdmitted))
	p.Counter("roulette_submit_overload_rejected_total", "Stream submissions rejected with ErrOverloaded (budget or rate limit).", float64(s.SubmitOverloads))
	p.Counter("roulette_deadline_shed_total", "Queries shed for unmeetable deadlines (at submit or mid-flight).", float64(s.DeadlineSheds))
	p.Counter("roulette_starvation_boosts_total", "Starvation-watchdog activations boosting an unserved tenant.", float64(s.StarvationBoosts))
	p.Counter("roulette_gc_concurrent_quanta", "GC quanta executed while episodes were in flight (concurrent, not stop-the-world).", float64(s.GCConcurrentQuanta))
	p.Gauge("roulette_epoch_lag", "Generations the oldest pinned worker trails the epoch domain.", float64(s.EpochLag))
	p.Counter("roulette_policy_cache_hits_total", "Policy-snapshot lookups that found a cached template.", float64(s.PolicyCacheHits))
	p.Counter("roulette_policy_cache_misses_total", "Policy-snapshot lookups that came up cold.", float64(s.PolicyCacheMisses))
	p.Counter("roulette_policy_cache_stores_total", "Q-table snapshots exported into the policy cache.", float64(s.PolicyCacheStores))
	p.Counter("roulette_warm_started_queries_total", "Queries that began executing under an imported learned prior.", float64(s.WarmStartedQueries))
	p.Counter("roulette_admissions_observed_total", "Live admissions with an observed submit-to-first-episode latency.", float64(s.AdmitObserved))
	p.Gauge("roulette_admit_latency_micros", "Submit-to-first-episode latency quantile upper bounds.",
		float64(s.AdmitP50Us), Label{"quantile", "0.5"})
	p.Gauge("roulette_admit_latency_micros", "Submit-to-first-episode latency quantile upper bounds.",
		float64(s.AdmitP95Us), Label{"quantile", "0.95"})
	for _, t := range s.Tenants {
		p.Counter("roulette_tenant_submit_admitted_total", "Admitted submissions, by tenant.",
			float64(t.Admitted), Label{"tenant", t.Tenant})
		p.Counter("roulette_tenant_overload_rejected_total", "ErrOverloaded rejections, by tenant.",
			float64(t.OverloadRejcs), Label{"tenant", t.Tenant})
		p.Counter("roulette_tenant_deadline_shed_total", "Deadline sheds, by tenant.",
			float64(t.DeadlineSheds), Label{"tenant", t.Tenant})
		p.Counter("roulette_tenant_retired_total", "Retired queries with an observed latency, by tenant.",
			float64(t.Retired), Label{"tenant", t.Tenant})
		p.Gauge("roulette_tenant_retire_latency_micros", "Retire-latency quantile upper bounds (submit to terminal outcome), by tenant.",
			float64(t.RetireP50Us), Label{"tenant", t.Tenant}, Label{"quantile", "0.5"})
		p.Gauge("roulette_tenant_retire_latency_micros", "Retire-latency quantile upper bounds (submit to terminal outcome), by tenant.",
			float64(t.RetireP95Us), Label{"tenant", t.Tenant}, Label{"quantile", "0.95"})
	}
	p.Counter("roulette_phase_seconds_total", "Cumulative execution time per operator class.",
		float64(s.FilterNs)/1e9, Label{"phase", "filter"})
	p.Counter("roulette_phase_seconds_total", "Cumulative execution time per operator class.",
		float64(s.BuildNs)/1e9, Label{"phase", "build"})
	p.Counter("roulette_phase_seconds_total", "Cumulative execution time per operator class.",
		float64(s.ProbeNs)/1e9, Label{"phase", "probe"})
	p.Counter("roulette_phase_seconds_total", "Cumulative execution time per operator class.",
		float64(s.RouteNs)/1e9, Label{"phase", "route"})
	return p.Err()
}
