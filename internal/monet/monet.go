// Package monet implements the MonetDB-style baseline of the evaluation:
// operator-at-a-time execution with full-column materialization. Every
// operator consumes and produces whole intermediate columns, so performance
// tracks intermediate sizes — fast at low selectivity, penalized by
// materialization at high selectivity (the behaviour Fig. 11b contrasts
// against the vectorized DBMS-V).
package monet

import (
	"sync"
	"time"

	"github.com/roulette-db/roulette/internal/qat"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
	"github.com/roulette-db/roulette/internal/value"
)

// Engine is an operator-at-a-time executor. Planning is shared with the
// DBMS-V optimizer (selection pushdown, greedy join order).
type Engine struct {
	opt *qat.Engine
}

// New returns an engine over db.
func New(db *storage.Database) *Engine {
	return &Engine{opt: qat.New(db)}
}

// Run optimizes and executes one query, returning the SPJ result count.
func (e *Engine) Run(q *query.Query) (int64, error) {
	p, err := e.opt.Optimize(q)
	if err != nil {
		return 0, err
	}
	return execute(p), nil
}

// execute runs the plan one whole operator at a time.
func execute(p *qat.Plan) int64 {
	n := len(p.Order)

	// Operator 1..k: full-column selections producing materialized row-ID
	// columns per relation.
	selected := make([][]int32, n)
	for i := range p.Order {
		selected[i] = selectAll(&p.Order[i])
	}
	if n == 1 {
		return int64(len(selected[0]))
	}

	// Hash builds, one whole relation at a time.
	hts := make([]map[int64][]int32, n)
	for i := 1; i < n; i++ {
		st := &p.Order[i]
		keyCol := st.Table.Col(st.JoinCol)
		ht := make(map[int64][]int32, len(selected[i]))
		for _, r := range selected[i] {
			if keyCol[r] == value.NullCode {
				continue // NULL join keys never match
			}
			ht[keyCol[r]] = append(ht[keyCol[r]], r)
		}
		hts[i] = ht
	}

	// Joins: materialize the whole intermediate result at every step.
	cur := [][]int32{selected[0]}
	for step := 1; step < n; step++ {
		st := &p.Order[step]
		keyCol := p.Order[st.ProbeRel].Table.Col(st.ProbeCol)
		probeFrom := cur[st.ProbeRel]
		ht := hts[step]
		next := make([][]int32, step+1)
		for i := range cur[0] {
			key := keyCol[probeFrom[i]]
			for _, m := range ht[key] {
				for c := 0; c < step; c++ {
					next[c] = append(next[c], cur[c][i])
				}
				next[step] = append(next[step], m)
			}
		}
		cur = applyResiduals(p, step, next)
		if len(cur[0]) == 0 {
			return 0
		}
	}
	return int64(len(cur[0]))
}

// applyResiduals filters the step's materialized output with cycle-closing
// join predicates (whole-column, operator-at-a-time style).
func applyResiduals(p *qat.Plan, step int, rows [][]int32) [][]int32 {
	checks := p.Order[step].Residuals
	if len(checks) == 0 || len(rows[0]) == 0 {
		return rows
	}
	out := 0
	for i := range rows[0] {
		keep := true
		for _, rc := range checks {
			a := p.Order[rc.RelA].Table.Col(rc.ColA)[rows[rc.RelA][i]]
			b := p.Order[rc.RelB].Table.Col(rc.ColB)[rows[rc.RelB][i]]
			if a != b || a == value.NullCode {
				keep = false // NULL = NULL is not a match
				break
			}
		}
		if keep {
			for c := range rows {
				rows[c][out] = rows[c][i]
			}
			out++
		}
	}
	for c := range rows {
		rows[c] = rows[c][:out]
	}
	return rows
}

// selectAll materializes the filtered row IDs of one relation.
func selectAll(st *qat.Step) []int32 {
	rows := st.Table.NumRows()
	out := make([]int32, 0, rows)
	if len(st.Filters) == 0 {
		for r := 0; r < rows; r++ {
			out = append(out, int32(r))
		}
		return out
	}
	// Column-at-a-time: evaluate each filter over the whole candidate list.
	for r := 0; r < rows; r++ {
		out = append(out, int32(r))
	}
	for _, f := range st.Filters {
		col := st.Table.Col(f.Col)
		dict := st.Table.Rel.Column(f.Col).Dict
		kept := out[:0]
		for _, r := range out {
			if f.Match(col[r], dict) {
				kept = append(kept, r)
			}
		}
		out = kept
	}
	return out
}

// RunSerial executes queries one after the other.
func (e *Engine) RunSerial(qs []*query.Query) ([]int64, time.Duration, error) {
	counts := make([]int64, len(qs))
	start := time.Now()
	for i, q := range qs {
		c, err := e.Run(q)
		if err != nil {
			return nil, 0, err
		}
		counts[i] = c
	}
	return counts, time.Since(start), nil
}

// RunConcurrent mirrors qat.RunConcurrent for interference experiments.
func (e *Engine) RunConcurrent(qs []*query.Query, clients int) ([]int64, time.Duration, error) {
	if clients <= 1 {
		return e.RunSerial(qs)
	}
	counts := make([]int64, len(qs))
	var next int
	var mu sync.Mutex
	var firstErr error
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(qs) {
					return
				}
				cnt, err := e.Run(qs[i])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				counts[i] = cnt
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, 0, firstErr
	}
	return counts, time.Since(start), nil
}
