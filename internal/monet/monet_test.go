package monet

import (
	"math/rand"
	"testing"

	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/qat"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
)

func tinyDB(rng *rand.Rand, factRows, dimRows int) *storage.Database {
	fact := catalog.NewRelation("fact", "fk1", "fk2", "v")
	d1 := catalog.NewRelation("d1", "k", "a")
	d2 := catalog.NewRelation("d2", "k", "a")
	sch := catalog.NewSchema(fact, d1, d2)
	db := storage.NewDatabase(sch)
	ft := storage.NewTable(fact, factRows)
	for i := 0; i < factRows; i++ {
		ft.Col("fk1")[i] = int64(rng.Intn(dimRows))
		ft.Col("fk2")[i] = int64(rng.Intn(dimRows))
		ft.Col("v")[i] = int64(rng.Intn(100))
	}
	db.Put(ft)
	for _, nm := range []string{"d1", "d2"} {
		dt := storage.NewTable(sch.Relation(nm), dimRows)
		for i := 0; i < dimRows; i++ {
			dt.Col("k")[i] = int64(i)
			dt.Col("a")[i] = int64(rng.Intn(100))
		}
		db.Put(dt)
	}
	return db
}

func randomQuery(rng *rand.Rand) *query.Query {
	q := &query.Query{
		Rels:  []query.RelRef{{Table: "fact"}, {Table: "d1"}},
		Joins: []query.Join{{LeftAlias: "fact", LeftCol: "fk1", RightAlias: "d1", RightCol: "k"}},
	}
	if rng.Intn(2) == 0 {
		q.Rels = append(q.Rels, query.RelRef{Table: "d2"})
		q.Joins = append(q.Joins, query.Join{LeftAlias: "fact", LeftCol: "fk2", RightAlias: "d2", RightCol: "k"})
	}
	if rng.Intn(2) == 0 {
		lo := int64(rng.Intn(70))
		q.Filters = append(q.Filters, query.Filter{Alias: "d1", Col: "a", Lo: lo, Hi: lo + 30})
	}
	return q
}

// TestMonetAgreesWithQat: the two baselines implement the same semantics
// with different execution models; counts must match exactly.
func TestMonetAgreesWithQat(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := tinyDB(rng, 120, 15)
	me := New(db)
	qe := qat.New(db)
	for i := 0; i < 30; i++ {
		q := randomQuery(rng)
		a, err := me.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := qe.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("query %d: monet = %d, qat = %d", i, a, b)
		}
	}
}

func TestMonetSingleRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	db := tinyDB(rng, 40, 8)
	q := &query.Query{
		Rels:    []query.RelRef{{Table: "d1"}},
		Filters: []query.Filter{{Alias: "d1", Col: "a", Lo: 0, Hi: 200}},
	}
	got, err := New(db).Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Errorf("got %d, want 8", got)
	}
}

func TestMonetSerialAndConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db := tinyDB(rng, 60, 10)
	e := New(db)
	var qs []*query.Query
	for i := 0; i < 8; i++ {
		qs = append(qs, randomQuery(rng))
	}
	serial, d1, err := e.RunSerial(qs)
	if err != nil {
		t.Fatal(err)
	}
	if d1 <= 0 {
		t.Error("non-positive serial duration")
	}
	conc, _, err := e.RunConcurrent(qs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != conc[i] {
			t.Errorf("query %d: %d != %d", i, serial[i], conc[i])
		}
	}
}

func TestMonetEmptyIntermediateShortCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	db := tinyDB(rng, 30, 5)
	// Impossible filter on d1 empties the build side.
	q := &query.Query{
		Rels:    []query.RelRef{{Table: "fact"}, {Table: "d1"}},
		Joins:   []query.Join{{LeftAlias: "fact", LeftCol: "fk1", RightAlias: "d1", RightCol: "k"}},
		Filters: []query.Filter{{Alias: "d1", Col: "a", Lo: 1000, Hi: 2000}},
	}
	got, err := New(db).Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("count = %d, want 0", got)
	}
}

func TestMonetCyclicResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	db := tinyDB(rng, 40, 8)
	q := &query.Query{
		Rels: []query.RelRef{{Table: "fact"}, {Table: "d1"}, {Table: "d2"}},
		Joins: []query.Join{
			{LeftAlias: "fact", LeftCol: "fk1", RightAlias: "d1", RightCol: "k"},
			{LeftAlias: "fact", LeftCol: "fk2", RightAlias: "d2", RightCol: "k"},
			{LeftAlias: "d1", LeftCol: "a", RightAlias: "d2", RightCol: "a"},
		},
	}
	a, err := New(db).Run(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := qat.New(db).Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("monet %d != qat %d on cyclic query", a, b)
	}
}
