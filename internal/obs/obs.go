// Package obs implements the engine's flight recorder: fixed-size,
// lock-free per-worker rings of typed events (episode lifecycle, admission,
// fences, epochs, GC, retirement) that are cheap enough to leave on in
// production and can be merged on demand into a single causal timeline.
//
// Design: each ring is a power-of-two array of fully atomic slots claimed
// by a single fetch-add on the ring's position counter. A writer
// invalidates the claimed slot (seq←0), stores the payload fields, then
// publishes by storing the claim number into seq. A reader validates seq
// before and after copying the fields and drops the event if either check
// fails (torn or overwritten slot). This is a seqlock inverted per slot:
// writers never block, readers never block writers, and the race detector
// sees only atomic operations. Recording performs zero heap allocations,
// so the episode hot path keeps its 0 allocs/op guarantee with the
// recorder enabled.
//
// Events are stamped with both wall-clock nanoseconds (for Chrome
// trace_event export) and the engine's sharded version clock frontier (for
// causal ordering against STeM publication), and carry four opaque int64
// arguments whose meaning depends on the event kind (see Kind docs).
package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Kind identifies the type of a recorded event. The A..D argument slots
// are interpreted per kind as documented on each constant.
type Kind uint8

const (
	KNone Kind = iota

	// KEpisodeStart: a worker began an episode.
	// A=instance, B=slot, C=first active-bitset word, D=active query count.
	KEpisodeStart
	// KEpisodeEnd: a worker finished an episode.
	// A=instance, B=slot, C=duration ns, D=plan signature.
	KEpisodeEnd
	// KSubmit: a query entered the engine via SubmitLive.
	// A=query id, B=number of fence-queued grow ops, C=tenant hash.
	KSubmit
	// KAdmit: a pending query activated (its scans became schedulable).
	// A=query id.
	KAdmit
	// KReject: admission control rejected a submission. A=query id (-1 if
	// rejected before an id was assigned), B=tenant hash.
	KReject
	// KShed: a query was shed (hopeless or expired deadline).
	// A=query id (-1 at submit time), B=1 if shed mid-flight.
	KShed
	// KLanePromote: the scheduler promoted a query's scans into the
	// deadline-urgency lane. A=query id, B=ns to deadline.
	KLanePromote
	// KFenceQueue: a structural op was queued behind an instance fence.
	// A=instance, B=query id.
	KFenceQueue
	// KFenceDrain: an instance fence drained and ran its queued ops.
	// A=instance, B=number of ops run, C=fence age ns.
	KFenceDrain
	// KEpochAdvance: the epoch domain advanced. A=new generation.
	KEpochAdvance
	// KEpochDefer: a reclamation was deferred pending a grace period.
	// A=generation at defer.
	KEpochDefer
	// KEpochRelease: deferred reclamations ran after their grace period.
	// A=number of functions released.
	KEpochRelease
	// KGCQuantum: a budgeted concurrent GC quantum ran.
	// A=instance, B=chunks swept.
	KGCQuantum
	// KGCSweepRestart: a GC sweep restarted from chunk 0 because a fenced
	// compaction repositioned entries mid-pass. A=instance, B=compact gen.
	KGCSweepRestart
	// KGCCompact: a live-compaction was issued. A=instance, B=0 if run
	// inline, 1 if queued behind a fence.
	KGCCompact
	// KRetire: a query retired. A=query id, B=1 if completed, 0 if failed.
	KRetire
	// KCallback: retirement callbacks were handed off. A=count.
	KCallback
)

var kindNames = [...]string{
	KNone:           "none",
	KEpisodeStart:   "episode_start",
	KEpisodeEnd:     "episode",
	KSubmit:         "submit",
	KAdmit:          "admit",
	KReject:         "reject",
	KShed:           "shed",
	KLanePromote:    "lane_promote",
	KFenceQueue:     "fence_queue",
	KFenceDrain:     "fence_drain",
	KEpochAdvance:   "epoch_advance",
	KEpochDefer:     "epoch_defer",
	KEpochRelease:   "epoch_release",
	KGCQuantum:      "gc_quantum",
	KGCSweepRestart: "gc_sweep_restart",
	KGCCompact:      "gc_compact",
	KRetire:         "retire",
	KCallback:       "callback",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one decoded flight-recorder entry.
type Event struct {
	TS   int64 // wall-clock nanoseconds
	VC   int64 // sharded version-clock frontier at record time
	Seq  uint64
	Ring int32
	Kind Kind
	A    int64
	B    int64
	C    int64
	D    int64
}

// slot is one ring entry. Every field is atomic so concurrent
// record/drain is race-detector clean; seq==0 marks an in-progress write.
// Eight 8-byte words: exactly one cache line on common hardware.
type slot struct {
	seq  atomic.Uint64
	ts   atomic.Int64
	vc   atomic.Int64
	kind atomic.Uint64
	a    atomic.Int64
	b    atomic.Int64
	c    atomic.Int64
	d    atomic.Int64
}

// ring is one per-worker event ring. pos is padded so claims by
// different workers (control ring vs worker rings) do not false-share.
type ring struct {
	pos   atomic.Uint64
	_     [56]byte
	mask  uint64
	slots []slot
}

// Recorder holds one ring per worker plus, by convention, one extra
// control ring (index Workers()) for engine-side events recorded under
// the session lock. The zero Recorder and a nil *Recorder are both safe
// no-ops for Record.
type Recorder struct {
	enabled atomic.Bool
	vclock  atomic.Pointer[func() int64]
	nowFn   func() int64 // test seam; wall clock by default
	rings   []ring
}

// NewRecorder creates a recorder with rings rings of perRing slots each
// (rounded up to a power of two, minimum 8). The recorder starts enabled.
func NewRecorder(rings, perRing int) *Recorder {
	if rings < 1 {
		rings = 1
	}
	n := 8
	for n < perRing {
		n <<= 1
	}
	r := &Recorder{nowFn: wallNow, rings: make([]ring, rings)}
	for i := range r.rings {
		r.rings[i].mask = uint64(n - 1)
		r.rings[i].slots = make([]slot, n)
	}
	r.enabled.Store(true)
	return r
}

func wallNow() int64 { return time.Now().UnixNano() }

// SetVClock installs the version-clock read used to stamp events with a
// causal timestamp. fn must be safe for concurrent use and must not
// advance the clock (use a frontier read, not a draw).
func (r *Recorder) SetVClock(fn func() int64) {
	if fn == nil {
		r.vclock.Store(nil)
		return
	}
	r.vclock.Store(&fn)
}

// SetNow overrides the wall-clock source. Test-only seam; call before any
// Record.
func (r *Recorder) SetNow(fn func() int64) { r.nowFn = fn }

// SetEnabled turns recording on or off. When off, Record is a single
// atomic load and a branch.
func (r *Recorder) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether recording is on. Nil-safe.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// Rings returns the number of rings. Nil-safe.
func (r *Recorder) Rings() int {
	if r == nil {
		return 0
	}
	return len(r.rings)
}

// Record appends an event to ring ri. Nil-safe, lock-free, and
// allocation-free; concurrent writers to the same ring are safe (a torn
// overwrite is detected and dropped at read time via the seq protocol).
func (r *Recorder) Record(ri int, k Kind, a, b, c, d int64) {
	if r == nil || !r.enabled.Load() {
		return
	}
	rg := &r.rings[ri]
	n := rg.pos.Add(1)
	s := &rg.slots[(n-1)&rg.mask]
	s.seq.Store(0)
	s.ts.Store(r.nowFn())
	var vc int64
	if p := r.vclock.Load(); p != nil {
		vc = (*p)()
	}
	s.vc.Store(vc)
	s.kind.Store(uint64(k))
	s.a.Store(a)
	s.b.Store(b)
	s.c.Store(c)
	s.d.Store(d)
	s.seq.Store(n)
}

// drainRing copies the currently valid events of ring ri into out.
func (r *Recorder) drainRing(ri int, out []Event) []Event {
	rg := &r.rings[ri]
	hi := rg.pos.Load()
	if hi == 0 {
		return out
	}
	lo := uint64(1)
	if cap := uint64(len(rg.slots)); hi > cap {
		lo = hi - cap + 1
	}
	for e := lo; e <= hi; e++ {
		s := &rg.slots[(e-1)&rg.mask]
		if s.seq.Load() != e {
			continue // torn, unpublished, or already overwritten
		}
		ev := Event{
			TS:   s.ts.Load(),
			VC:   s.vc.Load(),
			Seq:  e,
			Ring: int32(ri),
			Kind: Kind(s.kind.Load()),
			A:    s.a.Load(),
			B:    s.b.Load(),
			C:    s.c.Load(),
			D:    s.d.Load(),
		}
		if s.seq.Load() != e {
			continue // overwritten while copying
		}
		out = append(out, ev)
	}
	return out
}

// Snapshot merges every ring into a single timeline ordered by
// (wall time, ring, sequence). Within one ring events are guaranteed
// monotonically ordered by Seq; across rings the wall clock provides the
// causal merge (version-clock stamps break residual ties for analysis).
// Nil-safe.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.rings {
		out = r.drainRing(i, out)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		if out[i].Ring != out[j].Ring {
			return out[i].Ring < out[j].Ring
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Since returns the merged timeline restricted to events with TS >= ts.
func (r *Recorder) Since(ts int64) []Event {
	evs := r.Snapshot()
	i := sort.Search(len(evs), func(i int) bool { return evs[i].TS >= ts })
	return evs[i:]
}
