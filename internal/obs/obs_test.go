package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeClock returns a deterministic, strictly increasing nanosecond stamp.
func fakeClock() func() int64 {
	var t int64
	return func() int64 { return atomic.AddInt64(&t, 1000) }
}

func TestRecordDrainOrder(t *testing.T) {
	r := NewRecorder(1, 16)
	r.SetNow(fakeClock())
	for i := 0; i < 10; i++ {
		r.Record(0, KEpisodeStart, int64(i), 2, 3, 4)
	}
	evs := r.Snapshot()
	if len(evs) != 10 {
		t.Fatalf("got %d events, want 10", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, i+1)
		}
		if e.A != int64(i) || e.B != 2 || e.C != 3 || e.D != 4 {
			t.Errorf("event %d: args (%d,%d,%d,%d)", i, e.A, e.B, e.C, e.D)
		}
		if e.Kind != KEpisodeStart {
			t.Errorf("event %d: kind %v", i, e.Kind)
		}
		if i > 0 && e.TS <= evs[i-1].TS {
			t.Errorf("event %d: ts not increasing", i)
		}
	}
}

func TestOverwriteKeepsNewestWindow(t *testing.T) {
	r := NewRecorder(1, 8)
	r.SetNow(fakeClock())
	for i := 0; i < 100; i++ {
		r.Record(0, KGCQuantum, int64(i), 0, 0, 0)
	}
	evs := r.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("got %d events, want 8 (ring capacity)", len(evs))
	}
	for i, e := range evs {
		if want := int64(92 + i); e.A != want {
			t.Errorf("event %d: a=%d, want %d", i, e.A, want)
		}
	}
}

func TestMergedTimelineGloballyOrdered(t *testing.T) {
	r := NewRecorder(4, 32)
	r.SetNow(fakeClock())
	// Interleave writers across rings; the shared fake clock gives every
	// event a unique global stamp.
	for i := 0; i < 100; i++ {
		r.Record(i%4, KEpisodeStart, int64(i), 0, 0, 0)
	}
	evs := r.Snapshot()
	if len(evs) != 100 {
		t.Fatalf("got %d events, want 100", len(evs))
	}
	lastSeq := map[int32]uint64{}
	for i, e := range evs {
		if i > 0 && e.TS < evs[i-1].TS {
			t.Fatalf("event %d: global TS order violated", i)
		}
		if e.Seq <= lastSeq[e.Ring] {
			t.Fatalf("event %d: ring %d seq %d not monotonic", i, e.Ring, e.Seq)
		}
		lastSeq[e.Ring] = e.Seq
	}
}

func TestSince(t *testing.T) {
	r := NewRecorder(1, 32)
	clk := fakeClock()
	r.SetNow(clk)
	for i := 0; i < 5; i++ {
		r.Record(0, KSubmit, int64(i), 0, 0, 0)
	}
	cut := clk() // 6000; events so far stamped 1000..5000
	for i := 5; i < 10; i++ {
		r.Record(0, KSubmit, int64(i), 0, 0, 0)
	}
	evs := r.Since(cut)
	if len(evs) != 5 {
		t.Fatalf("got %d events since cut, want 5", len(evs))
	}
	if evs[0].A != 5 {
		t.Fatalf("first event a=%d, want 5", evs[0].A)
	}
}

func TestNilAndDisabledRecorder(t *testing.T) {
	var nilR *Recorder
	nilR.Record(0, KSubmit, 0, 0, 0, 0) // must not panic
	if nilR.Enabled() || nilR.Rings() != 0 || nilR.Snapshot() != nil {
		t.Fatal("nil recorder should be inert")
	}
	r := NewRecorder(1, 8)
	r.SetEnabled(false)
	r.Record(0, KSubmit, 1, 0, 0, 0)
	if got := len(r.Snapshot()); got != 0 {
		t.Fatalf("disabled recorder captured %d events", got)
	}
}

func TestConcurrentRecordDrain(t *testing.T) {
	r := NewRecorder(3, 64)
	r.SetVClock(fakeClock())
	const perWriter = 2000
	var writers sync.WaitGroup
	stop := make(chan struct{})
	drained := make(chan struct{})
	// One drainer hammering Snapshot while writers record.
	go func() {
		defer close(drained)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range r.Snapshot() {
				if e.Kind != KEpisodeStart && e.Kind != KEpisodeEnd {
					t.Errorf("torn event surfaced: kind %v", e.Kind)
					return
				}
			}
		}
	}()
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perWriter; i++ {
				k := KEpisodeStart
				if i%2 == 1 {
					k = KEpisodeEnd
				}
				r.Record(w, k, int64(i), int64(w), 0, 0)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	<-drained
	// Final snapshot: each ring holds its newest 64 events in seq order.
	evs := r.Snapshot()
	last := map[int32]uint64{}
	for _, e := range evs {
		if e.Seq <= last[e.Ring] {
			t.Fatalf("ring %d: seq %d out of order", e.Ring, e.Seq)
		}
		last[e.Ring] = e.Seq
	}
}

func TestRecordZeroAlloc(t *testing.T) {
	r := NewRecorder(2, 256)
	r.SetVClock(func() int64 { return 42 })
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(0, KEpisodeStart, 1, 2, 3, 4)
		r.Record(1, KEpisodeEnd, 5, 6, 7, 8)
	})
	if allocs != 0 {
		t.Fatalf("Record allocated %.1f times per op, want 0", allocs)
	}
}

func TestTraceGolden(t *testing.T) {
	r := NewRecorder(2, 8)
	r.SetNow(fakeClock())
	r.SetVClock(func() int64 { return 7 })
	r.Record(0, KEpisodeStart, 3, 12, 0, 2)
	r.Record(0, KEpisodeEnd, 3, 12, 1000, 99)
	r.Record(1, KSubmit, 5, 1, 0, 0)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, r.Snapshot(), r.Rings()); err != nil {
		t.Fatal(err)
	}
	want := `{"displayTimeUnit":"ms","traceEvents":[` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"worker 0"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"control"}},` +
		`{"name":"episode_start","ph":"i","ts":1,"pid":1,"tid":0,"s":"t","args":{"a":3,"b":12,"c":0,"d":2,"vclock":7}},` +
		`{"name":"episode","ph":"X","ts":1,"dur":1,"pid":1,"tid":0,"args":{"inst":3,"plan_sig":99,"slot":12,"vclock":7}},` +
		`{"name":"submit","ph":"i","ts":3,"pid":1,"tid":1,"s":"t","args":{"a":5,"b":1,"c":0,"d":0,"vclock":7}}` +
		`]}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\ngot:  %s\nwant: %s", got, want)
	}
}

func TestTraceValidTraceEventJSON(t *testing.T) {
	r := NewRecorder(3, 32)
	r.SetNow(fakeClock())
	for i := 0; i < 20; i++ {
		r.Record(i%3, Kind(1+i%10), int64(i), 0, 500, 0)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, r.Snapshot(), r.Rings()); err != nil {
		t.Fatal(err)
	}
	var f struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	for i, te := range f.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := te[key]; !ok {
				t.Fatalf("event %d missing required key %q: %v", i, key, te)
			}
		}
		if ph := te["ph"].(string); ph == "X" {
			if _, ok := te["dur"]; !ok {
				t.Fatalf("complete event %d missing dur", i)
			}
		}
	}
}
