package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceEvent is one entry in the Chrome trace_event JSON format
// (loadable in Perfetto / chrome://tracing). Timestamps are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// RingName names ring ri for trace export: "control" for the last ring
// (the engine's convention: workers rings then one control ring),
// "worker N" otherwise.
func RingName(ri, rings int) string {
	if ri == rings-1 {
		return "control"
	}
	return fmt.Sprintf("worker %d", ri)
}

// ToTraceEvents converts a merged timeline into Chrome trace_event
// records. Episode-end events become complete ("X") spans reconstructed
// from their duration argument; every other kind becomes a thread-scoped
// instant ("i"). One metadata record per ring names its track. rings is
// the recorder's ring count (for track naming); pass 0 to derive it from
// the events.
func ToTraceEvents(evs []Event, rings int) []traceEvent {
	if rings == 0 {
		for _, e := range evs {
			if int(e.Ring)+1 > rings {
				rings = int(e.Ring) + 1
			}
		}
	}
	out := make([]traceEvent, 0, len(evs)+rings)
	for ri := 0; ri < rings; ri++ {
		out = append(out, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: ri,
			Args: map[string]any{"name": RingName(ri, rings)},
		})
	}
	for _, e := range evs {
		te := traceEvent{
			Name: e.Kind.String(),
			Pid:  1,
			Tid:  int(e.Ring),
		}
		switch e.Kind {
		case KEpisodeEnd:
			// Reconstruct the span: TS is the end stamp, C the duration.
			te.Ph = "X"
			te.TS = float64(e.TS-e.C) / 1e3
			te.Dur = float64(e.C) / 1e3
			te.Args = map[string]any{
				"inst": e.A, "slot": e.B, "plan_sig": e.D, "vclock": e.VC,
			}
		default:
			te.Ph = "i"
			te.S = "t"
			te.TS = float64(e.TS) / 1e3
			te.Args = map[string]any{
				"a": e.A, "b": e.B, "c": e.C, "d": e.D, "vclock": e.VC,
			}
		}
		out = append(out, te)
	}
	return out
}

// WriteTrace renders a merged timeline as Chrome trace_event JSON.
// rings is the recorder ring count for track naming (0 = derive).
func WriteTrace(w io.Writer, evs []Event, rings int) error {
	f := traceFile{DisplayTimeUnit: "ms", TraceEvents: ToTraceEvents(evs, rings)}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
