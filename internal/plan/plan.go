// Package plan implements multi-step optimization (Algorithm 1 of the
// paper): the eddy's recursive construction of each episode's two global
// plans — the selection-phase chain and the join-phase tree — from policy
// decisions over virtual vectors (lineage, query-set).
//
// The join-phase plan is a tree: a policy decision appends a probe operator
// for Q∩Q_o and, on divergence, a routing selection for Q−Q_o; null
// decisions append routers that ship a sub-expression's tuples to its
// queries' RouLette sources. Each probe node carries the decision's full
// MDP context (pre-state, successor candidate sets) so the executor can
// emit the log entries Q-learning bootstraps from. The package also
// performs the adaptive-projection analysis (§5.2): each node is annotated
// with the set of vID columns its input vector must carry, so the executor
// can shed the rest.
package plan

import (
	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/query"
)

// NodeKind discriminates join-phase plan nodes.
type NodeKind int

// Join-phase node kinds.
const (
	Input    NodeKind = iota // pseudo-root: the inserted source vector
	Probe                    // STeM probe over one edge
	RouteSel                 // routing selection: mask query bits, drop empty
	Router                   // ship tuples to the RouLette sources of Q
)

// Node is one join-phase plan operator. Children consume this node's
// output vector; the executor runs them in order (probe sub-plan before
// divergence sub-plan, bounding the pending-vector footprint, §3).
type Node struct {
	Kind   NodeKind
	EdgeID int          // Probe: the edge to probe
	Target query.InstID // Probe: the instance whose STeM is probed

	// Q is the query set this node's OUTPUT serves: Q∩Q_o for probes,
	// Q−Q_o for routing selections, the routed set for routers.
	Q bitset.Set

	// Decision context (Probe nodes): the MDP state the eddy chose this
	// operator in, and the successor states' candidate sets, which the
	// Q-learning update bootstraps through (Algorithm 2 lines 7 and 10).
	Lineage     uint64     // pre-decision lineage L
	StateQ      bitset.Set // pre-decision query set Q
	Cands       []int      // cand(L, Q)
	MainLineage uint64     // L ∪ {o}
	MainCands   []int      // cand(L∪{o}, Q∩Q_o)
	DivCands    []int      // cand(L, Q−Q_o); nil without divergence

	// Div is the sibling routing selection created by a diverging decision;
	// the executor charges its output size to this probe's log entry.
	Div *Node

	// Keep is the instance bitmask of vID columns this node's input vector
	// must carry (adaptive projections).
	Keep uint64

	Children []*Node
}

// RequiredInsts reports, per query, the instances whose vIDs the host-side
// consumer needs. Routers keep only those columns.
type RequiredInsts func(qid int) uint64

// BuildJoin runs multi-step optimization for the join phase of one episode:
// a vector of source tuples annotated with query set q. It reads only the
// immutable Graph snapshot, so workers call it lock-free. It returns the
// Input pseudo-root, whose children process the vector after STeM
// insertion.
func BuildJoin(g *query.Graph, pol policy.Policy, source query.InstID, q bitset.Set, req RequiredInsts) *Node {
	root := &Node{Kind: Input, Lineage: 1 << source, Q: q.Clone()}
	buildRec(g, pol, root, source, 1<<source, q.Clone())
	annotateKeep(g, root, req)
	return root
}

// buildRec is MULTI_STEP_REC: it expands node (whose output has virtual
// vector (lineage, q)) until every query receives a router. It returns
// cand(lineage, q) so the caller can record successor candidates.
func buildRec(g *query.Graph, pol policy.Policy, node *Node, source query.InstID, lineage uint64, q bitset.Set) []int {
	cands := g.Candidates(nil, lineage, q)
	if len(cands) == 0 {
		node.Children = append(node.Children, &Node{Kind: Router, Lineage: lineage, Q: q})
		return cands
	}
	choice := pol.ChooseJoin(source, lineage, q, cands)
	e := &g.Edges[cands[choice]]
	target := e.A
	if lineage&(1<<e.A) != 0 {
		target = e.B
	}

	qMain := bitset.And(q, e.Queries)
	qDiv := bitset.AndNot(q, e.Queries)

	main := &Node{
		Kind: Probe, EdgeID: e.ID, Target: target,
		Q:       qMain,
		Lineage: lineage, StateQ: q, Cands: cands,
		MainLineage: lineage | 1<<target,
	}
	node.Children = append(node.Children, main)
	main.MainCands = buildRec(g, pol, main, source, main.MainLineage, qMain)

	if !qDiv.Empty() {
		div := &Node{Kind: RouteSel, Lineage: lineage, Q: qDiv}
		node.Children = append(node.Children, div)
		main.Div = div
		main.DivCands = buildRec(g, pol, div, source, lineage, qDiv)
	}
	return cands
}

// annotateKeep computes, bottom-up, the vID columns each node's input
// vector must carry: the union of the children's needs plus, for probes,
// the lineage-side join-key column's instance, plus any endpoint of a
// pending residual predicate (cycle-closing joins are evaluated at the
// probe that completes both endpoints, so the earlier endpoint's vID must
// survive until then).
func annotateKeep(g *query.Graph, n *Node, req RequiredInsts) uint64 {
	switch n.Kind {
	case Router:
		var keep uint64
		n.Q.ForEach(func(qid int) { keep |= req(qid) })
		keep &= n.Lineage
		n.Keep = keep
		return keep
	case Probe:
		var childKeep uint64
		for _, c := range n.Children {
			childKeep |= annotateKeep(g, c, req)
		}
		e := &g.Edges[n.EdgeID]
		src := e.A
		if n.Target == e.A {
			src = e.B
		}
		keep := childKeep
		keep |= 1 << src // the probe reads its key via src's vID
		// Residuals with an endpoint inside the input lineage and the
		// partner still outside it: the partner either arrives with this
		// probe (evaluated here, needs the in-lineage endpoint's vID) or
		// later (the endpoint must survive until then).
		keep |= residualKeep(g, n.StateQ, n.Lineage)
		keep &^= 1 << n.Target // produced by the probe, not required upstream
		keep &= n.Lineage
		n.Keep = keep
		return keep
	default: // Input, RouteSel: input lineage equals output lineage
		var keep uint64
		for _, c := range n.Children {
			keep |= annotateKeep(g, c, req)
		}
		keep |= residualKeep(g, n.Q, n.Lineage)
		keep &= n.Lineage
		n.Keep = keep
		return keep
	}
}

// residualKeep returns the instances that must stay projected because a
// residual predicate of some query in q has its other endpoint outside
// lineage (not yet applicable).
func residualKeep(g *query.Graph, q bitset.Set, lineage uint64) uint64 {
	var keep uint64
	for _, r := range g.Residuals {
		if !q.Contains(r.QID) {
			continue
		}
		aIn := lineage&(1<<r.A) != 0
		bIn := lineage&(1<<r.B) != 0
		if aIn && !bIn {
			keep |= 1 << r.A
		}
		if bIn && !aIn {
			keep |= 1 << r.B
		}
	}
	return keep
}

// CountRouters returns how many router nodes serve each query: the
// correctness invariant of Algorithm 1 is that every query in the episode's
// active set is routed exactly once.
func CountRouters(root *Node, nQueries int) []int {
	counts := make([]int, nQueries)
	var walk func(*Node)
	walk = func(n *Node) {
		if n.Kind == Router {
			n.Q.ForEach(func(qid int) { counts[qid]++ })
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return counts
}

// Size returns the number of real operators (probes, routing selections,
// routers) in the plan.
func Size(root *Node) int {
	n := 0
	var walk func(*Node)
	walk = func(nd *Node) {
		if nd.Kind != Input {
			n++
		}
		for _, c := range nd.Children {
			walk(c)
		}
	}
	walk(root)
	return n
}

// SelOpInfo describes one selection-phase operator available for ordering:
// a grouped filter or a symmetric-join prune filter.
type SelOpInfo struct {
	ID      int // operator ID within the session's selection-op space
	Bit     int // stable bit position within the instance's op list
	Queries bitset.Set
}

// SelStep is one planned selection-phase operator application, with the
// decision context for the policy log.
type SelStep struct {
	Op      SelOpInfo
	Applied uint64 // mask of Bit positions applied before this step
	Cands   []int  // candidate op IDs at this decision

	NextApplied uint64 // mask after this step
	NextCands   []int  // candidate op IDs at the successor state
}

// BuildSel orders the selection-phase operators of one relation instance
// with policy decisions. ops lists every operator currently available on
// the instance; operators whose query sets do not intersect q are skipped
// (they cannot affect the vector).
func BuildSel(pol policy.Policy, inst query.InstID, q bitset.Set, ops []SelOpInfo) []SelStep {
	remaining := make([]SelOpInfo, 0, len(ops))
	for _, o := range ops {
		if bitset.Intersects(q, o.Queries) {
			remaining = append(remaining, o)
		}
	}
	var steps []SelStep
	var applied uint64
	for len(remaining) > 0 {
		cands := make([]int, len(remaining))
		for i, o := range remaining {
			cands[i] = o.ID
		}
		choice := pol.ChooseSel(inst, applied, q, cands)
		op := remaining[choice]
		next := applied | 1<<uint(op.Bit)
		steps = append(steps, SelStep{Op: op, Applied: applied, Cands: cands, NextApplied: next})
		applied = next
		remaining = append(remaining[:choice], remaining[choice+1:]...)
	}
	// Fill successor candidate sets: each step's successor candidates are
	// the next step's candidates (empty for the last step).
	for i := range steps {
		if i+1 < len(steps) {
			steps[i].NextCands = steps[i+1].Cands
		}
	}
	return steps
}
