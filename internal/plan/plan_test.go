package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/query"
)

// fig1Batch is the paper's Figure 1/2 workload.
func fig1Batch(t testing.TB) *query.Batch {
	q0 := &query.Query{
		Tag:  "q0",
		Rels: []query.RelRef{{Table: "R"}, {Table: "S"}, {Table: "T"}, {Table: "U"}},
		Joins: []query.Join{
			{LeftAlias: "R", LeftCol: "a", RightAlias: "S", RightCol: "a"},
			{LeftAlias: "R", LeftCol: "b", RightAlias: "T", RightCol: "b"},
			{LeftAlias: "S", LeftCol: "c", RightAlias: "U", RightCol: "c"},
		},
	}
	q1 := &query.Query{
		Tag:  "q1",
		Rels: []query.RelRef{{Table: "R"}, {Table: "S"}, {Table: "U"}, {Table: "V"}},
		Joins: []query.Join{
			{LeftAlias: "R", LeftCol: "a", RightAlias: "S", RightCol: "a"},
			{LeftAlias: "S", LeftCol: "c", RightAlias: "U", RightCol: "c"},
			{LeftAlias: "S", LeftCol: "d", RightAlias: "V", RightCol: "d"},
		},
	}
	b, err := query.Compile([]*query.Query{q0, q1})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func allInsts(qid int) uint64 { return ^uint64(0) }

// graphOf snapshots a batch for BuildJoin (tests mutate nothing while the
// plan is built, so a fresh snapshot per call is fine).
func graphOf(b *query.Batch) *query.Graph {
	g := b.Snapshot()
	return &g
}

func TestBuildJoinRoutesEveryQueryExactlyOnce(t *testing.T) {
	b := fig1Batch(t)
	rInst, _ := b.InstOfAlias(0, "R")
	for seed := int64(0); seed < 50; seed++ {
		pol := policy.NewRandom(seed)
		root := BuildJoin(graphOf(b), pol, rInst, bitset.NewFull(b.N), allInsts)
		counts := CountRouters(root, b.N)
		for qid, c := range counts {
			if c != 1 {
				t.Fatalf("seed %d: query %d routed %d times\n", seed, qid, c)
			}
		}
	}
}

func TestBuildJoinSharesCommonPrefix(t *testing.T) {
	// With a deterministic policy that prefers the shared R-S edge first,
	// the plan's first probe must serve both queries.
	b := fig1Batch(t)
	rInst, _ := b.InstOfAlias(0, "R")
	pol := preferShared{b}
	root := BuildJoin(graphOf(b), pol, rInst, bitset.NewFull(b.N), allInsts)
	if len(root.Children) == 0 {
		t.Fatal("empty plan")
	}
	first := root.Children[0]
	if first.Kind != Probe {
		t.Fatalf("first child kind = %v", first.Kind)
	}
	if first.Q.Count() != 2 {
		t.Errorf("first probe serves %d queries, want 2 (shared R⋈S)", first.Q.Count())
	}
	if first.Div != nil {
		t.Error("shared probe should not diverge")
	}
}

// preferShared picks the candidate edge with the largest query overlap.
type preferShared struct{ b *query.Batch }

func (p preferShared) ChooseJoin(_ query.InstID, _ uint64, q bitset.Set, cands []int) int {
	best, bestN := 0, -1
	for i, c := range cands {
		n := bitset.And(q, p.b.Edges[c].Queries).Count()
		if n > bestN {
			best, bestN = i, n
		}
	}
	return best
}
func (p preferShared) ChooseSel(_ query.InstID, _ uint64, _ bitset.Set, cands []int) int {
	return 0
}
func (p preferShared) Observe([]policy.LogEntry) {}

func TestDivergenceContext(t *testing.T) {
	b := fig1Batch(t)
	rInst, _ := b.InstOfAlias(0, "R")
	pol := preferShared{b}
	root := BuildJoin(graphOf(b), pol, rInst, bitset.NewFull(b.N), allInsts)

	// Walk the tree; every diverging probe must carry consistent context.
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Kind == Probe {
			if n.StateQ == nil || len(n.Cands) == 0 {
				t.Fatalf("probe without decision context: %+v", n)
			}
			wantMain := bitset.And(n.StateQ, b.Edges[n.EdgeID].Queries)
			if !wantMain.Equal(n.Q) {
				t.Errorf("probe Q = %v, want %v", n.Q, wantMain)
			}
			if n.Div != nil {
				wantDiv := bitset.AndNot(n.StateQ, b.Edges[n.EdgeID].Queries)
				if !wantDiv.Equal(n.Div.Q) {
					t.Errorf("div Q = %v, want %v", n.Div.Q, wantDiv)
				}
				if n.DivCands == nil && !wantDiv.Empty() {
					// DivCands may legitimately be empty (terminal) but the
					// build always assigns the returned slice; nil means the
					// state was terminal, which is fine.
					_ = n
				}
			}
			if n.MainLineage != n.Lineage|1<<n.Target {
				t.Errorf("MainLineage inconsistent")
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
}

func TestAdaptiveProjectionKeepsOnlyNeededColumns(t *testing.T) {
	b := fig1Batch(t)
	rInst, _ := b.InstOfAlias(0, "R")
	// Queries need no columns at all (COUNT(*)): routers keep nothing, and
	// probe inputs only keep the key-source instance.
	pol := preferShared{b}
	root := BuildJoin(graphOf(b), pol, rInst, bitset.NewFull(b.N), func(int) uint64 { return 0 })

	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Kind == Router && n.Keep != 0 {
			t.Errorf("COUNT(*) router keeps %b", n.Keep)
		}
		if n.Kind == Probe {
			e := &b.Edges[n.EdgeID]
			src := e.A
			if n.Target == e.A {
				src = e.B
			}
			if n.Keep&(1<<src) == 0 {
				t.Errorf("probe input dropped its key column (inst %d)", src)
			}
			if n.Keep&^n.Lineage != 0 {
				t.Errorf("keep mask outside lineage")
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)

	// With full requirements every router keeps its whole lineage.
	root = BuildJoin(graphOf(b), pol, rInst, bitset.NewFull(b.N), allInsts)
	var check func(n *Node)
	check = func(n *Node) {
		if n.Kind == Router && n.Keep != n.Lineage {
			t.Errorf("full-requirement router keep = %b, lineage %b", n.Keep, n.Lineage)
		}
		for _, c := range n.Children {
			check(c)
		}
	}
	check(root)
}

func TestQuickRandomWorkloadsRouteOnce(t *testing.T) {
	// Property: on random tree-shaped multi-query workloads, Algorithm 1
	// with a random policy routes every query exactly once and the plan is
	// finite (paper's induction proof, checked empirically).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tables := []string{"A", "B", "C", "D", "E", "F"}
		nq := 1 + rng.Intn(6)
		var qs []*query.Query
		for i := 0; i < nq; i++ {
			n := 2 + rng.Intn(4)
			perm := rng.Perm(len(tables))[:n]
			q := &query.Query{}
			for _, p := range perm {
				q.Rels = append(q.Rels, query.RelRef{Table: tables[p]})
			}
			// Random spanning tree: join each relation to a random earlier one.
			for j := 1; j < n; j++ {
				k := rng.Intn(j)
				q.Joins = append(q.Joins, query.Join{
					LeftAlias: tables[perm[k]], LeftCol: "k",
					RightAlias: tables[perm[j]], RightCol: "k",
				})
			}
			qs = append(qs, q)
		}
		b, err := query.Compile(qs)
		if err != nil {
			return false
		}
		// Start from the first query's first relation; active set = queries
		// containing that instance.
		src := b.QueryInsts(0)[0]
		active := b.Insts[src].Queries.Clone()
		root := BuildJoin(graphOf(b), policy.NewRandom(seed), src, active, allInsts)
		for qid, c := range CountRouters(root, b.N) {
			want := 0
			if active.Contains(qid) {
				want = 1
			}
			if c != want {
				return false
			}
		}
		return Size(root) <= 3*len(b.Edges)*b.N+b.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestBuildSelOrdersAllRelevantOps(t *testing.T) {
	q := bitset.NewFull(4)
	ops := []SelOpInfo{
		{ID: 0, Bit: 0, Queries: bitset.FromIDs(4, 0)},
		{ID: 1, Bit: 1, Queries: bitset.FromIDs(4, 1, 2)},
		{ID: 7, Bit: 2, Queries: bitset.FromIDs(4, 3)},
	}
	steps := BuildSel(policy.NewRandom(3), 0, q, ops)
	if len(steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(steps))
	}
	seen := map[int]bool{}
	var applied uint64
	for i, s := range steps {
		if seen[s.Op.ID] {
			t.Fatalf("op %d planned twice", s.Op.ID)
		}
		seen[s.Op.ID] = true
		if s.Applied != applied {
			t.Errorf("step %d applied mask = %b, want %b", i, s.Applied, applied)
		}
		applied |= 1 << uint(s.Op.Bit)
		if s.NextApplied != applied {
			t.Errorf("step %d NextApplied = %b, want %b", i, s.NextApplied, applied)
		}
	}
	// Ops whose queries are absent are skipped.
	steps = BuildSel(policy.NewRandom(3), 0, bitset.FromIDs(4, 0), ops)
	if len(steps) != 1 || steps[0].Op.ID != 0 {
		t.Errorf("irrelevant ops not skipped: %+v", steps)
	}
}
