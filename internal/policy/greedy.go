package policy

import (
	"sync"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/query"
)

// Greedy is the selectivity-based runtime-ordering heuristic used by CACQ
// and CJOIN: at every step it picks the candidate with the lowest observed
// selectivity. It ignores operator correlations, sharing, and the long-term
// effects of planning — the limitations RouLette's learned policy is
// designed to overcome (§2.1, §6.2).
type Greedy struct {
	mu    sync.Mutex
	joins *OpStats
	sels  *OpStats
}

// NewGreedy builds a greedy policy for a compiled batch. nSelOps must cover
// every selection-phase operator ID (grouped filters plus prune filters).
func NewGreedy(b *query.Batch, nSelOps int) *Greedy {
	return &Greedy{
		joins: NewOpStats(len(b.Edges)),
		sels:  NewOpStats(nSelOps),
	}
}

// ChooseJoin picks the candidate edge with the lowest observed selectivity;
// unobserved edges default to selectivity 1 so that observed low-selectivity
// edges win, and ties fall to the lowest edge ID (deterministic).
func (g *Greedy) ChooseJoin(_ query.InstID, _ uint64, _ bitset.Set, cands []int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	best, bestSel := 0, g.joins.Selectivity(cands[0], 1)
	for i := 1; i < len(cands); i++ {
		if s := g.joins.Selectivity(cands[i], 1); s < bestSel {
			best, bestSel = i, s
		}
	}
	return best
}

// ChooseSel picks the selection operator with the lowest observed
// selectivity (most filtering first).
func (g *Greedy) ChooseSel(_ query.InstID, _ uint64, _ bitset.Set, cands []int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	best, bestSel := 0, g.sels.Selectivity(cands[0], 1)
	for i := 1; i < len(cands); i++ {
		if s := g.sels.Selectivity(cands[i], 1); s < bestSel {
			best, bestSel = i, s
		}
	}
	return best
}

// Observe accumulates per-operator selectivity statistics.
func (g *Greedy) Observe(entries []LogEntry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := range entries {
		e := &entries[i]
		if e.NIn == 0 {
			continue
		}
		switch e.Phase {
		case JoinPhase:
			g.joins.Record(e.Op, e.NIn, e.NOut)
		case SelPhase:
			g.sels.Record(e.Op, e.NIn, e.NOut)
		}
	}
}
