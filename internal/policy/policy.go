// Package policy defines the planning-policy interface that RouLette's eddy
// consults during multi-step optimization, plus the non-learned policies the
// paper compares against: the greedy selectivity-based heuristic of
// CACQ/CJOIN, a random policy, and static policies that replay fixed
// per-query plans (the execution vehicle for the Stitch&Share and
// Match&Share online-sharing prototypes, §6.1).
package policy

import (
	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/query"
)

// Phase tags which plan a log entry or decision belongs to.
type Phase int

// The two episode phases (§3: selection-phase then join-phase).
const (
	SelPhase Phase = iota
	JoinPhase
)

// LogEntry records one executed operator for policy adaptation: the state
// it was chosen in, observed input/output sizes, and — so that bootstrapped
// updates can evaluate the successor states — the candidate sets of the one
// or two states the decision transitioned to.
type LogEntry struct {
	Phase   Phase
	Inst    query.InstID // selection phase: the relation being filtered
	Lineage uint64       // join phase: instance bitmask; sel phase: applied-op bitmask
	Q       bitset.Set
	Op      int // edge ID (join phase) or selection-op ID (sel phase)

	NIn  int
	NOut int
	NDiv int // routing-selection output size; -1 when the decision did not diverge

	MainLineage uint64     // successor lineage after applying Op
	QMain       bitset.Set // Q ∩ Q_op
	MainCands   []int      // candidates at the main successor state
	DivQ        bitset.Set // Q − Q_op (valid when NDiv >= 0)
	DivCands    []int      // candidates at the divergence successor state
}

// Policy chooses operators during multi-step optimization and adapts from
// execution logs. Implementations must be safe for concurrent use by
// multiple workers.
type Policy interface {
	// ChooseJoin returns the index into cands of the edge to probe next for
	// virtual vector (lineage, q) originating from source. cands is never
	// empty.
	ChooseJoin(source query.InstID, lineage uint64, q bitset.Set, cands []int) int
	// ChooseSel returns the index into cands of the selection operator to
	// run next on inst, given the bitmask of already-applied operators.
	ChooseSel(inst query.InstID, applied uint64, q bitset.Set, cands []int) int
	// Observe feeds one episode's execution log back into the policy.
	Observe(entries []LogEntry)
}

// OpStats tracks per-operator selectivity estimates from observed input and
// output cardinalities. It is the statistic the greedy policy ranks by.
type OpStats struct {
	in  []float64
	out []float64
}

// NewOpStats sizes the statistics for n operators.
func NewOpStats(n int) *OpStats {
	return &OpStats{in: make([]float64, n), out: make([]float64, n)}
}

// Record accumulates one observation for op.
func (s *OpStats) Record(op, nIn, nOut int) {
	s.in[op] += float64(nIn)
	s.out[op] += float64(nOut)
}

// Selectivity returns op's observed output/input ratio, or def when the
// operator has not been observed yet.
func (s *OpStats) Selectivity(op int, def float64) float64 {
	if s.in[op] == 0 {
		return def
	}
	return s.out[op] / s.in[op]
}
