package policy

import (
	"testing"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/query"
)

func toyBatch(t *testing.T) *query.Batch {
	t.Helper()
	q0 := &query.Query{
		Rels: []query.RelRef{{Table: "R"}, {Table: "S"}, {Table: "T"}},
		Joins: []query.Join{
			{LeftAlias: "R", LeftCol: "a", RightAlias: "S", RightCol: "a"},
			{LeftAlias: "R", LeftCol: "b", RightAlias: "T", RightCol: "b"},
		},
	}
	q1 := &query.Query{
		Rels: []query.RelRef{{Table: "R"}, {Table: "S"}},
		Joins: []query.Join{
			{LeftAlias: "R", LeftCol: "a", RightAlias: "S", RightCol: "a"},
		},
	}
	b, err := query.Compile([]*query.Query{q0, q1})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestOpStats(t *testing.T) {
	s := NewOpStats(3)
	if got := s.Selectivity(0, 0.5); got != 0.5 {
		t.Errorf("default selectivity = %v", got)
	}
	s.Record(0, 100, 25)
	s.Record(0, 100, 35)
	if got := s.Selectivity(0, 1); got != 0.3 {
		t.Errorf("selectivity = %v, want 0.3", got)
	}
}

func TestGreedyPrefersLowSelectivity(t *testing.T) {
	b := toyBatch(t)
	g := NewGreedy(b, 4)
	q := bitset.NewFull(2)

	// Unobserved: ties break to the first candidate.
	if got := g.ChooseJoin(0, 1, q, []int{0, 1}); got != 0 {
		t.Errorf("unobserved choice = %d", got)
	}
	g.Observe([]LogEntry{
		{Phase: JoinPhase, Op: 0, NIn: 100, NOut: 90},
		{Phase: JoinPhase, Op: 1, NIn: 100, NOut: 10},
	})
	if got := g.ChooseJoin(0, 1, q, []int{0, 1}); got != 1 {
		t.Errorf("greedy chose %d, want the selective edge", got)
	}
	// Selection phase analogous.
	g.Observe([]LogEntry{
		{Phase: SelPhase, Op: 2, NIn: 100, NOut: 5},
		{Phase: SelPhase, Op: 3, NIn: 100, NOut: 95},
	})
	if got := g.ChooseSel(0, 0, q, []int{3, 2}); got != 1 {
		t.Errorf("greedy sel chose %d, want the selective filter", got)
	}
	// Zero-input entries must not poison the stats.
	g.Observe([]LogEntry{{Phase: JoinPhase, Op: 1, NIn: 0, NOut: 0}})
	if got := g.ChooseJoin(0, 1, q, []int{0, 1}); got != 1 {
		t.Error("zero-input observation changed the decision")
	}
}

func TestStaticFollowsOrders(t *testing.T) {
	b := toyBatch(t)
	rInst, _ := b.InstOfAlias(0, "R")
	// Edge IDs: R-S shared and R-T (q0).
	var rs, rt int = -1, -1
	for _, e := range b.Edges {
		if e.Queries.Count() == 2 {
			rs = e.ID
		} else {
			rt = e.ID
		}
	}
	orders := map[OrderKey][]int{
		{QID: 0, Source: rInst}: {rt, rs},
		{QID: 1, Source: rInst}: {rs},
	}
	s := NewStatic(orders, 4)

	both := bitset.NewFull(2)
	cands := []int{rs, rt}
	// Lowest query in set is q0: its order says R-T first.
	if got := cands[s.ChooseJoin(rInst, 1<<rInst, both, cands)]; got != rt {
		t.Errorf("static chose edge %d, want %d (q0's first)", got, rt)
	}
	// Only q1 present: R-S.
	q1 := bitset.FromIDs(2, 1)
	if got := cands[s.ChooseJoin(rInst, 1<<rInst, q1, []int{rs})]; got != rs {
		t.Errorf("static for q1 chose %d", got)
	}
	// Order entries already in the lineage are skipped.
	lineage := uint64(1<<rInst) | 1<<b.Edges[rt].B | 1<<b.Edges[rt].A
	got := s.ChooseJoin(rInst, lineage, bitset.FromIDs(2, 0), []int{rs})
	if got != 0 {
		t.Errorf("static with exhausted prefix = %d", got)
	}
	// Missing order: fall back to candidate 0 without panicking.
	if got := s.ChooseJoin(99, 1, both, []int{rs, rt}); got != 0 {
		t.Errorf("fallback = %d", got)
	}
}

func TestStaticSelGreedy(t *testing.T) {
	s := NewStatic(nil, 4)
	q := bitset.NewFull(1)
	s.Observe([]LogEntry{
		{Phase: SelPhase, Op: 0, NIn: 10, NOut: 9},
		{Phase: SelPhase, Op: 1, NIn: 10, NOut: 1},
	})
	if got := s.ChooseSel(0, 0, q, []int{0, 1}); got != 1 {
		t.Errorf("static sel chose %d", got)
	}
}

func TestRandomIsUniformAndInRange(t *testing.T) {
	r := NewRandom(7)
	q := bitset.NewFull(1)
	counts := [4]int{}
	for i := 0; i < 4000; i++ {
		c := r.ChooseJoin(0, 1, q, []int{0, 1, 2, 3})
		if c < 0 || c > 3 {
			t.Fatalf("choice out of range: %d", c)
		}
		counts[c]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("candidate %d chosen %d/4000", i, c)
		}
	}
	r.Observe(nil) // no-op must not panic
	if got := r.ChooseSel(0, 0, q, []int{5}); got != 0 {
		t.Errorf("single-candidate choice = %d", got)
	}
}
