package policy

import (
	"math/rand"
	"sync"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/query"
)

// OrderKey identifies a per-query probe order: the plan a tuple of source
// follows for query QID.
type OrderKey struct {
	QID    int
	Source query.InstID
}

// Static replays fixed per-query join orders inside the shared adaptive
// executor. It is the execution vehicle for the online-sharing baselines:
// Stitch&Share (per-query optimizer plans merged on common prefixes, as in
// QPipe/SharedDB) and Match&Share (DataPath-style incremental global-plan
// extension) both reduce to order maps consumed by this policy. Queries
// whose orders share a prefix stay together in the global plan; the first
// differing edge diverges them, which is exactly the prefix-sharing
// semantics of those systems.
//
// Selection ordering is delegated to an embedded greedy chooser: selection
// order is not what the online-sharing baselines differ on.
type Static struct {
	Orders map[OrderKey][]int // edge IDs in probe order

	mu   sync.Mutex
	sels *OpStats
}

// NewStatic builds a static policy over the given per-(query, source) edge
// orders.
func NewStatic(orders map[OrderKey][]int, nSelOps int) *Static {
	return &Static{Orders: orders, sels: NewOpStats(nSelOps)}
}

// ChooseJoin follows the plan of the lowest-ID query present in q: its
// first ordered edge not yet in the lineage. Queries with identical
// prefixes therefore share; others are diverged out by the eddy.
func (s *Static) ChooseJoin(source query.InstID, lineage uint64, q bitset.Set, cands []int) int {
	qid := -1
	q.ForEach(func(id int) {
		if qid == -1 {
			qid = id
		}
	})
	if qid >= 0 {
		order := s.Orders[OrderKey{QID: qid, Source: source}]
		for _, e := range order {
			for ci, c := range cands {
				if c == e {
					return ci
				}
			}
		}
	}
	return 0
}

// ChooseSel picks greedily by observed selectivity.
func (s *Static) ChooseSel(_ query.InstID, _ uint64, _ bitset.Set, cands []int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	best, bestSel := 0, s.sels.Selectivity(cands[0], 1)
	for i := 1; i < len(cands); i++ {
		if sel := s.sels.Selectivity(cands[i], 1); sel < bestSel {
			best, bestSel = i, sel
		}
	}
	return best
}

// Observe tracks selection selectivities only; join orders are fixed.
func (s *Static) Observe(entries []LogEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range entries {
		e := &entries[i]
		if e.Phase == SelPhase && e.NIn > 0 {
			s.sels.Record(e.Op, e.NIn, e.NOut)
		}
	}
}

// Random chooses uniformly at random; useful as a floor in experiments and
// for exercising the executor in property tests.
type Random struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandom builds a random policy from a seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// ChooseJoin picks a uniformly random candidate.
func (r *Random) ChooseJoin(_ query.InstID, _ uint64, _ bitset.Set, cands []int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Intn(len(cands))
}

// ChooseSel picks a uniformly random candidate.
func (r *Random) ChooseSel(_ query.InstID, _ uint64, _ bitset.Set, cands []int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Intn(len(cands))
}

// Observe is a no-op.
func (r *Random) Observe([]LogEntry) {}
