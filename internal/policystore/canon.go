package policystore

import (
	"sort"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/metrics"
	"github.com/roulette-db/roulette/internal/qlearn"
	"github.com/roulette-db/roulette/internal/query"
)

// Space is the template-relative naming of a batch's live state: a
// canonical ordering of its queries, instances, join edges and selection
// operators that depends only on the workload's shape — not on query
// submission order, recycled query IDs, or interning order. Snapshots
// are exported through ToCanon and imported back through ToLive, so two
// runs of the same workload exchange learned state even though their
// positional IDs differ.
type Space struct {
	Sig     uint64 // template-set signature: the policy-cache key
	ToCanon *qlearn.Remap
	ToLive  *qlearn.Remap
}

// BuildSpace derives the canonical naming from the compiled batch, the
// execution context's selection-operator table, and the live query set.
// It returns nil when no live query exists. Runs off the episode hot
// path only (submit, GC finish, batch setup/teardown).
func BuildSpace(b *query.Batch, ctx *exec.Context, live bitset.Set) *Space {
	// Canonical queries: live IDs sorted by (template, full signature,
	// qid). Queries of the same template are interchangeable across runs;
	// the signature tiebreak just makes the order deterministic in-run.
	type liveQ struct {
		qid       int
		tpl, qsig uint64
	}
	var qs []liveQ
	for _, qid := range live.IDs() {
		if qid >= len(b.Queries) || b.Queries[qid] == nil {
			continue
		}
		q := b.Queries[qid]
		qs = append(qs, liveQ{qid, query.TemplateSig(q), query.QuerySig(q)})
	}
	if len(qs) == 0 {
		return nil
	}
	sort.Slice(qs, func(i, j int) bool {
		a, c := qs[i], qs[j]
		if a.tpl != c.tpl {
			return a.tpl < c.tpl
		}
		if a.qsig != c.qsig {
			return a.qsig < c.qsig
		}
		return a.qid < c.qid
	})
	tpls := make([]uint64, len(qs))
	for i, lq := range qs {
		tpls[i] = lq.tpl
	}
	cs := &Space{
		Sig:     query.SetSig(tpls),
		ToCanon: &qlearn.Remap{NQ: len(qs)},
		ToLive:  &qlearn.Remap{NQ: b.QCap()},
	}
	cs.ToCanon.Query = negOnes(b.QCap())
	cs.ToLive.Query = make([]int, len(qs))
	liveOnly := bitset.New(b.QCap())
	for ci, lq := range qs {
		cs.ToCanon.Query[lq.qid] = ci
		cs.ToLive.Query[ci] = lq.qid
		liveOnly.Add(lq.qid)
	}

	// Canonical instances: those serving a live query, sorted by
	// (table, occurrence) — the same identity planQuery interns by, made
	// independent of interning order.
	instOrder := make([]int, 0, len(b.Insts))
	for i := range b.Insts {
		if bitset.Intersects(b.Insts[i].Queries, liveOnly) {
			instOrder = append(instOrder, i)
		}
	}
	sort.Slice(instOrder, func(i, j int) bool {
		a, c := &b.Insts[instOrder[i]], &b.Insts[instOrder[j]]
		if a.Table != c.Table {
			return a.Table < c.Table
		}
		return a.Occ < c.Occ
	})
	cs.ToCanon.Inst = negOnes(len(b.Insts))
	cs.ToLive.Inst = make([]int, len(instOrder))
	for ci, li := range instOrder {
		cs.ToCanon.Inst[li] = ci
		cs.ToLive.Inst[ci] = li
	}

	// Canonical edges: live edges re-normalized over canonical endpoint
	// IDs (so the A/B orientation is shape-derived, not interning-order-
	// derived) and sorted.
	type edgeRef struct {
		ia, ib int
		ca, cb string
		liveID int
	}
	var edges []edgeRef
	for i := range b.Edges {
		e := &b.Edges[i]
		if !bitset.Intersects(e.Queries, liveOnly) {
			continue
		}
		ia, ib := cs.ToCanon.Inst[e.A], cs.ToCanon.Inst[e.B]
		if ia < 0 || ib < 0 {
			continue
		}
		ca, cb := e.ACol, e.BCol
		if ia > ib || (ia == ib && ca > cb) {
			ia, ca, ib, cb = ib, cb, ia, ca
		}
		edges = append(edges, edgeRef{ia, ib, ca, cb, e.ID})
	}
	sort.Slice(edges, func(i, j int) bool {
		a, c := &edges[i], &edges[j]
		if a.ia != c.ia {
			return a.ia < c.ia
		}
		if a.ca != c.ca {
			return a.ca < c.ca
		}
		if a.ib != c.ib {
			return a.ib < c.ib
		}
		return a.cb < c.cb
	})
	cs.ToCanon.JoinOp = negOnes(len(b.Edges))
	cs.ToLive.JoinOp = make([]int, len(edges))
	for ci, er := range edges {
		cs.ToCanon.JoinOp[er.liveID] = ci
		cs.ToLive.JoinOp[ci] = er.liveID
	}

	// Canonical selection operators, restricted to live-relevant ones —
	// grouped filters still serving a live query, prune operators of live
	// edges — so stale operators left by retired queries cannot shift the
	// canonical ranks. Sorted by (instance, kind, column, edge); the
	// per-instance lineage bit is the operator's rank within its instance.
	descs := ctx.SelOpDescs()
	type selRef struct {
		inst     int // canonical instance
		prune    bool
		col      string
		edge     int // canonical edge, -1 for grouped filters
		liveID   int
		liveInst int
		liveBit  int
	}
	var sels []selRef
	maxBit := make([]int, len(b.Insts))
	for _, d := range descs {
		ci := -1
		if int(d.Inst) < len(cs.ToCanon.Inst) {
			ci = cs.ToCanon.Inst[d.Inst]
		}
		if ci < 0 {
			continue
		}
		sr := selRef{inst: ci, prune: d.Prune, col: d.Col, edge: -1,
			liveID: d.ID, liveInst: int(d.Inst), liveBit: d.Bit}
		if d.Prune {
			if d.EdgeID < 0 || d.EdgeID >= len(cs.ToCanon.JoinOp) {
				continue
			}
			sr.edge = cs.ToCanon.JoinOp[d.EdgeID]
			if sr.edge < 0 {
				continue
			}
		} else {
			if d.SelCol < 0 || d.SelCol >= len(b.SelCols) ||
				!bitset.Intersects(b.SelCols[d.SelCol].Queries, liveOnly) {
				continue
			}
		}
		sels = append(sels, sr)
		if d.Bit >= maxBit[d.Inst] {
			maxBit[d.Inst] = d.Bit + 1
		}
	}
	sort.Slice(sels, func(i, j int) bool {
		a, c := &sels[i], &sels[j]
		if a.inst != c.inst {
			return a.inst < c.inst
		}
		if a.prune != c.prune {
			return !a.prune
		}
		if a.col != c.col {
			return a.col < c.col
		}
		return a.edge < c.edge
	})
	cs.ToCanon.SelOp = negOnes(len(descs))
	cs.ToLive.SelOp = make([]int, len(sels))
	cs.ToCanon.SelBit = make([][]int, len(b.Insts))
	for li, n := range maxBit {
		if n > 0 {
			cs.ToCanon.SelBit[li] = negOnes(n)
		}
	}
	cs.ToLive.SelBit = make([][]int, len(instOrder))
	rank := make([]int, len(instOrder)) // next bit per canonical instance
	for ci, sr := range sels {
		cs.ToCanon.SelOp[sr.liveID] = ci
		cs.ToLive.SelOp[ci] = sr.liveID
		bit := rank[sr.inst]
		rank[sr.inst]++
		cs.ToCanon.SelBit[sr.liveInst][sr.liveBit] = bit
		cs.ToLive.SelBit[sr.inst] = append(cs.ToLive.SelBit[sr.inst], sr.liveBit)
	}
	return cs
}

func negOnes(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = -1
	}
	return m
}

// importOne looks one canonical space up in the cache and folds a hit
// into the policy, returning the number of imported Q-states.
func (c *Cache) importOne(pol *qlearn.Learned, cs *Space) int {
	reg := metrics.Default()
	snap := c.Get(cs.Sig)
	if snap == nil {
		reg.PolicyCacheMisses.Add(1)
		return 0
	}
	reg.PolicyCacheHits.Add(1)
	return pol.Import(snap, cs.ToLive)
}

// Import warm-starts a learned policy from the cache: first against the
// whole live set's template signature, then — when that misses — query
// by query against each member's own template, so a stream whose sweeps
// never saw this exact combination still reuses per-query priors.
// Returns the number of Q-states imported (0 on a fully cold lookup).
func (c *Cache) Import(pol *qlearn.Learned, b *query.Batch, ctx *exec.Context, live bitset.Set) int {
	cs := BuildSpace(b, ctx, live)
	if cs == nil {
		return 0
	}
	if n := c.importOne(pol, cs); n > 0 {
		return n
	}
	qids := live.IDs()
	if len(qids) <= 1 {
		return 0 // the singleton signature is the one that just missed
	}
	n := 0
	single := bitset.New(b.QCap())
	for _, qid := range qids {
		single.Add(qid)
		if scs := BuildSpace(b, ctx, single); scs != nil {
			n += c.importOne(pol, scs)
		}
		single.Remove(qid)
	}
	return n
}

// exportOne snapshots one canonical space into the cache. Returns the
// number of exported Q-states.
func (c *Cache) exportOne(pol *qlearn.Learned, cs *Space) int {
	snap := pol.Export(cs.ToCanon)
	if len(snap.Entries) == 0 {
		return 0
	}
	c.Put(cs.Sig, snap)
	metrics.Default().PolicyCacheStores.Add(1)
	return len(snap.Entries)
}

// Export snapshots a learned policy's state about the live queries into
// the cache: once under the whole set's template signature, and — for
// multi-query sets — once per query under its own template (shared
// states drop out of the per-query snapshots; exclusive states survive,
// which is what lets a differently-batched future run still warm-start).
// Returns the number of Q-states in the full-set export.
func (c *Cache) Export(pol *qlearn.Learned, b *query.Batch, ctx *exec.Context, live bitset.Set) int {
	cs := BuildSpace(b, ctx, live)
	if cs == nil {
		return 0
	}
	n := c.exportOne(pol, cs)
	qids := live.IDs()
	if len(qids) > 1 {
		single := bitset.New(b.QCap())
		for _, qid := range qids {
			single.Add(qid)
			if scs := BuildSpace(b, ctx, single); scs != nil {
				c.exportOne(pol, scs)
			}
			single.Remove(qid)
		}
	}
	return n
}
