// Package policystore caches learned Q-table snapshots keyed by workload
// template signature, so a recurring batch of queries warm-starts from
// what earlier runs learned instead of re-exploring from scratch
// (DESIGN.md §14). The cache is an in-memory LRU with optional on-disk
// persistence: Save writes an atomic, checksummed file that Open reloads,
// and a corrupted or truncated file degrades to an empty cache rather
// than poisoning the policy.
package policystore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/roulette-db/roulette/internal/qlearn"
)

// DefaultMaxEntries bounds the cache when Options.MaxEntries is zero.
const DefaultMaxEntries = 64

// Options configures a Cache.
type Options struct {
	// MaxEntries caps the number of cached templates (LRU eviction beyond
	// it). Zero means DefaultMaxEntries.
	MaxEntries int
	// Path, when set, is the on-disk policy file: Open loads it if present
	// and Save rewrites it atomically.
	Path string
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Stores    uint64 `json:"stores"`
	Evictions uint64 `json:"evictions"`
}

type entry struct {
	snap    *qlearn.Snapshot
	lastUse uint64
}

// Cache is a thread-safe LRU of template signature -> merged Q-table
// snapshot. All methods run off the episode hot path (submit, GC finish,
// close), so a plain mutex is fine.
type Cache struct {
	mu    sync.Mutex
	max   int
	path  string
	clock uint64
	m     map[uint64]*entry

	hits, misses, stores, evictions uint64
}

// Open builds a cache and, when opts.Path names an existing file, loads
// it. A missing file is a cold start, not an error; a corrupted file is
// reported (so callers can log it) but still yields a usable empty cache.
func Open(opts Options) (*Cache, error) {
	c := &Cache{max: opts.MaxEntries, path: opts.Path, m: make(map[uint64]*entry)}
	if c.max <= 0 {
		c.max = DefaultMaxEntries
	}
	if opts.Path == "" {
		return c, nil
	}
	if _, err := os.Stat(opts.Path); os.IsNotExist(err) {
		return c, nil
	}
	if err := c.LoadFrom(opts.Path); err != nil {
		return c, fmt.Errorf("policystore: load %s: %w", opts.Path, err)
	}
	return c, nil
}

// Get returns a deep copy of the cached snapshot for sig, or nil. The
// copy is the caller's to import; the cached original keeps absorbing
// Put merges concurrently.
func (c *Cache) Get(sig uint64) *qlearn.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[sig]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.clock++
	e.lastUse = c.clock
	return e.snap.Clone()
}

// Put folds snap into the cached snapshot for sig (visit-weighted merge
// with whatever earlier runs stored), inserting it if absent and
// evicting the least-recently-used template past the cap. The cache
// takes ownership of snap.
func (c *Cache) Put(sig uint64, snap *qlearn.Snapshot) {
	if snap == nil || len(snap.Entries) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stores++
	c.clock++
	if e, ok := c.m[sig]; ok {
		e.snap.Merge(snap)
		e.lastUse = c.clock
		return
	}
	c.m[sig] = &entry{snap: snap, lastUse: c.clock}
	for len(c.m) > c.max {
		var victim uint64
		oldest := uint64(1<<64 - 1)
		for s, e := range c.m {
			if e.lastUse < oldest {
				oldest, victim = e.lastUse, s
			}
		}
		delete(c.m, victim)
		c.evictions++
	}
}

// Len reports the number of cached templates.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries: len(c.m), Hits: c.hits, Misses: c.misses,
		Stores: c.stores, Evictions: c.evictions,
	}
}

// Save persists the cache to the path it was opened with; a pathless
// cache is in-memory only and Save is a no-op.
func (c *Cache) Save() error {
	if c.path == "" {
		return nil
	}
	return c.SaveTo(c.path)
}

// SaveTo writes every cached snapshot to path atomically (temp file in
// the same directory, then rename), so a crash mid-save leaves the old
// file intact.
func (c *Cache) SaveTo(path string) error {
	data := c.encode()
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".policy-*.tmp")
	if err != nil {
		return fmt.Errorf("policystore: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("policystore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("policystore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("policystore: %w", err)
	}
	return nil
}

// LoadFrom reads a policy file and merges its snapshots into the cache
// (visit-weighted, like Put). Validation is checksum-first: any damage
// anywhere rejects the whole file.
func (c *Cache) LoadFrom(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("policystore: %w", err)
	}
	snaps, err := decode(data)
	if err != nil {
		return err
	}
	for sig, snap := range snaps {
		c.Put(sig, snap)
	}
	return nil
}

// File format (all little-endian):
//
//	magic "RLPC" | version u32 | count u32
//	per entry: sig u64 | bloblen u32 | blob (qlearn snapshot encoding)
//	trailer: FNV-1a 64 checksum of everything before it, u64
//
// Each blob carries its own magic and checksum too (qlearn codec), so a
// file that passes the outer checksum still re-validates every snapshot.

const (
	fileMagic   = "RLPC"
	fileVersion = 1
)

func putU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func putU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func fnvSum(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// encode serializes the cache under its lock, in deterministic (sorted
// signature) order so identical caches produce identical files.
func (c *Cache) encode() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	sigs := make([]uint64, 0, len(c.m))
	for s := range c.m {
		sigs = append(sigs, s)
	}
	for i := 1; i < len(sigs); i++ { // insertion sort: len ≤ max (small)
		for j := i; j > 0 && sigs[j-1] > sigs[j]; j-- {
			sigs[j-1], sigs[j] = sigs[j], sigs[j-1]
		}
	}
	buf := []byte(fileMagic)
	buf = putU32(buf, fileVersion)
	buf = putU32(buf, uint32(len(sigs)))
	for _, sig := range sigs {
		blob := c.m[sig].snap.Encode()
		buf = putU64(buf, sig)
		buf = putU32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
	}
	return putU64(buf, fnvSum(buf))
}

// decode parses and validates a policy file.
func decode(data []byte) (map[uint64]*qlearn.Snapshot, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("policystore: file truncated (%d bytes)", len(data))
	}
	body, sum := data[:len(data)-8], getU64(data[len(data)-8:])
	if fnvSum(body) != sum {
		return nil, fmt.Errorf("policystore: file checksum mismatch")
	}
	if string(body[:4]) != fileMagic {
		return nil, fmt.Errorf("policystore: bad file magic %q", body[:4])
	}
	if v := getU32(body[4:]); v != fileVersion {
		return nil, fmt.Errorf("policystore: unsupported file version %d", v)
	}
	n := int(getU32(body[8:]))
	off := 12
	out := make(map[uint64]*qlearn.Snapshot, n)
	for i := 0; i < n; i++ {
		if off+12 > len(body) {
			return nil, fmt.Errorf("policystore: entry %d header truncated", i)
		}
		sig := getU64(body[off:])
		blen := int(getU32(body[off+8:]))
		off += 12
		if off+blen > len(body) {
			return nil, fmt.Errorf("policystore: entry %d blob truncated", i)
		}
		snap, err := qlearn.DecodeSnapshot(body[off : off+blen])
		if err != nil {
			return nil, fmt.Errorf("policystore: entry %d: %w", i, err)
		}
		off += blen
		out[sig] = snap
	}
	if off != len(body) {
		return nil, fmt.Errorf("policystore: %d trailing bytes", len(body)-off)
	}
	return out, nil
}
