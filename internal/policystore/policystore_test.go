package policystore

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/qlearn"
)

// snapFor builds a small deterministic snapshot distinguishable by tag.
func snapFor(tag int, n int) *qlearn.Snapshot {
	s := &qlearn.Snapshot{NQueries: 8}
	for i := 0; i < n; i++ {
		s.Entries = append(s.Entries, qlearn.SnapEntry{
			Phase: uint8(policy.JoinPhase), Op: int32(i), Lineage: 1,
			Value: float64(-tag), Visits: uint32(tag), Q: []uint64{1},
		})
	}
	return s
}

func TestCacheGetPutMerge(t *testing.T) {
	c, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Get(42); got != nil {
		t.Fatalf("empty cache returned %+v", got)
	}
	c.Put(42, snapFor(1, 2))
	got := c.Get(42)
	if got == nil || len(got.Entries) != 2 || got.Entries[0].Value != -1 {
		t.Fatalf("Get = %+v, want the stored snapshot", got)
	}

	// Get hands out an isolated copy: mutating it must not leak back.
	got.Entries[0].Value = 99
	if again := c.Get(42); again.Entries[0].Value != -1 {
		t.Fatalf("cached snapshot mutated through a Get copy: %v", again.Entries[0].Value)
	}

	// Put merges by visits: -1@1 folded with -9@3 lands at -7@4.
	c.Put(42, &qlearn.Snapshot{NQueries: 8, Entries: []qlearn.SnapEntry{
		{Phase: uint8(policy.JoinPhase), Op: 0, Lineage: 1, Value: -9, Visits: 3, Q: []uint64{1}},
	}})
	merged := c.Get(42)
	if merged.Entries[0].Value != -7 || merged.Entries[0].Visits != 4 {
		t.Fatalf("merge = (%v, %d), want (-7, 4)", merged.Entries[0].Value, merged.Entries[0].Visits)
	}

	st := c.Stats()
	if st.Entries != 1 || st.Hits != 3 || st.Misses != 1 || st.Stores != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, _ := Open(Options{MaxEntries: 2})
	c.Put(1, snapFor(1, 1))
	c.Put(2, snapFor(2, 1))
	c.Get(1) // touch 1 so 2 is the LRU victim
	c.Put(3, snapFor(3, 1))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Get(2) != nil {
		t.Fatal("LRU victim still cached")
	}
	if c.Get(1) == nil || c.Get(3) == nil {
		t.Fatal("recently used entries evicted")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestCacheSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policy.bin")
	c, _ := Open(Options{Path: path})
	c.Put(7, snapFor(2, 3))
	c.Put(9, snapFor(5, 1))
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reloaded %d entries, want 2", re.Len())
	}
	got := re.Get(7)
	if got == nil || len(got.Entries) != 3 || got.Entries[0].Value != -2 || got.Entries[0].Visits != 2 {
		t.Fatalf("reloaded snapshot = %+v", got)
	}
	if re.Get(9) == nil {
		t.Fatal("second template lost in round trip")
	}
}

func TestCacheOpenMissingFileIsCold(t *testing.T) {
	c, err := Open(Options{Path: filepath.Join(t.TempDir(), "absent.bin")})
	if err != nil {
		t.Fatalf("missing file should cold-start, got %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("cold start has %d entries", c.Len())
	}
}

func TestCacheRejectsCorruptedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policy.bin")
	c, _ := Open(Options{Path: path})
	c.Put(7, snapFor(2, 2))
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(Options{Path: path})
		if err == nil {
			t.Fatalf("flipped byte %d accepted", i)
		}
		// Corruption degrades to a usable empty cache, never a nil one.
		if re == nil || re.Len() != 0 {
			t.Fatalf("corrupted load left cache %+v", re)
		}
	}
	for n := 0; n < len(data); n++ {
		if err := os.WriteFile(path, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(Options{Path: path}); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

// TestCacheConcurrentSaveLoadWhileStoring hammers the cache from
// concurrent writers (streaming sweeps), readers (submits), and
// savers/loaders (operator \policy commands) — the -race CI target.
func TestCacheConcurrentSaveLoadWhileStoring(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.bin")
	c, _ := Open(Options{MaxEntries: 8, Path: path})
	if err := c.Save(); err != nil { // seed a loadable file
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	const iters = 200
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				sig := uint64(rng.Intn(12))
				switch rng.Intn(4) {
				case 0:
					c.Put(sig, snapFor(w+1, 1+rng.Intn(3)))
				case 1:
					if s := c.Get(sig); s != nil {
						s.Entries[0].Value = 123 // copies are ours to scribble on
					}
				case 2:
					if err := c.Save(); err != nil {
						t.Errorf("save: %v", err)
					}
				case 3:
					if err := c.LoadFrom(path); err != nil {
						t.Errorf("load: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("cache exceeded cap: %d", c.Len())
	}
}
