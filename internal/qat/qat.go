// Package qat implements DBMS-V, the vectorized query-at-a-time baseline of
// the paper's evaluation (§6.1): classic optimize-then-execute processing
// with selection pushdown, sampling-based cardinality estimation, greedy
// join ordering, and left-deep vectorized hash-join pipelines.
package qat

import (
	"fmt"
	"sync"
	"time"

	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
	"github.com/roulette-db/roulette/internal/value"
)

// dictOf returns the column's dictionary (nil for int64 columns), for
// typed filter evaluation via query.Filter.Match.
func dictOf(t *storage.Table, col string) *value.Dict {
	if c := t.Rel.Column(col); c != nil {
		return c.Dict
	}
	return nil
}

// Engine is a query-at-a-time vectorized executor over a database.
type Engine struct {
	DB         *storage.Database
	VectorSize int // tuples per pipeline vector (default 1024)
	SampleSize int // rows sampled for selectivity estimation (default 1000)
}

// New returns an engine with default parameters.
func New(db *storage.Database) *Engine {
	return &Engine{DB: db, VectorSize: 1024, SampleSize: 1000}
}

// Step is one relation's role in a left-deep plan.
type Step struct {
	Alias    string
	Table    *storage.Table
	Filters  []query.Filter
	EstRows  float64 // filtered cardinality estimate
	JoinCol  string  // build-side key column (non-driver steps)
	ProbeRel int     // index (into Order) of the relation providing the probe key
	ProbeCol string
	// Residuals are cycle-closing join predicates whose second endpoint is
	// placed by this step; they filter the step's output.
	Residuals []ResCheck
}

// ResCheck compares two placed relations' columns for equality.
type ResCheck struct {
	RelA int // position in Order
	ColA string
	RelB int
	ColB string
}

// Plan is an optimized left-deep execution plan for one SPJ query.
type Plan struct {
	q *query.Query
	// Order is the left-deep relation sequence; Order[0] is the pipeline
	// driver (exported so the MonetDB-style engine and the online-sharing
	// baselines can reuse the optimizer).
	Order []Step
}

// Optimize plans q: push selections down, estimate filtered cardinalities
// by sampling, pick the largest relation as the pipeline driver (fact-table
// heuristic) and greedily attach the smallest adjacent relation next.
func (e *Engine) Optimize(q *query.Query) (*Plan, error) {
	n := len(q.Rels)
	aliases := make([]string, n)
	tables := make([]*storage.Table, n)
	filters := make([][]query.Filter, n)
	aliasIdx := make(map[string]int, n)
	for i, r := range q.Rels {
		a := r.Alias
		if a == "" {
			a = r.Table
		}
		aliases[i] = a
		aliasIdx[a] = i
		t := e.DB.Table(r.Table)
		if t == nil {
			return nil, fmt.Errorf("qat: no table %q", r.Table)
		}
		tables[i] = t
	}
	for _, f := range q.Filters {
		i, ok := aliasIdx[f.Alias]
		if !ok {
			return nil, fmt.Errorf("qat: filter on unknown alias %q", f.Alias)
		}
		filters[i] = append(filters[i], f)
	}

	est := make([]float64, n)
	for i := range est {
		est[i] = float64(tables[i].NumRows()) * e.estimateSelectivity(tables[i], filters[i])
	}

	// Adjacency from join predicates; joins not used to attach a relation
	// (cycle closers) become residual checks.
	type adj struct {
		other              int
		localCol, otherCol string
		join               int
	}
	adjacency := make([][]adj, n)
	used := make([]bool, len(q.Joins))
	joinIdx := make([][2]int, len(q.Joins))
	for ji, j := range q.Joins {
		li, lok := aliasIdx[j.LeftAlias]
		ri, rok := aliasIdx[j.RightAlias]
		if !lok || !rok {
			return nil, fmt.Errorf("qat: join references unknown alias")
		}
		joinIdx[ji] = [2]int{li, ri}
		adjacency[li] = append(adjacency[li], adj{ri, j.LeftCol, j.RightCol, ji})
		adjacency[ri] = append(adjacency[ri], adj{li, j.RightCol, j.LeftCol, ji})
	}

	// Driver: the largest estimated relation (stream the fact, build dims).
	driver := 0
	for i := 1; i < n; i++ {
		if est[i] > est[driver] {
			driver = i
		}
	}

	plan := &Plan{q: q}
	placed := make([]bool, n)
	orderIdx := make([]int, 0, n) // relation index per order position
	placed[driver] = true
	orderIdx = append(orderIdx, driver)
	plan.Order = append(plan.Order, Step{
		Alias: aliases[driver], Table: tables[driver], Filters: filters[driver], EstRows: est[driver],
	})
	for len(orderIdx) < n {
		bestRel, bestFrom, bestJoin := -1, -1, -1
		var bestCols [2]string
		for pos, ri := range orderIdx {
			for _, a := range adjacency[ri] {
				if placed[a.other] {
					continue
				}
				if bestRel == -1 || est[a.other] < est[bestRel] {
					bestRel, bestFrom, bestJoin = a.other, pos, a.join
					bestCols = [2]string{a.localCol, a.otherCol}
				}
			}
		}
		if bestRel == -1 {
			return nil, fmt.Errorf("qat: disconnected join graph in query %q", q.Tag)
		}
		placed[bestRel] = true
		used[bestJoin] = true
		orderIdx = append(orderIdx, bestRel)
		plan.Order = append(plan.Order, Step{
			Alias: aliases[bestRel], Table: tables[bestRel], Filters: filters[bestRel],
			EstRows: est[bestRel],
			JoinCol: bestCols[1], ProbeRel: bestFrom, ProbeCol: bestCols[0],
		})
	}
	// Attach cycle-closing joins as residual checks at the step where both
	// endpoints are placed.
	pos := make([]int, n)
	for p, ri := range orderIdx {
		pos[ri] = p
	}
	for ji, j := range q.Joins {
		if used[ji] {
			continue
		}
		li, ri := joinIdx[ji][0], joinIdx[ji][1]
		pa, pb := pos[li], pos[ri]
		step := pa
		if pb > pa {
			step = pb
		}
		plan.Order[step].Residuals = append(plan.Order[step].Residuals, ResCheck{
			RelA: pos[li], ColA: j.LeftCol, RelB: pos[ri], ColB: j.RightCol,
		})
	}
	return plan, nil
}

// estimateSelectivity samples the table to estimate the conjunctive filter
// selectivity.
func (e *Engine) estimateSelectivity(t *storage.Table, fs []query.Filter) float64 {
	if len(fs) == 0 || t.NumRows() == 0 {
		return 1
	}
	sample := e.SampleSize
	if sample <= 0 {
		sample = 1000
	}
	step := t.NumRows() / sample
	if step == 0 {
		step = 1
	}
	seen, pass := 0, 0
	for r := 0; r < t.NumRows(); r += step {
		seen++
		ok := true
		for _, f := range fs {
			if !f.Match(t.Col(f.Col)[r], dictOf(t, f.Col)) {
				ok = false
				break
			}
		}
		if ok {
			pass++
		}
	}
	if seen == 0 {
		return 1
	}
	// Clamp away from zero so join ordering stays sane on tiny samples.
	sel := float64(pass) / float64(seen)
	if sel < 1e-4 {
		sel = 1e-4
	}
	return sel
}

// hashTable is a build-side hash join table: key -> row IDs.
type hashTable map[int64][]int32

// buildHash filters and hashes one build-side relation.
func buildHash(rp *Step) hashTable {
	ht := make(hashTable, rp.Table.NumRows())
	keyCol := rp.Table.Col(rp.JoinCol)
	n := rp.Table.NumRows()
	for r := 0; r < n; r++ {
		if !passes(rp, r) {
			continue
		}
		k := keyCol[r]
		if k == value.NullCode {
			continue // NULL join keys never match
		}
		ht[k] = append(ht[k], int32(r))
	}
	return ht
}

func passes(rp *Step, r int) bool {
	for _, f := range rp.Filters {
		if !f.Match(rp.Table.Col(f.Col)[r], dictOf(rp.Table, f.Col)) {
			return false
		}
	}
	return true
}

// Execute runs the plan to completion and returns the SPJ result count. The
// pipeline streams the driver in vectors through the probe steps.
func (e *Engine) Execute(p *Plan) int64 {
	n := len(p.Order)
	hts := make([]hashTable, n)
	for i := 1; i < n; i++ {
		hts[i] = buildHash(&p.Order[i])
	}

	vec := e.VectorSize
	if vec <= 0 {
		vec = 1024
	}
	driver := &p.Order[0]
	rows := driver.Table.NumRows()

	probeCols := make([][]int64, n)
	for i := 1; i < n; i++ {
		probeCols[i] = p.Order[p.Order[i].ProbeRel].Table.Col(p.Order[i].ProbeCol)
	}

	var count int64
	driverVids := make([]int32, 0, vec)
	for base := 0; base < rows; base += vec {
		end := base + vec
		if end > rows {
			end = rows
		}
		driverVids = driverVids[:0]
		for r := base; r < end; r++ {
			if passes(driver, r) {
				driverVids = append(driverVids, int32(r))
			}
		}
		// cur holds partial matches: one vID column per placed relation.
		cur := [][]int32{driverVids}
		for step := 1; step < n && len(cur[0]) > 0; step++ {
			rp := &p.Order[step]
			next := make([][]int32, step+1)
			probeFrom := cur[rp.ProbeRel]
			keyCol := probeCols[step]
			ht := hts[step]
			for i := range cur[0] {
				key := keyCol[probeFrom[i]]
				for _, m := range ht[key] {
					for c := 0; c < step; c++ {
						next[c] = append(next[c], cur[c][i])
					}
					next[step] = append(next[step], m)
				}
			}
			cur = applyResiduals(p, step, next)
		}
		if len(cur) == n {
			count += int64(len(cur[0]))
		}
	}
	return count
}

// applyResiduals filters a step's output rows with the step's cycle-closing
// predicates.
func applyResiduals(p *Plan, step int, rows [][]int32) [][]int32 {
	checks := p.Order[step].Residuals
	if len(checks) == 0 || len(rows[0]) == 0 {
		return rows
	}
	out := 0
	for i := range rows[0] {
		keep := true
		for _, rc := range checks {
			a := p.Order[rc.RelA].Table.Col(rc.ColA)[rows[rc.RelA][i]]
			b := p.Order[rc.RelB].Table.Col(rc.ColB)[rows[rc.RelB][i]]
			if a != b || a == value.NullCode {
				keep = false // NULL = NULL is not a match
				break
			}
		}
		if keep {
			for c := range rows {
				rows[c][out] = rows[c][i]
			}
			out++
		}
	}
	for c := range rows {
		rows[c] = rows[c][:out]
	}
	return rows
}

// Run optimizes and executes one query.
func (e *Engine) Run(q *query.Query) (int64, error) {
	p, err := e.Optimize(q)
	if err != nil {
		return 0, err
	}
	return e.Execute(p), nil
}

// RunSerial executes queries one after the other (the query-at-a-time
// throughput measurement) and returns per-query counts plus total time.
func (e *Engine) RunSerial(qs []*query.Query) ([]int64, time.Duration, error) {
	counts := make([]int64, len(qs))
	start := time.Now()
	for i, q := range qs {
		c, err := e.Run(q)
		if err != nil {
			return nil, 0, err
		}
		counts[i] = c
	}
	return counts, time.Since(start), nil
}

// RunConcurrent executes queries with the given number of concurrent
// clients (Fig. 20's inter-query interference experiment).
func (e *Engine) RunConcurrent(qs []*query.Query, clients int) ([]int64, time.Duration, error) {
	if clients <= 1 {
		return e.RunSerial(qs)
	}
	counts := make([]int64, len(qs))
	errs := make([]error, clients)
	var next int
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(qs) {
					return
				}
				cnt, err := e.Run(qs[i])
				if err != nil {
					errs[client] = err
					return
				}
				counts[i] = cnt
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	return counts, time.Since(start), nil
}

// PlanOrder exposes the planned relation order (alias sequence) — used by
// the Stitch&Share baseline to derive per-query shared-engine orders.
func (p *Plan) PlanOrder() []string {
	out := make([]string, len(p.Order))
	for i := range p.Order {
		out[i] = p.Order[i].Alias
	}
	return out
}
