package qat

import (
	"math/rand"
	"testing"

	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
)

// tinyDB: fact(fk1, fk2, v), d1(k, a), d2(k, a) with known contents.
func tinyDB(rng *rand.Rand, factRows, dimRows int) *storage.Database {
	fact := catalog.NewRelation("fact", "fk1", "fk2", "v")
	d1 := catalog.NewRelation("d1", "k", "a")
	d2 := catalog.NewRelation("d2", "k", "a")
	sch := catalog.NewSchema(fact, d1, d2)
	db := storage.NewDatabase(sch)
	ft := storage.NewTable(fact, factRows)
	for i := 0; i < factRows; i++ {
		ft.Col("fk1")[i] = int64(rng.Intn(dimRows))
		ft.Col("fk2")[i] = int64(rng.Intn(dimRows))
		ft.Col("v")[i] = int64(rng.Intn(100))
	}
	db.Put(ft)
	for _, nm := range []string{"d1", "d2"} {
		dt := storage.NewTable(sch.Relation(nm), dimRows)
		for i := 0; i < dimRows; i++ {
			dt.Col("k")[i] = int64(i)
			dt.Col("a")[i] = int64(rng.Intn(100))
		}
		db.Put(dt)
	}
	return db
}

// bruteCount is an exhaustive evaluation for ground truth.
func bruteCount(db *storage.Database, q *query.Query) int64 {
	tables := make([]*storage.Table, len(q.Rels))
	alias := map[string]int{}
	for i, r := range q.Rels {
		tables[i] = db.MustTable(r.Table)
		a := r.Alias
		if a == "" {
			a = r.Table
		}
		alias[a] = i
	}
	var count int64
	pick := make([]int, len(q.Rels))
	var rec func(d int)
	rec = func(d int) {
		if d == len(q.Rels) {
			for _, f := range q.Filters {
				v := tables[alias[f.Alias]].Col(f.Col)[pick[alias[f.Alias]]]
				if v < f.Lo || v > f.Hi {
					return
				}
			}
			for _, j := range q.Joins {
				lv := tables[alias[j.LeftAlias]].Col(j.LeftCol)[pick[alias[j.LeftAlias]]]
				rv := tables[alias[j.RightAlias]].Col(j.RightCol)[pick[alias[j.RightAlias]]]
				if lv != rv {
					return
				}
			}
			count++
			return
		}
		for r := 0; r < tables[d].NumRows(); r++ {
			pick[d] = r
			rec(d + 1)
		}
	}
	rec(0)
	return count
}

func randomQuery(rng *rand.Rand) *query.Query {
	q := &query.Query{
		Rels:  []query.RelRef{{Table: "fact"}, {Table: "d1"}},
		Joins: []query.Join{{LeftAlias: "fact", LeftCol: "fk1", RightAlias: "d1", RightCol: "k"}},
	}
	if rng.Intn(2) == 0 {
		q.Rels = append(q.Rels, query.RelRef{Table: "d2"})
		q.Joins = append(q.Joins, query.Join{LeftAlias: "fact", LeftCol: "fk2", RightAlias: "d2", RightCol: "k"})
	}
	if rng.Intn(2) == 0 {
		lo := int64(rng.Intn(70))
		q.Filters = append(q.Filters, query.Filter{Alias: "fact", Col: "v", Lo: lo, Hi: lo + 25})
	}
	if rng.Intn(3) == 0 {
		lo := int64(rng.Intn(70))
		q.Filters = append(q.Filters, query.Filter{Alias: "d1", Col: "a", Lo: lo, Hi: lo + 40})
	}
	return q
}

func TestQatMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := tinyDB(rng, 60, 12)
	e := New(db)
	e.VectorSize = 16
	for i := 0; i < 25; i++ {
		q := randomQuery(rng)
		got, err := e.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteCount(db, q)
		if got != want {
			t.Errorf("query %d: qat = %d, brute = %d", i, got, want)
		}
	}
}

func TestQatSingleRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := tinyDB(rng, 50, 10)
	q := &query.Query{
		Rels:    []query.RelRef{{Table: "fact"}},
		Filters: []query.Filter{{Alias: "fact", Col: "v", Lo: 0, Hi: 49}},
	}
	got, err := New(db).Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteCount(db, q); got != want {
		t.Errorf("got %d, want %d", got, want)
	}
}

func TestQatPlanDriverIsLargest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := tinyDB(rng, 500, 10)
	q := randomQuery(rng)
	p, err := New(db).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Order[0].Alias != "fact" {
		t.Errorf("driver = %s, want fact", p.Order[0].Alias)
	}
	if len(p.PlanOrder()) != len(q.Rels) {
		t.Errorf("plan order incomplete: %v", p.PlanOrder())
	}
}

func TestQatErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db := tinyDB(rng, 10, 4)
	e := New(db)
	if _, err := e.Run(&query.Query{Rels: []query.RelRef{{Table: "nope"}}}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := e.Run(&query.Query{
		Rels:    []query.RelRef{{Table: "fact"}},
		Filters: []query.Filter{{Alias: "zzz", Col: "v", Lo: 0, Hi: 1}},
	}); err == nil {
		t.Error("unknown filter alias accepted")
	}
	// Disconnected (no joins, 2 rels).
	if _, err := e.Run(&query.Query{
		Rels: []query.RelRef{{Table: "fact"}, {Table: "d1"}},
	}); err == nil {
		t.Error("disconnected query accepted")
	}
}

func TestQatConcurrentMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := tinyDB(rng, 80, 10)
	e := New(db)
	var qs []*query.Query
	for i := 0; i < 12; i++ {
		qs = append(qs, randomQuery(rng))
	}
	serial, _, err := e.RunSerial(qs)
	if err != nil {
		t.Fatal(err)
	}
	conc, _, err := e.RunConcurrent(qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != conc[i] {
			t.Errorf("query %d: serial %d != concurrent %d", i, serial[i], conc[i])
		}
	}
}

func TestQatCyclicResidualPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	db := tinyDB(rng, 40, 8)
	q := &query.Query{
		Rels: []query.RelRef{{Table: "fact"}, {Table: "d1"}, {Table: "d2"}},
		Joins: []query.Join{
			{LeftAlias: "fact", LeftCol: "fk1", RightAlias: "d1", RightCol: "k"},
			{LeftAlias: "fact", LeftCol: "fk2", RightAlias: "d2", RightCol: "k"},
			{LeftAlias: "d1", LeftCol: "a", RightAlias: "d2", RightCol: "a"},
		},
	}
	e := New(db)
	p, err := e.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := range p.Order {
		total += len(p.Order[i].Residuals)
	}
	if total != 1 {
		t.Fatalf("residual checks = %d, want 1", total)
	}
	if len(p.Order[len(p.Order)-1].Residuals) != 1 {
		t.Error("residual must attach to the step placing its second endpoint")
	}
	got := e.Execute(p)
	if want := bruteCount(db, q); got != want {
		t.Errorf("cyclic execute = %d, brute = %d", got, want)
	}
}
