package qlearn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/query"
)

// TestPruneRetiredMatchesReference is the equivalence property for the GC
// path: pruning the open-addressing table and the map-based reference with
// the same retired set must remove the same states and leave every
// surviving Q-value readable.
func TestPruneRetiredMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := newTableSized(8)
		ref := NewRefTable()
		ops := genOps(rng, 400)
		for _, o := range ops {
			tbl.Slot(o.phase, o.inst, o.lineage, o.q, o.op).value = o.value
			ref.Set(o.phase, o.inst, o.lineage, o.q, o.op, o.value)
		}

		retired := bitset.New(1 + rng.Intn(300))
		for b := 0; b < len(retired)*64; b++ {
			if rng.Intn(5) == 0 {
				retired.Add(b)
			}
		}
		if got, want := tbl.PruneRetired(retired), ref.PruneRetired(retired); got != want {
			t.Logf("seed %d: pruned %d, reference pruned %d", seed, got, want)
			return false
		}
		if tbl.Len() != ref.Len() {
			return false
		}
		for _, o := range ops {
			if tbl.Get(o.phase, o.inst, o.lineage, o.q, o.op) !=
				ref.Get(o.phase, o.inst, o.lineage, o.q, o.op) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPruneRetiredIntersection pins the intersection (not subset-of-
// retired) semantics: a state shared between a retired and a live query
// must go too, because after the retired ID is recycled the stale prior
// would seed an unrelated query's Q-value.
func TestPruneRetiredIntersection(t *testing.T) {
	tbl := NewTable()
	shared := bitset.FromIDs(4, 0, 1)
	liveOnly := bitset.FromIDs(4, 0)
	retiredOnly := bitset.FromIDs(4, 1)
	for i, q := range []bitset.Set{shared, liveOnly, retiredOnly} {
		tbl.Slot(policy.SelPhase, query.InstID(0), 1, q, i).value = float64(i + 1)
	}

	retired := bitset.FromIDs(4, 1)
	if removed := tbl.PruneRetired(retired); removed != 2 {
		t.Fatalf("PruneRetired removed %d states, want 2 (shared and retired-only)", removed)
	}
	if v := tbl.Get(policy.SelPhase, 0, 1, liveOnly, 1); v != 2 {
		t.Errorf("live-only state = %v after prune, want 2", v)
	}
	if v := tbl.Get(policy.SelPhase, 0, 1, shared, 0); v != 0 {
		t.Errorf("shared state = %v after prune, want pruned (0)", v)
	}

	// No intersection: nothing to do, table untouched.
	if removed := tbl.PruneRetired(bitset.FromIDs(4, 3)); removed != 0 {
		t.Errorf("disjoint PruneRetired removed %d, want 0", removed)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d, want 1", tbl.Len())
	}
}

// TestLearnedPruneRetired exercises the policy-level wrapper the engine's
// GC actually calls.
func TestLearnedPruneRetired(t *testing.T) {
	l := New(DefaultConfig())
	q := bitset.FromIDs(4, 2)
	l.table.Slot(policy.SelPhase, 0, 1, q, 0).value = 5
	if removed := l.PruneRetired(bitset.FromIDs(4, 2)); removed != 1 {
		t.Fatalf("Learned.PruneRetired = %d, want 1", removed)
	}
	if l.table.Len() != 0 {
		t.Errorf("table has %d states after prune, want 0", l.table.Len())
	}
}
