// Package qlearn implements RouLette's specialized Q-learning policy
// (§4.2–4.3). The MDP over stacks of extended vectors is reduced — via the
// independence and proportionality properties of cumulative rewards — to
// singleton states (L, Q): Q-values are normalized per input tuple and the
// update rule bootstraps separately through the sharing and divergence
// branches (Algorithm 2).
//
// The Q-table is a sparse open-addressing hash table keyed by the packed
// (phase, inst, L, Q, op) components (see table.go) with optimistic (zero)
// initialization; rewards are negative operator costs from the linear cost
// model, so unexplored actions look maximally attractive, driving early
// exploration. Steady-state accesses — choose, qValue, Observe over known
// states — never allocate.
package qlearn

import (
	"math/rand"
	"sync"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/cost"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/query"
)

// Config holds the Q-learning hyper-parameters. The defaults are the
// paper's grid-searched values (§6): µ=0.21, ε=0.014, γ=1.
type Config struct {
	Mu      float64 // learning rate µ
	Epsilon float64 // exploration probability ε
	Gamma   float64 // discount rate γ (future costs weigh fully at 1)
	Seed    int64
	Model   *cost.Model // nil means cost.Default()
}

// DefaultConfig returns the paper's tuned hyper-parameters.
func DefaultConfig() Config {
	return Config{Mu: 0.21, Epsilon: 0.014, Gamma: 1, Seed: 1}
}

// Learned is the reinforcement-learning policy. It is safe for concurrent
// use; decisions and updates share one mutex (policy updates are rare
// critical sections relative to execution, §5.2).
type Learned struct {
	cfg   Config
	model *cost.Model

	mu    sync.Mutex
	rng   *rand.Rand
	table *Table

	// Decision counters (observability): explores took the ε-random branch,
	// exploits the greedy argmax branch. Updated under mu; plain fields keep
	// the choose hot path allocation-free.
	explores int64
	exploits int64

	// warm marks a policy seeded from a snapshot import: ε was dropped
	// toward exploit-mode because prior runs already paid for exploration.
	warm bool
}

// New creates a learned policy for a compiled batch.
func New(cfg Config) *Learned {
	m := cfg.Model
	if m == nil {
		m = cost.Default()
	}
	return &Learned{
		cfg:   cfg,
		model: m,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		table: NewTable(),
	}
}

// TableSize returns the number of explored (state, action) triplets.
func (l *Learned) TableSize() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.table.Len()
}

// PruneRetired drops every Q-table state whose query-set component
// intersects the retired set (see Table.PruneRetired for why intersection,
// not subset). Called by the streaming engine's GC once retired queries'
// execution state has been swept; returns the number of pruned states.
func (l *Learned) PruneRetired(retired bitset.Set) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.table.PruneRetired(retired)
}

// ActionCounts returns how many decisions took the ε-exploration branch and
// how many the greedy branch, over the policy's lifetime.
func (l *Learned) ActionCounts() (explores, exploits int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.explores, l.exploits
}

// qValue reads Q((L,Q),op); unexplored pairs are 0 (optimistic: costs are
// negative). For the selection phase, L is the applied-operator mask and
// the instance disambiguates.
func (l *Learned) qValue(phase policy.Phase, inst query.InstID, lineage uint64, q bitset.Set, op int) float64 {
	return l.table.Get(phase, inst, lineage, q, op)
}

// bestOf returns max_a Q((L,Q),a) over cands (0 for an empty candidate set:
// a terminal state's future cost).
func (l *Learned) bestOf(phase policy.Phase, inst query.InstID, lineage uint64, q bitset.Set, cands []int) float64 {
	if len(cands) == 0 {
		return 0
	}
	best := l.qValue(phase, inst, lineage, q, cands[0])
	for _, op := range cands[1:] {
		if v := l.qValue(phase, inst, lineage, q, op); v > best {
			best = v
		}
	}
	return best
}

// choose implements Algorithm 2's NEXT_OPERATOR: ε-random, else argmax Q.
func (l *Learned) choose(phase policy.Phase, inst query.InstID, lineage uint64, q bitset.Set, cands []int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rng.Float64() < l.cfg.Epsilon {
		l.explores++
		return l.rng.Intn(len(cands))
	}
	l.exploits++
	best, bestV := 0, l.qValue(phase, inst, lineage, q, cands[0])
	for i := 1; i < len(cands); i++ {
		if v := l.qValue(phase, inst, lineage, q, cands[i]); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// ChooseJoin picks the next probe edge for virtual vector (lineage, q).
func (l *Learned) ChooseJoin(_ query.InstID, lineage uint64, q bitset.Set, cands []int) int {
	return l.choose(policy.JoinPhase, 0, lineage, q, cands)
}

// ChooseSel picks the next selection operator on inst.
func (l *Learned) ChooseSel(inst query.InstID, applied uint64, q bitset.Set, cands []int) int {
	return l.choose(policy.SelPhase, inst, applied, q, cands)
}

// Observe applies Algorithm 2's UPDATE rule for every log entry:
//
//	r  = (−κ_o·n_in − λ_o·n_out + γ·n_out·max_a Q(L∪{o}, Q∩Q_o, a)) / n_in
//	r += (−κ_σ·n_in − λ_σ·n_div + γ·n_div·max_a Q(L, Q−Q_o, a)) / n_in   [divergence]
//	Q(L,Q,o) ← (1−µ)·Q(L,Q,o) + µ·r
//
// Entries are processed in reverse execution order (leaves of the episode
// plan first), so bootstrapped future costs propagate through the whole
// plan within a single episode instead of one level per episode — critical
// for convergence speed on deep plans.
func (l *Learned) Observe(entries []policy.LogEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := len(entries) - 1; i >= 0; i-- {
		e := &entries[i]
		if e.NIn == 0 {
			continue
		}
		nIn := float64(e.NIn)
		nOut := float64(e.NOut)

		opClass := cost.Join
		if e.Phase == policy.SelPhase {
			opClass = cost.Selection
		}

		q := l.bestOf(e.Phase, e.Inst, e.MainLineage, e.QMain, e.MainCands)
		r := (-l.model.Kappa[opClass]*nIn - l.model.Lambda[opClass]*nOut + l.cfg.Gamma*nOut*q) / nIn

		if e.NDiv >= 0 {
			nDiv := float64(e.NDiv)
			q2 := l.bestOf(e.Phase, e.Inst, e.Lineage, e.DivQ, e.DivCands)
			r += (-l.model.Kappa[cost.RoutingSelection]*nIn - l.model.Lambda[cost.RoutingSelection]*nDiv + l.cfg.Gamma*nDiv*q2) / nIn
		}

		s := l.table.Slot(e.Phase, e.Inst, e.Lineage, e.Q, e.Op)
		s.value = (1-l.cfg.Mu)*s.value + l.cfg.Mu*r
		s.visits++
	}
}

// EstimatedBestCost returns −max_a Q((L,Q),a) over cands: the policy's
// current estimate of the minimum cumulative cost per input tuple at
// (L, Q). The learning-rate experiment (Fig. 16) plots this estimate
// against measured episode cost.
func (l *Learned) EstimatedBestCost(phase policy.Phase, inst query.InstID, lineage uint64, q bitset.Set, cands []int) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return -l.bestOf(phase, inst, lineage, q, cands)
}

// BestJoin returns the purely greedy (ε = 0) choice among cands at join
// state (lineage, q) — the converged plan extraction used when simulating
// sharing-oblivious learned planning (Stitch&Share-Sim, §6.2).
func (l *Learned) BestJoin(lineage uint64, q bitset.Set, cands []int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	best, bestV := 0, l.qValue(policy.JoinPhase, 0, lineage, q, cands[0])
	for i := 1; i < len(cands); i++ {
		if v := l.qValue(policy.JoinPhase, 0, lineage, q, cands[i]); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
