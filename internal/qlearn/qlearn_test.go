package qlearn

import (
	"math"
	"testing"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/cost"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/query"
)

// The toy MDP: tuples from R can probe edge 0 (R⋈S) or edge 1 (R⋈T), then
// must take the remaining edge. Selectivities are correlated so that the
// myopically cheaper first probe (edge 0, selectivity 0.5 < 0.9) leads to a
// more expensive plan overall:
//
//	order S,T: 1→0.5→1.0   total cost ≈ 122.8 per input tuple
//	order T,S: 1→0.9→0.009 total cost ≈ 112.5 per input tuple
//
// A selectivity-greedy policy picks S first; Q-learning must learn T first.
const (
	lR  = uint64(1) << 0
	lRS = lR | 1<<1
	lRT = lR | 1<<2
)

func runToyEpisode(l *Learned, q bitset.Set, nIn int) (firstEdge int, measured float64) {
	m := cost.Default()
	cands0 := []int{0, 1}
	d := l.ChooseJoin(0, lR, q, cands0)
	first := cands0[d]

	var entries []policy.LogEntry
	if first == 0 {
		out1 := nIn / 2
		out2 := out1 * 2
		entries = []policy.LogEntry{
			{Phase: policy.JoinPhase, Lineage: lR, Q: q, Op: 0, NIn: nIn, NOut: out1, NDiv: -1,
				MainLineage: lRS, QMain: q, MainCands: []int{1}},
			{Phase: policy.JoinPhase, Lineage: lRS, Q: q, Op: 1, NIn: out1, NOut: out2, NDiv: -1,
				MainLineage: lRS | lRT, QMain: q, MainCands: nil},
		}
		measured = m.Cost(cost.Join, float64(nIn), float64(out1)) + m.Cost(cost.Join, float64(out1), float64(out2))
	} else {
		out1 := nIn * 9 / 10
		out2 := out1 / 100
		entries = []policy.LogEntry{
			{Phase: policy.JoinPhase, Lineage: lR, Q: q, Op: 1, NIn: nIn, NOut: out1, NDiv: -1,
				MainLineage: lRT, QMain: q, MainCands: []int{0}},
			{Phase: policy.JoinPhase, Lineage: lRT, Q: q, Op: 0, NIn: out1, NOut: out2, NDiv: -1,
				MainLineage: lRS | lRT, QMain: q, MainCands: nil},
		}
		measured = m.Cost(cost.Join, float64(nIn), float64(out1)) + m.Cost(cost.Join, float64(out1), float64(out2))
	}
	l.Observe(entries)
	return first, measured
}

func TestLearnsLongTermOptimalOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epsilon = 0.1 // explore enough to see both arms quickly
	l := New(cfg)
	q := bitset.NewFull(1)

	for ep := 0; ep < 2000; ep++ {
		runToyEpisode(l, q, 1000)
	}
	// After convergence, greedy-in-Q decisions must pick edge 1 (T first).
	cfg2 := cfg
	picked1 := 0
	_ = cfg2
	for i := 0; i < 100; i++ {
		if d := l.ChooseJoin(0, lR, q, []int{0, 1}); d == 1 {
			picked1++
		}
	}
	if picked1 < 85 { // ε=0.1 still explores ~10%
		t.Fatalf("policy picks long-term-optimal edge only %d/100 times", picked1)
	}

	// The Q-value estimate at the root must approach the true optimal cost
	// per input tuple (≈112.5).
	est := l.EstimatedBestCost(policy.JoinPhase, 0, lR, q, []int{0, 1})
	if math.Abs(est-112.5) > 10 {
		t.Errorf("estimated best cost per tuple = %.1f, want ≈112.5", est)
	}
}

func TestGreedyPicksMyopicOrderOnSameMDP(t *testing.T) {
	// Contrast: the greedy selectivity policy, fed the same observations,
	// keeps picking edge 0 — the paper's motivating failure.
	g := policyGreedyForToy()
	q := bitset.NewFull(1)
	// Feed it both arms' stats.
	g.Observe([]policy.LogEntry{
		{Phase: policy.JoinPhase, Op: 0, NIn: 1000, NOut: 500},
		{Phase: policy.JoinPhase, Op: 1, NIn: 1000, NOut: 900},
	})
	if d := g.ChooseJoin(0, lR, q, []int{0, 1}); d != 0 {
		t.Fatalf("greedy picked %d, expected the myopic edge 0", d)
	}
}

func policyGreedyForToy() *policy.Greedy {
	q := &query.Query{
		Rels: []query.RelRef{{Table: "R"}, {Table: "S"}, {Table: "T"}},
		Joins: []query.Join{
			{LeftAlias: "R", LeftCol: "a", RightAlias: "S", RightCol: "a"},
			{LeftAlias: "R", LeftCol: "b", RightAlias: "T", RightCol: "b"},
		},
	}
	b, err := query.Compile([]*query.Query{q})
	if err != nil {
		panic(err)
	}
	return policy.NewGreedy(b, 0)
}

func TestDivergenceUpdatePath(t *testing.T) {
	// One shared step with divergence: Q={0,1}, edge 0 belongs to q0 only.
	l := New(Config{Mu: 0.5, Epsilon: 0, Gamma: 1, Seed: 1})
	q := bitset.NewFull(2)
	q0 := bitset.FromIDs(2, 0)
	q1 := bitset.FromIDs(2, 1)

	e := policy.LogEntry{
		Phase: policy.JoinPhase, Lineage: lR, Q: q, Op: 0,
		NIn: 100, NOut: 50, NDiv: 40,
		MainLineage: lRS, QMain: q0, MainCands: nil,
		DivQ: q1, DivCands: nil,
	}
	l.Observe([]policy.LogEntry{e})
	if l.TableSize() != 1 {
		t.Fatalf("table size = %d, want 1", l.TableSize())
	}
	// Expected r = (−κj·100 − λj·50)/100 + (−κσ·100 − λσ·40)/100, µ=0.5.
	m := cost.Default()
	wantR := (-m.Kappa[cost.Join]*100-m.Lambda[cost.Join]*50)/100 +
		(-m.Kappa[cost.RoutingSelection]*100-m.Lambda[cost.RoutingSelection]*40)/100
	got := -l.EstimatedBestCost(policy.JoinPhase, 0, lR, q, []int{0})
	if math.Abs(got-0.5*wantR) > 1e-9 {
		t.Errorf("Q after one update = %v, want %v", got, 0.5*wantR)
	}
}

func TestZeroInputEntriesSkipped(t *testing.T) {
	l := New(DefaultConfig())
	l.Observe([]policy.LogEntry{{Phase: policy.JoinPhase, Lineage: lR, Q: bitset.NewFull(1), Op: 0, NIn: 0, NOut: 0, NDiv: -1}})
	if l.TableSize() != 0 {
		t.Errorf("zero-input entry created a table entry")
	}
}

func TestSelectionPhaseKeysAreDistinctPerInstance(t *testing.T) {
	l := New(Config{Mu: 1, Epsilon: 0, Gamma: 1, Seed: 1})
	q := bitset.NewFull(1)
	mk := func(inst int, nOut int) policy.LogEntry {
		return policy.LogEntry{
			Phase: policy.SelPhase, Inst: query.InstID(inst), Lineage: 0, Q: q, Op: 0,
			NIn: 100, NOut: nOut, NDiv: -1, MainLineage: 1, QMain: q,
		}
	}
	l.Observe([]policy.LogEntry{mk(0, 10), mk(1, 90)})
	if l.TableSize() != 2 {
		t.Fatalf("selection states on different instances collided: table size %d", l.TableSize())
	}
}

func TestEpsilonExploresUniformly(t *testing.T) {
	l := New(Config{Mu: 0.2, Epsilon: 1, Gamma: 1, Seed: 42})
	q := bitset.NewFull(1)
	counts := [3]int{}
	for i := 0; i < 3000; i++ {
		counts[l.ChooseJoin(0, lR, q, []int{0, 1, 2})]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("candidate %d chosen %d/3000 with ε=1", i, c)
		}
	}
}

// TestProportionalityInvariance checks the §4.3 reduction empirically: the
// update rule normalizes per input tuple, so scaling every cardinality in a
// log by a constant must leave the learned Q-values (and therefore all
// decisions) unchanged.
func TestProportionalityInvariance(t *testing.T) {
	mkLog := func(scale int) []policy.LogEntry {
		q := bitset.NewFull(2)
		q0 := bitset.FromIDs(2, 0)
		q1 := bitset.FromIDs(2, 1)
		return []policy.LogEntry{
			{Phase: policy.JoinPhase, Lineage: lR, Q: q, Op: 0,
				NIn: 100 * scale, NOut: 60 * scale, NDiv: 40 * scale,
				MainLineage: lRS, QMain: q0, MainCands: []int{1},
				DivQ: q1, DivCands: []int{1}},
			{Phase: policy.JoinPhase, Lineage: lRS, Q: q0, Op: 1,
				NIn: 60 * scale, NOut: 30 * scale, NDiv: -1,
				MainLineage: lRS | lRT, QMain: q0, MainCands: nil},
		}
	}
	a := New(Config{Mu: 0.3, Epsilon: 0, Gamma: 1, Seed: 1})
	b := New(Config{Mu: 0.3, Epsilon: 0, Gamma: 1, Seed: 1})
	for i := 0; i < 50; i++ {
		a.Observe(mkLog(1))
		b.Observe(mkLog(7))
	}
	q := bitset.NewFull(2)
	va := a.EstimatedBestCost(policy.JoinPhase, 0, lR, q, []int{0})
	vb := b.EstimatedBestCost(policy.JoinPhase, 0, lR, q, []int{0})
	if math.Abs(va-vb) > 1e-9 {
		t.Errorf("Q-values differ under input scaling: %v vs %v", va, vb)
	}
	if va == 0 {
		t.Error("no learning happened")
	}
}

// TestActionCounts checks the explore/exploit decision counters at the
// epsilon extremes.
func TestActionCounts(t *testing.T) {
	q := bitset.NewFull(4)
	cands := []int{0, 1, 2}

	greedy := New(Config{Mu: 0.2, Epsilon: 0, Gamma: 1, Seed: 1})
	for i := 0; i < 20; i++ {
		greedy.ChooseJoin(0, 1, q, cands)
	}
	if ex, gr := greedy.ActionCounts(); ex != 0 || gr != 20 {
		t.Errorf("epsilon=0: counts = (%d, %d), want (0, 20)", ex, gr)
	}

	explorer := New(Config{Mu: 0.2, Epsilon: 1, Gamma: 1, Seed: 1})
	for i := 0; i < 20; i++ {
		explorer.ChooseSel(0, 0, q, cands)
	}
	if ex, gr := explorer.ActionCounts(); ex != 20 || gr != 0 {
		t.Errorf("epsilon=1: counts = (%d, %d), want (20, 0)", ex, gr)
	}
}
