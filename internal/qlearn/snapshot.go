package qlearn

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/query"
)

// This file is the cross-batch persistence layer of the Q-table
// (DESIGN.md §14): a run's learned state is exported into a Snapshot keyed
// by *template-relative* identities (canonical query indices, instances,
// edge and selection-operator IDs chosen by the caller's Remap), encoded
// as a versioned checksummed binary blob, and re-imported into a later
// run by remapping every component back onto that run's live positional
// IDs. All of it runs off the episode hot path: export under the
// streaming GC / batch teardown, import at submit/compile time.

// Remap translates every ID space a Q-table entry references from one
// naming (live positional IDs, or canonical template-relative indices)
// into another. Each slice maps source ID -> target ID; -1 (or an
// out-of-range source) drops entries referencing that component, which is
// how stale state — a retired query's bit, an operator the new run does
// not have — is filtered during import.
type Remap struct {
	// NQ is the target query-ID capacity: remapped query sets are sized
	// for NQ bits.
	NQ     int
	Query  []int   // query ID -> query ID
	Inst   []int   // instance ID -> instance ID
	JoinOp []int   // join-phase op (edge ID) -> edge ID
	SelOp  []int   // sel-phase op (global sel-op ID) -> sel-op ID
	SelBit [][]int // [source instance][per-instance lineage bit] -> bit
}

// SnapEntry is one exported (state, action) pair. Q holds the trimmed
// query-set words.
type SnapEntry struct {
	Phase   uint8
	Inst    uint8
	Op      int32
	Lineage uint64
	Value   float64
	Visits  uint32
	Q       []uint64
}

// Snapshot is a template-relative export of a Q-table.
type Snapshot struct {
	NQueries int
	Entries  []SnapEntry
}

// mapID translates one ID, reporting false for dropped ones.
func mapID(m []int, id int) (int, bool) {
	if id < 0 || id >= len(m) || m[id] < 0 {
		return 0, false
	}
	return m[id], true
}

// mapBits translates a 64-bit lineage mask bit-by-bit.
func mapBits(mask uint64, m []int) (uint64, bool) {
	var out uint64
	for mask != 0 {
		b := bits.TrailingZeros64(mask)
		mask &= mask - 1
		t, ok := mapID(m, b)
		if !ok || t >= 64 {
			return 0, false
		}
		out |= uint64(1) << uint(t)
	}
	return out, true
}

// remapEntry rewrites every component of se through rm. ok=false drops the
// entry (it references a component absent from the target naming).
func remapEntry(se SnapEntry, rm *Remap) (SnapEntry, bool) {
	out := SnapEntry{Phase: se.Phase, Value: se.Value, Visits: se.Visits}

	switch policy.Phase(se.Phase) {
	case policy.JoinPhase:
		// inst is semantically constant (ChooseJoin always passes 0), so it
		// is preserved, not remapped; lineage is the visited-instance
		// bitmask; op is the shared edge ID.
		op, ok := mapID(rm.JoinOp, int(se.Op))
		if !ok {
			return out, false
		}
		lin, ok := mapBits(se.Lineage, rm.Inst)
		if !ok {
			return out, false
		}
		out.Inst, out.Op, out.Lineage = se.Inst, int32(op), lin
	case policy.SelPhase:
		// inst disambiguates; lineage is the per-instance applied-operator
		// bit mask; op is the global selection-operator ID.
		inst, ok := mapID(rm.Inst, int(se.Inst))
		if !ok || inst > math.MaxUint8 {
			return out, false
		}
		op, ok := mapID(rm.SelOp, int(se.Op))
		if !ok {
			return out, false
		}
		var selBits []int
		if int(se.Inst) < len(rm.SelBit) {
			selBits = rm.SelBit[se.Inst]
		}
		lin, ok := mapBits(se.Lineage, selBits)
		if !ok {
			return out, false
		}
		out.Inst, out.Op, out.Lineage = uint8(inst), int32(op), lin
	default:
		return out, false
	}

	// Query-set bits remap through rm.Query into an NQ-capacity set. An
	// entry mentioning an unmapped query is stale: drop it.
	q := bitset.New(rm.NQ)
	for wi, w := range se.Q {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			t, ok := mapID(rm.Query, wi*64+b)
			if !ok || t >= rm.NQ {
				return out, false
			}
			q.Add(t)
		}
	}
	if q.Empty() {
		return out, false
	}
	out.Q = append([]uint64(nil), q[:trimmedWords(q)]...)
	return out, true
}

// entrySet rebuilds a tableEntry's query set as a bitset.
func entrySet(e *tableEntry) bitset.Set {
	q := make(bitset.Set, e.qlen)
	ni := int(e.qlen)
	if ni > qInlineWords {
		ni = qInlineWords
	}
	copy(q[:ni], e.qw[:ni])
	if int(e.qlen) > qInlineWords {
		copy(q[qInlineWords:], e.qext)
	}
	return q
}

// sortEntries orders entries canonically so exports (and their encodings)
// are deterministic regardless of hash-table iteration order.
func sortEntries(es []SnapEntry) {
	sort.Slice(es, func(i, j int) bool {
		a, b := &es[i], &es[j]
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		if a.Inst != b.Inst {
			return a.Inst < b.Inst
		}
		if a.Lineage != b.Lineage {
			return a.Lineage < b.Lineage
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if len(a.Q) != len(b.Q) {
			return len(a.Q) < len(b.Q)
		}
		for w := range a.Q {
			if a.Q[w] != b.Q[w] {
				return a.Q[w] < b.Q[w]
			}
		}
		return false
	})
}

// Export extracts every entry, remapped through rm; entries referencing
// dropped components are skipped. Entries come back canonically sorted.
func (t *Table) Export(rm *Remap) []SnapEntry {
	out := make([]SnapEntry, 0, t.n)
	for i := range t.entries {
		e := &t.entries[i]
		if !e.used {
			continue
		}
		se := SnapEntry{
			Phase: e.phase, Inst: e.inst, Op: e.op, Lineage: e.lineage,
			Value: e.value, Visits: e.visits,
		}
		q := entrySet(e)
		se.Q = q[:trimmedWords(q)]
		if mapped, ok := remapEntry(se, rm); ok {
			out = append(out, mapped)
		}
	}
	sortEntries(out)
	return out
}

// ImportEntry folds one remapped entry into the table by visit-weighted
// average with whatever the slot already holds (a fresh slot has zero
// visits, so the imported value lands verbatim).
func (t *Table) ImportEntry(se SnapEntry) {
	q := bitset.Set(se.Q)
	e := t.Slot(policy.Phase(se.Phase), query.InstID(se.Inst), se.Lineage, q, int(se.Op))
	mergeInto(&e.value, &e.visits, se.Value, se.Visits)
}

// mergeInto applies the visit-weighted average fold shared by table
// imports and Snapshot.Merge. Zero total visits keeps the incoming value
// (both sides unvisited ⇒ both are optimistic zeros anyway).
func mergeInto(value *float64, visits *uint32, v float64, n uint32) {
	tot := uint64(*visits) + uint64(n)
	if tot == 0 {
		*value = v
		return
	}
	*value = (*value*float64(*visits) + v*float64(n)) / float64(tot)
	if tot > math.MaxUint32 {
		tot = math.MaxUint32
	}
	*visits = uint32(tot)
}

// snapKey is the canonical comparison key of a SnapEntry (Merge, tests).
func snapKey(se *SnapEntry) string {
	buf := make([]byte, 0, 14+8*len(se.Q))
	buf = append(buf, se.Phase, se.Inst)
	for i := 0; i < 8; i++ {
		buf = append(buf, byte(se.Lineage>>(8*i)))
	}
	buf = append(buf, byte(se.Op), byte(se.Op>>8), byte(se.Op>>16), byte(se.Op>>24))
	for _, w := range se.Q {
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(w>>(8*i)))
		}
	}
	return string(buf)
}

// Merge folds other into s by visit-weighted average per state, adding
// states s does not have. It is how a finished run's export updates the
// policy cache without discarding what earlier runs learned.
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	if other.NQueries > s.NQueries {
		s.NQueries = other.NQueries
	}
	idx := make(map[string]int, len(s.Entries))
	for i := range s.Entries {
		idx[snapKey(&s.Entries[i])] = i
	}
	for i := range other.Entries {
		oe := &other.Entries[i]
		if j, ok := idx[snapKey(oe)]; ok {
			e := &s.Entries[j]
			mergeInto(&e.Value, &e.Visits, oe.Value, oe.Visits)
			continue
		}
		cp := *oe
		cp.Q = append([]uint64(nil), oe.Q...)
		s.Entries = append(s.Entries, cp)
	}
	sortEntries(s.Entries)
}

// Clone returns a deep copy (the query-set words included), so a cached
// snapshot can be handed to a concurrent reader while Merge keeps
// mutating the original.
func (s *Snapshot) Clone() *Snapshot {
	if s == nil {
		return nil
	}
	cp := &Snapshot{NQueries: s.NQueries, Entries: make([]SnapEntry, len(s.Entries))}
	for i := range s.Entries {
		cp.Entries[i] = s.Entries[i]
		cp.Entries[i].Q = append([]uint64(nil), s.Entries[i].Q...)
	}
	return cp
}

// warmEpsilonFactor is the exploit-mode drop applied to ε when a policy
// warm-starts: prior runs already paid the exploration cost for this
// template, so the warm run mostly exploits while still correcting drift.
const warmEpsilonFactor = 0.25

// Export captures the policy's Q-table remapped through rm, canonically
// sorted. rm maps this run's live IDs to template-relative indices.
func (l *Learned) Export(rm *Remap) *Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return &Snapshot{NQueries: rm.NQ, Entries: l.table.Export(rm)}
}

// Import folds a snapshot into the policy's Q-table, remapping every
// entry through rm (template-relative indices -> this run's live IDs;
// entries referencing dropped components are skipped) and visit-weighted
// merging with existing state. If at least one entry lands, the policy is
// marked warm: ε drops by warmEpsilonFactor, once, no matter how many
// imports follow. Returns the number of imported entries.
func (l *Learned) Import(s *Snapshot, rm *Remap) int {
	if s == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for i := range s.Entries {
		se, ok := remapEntry(s.Entries[i], rm)
		if !ok {
			continue
		}
		l.table.ImportEntry(se)
		n++
	}
	if n > 0 {
		l.markWarmLocked()
	}
	return n
}

// MarkWarm drops ε toward exploit-mode without importing anything (used
// when warm state arrives through another path). Idempotent.
func (l *Learned) MarkWarm() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.markWarmLocked()
}

func (l *Learned) markWarmLocked() {
	if l.warm {
		return
	}
	l.warm = true
	l.cfg.Epsilon *= warmEpsilonFactor
}

// Warm reports whether the policy was seeded from a snapshot.
func (l *Learned) Warm() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.warm
}

// Epsilon returns the current exploration probability (reduced when warm).
func (l *Learned) Epsilon() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cfg.Epsilon
}

// RefTable mirrors of Export/Import, keeping the map oracle equivalent to
// the open-addressing table through snapshot round-trips.

// Export extracts and remaps every entry of the reference oracle.
func (r *RefTable) Export(rm *Remap) []SnapEntry {
	out := make([]SnapEntry, 0, len(r.m))
	for k, v := range r.m {
		se, ok := decodeRefKey(k)
		if !ok {
			continue
		}
		se.Value = v
		se.Visits = r.visits[k]
		if mapped, ok := remapEntry(se, rm); ok {
			out = append(out, mapped)
		}
	}
	sortEntries(out)
	return out
}

// ImportEntry folds one remapped entry into the oracle.
func (r *RefTable) ImportEntry(se SnapEntry) {
	k := key(policy.Phase(se.Phase), query.InstID(se.Inst), se.Lineage, bitset.Set(se.Q), int(se.Op))
	v, n := r.m[k], r.visits[k]
	mergeInto(&v, &n, se.Value, se.Visits)
	r.m[k] = v
	r.visits[k] = n
}

// decodeRefKey parses a RefTable key back into its components.
func decodeRefKey(k string) (SnapEntry, bool) {
	const prefix = 14
	if len(k) < prefix || (len(k)-prefix)%8 != 0 {
		return SnapEntry{}, false
	}
	se := SnapEntry{Phase: k[0], Inst: k[1]}
	for i := 0; i < 8; i++ {
		se.Lineage |= uint64(k[2+i]) << (8 * i)
	}
	se.Op = int32(uint32(k[10]) | uint32(k[11])<<8 | uint32(k[12])<<16 | uint32(k[13])<<24)
	qb := k[prefix:]
	se.Q = make([]uint64, len(qb)/8)
	for i := range se.Q {
		for b := 0; b < 8; b++ {
			se.Q[i] |= uint64(qb[i*8+b]) << (8 * b)
		}
	}
	return se, true
}

// Binary codec. Layout (all little-endian):
//
//	magic "RLQS" | version u32 | nqueries u32 | nentries u32
//	per entry: phase u8 | inst u8 | qlen u16 | op u32 | lineage u64 |
//	           value f64-bits u64 | visits u32 | qwords u64×qlen
//	trailer: FNV-1a 64 checksum of everything before it, u64
//
// Decode rejects wrong magic, unknown versions, truncation, trailing
// garbage and checksum mismatches, so a corrupted policy file degrades to
// a cold start instead of poisoning the policy.

const (
	snapMagic   = "RLQS"
	snapVersion = 1
)

func putU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func putU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// fnvSum is FNV-1a over a byte slice (the episode PlanSig idiom).
func fnvSum(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// Encode serializes the snapshot.
func (s *Snapshot) Encode() []byte {
	size := 16
	for i := range s.Entries {
		size += 28 + 8*len(s.Entries[i].Q)
	}
	buf := make([]byte, 0, size+8)
	buf = append(buf, snapMagic...)
	buf = putU32(buf, snapVersion)
	buf = putU32(buf, uint32(s.NQueries))
	buf = putU32(buf, uint32(len(s.Entries)))
	for i := range s.Entries {
		e := &s.Entries[i]
		buf = append(buf, e.Phase, e.Inst, byte(len(e.Q)), byte(len(e.Q)>>8))
		buf = putU32(buf, uint32(e.Op))
		buf = putU64(buf, e.Lineage)
		buf = putU64(buf, math.Float64bits(e.Value))
		buf = putU32(buf, e.Visits)
		for _, w := range e.Q {
			buf = putU64(buf, w)
		}
	}
	return putU64(buf, fnvSum(buf))
}

// DecodeSnapshot parses and validates an encoded snapshot.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < 24 {
		return nil, fmt.Errorf("qlearn: snapshot truncated (%d bytes)", len(data))
	}
	body, sum := data[:len(data)-8], getU64(data[len(data)-8:])
	if fnvSum(body) != sum {
		return nil, fmt.Errorf("qlearn: snapshot checksum mismatch")
	}
	if string(body[:4]) != snapMagic {
		return nil, fmt.Errorf("qlearn: bad snapshot magic %q", body[:4])
	}
	if v := getU32(body[4:]); v != snapVersion {
		return nil, fmt.Errorf("qlearn: unsupported snapshot version %d", v)
	}
	s := &Snapshot{NQueries: int(getU32(body[8:]))}
	n := int(getU32(body[12:]))
	off := 16
	s.Entries = make([]SnapEntry, 0, n)
	for i := 0; i < n; i++ {
		if off+28 > len(body) {
			return nil, fmt.Errorf("qlearn: snapshot entry %d truncated", i)
		}
		e := SnapEntry{Phase: body[off], Inst: body[off+1]}
		qlen := int(body[off+2]) | int(body[off+3])<<8
		e.Op = int32(getU32(body[off+4:]))
		e.Lineage = getU64(body[off+8:])
		e.Value = math.Float64frombits(getU64(body[off+16:]))
		e.Visits = getU32(body[off+24:])
		off += 28
		if off+8*qlen > len(body) {
			return nil, fmt.Errorf("qlearn: snapshot entry %d query set truncated", i)
		}
		e.Q = make([]uint64, qlen)
		for w := 0; w < qlen; w++ {
			e.Q[w] = getU64(body[off:])
			off += 8
		}
		s.Entries = append(s.Entries, e)
	}
	if off != len(body) {
		return nil, fmt.Errorf("qlearn: %d trailing snapshot bytes", len(body)-off)
	}
	return s, nil
}
