package qlearn

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/policy"
)

// snapNQ covers the deepest query sets genOps draws (500 bits).
const snapNQ = 512

// permRemap builds a random full-permutation Remap over the ID spaces
// genOps draws from (no drops), plus its inverse.
func permRemap(rng *rand.Rand) (rm, inv *Remap) {
	permInto := func(n, space int) ([]int, []int) {
		fwd := make([]int, n)
		bwd := make([]int, space)
		for i := range bwd {
			bwd[i] = -1
		}
		p := rng.Perm(space)[:n]
		for i, t := range p {
			fwd[i] = t
			bwd[t] = i
		}
		return fwd, bwd
	}
	rm = &Remap{NQ: snapNQ}
	inv = &Remap{NQ: snapNQ}
	rm.Query, inv.Query = permInto(snapNQ, snapNQ)
	rm.Inst, inv.Inst = permInto(4, 8)
	rm.JoinOp, inv.JoinOp = permInto(6, 12)
	rm.SelOp, inv.SelOp = permInto(6, 12)
	rm.SelBit = make([][]int, 4)
	invBits := make([][]int, 8)
	for i := 0; i < 4; i++ {
		fwd, bwd := permInto(4, 8)
		rm.SelBit[i] = fwd
		// The inverse per-instance bit map lives at the *target* instance.
		invBits[rm.Inst[i]] = bwd
	}
	inv.SelBit = invBits
	return rm, inv
}

// exportsEqual compares two sorted export listings exactly.
func exportsEqual(t *testing.T, label string, a, b []SnapEntry) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d entries", label, len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("%s: entry %d differs:\n  %+v\n  %+v", label, i, a[i], b[i])
		}
	}
}

// identityRemap maps every ID space to itself.
func identityRemap() *Remap {
	id := func(n int) []int {
		m := make([]int, n)
		for i := range m {
			m[i] = i
		}
		return m
	}
	rm := &Remap{NQ: snapNQ, Query: id(snapNQ), Inst: id(8), JoinOp: id(12), SelOp: id(12)}
	rm.SelBit = make([][]int, 8)
	for i := range rm.SelBit {
		rm.SelBit[i] = id(8)
	}
	return rm
}

// TestSnapshotRoundTripMatchesReference extends the Table/RefTable
// equivalence property through the persistence layer: after identical
// random update sequences (and a PruneRetired), both tables must export
// identical snapshots under a random permutation remap, and importing
// those snapshots back through the inverse remap must reproduce every
// Q-value and visit count in both representations.
func TestSnapshotRoundTripMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := newTableSized(8)
		ref := NewRefTable()
		ops := genOps(rng, 300)
		for _, o := range ops {
			s := tbl.Slot(o.phase, o.inst, o.lineage, o.q, o.op)
			s.value = o.value
			s.visits++
			ref.Set(o.phase, o.inst, o.lineage, o.q, o.op, o.value)
		}

		// Retire a random slice of queries first: the export must only ever
		// carry surviving states, exactly as a streaming sweep would leave
		// them.
		retired := bitset.New(snapNQ)
		for b := 0; b < snapNQ; b++ {
			if rng.Intn(10) == 0 {
				retired.Add(b)
			}
		}
		if tbl.PruneRetired(retired) != ref.PruneRetired(retired) {
			t.Error("prune removed different counts")
			return false
		}

		rm, inv := permRemap(rng)
		snapT := tbl.Export(rm)
		snapR := ref.Export(rm)
		exportsEqual(t, "export", snapT, snapR)

		// Round-trip through the inverse remap into fresh tables.
		tbl2 := newTableSized(8)
		ref2 := NewRefTable()
		for _, se := range snapT {
			if mapped, ok := remapEntry(se, inv); ok {
				tbl2.ImportEntry(mapped)
				ref2.ImportEntry(mapped)
			} else {
				t.Errorf("inverse remap dropped %+v", se)
				return false
			}
		}
		if tbl2.Len() != tbl.Len() || ref2.Len() != ref.Len() {
			t.Errorf("round-trip lost entries: %d/%d vs %d/%d",
				tbl2.Len(), tbl.Len(), ref2.Len(), ref.Len())
			return false
		}
		idRM := identityRemap()
		exportsEqual(t, "table round-trip", tbl.Export(idRM), tbl2.Export(idRM))
		exportsEqual(t, "ref round-trip", ref.Export(idRM), ref2.Export(idRM))

		// Every probe state agrees after the round trip.
		for _, o := range ops {
			if tbl2.Get(o.phase, o.inst, o.lineage, o.q, o.op) !=
				ref2.Get(o.phase, o.inst, o.lineage, o.q, o.op) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSnapshotDropsRetiredQueryEntries pins the drop semantics: importing
// through a remap whose query map marks an ID as dead (-1) must skip
// every entry whose query set contains it — the qid-recycling safety that
// PruneRetired enforces inside a run, extended across runs.
func TestSnapshotDropsRetiredQueryEntries(t *testing.T) {
	tbl := NewTable()
	live := bitset.FromIDs(4, 0)
	mixed := bitset.FromIDs(4, 0, 1)
	tbl.Slot(policy.JoinPhase, 0, 1, live, 0).value = 1
	tbl.Slot(policy.JoinPhase, 0, 1, mixed, 0).value = 2

	rm := identityRemap()
	rm.Query[1] = -1
	out := tbl.Export(rm)
	if len(out) != 1 || out[0].Value != 1 {
		t.Fatalf("export kept %d entries (%+v), want only the live one", len(out), out)
	}
}

// TestSnapshotMergeWeightsByVisits checks the visit-count-weighted fold:
// merging a 3-visit estimate of -9 into a 1-visit estimate of -1 must
// land at -7, and the state must then carry 4 visits.
func TestSnapshotMergeWeightsByVisits(t *testing.T) {
	q := []uint64{1}
	a := &Snapshot{NQueries: 4, Entries: []SnapEntry{
		{Phase: uint8(policy.JoinPhase), Op: 0, Lineage: 1, Value: -1, Visits: 1, Q: q},
	}}
	b := &Snapshot{NQueries: 4, Entries: []SnapEntry{
		{Phase: uint8(policy.JoinPhase), Op: 0, Lineage: 1, Value: -9, Visits: 3, Q: q},
		{Phase: uint8(policy.JoinPhase), Op: 1, Lineage: 1, Value: -5, Visits: 2, Q: q},
	}}
	a.Merge(b)
	if len(a.Entries) != 2 {
		t.Fatalf("merge produced %d entries, want 2", len(a.Entries))
	}
	for _, e := range a.Entries {
		switch e.Op {
		case 0:
			if e.Value != -7 || e.Visits != 4 {
				t.Errorf("merged entry = (%v, %d visits), want (-7, 4)", e.Value, e.Visits)
			}
		case 1:
			if e.Value != -5 || e.Visits != 2 {
				t.Errorf("adopted entry = (%v, %d visits), want (-5, 2)", e.Value, e.Visits)
			}
		}
	}
}

// TestSnapshotEncodeDecodeRoundTrip round-trips a randomly populated
// snapshot through the binary codec.
func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := newTableSized(8)
	for _, o := range genOps(rng, 200) {
		s := tbl.Slot(o.phase, o.inst, o.lineage, o.q, o.op)
		s.value = o.value
		s.visits += uint32(1 + rng.Intn(5))
	}
	snap := &Snapshot{NQueries: snapNQ, Entries: tbl.Export(identityRemap())}
	got, err := DecodeSnapshot(snap.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.NQueries != snap.NQueries {
		t.Fatalf("NQueries = %d, want %d", got.NQueries, snap.NQueries)
	}
	exportsEqual(t, "codec round-trip", snap.Entries, got.Entries)
}

// TestSnapshotDecodeRejectsCorruption: every class of damage — flipped
// bytes anywhere, truncation at every boundary, bad magic, unknown
// version, trailing garbage — must produce an error, never a snapshot.
func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	tbl := NewTable()
	q := bitset.FromIDs(4, 0, 2)
	s := tbl.Slot(policy.SelPhase, 1, 3, q, 2)
	s.value, s.visits = -4.5, 7
	data := (&Snapshot{NQueries: 4, Entries: tbl.Export(identityRemap())}).Encode()
	if _, err := DecodeSnapshot(data); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}

	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if _, err := DecodeSnapshot(bad); err == nil {
			t.Fatalf("flipped byte %d accepted", i)
		}
	}
	for n := 0; n < len(data); n++ {
		if _, err := DecodeSnapshot(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if _, err := DecodeSnapshot(append(append([]byte(nil), data...), 0xAB)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestImportMarksWarm: a successful import must mark the policy warm and
// drop ε by the exploit-mode factor exactly once.
func TestImportMarksWarm(t *testing.T) {
	l := New(DefaultConfig())
	coldEps := l.Epsilon()
	if l.Warm() {
		t.Fatal("fresh policy reports warm")
	}

	// An import where everything is dropped must NOT mark warm.
	rm := identityRemap()
	empty := &Snapshot{NQueries: snapNQ}
	if n := l.Import(empty, rm); n != 0 || l.Warm() {
		t.Fatalf("empty import: n=%d warm=%v", n, l.Warm())
	}

	snap := &Snapshot{NQueries: snapNQ, Entries: []SnapEntry{
		{Phase: uint8(policy.JoinPhase), Op: 0, Lineage: 1, Value: -3, Visits: 2, Q: []uint64{1}},
	}}
	if n := l.Import(snap, rm); n != 1 {
		t.Fatalf("import folded %d entries, want 1", n)
	}
	if !l.Warm() {
		t.Fatal("policy not warm after import")
	}
	want := coldEps * warmEpsilonFactor
	if eps := l.Epsilon(); eps != want {
		t.Fatalf("ε = %v after warm start, want %v", eps, want)
	}
	// Idempotent: a second import must not drop ε again.
	l.Import(snap, rm)
	if eps := l.Epsilon(); eps != want {
		t.Fatalf("ε = %v after second import, want %v (single drop)", eps, want)
	}
	// The imported prior is visible to the policy's value estimates.
	q := bitset.FromIDs(snapNQ, 0)
	if v := l.qValue(policy.JoinPhase, 0, 1, q, 0); v != -3 {
		t.Fatalf("imported Q-value = %v, want -3", v)
	}
}
