package qlearn

import (
	"fmt"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/query"
)

// The Q-table is the hottest data structure in the system: every policy
// decision reads one Q-value per candidate operator and every log entry
// triggers one read-modify-write plus one successor bestOf scan. The
// original implementation keyed a map[string]float64 by concatenated
// (phase, inst, lineage, op, query-set) bytes, paying two string
// allocations per access. Table replaces it with an open-addressing hash
// table keyed by the packed components directly: short query sets (up to
// qInlineWords words, i.e. 192 queries) are stored inline in the entry,
// longer ones spill to a per-entry overflow slice allocated once at
// insertion. Lookups and steady-state updates never allocate.

// qInlineWords is the number of query-set words stored inline per entry.
const qInlineWords = 3

// tableEntry is one open-addressing slot. visits counts updates through
// Slot callers (Observe, snapshot imports); it weights cross-run merges
// (snapshot.go) and costs nothing on the read path.
type tableEntry struct {
	hash    uint64
	lineage uint64
	qw      [qInlineWords]uint64
	qext    []uint64 // trimmed words beyond qInlineWords; nil for short sets
	value   float64
	visits  uint32
	op      int32
	inst    uint8
	phase   uint8
	qlen    uint8 // total significant (trimmed) query-set words
	used    bool
}

// Value returns the entry's Q-value.
func (e *tableEntry) Value() float64 { return e.value }

// SetValue stores v without counting a visit (external harness use;
// Observe and snapshot imports write the fields directly).
func (e *tableEntry) SetValue(v float64) { e.value = v }

// Table is an open-addressing Q-table over (phase, inst, lineage, Q, op)
// states. It is not safe for concurrent use; Learned serializes access
// behind its mutex. The zero value is not usable; call NewTable.
type Table struct {
	entries []tableEntry
	mask    uint64
	n       int
}

// NewTable returns an empty table with a small initial capacity.
func NewTable() *Table { return newTableSized(256) }

// newTableSized creates a table with the given power-of-two slot count
// (tests use tiny sizes to force clustering and growth).
func newTableSized(slots int) *Table {
	if slots&(slots-1) != 0 || slots <= 0 {
		panic("qlearn: table size must be a power of two")
	}
	return &Table{entries: make([]tableEntry, slots), mask: uint64(slots - 1)}
}

// Len returns the number of stored (state, action) entries.
func (t *Table) Len() int { return t.n }

// stateHash mixes the packed key components with the query-set hash.
func stateHash(phase policy.Phase, inst query.InstID, lineage uint64, op int, q bitset.Set) uint64 {
	h := q.Hash()
	h ^= lineage * 0x9E3779B97F4A7C15
	h ^= uint64(uint32(op))<<16 ^ uint64(inst)<<8 ^ uint64(uint8(phase))
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h
}

// trimmedWords mirrors bitset's canonicalization: words up to the last
// non-zero one.
func trimmedWords(q bitset.Set) int {
	n := len(q)
	for n > 0 && q[n-1] == 0 {
		n--
	}
	return n
}

// matches reports whether e holds exactly the given state. The hash check
// rejects almost everything; the verified-equality slow path below it makes
// collisions harmless.
func (e *tableEntry) matches(h uint64, phase policy.Phase, inst query.InstID, lineage uint64, op int, q bitset.Set, qlen int) bool {
	if e.hash != h || e.lineage != lineage || e.op != int32(op) ||
		e.inst != uint8(inst) || e.phase != uint8(phase) || int(e.qlen) != qlen {
		return false
	}
	ni := qlen
	if ni > qInlineWords {
		ni = qInlineWords
	}
	for i := 0; i < ni; i++ {
		if e.qw[i] != q[i] {
			return false
		}
	}
	for i := qInlineWords; i < qlen; i++ {
		if e.qext[i-qInlineWords] != q[i] {
			return false
		}
	}
	return true
}

// Get reads Q((L,Q),op); absent states are 0 (optimistic initialization:
// rewards are negative costs). It never allocates.
func (t *Table) Get(phase policy.Phase, inst query.InstID, lineage uint64, q bitset.Set, op int) float64 {
	qlen := trimmedWords(q)
	h := stateHash(phase, inst, lineage, op, q)
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		e := &t.entries[i]
		if !e.used {
			return 0
		}
		if e.matches(h, phase, inst, lineage, op, q, qlen) {
			return e.value
		}
	}
}

// Slot returns the state's entry, inserting a zero entry if absent, so
// callers can update value and visits in one probe. The pointer is
// invalidated by the next Slot call (growth may move entries); callers
// must use it immediately and only touch value/visits. For states already
// present the call never allocates.
func (t *Table) Slot(phase policy.Phase, inst query.InstID, lineage uint64, q bitset.Set, op int) *tableEntry {
	if t.n >= len(t.entries)-len(t.entries)/4 { // load factor 3/4
		t.grow()
	}
	qlen := trimmedWords(q)
	if qlen > 255 {
		panic(fmt.Sprintf("qlearn: query set of %d words exceeds table key width", qlen))
	}
	h := stateHash(phase, inst, lineage, op, q)
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		e := &t.entries[i]
		if e.used {
			if e.matches(h, phase, inst, lineage, op, q, qlen) {
				return e
			}
			continue
		}
		e.used = true
		e.hash = h
		e.lineage = lineage
		e.op = int32(op)
		e.inst = uint8(inst)
		e.phase = uint8(phase)
		e.qlen = uint8(qlen)
		ni := qlen
		if ni > qInlineWords {
			ni = qInlineWords
		}
		for w := 0; w < ni; w++ {
			e.qw[w] = q[w]
		}
		if qlen > qInlineWords {
			e.qext = append([]uint64(nil), q[qInlineWords:qlen]...)
		}
		t.n++
		return e
	}
}

// grow doubles the slot count and reinserts every entry. Overflow slices
// move with their entries, so growth allocates only the new slot array.
func (t *Table) grow() {
	old := t.entries
	t.entries = make([]tableEntry, 2*len(old))
	t.mask = uint64(len(t.entries) - 1)
	for i := range old {
		e := &old[i]
		if !e.used {
			continue
		}
		j := e.hash & t.mask
		for t.entries[j].used {
			j = (j + 1) & t.mask
		}
		t.entries[j] = *e
	}
}

// entryIntersects reports whether the entry's query-set component shares
// any bit with the given set.
func entryIntersects(e *tableEntry, q bitset.Set) bool {
	qlen := int(e.qlen)
	ni := qlen
	if ni > qInlineWords {
		ni = qInlineWords
	}
	for i := 0; i < ni && i < len(q); i++ {
		if e.qw[i]&q[i] != 0 {
			return true
		}
	}
	for i := qInlineWords; i < qlen && i < len(q); i++ {
		if e.qext[i-qInlineWords]&q[i] != 0 {
			return true
		}
	}
	return false
}

// PruneRetired removes every entry whose query-set component intersects the
// retired set and rebuilds the table sized to what remains, so a long-lived
// streaming policy does not accumulate Q-states for queries that have left
// the system. Intersection (rather than subset-of-retired) is deliberate:
// after a query's ID is recycled, a stale prior containing its bit would
// otherwise seed a new, unrelated query's Q-value. Runs off the hot path
// (streaming GC under the engine's quiesce gate); Learned's mutex guards
// concurrency. Returns the number of removed entries.
func (t *Table) PruneRetired(retired bitset.Set) int {
	kept := make([]tableEntry, 0, t.n)
	for i := range t.entries {
		e := &t.entries[i]
		if e.used && !entryIntersects(e, retired) {
			kept = append(kept, *e)
		}
	}
	removed := t.n - len(kept)
	if removed == 0 {
		return 0
	}
	slots := 256
	for slots < 2*len(kept) { // rebuild at load factor ≤ 1/2
		slots <<= 1
	}
	t.entries = make([]tableEntry, slots)
	t.mask = uint64(slots - 1)
	t.n = 0
	for i := range kept {
		e := &kept[i]
		j := e.hash & t.mask
		for t.entries[j].used {
			j = (j + 1) & t.mask
		}
		t.entries[j] = *e
		t.n++
	}
	return removed
}

// RefTable is the original string-keyed map Q-table, retained as the
// reference oracle: equivalence tests drive Table and RefTable with the
// same operation sequences and compare every result. visits mirrors
// Table's per-entry update counts (Set counts as one update).
type RefTable struct {
	m      map[string]float64
	visits map[string]uint32
}

// NewRefTable returns an empty reference table.
func NewRefTable() *RefTable {
	return &RefTable{m: make(map[string]float64), visits: make(map[string]uint32)}
}

// Len returns the number of stored entries.
func (r *RefTable) Len() int { return len(r.m) }

// Get reads Q((L,Q),op) through the map.
func (r *RefTable) Get(phase policy.Phase, inst query.InstID, lineage uint64, q bitset.Set, op int) float64 {
	return r.m[key(phase, inst, lineage, q, op)]
}

// Set stores Q((L,Q),op) through the map and counts the update.
func (r *RefTable) Set(phase policy.Phase, inst query.InstID, lineage uint64, q bitset.Set, op int, v float64) {
	k := key(phase, inst, lineage, q, op)
	r.m[k] = v
	r.visits[k]++
}

// PruneRetired mirrors Table.PruneRetired on the reference oracle, decoding
// each key's query-set suffix (the bytes past the fixed 14-byte prefix of
// phase, inst, lineage and op).
func (r *RefTable) PruneRetired(retired bitset.Set) int {
	const prefix = 14
	removed := 0
	for k := range r.m {
		qBytes := k[prefix:]
		hit := false
		for i := 0; i+8 <= len(qBytes); i += 8 {
			var w uint64
			for b := 0; b < 8; b++ {
				w |= uint64(qBytes[i+b]) << (8 * b)
			}
			if wi := i / 8; wi < len(retired) && w&retired[wi] != 0 {
				hit = true
				break
			}
		}
		if hit {
			delete(r.m, k)
			delete(r.visits, k)
			removed++
		}
	}
	return removed
}

// key builds the unique (phase, inst, L, Q, op) key: the byte concatenation
// the paper stores in its hash map. Kept for RefTable only; the hot path
// uses Table's packed keys.
func key(phase policy.Phase, inst query.InstID, lineage uint64, q bitset.Set, op int) string {
	buf := make([]byte, 0, 16+len(q)*8+4)
	buf = append(buf, byte(phase), byte(inst))
	for i := 0; i < 8; i++ {
		buf = append(buf, byte(lineage>>(8*i)))
	}
	buf = append(buf, byte(op), byte(op>>8), byte(op>>16), byte(op>>24))
	return string(q.AppendKey(buf))
}
