package qlearn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/query"
)

// tableOp is one random Q-table operation for the equivalence property.
type tableOp struct {
	phase   policy.Phase
	inst    query.InstID
	lineage uint64
	q       bitset.Set
	op      int
	set     bool
	value   float64
}

// genOps draws a random operation sequence. Query sets are drawn from a
// small pool so the same state recurs (read-after-write coverage), and the
// pool mixes single-word, inline-boundary, and overflow-length sets plus
// padding variants that must canonicalize identically.
func genOps(rng *rand.Rand, n int) []tableOp {
	pool := []bitset.Set{
		bitset.FromIDs(4, 0),
		bitset.FromIDs(4, 1, 3),
		bitset.NewFull(64),
		bitset.NewFull(190),                      // inline boundary (3 words)
		bitset.NewFull(200),                      // 4 words: overflow path
		bitset.NewFull(500),                      // 8 words: deep overflow
		bitset.FromIDs(500, 7, 450),              // sparse overflow
		append(bitset.FromIDs(4, 1, 3), 0, 0, 0), // trailing-zero padding
		append(bitset.NewFull(64), 0),            // padding on a full word
		bitset.FromIDs(130, 128),                 // only high word set
	}
	for i := 0; i < 6; i++ {
		s := bitset.New(1 + rng.Intn(300))
		for b := 0; b < len(s)*64; b++ {
			if rng.Intn(3) == 0 {
				s.Add(b)
			}
		}
		pool = append(pool, s)
	}
	ops := make([]tableOp, n)
	for i := range ops {
		ops[i] = tableOp{
			phase:   policy.Phase(rng.Intn(2)),
			inst:    query.InstID(rng.Intn(4)),
			lineage: uint64(rng.Intn(16)),
			q:       pool[rng.Intn(len(pool))],
			op:      rng.Intn(6),
			set:     rng.Intn(2) == 0,
			value:   float64(rng.Intn(1000)) / 7,
		}
	}
	return ops
}

// TestTableMatchesMapReference is the equivalence property: the
// open-addressing table and the retained map-based reference must agree on
// every read under random (phase, inst, lineage, qset, op) sequences. The
// table starts tiny (8 slots) so the sequence forces clustering, linear
// probing past deleted-free runs, and multiple growths.
func TestTableMatchesMapReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := newTableSized(8)
		ref := NewRefTable()
		for _, o := range genOps(rng, 400) {
			if o.set {
				s := tbl.Slot(o.phase, o.inst, o.lineage, o.q, o.op)
				s.value = o.value
				s.visits++
				ref.Set(o.phase, o.inst, o.lineage, o.q, o.op, o.value)
			} else if tbl.Get(o.phase, o.inst, o.lineage, o.q, o.op) !=
				ref.Get(o.phase, o.inst, o.lineage, o.q, o.op) {
				return false
			}
		}
		// Full sweep at the end, plus entry-count agreement.
		for _, o := range genOps(rng, 200) {
			if tbl.Get(o.phase, o.inst, o.lineage, o.q, o.op) !=
				ref.Get(o.phase, o.inst, o.lineage, o.q, o.op) {
				return false
			}
		}
		return tbl.Len() == ref.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestTableCollisionHeavyQsets drives states that differ only in their
// query sets — including sets sharing every inline word and differing only
// in the overflow tail — so hash collisions and the verified-equality slow
// path are actually exercised.
func TestTableCollisionHeavyQsets(t *testing.T) {
	tbl := newTableSized(8)
	ref := NewRefTable()
	var sets []bitset.Set
	// 64 sets over 6 words that agree on the first three (inline) words.
	for i := 0; i < 64; i++ {
		s := bitset.NewFull(192) // fills the three inline words
		s = append(s, 0, 0, 0)
		for b := 0; b < 6; b++ {
			if i&(1<<b) != 0 {
				s.Add(192 + 31*b)
			}
		}
		sets = append(sets, s)
	}
	for i, s := range sets {
		v := float64(i + 1)
		e := tbl.Slot(policy.JoinPhase, 0, 1, s, 0)
		e.value = v
		e.visits++
		ref.Set(policy.JoinPhase, 0, 1, s, 0, v)
	}
	for _, s := range sets {
		got := tbl.Get(policy.JoinPhase, 0, 1, s, 0)
		want := ref.Get(policy.JoinPhase, 0, 1, s, 0)
		if got != want {
			t.Fatalf("table %v, reference %v for %v", got, want, s)
		}
	}
	if tbl.Len() != len(sets) {
		t.Fatalf("table holds %d entries, want %d", tbl.Len(), len(sets))
	}
}

// TestTableSteadyStateDoesNotAllocate asserts the zero-allocation contract
// of the hot path: once a state exists, Get and Slot on it never allocate.
func TestTableSteadyStateDoesNotAllocate(t *testing.T) {
	tbl := NewTable()
	short := bitset.NewFull(64)
	long := bitset.NewFull(400)
	tbl.Slot(policy.JoinPhase, 0, 3, short, 1).value = 1
	tbl.Slot(policy.JoinPhase, 0, 3, long, 1).value = 2

	allocs := testing.AllocsPerRun(200, func() {
		if tbl.Get(policy.JoinPhase, 0, 3, short, 1) == 0 {
			t.Fatal("lost short entry")
		}
		if tbl.Get(policy.JoinPhase, 0, 3, long, 1) == 0 {
			t.Fatal("lost long entry")
		}
		tbl.Slot(policy.JoinPhase, 0, 3, short, 1).value += 0.5
		tbl.Slot(policy.JoinPhase, 0, 3, long, 1).value += 0.5
	})
	if allocs != 0 {
		t.Errorf("steady-state table ops allocate %.1f allocs/op, want 0", allocs)
	}
}

// TestLearnedConvergesOnToyMDPWithTable re-runs the convergence check (the
// qlearn-level analogue of the Fig. 16 experiment) explicitly as part of
// the table-equivalence suite: the learned policy over the new table must
// still find the long-term-optimal order.
func TestLearnedConvergesOnToyMDPWithTable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epsilon = 0.1
	l := New(cfg)
	q := bitset.NewFull(1)
	for ep := 0; ep < 2000; ep++ {
		runToyEpisode(l, q, 1000)
	}
	picked1 := 0
	for i := 0; i < 100; i++ {
		if l.ChooseJoin(0, lR, q, []int{0, 1}) == 1 {
			picked1++
		}
	}
	if picked1 < 85 {
		t.Fatalf("policy on the new table picks the optimal edge only %d/100 times", picked1)
	}
}

// benchStates precomputes a mixed workload of Q-table states.
func benchStates(n int) []tableOp {
	rng := rand.New(rand.NewSource(7))
	return genOps(rng, n)
}

// BenchmarkQTableOpenAddressing measures the new packed-key table: one Get
// and one Slot update per op over a recurring state population.
func BenchmarkQTableOpenAddressing(b *testing.B) {
	ops := benchStates(4096)
	tbl := NewTable()
	for i := range ops {
		o := &ops[i]
		tbl.Slot(o.phase, o.inst, o.lineage, o.q, o.op).value = o.value
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := &ops[i%len(ops)]
		v := tbl.Get(o.phase, o.inst, o.lineage, o.q, o.op)
		tbl.Slot(o.phase, o.inst, o.lineage, o.q, o.op).value = v + 1
	}
}

// BenchmarkQTableMapReference is the string-keyed baseline the acceptance
// criterion compares against (≥2× ops/sec for the new table).
func BenchmarkQTableMapReference(b *testing.B) {
	ops := benchStates(4096)
	ref := NewRefTable()
	for i := range ops {
		o := &ops[i]
		ref.Set(o.phase, o.inst, o.lineage, o.q, o.op, o.value)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := &ops[i%len(ops)]
		v := ref.Get(o.phase, o.inst, o.lineage, o.q, o.op)
		ref.Set(o.phase, o.inst, o.lineage, o.q, o.op, v+1)
	}
}
