package query

import "github.com/roulette-db/roulette/internal/bitset"

// Graph is an immutable snapshot of a batch's join structure: the slices a
// worker's plan builder and probe operators walk on the episode hot path.
// The streaming engine publishes a fresh Graph (inside the executor's
// context view) whenever an admission or retirement changes the batch, so
// episodes never read the mutable Batch without the session mutex. The
// element structs are copied; the query bitsets inside them are shared with
// the batch under its copy-on-write contract (applyQuery/RetireQueries
// replace, never mutate, any set reachable from a snapshot).
type Graph struct {
	Insts     []Instance
	Edges     []Edge
	Residuals []Residual
}

// Snapshot returns an immutable Graph of the batch's current join
// structure. Caller must hold whatever lock serializes batch mutation.
func (b *Batch) Snapshot() Graph {
	return Graph{
		Insts:     append([]Instance(nil), b.Insts...),
		Edges:     append([]Edge(nil), b.Edges...),
		Residuals: append([]Residual(nil), b.Residuals...),
	}
}

// Candidates appends to dst the candidate edges for virtual vector (L, Q):
// edges with exactly one endpoint inside lineage L whose query set
// intersects Q (Definition 5 of the paper). Identical to Batch.Candidates,
// but safe to call lock-free on a snapshot.
func (g *Graph) Candidates(dst []int, lineage uint64, q bitset.Set) []int {
	for i := range g.Edges {
		e := &g.Edges[i]
		aIn := lineage&(1<<e.A) != 0
		bIn := lineage&(1<<e.B) != 0
		if aIn == bIn {
			continue
		}
		if bitset.Intersects(q, e.Queries) {
			dst = append(dst, e.ID)
		}
	}
	return dst
}
