// Package query models SPJ sub-queries and compiles batches of them into
// the shared-operator form RouLette executes: batch-level relation
// instances, normalized equi-join edges with per-edge query sets, and
// grouped-filter columns with per-query predicate ranges.
//
// Batches come in two flavours. Compile builds a closed batch from a fixed
// query set (the original one-shot mode). NewStreamBatch builds an open
// batch with a fixed query-ID capacity that grows one query at a time via
// Extend — the compile-side half of the streaming engine: instances, edges
// and grouped filters are reused when a new query's join structure matches
// what is already compiled, and fresh IDs are allocated otherwise. Retired
// queries give their IDs back through RetireQueries/ReleaseQID, so a
// long-lived stream cycles through a bounded ID space.
package query

import (
	"fmt"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/value"
)

// InstID identifies a relation instance within a compiled batch. Lineages
// are uint64 bitmasks over InstIDs, so a batch holds at most 64 instances.
type InstID uint8

// MaxInstances bounds distinct relation instances per batch (lineages are
// single-word bitmasks, as in the paper's bitset-keyed Q-table).
const MaxInstances = 64

// RelRef names a relation use inside one query. Alias defaults to Table
// when empty; self-joins need distinct aliases.
type RelRef struct {
	Table string
	Alias string
}

// Join is an equi-join predicate between two aliases of one query.
type Join struct {
	LeftAlias  string
	LeftCol    string
	RightAlias string
	RightCol   string
}

// FilterKind selects a filter's predicate form. The zero value is the
// original inclusive-range predicate, so untyped literals keep working.
type FilterKind uint8

const (
	// KindRange restricts the column to the inclusive range [Lo, Hi].
	// Equality and one-sided comparisons are degenerate ranges.
	KindRange FilterKind = iota
	// KindStrings matches when the column's decoded string equals ANY of
	// Strs (string equality and IN-lists). Strings are resolved to
	// dictionary codes at executor build time; a string absent from the
	// column's dictionary simply never matches.
	KindStrings
	// KindIsNull matches exactly the NULL cells of a nullable column.
	KindIsNull
	// KindIsNotNull matches every non-NULL cell.
	KindIsNotNull
)

// Filter restricts alias.Col according to Kind. NULL cells
// (value.NullCode) never satisfy a range or string predicate; only
// KindIsNull selects them. All of a query's filters combine by conjunction
// (SQL WHERE semantics) — including several filters on the same column.
// Disjunction exists only inside a single filter: a KindStrings IN-list
// matches any of its literals.
type Filter struct {
	Alias string
	Col   string
	Kind  FilterKind
	Lo    int64
	Hi    int64
	// Strs carries KindStrings literals until the executor resolves them
	// against the column's dictionary.
	Strs []string
}

// Match evaluates the filter against one physical cell value, with dict
// supplying code resolution for string predicates (nil for non-string
// columns). It is the reference semantics the engines' vectorized paths
// must agree with: NULL never matches anything but IS NULL.
func (f *Filter) Match(v int64, dict *value.Dict) bool {
	switch f.Kind {
	case KindIsNull:
		return v == value.NullCode
	case KindIsNotNull:
		return v != value.NullCode
	case KindStrings:
		if v == value.NullCode || dict == nil {
			return false
		}
		for _, s := range f.Strs {
			if c, ok := dict.Lookup(s); ok && c == v {
				return true
			}
		}
		return false
	default:
		return v != value.NullCode && f.Lo <= v && v <= f.Hi
	}
}

// AggKind selects the host-side aggregate applied to a query's SPJ output.
type AggKind int

// Host-side aggregate kinds.
const (
	AggCount AggKind = iota // COUNT(*)
	AggSum                  // SUM(alias.col)
	AggMin                  // MIN(alias.col)
	AggMax                  // MAX(alias.col)
	AggAvg                  // AVG(alias.col), integer division
)

// NeedsColumn reports whether the aggregate reads an input column.
func (k AggKind) NeedsColumn() bool { return k != AggCount }

// Agg describes the host-side consumer of a query's RouLette source.
// GroupByAlias/GroupByCol, when set, group the aggregate; Sorted requests
// ordered group output (RouLette does not preserve interesting orders, so
// the host adds the sort, §3 "Query Optimizer").
type Agg struct {
	Kind         AggKind
	Alias        string
	Col          string
	GroupByAlias string
	GroupByCol   string
	Sorted       bool
}

// Query is one SPJ sub-query delegated to RouLette.
type Query struct {
	ID      int // assigned at batch compile time
	Tag     string
	Rels    []RelRef
	Joins   []Join
	Filters []Filter
	Agg     Agg
}

// aliasOf resolves an alias to its RelRef index, or -1.
func (q *Query) aliasIdx(alias string) int {
	for i, r := range q.Rels {
		a := r.Alias
		if a == "" {
			a = r.Table
		}
		if a == alias {
			return i
		}
	}
	return -1
}

// Instance is a batch-level relation instance: the occ-th use of Table
// within a single query. Queries using a table once all share instance
// (Table, 0), which is what lets their scans and STeMs be shared.
type Instance struct {
	ID    InstID
	Table string
	Occ   int
	// Queries contains every query that uses this instance.
	Queries bitset.Set
}

// Edge is a normalized shared join operator: an equi-join between two
// instances on a fixed column pair. Queries joining the same instance pair
// on the same columns share the edge.
type Edge struct {
	ID   int
	A    InstID
	ACol string
	B    InstID
	BCol string
	// Queries contains every query whose join list includes this edge.
	Queries bitset.Set
}

// Other returns the endpoint opposite to inst, and ok=false if inst is not
// an endpoint.
func (e *Edge) Other(inst InstID) (InstID, bool) {
	switch inst {
	case e.A:
		return e.B, true
	case e.B:
		return e.A, true
	}
	return 0, false
}

// Col returns the join column on the given endpoint.
func (e *Edge) Col(inst InstID) string {
	if inst == e.A {
		return e.ACol
	}
	return e.BCol
}

// Pred is one query's predicate inside a grouped filter. Kind follows
// Filter: the zero value is a plain inclusive range, string predicates keep
// their literals until the executor resolves them against the column's
// dictionary. A query's several preds on one column combine by conjunction.
type Pred struct {
	QID  int
	Kind FilterKind
	Lo   int64
	Hi   int64
	Strs []string
}

// SelCol is a shared selection operator: a grouped filter evaluating every
// query's predicates on one (instance, column) pair at once.
type SelCol struct {
	ID    int
	Inst  InstID
	Col   string
	Preds []Pred
	// Queries contains every query with at least one predicate on the column.
	Queries bitset.Set
}

// Residual is a cycle-closing equi-join predicate of one query: its join
// graph's spanning tree drives the shared plan, and the residual is applied
// as a per-query filter at the probe that brings its second endpoint into
// the lineage (the standard treatment of cyclic join graphs in n-ary
// symmetric joins).
type Residual struct {
	QID  int
	A    InstID
	ACol string
	B    InstID
	BCol string
}

// Batch is a compiled set of queries sharing instances, edges and grouped
// filters. It is the unit RouLette schedules and adapts over.
type Batch struct {
	Queries []*Query
	N       int // number of query-ID slots in use (high-water mark)

	// Cap is the query-ID capacity bitsets are sized for. Compile sets it
	// to the batch size; NewStreamBatch fixes it up front so the executor's
	// query-set width never changes while queries stream in and out.
	Cap int

	Insts     []Instance
	Edges     []Edge
	SelCols   []SelCol
	Residuals []Residual

	edgesOf   [][]int // instance -> edge IDs touching it
	selColsOf [][]int // instance -> SelCol IDs on it
	instIdx   map[instKey]InstID
	queryInst [][]InstID // query -> instance per RelRef position
	edgeIdx   map[edgeKey]int
	selIdx    map[selKey]int
	freeIDs   []int       // released query IDs available for reuse (streaming)
	delta     ExtendDelta // most recent Extend's delta, see TakeDelta
}

type instKey struct {
	table string
	occ   int
}

// QCap returns the query-ID capacity every query bitset is sized for.
func (b *Batch) QCap() int {
	if b.Cap > b.N {
		return b.Cap
	}
	return b.N
}

// newBatch creates an empty batch with the given query-ID capacity.
func newBatch(cap int) *Batch {
	return &Batch{
		Cap:     cap,
		instIdx: make(map[instKey]InstID),
		edgeIdx: make(map[edgeKey]int),
		selIdx:  make(map[selKey]int),
	}
}

// NewStreamBatch creates an empty open batch with a fixed query-ID
// capacity, ready to grow via Extend.
func NewStreamBatch(cap int) *Batch {
	if cap <= 0 {
		cap = 64
	}
	return newBatch(cap)
}

// Compile validates queries and builds the batch's shared-operator form.
// Every query's join graph must be connected; a spanning tree of it drives
// the shared plan and any cycle-closing joins become residual predicates.
// Query IDs are assigned 0..len(qs)-1.
func Compile(qs []*Query) (*Batch, error) {
	b := newBatch(len(qs))
	for _, q := range qs {
		if _, err := b.Extend(q); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Free reports how many query-ID slots are available for Extend.
func (b *Batch) Free() int { return b.Cap - b.N + len(b.freeIDs) }

// Extend merges one query into the batch, reusing existing instances,
// edges and grouped filters where its join structure matches and
// allocating fresh IDs otherwise. Validation is identical to Compile; a
// failed Extend leaves the batch unchanged. The query is assigned a free
// query ID (a released one when available) and that ID is returned.
func (b *Batch) Extend(q *Query) (int, error) {
	qi := b.N
	if n := len(b.freeIDs); n > 0 {
		qi = b.freeIDs[n-1]
	}
	p, err := b.planQuery(qi, q)
	if err != nil {
		return 0, err
	}
	if qi == b.N && b.N >= b.QCap() {
		return 0, fmt.Errorf("query: batch full (%d query IDs in use, none released)", b.N)
	}
	if n := len(b.freeIDs); n > 0 && qi == b.freeIDs[n-1] {
		b.freeIDs = b.freeIDs[:n-1]
	}
	b.applyQuery(qi, q, p)
	return qi, nil
}

// queryPlan is the validated, side-effect-free form of one query's
// contribution to the batch, expressed over projected instance IDs (IDs
// that interning will assign, computed without mutating the batch).
type queryPlan struct {
	insts     []InstID  // per RelRef position
	newInsts  []instKey // instances to intern, in projected-ID order
	treeJoins []planJoin
	residuals []Residual
	filters   []planFilter
}

type planJoin struct {
	a    InstID
	aCol string
	b    InstID
	bCol string
}

type planFilter struct {
	inst InstID
	col  string
	kind FilterKind
	lo   int64
	hi   int64
	strs []string
}

// planQuery validates q as query qi and computes its batch delta without
// mutating anything.
func (b *Batch) planQuery(qi int, q *Query) (*queryPlan, error) {
	if len(q.Rels) == 0 {
		return nil, fmt.Errorf("query %d (%s): no relations", qi, q.Tag)
	}
	p := &queryPlan{insts: make([]InstID, len(q.Rels))}

	// Map each RelRef to a batch instance: the k-th occurrence of a table
	// within this query is instance (table, k). New instances receive
	// projected IDs continuing the batch's interning order.
	occ := make(map[string]int)
	seen := make(map[string]bool)
	projected := make(map[instKey]InstID)
	for ri, r := range q.Rels {
		alias := r.Alias
		if alias == "" {
			alias = r.Table
		}
		if seen[alias] {
			return nil, fmt.Errorf("query %d (%s): duplicate alias %q", qi, q.Tag, alias)
		}
		seen[alias] = true
		k := occ[r.Table]
		occ[r.Table] = k + 1
		key := instKey{r.Table, k}
		id, ok := b.instIdx[key]
		if !ok {
			id, ok = projected[key]
		}
		if !ok {
			next := len(b.Insts) + len(p.newInsts)
			if next >= MaxInstances {
				return nil, fmt.Errorf("query %d (%s): batch exceeds %d relation instances", qi, q.Tag, MaxInstances)
			}
			id = InstID(next)
			projected[key] = id
			p.newInsts = append(p.newInsts, key)
		}
		p.insts[ri] = id
	}

	if len(q.Joins) < len(q.Rels)-1 {
		return nil, fmt.Errorf("query %d (%s): join graph disconnected (%d rels need at least %d joins, have %d)",
			qi, q.Tag, len(q.Rels), len(q.Rels)-1, len(q.Joins))
	}
	// Union-find: joins that merge components become shared tree edges;
	// cycle-closing joins become per-query residual predicates.
	parent := make([]int, len(q.Rels))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	merges := 0
	for _, j := range q.Joins {
		li := q.aliasIdx(j.LeftAlias)
		ri := q.aliasIdx(j.RightAlias)
		if li < 0 || ri < 0 {
			return nil, fmt.Errorf("query %d (%s): join references unknown alias %q or %q", qi, q.Tag, j.LeftAlias, j.RightAlias)
		}
		ia, ca, ib, cb := p.insts[li], j.LeftCol, p.insts[ri], j.RightCol
		if ia > ib || (ia == ib && ca > cb) {
			ia, ca, ib, cb = ib, cb, ia, ca
		}
		a, b2 := find(li), find(ri)
		if a == b2 {
			if ia == ib {
				return nil, fmt.Errorf("query %d (%s): join of %s.%s with itself", qi, q.Tag, j.LeftAlias, j.LeftCol)
			}
			p.residuals = append(p.residuals, Residual{QID: qi, A: ia, ACol: ca, B: ib, BCol: cb})
			continue
		}
		parent[a] = b2
		merges++
		p.treeJoins = append(p.treeJoins, planJoin{ia, ca, ib, cb})
	}
	if merges != len(q.Rels)-1 {
		return nil, fmt.Errorf("query %d (%s): join graph disconnected", qi, q.Tag)
	}
	for _, f := range q.Filters {
		fi := q.aliasIdx(f.Alias)
		if fi < 0 {
			return nil, fmt.Errorf("query %d (%s): filter references unknown alias %q", qi, q.Tag, f.Alias)
		}
		switch f.Kind {
		case KindRange:
			if f.Lo > f.Hi {
				return nil, fmt.Errorf("query %d (%s): filter on %s.%s has empty range [%d,%d]", qi, q.Tag, f.Alias, f.Col, f.Lo, f.Hi)
			}
		case KindStrings:
			if len(f.Strs) == 0 {
				return nil, fmt.Errorf("query %d (%s): string filter on %s.%s has no literals", qi, q.Tag, f.Alias, f.Col)
			}
		}
		p.filters = append(p.filters, planFilter{p.insts[fi], f.Col, f.Kind, f.Lo, f.Hi, f.Strs})
	}
	return p, nil
}

// ExtendDelta reports what an applied extension added or touched, so the
// executor can grow its compiled state incrementally.
type ExtendDelta struct {
	QID         int
	NewInsts    []InstID // instances created by this extension
	NewEdges    []int    // edge IDs created by this extension
	NewSelCols  []int    // grouped-filter IDs created by this extension
	TouchedSels []int    // pre-existing grouped filters that gained predicates
}

// applyQuery mutates the batch according to a validated plan. It cannot
// fail. The resulting delta is stored for TakeDelta.
func (b *Batch) applyQuery(qi int, q *Query, p *queryPlan) {
	delta := ExtendDelta{QID: qi}
	q.ID = qi

	for _, key := range p.newInsts {
		id := InstID(len(b.Insts))
		b.instIdx[key] = id
		b.Insts = append(b.Insts, Instance{ID: id, Table: key.table, Occ: key.occ, Queries: bitset.New(b.QCap())})
		b.edgesOf = append(b.edgesOf, nil)
		b.selColsOf = append(b.selColsOf, nil)
		delta.NewInsts = append(delta.NewInsts, id)
	}

	for _, j := range p.treeJoins {
		k := edgeKey{j.a, j.aCol, j.b, j.bCol}
		ei, ok := b.edgeIdx[k]
		if !ok {
			ei = len(b.Edges)
			b.edgeIdx[k] = ei
			b.Edges = append(b.Edges, Edge{ID: ei, A: j.a, ACol: j.aCol, B: j.b, BCol: j.bCol, Queries: bitset.New(b.QCap())})
			b.edgesOf[j.a] = append(b.edgesOf[j.a], ei)
			if j.b != j.a {
				b.edgesOf[j.b] = append(b.edgesOf[j.b], ei)
			}
			delta.NewEdges = append(delta.NewEdges, ei)
		}
		// Copy-on-write: operator query sets reachable from a published
		// executor view are frozen — the streaming engine snapshots them
		// into lock-free episode state (exec view, EpisodeInput.SelOps), so
		// in-place bit flips would race with running episodes.
		nq := b.Edges[ei].Queries.Clone()
		nq.Add(qi)
		b.Edges[ei].Queries = nq
	}
	b.Residuals = append(b.Residuals, p.residuals...)

	touched := make(map[int]bool)
	for _, f := range p.filters {
		k := selKey{f.inst, f.col}
		si, ok := b.selIdx[k]
		if !ok {
			si = len(b.SelCols)
			b.selIdx[k] = si
			b.SelCols = append(b.SelCols, SelCol{ID: si, Inst: f.inst, Col: f.col, Queries: bitset.New(b.QCap())})
			b.selColsOf[f.inst] = append(b.selColsOf[f.inst], si)
			delta.NewSelCols = append(delta.NewSelCols, si)
		} else if !touched[si] && !containsInt(delta.NewSelCols, si) {
			touched[si] = true
			delta.TouchedSels = append(delta.TouchedSels, si)
		}
		sc := &b.SelCols[si]
		sc.Preds = append(sc.Preds, Pred{QID: qi, Kind: f.kind, Lo: f.lo, Hi: f.hi, Strs: f.strs})
		nq := sc.Queries.Clone() // copy-on-write, see the edge sets above
		nq.Add(qi)
		sc.Queries = nq
	}

	for _, inst := range p.insts {
		nq := b.Insts[inst].Queries.Clone() // copy-on-write
		nq.Add(qi)
		b.Insts[inst].Queries = nq
	}

	if qi == b.N {
		b.Queries = append(b.Queries, q)
		b.queryInst = append(b.queryInst, p.insts)
		b.N++
	} else {
		b.Queries[qi] = q
		b.queryInst[qi] = p.insts
	}
	b.delta = delta
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// TakeDelta returns the delta of the most recent successful Extend.
func (b *Batch) TakeDelta() ExtendDelta { return b.delta }

// RollbackExtend undoes the most recent Extend, given its delta: the
// appended instances, edges and grouped filters are removed again (they
// are the tails of their slices, so batch IDs stay dense and aligned with
// the executor's parallel arrays), the query's bits and predicates leave
// the surviving operators, and the query ID returns to the free pool.
// Valid only while no other Extend or RetireQueries has run since.
func (b *Batch) RollbackExtend(d ExtendDelta) {
	if len(d.NewSelCols) > 0 {
		first := d.NewSelCols[0]
		for _, si := range d.NewSelCols {
			sc := &b.SelCols[si]
			delete(b.selIdx, selKey{sc.Inst, sc.Col})
		}
		b.SelCols = b.SelCols[:first]
		for i := range b.selColsOf {
			l := b.selColsOf[i]
			for len(l) > 0 && l[len(l)-1] >= first {
				l = l[:len(l)-1]
			}
			b.selColsOf[i] = l
		}
	}
	if len(d.NewEdges) > 0 {
		first := d.NewEdges[0]
		for _, ei := range d.NewEdges {
			e := &b.Edges[ei]
			delete(b.edgeIdx, edgeKey{e.A, e.ACol, e.B, e.BCol})
		}
		b.Edges = b.Edges[:first]
		for i := range b.edgesOf {
			l := b.edgesOf[i]
			for len(l) > 0 && l[len(l)-1] >= first {
				l = l[:len(l)-1]
			}
			b.edgesOf[i] = l
		}
	}
	if len(d.NewInsts) > 0 {
		first := int(d.NewInsts[0])
		for _, ii := range d.NewInsts {
			in := &b.Insts[ii]
			delete(b.instIdx, instKey{in.Table, in.Occ})
		}
		b.Insts = b.Insts[:first]
		b.edgesOf = b.edgesOf[:first]
		b.selColsOf = b.selColsOf[:first]
	}
	// Scrub the query's bits, predicates and residuals from what survives.
	r := bitset.New(b.QCap())
	r.Add(d.QID)
	b.RetireQueries(r)
	b.ReleaseQID(d.QID)
}

// RetireQueries clears the given queries from the batch's shared-operator
// sets: their bits leave every instance/edge/grouped-filter query set,
// their predicates leave the grouped filters, and their residuals are
// dropped. It returns the IDs of pre-existing grouped filters whose
// predicate lists changed (the executor rebuilds those). Query-ID slots
// are NOT freed — call ReleaseQID once all executor state is swept.
func (b *Batch) RetireQueries(retired bitset.Set) (changedSels []int) {
	// Query sets are replaced, not masked in place: published executor
	// views and in-flight episode state alias the old backing arrays
	// (copy-on-write contract, see applyQuery).
	for i := range b.Insts {
		b.Insts[i].Queries = bitset.AndNot(b.Insts[i].Queries, retired)
	}
	for i := range b.Edges {
		b.Edges[i].Queries = bitset.AndNot(b.Edges[i].Queries, retired)
	}
	for i := range b.SelCols {
		sc := &b.SelCols[i]
		if !bitset.Intersects(sc.Queries, retired) {
			continue
		}
		kept := sc.Preds[:0]
		for _, p := range sc.Preds {
			if !retired.Contains(p.QID) {
				kept = append(kept, p)
			}
		}
		sc.Preds = kept
		sc.Queries = bitset.AndNot(sc.Queries, retired)
		changedSels = append(changedSels, sc.ID)
	}
	keptRes := b.Residuals[:0]
	for _, r := range b.Residuals {
		if !retired.Contains(r.QID) {
			keptRes = append(keptRes, r)
		}
	}
	b.Residuals = keptRes
	return changedSels
}

// ReleaseQID returns a retired query's ID to the free pool for reuse by a
// later Extend. The caller must have cleared all executor state referring
// to the ID first (RetireQueries plus STeM/policy sweeps).
func (b *Batch) ReleaseQID(qid int) {
	b.freeIDs = append(b.freeIDs, qid)
}

type edgeKey struct {
	a    InstID
	aCol string
	b    InstID
	bCol string
}

type selKey struct {
	inst InstID
	col  string
}

// EdgesOf returns the IDs of edges touching instance inst.
func (b *Batch) EdgesOf(inst InstID) []int { return b.edgesOf[inst] }

// SelColsOf returns the IDs of grouped filters on instance inst.
func (b *Batch) SelColsOf(inst InstID) []int { return b.selColsOf[inst] }

// QueryInsts returns the instance of each RelRef position of query qid.
func (b *Batch) QueryInsts(qid int) []InstID { return b.queryInst[qid] }

// InstOfAlias resolves a query's alias to its batch instance.
func (b *Batch) InstOfAlias(qid int, alias string) (InstID, bool) {
	q := b.Queries[qid]
	i := q.aliasIdx(alias)
	if i < 0 {
		return 0, false
	}
	return b.queryInst[qid][i], true
}

// QueryLineage returns the lineage bitmask covering all of query qid's
// instances.
func (b *Batch) QueryLineage(qid int) uint64 {
	var l uint64
	for _, inst := range b.queryInst[qid] {
		l |= 1 << inst
	}
	return l
}

// QueryEdges returns the IDs of the edges used by query qid.
func (b *Batch) QueryEdges(qid int) []int {
	var out []int
	for _, e := range b.Edges {
		if e.Queries.Contains(qid) {
			out = append(out, e.ID)
		}
	}
	return out
}

// Candidates appends to dst the candidate edges for virtual vector (L, Q):
// edges with exactly one endpoint inside lineage L whose query set
// intersects Q (Definition 5 of the paper). It returns the extended slice.
func (b *Batch) Candidates(dst []int, lineage uint64, q bitset.Set) []int {
	for i := range b.Edges {
		e := &b.Edges[i]
		aIn := lineage&(1<<e.A) != 0
		bIn := lineage&(1<<e.B) != 0
		if aIn == bIn {
			continue
		}
		if bitset.Intersects(q, e.Queries) {
			dst = append(dst, e.ID)
		}
	}
	return dst
}

// FilterRange returns the effective [lo,hi] range of query qid's RANGE
// predicates on (inst, col), combining multiple predicates by intersection,
// and ok=false if the query has no range predicate there. Typed predicates
// (strings, IS [NOT] NULL) are ignored: callers use it for range-selectivity
// estimates only.
func (b *Batch) FilterRange(qid int, inst InstID, col string) (lo, hi int64, ok bool) {
	for _, si := range b.selColsOf[inst] {
		sc := &b.SelCols[si]
		if sc.Col != col {
			continue
		}
		for _, p := range sc.Preds {
			if p.QID != qid || p.Kind != KindRange {
				continue
			}
			if !ok {
				lo, hi, ok = p.Lo, p.Hi, true
			} else {
				if p.Lo > lo {
					lo = p.Lo
				}
				if p.Hi < hi {
					hi = p.Hi
				}
			}
		}
	}
	return lo, hi, ok
}

// FindInstance resolves the batch instance for the occ-th use of table, as
// assigned at compile time.
func (b *Batch) FindInstance(table string, occ int) (InstID, bool) {
	id, ok := b.instIdx[instKey{table, occ}]
	return id, ok
}

// ResidualsOf returns query qid's cycle-closing predicates.
func (b *Batch) ResidualsOf(qid int) []Residual {
	var out []Residual
	for _, r := range b.Residuals {
		if r.QID == qid {
			out = append(out, r)
		}
	}
	return out
}
