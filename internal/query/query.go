// Package query models SPJ sub-queries and compiles batches of them into
// the shared-operator form RouLette executes: batch-level relation
// instances, normalized equi-join edges with per-edge query sets, and
// grouped-filter columns with per-query predicate ranges.
package query

import (
	"fmt"

	"github.com/roulette-db/roulette/internal/bitset"
)

// InstID identifies a relation instance within a compiled batch. Lineages
// are uint64 bitmasks over InstIDs, so a batch holds at most 64 instances.
type InstID uint8

// MaxInstances bounds distinct relation instances per batch (lineages are
// single-word bitmasks, as in the paper's bitset-keyed Q-table).
const MaxInstances = 64

// RelRef names a relation use inside one query. Alias defaults to Table
// when empty; self-joins need distinct aliases.
type RelRef struct {
	Table string
	Alias string
}

// Join is an equi-join predicate between two aliases of one query.
type Join struct {
	LeftAlias  string
	LeftCol    string
	RightAlias string
	RightCol   string
}

// Filter restricts alias.Col to the inclusive range [Lo, Hi]. Equality and
// one-sided comparisons are expressed as degenerate ranges.
type Filter struct {
	Alias string
	Col   string
	Lo    int64
	Hi    int64
}

// AggKind selects the host-side aggregate applied to a query's SPJ output.
type AggKind int

// Host-side aggregate kinds.
const (
	AggCount AggKind = iota // COUNT(*)
	AggSum                  // SUM(alias.col)
	AggMin                  // MIN(alias.col)
	AggMax                  // MAX(alias.col)
	AggAvg                  // AVG(alias.col), integer division
)

// NeedsColumn reports whether the aggregate reads an input column.
func (k AggKind) NeedsColumn() bool { return k != AggCount }

// Agg describes the host-side consumer of a query's RouLette source.
// GroupByAlias/GroupByCol, when set, group the aggregate; Sorted requests
// ordered group output (RouLette does not preserve interesting orders, so
// the host adds the sort, §3 "Query Optimizer").
type Agg struct {
	Kind         AggKind
	Alias        string
	Col          string
	GroupByAlias string
	GroupByCol   string
	Sorted       bool
}

// Query is one SPJ sub-query delegated to RouLette.
type Query struct {
	ID      int // assigned at batch compile time
	Tag     string
	Rels    []RelRef
	Joins   []Join
	Filters []Filter
	Agg     Agg
}

// aliasOf resolves an alias to its RelRef index, or -1.
func (q *Query) aliasIdx(alias string) int {
	for i, r := range q.Rels {
		a := r.Alias
		if a == "" {
			a = r.Table
		}
		if a == alias {
			return i
		}
	}
	return -1
}

// Instance is a batch-level relation instance: the occ-th use of Table
// within a single query. Queries using a table once all share instance
// (Table, 0), which is what lets their scans and STeMs be shared.
type Instance struct {
	ID    InstID
	Table string
	Occ   int
	// Queries contains every query that uses this instance.
	Queries bitset.Set
}

// Edge is a normalized shared join operator: an equi-join between two
// instances on a fixed column pair. Queries joining the same instance pair
// on the same columns share the edge.
type Edge struct {
	ID   int
	A    InstID
	ACol string
	B    InstID
	BCol string
	// Queries contains every query whose join list includes this edge.
	Queries bitset.Set
}

// Other returns the endpoint opposite to inst, and ok=false if inst is not
// an endpoint.
func (e *Edge) Other(inst InstID) (InstID, bool) {
	switch inst {
	case e.A:
		return e.B, true
	case e.B:
		return e.A, true
	}
	return 0, false
}

// Col returns the join column on the given endpoint.
func (e *Edge) Col(inst InstID) string {
	if inst == e.A {
		return e.ACol
	}
	return e.BCol
}

// Pred is one query's predicate inside a grouped filter.
type Pred struct {
	QID int
	Lo  int64
	Hi  int64
}

// SelCol is a shared selection operator: a grouped filter evaluating every
// query's predicates on one (instance, column) pair at once.
type SelCol struct {
	ID    int
	Inst  InstID
	Col   string
	Preds []Pred
	// Queries contains every query with at least one predicate on the column.
	Queries bitset.Set
}

// Residual is a cycle-closing equi-join predicate of one query: its join
// graph's spanning tree drives the shared plan, and the residual is applied
// as a per-query filter at the probe that brings its second endpoint into
// the lineage (the standard treatment of cyclic join graphs in n-ary
// symmetric joins).
type Residual struct {
	QID  int
	A    InstID
	ACol string
	B    InstID
	BCol string
}

// Batch is a compiled set of queries sharing instances, edges and grouped
// filters. It is the unit RouLette schedules and adapts over.
type Batch struct {
	Queries []*Query
	N       int // number of queries; bitsets are sized for N

	Insts     []Instance
	Edges     []Edge
	SelCols   []SelCol
	Residuals []Residual

	edgesOf   [][]int // instance -> edge IDs touching it
	selColsOf [][]int // instance -> SelCol IDs on it
	instIdx   map[instKey]InstID
	queryInst [][]InstID // query -> instance per RelRef position
}

type instKey struct {
	table string
	occ   int
}

// Compile validates queries and builds the batch's shared-operator form.
// Every query's join graph must be connected; a spanning tree of it drives
// the shared plan and any cycle-closing joins become residual predicates.
// Query IDs are assigned 0..len(qs)-1.
func Compile(qs []*Query) (*Batch, error) {
	b := &Batch{
		Queries: qs,
		N:       len(qs),
		instIdx: make(map[instKey]InstID),
	}
	edgeIdx := make(map[edgeKey]int)
	selIdx := make(map[selKey]int)
	b.queryInst = make([][]InstID, len(qs))

	for qi, q := range qs {
		q.ID = qi
		if len(q.Rels) == 0 {
			return nil, fmt.Errorf("query %d (%s): no relations", qi, q.Tag)
		}
		// Map each RelRef to a batch instance: the k-th occurrence of a
		// table within this query is instance (table, k).
		occ := make(map[string]int)
		insts := make([]InstID, len(q.Rels))
		seen := make(map[string]bool)
		for ri, r := range q.Rels {
			alias := r.Alias
			if alias == "" {
				alias = r.Table
			}
			if seen[alias] {
				return nil, fmt.Errorf("query %d (%s): duplicate alias %q", qi, q.Tag, alias)
			}
			seen[alias] = true
			k := occ[r.Table]
			occ[r.Table] = k + 1
			insts[ri] = b.intern(instKey{r.Table, k})
		}
		b.queryInst[qi] = insts

		if len(q.Joins) < len(q.Rels)-1 {
			return nil, fmt.Errorf("query %d (%s): join graph disconnected (%d rels need at least %d joins, have %d)",
				qi, q.Tag, len(q.Rels), len(q.Rels)-1, len(q.Joins))
		}
		// Union-find: joins that merge components become shared tree edges;
		// cycle-closing joins become per-query residual predicates.
		parent := make([]int, len(q.Rels))
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		merges := 0
		for _, j := range q.Joins {
			li := q.aliasIdx(j.LeftAlias)
			ri := q.aliasIdx(j.RightAlias)
			if li < 0 || ri < 0 {
				return nil, fmt.Errorf("query %d (%s): join references unknown alias %q or %q", qi, q.Tag, j.LeftAlias, j.RightAlias)
			}
			ia, ca, ib, cb := insts[li], j.LeftCol, insts[ri], j.RightCol
			if ia > ib || (ia == ib && ca > cb) {
				ia, ca, ib, cb = ib, cb, ia, ca
			}
			a, b2 := find(li), find(ri)
			if a == b2 {
				if ia == ib {
					return nil, fmt.Errorf("query %d (%s): join of %s.%s with itself", qi, q.Tag, j.LeftAlias, j.LeftCol)
				}
				b.Residuals = append(b.Residuals, Residual{QID: qi, A: ia, ACol: ca, B: ib, BCol: cb})
				continue
			}
			parent[a] = b2
			merges++

			k := edgeKey{ia, ca, ib, cb}
			ei, ok := edgeIdx[k]
			if !ok {
				ei = len(b.Edges)
				edgeIdx[k] = ei
				b.Edges = append(b.Edges, Edge{ID: ei, A: ia, ACol: ca, B: ib, BCol: cb, Queries: bitset.New(len(qs))})
			}
			b.Edges[ei].Queries.Add(qi)
		}
		if merges != len(q.Rels)-1 {
			return nil, fmt.Errorf("query %d (%s): join graph disconnected", qi, q.Tag)
		}
		for _, f := range q.Filters {
			fi := q.aliasIdx(f.Alias)
			if fi < 0 {
				return nil, fmt.Errorf("query %d (%s): filter references unknown alias %q", qi, q.Tag, f.Alias)
			}
			if f.Lo > f.Hi {
				return nil, fmt.Errorf("query %d (%s): filter on %s.%s has empty range [%d,%d]", qi, q.Tag, f.Alias, f.Col, f.Lo, f.Hi)
			}
			k := selKey{insts[fi], f.Col}
			si, ok := selIdx[k]
			if !ok {
				si = len(b.SelCols)
				selIdx[k] = si
				b.SelCols = append(b.SelCols, SelCol{ID: si, Inst: insts[fi], Col: f.Col, Queries: bitset.New(len(qs))})
			}
			sc := &b.SelCols[si]
			sc.Preds = append(sc.Preds, Pred{QID: qi, Lo: f.Lo, Hi: f.Hi})
			sc.Queries.Add(qi)
		}
		for _, inst := range insts {
			b.Insts[inst].Queries.Add(qi)
		}
	}

	b.edgesOf = make([][]int, len(b.Insts))
	for _, e := range b.Edges {
		b.edgesOf[e.A] = append(b.edgesOf[e.A], e.ID)
		b.edgesOf[e.B] = append(b.edgesOf[e.B], e.ID)
	}
	b.selColsOf = make([][]int, len(b.Insts))
	for _, s := range b.SelCols {
		b.selColsOf[s.Inst] = append(b.selColsOf[s.Inst], s.ID)
	}
	return b, nil
}

func (b *Batch) intern(k instKey) InstID {
	if id, ok := b.instIdx[k]; ok {
		return id
	}
	if len(b.Insts) >= MaxInstances {
		panic(fmt.Sprintf("query: batch exceeds %d relation instances", MaxInstances))
	}
	id := InstID(len(b.Insts))
	b.instIdx[k] = id
	b.Insts = append(b.Insts, Instance{ID: id, Table: k.table, Occ: k.occ, Queries: bitset.New(b.N)})
	return id
}

type edgeKey struct {
	a    InstID
	aCol string
	b    InstID
	bCol string
}

type selKey struct {
	inst InstID
	col  string
}

// EdgesOf returns the IDs of edges touching instance inst.
func (b *Batch) EdgesOf(inst InstID) []int { return b.edgesOf[inst] }

// SelColsOf returns the IDs of grouped filters on instance inst.
func (b *Batch) SelColsOf(inst InstID) []int { return b.selColsOf[inst] }

// QueryInsts returns the instance of each RelRef position of query qid.
func (b *Batch) QueryInsts(qid int) []InstID { return b.queryInst[qid] }

// InstOfAlias resolves a query's alias to its batch instance.
func (b *Batch) InstOfAlias(qid int, alias string) (InstID, bool) {
	q := b.Queries[qid]
	i := q.aliasIdx(alias)
	if i < 0 {
		return 0, false
	}
	return b.queryInst[qid][i], true
}

// QueryLineage returns the lineage bitmask covering all of query qid's
// instances.
func (b *Batch) QueryLineage(qid int) uint64 {
	var l uint64
	for _, inst := range b.queryInst[qid] {
		l |= 1 << inst
	}
	return l
}

// QueryEdges returns the IDs of the edges used by query qid.
func (b *Batch) QueryEdges(qid int) []int {
	var out []int
	for _, e := range b.Edges {
		if e.Queries.Contains(qid) {
			out = append(out, e.ID)
		}
	}
	return out
}

// Candidates appends to dst the candidate edges for virtual vector (L, Q):
// edges with exactly one endpoint inside lineage L whose query set
// intersects Q (Definition 5 of the paper). It returns the extended slice.
func (b *Batch) Candidates(dst []int, lineage uint64, q bitset.Set) []int {
	for i := range b.Edges {
		e := &b.Edges[i]
		aIn := lineage&(1<<e.A) != 0
		bIn := lineage&(1<<e.B) != 0
		if aIn == bIn {
			continue
		}
		if bitset.Intersects(q, e.Queries) {
			dst = append(dst, e.ID)
		}
	}
	return dst
}

// FilterRange returns the effective [lo,hi] range of query qid's predicates
// on (inst, col), combining multiple predicates by intersection, and
// ok=false if the query has no predicate there.
func (b *Batch) FilterRange(qid int, inst InstID, col string) (lo, hi int64, ok bool) {
	for _, si := range b.selColsOf[inst] {
		sc := &b.SelCols[si]
		if sc.Col != col {
			continue
		}
		for _, p := range sc.Preds {
			if p.QID != qid {
				continue
			}
			if !ok {
				lo, hi, ok = p.Lo, p.Hi, true
			} else {
				if p.Lo > lo {
					lo = p.Lo
				}
				if p.Hi < hi {
					hi = p.Hi
				}
			}
		}
	}
	return lo, hi, ok
}

// FindInstance resolves the batch instance for the occ-th use of table, as
// assigned at compile time.
func (b *Batch) FindInstance(table string, occ int) (InstID, bool) {
	id, ok := b.instIdx[instKey{table, occ}]
	return id, ok
}

// ResidualsOf returns query qid's cycle-closing predicates.
func (b *Batch) ResidualsOf(qid int) []Residual {
	var out []Residual
	for _, r := range b.Residuals {
		if r.QID == qid {
			out = append(out, r)
		}
	}
	return out
}
