package query

import (
	"testing"

	"github.com/roulette-db/roulette/internal/bitset"
)

// twoQueryBatch builds the paper's Figure 1 pair:
//
//	Q0: R ⋈ S ⋈ T ⋈ U  (R.a=S.a, R.b=T.b, S.c=U.c)
//	Q1: R ⋈ S ⋈ U ⋈ V  (R.a=S.a, S.c=U.c, S.d=V.d)
func twoQueryBatch(t *testing.T) *Batch {
	t.Helper()
	q0 := &Query{
		Tag:  "q0",
		Rels: []RelRef{{Table: "R"}, {Table: "S"}, {Table: "T"}, {Table: "U"}},
		Joins: []Join{
			{"R", "a", "S", "a"},
			{"R", "b", "T", "b"},
			{"S", "c", "U", "c"},
		},
	}
	q1 := &Query{
		Tag:  "q1",
		Rels: []RelRef{{Table: "R"}, {Table: "S"}, {Table: "U"}, {Table: "V"}},
		Joins: []Join{
			{"R", "a", "S", "a"},
			{"S", "c", "U", "c"},
			{"S", "d", "V", "d"},
		},
		Filters: []Filter{{Alias: "R", Col: "x", Lo: 0, Hi: 10}},
	}
	b, err := Compile([]*Query{q0, q1})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return b
}

func TestCompileSharesInstancesAndEdges(t *testing.T) {
	b := twoQueryBatch(t)
	if len(b.Insts) != 5 { // R S T U V
		t.Fatalf("instances = %d, want 5", len(b.Insts))
	}
	if len(b.Edges) != 4 { // R-S, R-T, S-U, S-V
		t.Fatalf("edges = %d, want 4", len(b.Edges))
	}
	// R-S and S-U must be shared by both queries.
	shared := 0
	for _, e := range b.Edges {
		if e.Queries.Count() == 2 {
			shared++
		}
	}
	if shared != 2 {
		t.Errorf("shared edges = %d, want 2", shared)
	}
	// Filter becomes one grouped filter on (R, x) owned by q1 only.
	if len(b.SelCols) != 1 {
		t.Fatalf("selcols = %d, want 1", len(b.SelCols))
	}
	sc := b.SelCols[0]
	if !sc.Queries.Contains(1) || sc.Queries.Contains(0) {
		t.Errorf("selcol queries = %v", sc.Queries)
	}
	lo, hi, ok := b.FilterRange(1, sc.Inst, "x")
	if !ok || lo != 0 || hi != 10 {
		t.Errorf("FilterRange = %d,%d,%v", lo, hi, ok)
	}
	if _, _, ok := b.FilterRange(0, sc.Inst, "x"); ok {
		t.Error("q0 should have no filter range")
	}
}

func TestCandidates(t *testing.T) {
	b := twoQueryBatch(t)
	rInst, _ := b.InstOfAlias(0, "R")
	both := bitset.NewFull(2)

	// From {R} with both queries: candidates are R-S (shared) and R-T (q0).
	cands := b.Candidates(nil, 1<<rInst, both)
	if len(cands) != 2 {
		t.Fatalf("cands from {R} = %v, want 2 edges", cands)
	}
	// From {R,S}: R-T (q0), S-U (both), S-V (q1).
	sInst, _ := b.InstOfAlias(0, "S")
	l := uint64(1<<rInst | 1<<sInst)
	cands = b.Candidates(nil, l, both)
	if len(cands) != 3 {
		t.Fatalf("cands from {R,S} = %v, want 3 edges", cands)
	}
	// Only q0: S-V must disappear.
	q0Only := bitset.FromIDs(2, 0)
	cands = b.Candidates(cands[:0], l, q0Only)
	if len(cands) != 2 {
		t.Fatalf("cands from {R,S} for q0 = %v, want 2 edges", cands)
	}
	// Full lineage of q0 with q0 only: no candidates.
	cands = b.Candidates(nil, b.QueryLineage(0), q0Only)
	if len(cands) != 0 {
		t.Fatalf("cands at q0's full lineage = %v, want none", cands)
	}
}

func TestQueryLineageAndEdges(t *testing.T) {
	b := twoQueryBatch(t)
	l0 := b.QueryLineage(0)
	if c := popcount(l0); c != 4 {
		t.Errorf("q0 lineage size = %d, want 4", c)
	}
	if got := len(b.QueryEdges(0)); got != 3 {
		t.Errorf("q0 edges = %d, want 3", got)
	}
	if got := len(b.QueryEdges(1)); got != 3 {
		t.Errorf("q1 edges = %d, want 3", got)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestCompileCyclicBecomesResidual(t *testing.T) {
	q := &Query{
		Rels: []RelRef{{Table: "R"}, {Table: "S"}, {Table: "T"}},
		Joins: []Join{
			{"R", "a", "S", "a"},
			{"S", "b", "T", "b"},
			{"T", "c", "R", "c"},
		},
	}
	b, err := Compile([]*Query{q})
	if err != nil {
		t.Fatalf("cyclic join graph rejected: %v", err)
	}
	if len(b.Edges) != 2 {
		t.Errorf("tree edges = %d, want 2", len(b.Edges))
	}
	if len(b.Residuals) != 1 {
		t.Fatalf("residuals = %d, want 1", len(b.Residuals))
	}
	r := b.Residuals[0]
	if r.QID != 0 || r.A == r.B {
		t.Errorf("residual = %+v", r)
	}
	if got := b.ResidualsOf(0); len(got) != 1 {
		t.Errorf("ResidualsOf = %v", got)
	}
	if got := b.ResidualsOf(1); len(got) != 0 {
		t.Errorf("ResidualsOf(1) = %v", got)
	}
	// Self-comparison predicates are still rejected.
	bad := &Query{
		Rels:  []RelRef{{Table: "R"}, {Table: "S"}},
		Joins: []Join{{"R", "a", "S", "a"}, {"R", "b", "R", "c"}},
	}
	if _, err := Compile([]*Query{bad}); err == nil {
		t.Error("same-instance join accepted")
	}
}

func TestCompileRejectsDisconnected(t *testing.T) {
	q := &Query{
		Rels:  []RelRef{{Table: "R"}, {Table: "S"}, {Table: "T"}},
		Joins: []Join{{"R", "a", "S", "a"}},
	}
	if _, err := Compile([]*Query{q}); err == nil {
		t.Error("disconnected join graph accepted (too few joins)")
	}
}

func TestCompileRejectsBadRefs(t *testing.T) {
	bad := []*Query{
		{Rels: nil},
		{
			Rels:  []RelRef{{Table: "R"}, {Table: "S"}},
			Joins: []Join{{"R", "a", "X", "a"}},
		},
		{
			Rels:    []RelRef{{Table: "R"}},
			Filters: []Filter{{Alias: "Z", Col: "c", Lo: 0, Hi: 1}},
		},
		{
			Rels:    []RelRef{{Table: "R"}},
			Filters: []Filter{{Alias: "R", Col: "c", Lo: 5, Hi: 1}},
		},
		{
			Rels: []RelRef{{Table: "R", Alias: "x"}, {Table: "S", Alias: "x"}},
		},
	}
	for i, q := range bad {
		if _, err := Compile([]*Query{q}); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

func TestSelfJoinGetsTwoInstances(t *testing.T) {
	q := &Query{
		Rels:  []RelRef{{Table: "R", Alias: "r1"}, {Table: "R", Alias: "r2"}},
		Joins: []Join{{"r1", "a", "r2", "b"}},
	}
	b, err := Compile([]*Query{q})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(b.Insts) != 2 {
		t.Fatalf("self-join instances = %d, want 2", len(b.Insts))
	}
	if b.Insts[0].Table != "R" || b.Insts[1].Table != "R" || b.Insts[0].Occ == b.Insts[1].Occ {
		t.Errorf("instances = %+v", b.Insts)
	}
}

func TestInstanceSharingAcrossQueries(t *testing.T) {
	// Two queries both using R once must share instance (R,0).
	mk := func(tag string) *Query {
		return &Query{
			Tag:   tag,
			Rels:  []RelRef{{Table: "R"}, {Table: "S"}},
			Joins: []Join{{"R", "a", "S", "a"}},
		}
	}
	b, err := Compile([]*Query{mk("a"), mk("b")})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Insts) != 2 {
		t.Fatalf("instances = %d, want 2", len(b.Insts))
	}
	for _, in := range b.Insts {
		if in.Queries.Count() != 2 {
			t.Errorf("instance %s queries = %v", in.Table, in.Queries)
		}
	}
	if len(b.Edges) != 1 || b.Edges[0].Queries.Count() != 2 {
		t.Errorf("edge sharing broken: %+v", b.Edges)
	}
}

func TestFilterRangeIntersectsMultiplePreds(t *testing.T) {
	q := &Query{
		Rels: []RelRef{{Table: "R"}},
		Filters: []Filter{
			{Alias: "R", Col: "c", Lo: 0, Hi: 50},
			{Alias: "R", Col: "c", Lo: 20, Hi: 90},
		},
	}
	b, err := Compile([]*Query{q})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := b.FilterRange(0, 0, "c")
	if !ok || lo != 20 || hi != 50 {
		t.Errorf("FilterRange = %d,%d,%v; want 20,50,true", lo, hi, ok)
	}
}
