package query

import "sort"

// Template signatures canonicalize a query's join-graph shape so that
// recurring queries — same relations, same join edges, same filter columns
// and kinds, regardless of alias names, clause order, positional query IDs
// or submission order — hash to the same 64-bit value. They are the keys of
// the cross-batch policy cache (DESIGN.md §14): a learned Q-table snapshot
// taken for one run of a template warm-starts every later run.
//
// Two tiers:
//
//   - TemplateSig ignores predicate constants: queries that differ only in
//     BETWEEN bounds or IN literals share a signature, because the routing
//     problem they pose to the learned policy is the same shape.
//   - QuerySig includes constants and the aggregate shape. It is the
//     tie-breaker that orders same-template queries deterministically when
//     a set of queries is mapped onto canonical template-relative indices.
//
// Both reuse the FNV-1a folding idiom of the episode plan signatures
// (internal/exec/episode.go).

const (
	sigOffset uint64 = 14695981039346656037
	sigPrime  uint64 = 1099511628211
)

// sigFold folds one 64-bit value into an FNV-1a accumulator byte-wise.
func sigFold(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * sigPrime
		v >>= 8
	}
	return h
}

// sigStr folds a string (length-prefixed, so concatenations cannot collide).
func sigStr(h uint64, s string) uint64 {
	h = sigFold(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * sigPrime
	}
	return h
}

// sigSetFold folds a multiset of component hashes order-independently:
// sort, then fold sequentially. The count is folded first so {h} and
// {h, h} differ.
func sigSetFold(h uint64, parts []uint64) uint64 {
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	h = sigFold(h, uint64(len(parts)))
	for _, p := range parts {
		h = sigFold(h, p)
	}
	return h
}

// tplRef is an alias resolved to its canonical (table, occurrence)
// identity — the k-th use of a table within one query is occurrence k,
// mirroring planQuery's instance interning, so the signature names the
// same shared instances the compiled batch will.
type tplRef struct {
	table string
	occ   int
}

// templateRefs resolves every relation of q to its (table, occ) identity,
// in Rels order (the order planQuery assigns occurrences in).
func templateRefs(q *Query) []tplRef {
	refs := make([]tplRef, len(q.Rels))
	occ := make(map[string]int, len(q.Rels))
	for i, r := range q.Rels {
		k := occ[r.Table]
		occ[r.Table] = k + 1
		refs[i] = tplRef{r.Table, k}
	}
	return refs
}

// sigRef folds a tplRef.
func sigRef(h uint64, r tplRef) uint64 {
	h = sigStr(h, r.table)
	return sigFold(h, uint64(r.occ))
}

// querySig computes the signature; withConsts selects QuerySig semantics.
func querySig(q *Query, withConsts bool) uint64 {
	refs := templateRefs(q)
	byAlias := func(alias string) tplRef {
		if i := q.aliasIdx(alias); i >= 0 {
			return refs[i]
		}
		// Unknown alias: Compile will reject the query; keep the hash total.
		return tplRef{alias, -1}
	}

	// Relations: order-independent multiset of (table, occ).
	parts := make([]uint64, 0, len(refs))
	for _, r := range refs {
		parts = append(parts, sigRef(sigOffset^1, r))
	}
	h := sigSetFold(sigOffset, parts)

	// Joins: each normalized exactly as planQuery normalizes edges — swap
	// endpoints so the smaller (table, occ, col) triple comes first — then
	// folded order-independently.
	parts = parts[:0]
	for _, j := range q.Joins {
		a, ac := byAlias(j.LeftAlias), j.LeftCol
		b, bc := byAlias(j.RightAlias), j.RightCol
		if a.table > b.table || (a.table == b.table && (a.occ > b.occ || (a.occ == b.occ && ac > bc))) {
			a, ac, b, bc = b, bc, a, ac
		}
		jh := sigRef(sigOffset^2, a)
		jh = sigStr(jh, ac)
		jh = sigRef(jh, b)
		jh = sigStr(jh, bc)
		parts = append(parts, jh)
	}
	h = sigSetFold(h, parts)

	// Filters: (table, occ, column, kind); constants only for QuerySig.
	parts = parts[:0]
	for _, f := range q.Filters {
		fh := sigRef(sigOffset^3, byAlias(f.Alias))
		fh = sigStr(fh, f.Col)
		fh = sigFold(fh, uint64(f.Kind))
		if withConsts {
			fh = sigFold(fh, uint64(f.Lo))
			fh = sigFold(fh, uint64(f.Hi))
			strs := append([]string(nil), f.Strs...)
			sort.Strings(strs)
			for _, s := range strs {
				fh = sigStr(fh, s)
			}
		}
		parts = append(parts, fh)
	}
	h = sigSetFold(h, parts)

	// Aggregate shape rides only on QuerySig: it is host-side and does not
	// change the routing problem, so templates stay aggregate-agnostic.
	if withConsts {
		ah := sigFold(sigOffset^4, uint64(q.Agg.Kind))
		if q.Agg.Kind.NeedsColumn() {
			ah = sigRef(ah, byAlias(q.Agg.Alias))
			ah = sigStr(ah, q.Agg.Col)
		}
		if q.Agg.GroupByCol != "" {
			ah = sigRef(ah, byAlias(q.Agg.GroupByAlias))
			ah = sigStr(ah, q.Agg.GroupByCol)
		}
		if q.Agg.Sorted {
			ah = sigFold(ah, 1)
		}
		h = sigFold(h, ah)
	}
	return h
}

// TemplateSig returns the canonical template signature of q: an FNV-1a
// hash over the normalized join-graph shape (relation identities as
// (table, occurrence) pairs, normalized join edges, filter columns and
// kinds) that is independent of alias names, clause order, positional
// query IDs and submission order. Predicate constants and the aggregate
// are excluded: queries differing only in those share a template.
func TemplateSig(q *Query) uint64 { return querySig(q, false) }

// QuerySig returns the constants-included signature of q. Same-template
// queries sort deterministically by QuerySig, which is how a set of live
// queries is assigned canonical template-relative indices.
func QuerySig(q *Query) uint64 { return querySig(q, true) }

// SetSig folds a multiset of per-query template signatures into one
// order-independent set signature — the policy-cache key for a batch or a
// live query set.
func SetSig(sigs []uint64) uint64 {
	parts := append([]uint64(nil), sigs...)
	return sigSetFold(sigOffset^5, parts)
}
