package query

import "testing"

// tq builds the canonical three-way test query: store_sales ⋈ date_dim,
// store_sales ⋈ item, with a range filter on date_dim.
func tq() *Query {
	return &Query{
		Tag:  "a",
		Rels: []RelRef{{Table: "store_sales"}, {Table: "date_dim"}, {Table: "item"}},
		Joins: []Join{
			{LeftAlias: "store_sales", LeftCol: "sold_date_sk", RightAlias: "date_dim", RightCol: "d_date_sk"},
			{LeftAlias: "store_sales", LeftCol: "item_sk", RightAlias: "item", RightCol: "i_item_sk"},
		},
		Filters: []Filter{{Alias: "date_dim", Col: "u", Lo: 10, Hi: 200}},
	}
}

func TestTemplateSigStableAcrossClauseOrderAndAliases(t *testing.T) {
	base := TemplateSig(tq())

	// Reordered joins and filters: same template.
	q := tq()
	q.Joins[0], q.Joins[1] = q.Joins[1], q.Joins[0]
	if got := TemplateSig(q); got != base {
		t.Fatalf("join order changed the signature: %x vs %x", got, base)
	}

	// Swapped join endpoints: planQuery normalizes the edge, so must we.
	q = tq()
	j := q.Joins[0]
	q.Joins[0] = Join{LeftAlias: j.RightAlias, LeftCol: j.RightCol, RightAlias: j.LeftAlias, RightCol: j.LeftCol}
	if got := TemplateSig(q); got != base {
		t.Fatalf("endpoint swap changed the signature: %x vs %x", got, base)
	}

	// Renamed aliases: identity is (table, occurrence), not the alias.
	q = tq()
	q.Rels[1].Alias = "d"
	q.Joins[0].RightAlias = "d"
	q.Filters[0].Alias = "d"
	if got := TemplateSig(q); got != base {
		t.Fatalf("alias rename changed the signature: %x vs %x", got, base)
	}

	// Different tag, different constants, different aggregate: same template.
	q = tq()
	q.Tag = "b"
	q.Filters[0].Lo, q.Filters[0].Hi = 500, 700
	q.Agg = Agg{Kind: AggSum, Alias: "item", Col: "u"}
	if got := TemplateSig(q); got != base {
		t.Fatalf("constants/agg changed the template signature: %x vs %x", got, base)
	}
}

func TestTemplateSigDistinguishesShape(t *testing.T) {
	base := TemplateSig(tq())

	// Extra relation + join.
	q := tq()
	q.Rels = append(q.Rels, RelRef{Table: "store"})
	q.Joins = append(q.Joins, Join{LeftAlias: "store_sales", LeftCol: "store_sk", RightAlias: "store", RightCol: "s_store_sk"})
	if TemplateSig(q) == base {
		t.Fatal("extra join did not change the signature")
	}

	// Different join column.
	q = tq()
	q.Joins[1].LeftCol = "other_sk"
	if TemplateSig(q) == base {
		t.Fatal("different join column did not change the signature")
	}

	// Different filter kind.
	q = tq()
	q.Filters[0].Kind = KindIsNull
	if TemplateSig(q) == base {
		t.Fatal("different filter kind did not change the signature")
	}

	// Filter on a different relation.
	q = tq()
	q.Filters[0].Alias = "item"
	if TemplateSig(q) == base {
		t.Fatal("moved filter did not change the signature")
	}
}

func TestTemplateSigSelfJoinOccurrences(t *testing.T) {
	// A self-join: two occurrences of the same table must not collapse.
	q := &Query{
		Rels: []RelRef{{Table: "item", Alias: "a"}, {Table: "item", Alias: "b"}},
		Joins: []Join{
			{LeftAlias: "a", LeftCol: "i_category", RightAlias: "b", RightCol: "i_category"},
		},
	}
	single := &Query{
		Rels:  []RelRef{{Table: "item", Alias: "a"}, {Table: "store", Alias: "b"}},
		Joins: []Join{{LeftAlias: "a", LeftCol: "i_category", RightAlias: "b", RightCol: "i_category"}},
	}
	if TemplateSig(q) == TemplateSig(single) {
		t.Fatal("self-join hashed like a two-table join")
	}
}

func TestQuerySigIncludesConstants(t *testing.T) {
	a, b := tq(), tq()
	if QuerySig(a) != QuerySig(b) {
		t.Fatal("identical queries disagree on QuerySig")
	}
	b.Filters[0].Lo = 11
	if QuerySig(a) == QuerySig(b) {
		t.Fatal("QuerySig ignored a constant change")
	}
	if TemplateSig(a) != TemplateSig(b) {
		t.Fatal("TemplateSig depended on a constant")
	}
}

func TestSetSigOrderIndependent(t *testing.T) {
	s1, s2, s3 := uint64(7), uint64(11), uint64(13)
	a := SetSig([]uint64{s1, s2, s3})
	b := SetSig([]uint64{s3, s1, s2})
	if a != b {
		t.Fatalf("SetSig depends on order: %x vs %x", a, b)
	}
	if SetSig([]uint64{s1, s2}) == a {
		t.Fatal("SetSig ignored a member")
	}
	// Multiset, not set: duplicates count.
	if SetSig([]uint64{s1, s1, s2, s3}) == a {
		t.Fatal("SetSig collapsed duplicates")
	}
}
