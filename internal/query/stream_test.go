package query

import (
	"testing"

	"github.com/roulette-db/roulette/internal/bitset"
)

// figure1Queries returns the two-query pair of twoQueryBatch as separate
// values, with a shared grouped filter on R.x, for incremental-compilation
// tests.
func figure1Queries() (*Query, *Query) {
	q0 := &Query{
		Tag:  "q0",
		Rels: []RelRef{{Table: "R"}, {Table: "S"}, {Table: "T"}, {Table: "U"}},
		Joins: []Join{
			{"R", "a", "S", "a"},
			{"R", "b", "T", "b"},
			{"S", "c", "U", "c"},
		},
		Filters: []Filter{{Alias: "R", Col: "x", Lo: 0, Hi: 10}},
	}
	q1 := &Query{
		Tag:  "q1",
		Rels: []RelRef{{Table: "R"}, {Table: "S"}, {Table: "U"}, {Table: "V"}},
		Joins: []Join{
			{"R", "a", "S", "a"},
			{"S", "c", "U", "c"},
			{"S", "d", "V", "d"},
		},
		Filters: []Filter{{Alias: "R", Col: "x", Lo: 5, Hi: 20}},
	}
	return q0, q1
}

func TestExtendReusesSharedOperators(t *testing.T) {
	q0, q1 := figure1Queries()
	b := NewStreamBatch(8)
	if _, err := b.Extend(q0); err != nil {
		t.Fatalf("Extend q0: %v", err)
	}
	d0 := b.TakeDelta()
	if len(d0.NewInsts) != 4 || len(d0.NewEdges) != 3 || len(d0.NewSelCols) != 1 {
		t.Fatalf("q0 delta = %+v; want 4 insts, 3 edges, 1 selcol", d0)
	}

	qid, err := b.Extend(q1)
	if err != nil {
		t.Fatalf("Extend q1: %v", err)
	}
	d1 := b.TakeDelta()
	if qid != 1 {
		t.Fatalf("q1 qid = %d, want 1", qid)
	}
	// q1 shares R, S, U and the R-S / S-U edges; only V and S-V are new,
	// and its R.x predicate joins q0's existing grouped filter.
	if len(d1.NewInsts) != 1 || b.Insts[d1.NewInsts[0]].Table != "V" {
		t.Errorf("q1 new instances = %v, want just V", d1.NewInsts)
	}
	if len(d1.NewEdges) != 1 {
		t.Errorf("q1 new edges = %v, want one (S-V)", d1.NewEdges)
	}
	if len(d1.NewSelCols) != 0 || len(d1.TouchedSels) != 1 {
		t.Errorf("q1 selcols: new=%v touched=%v; want none new, one touched", d1.NewSelCols, d1.TouchedSels)
	}
	sc := b.SelCols[d1.TouchedSels[0]]
	if len(sc.Preds) != 2 || sc.Queries.Count() != 2 {
		t.Errorf("shared filter = %+v; want both queries' predicates", sc)
	}
	for _, table := range []string{"R", "S", "U"} {
		ii, ok := b.FindInstance(table, 0)
		if !ok || b.Insts[ii].Queries.Count() != 2 {
			t.Errorf("instance %s not shared by both queries", table)
		}
	}
}

func TestRollbackExtendRestoresBatch(t *testing.T) {
	q0, q1 := figure1Queries()
	b := NewStreamBatch(8)
	if _, err := b.Extend(q0); err != nil {
		t.Fatal(err)
	}
	b.TakeDelta()
	insts, edges, sels, free := len(b.Insts), len(b.Edges), len(b.SelCols), b.Free()
	preds := len(b.SelCols[0].Preds)

	if _, err := b.Extend(q1); err != nil {
		t.Fatal(err)
	}
	b.RollbackExtend(b.TakeDelta())

	if len(b.Insts) != insts || len(b.Edges) != edges || len(b.SelCols) != sels {
		t.Fatalf("rollback left %d insts, %d edges, %d selcols; want %d, %d, %d",
			len(b.Insts), len(b.Edges), len(b.SelCols), insts, edges, sels)
	}
	if b.Free() != free {
		t.Errorf("Free() = %d after rollback, want %d", b.Free(), free)
	}
	if got := len(b.SelCols[0].Preds); got != preds {
		t.Errorf("shared filter has %d preds after rollback, want %d", got, preds)
	}
	for _, in := range b.Insts {
		if in.Queries.Count() != 1 || !in.Queries.Contains(0) {
			t.Errorf("instance %s queries = %v after rollback, want {0}", in.Table, in.Queries)
		}
	}

	// The batch must still accept extensions after a rollback: IDs stay
	// dense, so the same query admits cleanly and reuses the freed slot.
	qid, err := b.Extend(q1)
	if err != nil {
		t.Fatalf("Extend after rollback: %v", err)
	}
	if qid != 1 {
		t.Errorf("qid after rollback = %d, want the freed 1", qid)
	}
	d := b.TakeDelta()
	if len(d.NewInsts) != 1 || len(d.NewEdges) != 1 {
		t.Errorf("re-extend delta = %+v; want V and S-V recreated", d)
	}
}

func TestRetireQueriesClearsSharedState(t *testing.T) {
	q0, q1 := figure1Queries()
	b := NewStreamBatch(8)
	for _, q := range []*Query{q0, q1} {
		if _, err := b.Extend(q); err != nil {
			t.Fatal(err)
		}
		b.TakeDelta()
	}

	retired := bitset.New(b.QCap())
	retired.Add(0)
	changed := b.RetireQueries(retired)
	if len(changed) != 1 {
		t.Fatalf("changed sels = %v, want the shared R.x filter", changed)
	}
	sc := b.SelCols[changed[0]]
	if len(sc.Preds) != 1 || sc.Preds[0].QID != 1 {
		t.Errorf("filter preds after retire = %+v, want only q1's", sc.Preds)
	}
	for _, in := range b.Insts {
		if in.Queries.Contains(0) {
			t.Errorf("instance %s still carries retired q0", in.Table)
		}
	}
	for _, e := range b.Edges {
		if e.Queries.Contains(0) {
			t.Errorf("edge %d still carries retired q0", e.ID)
		}
	}

	// The slot frees only via ReleaseQID, and is then reused.
	if free := b.Free(); free != 6 {
		t.Errorf("Free() = %d before release, want 6", free)
	}
	b.ReleaseQID(0)
	if free := b.Free(); free != 7 {
		t.Errorf("Free() = %d after release, want 7", free)
	}
	qid, err := b.Extend(q0)
	if err != nil {
		t.Fatal(err)
	}
	if qid != 0 {
		t.Errorf("Extend reused qid %d, want released 0", qid)
	}
}

func TestStreamBatchCapacity(t *testing.T) {
	b := NewStreamBatch(2)
	mk := func(tag string) *Query {
		return &Query{Tag: tag, Rels: []RelRef{{Table: "R"}}}
	}
	for i := 0; i < 2; i++ {
		if _, err := b.Extend(mk("q")); err != nil {
			t.Fatal(err)
		}
		b.TakeDelta()
	}
	if _, err := b.Extend(mk("overflow")); err == nil {
		t.Fatal("Extend beyond capacity succeeded, want error")
	}
	if b.QCap() != 2 {
		t.Errorf("QCap = %d after failed Extend, want 2", b.QCap())
	}
}
