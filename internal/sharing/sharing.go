// Package sharing implements the online-sharing baselines the paper
// compares RouLette against (§6.1) and a small exhaustive multi-query
// optimizer that demonstrates why offline sharing cannot scale.
//
// Both online baselines execute inside the shared batched executor as
// *static policies* (policy.Static): what distinguishes them is how their
// per-(query, source) probe orders are derived.
//
//   - Stitch&Share (QPipe, SharedDB): each query is planned independently
//     by the query-at-a-time optimizer; the shared engine then overlaps
//     common plan prefixes. Queries with the same locally-optimal prefix
//     share; permuted orders that would expose more sharing are missed —
//     the Figure 1 limitation.
//
//   - Match&Share (DataPath): queries are admitted one at a time; each new
//     query's plan greedily follows the existing global plan's most popular
//     edges (maximum overlap / minimum added cost), falling back to the
//     smallest-relation heuristic. The result is sensitive to admission
//     order, as the paper notes.
package sharing

import (
	"fmt"
	"time"

	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/qat"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
)

// StitchShareOrders derives per-(query, source) probe orders from
// independent query-at-a-time plans: for each source relation the
// remaining relations are attached greedily by the per-query optimizer's
// cardinality estimates, exactly as the QaaT engine would order a plan
// rooted there.
func StitchShareOrders(b *query.Batch, db *storage.Database) (map[policy.OrderKey][]int, error) {
	e := qat.New(db)
	orders := make(map[policy.OrderKey][]int)
	for qid, q := range b.Queries {
		p, err := e.Optimize(q)
		if err != nil {
			return nil, err
		}
		est := make(map[string]float64, len(p.Order))
		for i := range p.Order {
			est[p.Order[i].Alias] = p.Order[i].EstRows
		}
		for _, srcInst := range b.QueryInsts(qid) {
			key := policy.OrderKey{QID: qid, Source: srcInst}
			orders[key] = orderFrom(b, qid, srcInst, func(edgeID int, target query.InstID) float64 {
				return estOf(b, qid, target, est)
			})
		}
	}
	return orders, nil
}

// estOf resolves the optimizer's estimate for the alias mapped to target.
func estOf(b *query.Batch, qid int, target query.InstID, est map[string]float64) float64 {
	q := b.Queries[qid]
	insts := b.QueryInsts(qid)
	for i, r := range q.Rels {
		if insts[i] == target {
			a := r.Alias
			if a == "" {
				a = r.Table
			}
			return est[a]
		}
	}
	return 0
}

// orderFrom builds a left-deep edge order for query qid rooted at src,
// repeatedly choosing the reachable edge minimizing score(edge, target).
func orderFrom(b *query.Batch, qid int, src query.InstID, score func(edgeID int, target query.InstID) float64) []int {
	lineage := uint64(1) << src
	qEdges := b.QueryEdges(qid)
	var order []int
	for len(order) < len(qEdges) {
		best, bestScore := -1, 0.0
		var bestTarget query.InstID
		for _, ei := range qEdges {
			e := &b.Edges[ei]
			aIn := lineage&(1<<e.A) != 0
			bIn := lineage&(1<<e.B) != 0
			if aIn == bIn {
				continue
			}
			target := e.A
			if aIn {
				target = e.B
			}
			s := score(ei, target)
			if best == -1 || s < bestScore {
				best, bestScore, bestTarget = ei, s, target
			}
		}
		if best == -1 {
			break // disconnected remainder; should not happen for valid queries
		}
		order = append(order, best)
		lineage |= 1 << bestTarget
	}
	return order
}

// MatchShareOrders builds orders DataPath-style: queries are processed in
// admission order; each picks, at every step, the edge already used by the
// most previously-admitted queries at the same position in the global plan
// (maximum overlap), breaking ties toward the smallest target relation.
func MatchShareOrders(b *query.Batch, db *storage.Database, admission []int) map[policy.OrderKey][]int {
	if admission == nil {
		admission = make([]int, b.N)
		for i := range admission {
			admission[i] = i
		}
	}
	rows := func(inst query.InstID) float64 {
		t := db.Table(b.Insts[inst].Table)
		if t == nil {
			return 0
		}
		return float64(t.NumRows())
	}
	// trieRef[source][lineage][edge] = number of earlier queries that chose
	// edge at the sub-expression identified by lineage.
	type trieKey struct {
		src     query.InstID
		lineage uint64
	}
	trie := make(map[trieKey]map[int]int)

	orders := make(map[policy.OrderKey][]int)
	for _, qid := range admission {
		for _, src := range b.QueryInsts(qid) {
			lineage := uint64(1) << src
			qEdges := b.QueryEdges(qid)
			var order []int
			for len(order) < len(qEdges) {
				refs := trie[trieKey{src, lineage}]
				best, bestRef, bestRows := -1, -1, 0.0
				var bestTarget query.InstID
				for _, ei := range qEdges {
					e := &b.Edges[ei]
					aIn := lineage&(1<<e.A) != 0
					bIn := lineage&(1<<e.B) != 0
					if aIn == bIn {
						continue
					}
					target := e.A
					if aIn {
						target = e.B
					}
					ref := refs[ei]
					r := rows(target)
					better := false
					switch {
					case best == -1:
						better = true
					case ref > bestRef:
						better = true
					case ref == bestRef && r < bestRows:
						better = true
					}
					if better {
						best, bestRef, bestRows, bestTarget = ei, ref, r, target
					}
				}
				if best == -1 {
					break
				}
				tk := trieKey{src, lineage}
				if trie[tk] == nil {
					trie[tk] = make(map[int]int)
				}
				trie[tk][best]++
				order = append(order, best)
				e := &b.Edges[best]
				_ = e
				lineage |= 1 << bestTarget
			}
			orders[policy.OrderKey{QID: qid, Source: src}] = order
		}
	}
	return orders
}

// MQOResult reports one exhaustive shared-workload optimization attempt.
type MQOResult struct {
	Queries    int
	PlansTried int64
	BestCost   float64
	Elapsed    time.Duration
	TimedOut   bool
}

// ExhaustiveMQO searches, per query, over all left-deep join orders rooted
// at the batch's fact-like source, costing global plans by prefix-shared
// estimated intermediate tuples. The search space is the product of the
// per-query order counts — doubly exponential in practice — which is the
// scalability wall that motivates RouLette (§6.1's SWO anecdote: 137 s for
// 11 queries). The search aborts at the timeout.
func ExhaustiveMQO(b *query.Batch, db *storage.Database, src query.InstID, timeout time.Duration) MQOResult {
	start := time.Now()
	res := MQOResult{Queries: b.N, BestCost: -1}

	// Enumerate per-query candidate orders (all valid left-deep sequences).
	perQuery := make([][][]int, b.N)
	for qid := 0; qid < b.N; qid++ {
		perQuery[qid] = enumerateOrders(b, qid, src, &res, start, timeout)
		if res.TimedOut {
			res.Elapsed = time.Since(start)
			return res
		}
	}

	rows := func(inst query.InstID) float64 {
		return float64(db.MustTable(b.Insts[inst].Table).NumRows())
	}

	// Cost a combination: shared prefixes are counted once.
	choice := make([]int, b.N)
	var rec func(qid int) bool
	rec = func(qid int) bool {
		if time.Since(start) > timeout {
			res.TimedOut = true
			return false
		}
		if qid == b.N {
			res.PlansTried++
			cost := costCombination(b, perQuery, choice, src, rows)
			if res.BestCost < 0 || cost < res.BestCost {
				res.BestCost = cost
			}
			return true
		}
		for c := range perQuery[qid] {
			choice[qid] = c
			if !rec(qid + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	res.Elapsed = time.Since(start)
	return res
}

// enumerateOrders lists every valid left-deep edge order of query qid
// rooted at src (or at the query's first instance if it lacks src).
func enumerateOrders(b *query.Batch, qid int, src query.InstID, res *MQOResult, start time.Time, timeout time.Duration) [][]int {
	root := src
	if !b.Insts[src].Queries.Contains(qid) {
		root = b.QueryInsts(qid)[0]
	}
	qEdges := b.QueryEdges(qid)
	var out [][]int
	var rec func(lineage uint64, cur []int)
	rec = func(lineage uint64, cur []int) {
		if res.TimedOut || time.Since(start) > timeout {
			res.TimedOut = true
			return
		}
		if len(cur) == len(qEdges) {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for _, ei := range qEdges {
			used := false
			for _, u := range cur {
				if u == ei {
					used = true
					break
				}
			}
			if used {
				continue
			}
			e := &b.Edges[ei]
			aIn := lineage&(1<<e.A) != 0
			bIn := lineage&(1<<e.B) != 0
			if aIn == bIn {
				continue
			}
			target := e.A
			if aIn {
				target = e.B
			}
			rec(lineage|1<<target, append(cur, ei))
		}
	}
	rec(1<<root, nil)
	return out
}

// costCombination estimates total intermediate tuples of a global plan that
// prefix-shares the chosen per-query orders.
func costCombination(b *query.Batch, perQuery [][][]int, choice []int, src query.InstID, rows func(query.InstID) float64) float64 {
	type prefix struct {
		src query.InstID
		key string
	}
	seen := map[prefix]bool{}
	total := 0.0
	for qid := 0; qid < b.N; qid++ {
		orders := perQuery[qid]
		if len(orders) == 0 {
			continue
		}
		order := orders[choice[qid]]
		root := src
		if !b.Insts[src].Queries.Contains(qid) {
			root = b.QueryInsts(qid)[0]
		}
		size := rows(root)
		key := ""
		for _, ei := range order {
			key = fmt.Sprintf("%s|%d", key, ei)
			e := &b.Edges[ei]
			// FK-ish estimate: joining multiplies by target size over a
			// nominal domain of the larger side.
			target := e.A
			if b.Insts[e.A].Queries.Contains(qid) && rows(e.A) >= rows(e.B) {
				target = e.B
			}
			size = size * rows(target) / maxf(rows(e.A), rows(e.B))
			if !seen[prefix{root, key}] {
				seen[prefix{root, key}] = true
				total += size
			}
		}
	}
	return total
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
