package sharing

import (
	"math/rand"
	"testing"
	"time"

	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
)

func testDB(rng *rand.Rand) *storage.Database {
	fact := catalog.NewRelation("fact", "fk1", "fk2", "v")
	d1 := catalog.NewRelation("d1", "k", "a")
	d2 := catalog.NewRelation("d2", "k", "a")
	sch := catalog.NewSchema(fact, d1, d2)
	db := storage.NewDatabase(sch)
	ft := storage.NewTable(fact, 200)
	for i := 0; i < 200; i++ {
		ft.Col("fk1")[i] = int64(rng.Intn(20))
		ft.Col("fk2")[i] = int64(rng.Intn(20))
		ft.Col("v")[i] = int64(rng.Intn(100))
	}
	db.Put(ft)
	for _, nm := range []string{"d1", "d2"} {
		dt := storage.NewTable(sch.Relation(nm), 20)
		for i := 0; i < 20; i++ {
			dt.Col("k")[i] = int64(i)
			dt.Col("a")[i] = int64(rng.Intn(100))
		}
		db.Put(dt)
	}
	return db
}

func threeJoinQuery(f1, f2 query.Filter) *query.Query {
	q := &query.Query{
		Rels: []query.RelRef{{Table: "fact"}, {Table: "d1"}, {Table: "d2"}},
		Joins: []query.Join{
			{LeftAlias: "fact", LeftCol: "fk1", RightAlias: "d1", RightCol: "k"},
			{LeftAlias: "fact", LeftCol: "fk2", RightAlias: "d2", RightCol: "k"},
		},
	}
	q.Filters = append(q.Filters, f1, f2)
	return q
}

func TestStitchShareOrdersCoverEverySource(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := testDB(rng)
	qs := []*query.Query{
		threeJoinQuery(
			query.Filter{Alias: "d1", Col: "a", Lo: 0, Hi: 10},
			query.Filter{Alias: "d2", Col: "a", Lo: 0, Hi: 99},
		),
		threeJoinQuery(
			query.Filter{Alias: "d1", Col: "a", Lo: 0, Hi: 99},
			query.Filter{Alias: "d2", Col: "a", Lo: 0, Hi: 10},
		),
	}
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	orders, err := StitchShareOrders(b, db)
	if err != nil {
		t.Fatal(err)
	}
	for qid := 0; qid < b.N; qid++ {
		for _, src := range b.QueryInsts(qid) {
			order := orders[policy.OrderKey{QID: qid, Source: src}]
			if len(order) != len(b.QueryEdges(qid)) {
				t.Errorf("query %d source %d: order %v incomplete", qid, src, order)
			}
		}
	}
	// Selective d1 filter: query 0's fact-rooted plan should probe d1 first.
	factInst, _ := b.InstOfAlias(0, "fact")
	d1Inst, _ := b.InstOfAlias(0, "d1")
	order0 := orders[policy.OrderKey{QID: 0, Source: factInst}]
	e0 := b.Edges[order0[0]]
	tgt, _ := e0.Other(factInst)
	if tgt != d1Inst {
		t.Errorf("query 0 first probe should target filtered d1, got edge %+v", e0)
	}
}

func TestMatchShareFollowsEarlierQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := testDB(rng)
	// Query 0 has no filters (ambivalent order); query 1 identical joins.
	q0 := threeJoinQuery(
		query.Filter{Alias: "fact", Col: "v", Lo: 0, Hi: 99},
		query.Filter{Alias: "d1", Col: "a", Lo: 0, Hi: 99},
	)
	q1 := threeJoinQuery(
		query.Filter{Alias: "fact", Col: "v", Lo: 0, Hi: 50},
		query.Filter{Alias: "d1", Col: "a", Lo: 0, Hi: 50},
	)
	b, err := query.Compile([]*query.Query{q0, q1})
	if err != nil {
		t.Fatal(err)
	}
	orders := MatchShareOrders(b, db, nil)
	factInst, _ := b.InstOfAlias(0, "fact")
	o0 := orders[policy.OrderKey{QID: 0, Source: factInst}]
	o1 := orders[policy.OrderKey{QID: 1, Source: factInst}]
	if len(o0) != 2 || len(o1) != 2 {
		t.Fatalf("incomplete orders %v %v", o0, o1)
	}
	// The second admitted query must follow the first's global-plan path.
	if o0[0] != o1[0] || o0[1] != o1[1] {
		t.Errorf("match&share did not overlap: %v vs %v", o0, o1)
	}
}

func TestExhaustiveMQOTinyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := testDB(rng)
	qs := []*query.Query{
		threeJoinQuery(
			query.Filter{Alias: "d1", Col: "a", Lo: 0, Hi: 20},
			query.Filter{Alias: "d2", Col: "a", Lo: 0, Hi: 99},
		),
		threeJoinQuery(
			query.Filter{Alias: "d1", Col: "a", Lo: 0, Hi: 99},
			query.Filter{Alias: "d2", Col: "a", Lo: 0, Hi: 20},
		),
	}
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	factInst, _ := b.InstOfAlias(0, "fact")
	res := ExhaustiveMQO(b, db, factInst, 2*time.Second)
	if res.TimedOut {
		t.Fatal("tiny batch timed out")
	}
	// Each query has 2 left-deep orders from fact -> 4 combinations.
	if res.PlansTried != 4 {
		t.Errorf("plans tried = %d, want 4", res.PlansTried)
	}
	if res.BestCost <= 0 {
		t.Errorf("best cost = %v", res.BestCost)
	}
}

func TestExhaustiveMQOTimesOut(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := testDB(rng)
	var qs []*query.Query
	for i := 0; i < 14; i++ {
		qs = append(qs, threeJoinQuery(
			query.Filter{Alias: "d1", Col: "a", Lo: int64(i), Hi: int64(i + 30)},
			query.Filter{Alias: "d2", Col: "a", Lo: int64(i), Hi: int64(i + 30)},
		))
	}
	b, err := query.Compile(qs)
	if err != nil {
		t.Fatal(err)
	}
	factInst, _ := b.InstOfAlias(0, "fact")
	res := ExhaustiveMQO(b, db, factInst, 20*time.Millisecond)
	// 2^14 combinations of trivial cost evaluation may or may not finish in
	// 20ms; what matters is it either finishes or reports the timeout
	// cleanly.
	if !res.TimedOut && res.PlansTried != 1<<14 {
		t.Errorf("inconsistent result: tried %d, timedOut %v", res.PlansTried, res.TimedOut)
	}
}
