package sqlfe

import (
	"testing"

	"github.com/roulette-db/roulette/internal/query"
)

// FuzzParseBatch asserts the parser never panics and that everything it
// accepts also compiles as a batch (the two layers must agree on validity).
func FuzzParseBatch(f *testing.F) {
	seeds := []string{
		"SELECT COUNT(*) FROM t",
		"SELECT SUM(a.x) FROM a, b WHERE a.k = b.k AND a.x BETWEEN 1 AND 9 GROUP BY b.g ORDER BY b.g",
		"SELECT MIN(x) FROM t WHERE 5 <= x; SELECT MAX(x) FROM t",
		"select avg(t.v) from tab t where t.v > -42 -- comment",
		"SELECT COUNT(*) FROM r x, r y WHERE x.a = y.b",
		"SELECT COUNT(*) FROM",
		"SELECT COUNT(*) FROM t WHERE x = 'oops'",
		"SELECT COUNT(*) FROM t WHERE name = 'O''Brien'",
		"SELECT COUNT(*) FROM t WHERE 'x' = name AND name IN ('a', 'b', '')",
		"SELECT COUNT(*) FROM t WHERE a IS NULL AND b IS NOT NULL",
		"SELECT COUNT(*) FROM t WHERE name IN (5)",
		"SELECT COUNT(*) FROM t WHERE name BETWEEN 'a' AND 'b'",
		"SELECT COUNT(*) FROM t WHERE name = ''''",
		"SELECT COUNT(*) FROM t WHERE name = '",
		"SELECT COUNT(*) FROM t WHERE name IS",
		"; ;; SELECT",
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		qs, err := ParseBatch(src)
		if err != nil {
			return
		}
		if len(qs) == 0 {
			t.Fatal("nil error with empty batch")
		}
		if _, err := query.Compile(qs); err != nil {
			t.Fatalf("parser accepted %q but Compile rejected it: %v", src, err)
		}
	})
}
