// Package sqlfe is the SQL front end of the host system (§3 "Query Parser
// & Optimizer"): it parses the Select-Project-Join dialect RouLette
// executes — single-block SELECT with COUNT(*)/SUM aggregates, inner joins
// expressed as WHERE equality predicates, integer range filters, string
// equality and IN-lists over dictionary-encoded columns, IS [NOT] NULL,
// GROUP BY and ORDER BY — into the engine's query model.
package sqlfe

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokSymbol // punctuation and operators: ( ) , ; . * = < > <= >=
	tokString // quoted string literal; '' inside quotes escapes a quote
)

// token is one lexical unit with its position for error messages.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer splits input into tokens.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
			return l.tokens, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.tokens = append(l.tokens, token{tokIdent, l.src[start:l.pos], start})
		case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			l.tokens = append(l.tokens, token{tokNumber, l.src[start:l.pos], start})
		case c == '\'':
			l.pos++
			var sb strings.Builder
			closed := false
			for l.pos < len(l.src) {
				ch := l.src[l.pos]
				if ch == '\'' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						sb.WriteByte('\'') // SQL escape: '' is a literal quote
						l.pos += 2
						continue
					}
					l.pos++
					closed = true
					break
				}
				sb.WriteByte(ch)
				l.pos++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			l.tokens = append(l.tokens, token{tokString, sb.String(), start})
		case c == '<' || c == '>':
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				l.pos++
			}
			l.tokens = append(l.tokens, token{tokSymbol, l.src[start:l.pos], start})
		case strings.ContainsRune("(),;.*=", rune(c)):
			l.pos++
			l.tokens = append(l.tokens, token{tokSymbol, string(c), start})
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
