package sqlfe

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/roulette-db/roulette/internal/query"
)

// Parse parses one SQL statement into the engine's query model. Supported
// grammar (keywords case-insensitive):
//
//	SELECT COUNT(*) | SUM(col_ref) | MIN(col_ref) | MAX(col_ref) | AVG(col_ref)
//	FROM table [[AS] alias] {, table [[AS] alias]}
//	[WHERE predicate {AND predicate}]
//	[GROUP BY col_ref]
//	[ORDER BY col_ref]
//
//	predicate := col_ref = col_ref            -- equi-join
//	           | col_ref (=|<|<=|>|>=) number -- filter
//	           | number (=|<|<=|>|>=) col_ref
//	           | col_ref BETWEEN number AND number
//	           | col_ref = 'string'           -- dictionary-encoded column
//	           | 'string' = col_ref
//	           | col_ref IN ('a', 'b', ...)   -- string literals only
//	           | col_ref IS [NOT] NULL
//	col_ref   := [alias.]column
//
// String literals use single quotes; a doubled single quote inside a
// literal escapes it. They apply
// only to dictionary-encoded string columns (a range operator on a string
// column, or a string literal on an int64 column, fails at execution with
// a type-mismatch error). A bare column (no alias) is allowed only in
// single-table queries.
func Parse(src string) (*query.Query, error) {
	qs, err := ParseBatch(src)
	if err != nil {
		return nil, err
	}
	if len(qs) != 1 {
		return nil, fmt.Errorf("sql: expected one statement, got %d", len(qs))
	}
	return qs[0], nil
}

// ParseBatch parses semicolon-separated statements into a batch.
func ParseBatch(src string) ([]*query.Query, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens, src: src}
	var out []*query.Query
	for !p.at(tokEOF) {
		q, err := p.statement(len(out))
		if err != nil {
			return nil, err
		}
		out = append(out, q)
		for p.eatSymbol(";") {
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sql: empty input")
	}
	// Validate the statements against the engine's query model (join-graph
	// connectivity, alias uniqueness, filter ranges): whatever the parser
	// accepts must compile. Compilation here is throwaway — the caller's
	// batch is compiled again with its final ID assignment.
	probe := make([]*query.Query, len(out))
	for i, q := range out {
		cp := *q
		probe[i] = &cp
	}
	if _, err := query.Compile(probe); err != nil {
		return nil, fmt.Errorf("sql: %w", err)
	}
	return out, nil
}

type parser struct {
	tokens []token
	i      int
	src    string
}

func (p *parser) cur() token  { return p.tokens[p.i] }
func (p *parser) next() token { t := p.tokens[p.i]; p.i++; return t }

func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

// atKeyword reports whether the current token is the given keyword.
func (p *parser) atKeyword(kw string) bool {
	return p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, kw)
}

func (p *parser) eatKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.eatKeyword(kw) {
		return p.errf("expected %s", strings.ToUpper(kw))
	}
	return nil
}

func (p *parser) eatSymbol(s string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.eatSymbol(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	got := t.text
	if t.kind == tokEOF {
		got = "end of input"
	}
	return fmt.Errorf("sql: %s at offset %d (found %q)", fmt.Sprintf(format, args...), t.pos, got)
}

// colRef is a parsed [alias.]column reference.
type colRef struct {
	alias string
	col   string
}

func (p *parser) colRef() (colRef, error) {
	if !p.at(tokIdent) {
		return colRef{}, p.errf("expected column reference")
	}
	first := p.next().text
	if p.eatSymbol(".") {
		if !p.at(tokIdent) {
			return colRef{}, p.errf("expected column name after %q.", first)
		}
		return colRef{alias: first, col: p.next().text}, nil
	}
	return colRef{col: first}, nil
}

func (p *parser) number() (int64, error) {
	if !p.at(tokNumber) {
		if p.at(tokString) {
			return 0, p.errf("string literal in a numeric context: strings support only =, IN and IS NULL")
		}
		return 0, p.errf("expected integer literal")
	}
	v, err := strconv.ParseInt(p.next().text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sql: bad integer: %w", err)
	}
	return v, nil
}

// statement parses one SELECT.
func (p *parser) statement(idx int) (*query.Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &query.Query{Tag: fmt.Sprintf("sql-%d", idx)}

	// Aggregate.
	var aggRef *colRef
	colAgg := func(kind query.AggKind) error {
		if err := p.expectSymbol("("); err != nil {
			return err
		}
		ref, err := p.colRef()
		if err != nil {
			return err
		}
		if err := p.expectSymbol(")"); err != nil {
			return err
		}
		q.Agg.Kind = kind
		aggRef = &ref
		return nil
	}
	switch {
	case p.eatKeyword("count"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("*"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		q.Agg.Kind = query.AggCount
	case p.eatKeyword("sum"):
		if err := colAgg(query.AggSum); err != nil {
			return nil, err
		}
	case p.eatKeyword("min"):
		if err := colAgg(query.AggMin); err != nil {
			return nil, err
		}
	case p.eatKeyword("max"):
		if err := colAgg(query.AggMax); err != nil {
			return nil, err
		}
	case p.eatKeyword("avg"):
		if err := colAgg(query.AggAvg); err != nil {
			return nil, err
		}
	default:
		return nil, p.errf("expected COUNT(*), SUM, MIN, MAX or AVG: RouLette consumers aggregate SPJ output")
	}

	// FROM list.
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	aliases := map[string]bool{}
	for {
		if !p.at(tokIdent) || isReserved(p.cur().text) {
			return nil, p.errf("expected table name")
		}
		table := p.next().text
		alias := table
		if p.eatKeyword("as") {
			if !p.at(tokIdent) {
				return nil, p.errf("expected alias after AS")
			}
			alias = p.next().text
		} else if p.at(tokIdent) && !isReserved(p.cur().text) {
			alias = p.next().text
		}
		if aliases[alias] {
			return nil, fmt.Errorf("sql: duplicate alias %q", alias)
		}
		aliases[alias] = true
		q.Rels = append(q.Rels, query.RelRef{Table: table, Alias: alias})
		if !p.eatSymbol(",") {
			break
		}
	}

	resolve := func(r colRef) (string, error) {
		if r.alias != "" {
			if !aliases[r.alias] {
				return "", fmt.Errorf("sql: unknown alias %q", r.alias)
			}
			return r.alias, nil
		}
		if len(q.Rels) == 1 {
			return q.Rels[0].Alias, nil
		}
		return "", fmt.Errorf("sql: column %q needs a table alias in a multi-table query", r.col)
	}

	// WHERE.
	if p.eatKeyword("where") {
		for {
			if err := p.predicate(q, resolve); err != nil {
				return nil, err
			}
			if !p.eatKeyword("and") {
				break
			}
		}
	}

	// GROUP BY / ORDER BY.
	if p.eatKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		ref, err := p.colRef()
		if err != nil {
			return nil, err
		}
		alias, err := resolve(ref)
		if err != nil {
			return nil, err
		}
		q.Agg.GroupByAlias, q.Agg.GroupByCol = alias, ref.col
	}
	if p.eatKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		ref, err := p.colRef()
		if err != nil {
			return nil, err
		}
		alias, err := resolve(ref)
		if err != nil {
			return nil, err
		}
		if q.Agg.GroupByAlias == "" || alias != q.Agg.GroupByAlias || ref.col != q.Agg.GroupByCol {
			return nil, fmt.Errorf("sql: ORDER BY must name the GROUP BY column (RouLette does not preserve interesting orders; the host sorts group keys)")
		}
		q.Agg.Sorted = true
	}

	if aggRef != nil {
		alias, err := resolve(*aggRef)
		if err != nil {
			return nil, err
		}
		q.Agg.Alias, q.Agg.Col = alias, aggRef.col
	}
	return q, nil
}

// predicate parses one WHERE conjunct into a join or filter.
func (p *parser) predicate(q *query.Query, resolve func(colRef) (string, error)) error {
	// Left side may be a column, a number, or a string literal
	// (literal-first comparisons).
	if p.at(tokString) {
		s := p.next().text
		op, err := p.compareOp()
		if err != nil {
			return err
		}
		if op != "=" {
			return p.errf("string comparisons support only =")
		}
		ref, err := p.colRef()
		if err != nil {
			return err
		}
		alias, err := resolve(ref)
		if err != nil {
			return err
		}
		q.Filters = append(q.Filters, query.Filter{
			Alias: alias, Col: ref.col, Kind: query.KindStrings, Strs: []string{s},
		})
		return nil
	}
	if p.at(tokNumber) {
		v, err := p.number()
		if err != nil {
			return err
		}
		op, err := p.compareOp()
		if err != nil {
			return err
		}
		ref, err := p.colRef()
		if err != nil {
			return err
		}
		alias, err := resolve(ref)
		if err != nil {
			return err
		}
		// Mirror: 5 < c.x  ≡  c.x > 5.
		q.Filters = append(q.Filters, filterFor(alias, ref.col, mirror(op), v))
		return nil
	}

	ref, err := p.colRef()
	if err != nil {
		return err
	}
	alias, err := resolve(ref)
	if err != nil {
		return err
	}

	if p.eatKeyword("is") {
		not := p.eatKeyword("not")
		if err := p.expectKeyword("null"); err != nil {
			return err
		}
		kind := query.KindIsNull
		if not {
			kind = query.KindIsNotNull
		}
		q.Filters = append(q.Filters, query.Filter{Alias: alias, Col: ref.col, Kind: kind})
		return nil
	}

	if p.eatKeyword("in") {
		if err := p.expectSymbol("("); err != nil {
			return err
		}
		var strs []string
		for {
			if p.at(tokNumber) {
				return p.errf("IN lists support string literals only (rewrite an integer IN as separate queries or a range)")
			}
			if !p.at(tokString) {
				return p.errf("expected string literal in IN list")
			}
			strs = append(strs, p.next().text)
			if !p.eatSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return err
		}
		q.Filters = append(q.Filters, query.Filter{
			Alias: alias, Col: ref.col, Kind: query.KindStrings, Strs: strs,
		})
		return nil
	}

	if p.eatKeyword("between") {
		lo, err := p.number()
		if err != nil {
			return err
		}
		if err := p.expectKeyword("and"); err != nil {
			return err
		}
		hi, err := p.number()
		if err != nil {
			return err
		}
		if lo > hi {
			return fmt.Errorf("sql: BETWEEN %d AND %d is empty", lo, hi)
		}
		q.Filters = append(q.Filters, query.Filter{Alias: alias, Col: ref.col, Lo: lo, Hi: hi})
		return nil
	}

	op, err := p.compareOp()
	if err != nil {
		return err
	}
	if p.at(tokIdent) {
		if op != "=" {
			return p.errf("join predicates must use =")
		}
		rref, err := p.colRef()
		if err != nil {
			return err
		}
		ralias, err := resolve(rref)
		if err != nil {
			return err
		}
		q.Joins = append(q.Joins, query.Join{
			LeftAlias: alias, LeftCol: ref.col,
			RightAlias: ralias, RightCol: rref.col,
		})
		return nil
	}
	if p.at(tokString) {
		if op != "=" {
			return p.errf("string comparisons support only =")
		}
		q.Filters = append(q.Filters, query.Filter{
			Alias: alias, Col: ref.col, Kind: query.KindStrings, Strs: []string{p.next().text},
		})
		return nil
	}
	v, err := p.number()
	if err != nil {
		return err
	}
	q.Filters = append(q.Filters, filterFor(alias, ref.col, op, v))
	return nil
}

func (p *parser) compareOp() (string, error) {
	t := p.cur()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "<", "<=", ">", ">=":
			p.i++
			return t.text, nil
		}
	}
	return "", p.errf("expected comparison operator")
}

// mirror flips a comparison for number-first predicates.
func mirror(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// filterFor converts a comparison into the engine's inclusive-range form.
func filterFor(alias, col, op string, v int64) query.Filter {
	f := query.Filter{Alias: alias, Col: col, Lo: math.MinInt64, Hi: math.MaxInt64}
	switch op {
	case "=":
		f.Lo, f.Hi = v, v
	case "<":
		f.Hi = v - 1
	case "<=":
		f.Hi = v
	case ">":
		f.Lo = v + 1
	case ">=":
		f.Lo = v
	}
	return f
}

// isReserved lists keywords that terminate a FROM alias position.
func isReserved(s string) bool {
	switch strings.ToLower(s) {
	case "select", "from", "where", "group", "order", "by", "and", "between", "as",
		"count", "sum", "min", "max", "avg", "in", "is", "not", "null":
		return true
	}
	return false
}
