package sqlfe

import (
	"math"
	"strings"
	"testing"

	"github.com/roulette-db/roulette/internal/query"
)

func TestParseCountJoinFilter(t *testing.T) {
	q, err := Parse(`
		SELECT COUNT(*)
		FROM store_sales ss, date_dim d
		WHERE ss.ss_sold_date_sk = d.d_date_sk
		  AND d.d_year BETWEEN 1999 AND 2001
		  AND ss.ss_quantity > 10
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rels) != 2 || q.Rels[0].Alias != "ss" || q.Rels[1].Table != "date_dim" {
		t.Errorf("rels = %+v", q.Rels)
	}
	if len(q.Joins) != 1 || q.Joins[0].LeftCol != "ss_sold_date_sk" {
		t.Errorf("joins = %+v", q.Joins)
	}
	if len(q.Filters) != 2 {
		t.Fatalf("filters = %+v", q.Filters)
	}
	if q.Filters[0].Lo != 1999 || q.Filters[0].Hi != 2001 {
		t.Errorf("between filter = %+v", q.Filters[0])
	}
	if q.Filters[1].Lo != 11 || q.Filters[1].Hi != math.MaxInt64 {
		t.Errorf("> filter = %+v", q.Filters[1])
	}
	if q.Agg.Kind != query.AggCount {
		t.Error("aggregate should be COUNT")
	}
	// Must compile as a batch.
	if _, err := query.Compile([]*query.Query{q}); err != nil {
		t.Fatalf("parsed query does not compile: %v", err)
	}
}

func TestParseSumGroupOrder(t *testing.T) {
	q, err := Parse(`
		SELECT SUM(ss.ss_quantity)
		FROM store_sales AS ss, item i
		WHERE ss.ss_item_sk = i.i_item_sk
		GROUP BY i.i_item_sk
		ORDER BY i.i_item_sk
	`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg.Kind != query.AggSum || q.Agg.Alias != "ss" || q.Agg.Col != "ss_quantity" {
		t.Errorf("agg = %+v", q.Agg)
	}
	if q.Agg.GroupByAlias != "i" || !q.Agg.Sorted {
		t.Errorf("group/order = %+v", q.Agg)
	}
}

func TestParseBareColumnsSingleTable(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) FROM t WHERE x >= 5 AND y = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 2 || q.Filters[0].Alias != "t" {
		t.Errorf("filters = %+v", q.Filters)
	}
	if q.Filters[1].Lo != 3 || q.Filters[1].Hi != 3 {
		t.Errorf("eq filter = %+v", q.Filters[1])
	}
}

func TestParseNumberFirstComparison(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) FROM t WHERE 5 < x AND -3 >= y`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Filters[0].Lo != 6 { // 5 < x ≡ x > 5
		t.Errorf("mirrored filter = %+v", q.Filters[0])
	}
	if q.Filters[1].Hi != -3 { // -3 >= y ≡ y <= -3
		t.Errorf("mirrored filter = %+v", q.Filters[1])
	}
}

func TestParseBatchStatements(t *testing.T) {
	qs, err := ParseBatch(`
		SELECT COUNT(*) FROM a;  -- first
		SELECT COUNT(*) FROM b;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0].Rels[0].Table != "a" || qs[1].Rels[0].Table != "b" {
		t.Errorf("batch = %+v", qs)
	}
	if qs[0].Tag == qs[1].Tag {
		t.Error("tags should be distinct")
	}
}

func TestParseSelfJoinAliases(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) FROM r x, r y WHERE x.b = y.a`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rels) != 2 || q.Rels[0].Alias != "x" || q.Rels[1].Alias != "y" {
		t.Errorf("rels = %+v", q.Rels)
	}
	if _, err := query.Compile([]*query.Query{q}); err != nil {
		t.Fatalf("self-join does not compile: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		sql     string
		errPart string
	}{
		{``, "empty input"},
		{`SELECT * FROM t`, "COUNT(*), SUM, MIN, MAX or AVG"},
		{`SELECT COUNT(*) FROM`, "table name"},
		{`SELECT COUNT(*) FROM t WHERE`, "column reference"},
		{`SELECT COUNT(*) FROM t WHERE x <> 3`, "expected integer literal"},
		{`SELECT COUNT(*) FROM a, b WHERE x = 3`, "needs a table alias"},
		{`SELECT COUNT(*) FROM t WHERE z.x = 3`, "unknown alias"},
		{`SELECT COUNT(*) FROM t, t`, "duplicate alias"},
		{`SELECT COUNT(*) FROM t WHERE x BETWEEN 9 AND 2`, "empty"},
		{`SELECT COUNT(*) FROM a x, b y WHERE x.k < y.k`, "join predicates must use ="},
		{`SELECT COUNT(*) FROM t ORDER BY x`, "GROUP BY"},
		{`SELECT COUNT(*) FROM t WHERE x = 'a`, "unterminated"},
		{`SELECT COUNT(*) FROM t WHERE x ? 3`, "unexpected character"},
		{`SELECT COUNT(*) FROM t WHERE name < 'Bob'`, "string comparisons support only ="},
		{`SELECT COUNT(*) FROM t WHERE 'Bob' < name`, "string comparisons support only ="},
		{`SELECT COUNT(*) FROM t WHERE name BETWEEN 'a' AND 'b'`, "numeric context"},
		{`SELECT COUNT(*) FROM t WHERE name IN (5)`, "string literals only"},
		{`SELECT COUNT(*) FROM t WHERE name IN ()`, "expected string literal"},
		{`SELECT COUNT(*) FROM t WHERE name IS`, "expected NULL"},
		{`SELECT COUNT(*) FROM t WHERE name IS NOT`, "expected NULL"},
	}
	for _, c := range cases {
		_, err := ParseBatch(c.sql)
		if err == nil {
			t.Errorf("%q: no error, want %q", c.sql, c.errPart)
			continue
		}
		if !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("%q: error %q does not mention %q", c.sql, err, c.errPart)
		}
	}
}

func TestParseStringPredicates(t *testing.T) {
	q, err := Parse(`
		SELECT COUNT(*)
		FROM orders o, customer c
		WHERE o.o_custkey = c.c_custkey
		  AND c.c_mktsegment = 'BUILDING'
		  AND o.o_priority IN ('1-URGENT', '2-HIGH')
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 2 {
		t.Fatalf("filters = %+v", q.Filters)
	}
	f0 := q.Filters[0]
	if f0.Kind != query.KindStrings || len(f0.Strs) != 1 || f0.Strs[0] != "BUILDING" {
		t.Errorf("equality filter = %+v", f0)
	}
	f1 := q.Filters[1]
	if f1.Kind != query.KindStrings || len(f1.Strs) != 2 || f1.Strs[1] != "2-HIGH" {
		t.Errorf("IN filter = %+v", f1)
	}
	if _, err := query.Compile([]*query.Query{q}); err != nil {
		t.Fatalf("parsed query does not compile: %v", err)
	}
}

func TestParseStringFirstEquality(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) FROM t WHERE 'x' = name`)
	if err != nil {
		t.Fatal(err)
	}
	f := q.Filters[0]
	if f.Kind != query.KindStrings || f.Col != "name" || f.Strs[0] != "x" {
		t.Errorf("filter = %+v", f)
	}
}

func TestParseStringEscapes(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) FROM t WHERE name = 'O''Brien'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Filters[0].Strs[0]; got != "O'Brien" {
		t.Errorf("escaped literal = %q, want %q", got, "O'Brien")
	}
	q, err = Parse(`SELECT COUNT(*) FROM t WHERE name = ''''`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Filters[0].Strs[0]; got != "'" {
		t.Errorf("quote-only literal = %q, want %q", got, "'")
	}
}

func TestParseIsNull(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) FROM t WHERE a IS NULL AND b IS NOT NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 2 {
		t.Fatalf("filters = %+v", q.Filters)
	}
	if q.Filters[0].Kind != query.KindIsNull || q.Filters[0].Col != "a" {
		t.Errorf("IS NULL filter = %+v", q.Filters[0])
	}
	if q.Filters[1].Kind != query.KindIsNotNull || q.Filters[1].Col != "b" {
		t.Errorf("IS NOT NULL filter = %+v", q.Filters[1])
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	q, err := Parse(`select count(*) from T where X between 1 and 2 group by X order by X`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg.GroupByCol != "X" || !q.Agg.Sorted {
		t.Errorf("agg = %+v", q.Agg)
	}
}

func TestLexerComments(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) -- trailing comment\nFROM t -- another\n")
	if err != nil {
		t.Fatal(err)
	}
	if q.Rels[0].Table != "t" {
		t.Errorf("rels = %+v", q.Rels)
	}
}

func TestParseMinMaxAvg(t *testing.T) {
	for kw, kind := range map[string]query.AggKind{
		"MIN": query.AggMin, "MAX": query.AggMax, "AVG": query.AggAvg,
	} {
		q, err := Parse("SELECT " + kw + "(t.x) FROM t WHERE t.x > 0")
		if err != nil {
			t.Fatalf("%s: %v", kw, err)
		}
		if q.Agg.Kind != kind || q.Agg.Col != "x" {
			t.Errorf("%s: agg = %+v", kw, q.Agg)
		}
	}
}
