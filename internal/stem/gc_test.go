package stem

import (
	"testing"

	"github.com/roulette-db/roulette/internal/bitset"
)

// gcFixture builds a STeM with n entries alternating between query sets
// {0} and {1}: key i, vid i, all published in slot 0.
func gcFixture(t *testing.T, n int) (*Versions, *STeM) {
	t.Helper()
	v := NewVersions()
	s := New(v, []string{"k"}, 2, n)
	for i := 0; i < n; i++ {
		s.Insert(int32(i), []int64{int64(i)}, bitset.FromIDs(2, i%2), 0)
	}
	v.Publish(0)
	return v, s
}

func TestSweepChunkCountsDead(t *testing.T) {
	_, s := gcFixture(t, 100)
	retired := bitset.FromIDs(2, 0)
	if dead := s.SweepChunk(0, retired); dead != 50 {
		t.Fatalf("SweepChunk dead = %d, want 50", dead)
	}
	// A second sweep of the same retired set reports the same entries dead
	// (cumulative count) and changes nothing else.
	if dead := s.SweepChunk(0, retired); dead != 50 {
		t.Errorf("repeated SweepChunk dead = %d, want 50", dead)
	}
	// Out-of-range chunks are a no-op.
	if dead := s.SweepChunk(5, retired); dead != 0 {
		t.Errorf("SweepChunk(5) = %d, want 0", dead)
	}
	// Survivors keep their bits: every odd entry still belongs to query 1.
	for idx := 0; idx < 100; idx++ {
		_, qs := s.Entry(idx)
		if idx%2 == 1 && !qs.Contains(1) {
			t.Fatalf("entry %d lost its live query bit", idx)
		}
		if qs.Contains(0) {
			t.Fatalf("entry %d still carries retired query 0", idx)
		}
	}
}

func TestCompactLiveDropsDeadAndShrinks(t *testing.T) {
	v, s := gcFixture(t, 100)
	before := s.EstBytes()
	s.SweepChunk(0, bitset.FromIDs(2, 0))

	if live := s.CompactLive(); live != 50 {
		t.Fatalf("CompactLive = %d live, want 50", live)
	}
	if s.Len() != 50 {
		t.Errorf("Len = %d after compaction, want 50", s.Len())
	}
	if after := s.EstBytes(); after > before {
		t.Errorf("EstBytes grew across compaction: %d -> %d", before, after)
	}

	// Probing must still find every surviving entry through the rebuilt
	// buckets, and none of the dropped ones.
	ts := v.Now()
	for k := int64(0); k < 100; k++ {
		got := s.Probe(nil, "k", k, ts)
		if k%2 == 1 {
			if len(got) != 1 || got[0].VID != int32(k) {
				t.Fatalf("Probe(%d) = %v after compaction, want vid %d", k, got, k)
			}
			if !got[0].QSet.Contains(1) {
				t.Fatalf("Probe(%d) lost query attribution", k)
			}
		} else if len(got) != 0 {
			t.Fatalf("Probe(%d) = %v, want dead entry gone", k, got)
		}
	}
}

func TestCompactLiveEmptiesToFloor(t *testing.T) {
	_, s := gcFixture(t, 2*chunkSize) // two full chunks
	if s.NumChunks() != 2 {
		t.Fatalf("NumChunks = %d, want 2", s.NumChunks())
	}
	before := s.EstBytes()
	retired := bitset.FromIDs(2, 0, 1)
	for ci := 0; ci < s.NumChunks(); ci++ {
		s.SweepChunk(ci, retired)
	}
	if live := s.CompactLive(); live != 0 {
		t.Fatalf("CompactLive = %d, want 0", live)
	}
	if s.NumChunks() != 0 || s.Len() != 0 {
		t.Errorf("chunks=%d len=%d after full retirement, want 0,0", s.NumChunks(), s.Len())
	}
	if after := s.EstBytes(); after*10 > before {
		t.Errorf("EstBytes = %d after full retirement (was %d), want >=90%% reclaimed", after, before)
	}
}

func TestEnsureBucketsRegrowsChains(t *testing.T) {
	v, s := gcFixture(t, 100)
	s.SweepChunk(0, bitset.FromIDs(2, 0))
	s.CompactLive() // buckets shrink to fit 50 live entries

	// A late-admitted query is about to re-ingest the full relation; the
	// engine regrows the buckets up front so chains stay short.
	s.EnsureBuckets(4096)
	ts := v.Now()
	for k := int64(1); k < 100; k += 2 {
		if got := s.Probe(nil, "k", k, ts); len(got) != 1 {
			t.Fatalf("Probe(%d) = %v after regrow, want 1 match", k, got)
		}
	}
	// Smaller hints never shrink (regrowing is one-way).
	s.EnsureBuckets(1)
	if got := s.Probe(nil, "k", 1, ts); len(got) != 1 {
		t.Errorf("Probe(1) broken after no-op EnsureBuckets")
	}
}

func TestAddIndexDerivesExistingEntries(t *testing.T) {
	v, s := gcFixture(t, 64)
	// Index a second column whose key is derived from the vid (stand-in
	// for a base-table column lookup): k2 = vid / 2, so each k2 value is
	// shared by two entries.
	s.AddIndex("k2", func(vid int32) int64 { return int64(vid / 2) })
	if !s.HasIndex("k2") {
		t.Fatal("AddIndex did not register the column")
	}
	ts := v.Now()
	if got := s.Probe(nil, "k2", 3, ts); len(got) != 2 {
		t.Fatalf("Probe(k2=3) = %d matches, want 2 (vids 6,7)", len(got))
	}
	// Idempotent: re-adding the column changes nothing.
	s.AddIndex("k2", func(vid int32) int64 { return -1 })
	if got := s.Probe(nil, "k2", 3, ts); len(got) != 2 {
		t.Errorf("repeated AddIndex broke the index")
	}
	// New inserts supply both keys and land in both indexes (a fresh slot:
	// slots are published at most once, after all their inserts).
	s.Insert(200, []int64{200, 100}, bitset.FromIDs(2, 1), 1)
	v.Publish(1)
	ts = v.Now()
	if got := s.Probe(nil, "k2", 100, ts); len(got) != 1 || got[0].VID != 200 {
		t.Errorf("Probe(k2=100) = %v, want the new entry", got)
	}
}
