// Package stem implements State Modules (STeMs), the per-relation indexes
// that RouLette's history-independent multi-query n-ary symmetric hash join
// is built on (Raman et al., ICDE 2003; Sioulas & Ailamaki §3, §5.1).
//
// A STeM stores unified entries (index-vector of join keys, vID, version
// slot, query-set) in a chunked append-only slab and builds one lock-free
// hash index per join-key column. Inserts and probes are wait-free on the
// hot path; insert-probe atomicity across concurrent episodes uses the
// paper's batch versioning: every inserted vector takes one STeM-local
// version slot that is later published to a global timestamp with a single
// atomic, and probes accept only entries whose published timestamp is
// strictly older than the probing episode's.
package stem

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"github.com/roulette-db/roulette/internal/bitset"
)

const (
	chunkBits = 12
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
)

// Versions is the session-wide version-slot table shared by all STeMs.
// Each episode allocates one slot, stamps its inserted entries with the
// slot index, and publishes the slot to a fresh global timestamp after the
// insert completes (§5.2 "Scalable versioning").
//
// Slot protocol: slots are allocated densely (the engine uses the episode
// counter), a slot's entries are all inserted before the slot is published,
// and each slot is published at most once. The publication watermark — the
// count of contiguously published slots from 0 — depends on that contract:
// every slot below the watermark is published, and because timestamps are
// drawn from the same global counter, its timestamp is strictly older than
// any timestamp drawn after the watermark was read. Vector probes use this
// to skip the per-entry timestamp load for the (large, stable) prefix of
// old entries and pay it only in the small concurrent tail.
//
// A slot's cell holds one of three states:
//
//	 0   unpublished, no probe has rejected it
//	+ts  published at global timestamp ts (final)
//	-X   sealed: a probe at timestamp X found the slot unpublished and
//	     rejected its entries; Publish must take a timestamp newer than X
//
// The seal closes the draw-to-store race: Publish draws its timestamp and
// stores it as two separate atomics, so a probe that drew a newer probeTS
// in between would otherwise read 0 and skip entries whose timestamp is
// about to become strictly older than probeTS (and the publishing episode's
// own probes reject the probing episode's entries for being newer — the
// matching pair would be emitted by neither side). Sealing makes the
// rejection binding instead: the probe CASes the cell to -probeTS before
// rejecting, and Publish's CAS loop redraws after losing to a seal, so a
// sealed slot's eventual timestamp is provably newer than every rejecting
// probe's. Neither side ever waits.
type Versions struct {
	global    atomic.Int64 // global timestamp counter; 0 is reserved
	watermark atomic.Int64 // slots [0, watermark) are all published

	mu    sync.Mutex
	slabs atomic.Pointer[[]*versionSlab]
}

type versionSlab struct {
	ts [chunkSize]atomic.Int64
}

// NewVersions creates an empty version table.
func NewVersions() *Versions {
	v := &Versions{}
	empty := []*versionSlab{}
	v.slabs.Store(&empty)
	return v
}

// Slot indexes a version slot.
type Slot int32

// Alloc reserves version slot number n (slots are allocated densely by the
// caller, typically the episode counter).
func (v *Versions) ensure(n Slot) *versionSlab {
	si := int(n) >> chunkBits
	slabs := *v.slabs.Load()
	if si < len(slabs) {
		return slabs[si]
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	slabs = *v.slabs.Load()
	for si >= len(slabs) {
		next := make([]*versionSlab, len(slabs)+1)
		copy(next, slabs)
		next[len(slabs)] = &versionSlab{}
		v.slabs.Store(&next)
		slabs = next
	}
	return slabs[si]
}

// Publish maps slot n to a fresh global timestamp and returns it. Entries
// stamped with n become visible to probes with a newer timestamp. Publish
// also advances the publication watermark past every contiguously published
// slot, so long-running probes can skip the per-entry timestamp check for
// entries under it.
//
// Publishing an already-published slot is an idempotent no-op returning the
// existing timestamp, so defensive publishes on fault paths are safe. If
// probes sealed the slot (rejected it while unpublished), the CAS loop
// redraws until its timestamp beats every seal: the timestamp is drawn
// after the seal was loaded, and the seal's magnitude was drawn before the
// seal was stored, so a successful CAS guarantees ts > every overwritten
// seal. Each retry means a probe with a newer timestamp sealed in between,
// so the loop is bounded by the number of concurrent probes.
func (v *Versions) Publish(n Slot) int64 {
	slab := v.ensure(n)
	cell := &slab.ts[int(n)&chunkMask]
	for {
		old := cell.Load()
		if old > 0 {
			return old
		}
		ts := v.global.Add(1)
		if cell.CompareAndSwap(old, ts) {
			v.advanceWatermark()
			return ts
		}
	}
}

// advanceWatermark pushes the watermark forward while the slot at the
// frontier is published. Concurrent publishers race on the CAS; a lost race
// just re-reads the frontier, so the loop is bounded by the number of slots
// published since the caller started.
func (v *Versions) advanceWatermark() {
	for {
		w := v.watermark.Load()
		if v.tryGet(Slot(w)) == 0 {
			return
		}
		v.watermark.CompareAndSwap(w, w+1)
	}
}

// Watermark returns the current publication watermark: every slot below it
// is published, and — because publication draws timestamps from the same
// counter probes do — holds a timestamp strictly older than any probe
// timestamp drawn *after* this call. Callers pairing a watermark with a
// probe timestamp must therefore read the watermark first.
func (v *Versions) Watermark() Slot { return Slot(v.watermark.Load()) }

// Now returns a probe timestamp newer than every published slot.
func (v *Versions) Now() int64 { return v.global.Add(1) }

// tryGet resolves slot n to its global timestamp; 0 means unpublished
// (sealed slots are unpublished).
func (v *Versions) tryGet(n Slot) int64 {
	si := int(n) >> chunkBits
	slabs := *v.slabs.Load()
	if si >= len(slabs) {
		return 0
	}
	if ts := slabs[si].ts[int(n)&chunkMask].Load(); ts > 0 {
		return ts
	}
	return 0
}

// visibleAt reports whether slot n is visible to a probe at probeTS, i.e.
// published with a timestamp strictly older than probeTS. An unpublished
// slot is sealed at probeTS (one CAS) before visibleAt answers false: the
// seal forces the slot's eventual Publish onto a timestamp newer than
// probeTS, so a rejection can never lose to a publish that drew an older
// timestamp but had not stored it yet. probeTS must come from this table's
// counter (Publish or Now).
func (v *Versions) visibleAt(n Slot, probeTS int64) bool {
	si := int(n) >> chunkBits
	slabs := *v.slabs.Load()
	if si >= len(slabs) {
		// No slab means Publish(n) has not finished ensure(n), which
		// precedes its timestamp draw; with seq-cst atomics the slab-creating
		// store ordered after our slabs load, so the eventual timestamp is
		// ordered after probeTS and the entries are invisible.
		return false
	}
	cell := &slabs[si].ts[int(n)&chunkMask]
	for {
		ts := cell.Load()
		if ts > 0 {
			return ts < probeTS
		}
		if -ts >= probeTS {
			return false // a probe at or after probeTS already sealed it
		}
		if cell.CompareAndSwap(ts, -probeTS) {
			return false
		}
		// Lost to a concurrent publish or a newer seal; re-read and decide
		// again. Each retry strictly increases the cell's state, so the
		// loop terminates.
	}
}

// chunk holds a fixed-size block of unified STeM entries in columnar form.
type chunk struct {
	vids  [chunkSize]int32
	slots [chunkSize]Slot
	keys  [][]int64 // one column per index
	next  [][]int32 // one chain per index; 0 = end, else entryIdx+1
	qsets []uint64  // chunkSize * qw words
}

// STeM is the state module for one relation instance.
type STeM struct {
	versions *Versions
	qw       int // query-set words per entry
	keyCols  []string
	colIdx   map[string]int

	buckets [][]atomic.Int32 // per index; value 0 = empty, else entryIdx+1
	shift   []uint

	mu     sync.Mutex
	chunks atomic.Pointer[[]*chunk]
	count  atomic.Int64

	final atomic.Bool // set once the relation is fully ingested for all scheduled queries
}

// New creates a STeM indexing the given join-key columns, sized for about
// capacityHint entries and query sets over nQueries queries.
func New(versions *Versions, keyCols []string, nQueries, capacityHint int) *STeM {
	s := &STeM{
		versions: versions,
		qw:       bitset.WordsFor(nQueries),
		keyCols:  keyCols,
		colIdx:   make(map[string]int, len(keyCols)),
	}
	if s.qw == 0 {
		s.qw = 1
	}
	nb := 1
	for nb < capacityHint*2 {
		nb <<= 1
	}
	if nb < 64 {
		nb = 64
	}
	s.buckets = make([][]atomic.Int32, len(keyCols))
	s.shift = make([]uint, len(keyCols))
	for i, c := range keyCols {
		s.colIdx[c] = i
		s.buckets[i] = make([]atomic.Int32, nb)
		s.shift[i] = uint(64 - bits.TrailingZeros(uint(nb)))
	}
	empty := []*chunk{}
	s.chunks.Store(&empty)
	return s
}

// KeyCols returns the indexed join-key columns.
func (s *STeM) KeyCols() []string { return s.keyCols }

// HasIndex reports whether col is indexed.
func (s *STeM) HasIndex(col string) bool { _, ok := s.colIdx[col]; return ok }

// Len returns the number of inserted entries.
func (s *STeM) Len() int { return int(s.count.Load()) }

// MarkFinal records that the relation is fully ingested; pruning semi-joins
// may then use this STeM (§5.2 "Symmetric Join Pruning").
func (s *STeM) MarkFinal() { s.final.Store(true) }

// Final reports whether the relation is fully ingested.
func (s *STeM) Final() bool { return s.final.Load() }

func hash64(x int64) uint64 {
	// Fibonacci multiplicative hashing with an avalanche step.
	h := uint64(x) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

func (s *STeM) chunkFor(idx int64) *chunk {
	ci := int(idx >> chunkBits)
	chunks := *s.chunks.Load()
	if ci < len(chunks) {
		return chunks[ci]
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	chunks = *s.chunks.Load()
	for ci >= len(chunks) {
		c := &chunk{
			keys:  make([][]int64, len(s.keyCols)),
			next:  make([][]int32, len(s.keyCols)),
			qsets: make([]uint64, chunkSize*s.qw),
		}
		for i := range s.keyCols {
			c.keys[i] = make([]int64, chunkSize)
			c.next[i] = make([]int32, chunkSize)
		}
		next := make([]*chunk, len(chunks)+1)
		copy(next, chunks)
		next[len(chunks)] = c
		s.chunks.Store(&next)
		chunks = next
	}
	return chunks[ci]
}

// Insert adds one tuple with the given join-key values (one per indexed
// column, in KeyCols order), stamping it with version slot slot. The tuple
// becomes visible to probes once the slot is published.
func (s *STeM) Insert(vid int32, keys []int64, qset bitset.Set, slot Slot) {
	idx := s.count.Add(1) - 1
	c := s.chunkFor(idx)
	off := int(idx) & chunkMask
	c.vids[off] = vid
	c.slots[off] = slot
	qoff := off * s.qw
	for i := 0; i < s.qw; i++ {
		var w uint64
		if i < len(qset) {
			w = qset[i]
		}
		c.qsets[qoff+i] = w
	}
	ref := int32(idx) + 1
	for i := range s.keyCols {
		k := keys[i]
		c.keys[i][off] = k
		b := &s.buckets[i][hash64(k)>>s.shift[i]]
		for {
			head := b.Load()
			c.next[i][off] = head
			if b.CompareAndSwap(head, ref) {
				break
			}
		}
	}
}

// Match is one probe result: the matched entry's vID and query set.
type Match struct {
	VID  int32
	QSet bitset.Set // view into the STeM's slab; do not mutate
}

// Probe finds entries whose key column col equals key and whose published
// timestamp is strictly older than probeTS, appending them to dst.
//
// probeTS must have been drawn from the STeM's Versions table (Publish or
// Now) before the probe began. Entries whose slot is still unpublished are
// rejected without waiting: the reject seals the slot at probeTS
// (Versions.visibleAt), which forces the slot's eventual publication onto
// a timestamp newer than probeTS — so the rejection is correct even
// against a publish that drew its timestamp before probeTS but had not
// stored it yet (the draw-to-store window).
func (s *STeM) Probe(dst []Match, col string, key int64, probeTS int64) []Match {
	ki, ok := s.colIdx[col]
	if !ok {
		return dst
	}
	// The chunk snapshot must be taken after the bucket head is loaded:
	// every entry reachable from the head had its chunk appended before the
	// head was CASed, and the chunk list only grows while probes run (it is
	// only replaced under the engine's quiesce gate), so a snapshot ordered
	// after the head load covers the whole chain. The opposite order races
	// with a concurrent insert extending the slab.
	ref := s.buckets[ki][hash64(key)>>s.shift[ki]].Load()
	chunks := *s.chunks.Load()
	for ref != 0 {
		idx := int(ref) - 1
		c := chunks[idx>>chunkBits]
		off := idx & chunkMask
		if c.keys[ki][off] == key && s.versions.visibleAt(c.slots[off], probeTS) {
			qoff := off * s.qw
			dst = append(dst, Match{
				VID:  c.vids[off],
				QSet: bitset.Set(c.qsets[qoff : qoff+s.qw]),
			})
		}
		ref = c.next[ki][off]
	}
	return dst
}

// SemiJoinQueries unions, into out, the query sets of all published entries
// matching key on col. It is the primitive behind symmetric join pruning:
// a probing tuple keeps only the query bits that some matching entry also
// carries. out must have capacity for the STeM's query-set width.
func (s *STeM) SemiJoinQueries(out bitset.Set, col string, key int64) {
	ki, ok := s.colIdx[col]
	if !ok {
		return
	}
	// Head before chunk snapshot, same ordering argument as Probe.
	ref := s.buckets[ki][hash64(key)>>s.shift[ki]].Load()
	chunks := *s.chunks.Load()
	for ref != 0 {
		idx := int(ref) - 1
		c := chunks[idx>>chunkBits]
		off := idx & chunkMask
		if c.keys[ki][off] == key && s.versions.tryGet(c.slots[off]) != 0 {
			qoff := off * s.qw
			for i := 0; i < s.qw && i < len(out); i++ {
				out[i] |= c.qsets[qoff+i]
			}
		}
		ref = c.next[ki][off]
	}
}

// EstBytes estimates the STeM's resident memory: allocated entry chunks
// (vIDs, slots, key columns, hash chains, query-set slab) plus the bucket
// arrays. Observability only; the estimate ignores Go object headers.
func (s *STeM) EstBytes() int64 {
	nChunks := int64(len(*s.chunks.Load()))
	perChunk := int64(chunkSize) * (4 + 4 + // vids, slots
		int64(len(s.keyCols))*(8+4) + // keys, next chains
		int64(s.qw)*8) // query-set slab
	var buckets int64
	for _, b := range s.buckets {
		buckets += int64(len(b)) * 4
	}
	return nChunks*perChunk + buckets
}

// NumChunks returns the number of allocated entry chunks.
func (s *STeM) NumChunks() int { return len(*s.chunks.Load()) }

// SweepChunk clears the retired queries' bits from every entry of chunk ci
// and returns how many of the chunk's entries now have an empty query set
// (cumulatively, not just newly emptied). It is the amortized unit of STeM
// garbage collection: the engine sweeps one chunk at a time between
// episodes, so no sweep ever runs on the execution hot path.
//
// Callers must hold the engine's quiesce gate: no episode may be running,
// because entries' query sets are read lock-free by probes.
func (s *STeM) SweepChunk(ci int, retired bitset.Set) (dead int) {
	chunks := *s.chunks.Load()
	if ci >= len(chunks) {
		return 0
	}
	c := chunks[ci]
	lo := ci << chunkBits
	hi := int(s.count.Load()) - lo
	if hi > chunkSize {
		hi = chunkSize
	}
	for off := 0; off < hi; off++ {
		qoff := off * s.qw
		empty := true
		for i := 0; i < s.qw; i++ {
			w := c.qsets[qoff+i]
			if i < len(retired) {
				w &^= retired[i]
				c.qsets[qoff+i] = w
			}
			if w != 0 {
				empty = false
			}
		}
		if empty {
			dead++
		}
	}
	return dead
}

// CompactLive rebuilds the STeM keeping only entries whose query set is
// non-empty, shrinking both the entry slab and the hash buckets to fit.
// Live entries keep their version slots (already published, so they stay
// visible to later probes). Returns the live entry count.
//
// Callers must hold the engine's quiesce gate.
func (s *STeM) CompactLive() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.chunks.Load()
	n := int(s.count.Load())

	live := 0
	for idx := 0; idx < n; idx++ {
		if !s.entryEmpty(old, idx) {
			live++
		}
	}

	nb := 1
	for nb < live*2 {
		nb <<= 1
	}
	if nb < 64 {
		nb = 64
	}
	newBuckets := make([][]atomic.Int32, len(s.keyCols))
	newShift := make([]uint, len(s.keyCols))
	for i := range s.keyCols {
		newBuckets[i] = make([]atomic.Int32, nb)
		newShift[i] = uint(64 - bits.TrailingZeros(uint(nb)))
	}

	newChunks := make([]*chunk, 0, (live+chunkSize-1)>>chunkBits)
	w := 0
	for idx := 0; idx < n; idx++ {
		if s.entryEmpty(old, idx) {
			continue
		}
		oc := old[idx>>chunkBits]
		ooff := idx & chunkMask
		if w>>chunkBits >= len(newChunks) {
			newChunks = append(newChunks, s.newChunkLocked())
		}
		nc := newChunks[w>>chunkBits]
		noff := w & chunkMask
		nc.vids[noff] = oc.vids[ooff]
		nc.slots[noff] = oc.slots[ooff]
		copy(nc.qsets[noff*s.qw:(noff+1)*s.qw], oc.qsets[ooff*s.qw:(ooff+1)*s.qw])
		ref := int32(w) + 1
		for i := range s.keyCols {
			k := oc.keys[i][ooff]
			nc.keys[i][noff] = k
			b := &newBuckets[i][hash64(k)>>newShift[i]]
			nc.next[i][noff] = b.Load()
			b.Store(ref)
		}
		w++
	}

	s.chunks.Store(&newChunks)
	s.buckets = newBuckets
	s.shift = newShift
	s.count.Store(int64(w))
	return w
}

func (s *STeM) entryEmpty(chunks []*chunk, idx int) bool {
	c := chunks[idx>>chunkBits]
	qoff := (idx & chunkMask) * s.qw
	for i := 0; i < s.qw; i++ {
		if c.qsets[qoff+i] != 0 {
			return false
		}
	}
	return true
}

// newChunkLocked allocates an empty chunk shaped for the current key
// columns. s.mu must be held.
func (s *STeM) newChunkLocked() *chunk {
	c := &chunk{
		keys:  make([][]int64, len(s.keyCols)),
		next:  make([][]int32, len(s.keyCols)),
		qsets: make([]uint64, chunkSize*s.qw),
	}
	for i := range s.keyCols {
		c.keys[i] = make([]int64, chunkSize)
		c.next[i] = make([]int32, chunkSize)
	}
	return c
}

// EnsureBuckets grows every index's bucket array to fit about capacityHint
// entries, rebuilding the hash chains. It never shrinks. The engine calls
// it when admitting a live query whose rescan will re-ingest a relation
// into a previously compacted STeM, so insert chains stay short.
//
// Callers must hold the engine's quiesce gate.
func (s *STeM) EnsureBuckets(capacityHint int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.keyCols) == 0 {
		return
	}
	nb := 1
	for nb < capacityHint*2 {
		nb <<= 1
	}
	if nb < 64 {
		nb = 64
	}
	if nb <= len(s.buckets[0]) {
		return
	}
	for i := range s.keyCols {
		s.buckets[i] = make([]atomic.Int32, nb)
		s.shift[i] = uint(64 - bits.TrailingZeros(uint(nb)))
	}
	s.rebuildChainsLocked()
}

// rebuildChainsLocked re-pushes every entry into every index's (already
// sized and zeroed) buckets. s.mu must be held.
func (s *STeM) rebuildChainsLocked() {
	chunks := *s.chunks.Load()
	n := int(s.count.Load())
	for idx := 0; idx < n; idx++ {
		c := chunks[idx>>chunkBits]
		off := idx & chunkMask
		ref := int32(idx) + 1
		for i := range s.keyCols {
			b := &s.buckets[i][hash64(c.keys[i][off])>>s.shift[i]]
			c.next[i][off] = b.Load()
			b.Store(ref)
		}
	}
}

// AddIndex adds a new indexed join-key column, deriving each existing
// entry's key with keyOf(vid) (typically a base-table column lookup). It
// is how a live-admitted query can join an already-built STeM on a column
// no earlier query joined on. No-op if col is already indexed.
//
// Callers must hold the engine's quiesce gate.
func (s *STeM) AddIndex(col string, keyOf func(vid int32) int64) {
	if s.HasIndex(col) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ki := len(s.keyCols)
	s.keyCols = append(s.keyCols, col)
	s.colIdx[col] = ki

	nb := 64
	if ki > 0 {
		nb = len(s.buckets[0])
	} else {
		for nb < int(s.count.Load())*2 {
			nb <<= 1
		}
	}
	s.buckets = append(s.buckets, make([]atomic.Int32, nb))
	s.shift = append(s.shift, uint(64-bits.TrailingZeros(uint(nb))))

	chunks := *s.chunks.Load()
	for _, c := range chunks {
		c.keys = append(c.keys, make([]int64, chunkSize))
		c.next = append(c.next, make([]int32, chunkSize))
	}
	n := int(s.count.Load())
	for idx := 0; idx < n; idx++ {
		c := chunks[idx>>chunkBits]
		off := idx & chunkMask
		k := keyOf(c.vids[off])
		c.keys[ki][off] = k
		b := &s.buckets[ki][hash64(k)>>s.shift[ki]]
		c.next[ki][off] = b.Load()
		b.Store(int32(idx) + 1)
	}
}

// Entry returns the vID and query set of entry idx (test/diagnostic use).
func (s *STeM) Entry(idx int) (int32, bitset.Set) {
	c := (*s.chunks.Load())[idx>>chunkBits]
	off := idx & chunkMask
	qoff := off * s.qw
	return c.vids[off], bitset.Set(c.qsets[qoff : qoff+s.qw])
}
