// Package stem implements State Modules (STeMs), the per-relation indexes
// that RouLette's history-independent multi-query n-ary symmetric hash join
// is built on (Raman et al., ICDE 2003; Sioulas & Ailamaki §3, §5.1).
//
// A STeM stores unified entries (index-vector of join keys, vID, version
// slot, query-set) in a chunked append-only slab and builds one lock-free
// hash index per join-key column. Inserts and probes are wait-free on the
// hot path; insert-probe atomicity across concurrent episodes uses the
// paper's batch versioning: every inserted vector takes one STeM-local
// version slot that is later published to a global timestamp with a single
// atomic, and probes accept only entries whose published timestamp is
// strictly older than the probing episode's.
//
// Structural maintenance (adding an index, growing buckets, compacting dead
// entries away) is copy-on-write: the index structure lives in an immutable
// stemState published through one atomic pointer, so probes never block on
// maintenance. Only inserts need the engine to fence the instance while a
// new state is built, because inserts mutate the current state's chunk tail
// and bucket heads.
package stem

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/value"
)

const (
	chunkBits = 12
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
)

// NullKey is the join key of a SQL NULL cell (value.NullCode in storage).
// NULL compares unequal to everything, itself included, so every probe path
// treats a NullKey probe as matching nothing; build-side NULL entries may
// be inserted normally — they are unreachable because no probe for their
// key ever walks a chain. Keeping the skip on the probe side leaves the
// insert hot path untouched.
const NullKey = value.NullCode

// clockBlock is the number of timestamps a worker clock reserves from the
// global counter per refill. One atomic on the shared counter then covers
// clockBlock episodes instead of one.
const clockBlock = 64

// Versions is the session-wide version-slot table shared by all STeMs.
// Each episode allocates one slot, stamps its inserted entries with the
// slot index, and publishes the slot to a fresh global timestamp after the
// insert completes (§5.2 "Scalable versioning").
//
// Slot protocol: slots are allocated densely (the engine uses the episode
// counter), a slot's entries are all inserted before the slot is published,
// and each slot is published at most once. The publication watermark — the
// count of contiguously published slots from 0 — depends on that contract:
// every slot below the watermark is published, and its timestamp is bounded
// by maxPub at the moment the watermark passed it, so it is strictly older
// than any timestamp drawn after the watermark was read (drawn timestamps
// always exceed the maxPub they observed). Vector probes use this to skip
// the per-entry timestamp load for the (large, stable) prefix of old
// entries and pay it only in the small concurrent tail.
//
// A slot's cell holds one of three states:
//
//	 0   unpublished, no probe has rejected it
//	+ts  published at global timestamp ts (final)
//	-X   sealed: a probe at timestamp X found the slot unpublished and
//	     rejected its entries; Publish must take a timestamp newer than X
//
// The seal closes the draw-to-store race: Publish draws its timestamp and
// stores it as two separate atomics, so a probe that drew a newer probeTS
// in between would otherwise read 0 and skip entries whose timestamp is
// about to become strictly older than probeTS (and the publishing episode's
// own probes reject the probing episode's entries for being newer — the
// matching pair would be emitted by neither side). Sealing makes the
// rejection binding instead: the probe CASes the cell to -probeTS before
// rejecting, and Publish's CAS loop redraws after losing to a seal, so a
// sealed slot's eventual timestamp is provably newer than every rejecting
// probe's. Neither side ever waits.
//
// Timestamp allocation is sharded: workers draw from per-worker blocks of
// clockBlock timestamps (Clock) reserved with one global.Add each, so the
// shared counter is touched once per clockBlock episodes instead of once
// per episode. maxPub tracks the largest timestamp ever stored into a cell;
// a block draw that cannot beat maxPub (or a seal) discards the rest of its
// block and reserves a fresh one — a block's leftover timestamps are never
// individually bumped past maxPub, because the bumped value could collide
// with another worker's in-flight block and duplicate timestamps break the
// strict ts < probeTS visibility order. The hot-path atomics (global,
// watermark, maxPub) are padded apart so publishes, watermark reads and
// max tracking do not false-share one cache line.
type Versions struct {
	global    atomic.Int64 // global timestamp counter; 0 is reserved
	_         [56]byte
	watermark atomic.Int64 // slots [0, watermark) are all published
	_         [56]byte
	maxPub    atomic.Int64 // max timestamp ever stored in a cell
	_         [56]byte

	mu    sync.Mutex
	slabs atomic.Pointer[[]*versionSlab]
}

type versionSlab struct {
	ts [chunkSize]atomic.Int64
}

// NewVersions creates an empty version table.
func NewVersions() *Versions {
	v := &Versions{}
	empty := []*versionSlab{}
	v.slabs.Store(&empty)
	return v
}

// Slot indexes a version slot.
type Slot int32

// Alloc reserves version slot number n (slots are allocated densely by the
// caller, typically the episode counter).
func (v *Versions) ensure(n Slot) *versionSlab {
	si := int(n) >> chunkBits
	slabs := *v.slabs.Load()
	if si < len(slabs) {
		return slabs[si]
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	slabs = *v.slabs.Load()
	for si >= len(slabs) {
		next := make([]*versionSlab, len(slabs)+1)
		copy(next, slabs)
		next[len(slabs)] = &versionSlab{}
		v.slabs.Store(&next)
		slabs = next
	}
	return slabs[si]
}

// casMaxPub raises maxPub to at least ts.
func (v *Versions) casMaxPub(ts int64) {
	for {
		m := v.maxPub.Load()
		if m >= ts || v.maxPub.CompareAndSwap(m, ts) {
			return
		}
	}
}

// Publish maps slot n to a fresh global timestamp and returns it. Entries
// stamped with n become visible to probes with a newer timestamp. Publish
// also advances the publication watermark past every contiguously published
// slot, so long-running probes can skip the per-entry timestamp check for
// entries under it.
//
// Publishing an already-published slot is an idempotent no-op returning the
// existing timestamp, so defensive publishes on fault paths are safe. If
// probes sealed the slot (rejected it while unpublished), the CAS loop
// redraws until its timestamp beats every seal: the timestamp is drawn
// after the seal was loaded, and the seal's magnitude was drawn before the
// seal was stored, so a successful CAS guarantees ts > every overwritten
// seal. Each retry means a probe with a newer timestamp sealed in between,
// so the loop is bounded by the number of concurrent probes.
func (v *Versions) Publish(n Slot) int64 {
	slab := v.ensure(n)
	cell := &slab.ts[int(n)&chunkMask]
	for {
		old := cell.Load()
		if old > 0 {
			return old
		}
		ts := v.global.Add(1)
		if cell.CompareAndSwap(old, ts) {
			v.casMaxPub(ts)
			v.advanceWatermark()
			return ts
		}
	}
}

// Clock is a per-worker timestamp allocator: a half-open range
// [next, lim) of global timestamps reserved in one global.Add. The zero
// value is an empty clock that refills on first use. A Clock must not be
// shared between goroutines.
type Clock struct {
	next int64
	lim  int64
}

// draw returns a timestamp strictly greater than min, refilling the block
// from the global counter when the current block is exhausted or cannot
// beat min. Leftover timestamps of an abandoned block are discarded, never
// bumped: a locally bumped value could fall inside another worker's
// reserved block and duplicate a timestamp, which breaks the strict
// ts < probeTS visibility order (both sides of a matching pair would
// reject each other). A fresh block always beats min because min was read
// from state (maxPub or a seal) whose value was drawn from the counter
// before our Add.
func (c *Clock) draw(v *Versions, min int64) int64 {
	if c.next <= min || c.next >= c.lim {
		base := v.global.Add(clockBlock) - clockBlock + 1
		c.next, c.lim = base, base+clockBlock
	}
	ts := c.next
	c.next++
	return ts
}

// PublishClocked publishes slot n using the worker-local clock c, returning
// the publication watermark observed before the publish and the slot's
// timestamp. It is the sharded-clock episode variant of
// Watermark-then-Publish: the returned watermark is safe to pass to
// ProbeVec with the returned timestamp, because the watermark was read
// before the timestamp was drawn and every drawn timestamp strictly
// exceeds the maxPub bound covering all slots under that watermark
// (advanceWatermark folds a slot's timestamp into maxPub before moving the
// watermark past it).
func (v *Versions) PublishClocked(n Slot, c *Clock) (Slot, int64) {
	slab := v.ensure(n)
	cell := &slab.ts[int(n)&chunkMask]
	wm := Slot(v.watermark.Load())
	for {
		old := cell.Load()
		if old > 0 {
			// Defensive double publish: the slot already has a timestamp we
			// did not pair with wm, so disable the caller's fast path.
			return 0, old
		}
		min := v.maxPub.Load()
		if -old > min {
			min = -old // sealed at -old: the timestamp must beat the seal
		}
		ts := c.draw(v, min)
		if cell.CompareAndSwap(old, ts) {
			v.casMaxPub(ts)
			v.advanceWatermark()
			return wm, ts
		}
	}
}

// advanceWatermark pushes the watermark forward while the slot at the
// frontier is published. Concurrent publishers race on the CAS; a lost race
// just re-reads the frontier, so the loop is bounded by the number of slots
// published since the caller started. The frontier slot's timestamp is
// folded into maxPub before the watermark moves past it, which is the
// invariant the sharded clock's watermark fast path rests on: any timestamp
// drawn after a watermark read exceeds the timestamps of all slots under it.
func (v *Versions) advanceWatermark() {
	for {
		w := v.watermark.Load()
		ts := v.tryGet(Slot(w))
		if ts == 0 {
			return
		}
		v.casMaxPub(ts)
		v.watermark.CompareAndSwap(w, w+1)
	}
}

// Watermark returns the current publication watermark: every slot below it
// is published, and — because drawn timestamps always exceed the maxPub
// bound covering the slots under the watermark — holds a timestamp strictly
// older than any probe timestamp drawn *after* this call. Callers pairing a
// watermark with a probe timestamp must therefore read the watermark first.
func (v *Versions) Watermark() Slot { return Slot(v.watermark.Load()) }

// Now returns a probe timestamp newer than every published slot.
func (v *Versions) Now() int64 { return v.global.Add(1) }

// Frontier returns the current value of the global version counter without
// advancing it. It is a read-only causal stamp — suitable for tagging
// observability events with "how far had the clock moved when this
// happened" — and must never be used as a probe timestamp (those must be
// drawn with Now so they exceed every published slot).
func (v *Versions) Frontier() int64 { return v.global.Load() }

// tryGet resolves slot n to its global timestamp; 0 means unpublished
// (sealed slots are unpublished).
func (v *Versions) tryGet(n Slot) int64 {
	si := int(n) >> chunkBits
	slabs := *v.slabs.Load()
	if si >= len(slabs) {
		return 0
	}
	if ts := slabs[si].ts[int(n)&chunkMask].Load(); ts > 0 {
		return ts
	}
	return 0
}

// visibleAt reports whether slot n is visible to a probe at probeTS, i.e.
// published with a timestamp strictly older than probeTS. An unpublished
// slot is sealed at probeTS (one CAS) before visibleAt answers false: the
// seal forces the slot's eventual Publish onto a timestamp newer than
// probeTS, so a rejection can never lose to a publish that drew an older
// timestamp but had not stored it yet. probeTS must come from this table's
// counter (Publish or Now).
func (v *Versions) visibleAt(n Slot, probeTS int64) bool {
	si := int(n) >> chunkBits
	slabs := *v.slabs.Load()
	if si >= len(slabs) {
		// No slab means Publish(n) has not finished ensure(n), which
		// precedes its timestamp draw; with seq-cst atomics the slab-creating
		// store ordered after our slabs load, so the eventual timestamp is
		// ordered after probeTS and the entries are invisible.
		return false
	}
	cell := &slabs[si].ts[int(n)&chunkMask]
	for {
		ts := cell.Load()
		if ts > 0 {
			return ts < probeTS
		}
		if -ts >= probeTS {
			return false // a probe at or after probeTS already sealed it
		}
		if cell.CompareAndSwap(ts, -probeTS) {
			return false
		}
		// Lost to a concurrent publish or a newer seal; re-read and decide
		// again. Each retry strictly increases the cell's state, so the
		// loop terminates.
	}
}

// chunk holds a fixed-size block of unified STeM entries in columnar form.
// Query-set words are always accessed with sync/atomic: the GC sweeper
// clears retired bits in them concurrently with probes and inserts.
type chunk struct {
	vids  [chunkSize]int32
	slots [chunkSize]Slot
	keys  [][]int64 // one column per index
	next  [][]int32 // one chain per index; 0 = end, else entryIdx+1
	qsets []uint64  // chunkSize * qw words; atomic access only
}

// stemState is the immutable index structure of a STeM: the key columns,
// their bucket arrays, and the entry chunk list. Structural maintenance
// (AddIndex, EnsureBuckets, CompactLive) builds a fresh state and publishes
// it with one atomic pointer store; the old state is frozen — its buckets
// and per-entry chain links are never written again — so probes that loaded
// it stay correct for as long as they hold it. Within one state the chunk
// list grows (appends only) and buckets accept new entries, which is why
// inserts must be fenced across a state swap while probes need not be.
type stemState struct {
	keyCols []string
	colIdx  map[string]int
	buckets [][]atomic.Int32 // per index; value 0 = empty, else entryIdx+1
	shift   []uint
	chunks  atomic.Pointer[[]*chunk]
}

// STeM is the state module for one relation instance.
type STeM struct {
	versions *Versions
	qw       int // query-set words per entry

	state atomic.Pointer[stemState]

	mu    sync.Mutex
	count atomic.Int64
	_     [56]byte // keep the hot insert counter off neighboring lines

	final atomic.Bool // set once the relation is fully ingested for all scheduled queries

	compactGen atomic.Uint64 // CompactLive rebuilds so far; entry positions are stable within one generation
}

// newState builds an empty state for the given key columns with nb buckets
// per index and an initial chunk list.
func newState(keyCols []string, nb int, chunks []*chunk) *stemState {
	st := &stemState{
		keyCols: keyCols,
		colIdx:  make(map[string]int, len(keyCols)),
		buckets: make([][]atomic.Int32, len(keyCols)),
		shift:   make([]uint, len(keyCols)),
	}
	for i, c := range keyCols {
		st.colIdx[c] = i
		st.buckets[i] = make([]atomic.Int32, nb)
		st.shift[i] = uint(64 - bits.TrailingZeros(uint(nb)))
	}
	st.chunks.Store(&chunks)
	return st
}

func bucketsFor(hint int) int {
	nb := 1
	for nb < hint*2 {
		nb <<= 1
	}
	if nb < 64 {
		nb = 64
	}
	return nb
}

// New creates a STeM indexing the given join-key columns, sized for about
// capacityHint entries and query sets over nQueries queries.
func New(versions *Versions, keyCols []string, nQueries, capacityHint int) *STeM {
	s := &STeM{
		versions: versions,
		qw:       bitset.WordsFor(nQueries),
	}
	if s.qw == 0 {
		s.qw = 1
	}
	s.state.Store(newState(keyCols, bucketsFor(capacityHint), []*chunk{}))
	return s
}

// KeyCols returns the indexed join-key columns of the current state. The
// engine serializes structural changes, so under its session mutex this is
// stable.
func (s *STeM) KeyCols() []string { return s.state.Load().keyCols }

// HasIndex reports whether col is indexed.
func (s *STeM) HasIndex(col string) bool {
	_, ok := s.state.Load().colIdx[col]
	return ok
}

// Len returns the number of inserted entries.
func (s *STeM) Len() int { return int(s.count.Load()) }

// MarkFinal records that the relation is fully ingested; pruning semi-joins
// may then use this STeM (§5.2 "Symmetric Join Pruning").
func (s *STeM) MarkFinal() { s.final.Store(true) }

// Final reports whether the relation is fully ingested.
func (s *STeM) Final() bool { return s.final.Load() }

func hash64(x int64) uint64 {
	// Fibonacci multiplicative hashing with an avalanche step.
	h := uint64(x) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

// chunkFor returns state st's chunk covering entry idx, growing st's chunk
// list if needed. Growth appends only — existing chunk pointers never move
// — so probes holding an older snapshot of the list stay valid.
func (s *STeM) chunkFor(st *stemState, idx int64) *chunk {
	ci := int(idx >> chunkBits)
	chunks := *st.chunks.Load()
	if ci < len(chunks) {
		return chunks[ci]
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	chunks = *st.chunks.Load()
	for ci >= len(chunks) {
		c := newChunk(len(st.keyCols), s.qw)
		next := make([]*chunk, len(chunks)+1)
		copy(next, chunks)
		next[len(chunks)] = c
		st.chunks.Store(&next)
		chunks = next
	}
	return chunks[ci]
}

func newChunk(nkeys, qw int) *chunk {
	c := &chunk{
		keys:  make([][]int64, nkeys),
		next:  make([][]int32, nkeys),
		qsets: make([]uint64, chunkSize*qw),
	}
	for i := 0; i < nkeys; i++ {
		c.keys[i] = make([]int64, chunkSize)
		c.next[i] = make([]int32, chunkSize)
	}
	return c
}

// Insert adds one tuple with the given join-key values (one per indexed
// column, in KeyCols order), stamping it with version slot slot. The tuple
// becomes visible to probes once the slot is published.
func (s *STeM) Insert(vid int32, keys []int64, qset bitset.Set, slot Slot) {
	st := s.state.Load()
	idx := s.count.Add(1) - 1
	c := s.chunkFor(st, idx)
	off := int(idx) & chunkMask
	c.vids[off] = vid
	c.slots[off] = slot
	qoff := off * s.qw
	for i := 0; i < s.qw; i++ {
		var w uint64
		if i < len(qset) {
			w = qset[i]
		}
		atomic.StoreUint64(&c.qsets[qoff+i], w)
	}
	ref := int32(idx) + 1
	for i := range st.keyCols {
		k := keys[i]
		c.keys[i][off] = k
		b := &st.buckets[i][hash64(k)>>st.shift[i]]
		for {
			head := b.Load()
			c.next[i][off] = head
			if b.CompareAndSwap(head, ref) {
				break
			}
		}
	}
}

// Match is one probe result: the matched entry's vID and query set.
type Match struct {
	VID  int32
	QSet bitset.Set // caller-owned copy of the entry's query set
}

// Probe finds entries whose key column col equals key and whose published
// timestamp is strictly older than probeTS, appending them to dst. The
// returned query sets are copies (this scalar path serves tests and
// calibration; the engine probes with ProbeVec, which stages query-set
// words into a caller-owned slab instead of allocating).
//
// probeTS must have been drawn from the STeM's Versions table (Publish or
// Now) before the probe began. Entries whose slot is still unpublished are
// rejected without waiting: the reject seals the slot at probeTS
// (Versions.visibleAt), which forces the slot's eventual publication onto
// a timestamp newer than probeTS — so the rejection is correct even
// against a publish that drew its timestamp before probeTS but had not
// stored it yet (the draw-to-store window).
func (s *STeM) Probe(dst []Match, col string, key int64, probeTS int64) []Match {
	if key == NullKey {
		// SQL NULL never equals anything, itself included: a NULL probe key
		// matches no entry, and build-side NULL entries are unreachable
		// because probes for their key never run.
		return dst
	}
	st := s.state.Load()
	ki, ok := st.colIdx[col]
	if !ok {
		return dst
	}
	// The chunk snapshot must be taken after the bucket head is loaded:
	// every entry reachable from the head had its chunk appended before the
	// head was CASed, and a state's chunk list only grows, so a snapshot
	// ordered after the head load covers the whole chain. The opposite order
	// races with a concurrent insert extending the slab.
	ref := st.buckets[ki][hash64(key)>>st.shift[ki]].Load()
	chunks := *st.chunks.Load()
	for ref != 0 {
		idx := int(ref) - 1
		c := chunks[idx>>chunkBits]
		off := idx & chunkMask
		if c.keys[ki][off] == key && s.versions.visibleAt(c.slots[off], probeTS) {
			qoff := off * s.qw
			qs := make(bitset.Set, s.qw)
			for i := 0; i < s.qw; i++ {
				qs[i] = atomic.LoadUint64(&c.qsets[qoff+i])
			}
			dst = append(dst, Match{VID: c.vids[off], QSet: qs})
		}
		ref = c.next[ki][off]
	}
	return dst
}

// SemiJoinQueries unions, into out, the query sets of all published entries
// matching key on col. It is the primitive behind symmetric join pruning:
// a probing tuple keeps only the query bits that some matching entry also
// carries. out must have capacity for the STeM's query-set width.
func (s *STeM) SemiJoinQueries(out bitset.Set, col string, key int64) {
	if key == NullKey {
		return // NULL join keys never match, see Probe
	}
	st := s.state.Load()
	ki, ok := st.colIdx[col]
	if !ok {
		return
	}
	// Head before chunk snapshot, same ordering argument as Probe.
	ref := st.buckets[ki][hash64(key)>>st.shift[ki]].Load()
	chunks := *st.chunks.Load()
	for ref != 0 {
		idx := int(ref) - 1
		c := chunks[idx>>chunkBits]
		off := idx & chunkMask
		if c.keys[ki][off] == key && s.versions.tryGet(c.slots[off]) != 0 {
			qoff := off * s.qw
			for i := 0; i < s.qw && i < len(out); i++ {
				out[i] |= atomic.LoadUint64(&c.qsets[qoff+i])
			}
		}
		ref = c.next[ki][off]
	}
}

// EstBytes estimates the STeM's resident memory: allocated entry chunks
// (vIDs, slots, key columns, hash chains, query-set slab) plus the bucket
// arrays. Observability only; the estimate ignores Go object headers.
func (s *STeM) EstBytes() int64 {
	st := s.state.Load()
	nChunks := int64(len(*st.chunks.Load()))
	perChunk := int64(chunkSize) * (4 + 4 + // vids, slots
		int64(len(st.keyCols))*(8+4) + // keys, next chains
		int64(s.qw)*8) // query-set slab
	var buckets int64
	for _, b := range st.buckets {
		buckets += int64(len(b)) * 4
	}
	return nChunks*perChunk + buckets
}

// NumChunks returns the number of allocated entry chunks.
func (s *STeM) NumChunks() int { return len(*s.state.Load().chunks.Load()) }

// SweepChunk clears the retired queries' bits from every entry of chunk ci
// and returns how many of the chunk's entries now have an empty query set
// (cumulatively, not just newly emptied). It is the amortized unit of STeM
// garbage collection: the engine sweeps one chunk at a time between
// episodes, so no sweep ever runs on the execution hot path.
//
// SweepChunk runs concurrently with probes and inserts: every query-set
// word is cleared with a load/CAS pair, and a lost CAS is simply skipped —
// the only concurrent writer is an insert publishing a fresh entry, and a
// freshly inserted entry can never carry a retired query's bit (a query
// only retires once its in-flight episodes have drained, so no episode
// that could insert its bit is still running). Reserved-but-unwritten
// entries (an in-flight InsertVec past count.Add but before its stores)
// read as zero and are counted dead; that only skews the compaction
// heuristic, never correctness.
func (s *STeM) SweepChunk(ci int, retired bitset.Set) (dead int) {
	st := s.state.Load()
	chunks := *st.chunks.Load()
	if ci >= len(chunks) {
		return 0
	}
	c := chunks[ci]
	lo := ci << chunkBits
	hi := int(s.count.Load()) - lo
	if hi > chunkSize {
		hi = chunkSize
	}
	for off := 0; off < hi; off++ {
		qoff := off * s.qw
		empty := true
		for i := 0; i < s.qw; i++ {
			w := atomic.LoadUint64(&c.qsets[qoff+i])
			if i < len(retired) {
				masked := w &^ retired[i]
				if masked != w {
					// Ignore a lost race: the only concurrent writer is an
					// insert, whose value carries no retired bits.
					atomic.CompareAndSwapUint64(&c.qsets[qoff+i], w, masked)
					w = masked
				}
			}
			if w != 0 {
				empty = false
			}
		}
		if empty {
			dead++
		}
	}
	return dead
}

// CompactLive rebuilds the STeM keeping only entries whose query set is
// non-empty, shrinking both the entry slab and the hash buckets to fit.
// Live entries keep their version slots (already published, so they stay
// visible to later probes). Returns the live entry count.
//
// The rebuild is copy-on-write: a fresh state (new chunks, new buckets) is
// built and published with one atomic store, so probes never block — a
// probe holding the old state sees every live entry there (compaction only
// drops entries whose query set is empty, which no probe output can use).
// Inserts must be fenced by the caller (the engine's per-instance insert
// fence): an insert landing in the old state after the live scan would be
// lost.
func (s *STeM) CompactLive() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state.Load()
	old := *st.chunks.Load()
	n := int(s.count.Load())

	live := 0
	for idx := 0; idx < n; idx++ {
		if !entryEmpty(old, idx, s.qw) {
			live++
		}
	}

	ns := newState(st.keyCols, bucketsFor(live), make([]*chunk, 0, (live+chunkSize-1)>>chunkBits))
	w := 0
	for idx := 0; idx < n; idx++ {
		if entryEmpty(old, idx, s.qw) {
			continue
		}
		oc := old[idx>>chunkBits]
		ooff := idx & chunkMask
		chunks := *ns.chunks.Load()
		if w>>chunkBits >= len(chunks) {
			next := append(chunks, newChunk(len(ns.keyCols), s.qw))
			ns.chunks.Store(&next)
			chunks = next
		}
		nc := chunks[w>>chunkBits]
		noff := w & chunkMask
		nc.vids[noff] = oc.vids[ooff]
		nc.slots[noff] = oc.slots[ooff]
		for i := 0; i < s.qw; i++ {
			atomic.StoreUint64(&nc.qsets[noff*s.qw+i], atomic.LoadUint64(&oc.qsets[ooff*s.qw+i]))
		}
		ref := int32(w) + 1
		for i := range ns.keyCols {
			k := oc.keys[i][ooff]
			nc.keys[i][noff] = k
			b := &ns.buckets[i][hash64(k)>>ns.shift[i]]
			nc.next[i][noff] = b.Load()
			b.Store(ref)
		}
		w++
	}

	s.state.Store(ns)
	s.count.Store(int64(w))
	s.compactGen.Add(1)
	return w
}

// CompactGen returns the number of CompactLive rebuilds this STeM has
// undergone. CompactLive is the only operation that moves entries to new
// positions (AddIndex and EnsureBuckets share the entry slabs in place),
// so a position-addressed scan — the engine's GC sweep cursor — is valid
// only within one generation: compare across pauses and restart from
// position zero when it moved.
func (s *STeM) CompactGen() uint64 { return s.compactGen.Load() }

func entryEmpty(chunks []*chunk, idx, qw int) bool {
	c := chunks[idx>>chunkBits]
	qoff := (idx & chunkMask) * qw
	for i := 0; i < qw; i++ {
		if atomic.LoadUint64(&c.qsets[qoff+i]) != 0 {
			return false
		}
	}
	return true
}

// NeedsGrow reports whether EnsureBuckets(capacityHint) would rebuild the
// bucket arrays. The engine uses it to decide whether an admission needs an
// insert fence on this instance.
func (s *STeM) NeedsGrow(capacityHint int) bool {
	st := s.state.Load()
	if len(st.keyCols) == 0 {
		return false
	}
	return bucketsFor(capacityHint) > len(st.buckets[0])
}

// EnsureBuckets grows every index's bucket array to fit about capacityHint
// entries, rebuilding the hash chains. It never shrinks. The engine calls
// it when admitting a live query whose rescan will re-ingest a relation
// into a previously compacted STeM, so insert chains stay short.
//
// Copy-on-write like CompactLive: the new state clones every chunk (the
// chain links are rebuilt for the new bucket count, and chain links are
// per-state), shares the old chunks' key and query-set slabs, and is
// published with one atomic store. Probes never block; inserts must be
// fenced by the caller.
func (s *STeM) EnsureBuckets(capacityHint int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state.Load()
	if len(st.keyCols) == 0 {
		return
	}
	nb := bucketsFor(capacityHint)
	if nb <= len(st.buckets[0]) {
		return
	}
	old := *st.chunks.Load()
	ns := newState(st.keyCols, nb, cloneChunks(old, len(st.keyCols)))
	s.rebuildChains(ns)
	s.state.Store(ns)
}

// cloneChunks copies a chunk list for a new state: vID/slot/key/query-set
// storage is shared with the old chunks (those never change for existing
// entries, and query-set words are atomic), while the per-index chain links
// are fresh, because each state rebuilds chains for its own bucket layout
// and the old state's probes keep walking the old links.
func cloneChunks(old []*chunk, nkeys int) []*chunk {
	chunks := make([]*chunk, len(old))
	for ci, oc := range old {
		nc := &chunk{
			vids:  oc.vids,
			slots: oc.slots,
			keys:  oc.keys,
			next:  make([][]int32, nkeys),
			qsets: oc.qsets,
		}
		for i := 0; i < nkeys; i++ {
			nc.next[i] = make([]int32, chunkSize)
		}
		chunks[ci] = nc
	}
	return chunks
}

// rebuildChains re-pushes every entry into every index's (already sized
// and zeroed) buckets of state ns. s.mu must be held.
func (s *STeM) rebuildChains(ns *stemState) {
	chunks := *ns.chunks.Load()
	n := int(s.count.Load())
	for idx := 0; idx < n; idx++ {
		c := chunks[idx>>chunkBits]
		off := idx & chunkMask
		ref := int32(idx) + 1
		for i := range ns.keyCols {
			b := &ns.buckets[i][hash64(c.keys[i][off])>>ns.shift[i]]
			c.next[i][off] = b.Load()
			b.Store(ref)
		}
	}
}

// AddIndex adds a new indexed join-key column, deriving each existing
// entry's key with keyOf(vid) (typically a base-table column lookup). It
// is how a live-admitted query can join an already-built STeM on a column
// no earlier query joined on. No-op if col is already indexed.
//
// Copy-on-write: the new state clones the chunks (sharing existing key
// columns and query-set slabs, with fresh chain links plus the new key
// column) and fresh buckets for every index, then publishes with one
// atomic store. Probes on the old state never see the new column and never
// block; inserts must be fenced by the caller because entries inserted
// during the rebuild would miss the new column's backfill.
func (s *STeM) AddIndex(col string, keyOf func(vid int32) int64) {
	if s.HasIndex(col) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state.Load()
	ki := len(st.keyCols)
	keyCols := append(append([]string{}, st.keyCols...), col)

	nb := 64
	if ki > 0 {
		nb = len(st.buckets[0])
	} else {
		nb = bucketsFor(int(s.count.Load()))
	}

	old := *st.chunks.Load()
	chunks := cloneChunks(old, ki+1)
	for _, nc := range chunks {
		nc.keys = append(append([][]int64{}, nc.keys...), make([]int64, chunkSize))
	}
	ns := newState(keyCols, nb, chunks)

	n := int(s.count.Load())
	for idx := 0; idx < n; idx++ {
		c := chunks[idx>>chunkBits]
		off := idx & chunkMask
		c.keys[ki][off] = keyOf(c.vids[off])
	}
	s.rebuildChains(ns)
	s.state.Store(ns)
}

// Entry returns the vID and a copy of the query set of entry idx
// (test/diagnostic use).
func (s *STeM) Entry(idx int) (int32, bitset.Set) {
	c := (*s.state.Load().chunks.Load())[idx>>chunkBits]
	off := idx & chunkMask
	qoff := off * s.qw
	qs := make(bitset.Set, s.qw)
	for i := 0; i < s.qw; i++ {
		qs[i] = atomic.LoadUint64(&c.qsets[qoff+i])
	}
	return c.vids[off], qs
}
