package stem

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/roulette-db/roulette/internal/bitset"
)

func TestInsertProbeBasic(t *testing.T) {
	v := NewVersions()
	s := New(v, []string{"k"}, 4, 16)

	q01 := bitset.FromIDs(4, 0, 1)
	s.Insert(10, []int64{5}, q01, 0)
	s.Insert(11, []int64{5}, bitset.FromIDs(4, 2), 0)
	s.Insert(12, []int64{7}, q01, 0)
	v.Publish(0)

	ts := v.Now()
	got := s.Probe(nil, "k", 5, ts)
	if len(got) != 2 {
		t.Fatalf("Probe(5) = %d matches, want 2", len(got))
	}
	vids := map[int32]bool{got[0].VID: true, got[1].VID: true}
	if !vids[10] || !vids[11] {
		t.Errorf("Probe vids = %v", vids)
	}
	if got := s.Probe(nil, "k", 99, ts); len(got) != 0 {
		t.Errorf("Probe(99) = %d matches, want 0", len(got))
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestProbeTimestampAtomicity(t *testing.T) {
	v := NewVersions()
	s := New(v, []string{"k"}, 2, 16)

	s.Insert(1, []int64{5}, bitset.NewFull(2), 0)
	ts0 := v.Publish(0)

	// A probe with a timestamp equal to or older than the publish time must
	// not see the entry ("only matches with older timestamps").
	if got := s.Probe(nil, "k", 5, ts0); len(got) != 0 {
		t.Errorf("probe at publish ts saw %d entries", len(got))
	}
	if got := s.Probe(nil, "k", 5, v.Now()); len(got) != 1 {
		t.Errorf("probe with newer ts saw %d entries, want 1", len(got))
	}

	// An unpublished vector must stay invisible (SemiJoinQueries path, which
	// never spins).
	s.Insert(2, []int64{6}, bitset.NewFull(2), 1)
	out := bitset.New(2)
	s.SemiJoinQueries(out, "k", 6)
	if !out.Empty() {
		t.Error("semi-join saw unpublished entry")
	}
	v.Publish(1)
	s.SemiJoinQueries(out, "k", 6)
	if out.Count() != 2 {
		t.Error("semi-join missed published entry")
	}
}

func TestMultipleIndices(t *testing.T) {
	v := NewVersions()
	s := New(v, []string{"a", "b"}, 2, 16)
	s.Insert(1, []int64{10, 20}, bitset.NewFull(2), 0)
	s.Insert(2, []int64{10, 21}, bitset.NewFull(2), 0)
	v.Publish(0)
	ts := v.Now()

	if got := s.Probe(nil, "a", 10, ts); len(got) != 2 {
		t.Errorf("Probe(a=10) = %d, want 2", len(got))
	}
	if got := s.Probe(nil, "b", 21, ts); len(got) != 1 || got[0].VID != 2 {
		t.Errorf("Probe(b=21) = %v", got)
	}
	if s.Probe(nil, "zzz", 1, ts) != nil {
		t.Error("probe on unindexed column should return nil dst")
	}
	if !s.HasIndex("a") || s.HasIndex("zzz") {
		t.Error("HasIndex wrong")
	}
}

func TestSemiJoinQueriesUnions(t *testing.T) {
	v := NewVersions()
	s := New(v, []string{"k"}, 8, 16)
	s.Insert(1, []int64{3}, bitset.FromIDs(8, 0), 0)
	s.Insert(2, []int64{3}, bitset.FromIDs(8, 5), 0)
	s.Insert(3, []int64{4}, bitset.FromIDs(8, 7), 0)
	v.Publish(0)

	out := bitset.New(8)
	s.SemiJoinQueries(out, "k", 3)
	if got := out.IDs(); len(got) != 2 || got[0] != 0 || got[1] != 5 {
		t.Errorf("SemiJoinQueries = %v, want [0 5]", got)
	}
}

func TestFinalFlag(t *testing.T) {
	s := New(NewVersions(), []string{"k"}, 1, 4)
	if s.Final() {
		t.Error("new STeM marked final")
	}
	s.MarkFinal()
	if !s.Final() {
		t.Error("MarkFinal did not stick")
	}
}

func TestChunkGrowth(t *testing.T) {
	v := NewVersions()
	s := New(v, []string{"k"}, 2, 16)
	n := chunkSize*2 + 57 // force three chunks
	for i := 0; i < n; i++ {
		s.Insert(int32(i), []int64{int64(i % 97)}, bitset.NewFull(2), 0)
	}
	v.Publish(0)
	ts := v.Now()
	total := 0
	for k := int64(0); k < 97; k++ {
		total += len(s.Probe(nil, "k", k, ts))
	}
	if total != n {
		t.Errorf("probed %d entries across all keys, want %d", total, n)
	}
	vid, q := s.Entry(chunkSize + 5)
	if vid != int32(chunkSize+5) || q.Count() != 2 {
		t.Errorf("Entry = %d %v", vid, q)
	}
}

// TestConcurrentInsertProbePairsOnce models two episodes symmetric-joining:
// every (r, s) key match must be produced exactly once across the two sides.
func TestConcurrentInsertProbePairsOnce(t *testing.T) {
	const keys = 64
	const perSide = 4096
	for trial := 0; trial < 4; trial++ {
		v := NewVersions()
		r := New(v, []string{"k"}, 2, perSide)
		s := New(v, []string{"k"}, 2, perSide)
		qs := bitset.NewFull(2)

		type pair struct{ a, b int32 }
		var mu sync.Mutex
		found := make(map[pair]int)

		run := func(mine, other *STeM, slotBase Slot, flip bool, seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perSide; i += 64 {
				slot := slotBase + Slot(i/64)
				for j := 0; j < 64; j++ {
					vid := int32(i + j)
					mine.Insert(vid, []int64{int64(rng.Intn(keys))}, qs, slot)
				}
				ts := v.Publish(slot)
				// Probe the other side for each of my just-inserted keys.
				rng2 := rand.New(rand.NewSource(seed))
				_ = rng2
				for j := 0; j < 64; j++ {
					vid := int32(i + j)
					key := mine.keyOf(vid)
					for _, m := range other.Probe(nil, "k", key, ts) {
						p := pair{vid, m.VID}
						if flip {
							p = pair{m.VID, vid}
						}
						mu.Lock()
						found[p]++
						mu.Unlock()
					}
				}
			}
		}

		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); run(r, s, 0, false, int64(trial)*2+1) }()
		go func() { defer wg.Done(); run(s, r, 1<<20, true, int64(trial)*2+2) }()
		wg.Wait()

		// Verify against ground truth.
		rKeys := map[int64][]int32{}
		sKeys := map[int64][]int32{}
		for vid := int32(0); vid < perSide; vid++ {
			rKeys[r.keyOf(vid)] = append(rKeys[r.keyOf(vid)], vid)
			sKeys[s.keyOf(vid)] = append(sKeys[s.keyOf(vid)], vid)
		}
		want := 0
		for k, rs := range rKeys {
			want += len(rs) * len(sKeys[k])
		}
		if len(found) != want {
			t.Fatalf("trial %d: found %d distinct pairs, want %d", trial, len(found), want)
		}
		for p, c := range found {
			if c != 1 {
				t.Fatalf("trial %d: pair %v produced %d times", trial, p, c)
			}
		}
	}
}

// TestProbeSealBindsRejection pins the probe-side seal protocol: a probe
// that rejects an unpublished slot seals it, so the slot's later Publish
// must draw a timestamp newer than the rejecting probe's — the rejection
// can never turn out wrong after the fact (the draw-to-store window).
func TestProbeSealBindsRejection(t *testing.T) {
	v := NewVersions()
	s := New(v, []string{"k"}, 2, 16)

	s.Insert(1, []int64{7}, bitset.NewFull(2), 0)
	probeTS := v.Now()
	if got := s.Probe(nil, "k", 7, probeTS); len(got) != 0 {
		t.Fatalf("probe saw unpublished entry: %v", got)
	}
	if v.Watermark() != 0 {
		t.Fatalf("watermark advanced past sealed slot: %d", v.Watermark())
	}
	ts := v.Publish(0)
	if ts <= probeTS {
		t.Fatalf("publish after seal drew ts %d <= rejecting probeTS %d", ts, probeTS)
	}
	if again := v.Publish(0); again != ts {
		t.Fatalf("re-publish not idempotent: %d then %d", ts, again)
	}
	if v.Watermark() != 1 {
		t.Fatalf("watermark = %d after publish, want 1", v.Watermark())
	}
	if got := s.Probe(nil, "k", 7, v.Now()); len(got) != 1 {
		t.Fatalf("published entry invisible to newer probe")
	}
}

// TestVisibleAtPublishRaceInvariant hammers visibleAt against concurrent
// Publish calls and checks the binding-rejection invariant: whenever a
// probe rejects a slot, the slot's final published timestamp must be newer
// than the probe's; whenever it accepts, older.
func TestVisibleAtPublishRaceInvariant(t *testing.T) {
	const slots = 2048
	const probers = 4
	v := NewVersions()

	type verdict struct {
		slot    Slot
		probeTS int64
		visible bool
	}
	verdicts := make([][]verdict, probers)
	var wg sync.WaitGroup
	wg.Add(probers + 1)
	go func() {
		defer wg.Done()
		for n := Slot(0); n < slots; n++ {
			v.Publish(n)
		}
	}()
	for p := 0; p < probers; p++ {
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for i := 0; i < slots*2; i++ {
				n := Slot(rng.Intn(slots))
				probeTS := v.Now()
				verdicts[p] = append(verdicts[p], verdict{n, probeTS, v.visibleAt(n, probeTS)})
			}
		}(p)
	}
	wg.Wait()

	for p, vs := range verdicts {
		for _, vd := range vs {
			ts := v.tryGet(vd.slot)
			if ts == 0 {
				t.Fatalf("slot %d never published", vd.slot)
			}
			if vd.visible && ts >= vd.probeTS {
				t.Fatalf("prober %d: accepted slot %d with final ts %d >= probeTS %d", p, vd.slot, ts, vd.probeTS)
			}
			if !vd.visible && ts < vd.probeTS {
				t.Fatalf("prober %d: rejected slot %d whose final ts %d < probeTS %d", p, vd.slot, ts, vd.probeTS)
			}
		}
	}
	if v.Watermark() != slots {
		t.Fatalf("watermark = %d, want %d", v.Watermark(), slots)
	}
}

// TestProbeDuringChunkGrowth races probes against an inserter crossing
// chunk boundaries: a probe must never walk a chain entry whose chunk is
// missing from its slab snapshot (the snapshot is ordered after the bucket
// head loads), and every match it does emit must be published and valid.
func TestProbeDuringChunkGrowth(t *testing.T) {
	const total = chunkSize*3 + 100
	const hotKeys = 8
	v := NewVersions()
	s := New(v, []string{"k"}, 2, 64) // deliberately undersized buckets
	qs := bitset.NewFull(2)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i += 64 {
			slot := Slot(i / 64)
			for j := 0; j < 64 && i+j < total; j++ {
				vid := int32(i + j)
				s.Insert(vid, []int64{int64(vid) % hotKeys}, qs, slot)
			}
			v.Publish(slot)
		}
	}()

	var scratch []Match
	var vecDst []VecMatch
	var vecQbuf []uint64
	keys := make([]int64, hotKeys)
	for k := range keys {
		keys[k] = int64(k)
	}
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		wm := v.Watermark()
		ts := v.Now()
		for k := int64(0); k < hotKeys; k++ {
			scratch = s.Probe(scratch[:0], "k", k, ts)
			for _, m := range scratch {
				if int64(m.VID)%hotKeys != k {
					t.Fatalf("scalar probe key %d matched vid %d", k, m.VID)
				}
			}
		}
		vecDst, vecQbuf = s.ProbeVec(vecDst[:0], vecQbuf[:0], "k", keys, ts, wm)
		for _, m := range vecDst {
			if int64(m.VID)%hotKeys != keys[m.In] {
				t.Fatalf("vector probe key %d matched vid %d", keys[m.In], m.VID)
			}
		}
	}
	if got := probeVecCount(s, "k", keys, v.Now(), v.Watermark()); got != total {
		t.Fatalf("final probe saw %d entries, want %d", got, total)
	}
}

// keyOf recovers the key of entry vid (test helper; entries were inserted
// with vid == index order per side, single key column).
func (s *STeM) keyOf(vid int32) int64 {
	chunks := *s.state.Load().chunks.Load()
	n := int(s.count.Load())
	for idx := 0; idx < n; idx++ {
		c := chunks[idx>>chunkBits]
		off := idx & chunkMask
		if c.vids[off] == vid {
			return c.keys[0][off]
		}
	}
	return -1
}

func BenchmarkInsert(b *testing.B) {
	v := NewVersions()
	s := New(v, []string{"k"}, 64, b.N+1)
	q := bitset.NewFull(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(int32(i), []int64{int64(i & 1023)}, q, Slot(i>>10))
	}
}

func BenchmarkProbe(b *testing.B) {
	v := NewVersions()
	s := New(v, []string{"k"}, 64, 1<<16)
	q := bitset.NewFull(64)
	for i := 0; i < 1<<16; i++ {
		s.Insert(int32(i), []int64{int64(i & 4095)}, q, 0)
	}
	v.Publish(0)
	ts := v.Now()
	var dst []Match
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = s.Probe(dst[:0], "k", int64(i&4095), ts)
	}
}

// TestEstBytes checks the memory estimate grows with inserted chunks and
// starts at the bucket-array floor.
func TestEstBytes(t *testing.T) {
	v := NewVersions()
	s := New(v, []string{"k"}, 16, 64)
	base := s.EstBytes()
	if base <= 0 {
		t.Fatalf("empty STeM estimate = %d", base)
	}
	q := bitset.NewFull(16)
	for i := 0; i < chunkSize+1; i++ { // force a second chunk
		s.Insert(int32(i), []int64{int64(i)}, q, 0)
	}
	grown := s.EstBytes()
	if grown <= base {
		t.Fatalf("estimate did not grow: %d -> %d", base, grown)
	}
	perChunk := (grown - base) / 2
	if perChunk < chunkSize*(4+4+8+4+8) {
		t.Errorf("per-chunk estimate %d smaller than its columns", perChunk)
	}
}
