package stem

import (
	"sync/atomic"

	"github.com/roulette-db/roulette/internal/bitset"
)

// This file holds the vector kernels: whole-episode-vector variants of
// Insert, Probe and SemiJoinQueries. The scalar paths pay one atomic
// counter bump plus one CAS per key per tuple on insert, and a per-entry
// version lookup on probe; the kernels amortize both across the vector
// (§5.2 "Scalable versioning"):
//
//   - InsertVec reserves the whole vector's index range with a single
//     count.Add(n), bulk-writes the entry columns chunk segment by chunk
//     segment, pre-links the intra-batch hash chains in caller-owned
//     scratch, and splices each *distinct* bucket with one CAS — up to
//     len(vec)×keys CASes collapse into ~distinct-buckets CASes.
//   - ProbeVec resolves the key column once (the scalar path pays a map
//     lookup per call), batch-hashes the key block and preloads bucket
//     heads before walking chains, and consults the publication watermark:
//     entries whose slot is under the watermark skip the per-entry
//     timestamp load entirely.
//   - SemiJoinVec is the batched symmetric-join-pruning primitive with the
//     same watermark short-circuit.
//
// Memory-ordering argument (same as the scalar Insert): every entry write
// — vIDs, slots, keys, query sets, intra-batch next links — happens before
// the bucket CAS that makes the batch reachable, and probes load the bucket
// head with acquire semantics, so a reachable entry is always fully
// written. Entries stay invisible to result probes until their slot is
// published regardless: a probe that finds the slot unpublished rejects it
// after sealing it (Versions.visibleAt), which pins the slot's eventual
// timestamp above the probe's, so the rejection cannot race with an
// in-flight publish.
//
// Query-set words are stored and loaded with sync/atomic throughout: the
// concurrent GC sweeper clears retired bits in place while these kernels
// run, and mixed plain/atomic access on the same words would both race and
// tear under the race detector.

// VecMatch is one ProbeVec result: input position In of the probed key
// batch matched entry (VID, QSet).
type VecMatch struct {
	In   int32
	VID  int32
	QSet bitset.Set // view into the caller's ProbeVec query-set buffer
}

// InsertScratch is the worker-local scratch for InsertVec's intra-batch
// chain building: an epoch-stamped open-addressing table deduplicating
// bucket indices, and the per-distinct-bucket chain heads and tails. The
// zero value is ready to use; buffers grow to the largest batch seen and
// are reused, so steady-state inserts do not allocate.
type InsertScratch struct {
	table []uint64 // epoch<<32 | (distinct index + 1); epoch mismatch = empty
	epoch uint32
	mask  uint32

	dbuck []int32 // distinct bucket index
	dhead []int32 // entry ref of the batch chain's first entry
	dtail []int32 // entry ref of the batch chain's last entry
	nd    int
}

// begin readies the scratch for a batch of n tuples: the dedup table holds
// at least 2n cells (power of two) and a bumped epoch empties it without
// clearing.
func (sc *InsertScratch) begin(n int) {
	want := 1
	for want < 2*n {
		want <<= 1
	}
	if want < 64 {
		want = 64
	}
	if len(sc.table) < want {
		sc.table = make([]uint64, want)
		sc.dbuck = make([]int32, 0, n)
		sc.dhead = make([]int32, 0, n)
		sc.dtail = make([]int32, 0, n)
		sc.epoch = 0
	}
	sc.mask = uint32(len(sc.table) - 1)
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stale cells could alias; clear once
		for i := range sc.table {
			sc.table[i] = 0
		}
		sc.epoch = 1
	}
	sc.dbuck = sc.dbuck[:0]
	sc.dhead = sc.dhead[:0]
	sc.dtail = sc.dtail[:0]
	sc.nd = 0
}

// lookupOrAdd returns the distinct-list index of bucket b, adding it on
// first sight. Linear probing over the epoch-stamped table.
func (sc *InsertScratch) lookupOrAdd(b int32) int {
	tag := uint64(sc.epoch) << 32
	for cell := uint32(b) & sc.mask; ; cell = (cell + 1) & sc.mask {
		v := sc.table[cell]
		if v>>32 != uint64(sc.epoch) {
			li := sc.nd
			sc.table[cell] = tag | uint64(uint32(li+1))
			sc.dbuck = append(sc.dbuck, b)
			sc.dhead = append(sc.dhead, 0)
			sc.dtail = append(sc.dtail, 0)
			sc.nd++
			return li
		}
		li := int(uint32(v)) - 1
		if sc.dbuck[li] == b {
			return li
		}
	}
}

// InsertVec adds len(vids) tuples in bulk, all stamped with version slot
// slot. keyCols holds one key column per indexed column (KeyCols order),
// each of length len(vids); qsets is the tuples' query-set slab with qw
// words per tuple. keyCols may carry extra trailing columns beyond the
// STeM's current index count (a worker acting on a newer context view than
// the STeM's pending AddIndex); the extras are ignored. The tuples become
// visible to probes once the slot is published. sc must not be shared
// between concurrent callers; pass a fresh or worker-owned scratch.
//
// Result-equivalent to calling Insert per tuple, except that entries of
// the same batch hitting the same bucket are chained in batch order rather
// than last-in-first-out; probes see the same match *sets* either way.
func (s *STeM) InsertVec(vids []int32, keyCols [][]int64, qsets []uint64, qw int, slot Slot, sc *InsertScratch) {
	n := len(vids)
	if n == 0 {
		return
	}
	st := s.state.Load()
	base := s.count.Add(int64(n)) - int64(n)
	// Materialize every chunk the batch touches, then bulk-write the entry
	// columns one chunk segment at a time.
	s.chunkFor(st, base+int64(n)-1)
	chunks := *st.chunks.Load()
	for i0 := 0; i0 < n; {
		idx := base + int64(i0)
		c := chunks[idx>>chunkBits]
		off := int(idx) & chunkMask
		seg := chunkSize - off
		if seg > n-i0 {
			seg = n - i0
		}
		copy(c.vids[off:off+seg], vids[i0:i0+seg])
		for j := 0; j < seg; j++ {
			c.slots[off+j] = slot
		}
		for j := 0; j < seg; j++ {
			src := qsets[(i0+j)*qw : (i0+j+1)*qw]
			dst := c.qsets[(off+j)*s.qw : (off+j+1)*s.qw]
			for w := range dst {
				var v uint64
				if w < len(src) {
					v = src[w]
				}
				atomic.StoreUint64(&dst[w], v)
			}
		}
		for k := range st.keyCols {
			copy(c.keys[k][off:off+seg], keyCols[k][i0:i0+seg])
		}
		i0 += seg
	}
	for ki := range st.keyCols {
		s.spliceBatch(st, ki, base, n, keyCols[ki], sc, chunks)
	}
}

// spliceBatch links the batch's entries into index ki's hash chains: one
// pass groups the batch per distinct bucket (chaining group members through
// the entries' own next links, which nothing can read yet), then each
// distinct bucket is spliced in front of its current chain with a single
// CAS.
func (s *STeM) spliceBatch(st *stemState, ki int, base int64, n int, keys []int64, sc *InsertScratch, chunks []*chunk) {
	sc.begin(n)
	buckets := st.buckets[ki]
	shift := st.shift[ki]
	for i := 0; i < n; i++ {
		b := int32(hash64(keys[i]) >> shift)
		li := sc.lookupOrAdd(b)
		ref := int32(base) + int32(i) + 1
		if sc.dhead[li] == 0 {
			sc.dhead[li] = ref
		} else {
			prev := int(sc.dtail[li]) - 1
			chunks[prev>>chunkBits].next[ki][prev&chunkMask] = ref
		}
		sc.dtail[li] = ref
	}
	for li := 0; li < sc.nd; li++ {
		b := &buckets[sc.dbuck[li]]
		tail := int(sc.dtail[li]) - 1
		tnext := &chunks[tail>>chunkBits].next[ki][tail&chunkMask]
		for {
			head := b.Load()
			*tnext = head
			if b.CompareAndSwap(head, sc.dhead[li]) {
				break
			}
		}
	}
}

// probeBlock sizes ProbeVec's bucket-head preload: heads for a block of
// keys are hashed and loaded before any chain is walked, so the loads'
// cache misses overlap instead of serializing with the walks.
const probeBlock = 128

// ProbeVec probes every key of keys on column col, appending each match to
// dst tagged with the key's input position. Matched query sets are staged
// into qbuf (s.qw atomically loaded words per match, appended in match
// order); each appended VecMatch's QSet is a view into the returned qbuf.
// Both dst and qbuf grow with append and are returned; callers reuse them
// across episodes so the steady state does not allocate. Only the
// newly appended tail of dst carries valid QSet views — pass matched
// prefixes of the same (dst, qbuf) pair or start from [:0].
//
// Visibility follows Probe's contract — published timestamp strictly older
// than probeTS — with one amortization: wm must be a watermark value read
// *before* probeTS was drawn (Versions.Watermark, or the pair returned by
// PublishClocked), which guarantees every slot under wm carries a timestamp
// older than probeTS, so those entries (the stable majority in a long-lived
// session) skip the per-entry timestamp load entirely. Pass wm 0 to
// disable the short-circuit.
func (s *STeM) ProbeVec(dst []VecMatch, qbuf []uint64, col string, keys []int64, probeTS int64, wm Slot) ([]VecMatch, []uint64) {
	// The state is loaded once per call: a structural swap mid-call leaves
	// this probe on the frozen old state, which is safe — any insert the
	// probe is required to see (timestamp older than probeTS) happened
	// before this call's state load (the inserter drew its timestamp before
	// our publish raised maxPub above it), so it is in the loaded state.
	st := s.state.Load()
	ki, ok := st.colIdx[col]
	if !ok {
		return dst, qbuf
	}
	dstBase, qBase := len(dst), len(qbuf)
	buckets := st.buckets[ki]
	shift := st.shift[ki]
	var heads [probeBlock]int32
	var eKey [probeBlock]int64
	var eNext [probeBlock]int32
	var eSlot [probeBlock]Slot
	var eVID [probeBlock]int32
	for i0 := 0; i0 < len(keys); i0 += probeBlock {
		m := len(keys) - i0
		if m > probeBlock {
			m = probeBlock
		}
		for j := 0; j < m; j++ {
			if keys[i0+j] == NullKey {
				heads[j] = 0 // NULL probe keys match nothing, see NullKey
				continue
			}
			heads[j] = buckets[hash64(keys[i0+j])>>shift].Load()
		}
		// Chunk snapshot after the block's head loads (scalar Probe has the
		// ordering argument): chunks reachable from these heads were all
		// appended before the heads were CASed, so this snapshot covers
		// every chain the block walks even with concurrent inserts growing
		// the slab.
		chunks := *st.chunks.Load()
		// Stage the head entries' fields in a branch-light pass: the loads
		// are independent across keys, so their cache misses overlap instead
		// of serializing behind the chain walk's branches. Unique-key
		// (dimension) probes resolve entirely from this stage.
		for j := 0; j < m; j++ {
			ref := heads[j]
			if ref == 0 {
				continue
			}
			idx := int(ref) - 1
			c := chunks[idx>>chunkBits]
			off := idx & chunkMask
			eKey[j] = c.keys[ki][off]
			eNext[j] = c.next[ki][off]
			eSlot[j] = c.slots[off]
			eVID[j] = c.vids[off]
		}
		for j := 0; j < m; j++ {
			ref := heads[j]
			if ref == 0 {
				continue
			}
			key := keys[i0+j]
			in := int32(i0 + j)
			if eKey[j] == key {
				slot := eSlot[j]
				if slot < wm || s.versions.visibleAt(slot, probeTS) {
					idx := int(ref) - 1
					c := chunks[idx>>chunkBits]
					qoff := (idx & chunkMask) * s.qw
					for w := 0; w < s.qw; w++ {
						qbuf = append(qbuf, atomic.LoadUint64(&c.qsets[qoff+w]))
					}
					dst = append(dst, VecMatch{In: in, VID: eVID[j]})
				}
			}
			for ref = eNext[j]; ref != 0; {
				idx := int(ref) - 1
				c := chunks[idx>>chunkBits]
				off := idx & chunkMask
				if c.keys[ki][off] == key {
					slot := c.slots[off]
					if slot < wm || s.versions.visibleAt(slot, probeTS) {
						qoff := off * s.qw
						for w := 0; w < s.qw; w++ {
							qbuf = append(qbuf, atomic.LoadUint64(&c.qsets[qoff+w]))
						}
						dst = append(dst, VecMatch{In: in, VID: c.vids[off]})
					}
				}
				ref = c.next[ki][off]
			}
		}
	}
	// Fix up the QSet views only after all appends: qbuf's backing array is
	// final now, so the views cannot be invalidated by growth.
	for k := dstBase; k < len(dst); k++ {
		qo := qBase + (k-dstBase)*s.qw
		dst[k].QSet = bitset.Set(qbuf[qo : qo+s.qw])
	}
	return dst, qbuf
}

// SemiJoinVec ORs, for each input key i, the query sets of all published
// entries matching keys[i] on col into outs[i*qw : (i+1)*qw] (the batched
// SemiJoinQueries). Publication needs no timestamp ordering here, so the
// watermark is read internally: entries under it skip the version lookup.
func (s *STeM) SemiJoinVec(outs []uint64, qw int, col string, keys []int64) {
	st := s.state.Load()
	ki, ok := st.colIdx[col]
	if !ok {
		return
	}
	wm := s.versions.Watermark()
	buckets := st.buckets[ki]
	shift := st.shift[ki]
	uw := qw
	if s.qw < uw {
		uw = s.qw
	}
	var heads [probeBlock]int32
	for i0 := 0; i0 < len(keys); i0 += probeBlock {
		m := len(keys) - i0
		if m > probeBlock {
			m = probeBlock
		}
		for j := 0; j < m; j++ {
			if keys[i0+j] == NullKey {
				heads[j] = 0 // NULL probe keys match nothing, see NullKey
				continue
			}
			heads[j] = buckets[hash64(keys[i0+j])>>shift].Load()
		}
		// Chunk snapshot after the head loads; see ProbeVec.
		chunks := *st.chunks.Load()
		for j := 0; j < m; j++ {
			ref := heads[j]
			if ref == 0 {
				continue
			}
			key := keys[i0+j]
			out := outs[(i0+j)*qw : (i0+j)*qw+uw]
			for ref != 0 {
				idx := int(ref) - 1
				c := chunks[idx>>chunkBits]
				off := idx & chunkMask
				if c.keys[ki][off] == key &&
					(c.slots[off] < wm || s.versions.tryGet(c.slots[off]) != 0) {
					qoff := off * s.qw
					for w := 0; w < uw; w++ {
						out[w] |= atomic.LoadUint64(&c.qsets[qoff+w])
					}
				}
				ref = c.next[ki][off]
			}
		}
	}
}
