package stem

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"github.com/roulette-db/roulette/internal/bitset"
)

// canonScalar renders per-key scalar Probe results as a sorted multiset of
// "in|vid|qset" strings, the common currency for equivalence checks. Batch
// chains order same-bucket entries differently than scalar LIFO chains, so
// only the match *sets* are comparable.
func canonScalar(s *STeM, col string, keys []int64, ts int64) []string {
	var out []string
	var dst []Match
	for in, k := range keys {
		dst = s.Probe(dst[:0], col, k, ts)
		for _, m := range dst {
			out = append(out, fmt.Sprintf("%d|%d|%v", in, m.VID, []uint64(m.QSet)))
		}
	}
	sort.Strings(out)
	return out
}

// probeVec is the test-side one-shot ProbeVec wrapper (fresh buffers each
// call; production callers reuse worker arenas).
func probeVec(s *STeM, col string, keys []int64, ts int64, wm Slot) []VecMatch {
	ms, _ := s.ProbeVec(nil, nil, col, keys, ts, wm)
	return ms
}

// probeVecCount returns the number of ProbeVec matches.
func probeVecCount(s *STeM, col string, keys []int64, ts int64, wm Slot) int {
	return len(probeVec(s, col, keys, ts, wm))
}

func canonVec(ms []VecMatch) []string {
	var out []string
	for _, m := range ms {
		out = append(out, fmt.Sprintf("%d|%d|%v", m.In, m.VID, []uint64(m.QSet)))
	}
	sort.Strings(out)
	return out
}

// TestQuickVecScalarEquivalence is the randomized equivalence property: a
// STeM built with per-tuple Insert and one built with InsertVec (random
// batch sizes, random key skew, random query-set width) must agree on every
// probe, whether probed scalar or vectorized, with or without the watermark
// short-circuit, and on every semi-join.
func TestQuickVecScalarEquivalence(t *testing.T) {
	f := func(seed int64, skewRaw, qcapRaw uint8, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%1500 + 1
		domain := int64(1) << (uint(skewRaw) % 8) // 1..128 distinct keys
		qcap := int(qcapRaw)%100 + 1              // crosses the 64-query word boundary

		vA := NewVersions()
		vB := NewVersions()
		sA := New(vA, []string{"a", "b"}, qcap, n) // scalar-built
		sB := New(vB, []string{"a", "b"}, qcap, n) // vector-built
		qw := sA.qw

		vids := make([]int32, n)
		ka := make([]int64, n)
		kb := make([]int64, n)
		qsets := make([]uint64, n*qw)
		for i := range vids {
			vids[i] = int32(i)
			ka[i] = rng.Int63n(domain)
			kb[i] = rng.Int63n(domain)
			qsets[i*qw+rng.Intn(qw)] = 1 << uint(rng.Intn(64))
		}

		// Random batch split; one slot per batch, published in order so both
		// sides end fully published.
		var sc InsertScratch
		slot := Slot(0)
		for i0 := 0; i0 < n; {
			bn := 1 + rng.Intn(200)
			if i0+bn > n {
				bn = n - i0
			}
			for j := i0; j < i0+bn; j++ {
				sA.Insert(vids[j], []int64{ka[j], kb[j]}, bitset.Set(qsets[j*qw:(j+1)*qw]), slot)
			}
			vA.Publish(slot)
			sB.InsertVec(vids[i0:i0+bn], [][]int64{ka[i0 : i0+bn], kb[i0 : i0+bn]}, qsets[i0*qw:(i0+bn)*qw], qw, slot, &sc)
			vB.Publish(slot)
			slot++
			i0 += bn
		}

		probeKeys := make([]int64, 0, domain+1)
		for k := int64(0); k <= domain; k++ { // domain itself = guaranteed miss
			probeKeys = append(probeKeys, k)
		}
		for _, col := range []string{"a", "b"} {
			wmA, wmB := vA.Watermark(), vB.Watermark()
			tsA, tsB := vA.Now(), vB.Now()
			want := canonScalar(sA, col, probeKeys, tsA)
			if got := canonScalar(sB, col, probeKeys, tsB); !reflect.DeepEqual(got, want) {
				t.Logf("col %s: scalar probe of vector-built STeM diverged", col)
				return false
			}
			if got := canonVec(probeVec(sB, col, probeKeys, tsB, wmB)); !reflect.DeepEqual(got, want) {
				t.Logf("col %s: ProbeVec diverged (wm=%d)", col, wmB)
				return false
			}
			if got := canonVec(probeVec(sB, col, probeKeys, tsB, 0)); !reflect.DeepEqual(got, want) {
				t.Logf("col %s: ProbeVec diverged with watermark disabled", col)
				return false
			}
			if got := canonVec(probeVec(sA, col, probeKeys, tsA, wmA)); !reflect.DeepEqual(got, want) {
				t.Logf("col %s: ProbeVec of scalar-built STeM diverged", col)
				return false
			}

			outs := make([]uint64, len(probeKeys)*qw)
			sB.SemiJoinVec(outs, qw, col, probeKeys)
			ref := bitset.Set(make([]uint64, qw))
			for i, k := range probeKeys {
				for w := range ref {
					ref[w] = 0
				}
				sA.SemiJoinQueries(ref, col, k)
				if !reflect.DeepEqual([]uint64(ref), outs[i*qw:(i+1)*qw]) {
					t.Logf("col %s key %d: SemiJoinVec diverged", col, k)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestInsertVecWidthsAndChunks covers the directed edge cases: empty batch,
// query-set slabs narrower and wider than the STeM's width, and one batch
// spanning multiple chunks.
func TestInsertVecWidthsAndChunks(t *testing.T) {
	v := NewVersions()
	s := New(v, []string{"k"}, 100, 16) // qw = 2
	var sc InsertScratch

	s.InsertVec(nil, [][]int64{nil}, nil, 2, 0, &sc) // empty: no-op
	if s.Len() != 0 {
		t.Fatalf("empty InsertVec changed Len to %d", s.Len())
	}

	// Narrow slab (qw 1 into width 2): the missing high word zero-fills.
	s.InsertVec([]int32{1}, [][]int64{{7}}, []uint64{1 << 3}, 1, 0, &sc)
	// Wide slab (qw 3 into width 2): the extra word is dropped.
	s.InsertVec([]int32{2}, [][]int64{{8}}, []uint64{1 << 4, 1 << 5, ^uint64(0)}, 3, 0, &sc)
	v.Publish(0)
	ts := v.Now()
	if got := s.Probe(nil, "k", 7, ts); len(got) != 1 || !reflect.DeepEqual([]uint64(got[0].QSet), []uint64{1 << 3, 0}) {
		t.Fatalf("narrow-slab entry = %v", got)
	}
	if got := s.Probe(nil, "k", 8, ts); len(got) != 1 || !reflect.DeepEqual([]uint64(got[0].QSet), []uint64{1 << 4, 1 << 5}) {
		t.Fatalf("wide-slab entry = %v", got)
	}

	// One batch spanning three chunks.
	n := 2*chunkSize + 100
	vids := make([]int32, n)
	keys := make([]int64, n)
	qsets := make([]uint64, n*2)
	for i := range vids {
		vids[i] = int32(i + 10)
		keys[i] = int64(i % 97)
		qsets[i*2] = 1
	}
	s.InsertVec(vids, [][]int64{keys}, qsets, 2, 1, &sc)
	v.Publish(1)
	ts = v.Now()
	total := 0
	for k := int64(0); k < 97; k++ {
		total += len(s.Probe(nil, "k", k, ts))
	}
	if total != n+2 { // +2: the width-test entries on keys 7 and 8
		t.Fatalf("probed %d entries after multi-chunk InsertVec, want %d", total, n+2)
	}
	if got := probeVec(s, "k", keys[:97], ts, v.Watermark()); len(got) != total {
		t.Fatalf("ProbeVec found %d entries, want %d", len(got), total)
	}
}

// TestProbeVecScalarAgreeUnderConcurrentPublication interleaves a publisher
// continuously inserting and publishing batches with a prober comparing
// Probe and ProbeVec under the same (watermark, timestamp) snapshot. Both
// paths must return the identical match set: visibility is a deterministic
// function of the probe timestamp, and the watermark (read before the
// timestamp) may never admit more. Run under -race this also checks the
// kernels' lock-free memory discipline.
func TestProbeVecScalarAgreeUnderConcurrentPublication(t *testing.T) {
	const domain = 32
	const maxEntries = 1 << 14
	v := NewVersions()
	s := New(v, []string{"k"}, 8, maxEntries)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		var sc InsertScratch
		slot := Slot(0)
		vid := int32(0)
		for int(vid) < maxEntries {
			select {
			case <-stop:
				return
			default:
			}
			n := 1 + rng.Intn(64)
			vids := make([]int32, n)
			keys := make([]int64, n)
			qsets := make([]uint64, n)
			for j := range vids {
				vids[j] = vid
				vid++
				keys[j] = rng.Int63n(domain)
				qsets[j] = 1 << uint(rng.Intn(8))
			}
			if slot%2 == 0 {
				s.InsertVec(vids, [][]int64{keys}, qsets, 1, slot, &sc)
			} else {
				for j := range vids {
					s.Insert(vids[j], keys[j:j+1], bitset.Set(qsets[j:j+1]), slot)
				}
			}
			v.Publish(slot)
			slot++
		}
	}()

	probeKeys := make([]int64, domain)
	for i := range probeKeys {
		probeKeys[i] = int64(i)
	}
	for iter := 0; iter < 150; iter++ {
		wm := v.Watermark()
		ts := v.Now()
		want := canonScalar(s, "k", probeKeys, ts)
		got := canonVec(probeVec(s, "k", probeKeys, ts, wm))
		if !reflect.DeepEqual(got, want) {
			close(stop)
			wg.Wait()
			t.Fatalf("iter %d: ProbeVec diverged from scalar under concurrent publication (wm=%d, %d vs %d matches)",
				iter, wm, len(got), len(want))
		}
	}
	close(stop)
	wg.Wait()
}

// TestWatermarkMonotonicUnderConcurrentPublish hammers Publish from several
// goroutines over densely allocated slots and checks the watermark never
// regresses, never passes an unpublished slot, and converges to the full
// slot count once every publisher is done.
func TestWatermarkMonotonicUnderConcurrentPublish(t *testing.T) {
	const slots = 3000
	v := NewVersions()
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1) - 1
				if n >= slots {
					return
				}
				v.Publish(Slot(n))
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	last := Slot(0)
	for {
		w := v.Watermark()
		if w < last {
			t.Fatalf("watermark regressed: %d -> %d", last, w)
		}
		for _, probe := range []Slot{0, w / 2, w - 1} {
			if probe >= 0 && probe < w && v.tryGet(probe) == 0 {
				t.Fatalf("watermark %d passed unpublished slot %d", w, probe)
			}
		}
		last = w
		select {
		case <-done:
			if final := v.Watermark(); final != slots {
				t.Fatalf("final watermark = %d, want %d", final, slots)
			}
			return
		default:
		}
	}
}

// TestProbeVecDuringGC races ProbeVec against the streaming GC operations
// (SweepChunk, CompactLive, EnsureBuckets) under the engine's quiesce
// discipline — GC holds the gate exclusively, probes hold it shared — and
// checks every probe observes a consistent state: matches are a subset of
// the original entries and a superset of the post-GC survivors, and the
// watermark is unchanged by the rebuild (compacted entries keep their slots,
// so the under-watermark fast path stays correct).
func TestProbeVecDuringGC(t *testing.T) {
	const n = 2 * chunkSize
	const domain = 128
	v := NewVersions()
	s := New(v, []string{"k"}, 2, n)
	// Query membership alternates per key-cohort ((i/domain)%2, not i%2 —
	// that parity would correlate with the key), so retiring query 0 kills
	// exactly half of every key's entries.
	for i := 0; i < n; i++ {
		s.Insert(int32(i), []int64{int64(i % domain)}, bitset.FromIDs(2, (i/domain)%2), 0)
	}
	v.Publish(0)
	wmBefore := v.Watermark()

	perKey := n / domain  // entries per key before GC
	liveKey := perKey / 2 // odd cohorts survive query-0 retirement
	probeKeys := make([]int64, domain)
	for i := range probeKeys {
		probeKeys[i] = int64(i)
	}

	var gate sync.RWMutex // stand-in for the engine's quiesce gate
	gcDone := make(chan struct{})
	go func() {
		defer close(gcDone)
		retired := bitset.FromIDs(2, 0)
		for ci := 0; ci < s.NumChunks(); ci++ {
			gate.Lock()
			s.SweepChunk(ci, retired)
			gate.Unlock()
		}
		gate.Lock()
		s.CompactLive()
		gate.Unlock()
		gate.Lock()
		s.EnsureBuckets(4 * n)
		gate.Unlock()
	}()

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; ; iter++ {
				select {
				case <-gcDone:
					return
				default:
				}
				gate.RLock()
				wm := v.Watermark()
				ts := v.Now()
				ms := probeVec(s, "k", probeKeys, ts, wm)
				counts := make(map[int32]int, domain)
				bad := false
				var badm VecMatch
				for _, m := range ms {
					counts[m.In]++
					// Key attribution and survivor query bits must hold at
					// every intermediate GC state.
					if int64(m.VID%domain) != probeKeys[m.In] ||
						((m.VID/domain)%2 == 1 && !m.QSet.Contains(1)) {
						bad, badm = true, m
					}
				}
				gate.RUnlock()
				if bad {
					t.Errorf("prober %d iter %d: inconsistent match %+v", g, iter, badm)
					return
				}
				for in := range probeKeys {
					c := counts[int32(in)]
					if c < liveKey || c > perKey {
						t.Errorf("prober %d iter %d: key %d has %d matches, want %d..%d",
							g, iter, in, c, liveKey, perKey)
						return
					}
				}
			}
		}(g)
	}
	<-gcDone
	wg.Wait()
	if t.Failed() {
		return
	}

	if wmAfter := v.Watermark(); wmAfter != wmBefore {
		t.Fatalf("GC moved the watermark: %d -> %d", wmBefore, wmAfter)
	}
	// Post-GC exact check through the under-watermark fast path: compacted
	// survivors kept their (published) slots.
	ms := probeVec(s, "k", probeKeys, v.Now(), v.Watermark())
	if len(ms) != domain*liveKey {
		t.Fatalf("post-GC ProbeVec = %d matches, want %d", len(ms), domain*liveKey)
	}
	for _, m := range ms {
		if (m.VID/domain)%2 != 1 || !m.QSet.Contains(1) || m.QSet.Contains(0) {
			t.Fatalf("post-GC match %+v carries retired state", m)
		}
	}
}

// insertBenchBatch is one precomputed insert vector for the contention
// benchmarks: 256 tuples over 32 distinct keys (fact-table FK style), the
// shape where batch chain pre-linking collapses the most CASes.
const (
	insBatch  = 256
	insDomain = 32
)

func insertBenchInput() (vids []int32, keys []int64, qsets []uint64) {
	vids = make([]int32, insBatch)
	keys = make([]int64, insBatch)
	qsets = make([]uint64, insBatch)
	for i := range vids {
		vids[i] = int32(i)
		keys[i] = int64(i % insDomain)
		qsets[i] = ^uint64(0)
	}
	return
}

// BenchmarkSTeMInsertParallel compares the scalar and vector build paths
// under concurrent inserters: each op inserts one 256-tuple batch into a
// shared STeM. The STeM is swapped for a fresh one every few thousand
// batches (inside the timer, both modes alike) to bound memory and keep
// chain lengths comparable across the run.
func BenchmarkSTeMInsertParallel(b *testing.B) {
	vids, keys, qsets := insertBenchInput()
	const resetEvery = 4096
	fresh := func() *STeM {
		return New(NewVersions(), []string{"k"}, 64, resetEvery*insBatch)
	}
	for _, mode := range []string{"scalar", "vec"} {
		b.Run(mode, func(b *testing.B) {
			var cur atomic.Pointer[STeM]
			cur.Store(fresh())
			var batches atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var sc InsertScratch
				keyBuf := make([]int64, 1)
				for pb.Next() {
					n := batches.Add(1)
					if n%resetEvery == 0 {
						cur.Store(fresh())
					}
					s := cur.Load()
					slot := Slot(n & 1023)
					if mode == "vec" {
						s.InsertVec(vids, [][]int64{keys}, qsets, 1, slot, &sc)
					} else {
						for j := range vids {
							keyBuf[0] = keys[j]
							s.Insert(vids[j], keyBuf, bitset.Set(qsets[j:j+1]), slot)
						}
					}
				}
			})
		})
	}
}

// BenchmarkSTeMProbeParallel compares the scalar and vector probe paths on a
// fully published STeM: each op probes a 1024-key batch against a unique-key
// (dimension-table) STeM — the engine's dominant probe shape, where the
// per-key costs (column lookup, serialized bucket-head misses, per-entry
// version checks) dominate over chain walking. The watermark covers every
// entry, so the vector path exercises the no-version-check fast path the
// steady state runs in.
func BenchmarkSTeMProbeParallel(b *testing.B) {
	const entries = 1 << 16
	v := NewVersions()
	s := New(v, []string{"k"}, 64, entries)
	q := bitset.NewFull(64)
	// 64-tuple episodes, one slot each: the scalar path resolves a version
	// slot per entry, like a probe in a long-lived streaming session.
	for i := 0; i < entries; i++ {
		s.Insert(int32(i), []int64{int64(i)}, q, Slot(i>>6))
	}
	for sl := Slot(0); sl < entries>>6; sl++ {
		v.Publish(sl)
	}
	wm := v.Watermark()
	ts := v.Now()
	probeKeys := make([]int64, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range probeKeys {
		probeKeys[i] = rng.Int63n(entries)
	}
	for _, mode := range []string{"scalar", "vec"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var dst []Match
				var vdst []VecMatch
				var vqbuf []uint64
				for pb.Next() {
					if mode == "vec" {
						vdst, vqbuf = s.ProbeVec(vdst[:0], vqbuf[:0], "k", probeKeys, ts, wm)
					} else {
						for _, k := range probeKeys {
							dst = s.Probe(dst[:0], "k", k, ts)
						}
					}
				}
			})
		})
	}
}
