package storage

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/value"
)

// Dict dictionary-encodes strings to dense int64 codes, the bridge between
// string-typed source data and the integer-only engine core. It is an alias
// for value.Dict: safe for concurrent readers, with Code/Merge taking the
// write lock (single-writer appends while filters and result decoding read
// concurrently).
type Dict = value.Dict

// NewDict returns an empty dictionary.
func NewDict() *Dict { return value.NewDict() }

// CSVOptions configures LoadCSV.
type CSVOptions struct {
	// Header skips the first record (and, when the relation has no columns
	// configured, could be used to derive them — the loader requires the
	// relation schema, so Header only controls skipping).
	Header bool
	Comma  rune
	// Dicts maps column names to dictionaries for non-integer columns;
	// it overrides (and installs into) the catalog's per-column Dict. String
	// columns declared in the relation schema use their catalog Dict when no
	// override is present; values in plain int64 columns must parse.
	Dicts map[string]*Dict
}

// NullField reports whether a CSV field denotes SQL NULL: the empty string
// or the conventional \N marker.
func NullField(f string) bool { return f == "" || f == `\N` }

// LoadCSV reads rows into a new table with rel's schema. Each record must
// have exactly one field per relation column, in schema order. Columns
// typed String in the catalog are dictionary-encoded; on nullable columns
// the empty string and `\N` load as NULL (value.NullCode, recorded in the
// table's null bitmap). Nullable int64 columns reject the literal
// math.MinInt64, which is reserved as the NULL sentinel.
func LoadCSV(rel *catalog.Relation, r io.Reader, opts CSVOptions) (*Table, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.ReuseRecord = true

	cols := make([][]int64, len(rel.Columns))
	dicts := make([]*Dict, len(rel.Columns))
	for i := range rel.Columns {
		c := &rel.Columns[i]
		if d := opts.Dicts[c.Name]; d != nil {
			dicts[i] = d
			if c.Type == value.String && c.Dict == nil {
				c.Dict = d
			}
		} else if c.Type == value.String {
			if c.Dict == nil {
				c.Dict = value.NewDict()
			}
			dicts[i] = c.Dict
		}
	}

	first := true
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: csv: %w", err)
		}
		if first && opts.Header {
			first = false
			continue
		}
		first = false
		if len(rec) != len(rel.Columns) {
			return nil, fmt.Errorf("storage: csv row %d has %d fields, want %d", row, len(rec), len(rel.Columns))
		}
		for i, f := range rec {
			var v int64
			switch {
			case rel.Columns[i].Nullable && NullField(f):
				v = value.NullCode
			case dicts[i] != nil:
				v = dicts[i].Code(f)
			default:
				v, err = strconv.ParseInt(f, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("storage: csv row %d column %s: %q is not an integer (use a Dict for string columns)", row, rel.Columns[i].Name, f)
				}
				if v == value.NullCode && rel.Columns[i].Nullable {
					return nil, fmt.Errorf("storage: csv row %d column %s: %d is reserved as the NULL sentinel on nullable columns", row, rel.Columns[i].Name, v)
				}
			}
			cols[i] = append(cols[i], v)
		}
		row++
	}
	return FromColumns(rel, cols...)
}

// Binary snapshot format: magic, column count, row count, then each column
// as row-count little-endian int64 values. Column order follows the schema.
const binaryMagic = uint32(0x52544C54) // "RTLT"

// SaveBinary writes a compact binary snapshot of the table.
func SaveBinary(t *Table, w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{binaryMagic, uint32(len(t.Rel.Columns)), uint32(t.NumRows())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for i := range t.Rel.Columns {
		if err := binary.Write(bw, binary.LittleEndian, t.ColAt(i)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadBinary reads a snapshot saved by SaveBinary into rel's schema.
func LoadBinary(rel *catalog.Relation, r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	var magic, nCols, nRows uint32
	for _, p := range []*uint32{&magic, &nCols, &nRows} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("storage: binary header: %w", err)
		}
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("storage: bad magic %#x", magic)
	}
	if int(nCols) != len(rel.Columns) {
		return nil, fmt.Errorf("storage: snapshot has %d columns, schema %s has %d", nCols, rel.Name, len(rel.Columns))
	}
	cols := make([][]int64, nCols)
	for i := range cols {
		cols[i] = make([]int64, nRows)
		if err := binary.Read(br, binary.LittleEndian, cols[i]); err != nil {
			return nil, fmt.Errorf("storage: binary column %d: %w", i, err)
		}
	}
	return FromColumns(rel, cols...)
}
