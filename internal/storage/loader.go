package storage

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/roulette-db/roulette/internal/catalog"
)

// Dict dictionary-encodes strings to dense int64 codes, the loader's
// bridge between string-typed source data and the integer-only engine.
type Dict struct {
	codes  map[string]int64
	values []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict { return &Dict{codes: make(map[string]int64)} }

// Code interns s, returning its stable code.
func (d *Dict) Code(s string) int64 {
	if c, ok := d.codes[s]; ok {
		return c
	}
	c := int64(len(d.values))
	d.codes[s] = c
	d.values = append(d.values, s)
	return c
}

// Lookup returns the code for s without interning.
func (d *Dict) Lookup(s string) (int64, bool) {
	c, ok := d.codes[s]
	return c, ok
}

// Value decodes a code; it returns "" for out-of-range codes.
func (d *Dict) Value(c int64) string {
	if c < 0 || c >= int64(len(d.values)) {
		return ""
	}
	return d.values[c]
}

// Len returns the number of distinct interned values.
func (d *Dict) Len() int { return len(d.values) }

// Values returns the interned strings in code order (a copy).
func (d *Dict) Values() []string { return append([]string(nil), d.values...) }

// SortedRemap re-assigns codes in lexicographic value order and returns the
// old-code → new-code mapping, so range predicates over encoded strings
// match lexicographic string ranges.
func (d *Dict) SortedRemap() []int64 {
	order := make([]int, len(d.values))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return d.values[order[a]] < d.values[order[b]] })
	remap := make([]int64, len(d.values))
	newValues := make([]string, len(d.values))
	for newCode, oldCode := range order {
		remap[oldCode] = int64(newCode)
		newValues[newCode] = d.values[oldCode]
		d.codes[d.values[oldCode]] = int64(newCode)
	}
	d.values = newValues
	return remap
}

// CSVOptions configures LoadCSV.
type CSVOptions struct {
	// Header skips the first record (and, when the relation has no columns
	// configured, could be used to derive them — the loader requires the
	// relation schema, so Header only controls skipping).
	Header bool
	Comma  rune
	// Dicts maps column names to dictionaries for non-integer columns;
	// values in other columns must parse as int64.
	Dicts map[string]*Dict
}

// LoadCSV reads rows into a new table with rel's schema. Each record must
// have exactly one field per relation column, in schema order.
func LoadCSV(rel *catalog.Relation, r io.Reader, opts CSVOptions) (*Table, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.ReuseRecord = true

	cols := make([][]int64, len(rel.Columns))
	dicts := make([]*Dict, len(rel.Columns))
	for i, c := range rel.Columns {
		dicts[i] = opts.Dicts[c.Name]
	}

	first := true
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: csv: %w", err)
		}
		if first && opts.Header {
			first = false
			continue
		}
		first = false
		if len(rec) != len(rel.Columns) {
			return nil, fmt.Errorf("storage: csv row %d has %d fields, want %d", row, len(rec), len(rel.Columns))
		}
		for i, f := range rec {
			var v int64
			if dicts[i] != nil {
				v = dicts[i].Code(f)
			} else {
				v, err = strconv.ParseInt(f, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("storage: csv row %d column %s: %q is not an integer (use a Dict for string columns)", row, rel.Columns[i].Name, f)
				}
			}
			cols[i] = append(cols[i], v)
		}
		row++
	}
	return FromColumns(rel, cols...)
}

// Binary snapshot format: magic, column count, row count, then each column
// as row-count little-endian int64 values. Column order follows the schema.
const binaryMagic = uint32(0x52544C54) // "RTLT"

// SaveBinary writes a compact binary snapshot of the table.
func SaveBinary(t *Table, w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{binaryMagic, uint32(len(t.Rel.Columns)), uint32(t.NumRows())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for i := range t.Rel.Columns {
		if err := binary.Write(bw, binary.LittleEndian, t.ColAt(i)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadBinary reads a snapshot saved by SaveBinary into rel's schema.
func LoadBinary(rel *catalog.Relation, r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	var magic, nCols, nRows uint32
	for _, p := range []*uint32{&magic, &nCols, &nRows} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("storage: binary header: %w", err)
		}
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("storage: bad magic %#x", magic)
	}
	if int(nCols) != len(rel.Columns) {
		return nil, fmt.Errorf("storage: snapshot has %d columns, schema %s has %d", nCols, rel.Name, len(rel.Columns))
	}
	cols := make([][]int64, nCols)
	for i := range cols {
		cols[i] = make([]int64, nRows)
		if err := binary.Read(br, binary.LittleEndian, cols[i]); err != nil {
			return nil, fmt.Errorf("storage: binary column %d: %w", i, err)
		}
	}
	return FromColumns(rel, cols...)
}
