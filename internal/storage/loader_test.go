package storage

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/value"
)

func TestDictBasics(t *testing.T) {
	d := NewDict()
	a := d.Code("apple")
	b := d.Code("banana")
	if a == b {
		t.Fatal("distinct values share a code")
	}
	if got := d.Code("apple"); got != a {
		t.Error("Code not stable")
	}
	if v := d.Value(b); v != "banana" {
		t.Errorf("Value = %q", v)
	}
	if d.Value(99) != "" {
		t.Error("out-of-range Value should be empty")
	}
	if _, ok := d.Lookup("cherry"); ok {
		t.Error("Lookup interned")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestDictSortedRemap(t *testing.T) {
	d := NewDict()
	zebra := d.Code("zebra")
	apple := d.Code("apple")
	mango := d.Code("mango")
	remap := d.SortedRemap()
	// After remap: apple=0, mango=1, zebra=2.
	if remap[zebra] != 2 || remap[apple] != 0 || remap[mango] != 1 {
		t.Errorf("remap = %v", remap)
	}
	if c, _ := d.Lookup("apple"); c != 0 {
		t.Errorf("apple code after remap = %d", c)
	}
	vals := d.Values()
	if vals[0] != "apple" || vals[2] != "zebra" {
		t.Errorf("values = %v", vals)
	}
}

func TestLoadCSV(t *testing.T) {
	rel := catalog.NewRelation("people", "id", "name", "age")
	dict := NewDict()
	src := "id,name,age\n1,alice,30\n2,bob,25\n3,alice,41\n"
	tab, err := LoadCSV(rel, strings.NewReader(src), CSVOptions{
		Header: true,
		Dicts:  map[string]*Dict{"name": dict},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	name := tab.Col("name")
	if name[0] != name[2] || name[0] == name[1] {
		t.Errorf("dictionary encoding broken: %v", name)
	}
	if dict.Value(name[1]) != "bob" {
		t.Errorf("decode = %q", dict.Value(name[1]))
	}
	if tab.Col("age")[2] != 41 {
		t.Errorf("age = %v", tab.Col("age"))
	}
}

func TestLoadCSVErrors(t *testing.T) {
	rel := catalog.NewRelation("t", "a", "b")
	if _, err := LoadCSV(rel, strings.NewReader("1,2,3\n"), CSVOptions{}); err == nil {
		t.Error("wrong field count accepted")
	}
	if _, err := LoadCSV(rel, strings.NewReader("1,notanint\n"), CSVOptions{}); err == nil {
		t.Error("non-integer without dict accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rel := catalog.NewRelation("t", "x", "y")
	orig := MustFromColumns(rel, []int64{1, -5, 9}, []int64{7, 0, 42})
	var buf bytes.Buffer
	if err := SaveBinary(orig, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBinary(rel, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	for c := 0; c < 2; c++ {
		for r := 0; r < 3; r++ {
			if got.ColAt(c)[r] != orig.ColAt(c)[r] {
				t.Errorf("col %d row %d: %d != %d", c, r, got.ColAt(c)[r], orig.ColAt(c)[r])
			}
		}
	}
}

func TestLoadBinaryRejectsGarbage(t *testing.T) {
	rel := catalog.NewRelation("t", "x")
	if _, err := LoadBinary(rel, bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short input accepted")
	}
	var buf bytes.Buffer
	two := catalog.NewRelation("two", "a", "b")
	if err := SaveBinary(MustFromColumns(two, []int64{1}, []int64{2}), &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBinary(rel, &buf); err == nil {
		t.Error("column-count mismatch accepted")
	}
}

// TestDictConcurrentReaders holds the documented concurrency contract under
// the race detector: any number of readers (Value, Lookup, Len, Values) may
// run against a writer interning new strings via Code.
func TestDictConcurrentReaders(t *testing.T) {
	d := NewDict()
	base := d.Code("seed")
	const writes = 2000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < writes; i++ {
			d.Code("w" + strconv.Itoa(i))
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if got := d.Value(base); got != "seed" {
					t.Errorf("Value(seed) = %q under concurrent interning", got)
					return
				}
				if c, ok := d.Lookup("seed"); !ok || c != base {
					t.Errorf("Lookup(seed) = %d,%v under concurrent interning", c, ok)
					return
				}
				n := d.Len()
				if vals := d.Values(); len(vals) < n-1 {
					// Values snapshots under the read lock; it may trail Len
					// by later writes but never observe a torn prefix.
					t.Errorf("Values len %d < Len %d - 1", len(vals), n)
					return
				}
			}
		}()
	}
	<-done
	wg.Wait()
	if d.Len() != writes+1 {
		t.Fatalf("Len = %d, want %d", d.Len(), writes+1)
	}
}

// TestDictDecodeRoundTrip loads a nullable string column and decodes every
// cell back: non-NULL cells round-trip exactly, NULL cells are flagged by
// the table's null bitmap and excluded from the dictionary.
func TestDictDecodeRoundTrip(t *testing.T) {
	rel := catalog.NewTypedRelation("people",
		catalog.Column{Name: "id"},
		catalog.Column{Name: "name", Type: value.String, Nullable: true},
	)
	src := "id,name\n1,alice\n2,\n3,bob\n4,alice\n5,\\N\n"
	tab, err := LoadCSV(rel, strings.NewReader(src), CSVOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	dict := rel.Column("name").Dict
	want := []string{"alice", "", "bob", "alice", ""}
	wantNull := []bool{false, true, false, false, true}
	col := tab.Col("name")
	for r, w := range want {
		if got := tab.IsNull("name", r); got != wantNull[r] {
			t.Errorf("row %d: IsNull = %v, want %v", r, got, wantNull[r])
		}
		if wantNull[r] {
			if col[r] != value.NullCode {
				t.Errorf("row %d: NULL cell holds code %d", r, col[r])
			}
			continue
		}
		if got := dict.Value(col[r]); got != w {
			t.Errorf("row %d: decoded %q, want %q", r, got, w)
		}
	}
	if dict.Len() != 2 { // alice, bob — NULLs intern nothing
		t.Errorf("dict has %d entries: %v", dict.Len(), dict.Values())
	}
	if n := tab.NullCount(1); n != 2 {
		t.Errorf("NullCount = %d", n)
	}
}
